package chip

import (
	"fmt"

	"scaleout/internal/noc"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// Catalog returns the processor designs the thesis tabulates at a node.
// Core counts and LLC capacities are the published configurations of
// Tables 2.3/2.4 (existing organizations and the ideal processor) and
// Table 3.2 (Scale-Out designs); area, power, performance, PD, and
// perf/Watt are derived from the technology model, and memory channels
// are provisioned from the bandwidth model.
//
// The published configurations themselves follow simple rules: the
// conventional design carries 2MB of LLC per core and is power-limited;
// tiled designs split tiles evenly between core and cache area and are
// area-limited; LLC-optimal designs shrink the aggregate LLC to the
// scale-out sweet spot (8MB for OoO, 6MB for in-order at 40nm); the
// Scale-Out designs replicate the PD-optimal pod.
func Catalog(n tech.Node, ws []workload.Workload) []Spec {
	var specs []Spec
	add := func(s Spec) {
		s.Node = n
		s.ProvisionChannels(ws)
		specs = append(specs, s)
	}

	switch n.FeatureNM {
	case 40:
		add(Spec{Org: ConventionalOrg, Core: tech.Conventional, Cores: 6, LLCMB: 12, Net: noc.Crossbar})
		add(Spec{Org: TiledOrg, Core: tech.OoO, Cores: 20, LLCMB: 20, Net: noc.Mesh})
		add(Spec{Org: LLCOptimalTiledOrg, Core: tech.OoO, Cores: 32, LLCMB: 8, Net: noc.Mesh})
		add(Spec{Org: LLCOptimalTiledIROrg, Core: tech.OoO, Cores: 32, LLCMB: 8, Net: noc.Mesh, IR: true})
		add(Spec{Org: IdealOrg, Core: tech.OoO, Cores: 32, LLCMB: 8, Net: noc.Ideal})
		add(Spec{Org: ScaleOutOrg, Core: tech.OoO, Cores: 32, LLCMB: 8, Pods: 2, Net: noc.Crossbar})
		add(Spec{Org: TiledOrg, Core: tech.InOrder, Cores: 64, LLCMB: 20, Net: noc.Mesh})
		add(Spec{Org: LLCOptimalTiledOrg, Core: tech.InOrder, Cores: 96, LLCMB: 6, Net: noc.Mesh})
		add(Spec{Org: LLCOptimalTiledIROrg, Core: tech.InOrder, Cores: 96, LLCMB: 6, Net: noc.Mesh, IR: true})
		add(Spec{Org: IdealOrg, Core: tech.InOrder, Cores: 96, LLCMB: 6, Net: noc.Ideal})
		add(Spec{Org: ScaleOutOrg, Core: tech.InOrder, Cores: 96, LLCMB: 6, Pods: 3, Net: noc.Crossbar})
	case 20:
		add(Spec{Org: ConventionalOrg, Core: tech.Conventional, Cores: 12, LLCMB: 48, Net: noc.Crossbar})
		add(Spec{Org: TiledOrg, Core: tech.OoO, Cores: 80, LLCMB: 80, Net: noc.Mesh})
		add(Spec{Org: LLCOptimalTiledOrg, Core: tech.OoO, Cores: 112, LLCMB: 28, Net: noc.Mesh})
		add(Spec{Org: LLCOptimalTiledIROrg, Core: tech.OoO, Cores: 112, LLCMB: 28, Net: noc.Mesh, IR: true})
		add(Spec{Org: IdealOrg, Core: tech.OoO, Cores: 112, LLCMB: 28, Net: noc.Ideal})
		add(Spec{Org: ScaleOutOrg, Core: tech.OoO, Cores: 112, LLCMB: 28, Pods: 7, Net: noc.Crossbar})
		add(Spec{Org: TiledOrg, Core: tech.InOrder, Cores: 180, LLCMB: 80, Net: noc.Mesh})
		add(Spec{Org: LLCOptimalTiledOrg, Core: tech.InOrder, Cores: 224, LLCMB: 12, Net: noc.Mesh})
		add(Spec{Org: LLCOptimalTiledIROrg, Core: tech.InOrder, Cores: 192, LLCMB: 12, Net: noc.Mesh, IR: true})
		add(Spec{Org: IdealOrg, Core: tech.InOrder, Cores: 224, LLCMB: 12, Net: noc.Ideal})
		add(Spec{Org: ScaleOutOrg, Core: tech.InOrder, Cores: 192, LLCMB: 12, Pods: 6, Net: noc.Crossbar})
	default:
		panic(fmt.Sprintf("chip: no catalog for node %s", n.Name))
	}
	return specs
}

// TCOCatalog returns the seven server chips of Table 5.1 (40nm): the
// designs compared at datacenter scale, including the single-pod chips.
func TCOCatalog(ws []workload.Workload) []Spec {
	n := tech.N40()
	var specs []Spec
	add := func(s Spec) {
		s.Node = n
		s.ProvisionChannels(ws)
		specs = append(specs, s)
	}
	add(Spec{Org: ConventionalOrg, Core: tech.Conventional, Cores: 6, LLCMB: 12, Net: noc.Crossbar})
	add(Spec{Org: TiledOrg, Core: tech.OoO, Cores: 20, LLCMB: 20, Net: noc.Mesh})
	add(Spec{Org: OnePodOrg, Core: tech.OoO, Cores: 16, LLCMB: 4, Pods: 1, Net: noc.Crossbar})
	add(Spec{Org: ScaleOutOrg, Core: tech.OoO, Cores: 32, LLCMB: 8, Pods: 2, Net: noc.Crossbar})
	add(Spec{Org: TiledOrg, Core: tech.InOrder, Cores: 64, LLCMB: 20, Net: noc.Mesh})
	add(Spec{Org: OnePodOrg, Core: tech.InOrder, Cores: 32, LLCMB: 2, Pods: 1, Net: noc.Crossbar})
	add(Spec{Org: ScaleOutOrg, Core: tech.InOrder, Cores: 96, LLCMB: 6, Pods: 3, Net: noc.Crossbar})
	return specs
}

// Find returns the first catalog entry matching the organization and core
// type, or false.
func Find(specs []Spec, org Organization, core tech.CoreType) (Spec, bool) {
	for _, s := range specs {
		if s.Org == org && s.Core == core {
			return s, true
		}
	}
	return Spec{}, false
}
