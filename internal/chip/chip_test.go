package chip

import (
	"math"
	"testing"

	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

var ws = workload.Suite()

func catalog40() []Spec { return Catalog(tech.N40(), ws) }

func find(t *testing.T, specs []Spec, org Organization, core tech.CoreType) Spec {
	t.Helper()
	s, ok := Find(specs, org, core)
	if !ok {
		t.Fatalf("catalog missing %v (%v)", org, core)
	}
	return s
}

func TestCatalogSizes(t *testing.T) {
	if n := len(catalog40()); n != 11 {
		t.Fatalf("40nm catalog has %d designs, want 11", n)
	}
	if n := len(Catalog(tech.N20(), ws)); n != 11 {
		t.Fatalf("20nm catalog has %d designs, want 11", n)
	}
	if n := len(TCOCatalog(ws)); n != 7 {
		t.Fatalf("TCO catalog has %d designs, want 7 (Table 5.1)", n)
	}
}

func TestCatalogPanicsOnUnknownNode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown node accepted")
		}
	}()
	Catalog(tech.N32NOCOut(), ws)
}

// Published die areas and powers (Tables 2.3/3.2) must reproduce from the
// component model within rounding.
func TestPublishedAreasAndPowers(t *testing.T) {
	cases := []struct {
		org         Organization
		core        tech.CoreType
		area, power float64
	}{
		{ConventionalOrg, tech.Conventional, 276, 94},
		{TiledOrg, tech.OoO, 244, 51},
		{ScaleOutOrg, tech.OoO, 262, 62},
		{TiledOrg, tech.InOrder, 249, 67},
		{ScaleOutOrg, tech.InOrder, 269, 91},
	}
	specs := catalog40()
	for _, c := range cases {
		s := find(t, specs, c.org, c.core)
		if math.Abs(s.DieArea()-c.area) > 8 {
			t.Errorf("%s: die %v, thesis %v", s.Name(), s.DieArea(), c.area)
		}
		if math.Abs(s.Power()-c.power) > 6 {
			t.Errorf("%s: power %v, thesis %v", s.Name(), s.Power(), c.power)
		}
	}
}

// The central result (Tables 2.3/3.2): the PD ordering at 40nm.
// Conventional < Tiled < LLC-optimal < (+IR) < Scale-Out < Ideal for both
// core types, and in-order designs above their OoO counterparts.
func TestPDOrdering40nm(t *testing.T) {
	specs := catalog40()
	pd := func(org Organization, core tech.CoreType) float64 {
		return find(t, specs, org, core).PD(ws)
	}
	for _, core := range []tech.CoreType{tech.OoO, tech.InOrder} {
		conv := find(t, specs, ConventionalOrg, tech.Conventional).PD(ws)
		tiled := pd(TiledOrg, core)
		llc := pd(LLCOptimalTiledOrg, core)
		ir := pd(LLCOptimalTiledIROrg, core)
		so := pd(ScaleOutOrg, core)
		ideal := pd(IdealOrg, core)
		if !(conv < tiled && tiled < llc && llc <= ir && ir < so && so < ideal) {
			t.Errorf("%v PD ordering violated: conv %.3f tiled %.3f llc %.3f ir %.3f so %.3f ideal %.3f",
				core, conv, tiled, llc, ir, so, ideal)
		}
	}
	if pd(ScaleOutOrg, tech.InOrder) <= pd(ScaleOutOrg, tech.OoO) {
		t.Error("in-order Scale-Out should beat OoO Scale-Out on PD")
	}
}

// Headline ratios (Section 3.4.5): Scale-Out (OoO) improves PD ~3.5x over
// conventional and ~1.5x over tiled at 40nm; the in-order design ~6x over
// conventional. Scale-Out trails the ideal by under ~15%.
func TestHeadlineRatios(t *testing.T) {
	specs := catalog40()
	conv := find(t, specs, ConventionalOrg, tech.Conventional).PD(ws)
	soO := find(t, specs, ScaleOutOrg, tech.OoO).PD(ws)
	soI := find(t, specs, ScaleOutOrg, tech.InOrder).PD(ws)
	tiledO := find(t, specs, TiledOrg, tech.OoO).PD(ws)
	idealO := find(t, specs, IdealOrg, tech.OoO).PD(ws)

	if r := soO / conv; r < 2.8 || r > 4.5 {
		t.Errorf("Scale-Out(OoO)/conventional PD ratio %v, thesis ~3.5", r)
	}
	if r := soI / conv; r < 4.5 || r > 7.5 {
		t.Errorf("Scale-Out(IO)/conventional PD ratio %v, thesis ~6", r)
	}
	if r := soO / tiledO; r < 1.3 || r > 2.1 {
		t.Errorf("Scale-Out/tiled PD ratio %v, thesis ~1.5", r)
	}
	if gap := 1 - soO/idealO; gap < 0 || gap > 0.15 {
		t.Errorf("Scale-Out behind ideal by %v, thesis ~9%%", gap)
	}
}

// At 20nm, Scale-Out's lead over conventional and tiled must grow
// (Section 3.4.5: the advantage improves under technology scaling).
func TestScalingImprovesLead(t *testing.T) {
	s40, s20 := catalog40(), Catalog(tech.N20(), ws)
	lead := func(specs []Spec) float64 {
		so := find(t, specs, ScaleOutOrg, tech.OoO).PD(ws)
		tiled := find(t, specs, TiledOrg, tech.OoO).PD(ws)
		return so / tiled
	}
	if lead(s20) <= lead(s40) {
		t.Errorf("Scale-Out/tiled lead shrank with scaling: %v -> %v", lead(s40), lead(s20))
	}
}

// Memory channel provisioning: conventional uses one channel per four
// cores; everything else is demand-provisioned and never exceeds six.
func TestChannelProvisioning(t *testing.T) {
	for _, n := range []tech.Node{tech.N40(), tech.N20()} {
		for _, s := range Catalog(n, ws) {
			if s.Org == ConventionalOrg {
				if want := (s.Cores + 3) / 4; s.MemChannels != want {
					t.Errorf("%s at %s: %d channels, want %d", s.Name(), n.Name, s.MemChannels, want)
				}
				continue
			}
			if s.MemChannels < 1 || s.MemChannels > tech.MaxMemoryInterfaces {
				t.Errorf("%s at %s: %d channels", s.Name(), n.Name, s.MemChannels)
			}
		}
	}
}

// The Scale-Out (OoO) 40nm design needs exactly 3 channels and the
// in-order one 6 — the Table 3.2 values the bandwidth model anchors on.
func TestScaleOutChannels(t *testing.T) {
	specs := catalog40()
	if s := find(t, specs, ScaleOutOrg, tech.OoO); s.MemChannels != 3 {
		t.Errorf("Scale-Out (OoO) channels %d, want 3", s.MemChannels)
	}
	if s := find(t, specs, ScaleOutOrg, tech.InOrder); s.MemChannels != 6 {
		t.Errorf("Scale-Out (In-order) channels %d, want 6", s.MemChannels)
	}
}

// Instruction replication must help large-LLC configurations more at
// 20nm (bigger mesh diameter) than at 40nm, and never exceed the ideal.
func TestIRBehaviour(t *testing.T) {
	for _, core := range []tech.CoreType{tech.OoO, tech.InOrder} {
		for _, n := range []tech.Node{tech.N40(), tech.N20()} {
			specs := Catalog(n, ws)
			llc := find(t, specs, LLCOptimalTiledOrg, core).PD(ws)
			ir := find(t, specs, LLCOptimalTiledIROrg, core).PD(ws)
			ideal := find(t, specs, IdealOrg, core).PD(ws)
			if ir < llc {
				t.Errorf("%v at %s: IR made things worse (%v < %v)", core, n.Name, ir, llc)
			}
			if ir >= ideal {
				t.Errorf("%v at %s: IR %v beat the ideal %v", core, n.Name, ir, ideal)
			}
		}
	}
	// The 20nm OoO IR gain exceeds the 40nm gain (thesis: 2% vs 14%).
	gain := func(n tech.Node) float64 {
		specs := Catalog(n, ws)
		return find(t, specs, LLCOptimalTiledIROrg, tech.OoO).PD(ws) /
			find(t, specs, LLCOptimalTiledOrg, tech.OoO).PD(ws)
	}
	if gain(tech.N20()) <= gain(tech.N40()) {
		t.Errorf("IR gain did not grow with scaling: %v -> %v", gain(tech.N40()), gain(tech.N20()))
	}
}

func TestSpecNames(t *testing.T) {
	specs := catalog40()
	s := find(t, specs, TiledOrg, tech.OoO)
	if s.Name() != "Tiled (OoO)" {
		t.Fatalf("name %q", s.Name())
	}
	c := find(t, specs, ConventionalOrg, tech.Conventional)
	if c.Name() != "Conventional" {
		t.Fatalf("name %q", c.Name())
	}
}

func TestFindMissing(t *testing.T) {
	if _, ok := Find(catalog40(), OnePodOrg, tech.OoO); ok {
		t.Fatal("1Pod should only exist in the TCO catalog")
	}
}

func TestTCOCatalogPods(t *testing.T) {
	specs := TCOCatalog(ws)
	onePod := find(t, specs, OnePodOrg, tech.OoO)
	if onePod.Pods != 1 || onePod.Cores != 16 || onePod.LLCMB != 4 {
		t.Fatalf("1Pod (OoO): %+v", onePod)
	}
	// Table 5.1: the 1pod OoO chip is ~158mm2 at ~36W.
	if math.Abs(onePod.DieArea()-158) > 6 || math.Abs(onePod.Power()-36) > 4 {
		t.Errorf("1Pod (OoO): %vmm2 %vW, thesis 158mm2/36W", onePod.DieArea(), onePod.Power())
	}
}

func TestIPCPositiveEverywhere(t *testing.T) {
	for _, s := range append(catalog40(), TCOCatalog(ws)...) {
		if s.IPC(ws) <= 0 || s.PD(ws) <= 0 || s.PerfPerWatt(ws) <= 0 {
			t.Errorf("%s: non-positive metric", s.Name())
		}
		if s.IPC(nil) != 0 {
			t.Errorf("%s: empty suite should yield zero IPC", s.Name())
		}
	}
}

func TestWorkloadIPCAboveZeroPerWorkload(t *testing.T) {
	for _, s := range catalog40() {
		for _, w := range ws {
			ipc := s.WorkloadIPC(w)
			if ipc <= 0 {
				t.Errorf("%s on %s: IPC %v", s.Name(), w.Name, ipc)
			}
			if perCore := ipc / float64(s.Cores); perCore >= w.BaseIPC[s.Core] {
				t.Errorf("%s on %s: per-core %v exceeds base %v", s.Name(), w.Name, perCore, w.BaseIPC[s.Core])
			}
		}
	}
}
