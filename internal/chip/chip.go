// Package chip provides the catalog of server-processor organizations the
// thesis compares: conventional (dancehall crossbar, aggressive cores,
// large LLC), tiled (mesh, distributed LLC), LLC-optimal tiled, LLC-optimal
// tiled with R-NUCA-style instruction replication, the ideal processor
// (small LLC, fixed 4-cycle interconnect), single-pod chips, and Scale-Out
// Processors. Each organization knows its die area, power, memory channel
// provisioning, aggregate performance, performance density, and
// performance per Watt — the columns of Tables 2.3, 2.4, 3.2, and 5.1.
package chip

import (
	"fmt"
	"math"

	"scaleout/internal/analytic"
	"scaleout/internal/core"
	"scaleout/internal/noc"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// Organization enumerates the processor families of the comparison.
type Organization int

const (
	// ConventionalOrg is the Xeon-class design: a handful of aggressive
	// cores, 2MB of LLC per core, a crossbar, one channel per 4 cores.
	ConventionalOrg Organization = iota
	// TiledOrg is the Tilera-class mesh of tiles, 1MB LLC per tile (OoO)
	// or the same core:cache area ratio (in-order).
	TiledOrg
	// LLCOptimalTiledOrg shrinks the per-tile LLC to the scale-out
	// sweet spot, maximizing core count.
	LLCOptimalTiledOrg
	// LLCOptimalTiledIROrg adds R-NUCA-style instruction replication.
	LLCOptimalTiledIROrg
	// IdealOrg couples the LLC-optimal configuration to a fixed
	// 4-cycle interconnect — the unrealizable upper bound.
	IdealOrg
	// OnePodOrg is a chip holding a single PD-optimal pod.
	OnePodOrg
	// ScaleOutOrg is the thesis's design: replicated PD-optimal pods.
	ScaleOutOrg
)

// String names the organization as in the thesis tables.
func (o Organization) String() string {
	switch o {
	case ConventionalOrg:
		return "Conventional"
	case TiledOrg:
		return "Tiled"
	case LLCOptimalTiledOrg:
		return "LLC-Optimal Tiled"
	case LLCOptimalTiledIROrg:
		return "LLC-Optimal Tiled with IR"
	case IdealOrg:
		return "Ideal"
	case OnePodOrg:
		return "1Pod"
	case ScaleOutOrg:
		return "Scale-Out"
	default:
		return fmt.Sprintf("Organization(%d)", int(o))
	}
}

// Spec is one fully characterized processor design.
type Spec struct {
	Org         Organization
	Node        tech.Node
	Core        tech.CoreType
	Cores       int
	LLCMB       float64 // total on-chip LLC capacity
	Pods        int     // 0 for monolithic designs
	Net         noc.Kind
	MemChannels int
	IR          bool // instruction replication enabled
}

// Name formats the design name as in the tables, e.g. "Tiled (OoO)".
func (s Spec) Name() string {
	if s.Org == ConventionalOrg {
		return "Conventional"
	}
	return fmt.Sprintf("%s (%s)", s.Org, s.Core)
}

// podView returns the per-pod configuration for pod-based designs.
func (s Spec) podView() core.Pod {
	pods := s.Pods
	if pods < 1 {
		pods = 1
	}
	return core.Pod{Core: s.Core, Cores: s.Cores / pods, LLCMB: s.LLCMB / float64(pods), Net: noc.Crossbar}
}

// design returns the analytic-model view of the performance domain: the
// whole chip for monolithic designs, one pod for pod-based designs.
func (s Spec) design() analytic.Design {
	if s.Pods > 0 {
		return s.podView().Design()
	}
	return analytic.NewDesign(s.Core, s.Cores, s.LLCMB, s.Net)
}

// DieArea returns the chip area: logic (cores + LLC) plus memory
// interfaces and SoC components, with logic scaled by the node.
func (s Spec) DieArea() float64 {
	logic := float64(s.Cores)*s.Node.CoreArea(s.Core) + s.Node.LLCArea(s.LLCMB)
	return logic + float64(s.MemChannels)*tech.MemIfaceAreaMM2 + tech.SoCMiscAreaMM2
}

// Power returns the chip TDP at the node.
func (s Spec) Power() float64 {
	logic := float64(s.Cores)*s.Node.CorePower(s.Core) + s.Node.LLCPower(s.LLCMB)
	return logic + float64(s.MemChannels)*tech.MemIfacePowerW + tech.SoCMiscPowerW
}

// irCapacityPenaltyMB returns the LLC capacity consumed by replicated
// instruction blocks under R-NUCA-style replication: clusters of four
// tiles each hold a copy of the hot half of the instruction footprint
// (Section 2.2.3 — replication pressures small LLC-optimal caches).
func (s Spec) irCapacityPenaltyMB(w workload.Workload) float64 {
	clusters := s.Cores / 4
	if clusters < 1 {
		clusters = 1
	}
	extraCopies := float64(clusters - 1)
	if extraCopies > 7 {
		extraCopies = 7 // replication is throttled under capacity pressure
	}
	penalty := extraCopies * 0.6 * w.InstrFootprintMB
	if penalty > s.LLCMB*0.6 {
		penalty = s.LLCMB * 0.6
	}
	return penalty
}

// WorkloadIPC returns the chip's aggregate application IPC on workload w.
func (s Spec) WorkloadIPC(w workload.Workload) float64 {
	if s.Pods > 0 {
		return float64(s.Pods) * analytic.ChipIPC(w, s.design())
	}
	d := s.design()
	if !s.IR {
		return analytic.ChipIPC(w, d)
	}
	// Instruction replication: I-fetches travel at most one mesh hop
	// (R-NUCA clusters of four), while replicas consume LLC capacity,
	// raising the data miss rate.
	dIR := d
	dIR.LLCMB = s.LLCMB - s.irCapacityPenaltyMB(w)
	accIR := w.AccessBreakdown(s.Core, dIR.LLCMB, s.Cores)
	oneHop := noc.New(noc.Mesh, 4) // one-hop neighborhood
	iLat := float64(tech.LLCBankLatency(dIR.BankMB())) + oneHop.AccessLatency()

	// R-NUCA serves most instruction fetches from a one-hop replica; the
	// remainder (replica misses, cold blocks) still cross the full mesh.
	const replicaHitFrac = 0.85
	cpi := 1 / w.BaseIPC[s.Core]
	cpi += accIR.IHitAPKI / 1000 * (replicaHitFrac*iLat + (1-replicaHitFrac)*dIR.LLCLatency())
	cpi += accIR.DHitAPKI / 1000 * dIR.LLCLatency() * w.LLCOverlap[s.Core]
	cpi += accIR.IMissMPKI / 1000 * dIR.MemLatency()
	cpi += accIR.DMissMPKI / 1000 * dIR.MemLatency() / w.MLP[s.Core]
	return float64(s.Cores) / cpi
}

// IPC returns the suite-mean aggregate IPC.
func (s Spec) IPC(ws []workload.Workload) float64 {
	if len(ws) == 0 {
		return 0
	}
	sum := 0.0
	for _, w := range ws {
		sum += s.WorkloadIPC(w)
	}
	return sum / float64(len(ws))
}

// PD returns performance density: suite-mean IPC per mm^2 of die.
func (s Spec) PD(ws []workload.Workload) float64 { return s.IPC(ws) / s.DieArea() }

// PerfPerWatt returns suite-mean IPC per Watt.
func (s Spec) PerfPerWatt(ws []workload.Workload) float64 { return s.IPC(ws) / s.Power() }

// DemandGBs returns the worst-case off-chip bandwidth demand of the chip.
func (s Spec) DemandGBs(ws []workload.Workload) float64 {
	if s.Pods > 0 {
		return float64(s.Pods) * s.podView().PeakBandwidthGBs(ws)
	}
	d := s.design()
	demand := analytic.WorstCaseDemandGBs(ws, d)
	if s.IR {
		demand *= 1.15 // replication misses add off-chip traffic (Section 2.5.2)
	}
	return demand
}

// ProvisionChannels computes the memory channels the design needs:
// conventional processors dedicate one channel per four cores (Section
// 2.5); all others provision for worst-case demand, capped at the
// package limit of six interfaces.
func (s *Spec) ProvisionChannels(ws []workload.Workload) {
	if s.Org == ConventionalOrg {
		s.MemChannels = (s.Cores + 3) / 4
		return
	}
	ch := int(math.Ceil(s.DemandGBs(ws) / s.Node.Memory.UsableGBs()))
	if ch < 1 {
		ch = 1
	}
	if ch > tech.MaxMemoryInterfaces {
		ch = tech.MaxMemoryInterfaces
	}
	s.MemChannels = ch
}
