// Package core implements the thesis's primary contribution: the
// scale-out design methodology (Chapter 3). It defines the performance
// density metric (throughput per unit area), derives the PD-optimal pod —
// a tightly coupled block of cores, LLC, and interconnect — by sweeping
// the design space with the analytic model, and composes Scale-Out
// Processors by replicating pods up to the chip-level area, power, and
// bandwidth budgets, with no inter-pod connectivity or coherence.
package core

import (
	"fmt"
	"math"

	"scaleout/internal/analytic"
	"scaleout/internal/noc"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// Pod is the Scale-Out Processor building block: a stand-alone server —
// cores tightly coupled to a modestly sized LLC through a low-latency
// interconnect — running its own operating system and software stack.
type Pod struct {
	Core  tech.CoreType
	Cores int
	LLCMB float64
	Net   noc.Kind

	// WireDelta adjusts the pod interconnect's header latency in cycles.
	// 3D-stacked pods use negative values (shorter horizontal wires when
	// a pod folds vertically, Chapter 6); wide fixed-distance pods use
	// small positive values (arbitration across more ports).
	WireDelta float64
}

// String formats the pod as in the thesis's figure labels, e.g. "16c-4MB".
func (p Pod) String() string {
	return fmt.Sprintf("%dc-%gMB", p.Cores, p.LLCMB)
}

// Design returns the analytic-model view of the pod.
func (p Pod) Design() analytic.Design {
	d := analytic.NewDesign(p.Core, p.Cores, p.LLCMB, p.Net)
	d.Net.WireDelta = p.WireDelta
	return d
}

// Area returns the pod's silicon area at the given node: cores plus LLC.
// The thesis's pod areas (92mm^2 for the 16-core/4MB OoO pod, 52mm^2 for
// the 32-core/2MB in-order pod at 40nm) count exactly these components;
// the crossbar's area is negligible at pod scale (Table 2.1 bounds the
// interconnect at 0.2-4.5mm^2).
func (p Pod) Area(n tech.Node) float64 {
	return float64(p.Cores)*n.CoreArea(p.Core) + n.LLCArea(p.LLCMB)
}

// Power returns the pod's peak power at the given node (cores + LLC).
func (p Pod) Power(n tech.Node) float64 {
	return float64(p.Cores)*n.CorePower(p.Core) + n.LLCPower(p.LLCMB)
}

// IPC returns the pod's aggregate application IPC averaged over the suite.
func (p Pod) IPC(ws []workload.Workload) float64 {
	return analytic.SuiteMeanIPC(ws, p.Design())
}

// PD returns the pod's performance density — aggregate IPC per mm^2 —
// the optimization metric of the scale-out design methodology.
func (p Pod) PD(n tech.Node, ws []workload.Workload) float64 {
	return p.IPC(ws) / p.Area(n)
}

// PeakBandwidthGBs returns the pod's worst-case off-chip demand across
// the suite, the figure memory channels are provisioned against.
func (p Pod) PeakBandwidthGBs(ws []workload.Workload) float64 {
	return analytic.WorstCaseDemandGBs(ws, p.Design())
}

// SweepPoint is one evaluated pod configuration.
type SweepPoint struct {
	Pod Pod
	PD  float64
	IPC float64
}

// SweepSpace enumerates the design space the thesis explores in Figures
// 3.4-3.6: core counts as powers of two, a set of LLC capacities, and a
// set of interconnects.
type SweepSpace struct {
	Core     tech.CoreType
	MaxCores int
	LLCSizes []float64
	Nets     []noc.Kind
}

// DefaultSweep returns the Chapter-3 design space for a core type:
// 1-256 cores, 1-8MB LLCs, ideal/crossbar/mesh interconnects.
func DefaultSweep(core tech.CoreType) SweepSpace {
	return SweepSpace{
		Core:     core,
		MaxCores: 256,
		LLCSizes: []float64{1, 2, 4, 8},
		Nets:     []noc.Kind{noc.Ideal, noc.Crossbar, noc.Mesh},
	}
}

// Sweep evaluates every configuration in the space at the given node.
func Sweep(space SweepSpace, n tech.Node, ws []workload.Workload) []SweepPoint {
	var out []SweepPoint
	for _, net := range space.Nets {
		for _, llc := range space.LLCSizes {
			for c := 1; c <= space.MaxCores; c *= 2 {
				p := Pod{Core: space.Core, Cores: c, LLCMB: llc, Net: net}
				out = append(out, SweepPoint{Pod: p, PD: p.PD(n, ws), IPC: p.IPC(ws)})
			}
		}
	}
	return out
}

// Optimal returns the point with the highest performance density.
func Optimal(points []SweepPoint) (SweepPoint, error) {
	if len(points) == 0 {
		return SweepPoint{}, fmt.Errorf("core: empty sweep")
	}
	best := points[0]
	for _, p := range points[1:] {
		if p.PD > best.PD {
			best = p
		}
	}
	return best, nil
}

// NearOptimal implements the pod selection rule of Section 3.4.2: among
// realizable configurations (implementable interconnect) with at most
// maxCores cores, pick the highest-PD pod whose PD is within tol of the
// global optimum — trading a flat PD peak for lower design complexity
// (software scalability, coherence, crossbar feasibility).
func NearOptimal(points []SweepPoint, tol float64, maxCores int) (SweepPoint, error) {
	opt, err := Optimal(points)
	if err != nil {
		return SweepPoint{}, err
	}
	best := SweepPoint{PD: -1}
	for _, p := range points {
		if p.Pod.Cores > maxCores {
			continue
		}
		if p.PD >= opt.PD*(1-tol) && p.PD > best.PD {
			best = p
		}
	}
	if best.PD < 0 {
		return SweepPoint{}, fmt.Errorf("core: no configuration within %.0f%% of optimum under %d cores", tol*100, maxCores)
	}
	return best, nil
}

// LimitingFactor records which budget stopped pod replication.
type LimitingFactor string

// The three chip-level constraints of Section 3.2.3.
const (
	AreaLimited      LimitingFactor = "area"
	PowerLimited     LimitingFactor = "power"
	BandwidthLimited LimitingFactor = "bandwidth"
)

// ScaleOutChip is a composed Scale-Out Processor: one or more identical
// pods sharing only memory interfaces and SoC glue — no inter-pod
// coherence or interconnect.
type ScaleOutChip struct {
	Node        tech.Node
	Pod         Pod
	Pods        int
	MemChannels int
	Limit       LimitingFactor
}

// Cores returns the total core count.
func (c ScaleOutChip) Cores() int { return c.Pods * c.Pod.Cores }

// LLCMB returns the total LLC capacity across pods.
func (c ScaleOutChip) LLCMB() float64 { return float64(c.Pods) * c.Pod.LLCMB }

// DieArea returns the chip area: pods, memory interfaces, and SoC misc.
func (c ScaleOutChip) DieArea() float64 {
	return float64(c.Pods)*c.Pod.Area(c.Node) +
		float64(c.MemChannels)*tech.MemIfaceAreaMM2 + tech.SoCMiscAreaMM2
}

// Power returns the chip TDP: pods, memory interfaces, and SoC misc.
func (c ScaleOutChip) Power() float64 {
	return float64(c.Pods)*c.Pod.Power(c.Node) +
		float64(c.MemChannels)*tech.MemIfacePowerW + tech.SoCMiscPowerW
}

// IPC returns the chip's aggregate suite-mean IPC. Pods are independent
// servers, so chip performance is exactly pods times pod performance —
// the optimality-preserving scaling at the heart of the methodology.
func (c ScaleOutChip) IPC(ws []workload.Workload) float64 {
	return float64(c.Pods) * c.Pod.IPC(ws)
}

// PD returns the chip-level performance density (includes the memory
// interface and SoC overheads that dilute pod-level PD).
func (c ScaleOutChip) PD(ws []workload.Workload) float64 {
	return c.IPC(ws) / c.DieArea()
}

// PerfPerWatt returns suite-mean IPC per Watt of chip power.
func (c ScaleOutChip) PerfPerWatt(ws []workload.Workload) float64 {
	return c.IPC(ws) / c.Power()
}

// channelsFor returns the memory channels needed for the given worst-case
// demand at the node's interface generation.
func channelsFor(n tech.Node, demandGBs float64) int {
	ch := int(math.Ceil(demandGBs / n.Memory.UsableGBs()))
	if ch < 1 {
		ch = 1
	}
	return ch
}

// Compose replicates the pod up to the node's area, power, and bandwidth
// budgets (Section 3.2.3) and returns the resulting Scale-Out Processor.
// Memory channels are provisioned for the worst-case workload demand.
func Compose(n tech.Node, pod Pod, ws []workload.Workload) (ScaleOutChip, error) {
	perPodBW := pod.PeakBandwidthGBs(ws)
	best := ScaleOutChip{Node: n, Pod: pod}
	for pods := 1; ; pods++ {
		ch := channelsFor(n, perPodBW*float64(pods))
		c := ScaleOutChip{Node: n, Pod: pod, Pods: pods, MemChannels: ch}
		switch {
		case ch > tech.MaxMemoryInterfaces:
			best.Limit = BandwidthLimited
		case c.DieArea() > n.MaxDieAreaMM2:
			best.Limit = AreaLimited
		case c.Power() > n.TDPWatts:
			best.Limit = PowerLimited
		default:
			best = c
			continue
		}
		break
	}
	if best.Pods == 0 {
		return best, fmt.Errorf("core: pod %v does not fit the %s budgets at all", pod, n.Name)
	}
	return best, nil
}
