package core

import (
	"testing"

	"scaleout/internal/noc"
	"scaleout/internal/tech"
)

func heteroPods() (Pod, Pod) {
	return Pod{Core: tech.OoO, Cores: 16, LLCMB: 4, Net: noc.Crossbar},
		Pod{Core: tech.InOrder, Cores: 32, LLCMB: 2, Net: noc.Crossbar}
}

func TestEnumerateHetero(t *testing.T) {
	a, b := heteroPods()
	mixes, err := EnumerateHetero(tech.N40(), a, b, ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(mixes) < 4 {
		t.Fatalf("only %d feasible mixes", len(mixes))
	}
	var sawHomogA, sawHomogB, sawMixed bool
	for _, c := range mixes {
		if c.DieArea() > tech.N40().MaxDieAreaMM2 || c.Power() > tech.N40().TDPWatts {
			t.Errorf("mix %d/%d over budget: %vmm2 %vW", c.CountA, c.CountB, c.DieArea(), c.Power())
		}
		if c.MemChannels < 1 || c.MemChannels > tech.MaxMemoryInterfaces {
			t.Errorf("mix %d/%d: %d channels", c.CountA, c.CountB, c.MemChannels)
		}
		switch {
		case c.CountA > 0 && c.CountB > 0:
			sawMixed = true
		case c.CountA > 0:
			sawHomogA = true
		default:
			sawHomogB = true
		}
	}
	if !sawHomogA || !sawHomogB || !sawMixed {
		t.Fatalf("enumeration missing endpoints or mixes: A=%v B=%v mixed=%v",
			sawHomogA, sawHomogB, sawMixed)
	}
}

// The homogeneous endpoints must agree with Compose.
func TestHeteroEndpointsMatchCompose(t *testing.T) {
	a, b := heteroPods()
	mixes, err := EnumerateHetero(tech.N40(), a, b, ws)
	if err != nil {
		t.Fatal(err)
	}
	composed, err := Compose(tech.N40(), b, ws)
	if err != nil {
		t.Fatal(err)
	}
	bestB := 0
	for _, c := range mixes {
		if c.CountA == 0 && c.CountB > bestB {
			bestB = c.CountB
		}
	}
	if bestB != composed.Pods {
		t.Fatalf("hetero endpoint has %d in-order pods, Compose gives %d", bestB, composed.Pods)
	}
}

func TestParetoHetero(t *testing.T) {
	a, b := heteroPods()
	mixes, err := EnumerateHetero(tech.N40(), a, b, ws)
	if err != nil {
		t.Fatal(err)
	}
	frontier := ParetoHetero(mixes, ws)
	if len(frontier) == 0 || len(frontier) > len(mixes) {
		t.Fatalf("frontier size %d of %d", len(frontier), len(mixes))
	}
	// The all-in-order max-throughput mix and the max-OoO mix are
	// both non-dominated by construction.
	var maxTotal, maxA HeteroChip
	for _, c := range mixes {
		if c.IPC(ws) > maxTotal.IPC(ws) {
			maxTotal = c
		}
		if float64(c.CountA)*c.PodA.IPC(ws) > float64(maxA.CountA)*maxA.PodA.IPC(ws) {
			maxA = c
		}
	}
	found := func(want HeteroChip) bool {
		for _, c := range frontier {
			if c.CountA == want.CountA && c.CountB == want.CountB {
				return true
			}
		}
		return false
	}
	if !found(maxTotal) || !found(maxA) {
		t.Fatalf("frontier missing extremes (maxTotal %d/%d, maxA %d/%d)",
			maxTotal.CountA, maxTotal.CountB, maxA.CountA, maxA.CountB)
	}
}

func TestEnumerateHeteroInfeasible(t *testing.T) {
	huge := Pod{Core: tech.Conventional, Cores: 64, LLCMB: 64, Net: noc.Crossbar}
	if _, err := EnumerateHetero(tech.N40(), huge, huge, ws); err == nil {
		t.Fatal("infeasible pods accepted")
	}
}
