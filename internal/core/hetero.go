package core

import (
	"fmt"
	"math"

	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// HeteroChip is a heterogeneous Scale-Out Processor: two pod types on
// one die — e.g. out-of-order pods for latency-critical services next to
// in-order pods for batch throughput (the thesis's Section 8.1 names
// heterogeneous organizations as future work; pods make it trivial
// because no inter-pod infrastructure exists to reconcile).
type HeteroChip struct {
	Node        tech.Node
	PodA, PodB  Pod
	CountA      int
	CountB      int
	MemChannels int
}

// DieArea returns the chip area across both pod types plus interfaces.
func (c HeteroChip) DieArea() float64 {
	return float64(c.CountA)*c.PodA.Area(c.Node) + float64(c.CountB)*c.PodB.Area(c.Node) +
		float64(c.MemChannels)*tech.MemIfaceAreaMM2 + tech.SoCMiscAreaMM2
}

// Power returns the chip TDP.
func (c HeteroChip) Power() float64 {
	return float64(c.CountA)*c.PodA.Power(c.Node) + float64(c.CountB)*c.PodB.Power(c.Node) +
		float64(c.MemChannels)*tech.MemIfacePowerW + tech.SoCMiscPowerW
}

// IPC returns the aggregate suite-mean IPC of all pods.
func (c HeteroChip) IPC(ws []workload.Workload) float64 {
	return float64(c.CountA)*c.PodA.IPC(ws) + float64(c.CountB)*c.PodB.IPC(ws)
}

// PD returns the chip performance density.
func (c HeteroChip) PD(ws []workload.Workload) float64 {
	return c.IPC(ws) / c.DieArea()
}

// PerfPerWatt returns aggregate IPC per Watt.
func (c HeteroChip) PerfPerWatt(ws []workload.Workload) float64 {
	return c.IPC(ws) / c.Power()
}

// Cores returns the total core count.
func (c HeteroChip) Cores() int {
	return c.CountA*c.PodA.Cores + c.CountB*c.PodB.Cores
}

// feasible reports whether the mix fits the node's budgets, returning
// the provisioned channel count.
func (c *HeteroChip) feasible(ws []workload.Workload) bool {
	demand := float64(c.CountA)*c.PodA.PeakBandwidthGBs(ws) +
		float64(c.CountB)*c.PodB.PeakBandwidthGBs(ws)
	ch := int(math.Ceil(demand / c.Node.Memory.UsableGBs()))
	if ch < 1 {
		ch = 1
	}
	if ch > tech.MaxMemoryInterfaces {
		return false
	}
	c.MemChannels = ch
	return c.DieArea() <= c.Node.MaxDieAreaMM2 && c.Power() <= c.Node.TDPWatts
}

// EnumerateHetero returns every feasible (countA, countB) mix of the two
// pods at the node, including the homogeneous endpoints. Mixes are
// ordered by countA.
func EnumerateHetero(n tech.Node, podA, podB Pod, ws []workload.Workload) ([]HeteroChip, error) {
	var out []HeteroChip
	maxA := int(n.MaxDieAreaMM2/podA.Area(n)) + 1
	maxB := int(n.MaxDieAreaMM2/podB.Area(n)) + 1
	for a := 0; a <= maxA; a++ {
		for b := 0; b <= maxB; b++ {
			if a == 0 && b == 0 {
				continue
			}
			c := HeteroChip{Node: n, PodA: podA, PodB: podB, CountA: a, CountB: b}
			if c.feasible(ws) {
				out = append(out, c)
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no feasible mix of %v and %v at %s", podA, podB, n.Name)
	}
	return out, nil
}

// ParetoHetero filters the mixes to the Pareto frontier over
// (latency-capable throughput, total throughput): a mix survives if no
// other mix has both more pod-A performance and more total performance.
func ParetoHetero(mixes []HeteroChip, ws []workload.Workload) []HeteroChip {
	type scored struct {
		c     HeteroChip
		aPerf float64
		total float64
	}
	ss := make([]scored, len(mixes))
	for i, c := range mixes {
		ss[i] = scored{c, float64(c.CountA) * c.PodA.IPC(ws), c.IPC(ws)}
	}
	var out []HeteroChip
	for i, s := range ss {
		dominated := false
		for j, o := range ss {
			if i == j {
				continue
			}
			if o.aPerf >= s.aPerf && o.total >= s.total &&
				(o.aPerf > s.aPerf || o.total > s.total) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, s.c)
		}
	}
	return out
}
