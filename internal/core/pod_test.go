package core

import (
	"math"
	"testing"

	"scaleout/internal/noc"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

var ws = workload.Suite()

func podO() Pod { return Pod{Core: tech.OoO, Cores: 16, LLCMB: 4, Net: noc.Crossbar} }
func podI() Pod { return Pod{Core: tech.InOrder, Cores: 32, LLCMB: 2, Net: noc.Crossbar} }

// The thesis's pod footprints: 92mm2 (OoO) and ~52mm2 (in-order) at 40nm
// drawing 20W and 17W respectively (Sections 3.4.2-3.4.3).
func TestPodAreaPower(t *testing.T) {
	n := tech.N40()
	if a := podO().Area(n); math.Abs(a-92) > 1e-9 {
		t.Fatalf("OoO pod area %v, want 92", a)
	}
	if p := podO().Power(n); math.Abs(p-20) > 1e-9 {
		t.Fatalf("OoO pod power %v, want 20", p)
	}
	if a := podI().Area(n); math.Abs(a-51.6) > 1e-9 {
		t.Fatalf("in-order pod area %v, want 51.6", a)
	}
	if p := podI().Power(n); math.Abs(p-17.36) > 1e-9 {
		t.Fatalf("in-order pod power %v, want 17.36", p)
	}
}

func TestPodString(t *testing.T) {
	if s := podO().String(); s != "16c-4MB" {
		t.Fatalf("pod label %q", s)
	}
}

// Figure 3.4/3.5: the OoO design space peaks at 32 cores with a mid-size
// LLC on a crossbar, and the 16-core/4MB pod is within 5% of the peak.
func TestOoOSweepShape(t *testing.T) {
	space := SweepSpace{Core: tech.OoO, MaxCores: 64,
		LLCSizes: []float64{1, 2, 4, 8}, Nets: []noc.Kind{noc.Crossbar}}
	pts := Sweep(space, tech.N40(), ws)
	opt, err := Optimal(pts)
	if err != nil {
		t.Fatal(err)
	}
	// The thesis finds a nearly flat peak in the 16-32 core, 2-4MB
	// region and adopts the 16-core/4MB pod, which sits within 5% of
	// the true optimum (Section 3.4.2). Assert exactly those facts.
	if opt.Pod.Cores < 16 || opt.Pod.Cores > 32 {
		t.Errorf("optimal pod %v outside the thesis's 16-32 core region", opt.Pod)
	}
	if opt.Pod.LLCMB < 2 || opt.Pod.LLCMB > 4 {
		t.Errorf("optimal LLC %v outside the thesis's 2-4MB region", opt.Pod.LLCMB)
	}
	thesisPod := Pod{Core: tech.OoO, Cores: 16, LLCMB: 4, Net: noc.Crossbar}
	for _, p := range pts {
		if p.Pod == thesisPod && p.PD < opt.PD*0.95 {
			t.Errorf("16c-4MB pod PD %v more than 5%% below optimum %v", p.PD, opt.PD)
		}
	}
	sel, err := NearOptimal(pts, 0.05, 16)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Pod.Cores != 16 {
		t.Errorf("selected pod %v, thesis adopts 16 cores", sel.Pod)
	}
}

// Figure 3.6: in-order pods peak at 32 cores and 2MB.
func TestInOrderSweepShape(t *testing.T) {
	space := SweepSpace{Core: tech.InOrder, MaxCores: 64,
		LLCSizes: []float64{1, 2, 4, 8}, Nets: []noc.Kind{noc.Crossbar}}
	pts := Sweep(space, tech.N40(), ws)
	sel, err := NearOptimal(pts, 0.05, 32)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Pod.Cores != 32 || sel.Pod.LLCMB != 2 {
		t.Errorf("in-order pod %v, thesis: 32c-2MB", sel.Pod)
	}
}

func TestSweepCoversSpace(t *testing.T) {
	space := DefaultSweep(tech.OoO)
	pts := Sweep(space, tech.N40(), ws)
	want := len(space.Nets) * len(space.LLCSizes) * 9 // 1..256 in doublings
	if len(pts) != want {
		t.Fatalf("sweep produced %d points, want %d", len(pts), want)
	}
	for _, p := range pts {
		if p.PD <= 0 || p.IPC <= 0 {
			t.Fatalf("non-positive metrics at %v", p.Pod)
		}
	}
}

func TestOptimalEmpty(t *testing.T) {
	if _, err := Optimal(nil); err == nil {
		t.Fatal("empty sweep accepted")
	}
	if _, err := NearOptimal(nil, 0.05, 16); err == nil {
		t.Fatal("empty near-optimal accepted")
	}
}

func TestNearOptimalUnsatisfiable(t *testing.T) {
	pts := []SweepPoint{
		{Pod: Pod{Cores: 64}, PD: 1.0},
		{Pod: Pod{Cores: 32}, PD: 0.5},
	}
	if _, err := NearOptimal(pts, 0.05, 32); err == nil {
		t.Fatal("no pod within 5% under 32 cores, but no error")
	}
}

// The headline composition results (Table 3.2): 2 OoO pods with 3
// channels at 40nm; 3 in-order pods with 6 channels; 7 OoO pods at 20nm;
// 6 in-order pods at 20nm, bandwidth-limited.
func TestComposeMatchesThesis(t *testing.T) {
	cases := []struct {
		node     tech.Node
		pod      Pod
		pods, mc int
		limit    LimitingFactor
	}{
		{tech.N40(), podO(), 2, 3, AreaLimited},
		{tech.N40(), podI(), 3, 6, BandwidthLimited},
		{tech.N20(), podO(), 7, 4, AreaLimited},
		{tech.N20(), podI(), 6, 6, BandwidthLimited},
	}
	for _, c := range cases {
		chip, err := Compose(c.node, c.pod, ws)
		if err != nil {
			t.Fatal(err)
		}
		if chip.Pods != c.pods || chip.MemChannels != c.mc || chip.Limit != c.limit {
			t.Errorf("%s %v: pods=%d mc=%d limit=%s, want pods=%d mc=%d limit=%s",
				c.node.Name, c.pod, chip.Pods, chip.MemChannels, chip.Limit,
				c.pods, c.mc, c.limit)
		}
		if chip.DieArea() > c.node.MaxDieAreaMM2 || chip.Power() > c.node.TDPWatts {
			t.Errorf("%s %v: budgets exceeded: %vmm2 %vW", c.node.Name, c.pod,
				chip.DieArea(), chip.Power())
		}
	}
}

// Pod replication preserves per-pod optimality: chip IPC is exactly
// pods x pod IPC, and chip PD sits below pod PD only by the shared
// interface overhead.
func TestCompositionLinearity(t *testing.T) {
	n := tech.N40()
	chip, err := Compose(n, podO(), ws)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := chip.IPC(ws), float64(chip.Pods)*podO().IPC(ws); math.Abs(got-want) > 1e-9 {
		t.Fatalf("chip IPC %v != pods x pod IPC %v", got, want)
	}
	if chip.PD(ws) >= podO().PD(n, ws) {
		t.Fatal("chip PD should be diluted by interface overheads")
	}
	if chip.Cores() != chip.Pods*16 || chip.LLCMB() != float64(chip.Pods)*4 {
		t.Fatal("aggregate counts")
	}
}

func TestComposeRejectsOversizedPod(t *testing.T) {
	huge := Pod{Core: tech.Conventional, Cores: 64, LLCMB: 64, Net: noc.Crossbar}
	if _, err := Compose(tech.N40(), huge, ws); err == nil {
		t.Fatal("64 conventional cores cannot fit a 280mm2 die")
	}
}

func TestPerfPerWattPositive(t *testing.T) {
	chip, err := Compose(tech.N40(), podI(), ws)
	if err != nil {
		t.Fatal(err)
	}
	if chip.PerfPerWatt(ws) <= 0 {
		t.Fatal("non-positive perf/Watt")
	}
}

// The 20nm Scale-Out chips improve PD over their 40nm versions by
// roughly the technology factor (thesis: 3.7x OoO, 2.8x in-order).
func TestTechnologyScalingGain(t *testing.T) {
	for _, pod := range []Pod{podO(), podI()} {
		c40, err := Compose(tech.N40(), pod, ws)
		if err != nil {
			t.Fatal(err)
		}
		c20, err := Compose(tech.N20(), pod, ws)
		if err != nil {
			t.Fatal(err)
		}
		gain := c20.PD(ws) / c40.PD(ws)
		if gain < 2.2 || gain > 4.3 {
			t.Errorf("%v: 40->20nm PD gain %v outside the thesis's 2.8-3.7x window", pod, gain)
		}
	}
}

// WireDelta flows through to the analytic design.
func TestWireDeltaPlumbing(t *testing.T) {
	p := podO()
	base := p.IPC(ws)
	p.WireDelta = -2
	if p.IPC(ws) <= base {
		t.Fatal("negative wire delta did not improve performance")
	}
	p.WireDelta = +5
	if p.IPC(ws) >= base {
		t.Fatal("positive wire delta did not hurt performance")
	}
}
