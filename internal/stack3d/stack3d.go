// Package stack3d extends Scale-Out Processors to 3D logic-on-logic
// integration (Chapter 6): multiple logic dies stacked and connected by
// through-silicon vias whose vertical delay is negligible next to
// horizontal wires. Two strategies compete:
//
//   - Fixed-pod: each pod keeps its core count and LLC capacity but folds
//     vertically across all dies, shrinking its per-die footprint and
//     therefore its horizontal wire delay. One pod per die-equivalent of
//     logic; no software-scalability demands.
//   - Fixed-distance: one pod grows its core count and LLC with the die
//     count while keeping the per-die footprint (and wire delay)
//     constant; the larger shared LLC filters more traffic and uses
//     memory bandwidth more efficiently.
//
// The 3D performance-density metric divides performance by total silicon
// (footprint area times dies), making PD equivalent to the 2D definition
// at one die (Section 6.3).
package stack3d

import (
	"fmt"
	"math"

	"scaleout/internal/core"
	"scaleout/internal/noc"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// Strategy selects how pods exploit the stacked dies.
type Strategy int

const (
	// FixedPod keeps pod resources constant and shrinks distance.
	FixedPod Strategy = iota
	// FixedDistance grows pod resources at constant distance.
	FixedDistance
)

// String names the strategy as in the thesis.
func (s Strategy) String() string {
	if s == FixedDistance {
		return "Fixed-Distance"
	}
	return "Fixed-Pod"
}

// MaxDies is the deepest stack the thesis considers (thermal limits).
const MaxDies = 4

// wireCyclesForFootprint estimates the horizontal wire component of a
// pod's crossbar latency: the span of a pod of the given per-die
// footprint, at the repeated-wire velocity of 4mm per 2GHz cycle.
func wireCyclesForFootprint(areaMM2 float64) float64 {
	if areaMM2 <= 0 {
		return 0
	}
	return math.Sqrt(areaMM2) * tech.WireDelayPSPerMM / (1000 / tech.ClockGHz)
}

// PodAt builds the pod a strategy runs at the given die count, including
// its wire-latency adjustment relative to the 2D base pod: fixed-pod
// folding shortens wires; fixed-distance growth widens the crossbar.
func PodAt(base core.Pod, node tech.Node, dies int, s Strategy) core.Pod {
	if dies <= 1 {
		return base
	}
	p := base
	base2D := wireCyclesForFootprint(base.Area(node))
	switch s {
	case FixedPod:
		// The pod folds across the dies: per-die footprint shrinks by
		// the die count, horizontal wires shorten accordingly.
		folded := wireCyclesForFootprint(base.Area(node) / float64(dies))
		p.WireDelta = -(base2D - folded)
	case FixedDistance:
		// Resources scale with dies at constant per-die footprint. The
		// vertical TSVs keep wire distance at the base pod's value, so
		// the grown crossbar must NOT pay the 2D port-scaling penalty —
		// only extra arbitration (~1.5 cycles per port doubling).
		p.Cores = base.Cores * dies
		p.LLCMB = base.LLCMB * float64(dies)
		p.WireDelta = noc.CrossbarLatency(base.Cores) - noc.CrossbarLatency(p.Cores) +
			1.5*math.Log2(float64(dies))
	}
	return p
}

// Chip3D is a composed 3D Scale-Out Processor.
type Chip3D struct {
	Node        tech.Node
	Dies        int
	Strategy    Strategy
	BasePod     core.Pod // the 2D (single-die) pod configuration
	Pod         core.Pod // the effective pod at this die count
	Pods        int
	MemChannels int
	Limit       core.LimitingFactor
}

// Cores returns the total core count across pods.
func (c Chip3D) Cores() int { return c.Pods * c.Pod.Cores }

// LLCMB returns the total LLC capacity.
func (c Chip3D) LLCMB() float64 { return float64(c.Pods) * c.Pod.LLCMB }

// LogicArea returns the total pod silicon across all dies.
func (c Chip3D) LogicArea() float64 { return float64(c.Pods) * c.Pod.Area(c.Node) }

// FootprintArea returns the per-die footprint: logic is spread evenly
// across the stack; memory interfaces and SoC glue sit on the base die
// but reserve keep-out area on every die for TSVs and power delivery.
func (c Chip3D) FootprintArea() float64 {
	overhead := float64(c.MemChannels)*tech.MemIfaceAreaMM2 + tech.SoCMiscAreaMM2
	return c.LogicArea()/float64(c.Dies) + overhead
}

// TotalSilicon returns the stack's silicon: all pod logic plus the
// memory-interface and SoC overhead, which exists once (on the base die).
// It is the denominator of the 3D performance-density metric: PD3D =
// perf / (footprint x dies) with logic spread evenly, which reduces to
// perf / (logic + overhead) and coincides with 2D PD at one die
// (Section 6.3).
func (c Chip3D) TotalSilicon() float64 {
	overhead := float64(c.MemChannels)*tech.MemIfaceAreaMM2 + tech.SoCMiscAreaMM2
	return c.LogicArea() + overhead
}

// Power returns the stack's TDP.
func (c Chip3D) Power() float64 {
	return float64(c.Pods)*c.Pod.Power(c.Node) +
		float64(c.MemChannels)*tech.MemIfacePowerW + tech.SoCMiscPowerW
}

// IPC returns aggregate suite-mean application IPC.
func (c Chip3D) IPC(ws []workload.Workload) float64 {
	return float64(c.Pods) * c.Pod.IPC(ws)
}

// PD3D returns performance per unit of silicon volume: aggregate IPC over
// footprint area times dies. At one die this equals the 2D PD.
func (c Chip3D) PD3D(ws []workload.Workload) float64 {
	return c.IPC(ws) / c.TotalSilicon()
}

// Compose3D replicates pods of the chosen strategy across the stack up to
// the per-die area, stack power, and memory bandwidth budgets.
func Compose3D(n tech.Node, base core.Pod, dies int, s Strategy, ws []workload.Workload) (Chip3D, error) {
	if dies < 1 || dies > MaxDies {
		return Chip3D{}, fmt.Errorf("stack3d: %d dies (1-%d supported)", dies, MaxDies)
	}
	pod := PodAt(base, n, dies, s)
	perPodBW := pod.PeakBandwidthGBs(ws)
	best := Chip3D{Node: n, Dies: dies, Strategy: s, BasePod: base, Pod: pod}
	// Fixed-distance grows the pod itself; pods still replicate until a
	// budget binds (multi-pod 3D chips).
	for pods := 1; ; pods++ {
		ch := int(math.Ceil(perPodBW * float64(pods) / n.Memory.UsableGBs()))
		if ch < 1 {
			ch = 1
		}
		c := Chip3D{Node: n, Dies: dies, Strategy: s, BasePod: base, Pod: pod, Pods: pods, MemChannels: ch}
		switch {
		case ch > tech.MaxMemoryInterfaces:
			best.Limit = core.BandwidthLimited
		case c.FootprintArea() > n.MaxDieAreaMM2:
			best.Limit = core.AreaLimited
		case c.Power() > n.TDPWatts:
			best.Limit = core.PowerLimited
		default:
			best = c
			continue
		}
		break
	}
	if best.Pods == 0 {
		return best, fmt.Errorf("stack3d: pod %v does not fit the %s budgets at %d dies", base, n.Name, dies)
	}
	return best, nil
}

// StrategyResult pairs a strategy with its composed chip for comparison.
type StrategyResult struct {
	Chip Chip3D
	PD   float64
}

// CompareStrategies composes both strategies at the given die count and
// returns them with the winner first — the Figures 6.5/6.7 comparison.
func CompareStrategies(n tech.Node, base core.Pod, dies int, ws []workload.Workload) ([2]StrategyResult, error) {
	var out [2]StrategyResult
	for i, s := range []Strategy{FixedPod, FixedDistance} {
		c, err := Compose3D(n, base, dies, s, ws)
		if err != nil {
			return out, err
		}
		out[i] = StrategyResult{Chip: c, PD: c.PD3D(ws)}
	}
	if out[1].PD > out[0].PD {
		out[0], out[1] = out[1], out[0]
	}
	return out, nil
}

// Optimal2DPod sweeps the Chapter-6 design space (crossbar pods, 2-32MB
// LLCs, core counts bounded by crossbar realizability at 64) at the 3D
// node and returns the PD-optimal single-die pod — the baseline both
// strategies grow from (Figures 6.4/6.6).
func Optimal2DPod(n tech.Node, coreType tech.CoreType, ws []workload.Workload) (core.Pod, error) {
	best := core.SweepPoint{PD: -1}
	for _, llc := range []float64{2, 4, 8, 16, 32} {
		for c := 2; c <= 64; c *= 2 {
			p := core.Pod{Core: coreType, Cores: c, LLCMB: llc, Net: noc.Crossbar}
			// Chip-level PD: include interface overheads so the optimum
			// reflects whole-chip silicon, as Table 6.2 reports.
			chip, err := Compose3D(n, p, 1, FixedPod, ws)
			if err != nil {
				continue
			}
			pd := chip.PD3D(ws)
			if pd > best.PD {
				best = core.SweepPoint{Pod: p, PD: pd}
			}
		}
	}
	if best.PD < 0 {
		return core.Pod{}, fmt.Errorf("stack3d: empty 2D sweep")
	}
	return best.Pod, nil
}
