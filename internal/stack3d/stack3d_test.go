package stack3d

import (
	"math"
	"testing"

	"scaleout/internal/core"
	"scaleout/internal/noc"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

var ws = workload.Suite()

func node() tech.Node { return tech.N40For3D() }

func basePodOoO(t *testing.T) core.Pod {
	t.Helper()
	p, err := Optimal2DPod(node(), tech.OoO, ws)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func basePodIO(t *testing.T) core.Pod {
	t.Helper()
	p, err := Optimal2DPod(node(), tech.InOrder, ws)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The Chapter-6 2D baselines: small-LLC crossbar pods. The thesis lands
// on 32c/2MB (OoO) and 64c/2MB (in-order); our flat peak may pick the
// neighbouring 16-32 core point but must keep the 2MB LLC.
func TestOptimal2DPods(t *testing.T) {
	o := basePodOoO(t)
	if o.LLCMB != 2 || o.Cores < 16 || o.Cores > 32 {
		t.Errorf("OoO 2D pod %v, thesis 32c-2MB", o)
	}
	i := basePodIO(t)
	if i.LLCMB != 2 || i.Cores != 64 {
		t.Errorf("in-order 2D pod %v, thesis 64c-2MB", i)
	}
}

func TestPodAtFixedPod(t *testing.T) {
	base := basePodOoO(t)
	for dies := 2; dies <= 4; dies *= 2 {
		p := PodAt(base, node(), dies, FixedPod)
		if p.Cores != base.Cores || p.LLCMB != base.LLCMB {
			t.Fatalf("fixed-pod changed resources at %d dies: %v", dies, p)
		}
		if p.WireDelta >= 0 {
			t.Fatalf("fixed-pod folding should shorten wires, delta %v", p.WireDelta)
		}
	}
	// Deeper stacks shorten wires more.
	d2 := PodAt(base, node(), 2, FixedPod).WireDelta
	d4 := PodAt(base, node(), 4, FixedPod).WireDelta
	if d4 >= d2 {
		t.Fatalf("4-die delta %v not below 2-die delta %v", d4, d2)
	}
}

func TestPodAtFixedDistance(t *testing.T) {
	base := basePodOoO(t)
	p := PodAt(base, node(), 2, FixedDistance)
	if p.Cores != 2*base.Cores || p.LLCMB != 2*base.LLCMB {
		t.Fatalf("fixed-distance did not double resources: %v", p)
	}
	// Effective latency: base crossbar + ~1.5 cycles of arbitration,
	// NOT the 2D latency of the doubled port count.
	grown := noc.CrossbarLatency(p.Cores) + p.WireDelta
	want := noc.CrossbarLatency(base.Cores) + 1.5
	if math.Abs(grown-want) > 1e-9 {
		t.Fatalf("fixed-distance latency %v, want %v", grown, want)
	}
}

func TestPodAtSingleDieIdentity(t *testing.T) {
	base := basePodOoO(t)
	if p := PodAt(base, node(), 1, FixedPod); p != base {
		t.Fatalf("1-die pod differs from base: %v", p)
	}
}

func TestCompose3DValidation(t *testing.T) {
	if _, err := Compose3D(node(), basePodOoO(t), 0, FixedPod, ws); err == nil {
		t.Fatal("0 dies accepted")
	}
	if _, err := Compose3D(node(), basePodOoO(t), 5, FixedPod, ws); err == nil {
		t.Fatal("5 dies accepted")
	}
}

// The headline Chapter-6 result: 3D stacking raises performance density
// for both strategies and both core types.
func TestPDRisesWithDies(t *testing.T) {
	for _, base := range []core.Pod{basePodOoO(t), basePodIO(t)} {
		oneDie, err := Compose3D(node(), base, 1, FixedPod, ws)
		if err != nil {
			t.Fatal(err)
		}
		pd1 := oneDie.PD3D(ws)
		for _, s := range []Strategy{FixedPod, FixedDistance} {
			c, err := Compose3D(node(), base, 2, s, ws)
			if err != nil {
				t.Fatal(err)
			}
			if pd := c.PD3D(ws); pd <= pd1 {
				t.Errorf("%v %v: 2-die PD %v not above 2D PD %v", base, s, pd, pd1)
			}
		}
	}
}

// Figure 6.7's crossover: at three dies, the bandwidth-constrained
// in-order design favours fixed-distance (bigger shared LLC uses the
// scarce channels better).
func TestInOrderThreeDieCrossover(t *testing.T) {
	base := basePodIO(t)
	res, err := CompareStrategies(node(), base, 3, ws)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Chip.Strategy != FixedDistance {
		t.Errorf("3-die in-order winner %v, thesis: fixed-distance", res[0].Chip.Strategy)
	}
}

// The two strategies stay within a few percent of each other everywhere
// the thesis compares them (its margins are <= ~2.5%).
func TestStrategiesClose(t *testing.T) {
	for _, tc := range []struct {
		base core.Pod
		dies int
	}{
		{basePodOoO(t), 2}, {basePodOoO(t), 4}, {basePodIO(t), 2},
	} {
		res, err := CompareStrategies(node(), tc.base, tc.dies, ws)
		if err != nil {
			t.Fatal(err)
		}
		if gap := res[0].PD/res[1].PD - 1; gap > 0.06 {
			t.Errorf("%v at %d dies: strategy gap %.1f%%, thesis <=2.5%%",
				tc.base, tc.dies, gap*100)
		}
	}
}

func TestBudgetsRespected(t *testing.T) {
	n := node()
	for _, base := range []core.Pod{basePodOoO(t), basePodIO(t)} {
		for dies := 1; dies <= 4; dies++ {
			for _, s := range []Strategy{FixedPod, FixedDistance} {
				c, err := Compose3D(n, base, dies, s, ws)
				if err != nil {
					t.Fatal(err)
				}
				if c.FootprintArea() > n.MaxDieAreaMM2 {
					t.Errorf("%v %v %dd: footprint %v over budget", base, s, dies, c.FootprintArea())
				}
				if c.Power() > n.TDPWatts {
					t.Errorf("%v %v %dd: power %v over 250W", base, s, dies, c.Power())
				}
				if c.MemChannels > tech.MaxMemoryInterfaces {
					t.Errorf("%v %v %dd: %d channels", base, s, dies, c.MemChannels)
				}
				if c.TotalSilicon() < c.LogicArea() {
					t.Errorf("silicon accounting: total %v < logic %v", c.TotalSilicon(), c.LogicArea())
				}
			}
		}
	}
}

// At one die, PD3D coincides with the 2D chip-level PD definition.
func TestPD3DReducesTo2D(t *testing.T) {
	base := basePodOoO(t)
	c, err := Compose3D(node(), base, 1, FixedPod, ws)
	if err != nil {
		t.Fatal(err)
	}
	silicon := c.LogicArea() + float64(c.MemChannels)*tech.MemIfaceAreaMM2 + tech.SoCMiscAreaMM2
	if got, want := c.PD3D(ws), c.IPC(ws)/silicon; math.Abs(got-want) > 1e-12 {
		t.Fatalf("1-die PD3D %v != 2D PD %v", got, want)
	}
	if c.FootprintArea() != silicon {
		t.Fatalf("1-die footprint %v != silicon %v", c.FootprintArea(), silicon)
	}
}

func TestAggregates(t *testing.T) {
	c, err := Compose3D(node(), basePodOoO(t), 2, FixedDistance, ws)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cores() != c.Pods*c.Pod.Cores || c.LLCMB() != float64(c.Pods)*c.Pod.LLCMB {
		t.Fatal("aggregate counts inconsistent")
	}
	if c.IPC(ws) <= 0 {
		t.Fatal("non-positive IPC")
	}
}

func TestStrategyString(t *testing.T) {
	if FixedPod.String() != "Fixed-Pod" || FixedDistance.String() != "Fixed-Distance" {
		t.Fatal("strategy names")
	}
}

// Fixed-distance pods demand fewer channels per core than fixed-pod
// replicas: the larger shared LLC filters traffic (Section 6.2).
func TestFixedDistanceFiltersTraffic(t *testing.T) {
	base := basePodIO(t)
	fp, err := Compose3D(node(), base, 3, FixedPod, ws)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := Compose3D(node(), base, 3, FixedDistance, ws)
	if err != nil {
		t.Fatal(err)
	}
	perCoreFP := float64(fp.MemChannels) / float64(fp.Cores())
	perCoreFD := float64(fd.MemChannels) / float64(fd.Cores())
	if perCoreFD >= perCoreFP {
		t.Fatalf("fixed-distance channel/core %v not below fixed-pod %v", perCoreFD, perCoreFP)
	}
}
