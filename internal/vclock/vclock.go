// Package vclock abstracts the wall clock behind an injectable
// interface, so time-dependent logic — the cluster coordinator's
// cooldowns, retry backoff, and batch windows, and the admission
// controller's token buckets — can run against a deterministic fake in
// tests instead of real sleeps. Production code takes a Clock and
// defaults to System; tests inject a Fake and drive it with Advance.
package vclock

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Clock is the time surface the coordinator and admission controller
// consume. System implements it over the runtime clock; Fake implements
// it over a manually advanced virtual clock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the clock's time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// AfterFunc runs f in its own goroutine once d has elapsed and
	// returns a handle that can cancel the call.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is the cancellation handle AfterFunc returns; Stop reports
// whether it prevented the call from firing.
type Timer interface {
	// Stop cancels the pending call, reporting whether it was still
	// pending.
	Stop() bool
}

// System is the real clock: the zero value is ready to use and every
// method delegates to package time.
type System struct{}

// Now implements Clock.
func (System) Now() time.Time { return time.Now() }

// After implements Clock.
func (System) After(d time.Duration) <-chan time.Time { return time.After(d) }

// AfterFunc implements Clock.
func (System) AfterFunc(d time.Duration, f func()) Timer { return time.AfterFunc(d, f) }

// Sleep blocks until d elapses on clk or ctx is done, returning ctx's
// error in the latter case — the context-aware sleep retry backoff
// needs. A non-positive d returns immediately.
func Sleep(ctx context.Context, clk Clock, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	select {
	case <-clk.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Fake is a deterministic Clock for tests: time stands still until
// Advance moves it, firing every timer whose deadline it reaches, in
// deadline order. Construct with NewFake. A Fake is safe for concurrent
// use.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	timers  []*fakeTimer
	waiters []waiter
}

type fakeTimer struct {
	when    time.Time
	ch      chan time.Time // nil for AfterFunc timers
	f       func()
	stopped bool
}

type waiter struct {
	n  int
	ch chan struct{}
}

// Stop implements Timer.
func (t *fakeTimer) Stop() bool {
	t.stopped = true // armed timers are only fired under the Fake's lock
	return true
}

// NewFake returns a fake clock reading start.
func NewFake(start time.Time) *Fake { return &Fake{now: start} }

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// After implements Clock.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	f.arm(&fakeTimer{ch: ch}, d)
	return ch
}

// AfterFunc implements Clock.
func (f *Fake) AfterFunc(d time.Duration, fn func()) Timer {
	t := &fakeTimer{f: fn}
	f.arm(t, d)
	return t
}

func (f *Fake) arm(t *fakeTimer, d time.Duration) {
	f.mu.Lock()
	t.when = f.now.Add(d)
	f.timers = append(f.timers, t)
	for i := 0; i < len(f.waiters); {
		if len(f.timers) >= f.waiters[i].n {
			close(f.waiters[i].ch)
			f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
			continue
		}
		i++
	}
	f.mu.Unlock()
}

// Advance moves the clock forward by d, firing due timers in deadline
// order. Channel timers receive the fire time; AfterFunc functions run
// synchronously on the calling goroutine, so when Advance returns every
// due AfterFunc has completed.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	now := f.now
	var due []*fakeTimer
	for i := 0; i < len(f.timers); {
		t := f.timers[i]
		if t.stopped || !t.when.After(now) {
			if !t.stopped {
				due = append(due, t)
			}
			f.timers = append(f.timers[:i], f.timers[i+1:]...)
			continue
		}
		i++
	}
	sort.SliceStable(due, func(i, j int) bool { return due[i].when.Before(due[j].when) })
	f.mu.Unlock()
	for _, t := range due {
		if t.ch != nil {
			t.ch <- now
		} else {
			t.f()
		}
	}
}

// BlockUntil returns once at least n timers are armed on the clock —
// how a test synchronizes with a goroutine that is about to sleep
// before advancing time past it.
func (f *Fake) BlockUntil(n int) {
	f.mu.Lock()
	if len(f.timers) >= n {
		f.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	f.waiters = append(f.waiters, waiter{n: n, ch: ch})
	f.mu.Unlock()
	<-ch
}

// Timers reports how many timers are currently armed.
func (f *Fake) Timers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.timers)
}
