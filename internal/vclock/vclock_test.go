package vclock

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

func TestFakeNowAdvance(t *testing.T) {
	start := time.Unix(1000, 0)
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", f.Now(), start)
	}
	f.Advance(3 * time.Second)
	if want := start.Add(3 * time.Second); !f.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", f.Now(), want)
	}
}

func TestFakeAfterFiresInOrder(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	var order []int
	f.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	f.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	f.AfterFunc(5*time.Second, func() { order = append(order, 5) })
	f.Advance(3 * time.Second)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("fired %v, want [1 2]", order)
	}
	f.Advance(2 * time.Second)
	if len(order) != 3 || order[2] != 5 {
		t.Fatalf("fired %v, want [1 2 5]", order)
	}
}

func TestFakeAfterChannel(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	ch := f.After(time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before Advance")
	default:
	}
	f.Advance(time.Second)
	select {
	case ts := <-ch:
		if !ts.Equal(time.Unix(1, 0)) {
			t.Fatalf("fired at %v, want 1s", ts)
		}
	default:
		t.Fatal("After did not fire at its deadline")
	}
}

func TestFakeStop(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	var fired atomic.Bool
	tm := f.AfterFunc(time.Second, func() { fired.Store(true) })
	if !tm.Stop() {
		t.Fatal("Stop = false on a pending timer")
	}
	f.Advance(2 * time.Second)
	if fired.Load() {
		t.Fatal("stopped timer fired")
	}
}

func TestFakeBlockUntil(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-f.After(time.Second)
	}()
	f.BlockUntil(1) // returns only after the goroutine armed its timer
	f.Advance(time.Second)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("goroutine never woke after Advance")
	}
}

func TestSleepContextCancelled(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- Sleep(ctx, f, time.Minute) }()
	f.BlockUntil(1)
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("Sleep = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not return on cancellation")
	}
	if err := Sleep(context.Background(), f, 0); err != nil {
		t.Fatalf("zero-duration Sleep = %v", err)
	}
}

func TestSystemClock(t *testing.T) {
	var c Clock = System{}
	before := time.Now()
	if c.Now().Before(before) {
		t.Fatal("System.Now went backwards")
	}
	var fired atomic.Bool
	tm := c.AfterFunc(time.Hour, func() { fired.Store(true) })
	if !tm.Stop() || fired.Load() {
		t.Fatal("System.AfterFunc Stop failed")
	}
}
