package exp

import (
	"scaleout/internal/exp/engine"
	"scaleout/internal/metrics"
)

// PointLatencyBuckets are the histogram bucket upper bounds (seconds)
// for per-point resolution latency: simulator points land in the
// 0.5ms–100ms range, remote points add a network round-trip, and the
// top buckets catch pathological queueing.
var PointLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// RegisterEngineMetrics registers eng's counters and gauges on reg
// under the soproc_engine_* namespace. Values are read from
// eng.Stats() at scrape time, so the engine's hot path gains no new
// writes.
func RegisterEngineMetrics(reg *metrics.Registry, eng *Engine) {
	reg.CounterFunc("soproc_engine_points_total",
		"points computed by this engine's local worker pool (memo misses, including seeded structural batches)",
		func() float64 { return float64(eng.Stats().Misses) })
	reg.CounterFunc("soproc_engine_memo_hits_total",
		"points served from the in-memory memo, including waits on in-flight duplicates",
		func() float64 { return float64(eng.Stats().Hits) })
	reg.CounterFunc("soproc_engine_memo_evictions_total",
		"memo entries discarded to stay within capacity",
		func() float64 { return float64(eng.Stats().Evictions) })
	reg.CounterFunc("soproc_engine_store_hits_total",
		"memo misses answered by the persistent result store",
		func() float64 { return float64(eng.Stats().StoreHits) })
	reg.CounterFunc("soproc_engine_remote_points_total",
		"points resolved by the installed router on a cluster replica",
		func() float64 { return float64(eng.Stats().Remote) })
	reg.GaugeFunc("soproc_engine_in_flight_points",
		"computations executing right now",
		func() float64 { return float64(eng.Stats().InFlight) })
	reg.GaugeFunc("soproc_engine_memo_entries",
		"resident memo entries",
		func() float64 { return float64(eng.Stats().MemoSize) })
	reg.GaugeFunc("soproc_engine_memo_capacity_entries",
		"memo resident-entry bound (0 = unbounded)",
		func() float64 { return float64(eng.Stats().MemoCapacity) })
	reg.GaugeFunc("soproc_engine_worker_slots",
		"worker-pool size",
		func() float64 { return float64(eng.Workers()) })
}

// NewPointLatencyHistogram registers and returns the engine's
// per-point latency histogram (soproc_engine_point_latency_seconds):
// compute time for locally simulated points (queue wait excluded) and
// end-to-end time for routed points.
func NewPointLatencyHistogram(reg *metrics.Registry) *metrics.Histogram {
	return reg.Histogram("soproc_engine_point_latency_seconds",
		"per-point resolution latency: local compute time for simulated points, round-trip for routed points",
		PointLatencyBuckets)
}

// ObserveDecisions installs a decision hook on eng that appends every
// resolution to log (nil skips the trace) and observes computed-point
// latency into hist (nil skips the histogram). Memo keys are condensed
// with metrics.KeyFingerprint before they enter a trace record. With
// both arguments nil the hook is removed.
func ObserveDecisions(eng *Engine, log *metrics.DecisionLog, hist *metrics.Histogram) {
	if log == nil && hist == nil {
		eng.SetDecisionHook(nil)
		return
	}
	eng.SetDecisionHook(func(d engine.Decision) {
		if hist != nil && !d.Err {
			switch d.Source {
			case "simulated":
				hist.Observe((d.Latency - d.QueueWait).Seconds())
			case "remote":
				hist.Observe(d.Latency.Seconds())
			}
		}
		if log != nil {
			log.Add(metrics.Decision{
				Key:              metrics.KeyFingerprint(d.Key),
				Source:           d.Source,
				Replica:          d.Replica,
				Rank:             d.Rank,
				Retries:          d.Retries,
				QueueWaitSeconds: d.QueueWait.Seconds(),
				LatencySeconds:   d.Latency.Seconds(),
				Err:              d.Err,
			})
		}
	})
}
