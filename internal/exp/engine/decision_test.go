package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// decisionRecorder collects hook emissions; safe for the concurrent
// paths the engine calls it from.
type decisionRecorder struct {
	mu   sync.Mutex
	recs []Decision
}

func (r *decisionRecorder) hook(d Decision) {
	r.mu.Lock()
	r.recs = append(r.recs, d)
	r.mu.Unlock()
}

func (r *decisionRecorder) bySource(source string) []Decision {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Decision
	for _, d := range r.recs {
		if d.Source == source {
			out = append(out, d)
		}
	}
	return out
}

// TestDecisionHookSources drives every decision source through one
// engine and checks each is recorded with its key and cost fields.
func TestDecisionHookSources(t *testing.T) {
	rec := &decisionRecorder{}
	e := NewBounded(2, 2)
	e.SetDecisionHook(rec.hook)
	ctx := context.Background()

	compute := func() (any, error) { time.Sleep(time.Millisecond); return "v", nil }
	if _, err := e.Do(ctx, "k1", compute); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Do(ctx, "k1", compute); err != nil { // memo hit
		t.Fatal(err)
	}
	if !e.Seed("k2", "seeded") {
		t.Fatal("Seed declined")
	}
	// Third key on a capacity-2 memo evicts the LRU entry.
	if _, err := e.Do(ctx, "k3", compute); err != nil {
		t.Fatal(err)
	}

	sim := rec.bySource("simulated")
	if len(sim) != 2 || sim[0].Key != "k1" || sim[0].Latency <= 0 || sim[0].Err {
		t.Errorf("simulated decisions = %+v", sim)
	}
	if hits := rec.bySource("memo"); len(hits) != 1 || hits[0].Key != "k1" {
		t.Errorf("memo decisions = %+v", hits)
	}
	if seeded := rec.bySource("seeded"); len(seeded) != 1 || seeded[0].Key != "k2" {
		t.Errorf("seeded decisions = %+v", seeded)
	}
	if ev := rec.bySource("evicted"); len(ev) != 1 {
		t.Errorf("evicted decisions = %+v", ev)
	}
}

// TestDecisionHookRemote verifies a router fills the RouteInfo slot
// the engine attaches and the decision carries it.
func TestDecisionHookRemote(t *testing.T) {
	rec := &decisionRecorder{}
	e := New(1)
	e.SetDecisionHook(rec.hook)
	e.SetRoute(func(ctx context.Context, key string, payload any) (any, bool, error) {
		if ri := RouteInfoFrom(ctx); ri != nil {
			ri.Replica, ri.Rank, ri.Retries = "replica-7:8080", 1, 2
		}
		return "remote-val", true, nil
	})
	val, err := e.DoRouted(context.Background(), "rk", "payload", func() (any, error) {
		t.Error("routed point must not compute locally")
		return nil, nil
	})
	if err != nil || val != "remote-val" {
		t.Fatalf("DoRouted = %v, %v", val, err)
	}
	remote := rec.bySource("remote")
	if len(remote) != 1 {
		t.Fatalf("remote decisions = %+v", remote)
	}
	d := remote[0]
	if d.Replica != "replica-7:8080" || d.Rank != 1 || d.Retries != 2 || d.Key != "rk" {
		t.Errorf("remote decision = %+v", d)
	}
}

// TestDecisionHookErrTagged checks a failing compute is recorded with
// Err set, and a cancellation is not recorded at all.
func TestDecisionHookErrTagged(t *testing.T) {
	rec := &decisionRecorder{}
	e := New(1)
	e.SetDecisionHook(rec.hook)
	boom := errors.New("boom")
	if _, err := e.Do(context.Background(), "bad", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if sim := rec.bySource("simulated"); len(sim) != 1 || !sim[0].Err {
		t.Errorf("failed compute decisions = %+v", sim)
	}
	if _, err := e.Do(context.Background(), "cancelled", func() (any, error) {
		return nil, context.Canceled
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	for _, d := range rec.bySource("simulated") {
		if d.Key == "cancelled" {
			t.Errorf("cancellation was recorded as a decision: %+v", d)
		}
	}
}

// TestNoHookNoRouteInfo pins the unobserved fast path: without a hook
// the router sees no RouteInfo slot.
func TestNoHookNoRouteInfo(t *testing.T) {
	e := New(1)
	e.SetRoute(func(ctx context.Context, key string, payload any) (any, bool, error) {
		if RouteInfoFrom(ctx) != nil {
			t.Error("RouteInfo attached without a decision hook")
		}
		return "v", true, nil
	})
	if _, err := e.DoRouted(context.Background(), "k", "p", nil); err != nil {
		t.Fatal(err)
	}
}
