// Package engine provides the worker pool and memo that back the
// experiment layer (internal/exp): a fixed-size pool that bounds
// concurrent computations, context cancellation, and a memo keyed by
// canonical configuration fingerprints so identical points are computed
// exactly once while resident.
//
// The memo is optionally capacity-bounded (NewBounded): a long-running
// process — cmd/soprocd serving ad-hoc sweeps — caps its resident
// entries and evicts in least-recently-used order, while the one-shot
// CLIs keep the unbounded memo (New) whose behaviour is identical to a
// plain per-process cache. Eviction never weakens the single-flight
// guarantee: entries that are in flight or being waited on are pinned
// and cannot be evicted, so two concurrent requests for one key still
// share one computation.
//
// It lives below the simulator so that packages the experiment layer
// itself drives can share the pool without an import cycle —
// sim.RunSampled fans its seed samples out across the same workers that
// run figure sweeps. internal/exp re-exports the user-facing surface
// (Engine, WithEngine, Fingerprint, ...) and layers the typed Point
// API on top of Do.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Engine is a parallel, memoizing work runner. The zero value is not
// usable; construct with New or NewBounded. An Engine is safe for
// concurrent use by any number of goroutines; its memo is shared across
// all work run on it for the life of the process.
type Engine struct {
	sem chan struct{} // one slot per worker

	// route, when set (SetRoute), is consulted once per memo miss for
	// work carrying a routable payload; see Route.
	route atomic.Pointer[Route]

	// store, when set (SetStore), is the persistent second memo tier:
	// probed on every memo miss before the work is routed or computed,
	// and written through on every successful computation; see Store.
	store atomic.Pointer[Store]

	// decision, when set (SetDecisionHook), observes every memoized
	// point's resolution and every eviction; see Decision. With no hook
	// installed the hot path takes no timestamps.
	decision decisionHookPtr

	mu       sync.Mutex
	memo     map[string]*memoEntry
	capacity int // max resident memo entries; 0 = unbounded
	// Intrusive LRU list over the evictable entries: complete and
	// currently unreferenced. lruHead is the most recently used,
	// lruTail the eviction candidate. Pinned entries (refs > 0 —
	// in flight, or being waited on) are never on this list.
	lruHead, lruTail *memoEntry

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	remote    atomic.Int64 // work resolved by the installed Route
	storeHits atomic.Int64 // memo misses answered by the installed Store
	inflight  atomic.Int64 // computations currently executing
}

// Route resolves one memo miss somewhere other than the local worker
// pool — in practice, on a cluster replica (internal/cluster). It
// receives the memo key and the payload the caller attached to the work
// (DoRouted); a typical router serializes the payload, ships it to the
// replica that owns the key, and returns the computed value. Returning
// handled=false declines the work — because the payload is not
// representable on the wire, or every replica is down — and the engine
// computes it locally instead, so a router can never change results,
// only where they are computed. Returning handled=true with a
// cancellation error withdraws the memo entry exactly as a cancelled
// local computation would, so a later call retries for real.
//
// A Route runs under the key's single-flight memo entry but does NOT
// hold a worker slot: remote work waits on the network, not on local
// CPU, so routed keys do not starve the local pool.
type Route func(ctx context.Context, key string, payload any) (val any, handled bool, err error)

// SetRoute installs r as the engine's router, consulted on every memo
// miss whose work carries a non-nil payload (DoRouted) unless routing
// is disabled on the request context (DisableRouting). Install the
// router before the engine starts serving work; a nil r removes it.
func (e *Engine) SetRoute(r Route) {
	if r == nil {
		e.route.Store(nil)
		return
	}
	e.route.Store(&r)
}

type noRouteKey struct{}

// DisableRouting returns a context whose work is always computed
// locally, even on an engine with a router installed. The serve layer
// applies it to requests already forwarded by a coordinator, so a
// misconfigured peer cycle (A routes to B, B routes to A) degenerates to
// one forwarding hop instead of an infinite loop.
func DisableRouting(ctx context.Context) context.Context {
	return context.WithValue(ctx, noRouteKey{}, true)
}

// routingDisabled reports whether DisableRouting marked ctx.
func routingDisabled(ctx context.Context) bool {
	on, _ := ctx.Value(noRouteKey{}).(bool)
	return on
}

// RoutingDisabled reports whether DisableRouting marked ctx. The tiered
// evaluator (internal/tier) uses it together with HasRoute to decide
// whether escalated points should go through the routable per-point
// path (so a cluster coordinator can ship them to replicas) or the
// local shape-batched path.
func RoutingDisabled(ctx context.Context) bool { return routingDisabled(ctx) }

// HasRoute reports whether a router is installed (SetRoute).
func (e *Engine) HasRoute() bool { return e.route.Load() != nil }

// Store is the engine's optional persistent second memo tier
// (internal/store implements it over an append-only log). Load returns
// the stored value for a memo key; Save records a freshly computed
// (key, value) pair and may decline values it cannot represent. Both
// must be safe for concurrent use.
//
// With a store installed (SetStore) the memo hierarchy becomes
// memory → disk → compute: a memo miss probes Load before the work is
// routed or computed — a hit completes the key's single-flight entry
// without holding a worker slot and counts as a store hit, never a miss,
// so "points simulated" stays truthful — and every successful
// computation (local, routed, or seeded) is written through with Save.
// Like a Route, a Store can never change a result, only whether it is
// recomputed.
type Store interface {
	// Load returns the stored value for key, if present.
	Load(key string) (val any, ok bool)
	// Save records a computed value under key. Implementations must
	// tolerate values of any type, ignoring those they cannot persist.
	Save(key string, val any)
}

// SetStore installs s as the engine's persistent result tier, probed on
// every memo miss and written through on every successful computation.
// Install it before the engine starts serving work; a nil s removes it.
func (e *Engine) SetStore(s Store) {
	if s == nil {
		e.store.Store(nil)
		return
	}
	e.store.Store(&s)
}

// HasStore reports whether a persistent result tier is installed
// (SetStore).
func (e *Engine) HasStore() bool { return e.store.Load() != nil }

// storeLoad probes the installed store for key; ok is false without a
// store. A hit counts toward Stats.StoreHits.
func (e *Engine) storeLoad(key string) (any, bool) {
	sp := e.store.Load()
	if sp == nil {
		return nil, false
	}
	val, ok := (*sp).Load(key)
	if ok {
		e.storeHits.Add(1)
	}
	return val, ok
}

// storeSave writes a successful computation through to the installed
// store, if any.
func (e *Engine) storeSave(key string, val any) {
	if sp := e.store.Load(); sp != nil {
		(*sp).Save(key, val)
	}
}

// memoEntry is the memo slot for one key. done is closed once val/err
// are final, so concurrent requests for an in-flight key wait instead of
// recomputing. refs (guarded by Engine.mu) counts the owner computing
// the entry plus every waiter; while refs > 0 the entry is pinned —
// off the LRU list and ineligible for eviction.
type memoEntry struct {
	key  string
	done chan struct{}
	val  any
	err  error

	refs       int
	prev, next *memoEntry
	inLRU      bool
}

// New returns an engine with the given worker-pool size and an
// unbounded memo; workers <= 0 selects GOMAXPROCS.
func New(workers int) *Engine { return NewBounded(workers, 0) }

// NewBounded returns an engine whose memo holds at most capacity
// resident entries, evicting the least recently used complete entry
// when a new key would exceed it; capacity <= 0 means unbounded.
// Entries that are in flight or being waited on are pinned and never
// evicted, so the resident count can transiently exceed capacity when
// more than capacity keys are referenced at once.
func NewBounded(workers, capacity int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if capacity < 0 {
		capacity = 0
	}
	return &Engine{
		sem:      make(chan struct{}, workers),
		memo:     make(map[string]*memoEntry),
		capacity: capacity,
	}
}

// Workers reports the worker-pool size.
func (e *Engine) Workers() int { return cap(e.sem) }

// MemoCapacity reports the memo's resident-entry bound; 0 is unbounded.
func (e *Engine) MemoCapacity() int { return e.capacity }

// Stats is a snapshot of an engine's counters.
type Stats struct {
	// Hits counts work served from the memo, including waits on
	// in-flight duplicates. Misses counts work actually computed.
	Hits, Misses int64
	// Evictions counts memo entries discarded to stay within
	// MemoCapacity; an evicted key is recomputed on next request.
	Evictions int64
	// Remote counts work resolved by the installed Route (computed on a
	// cluster replica rather than the local pool). Always 0 without a
	// router.
	Remote int64
	// StoreHits counts memo misses answered by the installed Store
	// (served from disk rather than simulated). Always 0 without a
	// store.
	StoreHits int64
	// InFlight is the number of computations executing right now.
	InFlight int64
	// MemoSize is the number of resident memo entries; at most
	// MemoCapacity when bounded, except transiently while more than
	// MemoCapacity entries are pinned. MemoCapacity 0 means unbounded.
	MemoSize     int
	MemoCapacity int
}

// Stats snapshots the engine's memo and work counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	size := len(e.memo)
	e.mu.Unlock()
	return Stats{
		Hits:         e.hits.Load(),
		Misses:       e.misses.Load(),
		Evictions:    e.evictions.Load(),
		Remote:       e.remote.Load(),
		StoreHits:    e.storeHits.Load(),
		InFlight:     e.inflight.Load(),
		MemoSize:     size,
		MemoCapacity: e.capacity,
	}
}

var defaultEngine = New(0)

// Default returns the process-wide engine: GOMAXPROCS workers and an
// unbounded memo shared by everything that does not install its own
// engine.
func Default() *Engine { return defaultEngine }

type ctxKey struct{}

// WithEngine returns a context carrying e; experiment code retrieves it
// with FromContext. This is how a CLI's -parallel flag and
// serial-baseline tests select a pool size without threading an Engine
// through every call signature.
func WithEngine(ctx context.Context, e *Engine) context.Context {
	return context.WithValue(ctx, ctxKey{}, e)
}

// FromContext returns the context's engine, or Default if none is set.
func FromContext(ctx context.Context) *Engine {
	if e, ok := ctx.Value(ctxKey{}).(*Engine); ok && e != nil {
		return e
	}
	return Default()
}

// Fingerprint canonically serializes a configuration value. fmt prints
// map fields in sorted key order, so two equal values always produce the
// same string regardless of construction order.
func Fingerprint(v any) string { return fmt.Sprintf("%#v", v) }

// Do runs compute under a worker slot, memoized by key. Two calls with
// equal non-empty keys must describe identical computations; the engine
// computes each distinct key at most once while it stays resident and
// serves later requests from the memo (in-flight duplicates wait on the
// first computation). On a bounded engine a key evicted under capacity
// pressure is recomputed on its next request; a key is never computed
// twice concurrently. An empty key disables memoization for the call.
//
// compute must not call back into the same engine: it runs while
// holding a worker slot, so nested calls can exhaust the pool and
// deadlock. A compute that returns a cancellation error is withdrawn
// from the memo — a cancellation is not a fact about the key — so a
// later call retries it for real.
func (e *Engine) Do(ctx context.Context, key string, compute func() (any, error)) (any, error) {
	return e.DoRouted(ctx, key, nil, compute)
}

// DoRouted is Do with a routable payload attached: on a memo miss, an
// engine with a router (SetRoute) offers (key, payload) to the router
// before computing locally, so a cluster coordinator can ship the work
// to the replica owning the key. payload must describe the same
// computation as compute — routing only moves where a point runs, never
// what it returns. A nil payload, an engine without a router, or a
// context marked by DisableRouting always computes locally; so does any
// point the router declines. Memoization, single-flight dedup, and
// cancellation withdrawal are identical to Do in every case.
func (e *Engine) DoRouted(ctx context.Context, key string, payload any, compute func() (any, error)) (any, error) {
	if key == "" {
		if err := e.acquire(ctx); err != nil {
			return nil, err
		}
		defer e.release()
		e.inflight.Add(1)
		defer e.inflight.Add(-1)
		return compute()
	}

	hook := e.loadDecisionHook()
	start := decisionClock(hook)

	var ent *memoEntry
	for {
		e.mu.Lock()
		if existing, ok := e.memo[key]; ok {
			// Pin while waiting so capacity pressure from other keys
			// cannot evict an entry someone is relying on.
			e.pinLocked(existing)
			e.mu.Unlock()
			select {
			case <-existing.done:
				val, err := existing.val, existing.err
				e.unpin(existing)
				if IsCancellation(err) {
					// The owner was cancelled before it could compute
					// and withdrew the entry; retry under our own
					// context rather than inheriting its cancellation.
					continue
				}
				e.hits.Add(1)
				if hook != nil {
					(*hook)(Decision{Key: key, Source: "memo", Latency: time.Since(start), Err: err != nil})
				}
				if err != nil {
					return nil, err
				}
				return val, nil
			case <-ctx.Done():
				e.unpin(existing)
				return nil, ctx.Err()
			}
		}
		ent = &memoEntry{key: key, done: make(chan struct{}), refs: 1}
		e.memo[key] = ent
		// The insert may push the memo over capacity; evict the
		// least recently used unpinned entry (never this one — it is
		// pinned by its owner ref until the computation finishes).
		e.trimLocked()
		e.mu.Unlock()
		break
	}

	// Probe the persistent store before routing or computing: a disk
	// hit completes the owned single-flight entry immediately, without
	// holding a worker slot or a network round-trip, and counts as a
	// store hit rather than a miss — the point was never simulated.
	if val, ok := e.storeLoad(key); ok {
		if hook != nil {
			(*hook)(Decision{Key: key, Source: "store", Latency: time.Since(start)})
		}
		return e.finish(ent, key, val, nil)
	}

	// Offer the work to the router next: routed work waits on a
	// replica, not a local worker slot, so it skips acquire entirely.
	// The entry is already owned, so concurrent requests for the key
	// wait on this one routed flight.
	if payload != nil && !routingDisabled(ctx) {
		if rp := e.route.Load(); rp != nil {
			// Only observed requests pay for the RouteInfo allocation;
			// the router finds the slot with RouteInfoFrom and fills in
			// where the point actually ran.
			rctx := ctx
			var ri *RouteInfo
			if hook != nil {
				rctx, ri = withRouteInfo(ctx)
			}
			if val, handled, rerr := (*rp)(rctx, key, payload); handled {
				if rerr == nil {
					e.remote.Add(1)
					e.storeSave(key, val)
				}
				if hook != nil && !IsCancellation(rerr) {
					d := Decision{Key: key, Source: "remote", Latency: time.Since(start), Err: rerr != nil}
					d.Replica, d.Rank, d.Retries = ri.Replica, ri.Rank, ri.Retries
					(*hook)(d)
				}
				return e.finish(ent, key, val, rerr)
			}
		}
	}

	acquireStart := decisionClock(hook)
	if err := e.acquire(ctx); err != nil {
		// Never computed: withdraw the entry so a later call can retry,
		// and release current waiters with the cancellation.
		e.mu.Lock()
		if e.memo[key] == ent {
			delete(e.memo, key)
		}
		ent.refs-- // owner ref; withdrawn, so never enters the LRU
		e.mu.Unlock()
		ent.err = err
		close(ent.done)
		return nil, err
	}
	var queueWait time.Duration
	if hook != nil {
		queueWait = time.Since(acquireStart)
	}
	e.misses.Add(1)
	e.inflight.Add(1)
	val, cerr := compute()
	e.inflight.Add(-1)
	e.release()
	if cerr == nil {
		e.storeSave(key, val)
	}
	// A cancellation withdraws the entry rather than resolving the
	// point, so it is not a decision worth recording.
	if hook != nil && !IsCancellation(cerr) {
		(*hook)(Decision{Key: key, Source: "simulated", QueueWait: queueWait,
			Latency: time.Since(start), Err: cerr != nil})
	}
	return e.finish(ent, key, val, cerr)
}

// finish publishes the result of an owned memo entry and drops the
// owner pin (a resident complete entry joins the LRU). A cancellation
// is not a fact about the key: the entry is withdrawn — before done
// closes, so woken waiters re-find an empty slot — and a later call
// computes it for real.
func (e *Engine) finish(ent *memoEntry, key string, val any, err error) (any, error) {
	ent.val, ent.err = val, err
	if IsCancellation(err) {
		e.mu.Lock()
		if e.memo[key] == ent {
			delete(e.memo, key)
		}
		e.mu.Unlock()
	}
	close(ent.done)
	e.unpin(ent)
	if err != nil {
		return nil, err
	}
	return val, nil
}

// pinLocked takes a reference on ent, removing it from the LRU list if
// it was evictable. On an unbounded engine nothing can ever be evicted,
// so the bookkeeping (and unpin's second lock acquisition on the memo
// hit path) is skipped entirely. Callers hold e.mu.
func (e *Engine) pinLocked(ent *memoEntry) {
	if e.capacity == 0 {
		return
	}
	ent.refs++
	if ent.inLRU {
		e.lruRemoveLocked(ent)
	}
}

// unpin drops a reference on ent. The last reference moves a resident
// (non-withdrawn) entry to the front of the LRU list — by then it is
// complete, since the owner's computation holds a reference — and
// applies capacity pressure.
func (e *Engine) unpin(ent *memoEntry) {
	if e.capacity == 0 {
		return
	}
	e.mu.Lock()
	ent.refs--
	if ent.refs == 0 && e.memo[ent.key] == ent {
		e.lruPushFrontLocked(ent)
		e.trimLocked()
	}
	e.mu.Unlock()
}

// trimLocked evicts least-recently-used unpinned entries until the memo
// fits its capacity. If every resident entry is pinned the memo may
// transiently exceed capacity; the next unpin re-applies the bound.
// Callers hold e.mu.
func (e *Engine) trimLocked() {
	var hook *DecisionHook
	if e.capacity > 0 && len(e.memo) > e.capacity {
		hook = e.loadDecisionHook()
	}
	for e.capacity > 0 && len(e.memo) > e.capacity {
		victim := e.lruTail
		if victim == nil {
			return
		}
		e.lruRemoveLocked(victim)
		delete(e.memo, victim.key)
		e.evictions.Add(1)
		// The hook runs under e.mu here; the DecisionHook contract
		// (fast, non-blocking, never reenters the engine) makes that
		// safe.
		if hook != nil {
			(*hook)(Decision{Key: victim.key, Source: "evicted"})
		}
	}
}

func (e *Engine) lruPushFrontLocked(ent *memoEntry) {
	ent.inLRU = true
	ent.prev = nil
	ent.next = e.lruHead
	if e.lruHead != nil {
		e.lruHead.prev = ent
	} else {
		e.lruTail = ent
	}
	e.lruHead = ent
}

func (e *Engine) lruRemoveLocked(ent *memoEntry) {
	if ent.prev != nil {
		ent.prev.next = ent.next
	} else {
		e.lruHead = ent.next
	}
	if ent.next != nil {
		ent.next.prev = ent.prev
	} else {
		e.lruTail = ent.prev
	}
	ent.prev, ent.next = nil, nil
	ent.inLRU = false
}

// Cached returns the memoized value for key if a computation for it has
// already completed successfully, without waiting: an in-flight key, a
// failed key, or an absent key all report ok=false. A successful lookup
// counts as a memo hit and refreshes the entry's LRU position on a
// bounded engine. Cached deliberately does not join an in-flight
// computation — callers that want single-flight semantics use Do; this
// is the peek the tiered evaluator takes before deciding to batch
// escalated points itself.
func (e *Engine) Cached(key string) (any, bool) {
	if key == "" {
		return nil, false
	}
	e.mu.Lock()
	ent, ok := e.memo[key]
	if !ok {
		e.mu.Unlock()
		// The memory tier has nothing; probe the persistent store. A
		// disk hit installs as a resident completed entry — no miss is
		// counted, the point was never simulated — so later Do calls
		// for the key are memo hits.
		val, found := e.storeLoad(key)
		if !found {
			return nil, false
		}
		e.mu.Lock()
		if _, raced := e.memo[key]; !raced {
			e.installLocked(key, val)
		}
		e.mu.Unlock()
		return val, true
	}
	select {
	case <-ent.done:
	default: // in flight: do not wait
		e.mu.Unlock()
		return nil, false
	}
	if ent.err != nil {
		e.mu.Unlock()
		return nil, false
	}
	if e.capacity > 0 && ent.inLRU {
		e.lruRemoveLocked(ent)
		e.lruPushFrontLocked(ent)
	}
	val := ent.val
	e.mu.Unlock()
	e.hits.Add(1)
	return val, true
}

// Seed inserts a completed (key, val) pair into the memo, as if a Do
// for key had just computed val, and reports whether the insert
// happened: a key that is already resident or in flight is left
// untouched (the existing computation wins). The tiered evaluator uses
// Seed to publish results it computed through the shape-batched
// structural path, so later Do calls for the same key — from a figure
// generator or an HTTP sweep — are memo hits instead of recomputations.
// The pair must obey the same contract as Do: val must be the value the
// key's computation would produce.
func (e *Engine) Seed(key string, val any) bool {
	if key == "" {
		return false
	}
	e.mu.Lock()
	if _, ok := e.memo[key]; ok {
		e.mu.Unlock()
		return false
	}
	// A seeded insert is a computation entering the memo, exactly like a
	// Do miss — count it as one, so "points simulated" stays truthful
	// whichever path ran the simulator.
	e.misses.Add(1)
	e.installLocked(key, val)
	e.mu.Unlock()
	e.storeSave(key, val)
	if hook := e.loadDecisionHook(); hook != nil {
		(*hook)(Decision{Key: key, Source: "seeded"})
	}
	return true
}

// installLocked inserts a completed memo entry for key without touching
// the miss counter — the shared tail of Seed (which counts its insert as
// a miss, since the caller ran the simulator) and the disk-hit paths
// (which must not: a stored result was computed in an earlier life).
// The caller holds e.mu and has verified key is absent.
func (e *Engine) installLocked(key string, val any) {
	closed := make(chan struct{})
	close(closed)
	ent := &memoEntry{key: key, done: closed, val: val}
	e.memo[key] = ent
	if e.capacity > 0 {
		e.lruPushFrontLocked(ent)
		e.trimLocked()
	}
}

// IsCancellation reports whether err is a context cancellation or
// deadline rather than a genuine computation failure.
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// FirstError selects a batch's reportable error: the first genuine
// failure in input order or, if every error is a cancellation, the
// first cancellation — so a deterministic config error is never masked
// by the cancellations it triggered in sibling points. A non-nil wrap
// decorates the chosen error with its index (e.g. an experiment ID).
// It returns nil if every error is nil.
func FirstError(errs []error, wrap func(int, error) error) error {
	if wrap == nil {
		wrap = func(_ int, err error) error { return err }
	}
	var first error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if !IsCancellation(err) {
			return wrap(i, err)
		}
		if first == nil {
			first = wrap(i, err)
		}
	}
	return first
}

func (e *Engine) acquire(ctx context.Context) error {
	// Check cancellation first: select chooses randomly among ready
	// cases, and a cancelled batch must not start new work just because
	// a worker slot happens to be free.
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case e.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *Engine) release() { <-e.sem }
