// Package engine provides the worker pool and memo that back the
// experiment layer (internal/exp): a fixed-size pool that bounds
// concurrent computations, context cancellation, and a process-wide
// memo keyed by canonical configuration fingerprints so identical
// points are computed exactly once.
//
// It lives below the simulator so that packages the experiment layer
// itself drives can share the pool without an import cycle —
// sim.RunSampled fans its seed samples out across the same workers that
// run figure sweeps. internal/exp re-exports the user-facing surface
// (Engine, WithEngine, Fingerprint, ...) and layers the typed Point
// API on top of Do.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Engine is a parallel, memoizing work runner. The zero value is not
// usable; construct with New. An Engine is safe for concurrent use by
// any number of goroutines; its memo is shared across all work run on
// it for the life of the process.
type Engine struct {
	sem  chan struct{} // one slot per worker
	mu   sync.Mutex
	memo map[string]*memoEntry

	hits   atomic.Int64
	misses atomic.Int64
}

// memoEntry is the memo slot for one key. done is closed once val/err
// are final, so concurrent requests for an in-flight key wait instead of
// recomputing.
type memoEntry struct {
	done chan struct{}
	val  any
	err  error
}

// New returns an engine with the given worker-pool size; workers <= 0
// selects GOMAXPROCS.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		sem:  make(chan struct{}, workers),
		memo: make(map[string]*memoEntry),
	}
}

// Workers reports the worker-pool size.
func (e *Engine) Workers() int { return cap(e.sem) }

// Stats reports memo hits (work served from cache, including waits on
// in-flight duplicates) and misses (work actually computed).
func (e *Engine) Stats() (hits, misses int64) {
	return e.hits.Load(), e.misses.Load()
}

var defaultEngine = New(0)

// Default returns the process-wide engine: GOMAXPROCS workers and a
// memo shared by everything that does not install its own engine.
func Default() *Engine { return defaultEngine }

type ctxKey struct{}

// WithEngine returns a context carrying e; experiment code retrieves it
// with FromContext. This is how a CLI's -parallel flag and
// serial-baseline tests select a pool size without threading an Engine
// through every call signature.
func WithEngine(ctx context.Context, e *Engine) context.Context {
	return context.WithValue(ctx, ctxKey{}, e)
}

// FromContext returns the context's engine, or Default if none is set.
func FromContext(ctx context.Context) *Engine {
	if e, ok := ctx.Value(ctxKey{}).(*Engine); ok && e != nil {
		return e
	}
	return Default()
}

// Fingerprint canonically serializes a configuration value. fmt prints
// map fields in sorted key order, so two equal values always produce the
// same string regardless of construction order.
func Fingerprint(v any) string { return fmt.Sprintf("%#v", v) }

// Do runs compute under a worker slot, memoized by key. Two calls with
// equal non-empty keys must describe identical computations; the engine
// computes each distinct key at most once per process and serves later
// requests from the memo (in-flight duplicates wait on the first
// computation). An empty key disables memoization for the call.
//
// compute must not call back into the same engine: it runs while
// holding a worker slot, so nested calls can exhaust the pool and
// deadlock. A compute that returns a cancellation error is withdrawn
// from the memo — a cancellation is not a fact about the key — so a
// later call retries it for real.
func (e *Engine) Do(ctx context.Context, key string, compute func() (any, error)) (any, error) {
	if key == "" {
		if err := e.acquire(ctx); err != nil {
			return nil, err
		}
		defer e.release()
		return compute()
	}

	var ent *memoEntry
	for {
		e.mu.Lock()
		if existing, ok := e.memo[key]; ok {
			e.mu.Unlock()
			select {
			case <-existing.done:
				if IsCancellation(existing.err) {
					// The owner was cancelled before it could compute
					// and withdrew the entry; retry under our own
					// context rather than inheriting its cancellation.
					continue
				}
				e.hits.Add(1)
				if existing.err != nil {
					return nil, existing.err
				}
				return existing.val, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		ent = &memoEntry{done: make(chan struct{})}
		e.memo[key] = ent
		e.mu.Unlock()
		break
	}

	if err := e.acquire(ctx); err != nil {
		// Never computed: withdraw the entry so a later call can retry,
		// and release current waiters with the cancellation.
		e.mu.Lock()
		delete(e.memo, key)
		e.mu.Unlock()
		ent.err = err
		close(ent.done)
		return nil, err
	}
	e.misses.Add(1)
	ent.val, ent.err = compute()
	e.release()
	if IsCancellation(ent.err) {
		// A cancellation is not a fact about the key; withdraw the
		// entry (before closing done, so woken waiters re-find an empty
		// slot) so another call can compute it for real.
		e.mu.Lock()
		delete(e.memo, key)
		e.mu.Unlock()
	}
	close(ent.done)
	if ent.err != nil {
		return nil, ent.err
	}
	return ent.val, nil
}

// IsCancellation reports whether err is a context cancellation or
// deadline rather than a genuine computation failure.
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// FirstError selects a batch's reportable error: the first genuine
// failure in input order or, if every error is a cancellation, the
// first cancellation — so a deterministic config error is never masked
// by the cancellations it triggered in sibling points. A non-nil wrap
// decorates the chosen error with its index (e.g. an experiment ID).
// It returns nil if every error is nil.
func FirstError(errs []error, wrap func(int, error) error) error {
	if wrap == nil {
		wrap = func(_ int, err error) error { return err }
	}
	var first error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if !IsCancellation(err) {
			return wrap(i, err)
		}
		if first == nil {
			first = wrap(i, err)
		}
	}
	return first
}

func (e *Engine) acquire(ctx context.Context) error {
	// Check cancellation first: select chooses randomly among ready
	// cases, and a cancelled batch must not start new work just because
	// a worker slot happens to be free.
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case e.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *Engine) release() { <-e.sem }
