package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRouteResolvesAndMemoizes: a handled route result is memoized under
// the key like a local computation — the second request is a hit and the
// router is not consulted again.
func TestRouteResolvesAndMemoizes(t *testing.T) {
	e := New(2)
	var calls atomic.Int64
	e.SetRoute(func(ctx context.Context, key string, payload any) (any, bool, error) {
		calls.Add(1)
		return payload.(int) * 10, true, nil
	})
	compute := func() (any, error) { t.Fatal("computed locally despite router"); return nil, nil }

	for i := 0; i < 2; i++ {
		v, err := e.DoRouted(context.Background(), "k", 7, compute)
		if err != nil || v.(int) != 70 {
			t.Fatalf("DoRouted = %v, %v", v, err)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("router called %d times, want 1 (second request is a memo hit)", calls.Load())
	}
	st := e.Stats()
	if st.Remote != 1 || st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want Remote 1, Hits 1, Misses 0", st)
	}
}

// TestRouteDeclinedComputesLocally: handled=false falls through to the
// local pool, and the router sees each declined key once per miss.
func TestRouteDeclinedComputesLocally(t *testing.T) {
	e := New(2)
	e.SetRoute(func(ctx context.Context, key string, payload any) (any, bool, error) {
		return nil, false, nil
	})
	v, err := e.DoRouted(context.Background(), "k", "payload", func() (any, error) { return 42, nil })
	if err != nil || v.(int) != 42 {
		t.Fatalf("DoRouted = %v, %v", v, err)
	}
	st := e.Stats()
	if st.Remote != 0 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want Remote 0, Misses 1", st)
	}
}

// TestRouteSkippedWithoutPayload: nil payloads and plain Do calls never
// reach the router.
func TestRouteSkippedWithoutPayload(t *testing.T) {
	e := New(2)
	e.SetRoute(func(ctx context.Context, key string, payload any) (any, bool, error) {
		t.Error("router consulted for nil payload")
		return nil, false, nil
	})
	if v, err := e.Do(context.Background(), "k", func() (any, error) { return 1, nil }); err != nil || v.(int) != 1 {
		t.Fatalf("Do = %v, %v", v, err)
	}
	if v, err := e.DoRouted(context.Background(), "k2", nil, func() (any, error) { return 2, nil }); err != nil || v.(int) != 2 {
		t.Fatalf("DoRouted = %v, %v", v, err)
	}
}

// TestRouteDisabledByContext: DisableRouting forces local computation on
// an engine with a router — the forwarded-request loop guard.
func TestRouteDisabledByContext(t *testing.T) {
	e := New(2)
	e.SetRoute(func(ctx context.Context, key string, payload any) (any, bool, error) {
		t.Error("router consulted on a DisableRouting context")
		return nil, false, nil
	})
	ctx := DisableRouting(context.Background())
	v, err := e.DoRouted(ctx, "k", "payload", func() (any, error) { return 3, nil })
	if err != nil || v.(int) != 3 {
		t.Fatalf("DoRouted = %v, %v", v, err)
	}
}

// TestRouteCancellationWithdraws: a routed cancellation is not a fact
// about the key — the entry is withdrawn and the next request retries
// the router for real.
func TestRouteCancellationWithdraws(t *testing.T) {
	e := New(2)
	var calls atomic.Int64
	e.SetRoute(func(ctx context.Context, key string, payload any) (any, bool, error) {
		if calls.Add(1) == 1 {
			return nil, true, context.Canceled
		}
		return 99, true, nil
	})
	if _, err := e.DoRouted(context.Background(), "k", 1, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("first DoRouted err = %v, want context.Canceled", err)
	}
	v, err := e.DoRouted(context.Background(), "k", 1, nil)
	if err != nil || v.(int) != 99 {
		t.Fatalf("retry DoRouted = %v, %v", v, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("router called %d times, want 2", calls.Load())
	}
}

// TestRouteSingleFlight: concurrent requests for one key share one
// routed flight, on bounded and unbounded engines alike.
func TestRouteSingleFlight(t *testing.T) {
	for _, capacity := range []int{0, 4} {
		t.Run(fmt.Sprintf("capacity=%d", capacity), func(t *testing.T) {
			e := NewBounded(4, capacity)
			var calls atomic.Int64
			gate := make(chan struct{})
			e.SetRoute(func(ctx context.Context, key string, payload any) (any, bool, error) {
				calls.Add(1)
				<-gate
				return "v", true, nil
			})
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					v, err := e.DoRouted(context.Background(), "k", "p", nil)
					if err != nil || v.(string) != "v" {
						t.Errorf("DoRouted = %v, %v", v, err)
					}
				}()
			}
			close(gate)
			wg.Wait()
			if calls.Load() != 1 {
				t.Fatalf("router called %d times, want 1", calls.Load())
			}
		})
	}
}
