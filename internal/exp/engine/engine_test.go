package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// Do computes each non-empty key once and serves repeats from the memo.
func TestDoMemoizes(t *testing.T) {
	e := New(2)
	var computed atomic.Int64
	compute := func() (any, error) {
		computed.Add(1)
		return 7, nil
	}
	for i := 0; i < 5; i++ {
		v, err := e.Do(context.Background(), "k", compute)
		if err != nil || v.(int) != 7 {
			t.Fatalf("Do = %v, %v", v, err)
		}
	}
	if computed.Load() != 1 {
		t.Fatalf("computed %d times, want 1", computed.Load())
	}
	if hits, misses := e.Stats(); hits != 4 || misses != 1 {
		t.Fatalf("stats %d/%d, want 4 hits / 1 miss", hits, misses)
	}
}

// An empty key disables the memo entirely.
func TestDoEmptyKey(t *testing.T) {
	e := New(2)
	var computed atomic.Int64
	for i := 0; i < 3; i++ {
		if _, err := e.Do(context.Background(), "", func() (any, error) {
			computed.Add(1)
			return nil, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if computed.Load() != 3 {
		t.Fatalf("computed %d times, want 3", computed.Load())
	}
}

// Genuine failures are memoized; cancellations are withdrawn so a later
// caller retries the key.
func TestDoErrorMemoization(t *testing.T) {
	e := New(1)
	boom := errors.New("boom")
	var n atomic.Int64
	fail := func() (any, error) { n.Add(1); return nil, boom }
	for i := 0; i < 2; i++ {
		if _, err := e.Do(context.Background(), "fail", fail); !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if n.Load() != 1 {
		t.Fatalf("failure recomputed: %d", n.Load())
	}

	n.Store(0)
	cancelThenOK := func() (any, error) {
		if n.Add(1) == 1 {
			return nil, context.Canceled
		}
		return 1, nil
	}
	if _, err := e.Do(context.Background(), "retry", cancelThenOK); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	v, err := e.Do(context.Background(), "retry", cancelThenOK)
	if err != nil || v.(int) != 1 {
		t.Fatalf("retry after cancellation: %v, %v", v, err)
	}
}

// Concurrent Do calls on one key compute once; everyone gets the value.
func TestDoConcurrentDuplicates(t *testing.T) {
	e := New(4)
	var computed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := e.Do(context.Background(), "dup", func() (any, error) {
				computed.Add(1)
				return 42, nil
			})
			if err != nil || v.(int) != 42 {
				t.Errorf("Do = %v, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if computed.Load() != 1 {
		t.Fatalf("computed %d times, want 1", computed.Load())
	}
}

// A cancelled context aborts before computing.
func TestDoCancelled(t *testing.T) {
	e := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Do(ctx, "c", func() (any, error) { return nil, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	// The key was withdrawn: a live context computes it.
	if _, err := e.Do(context.Background(), "c", func() (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
}
