package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// Do computes each non-empty key once and serves repeats from the memo.
func TestDoMemoizes(t *testing.T) {
	e := New(2)
	var computed atomic.Int64
	compute := func() (any, error) {
		computed.Add(1)
		return 7, nil
	}
	for i := 0; i < 5; i++ {
		v, err := e.Do(context.Background(), "k", compute)
		if err != nil || v.(int) != 7 {
			t.Fatalf("Do = %v, %v", v, err)
		}
	}
	if computed.Load() != 1 {
		t.Fatalf("computed %d times, want 1", computed.Load())
	}
	if st := e.Stats(); st.Hits != 4 || st.Misses != 1 {
		t.Fatalf("stats %d/%d, want 4 hits / 1 miss", st.Hits, st.Misses)
	}
}

// An empty key disables the memo entirely.
func TestDoEmptyKey(t *testing.T) {
	e := New(2)
	var computed atomic.Int64
	for i := 0; i < 3; i++ {
		if _, err := e.Do(context.Background(), "", func() (any, error) {
			computed.Add(1)
			return nil, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if computed.Load() != 3 {
		t.Fatalf("computed %d times, want 3", computed.Load())
	}
}

// Genuine failures are memoized; cancellations are withdrawn so a later
// caller retries the key.
func TestDoErrorMemoization(t *testing.T) {
	e := New(1)
	boom := errors.New("boom")
	var n atomic.Int64
	fail := func() (any, error) { n.Add(1); return nil, boom }
	for i := 0; i < 2; i++ {
		if _, err := e.Do(context.Background(), "fail", fail); !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if n.Load() != 1 {
		t.Fatalf("failure recomputed: %d", n.Load())
	}

	n.Store(0)
	cancelThenOK := func() (any, error) {
		if n.Add(1) == 1 {
			return nil, context.Canceled
		}
		return 1, nil
	}
	if _, err := e.Do(context.Background(), "retry", cancelThenOK); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	v, err := e.Do(context.Background(), "retry", cancelThenOK)
	if err != nil || v.(int) != 1 {
		t.Fatalf("retry after cancellation: %v, %v", v, err)
	}
}

// Concurrent Do calls on one key compute once; everyone gets the value.
func TestDoConcurrentDuplicates(t *testing.T) {
	e := New(4)
	var computed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := e.Do(context.Background(), "dup", func() (any, error) {
				computed.Add(1)
				return 42, nil
			})
			if err != nil || v.(int) != 42 {
				t.Errorf("Do = %v, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if computed.Load() != 1 {
		t.Fatalf("computed %d times, want 1", computed.Load())
	}
}

// A bounded memo holds at most its capacity once work quiesces, evicts
// in LRU order, and recomputes evicted keys on their next request.
func TestBoundedEviction(t *testing.T) {
	e := NewBounded(2, 2)
	var computed atomic.Int64
	do := func(key string) {
		t.Helper()
		if _, err := e.Do(context.Background(), key, func() (any, error) {
			computed.Add(1)
			return key, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	do("a")
	do("b")
	do("a") // hit; refreshes a's recency so b is now the LRU entry
	do("c") // over capacity: evicts b
	st := e.Stats()
	if st.Evictions != 1 || st.MemoSize != 2 || st.MemoCapacity != 2 {
		t.Fatalf("stats after churn: %+v, want 1 eviction, size 2, capacity 2", st)
	}
	missesBefore := st.Misses
	do("a") // still resident
	if misses := e.Stats().Misses; misses != missesBefore {
		t.Fatalf("a was evicted despite being most recently used (misses %d -> %d)", missesBefore, misses)
	}
	do("b") // evicted: recomputed, correct value
	st = e.Stats()
	if st.Misses != missesBefore+1 {
		t.Fatalf("evicted key b not recomputed: %+v", st)
	}
	if st.MemoSize > 2 {
		t.Fatalf("memo grew past capacity: %+v", st)
	}
	if computed.Load() != 4 {
		t.Fatalf("computed %d times, want 4 (a, b, c, b-again)", computed.Load())
	}
}

// In-flight entries are pinned: churning other keys past capacity never
// evicts a computation someone is waiting on, and the waiter shares the
// single flight.
func TestBoundedPinnedInFlightNotEvicted(t *testing.T) {
	e := NewBounded(4, 1)
	var aComputes atomic.Int64
	block := make(chan struct{})
	started := make(chan struct{})

	ownerDone := make(chan error, 1)
	go func() {
		_, err := e.Do(context.Background(), "A", func() (any, error) {
			aComputes.Add(1)
			close(started)
			<-block
			return "va", nil
		})
		ownerDone <- err
	}()
	<-started

	// Churn well past capacity while A is in flight and pinned.
	for _, key := range []string{"b", "c", "d"} {
		key := key
		if _, err := e.Do(context.Background(), key, func() (any, error) { return key, nil }); err != nil {
			t.Fatal(err)
		}
	}

	// A waiter that arrives mid-flight must attach to the pinned entry,
	// not recompute it.
	waiterDone := make(chan any, 1)
	go func() {
		v, err := e.Do(context.Background(), "A", func() (any, error) {
			aComputes.Add(1)
			return "va", nil
		})
		if err != nil {
			t.Error(err)
		}
		waiterDone <- v
	}()

	close(block)
	if err := <-ownerDone; err != nil {
		t.Fatal(err)
	}
	if v := <-waiterDone; v != "va" {
		t.Fatalf("waiter got %v", v)
	}
	if aComputes.Load() != 1 {
		t.Fatalf("pinned in-flight key computed %d times, want 1", aComputes.Load())
	}
	st := e.Stats()
	if st.MemoSize > 1 {
		t.Fatalf("memo size %d exceeds capacity 1 after quiesce", st.MemoSize)
	}
	// The churn keys were evicted around the pinned entry.
	if st.Evictions == 0 {
		t.Fatal("no evictions despite churn past capacity")
	}
	// A completed last, so it is the resident entry.
	missesBefore := st.Misses
	if _, err := e.Do(context.Background(), "A", func() (any, error) {
		aComputes.Add(1)
		return "va", nil
	}); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Misses != missesBefore {
		t.Fatal("completed pinned entry was evicted instead of retained")
	}
}

// Concurrent churn far past capacity keeps single-flight semantics:
// a key is never computed twice at once, values are always consistent,
// and the memo stays bounded once the churn quiesces. Run under -race
// this also exercises the pin/unpin and LRU bookkeeping for races.
func TestBoundedConcurrentChurn(t *testing.T) {
	const (
		keys       = 16
		capacity   = 4
		goroutines = 8
		iterations = 200
	)
	e := NewBounded(goroutines, capacity)
	var running [keys]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				k := (g*7 + i) % keys
				key := fmt.Sprintf("k%d", k)
				v, err := e.Do(context.Background(), key, func() (any, error) {
					if n := running[k].Add(1); n != 1 {
						return nil, fmt.Errorf("key %s: %d concurrent computations", key, n)
					}
					defer running[k].Add(-1)
					return k * k, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if v.(int) != k*k {
					t.Errorf("key %s = %v, want %d", key, v, k*k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := e.Stats()
	if st.MemoSize > capacity {
		t.Fatalf("memo size %d exceeds capacity %d after quiesce", st.MemoSize, capacity)
	}
	if st.Hits+st.Misses != goroutines*iterations {
		t.Fatalf("hits %d + misses %d != %d requests", st.Hits, st.Misses, goroutines*iterations)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight %d after quiesce", st.InFlight)
	}
}

// A long sweep over many more distinct keys than the capacity keeps the
// memo bounded: the soak behind soprocd's bounded-memory guarantee.
func TestBoundedSoak(t *testing.T) {
	const capacity = 8
	e := NewBounded(4, capacity)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("cfg%d", i)
		if _, err := e.Do(context.Background(), key, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.MemoSize > capacity {
		t.Fatalf("memo size %d exceeds capacity %d", st.MemoSize, capacity)
	}
	if st.Misses != 1000 || st.Evictions != 1000-capacity {
		t.Fatalf("stats %+v, want 1000 misses and %d evictions", st, 1000-capacity)
	}
}

// A cancelled context aborts before computing.
func TestDoCancelled(t *testing.T) {
	e := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Do(ctx, "c", func() (any, error) { return nil, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	// The key was withdrawn: a live context computes it.
	if _, err := e.Do(context.Background(), "c", func() (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
}
