package engine

import (
	"context"
	"testing"
)

// Seed inserts a completed entry: Do serves it without running its
// compute function, and Cached peeks it (counting a memo hit).
func TestSeedServesDo(t *testing.T) {
	e := New(1)
	if !e.Seed("k", 42) {
		t.Fatal("Seed of a fresh key reported no-op")
	}
	v, err := e.Do(context.Background(), "k", func() (any, error) {
		t.Error("compute ran for a seeded key")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("Do returned %v for seeded key, want 42", v)
	}
	cv, ok := e.Cached("k")
	if !ok || cv != 42 {
		t.Fatalf("Cached returned (%v, %v), want (42, true)", cv, ok)
	}
	if st := e.Stats(); st.Hits < 2 {
		t.Fatalf("seeded key served %d hits, want >= 2 (Do + Cached)", st.Hits)
	}
}

// Seeding a resident key is a no-op: the first value wins, matching the
// memo's single-flight semantics.
func TestSeedDoesNotOverwrite(t *testing.T) {
	e := New(1)
	e.Seed("k", "first")
	if e.Seed("k", "second") {
		t.Fatal("re-Seed of a resident key reported success")
	}
	v, _ := e.Cached("k")
	if v != "first" {
		t.Fatalf("re-Seed overwrote value: got %v", v)
	}
}

// Cached never blocks: an in-flight entry (compute still running) is a
// miss, not a wait.
func TestCachedDoesNotBlockOnInflight(t *testing.T) {
	e := New(1)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		e.Do(context.Background(), "slow", func() (any, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started
	if _, ok := e.Cached("slow"); ok {
		t.Error("Cached returned an in-flight entry")
	}
	if e.Seed("slow", 99) {
		t.Error("Seed displaced an in-flight entry")
	}
	close(release)
	<-done
	if v, ok := e.Cached("slow"); !ok || v != 1 {
		t.Errorf("after compute finished, Cached = (%v, %v), want (1, true)", v, ok)
	}
}

// Seeded entries live in the bounded memo's LRU like computed ones:
// seeding past capacity evicts the least-recently-used key.
func TestSeedRespectsCapacity(t *testing.T) {
	e := NewBounded(1, 2)
	e.Seed("a", 1)
	e.Seed("b", 2)
	e.Cached("a") // refresh a; b is now least recently used
	e.Seed("c", 3)
	if _, ok := e.Cached("b"); ok {
		t.Error("LRU key survived seeding past capacity")
	}
	if _, ok := e.Cached("a"); !ok {
		t.Error("recently-used key was evicted")
	}
	if st := e.Stats(); st.Evictions == 0 {
		t.Error("eviction not counted")
	}
}
