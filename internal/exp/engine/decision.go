package engine

import (
	"context"
	"sync/atomic"
	"time"
)

// Decision is one observable engine choice: how a memoized point was
// resolved (or evicted), where, and at what cost. The engine emits a
// Decision to the installed hook (SetDecisionHook) at each terminal
// event; the observability layer (internal/exp.ObserveDecisions)
// converts them into trace records and histogram observations. Points
// with an empty key — unmemoized analytic work — are not recorded.
type Decision struct {
	// Key is the raw memo key of the point the decision is about.
	Key string
	// Source tells what resolved the point: "memo" (served from the
	// memo, including waits on an in-flight duplicate), "store"
	// (persistent tier hit), "remote" (computed by the installed
	// Route), "simulated" (computed on the local pool), "seeded"
	// (published via Seed by the shape-batched structural path), or
	// "evicted" (the entry was discarded under capacity pressure — not
	// a resolution, but a choice that makes a later recomputation).
	Source string
	// Replica, Rank and Retries describe a "remote" resolution, filled
	// by the router through the RouteInfo it finds on the request
	// context: the replica address that answered, its position in the
	// key's rendezvous order (0 = home), and same-replica retransmits.
	Replica string
	Rank    int
	Retries int
	// QueueWait is time spent waiting for a local worker slot
	// ("simulated" only).
	QueueWait time.Duration
	// Latency is the total time from the DoRouted call to resolution.
	Latency time.Duration
	// Err marks a resolution that returned a genuine (non-cancellation)
	// error.
	Err bool
}

// DecisionHook receives engine decisions. A hook must be fast and
// non-blocking — it is called synchronously on the request path, and
// for "evicted" records while the engine's internal lock is held — and
// must never call back into the engine.
type DecisionHook func(Decision)

// SetDecisionHook installs fn as the engine's decision observer; a nil
// fn removes it and returns the engine to its unobserved fast path
// (with no hook installed the engine takes no timestamps). Install the
// hook before the engine starts serving work.
func (e *Engine) SetDecisionHook(fn DecisionHook) {
	if fn == nil {
		e.decision.Store(nil)
		return
	}
	e.decision.Store(&fn)
}

// RouteInfo is the per-request slot a Route implementation fills in to
// attribute a "remote" decision: which replica answered, at which
// rendezvous rank, after how many same-replica retries. The engine
// attaches an empty RouteInfo to the context it passes the router only
// when a decision hook is installed; routers retrieve it with
// RouteInfoFrom and leave it untouched when absent.
type RouteInfo struct {
	// Replica is the address of the replica that computed the point.
	Replica string
	// Rank is Replica's position in the key's rendezvous order
	// (0 = the key's home replica; >0 means failover).
	Rank int
	// Retries counts same-replica retransmissions before success.
	Retries int
}

type routeInfoKey struct{}

// withRouteInfo attaches a fresh RouteInfo slot to ctx.
func withRouteInfo(ctx context.Context) (context.Context, *RouteInfo) {
	ri := &RouteInfo{}
	return context.WithValue(ctx, routeInfoKey{}, ri), ri
}

// RouteInfoFrom returns the RouteInfo slot the engine attached to ctx,
// or nil when the request is not being observed. A router fills the
// slot on a successful remote resolution.
func RouteInfoFrom(ctx context.Context) *RouteInfo {
	ri, _ := ctx.Value(routeInfoKey{}).(*RouteInfo)
	return ri
}

// decisionClock returns the current time only when a hook is
// installed, so the unobserved path takes no timestamps.
func decisionClock(hook *DecisionHook) time.Time {
	if hook == nil {
		return time.Time{}
	}
	return time.Now()
}

// loadDecisionHook snapshots the installed hook pointer once per call.
func (e *Engine) loadDecisionHook() *DecisionHook {
	return e.decision.Load()
}

// decisionHookPtr is the atomic slot type for the installed hook.
type decisionHookPtr = atomic.Pointer[DecisionHook]
