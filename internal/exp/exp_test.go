package exp

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"scaleout/internal/noc"
	"scaleout/internal/sim"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

func countingPoint(counter *atomic.Int64, key string, v int) Point[int] {
	return Func[int]{K: key, F: func() (int, error) {
		counter.Add(1)
		return v, nil
	}}
}

// Identical keys must be computed exactly once, across batches and
// across concurrent duplicates within a batch.
func TestMemoDeduplicates(t *testing.T) {
	e := New(4)
	var computed atomic.Int64
	pts := make([]Point[int], 16)
	for i := range pts {
		pts[i] = countingPoint(&computed, "dup", 42)
	}
	out, err := Points(context.Background(), e, pts)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 42 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	// A second batch with the same key is served entirely from memo.
	if _, err := Points(context.Background(), e, pts[:4]); err != nil {
		t.Fatal(err)
	}
	if got := computed.Load(); got != 1 {
		t.Fatalf("computed %d times, want exactly 1", got)
	}
	st := e.Stats()
	if st.Misses != 1 || st.Hits != 19 {
		t.Fatalf("stats: %d hits, %d misses; want 19/1", st.Hits, st.Misses)
	}
}

// Distinct keys all compute; results come back in input order.
func TestInputOrder(t *testing.T) {
	e := New(3)
	var computed atomic.Int64
	pts := make([]Point[int], 32)
	for i := range pts {
		pts[i] = countingPoint(&computed, fmt.Sprintf("k%d", i), i*i)
	}
	out, err := Points(context.Background(), e, pts)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	if computed.Load() != 32 {
		t.Fatalf("computed %d, want 32", computed.Load())
	}
}

// Unkeyed points are never memoized.
func TestEmptyKeySkipsMemo(t *testing.T) {
	e := New(2)
	var computed atomic.Int64
	pts := []Point[int]{
		countingPoint(&computed, "", 1),
		countingPoint(&computed, "", 1),
	}
	if _, err := Points(context.Background(), e, pts); err != nil {
		t.Fatal(err)
	}
	if computed.Load() != 2 {
		t.Fatalf("unkeyed points computed %d times, want 2", computed.Load())
	}
}

// Two sim.Configs that differ only in defaulted fields share one
// canonical fingerprint — the cross-figure dedup the engine relies on.
func TestSimPointCanonicalKey(t *testing.T) {
	w := workload.Suite()[0]
	implicit := sim.Config{Workload: w, CoreType: tech.OoO, Cores: 16, LLCMB: 4}
	explicit := sim.Config{
		Workload: w, CoreType: tech.OoO, Cores: 16, LLCMB: 4,
		Net: noc.New(noc.Crossbar, 16), MemChannels: 2,
		WarmupCycles: 20000, MeasureCycles: 50000, Seed: 1,
	}
	ki, ke := SimPoint{implicit}.Key(), SimPoint{explicit}.Key()
	if ki != ke {
		t.Fatalf("canonical keys differ:\n%s\n%s", ki, ke)
	}
	other := explicit
	other.Seed = 2
	if (SimPoint{other}).Key() == ke {
		t.Fatal("distinct seeds share a key")
	}
}

// The engine memoizes simulator runs: the same batch twice costs one
// round of simulation, and results are identical.
func TestSimsMemoized(t *testing.T) {
	e := New(2)
	w := workload.Suite()[0]
	cfgs := []sim.Config{
		{Workload: w, CoreType: tech.OoO, Cores: 2, LLCMB: 1},
		{Workload: w, CoreType: tech.InOrder, Cores: 2, LLCMB: 1},
	}
	first, err := Sims(WithEngine(context.Background(), e), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Sims(WithEngine(context.Background(), e), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("memoized result %d differs", i)
		}
	}
	if st := e.Stats(); st.Misses != 2 {
		t.Fatalf("%d simulations ran, want 2", st.Misses)
	}
}

// A failing point aborts the batch with its error, not a cancellation.
func TestErrorPropagation(t *testing.T) {
	e := New(2)
	boom := errors.New("boom")
	pts := []Point[int]{
		Func[int]{F: func() (int, error) { return 1, nil }},
		Func[int]{F: func() (int, error) { return 0, boom }},
	}
	if _, err := Points(context.Background(), e, pts); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Invalid sim configs surface their validation error.
	if _, err := Sims(WithEngine(context.Background(), e), []sim.Config{{}}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// A cancelled context aborts promptly with the context error.
func TestCancellation(t *testing.T) {
	e := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pts := make([]Point[int], 8)
	for i := range pts {
		pts[i] = Func[int]{K: fmt.Sprintf("c%d", i), F: func() (int, error) { return 0, nil }}
	}
	if _, err := Points(ctx, e, pts); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The withdrawn keys must be retryable on a live context.
	if _, err := Points(context.Background(), e, pts); err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
}

// A keyed point whose Compute itself returns a cancellation error must
// not poison the memo: the entry is withdrawn so a later batch
// recomputes instead of livelocking on the retry path or inheriting
// the stale cancellation.
func TestComputeCancellationNotMemoized(t *testing.T) {
	e := New(2)
	var computed atomic.Int64
	pt := Func[int]{K: "ctxerr", F: func() (int, error) {
		computed.Add(1)
		return 0, context.DeadlineExceeded
	}}
	if _, err := Points(context.Background(), e, []Point[int]{pt}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if _, err := Points(context.Background(), e, []Point[int]{pt}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("retry err = %v, want deadline exceeded", err)
	}
	if computed.Load() != 2 {
		t.Fatalf("computed %d times, want a fresh computation per batch", computed.Load())
	}
}

// A batch whose context stays live must not inherit a cancellation from
// another batch that owned the same memo key: when the owner is
// cancelled before computing, waiters retry under their own context.
func TestWaiterSurvivesOwnerCancellation(t *testing.T) {
	e := New(1)
	var computed atomic.Int64
	gate := make(chan struct{})

	// Occupy the engine's only worker slot so the owner below can be
	// cancelled while still waiting for a slot.
	blockerDone := make(chan error, 1)
	go func() {
		_, err := Points(context.Background(), e, []Point[int]{
			Func[int]{F: func() (int, error) { <-gate; return 0, nil }},
		})
		blockerDone <- err
	}()
	time.Sleep(20 * time.Millisecond)

	// The owner claims the memo entry for "k", then is cancelled.
	ownerCtx, cancelOwner := context.WithCancel(context.Background())
	ownerDone := make(chan error, 1)
	go func() {
		_, err := Points(ownerCtx, e, []Point[int]{countingPoint(&computed, "k", 7)})
		ownerDone <- err
	}()
	time.Sleep(20 * time.Millisecond)

	// A waiter from an independent, live batch requests the same key.
	type res struct {
		out []int
		err error
	}
	waiterDone := make(chan res, 1)
	go func() {
		out, err := Points(context.Background(), e, []Point[int]{countingPoint(&computed, "k", 7)})
		waiterDone <- res{out, err}
	}()
	time.Sleep(20 * time.Millisecond)

	cancelOwner()
	if err := <-ownerDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("owner err = %v, want context.Canceled", err)
	}
	close(gate) // free the worker slot
	if err := <-blockerDone; err != nil {
		t.Fatalf("blocker: %v", err)
	}
	r := <-waiterDone
	if r.err != nil {
		t.Fatalf("waiter inherited the owner's cancellation: %v", r.err)
	}
	if r.out[0] != 7 || computed.Load() != 1 {
		t.Fatalf("waiter got %v after %d computations", r.out, computed.Load())
	}
}

// Map preserves input order and fans out through the same pool.
func TestMap(t *testing.T) {
	e := New(4)
	items := []int{5, 3, 8, 1}
	out, err := Map(context.Background(), e, items, func(x int) (int, error) { return x * 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range items {
		if out[i] != x*2 {
			t.Fatalf("out[%d] = %d", i, out[i])
		}
	}
}

// Fingerprint must canonicalize map-valued fields: two equal workloads
// always print identically.
func TestFingerprintDeterministic(t *testing.T) {
	a := workload.Suite()[0]
	b := workload.Suite()[0]
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("equal workloads fingerprint differently")
	}
	b.APKI++
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("distinct workloads share a fingerprint")
	}
}

func TestEngineDefaults(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("zero-worker engine")
	}
	if New(7).Workers() != 7 {
		t.Fatal("worker count not respected")
	}
	if FromContext(context.Background()) != Default() {
		t.Fatal("bare context does not yield the default engine")
	}
	e := New(2)
	if FromContext(WithEngine(context.Background(), e)) != e {
		t.Fatal("context engine not retrieved")
	}
}
