package exp

import (
	"context"

	"scaleout/internal/sim"
)

// Tier is a tiered evaluator for simulator batches: an implementation
// (internal/tier) may answer points from calibration anchors or — when
// the caller opted into its fast mode — from the calibrated analytic
// surrogate, escalating only the points whose answer could change a
// decision to the real simulators. Sims and Structurals consult the
// context's Tier (WithTier) before fanning points out, so every figure
// generator and sweep in the repository becomes tier-aware without
// changing its code.
//
// The contract mirrors Sims/Structurals: results in input order, first
// error aborts the batch. An implementation escalates through
// Points/SimPoint/StructuralPoint (never back through Sims/Structurals,
// which would recurse), so escalated points keep the engine's memo,
// single-flight, and cluster routing semantics.
type Tier interface {
	// Sims evaluates statistical-simulator configurations.
	Sims(ctx context.Context, cfgs []sim.Config) ([]sim.Result, error)
	// Structurals evaluates structural-simulator configurations.
	Structurals(ctx context.Context, cfgs []sim.StructuralConfig) ([]sim.StructuralResult, error)
}

type tierKey struct{}

// WithTier returns a context whose Sims/Structurals batches are
// evaluated through t. This is how `soproc -tier` and the serve layer
// install the tiered evaluator underneath the unmodified figure
// generators; a nil t removes an inherited tier.
func WithTier(ctx context.Context, t Tier) context.Context {
	return context.WithValue(ctx, tierKey{}, t)
}

// TierFromContext returns the context's tiered evaluator, or nil if
// batches should go straight to the simulators.
func TierFromContext(ctx context.Context) Tier {
	t, _ := ctx.Value(tierKey{}).(Tier)
	return t
}
