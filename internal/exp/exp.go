// Package exp is the experiment engine every sweep in this repository
// runs on: a fixed-size worker pool that fans independent sweep points
// out across GOMAXPROCS goroutines, returns results in deterministic
// input order, and memoizes each point by a canonical fingerprint of its
// configuration so identical points — the same baseline chip appears in
// several chapters' figures — are simulated exactly once per process.
//
// A sweep point is anything implementing Point: a cycle-simulator run
// (SimPoint), a structural-simulator run (StructuralPoint), or an
// arbitrary deterministic evaluation such as an analytic-model call
// (Func). Generators declare their points, hand them to an Engine, and
// assemble tables from the ordered results; they never loop over sim.Run
// inline. Because every underlying computation is deterministic, a
// parallel run is byte-identical to a serial (workers=1) run.
package exp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"scaleout/internal/sim"
)

// Point is one unit of experiment work: a canonical fingerprint plus the
// deterministic computation it identifies. Two points with equal non-empty
// keys must describe identical computations; the engine computes each
// distinct key at most once per process and serves later requests from
// the memo. An empty key disables memoization for that point.
type Point[R any] interface {
	Key() string
	Compute() (R, error)
}

// SimPoint runs the cycle-level simulator on one configuration.
type SimPoint struct{ Config sim.Config }

// Key fingerprints the defaults-applied configuration, so two Configs
// that differ only in fields the simulator would default identically
// (e.g. an explicit crossbar vs the zero-value default) share a key.
func (p SimPoint) Key() string {
	c, err := p.Config.Canonical()
	if err != nil {
		c = p.Config // invalid: key the raw form, Compute reports the error
	}
	return "sim:" + Fingerprint(c)
}

// Compute runs the simulation.
func (p SimPoint) Compute() (sim.Result, error) { return sim.Run(p.Config) }

// StructuralPoint runs the structural simulator on one configuration.
type StructuralPoint struct{ Config sim.StructuralConfig }

// Key fingerprints the defaults-applied configuration.
func (p StructuralPoint) Key() string {
	c, err := p.Config.Canonical()
	if err != nil {
		c = p.Config
	}
	return "structural:" + Fingerprint(c)
}

// Compute runs the structural simulation.
func (p StructuralPoint) Compute() (sim.StructuralResult, error) {
	return sim.RunStructural(p.Config)
}

// Func adapts an arbitrary deterministic computation — an analytic-model
// evaluation, a chip composition, a TCO build — into a Point. K must
// canonically identify the computation; leave it empty to run the point
// unmemoized (the usual choice for cheap analytic evaluations).
type Func[R any] struct {
	K string
	F func() (R, error)
}

// Key returns the caller-chosen fingerprint.
func (p Func[R]) Key() string { return p.K }

// Compute invokes the wrapped function.
func (p Func[R]) Compute() (R, error) { return p.F() }

// Fingerprint canonically serializes a configuration value. fmt prints
// map fields in sorted key order, so two equal values always produce the
// same string regardless of construction order.
func Fingerprint(v any) string { return fmt.Sprintf("%#v", v) }

// Engine is a parallel, memoizing sweep runner. The zero value is not
// usable; construct with New. An Engine is safe for concurrent use by
// any number of goroutines; its memo is shared across all batches run
// on it for the life of the process.
type Engine struct {
	sem  chan struct{} // one slot per worker
	mu   sync.Mutex
	memo map[string]*memoEntry

	hits   atomic.Int64
	misses atomic.Int64
}

// memoEntry is the memo slot for one key. done is closed once val/err
// are final, so concurrent requests for an in-flight key wait instead of
// recomputing.
type memoEntry struct {
	done chan struct{}
	val  any
	err  error
}

// New returns an engine with the given worker-pool size; workers <= 0
// selects GOMAXPROCS.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		sem:  make(chan struct{}, workers),
		memo: make(map[string]*memoEntry),
	}
}

// Workers reports the worker-pool size.
func (e *Engine) Workers() int { return cap(e.sem) }

// Stats reports memo hits (points served from cache, including waits on
// in-flight duplicates) and misses (points actually computed).
func (e *Engine) Stats() (hits, misses int64) {
	return e.hits.Load(), e.misses.Load()
}

var defaultEngine = New(0)

// Default returns the process-wide engine: GOMAXPROCS workers and a
// memo shared by everything that does not install its own engine.
func Default() *Engine { return defaultEngine }

type ctxKey struct{}

// WithEngine returns a context carrying e; experiment code retrieves it
// with FromContext. This is how the CLI's -parallel flag and the
// serial-baseline tests select a pool size without threading an Engine
// through every generator signature.
func WithEngine(ctx context.Context, e *Engine) context.Context {
	return context.WithValue(ctx, ctxKey{}, e)
}

// FromContext returns the context's engine, or Default if none is set.
func FromContext(ctx context.Context) *Engine {
	if e, ok := ctx.Value(ctxKey{}).(*Engine); ok && e != nil {
		return e
	}
	return Default()
}

// Points evaluates every point on e's worker pool and returns results in
// input order. The first error (in input order, preferring genuine
// failures over cancellations) aborts the batch; points already running
// finish and are memoized for later callers.
//
// A point's Compute must not call back into the same engine: it runs
// while holding a worker slot, so nested Points/Sims/Map calls can
// exhaust the pool and deadlock. Declare the full sweep up front
// instead.
func Points[R any](ctx context.Context, e *Engine, pts []Point[R]) ([]R, error) {
	// A genuine failure cancels the batch's context so queued points
	// stop at acquire instead of burning workers on a doomed batch.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([]R, len(pts))
	errs := make([]error, len(pts))
	var wg sync.WaitGroup
	for i, p := range pts {
		wg.Add(1)
		go func(i int, p Point[R]) {
			defer wg.Done()
			out[i], errs[i] = resolve(ctx, e, p)
			if errs[i] != nil && !isCancellation(errs[i]) {
				cancel()
			}
		}(i, p)
	}
	wg.Wait()
	if err := FirstError(errs, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// FirstError selects a batch's reportable error: the first genuine
// failure in input order or, if every error is a cancellation, the
// first cancellation — so a deterministic config error is never masked
// by the cancellations it triggered in sibling points. A non-nil wrap
// decorates the chosen error with its index (e.g. an experiment ID).
// It returns nil if every error is nil.
func FirstError(errs []error, wrap func(int, error) error) error {
	if wrap == nil {
		wrap = func(_ int, err error) error { return err }
	}
	var first error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if !isCancellation(err) {
			return wrap(i, err)
		}
		if first == nil {
			first = wrap(i, err)
		}
	}
	return first
}

// Sims evaluates a batch of cycle-simulator configurations.
func (e *Engine) Sims(ctx context.Context, cfgs []sim.Config) ([]sim.Result, error) {
	pts := make([]Point[sim.Result], len(cfgs))
	for i, c := range cfgs {
		pts[i] = SimPoint{c}
	}
	return Points(ctx, e, pts)
}

// Structurals evaluates a batch of structural-simulator configurations.
func (e *Engine) Structurals(ctx context.Context, cfgs []sim.StructuralConfig) ([]sim.StructuralResult, error) {
	pts := make([]Point[sim.StructuralResult], len(cfgs))
	for i, c := range cfgs {
		pts[i] = StructuralPoint{c}
	}
	return Points(ctx, e, pts)
}

// Map evaluates fn over items on e's worker pool, unmemoized, returning
// results in input order — the fan-out primitive for analytic-model
// sweeps whose points are cheap but numerous.
func Map[T, R any](ctx context.Context, e *Engine, items []T, fn func(T) (R, error)) ([]R, error) {
	pts := make([]Point[R], len(items))
	for i, item := range items {
		item := item
		pts[i] = Func[R]{F: func() (R, error) { return fn(item) }}
	}
	return Points(ctx, e, pts)
}

// resolve computes one point, consulting and populating the memo.
func resolve[R any](ctx context.Context, e *Engine, p Point[R]) (R, error) {
	var zero R
	key := p.Key()
	if key == "" {
		if err := e.acquire(ctx); err != nil {
			return zero, err
		}
		defer e.release()
		return p.Compute()
	}

	var ent *memoEntry
	for {
		e.mu.Lock()
		if existing, ok := e.memo[key]; ok {
			e.mu.Unlock()
			select {
			case <-existing.done:
				if isCancellation(existing.err) {
					// The owner was cancelled before it could compute
					// and withdrew the entry; retry under our own
					// context rather than inheriting its cancellation.
					continue
				}
				e.hits.Add(1)
				return entValue[R](existing)
			case <-ctx.Done():
				return zero, ctx.Err()
			}
		}
		ent = &memoEntry{done: make(chan struct{})}
		e.memo[key] = ent
		e.mu.Unlock()
		break
	}

	if err := e.acquire(ctx); err != nil {
		// Never computed: withdraw the entry so a later batch can retry,
		// and release current waiters with the cancellation.
		e.mu.Lock()
		delete(e.memo, key)
		e.mu.Unlock()
		ent.err = err
		close(ent.done)
		return zero, err
	}
	e.misses.Add(1)
	ent.val, ent.err = p.Compute()
	e.release()
	if isCancellation(ent.err) {
		// A cancellation is not a fact about the point; withdraw the
		// entry (before closing done, so woken waiters re-find an empty
		// slot) so another batch can compute it for real.
		e.mu.Lock()
		delete(e.memo, key)
		e.mu.Unlock()
	}
	close(ent.done)
	return entValue[R](ent)
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func entValue[R any](ent *memoEntry) (R, error) {
	if ent.err != nil {
		var zero R
		return zero, ent.err
	}
	return ent.val.(R), nil
}

func (e *Engine) acquire(ctx context.Context) error {
	// Check cancellation first: select chooses randomly among ready
	// cases, and a cancelled batch must not start new work just because
	// a worker slot happens to be free.
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case e.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *Engine) release() { <-e.sem }
