// Package exp is the experiment engine every sweep in this repository
// runs on: a fixed-size worker pool that fans independent sweep points
// out across GOMAXPROCS goroutines, returns results in deterministic
// input order, and memoizes each point by a canonical fingerprint of its
// configuration so identical points — the same baseline chip appears in
// several chapters' figures — are simulated exactly once per process.
//
// A sweep point is anything implementing Point: a cycle-simulator run
// (SimPoint), a structural-simulator run (StructuralPoint), or an
// arbitrary deterministic evaluation such as an analytic-model call
// (Func). Generators declare their points, hand them to an Engine, and
// assemble tables from the ordered results; they never loop over sim.Run
// inline. Because every underlying computation is deterministic, a
// parallel run is byte-identical to a serial (workers=1) run.
//
// The worker pool and memo themselves live in internal/exp/engine, one
// layer below the simulator, so that sim.RunSampled can fan samples out
// across the same pool; this package re-exports the engine surface and
// adds the typed Point API on top.
package exp

import (
	"context"
	"sync"

	"scaleout/internal/exp/engine"
	"scaleout/internal/sim"
)

// Engine is the parallel, memoizing sweep runner (engine.Engine). The
// zero value is not usable; construct with New. An Engine is safe for
// concurrent use by any number of goroutines; its memo is shared across
// all batches run on it for the life of the process.
type Engine = engine.Engine

// Stats is a snapshot of an engine's memo and work counters
// (engine.Stats).
type Stats = engine.Stats

// New returns an engine with the given worker-pool size and an
// unbounded memo; workers <= 0 selects GOMAXPROCS.
func New(workers int) *Engine { return engine.New(workers) }

// NewBounded returns an engine whose memo holds at most capacity
// resident entries, evicting least-recently-used complete entries under
// pressure; capacity <= 0 means unbounded. In-flight and waited-on
// entries are pinned and never evicted, so single-flight semantics are
// unchanged. This is the constructor for long-running processes
// (cmd/soprocd); the one-shot CLIs use New.
func NewBounded(workers, capacity int) *Engine { return engine.NewBounded(workers, capacity) }

// Default returns the process-wide engine: GOMAXPROCS workers and a
// memo shared by everything that does not install its own engine.
func Default() *Engine { return engine.Default() }

// WithEngine returns a context carrying e; experiment code retrieves it
// with FromContext. This is how the CLI's -parallel flag and the
// serial-baseline tests select a pool size without threading an Engine
// through every generator signature.
func WithEngine(ctx context.Context, e *Engine) context.Context {
	return engine.WithEngine(ctx, e)
}

// FromContext returns the context's engine, or Default if none is set.
func FromContext(ctx context.Context) *Engine { return engine.FromContext(ctx) }

// Route is a per-key routing hook (engine.Route): install one with
// Engine.SetRoute and memo misses whose points carry a payload are
// offered to it — in practice, shipped to the cluster replica owning
// the key (internal/cluster) — before being computed locally.
type Route = engine.Route

// DisableRouting returns a context whose points always compute locally,
// even on an engine with a router installed; the serve layer marks
// coordinator-forwarded requests with it so peer cycles cannot loop.
func DisableRouting(ctx context.Context) context.Context {
	return engine.DisableRouting(ctx)
}

// Fingerprint canonically serializes a configuration value. fmt prints
// map fields in sorted key order, so two equal values always produce the
// same string regardless of construction order.
func Fingerprint(v any) string { return engine.Fingerprint(v) }

// IsCancellation reports whether err is a context cancellation or
// deadline rather than a genuine computation failure.
func IsCancellation(err error) bool { return engine.IsCancellation(err) }

// FirstError selects a batch's reportable error: the first genuine
// failure in input order or, if every error is a cancellation, the
// first cancellation — so a deterministic config error is never masked
// by the cancellations it triggered in sibling points. A non-nil wrap
// decorates the chosen error with its index (e.g. an experiment ID).
// It returns nil if every error is nil.
func FirstError(errs []error, wrap func(int, error) error) error {
	return engine.FirstError(errs, wrap)
}

// Point is one unit of experiment work: a canonical fingerprint plus the
// deterministic computation it identifies. Two points with equal non-empty
// keys must describe identical computations; the engine computes each
// distinct key at most once per process and serves later requests from
// the memo. An empty key disables memoization for that point.
type Point[R any] interface {
	Key() string
	Compute() (R, error)
}

// Routable is implemented by points that can run somewhere other than
// the local worker pool: RoutePayload returns a serializable
// description of the computation — for the built-in points, the
// sim.Config or sim.StructuralConfig itself — which the engine offers
// to its installed Route (Engine.SetRoute) on a memo miss. A nil
// payload, or a point that does not implement Routable, always computes
// locally.
type Routable interface {
	RoutePayload() any
}

// SimulatorConfig is the contract a configuration type meets to run as
// a SimulatorPoint: canonical fingerprinting (Key), a self-describing
// wire payload for cluster routing (WirePayload), and the simulation
// itself (Run). Both sim.Config and sim.StructuralConfig satisfy it.
type SimulatorConfig[R any] interface {
	Key() string
	WirePayload() any
	Run() (R, error)
}

// SimulatorPoint is the one engine point for every simulator kind —
// the generic form behind SimPoint and StructuralPoint. Its key is the
// defaults-applied configuration's canonical fingerprint, so two
// configurations that differ only in fields the simulator would default
// identically (e.g. an explicit crossbar vs the zero-value default)
// share a key.
type SimulatorPoint[R any, C SimulatorConfig[R]] struct{ Config C }

// Key fingerprints the defaults-applied configuration.
func (p SimulatorPoint[R, C]) Key() string { return p.Config.Key() }

// Compute runs the simulation.
func (p SimulatorPoint[R, C]) Compute() (R, error) { return p.Config.Run() }

// RoutePayload returns the configuration's versioned wire form
// (sim.WireConfig) — the single representation a cluster coordinator
// ships to the replica owning the key — or a sim.Unroutable marker when
// the configuration cannot be encoded, so the coordinator can count the
// decline instead of it vanishing into a nil payload.
func (p SimulatorPoint[R, C]) RoutePayload() any { return p.Config.WirePayload() }

// SimPoint runs the cycle-level statistical simulator on one
// configuration.
type SimPoint = SimulatorPoint[sim.Result, sim.Config]

// StructuralPoint runs the structural simulator on one configuration.
type StructuralPoint = SimulatorPoint[sim.StructuralResult, sim.StructuralConfig]

// Func adapts an arbitrary deterministic computation — an analytic-model
// evaluation, a chip composition, a TCO build — into a Point. K must
// canonically identify the computation; leave it empty to run the point
// unmemoized (the usual choice for cheap analytic evaluations). P, if
// set, makes the point routable (Routable): it must describe the same
// computation as F, and is what a cluster router ships to a replica.
type Func[R any] struct {
	K string
	P any
	F func() (R, error)
}

// Key returns the caller-chosen fingerprint.
func (p Func[R]) Key() string { return p.K }

// Compute invokes the wrapped function.
func (p Func[R]) Compute() (R, error) { return p.F() }

// RoutePayload returns the caller-attached payload (nil means the point
// always computes locally).
func (p Func[R]) RoutePayload() any { return p.P }

// Points evaluates every point on e's worker pool and returns results in
// input order. The first error (in input order, preferring genuine
// failures over cancellations) aborts the batch; points already running
// finish and are memoized for later callers.
//
// A point's Compute must not call back into the same engine: it runs
// while holding a worker slot, so nested Points/Sims/Map calls can
// exhaust the pool and deadlock. Declare the full sweep up front
// instead.
func Points[R any](ctx context.Context, e *Engine, pts []Point[R]) ([]R, error) {
	// A genuine failure cancels the batch's context so queued points
	// stop at acquire instead of burning workers on a doomed batch.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([]R, len(pts))
	errs := make([]error, len(pts))
	var wg sync.WaitGroup
	for i, p := range pts {
		wg.Add(1)
		go func(i int, p Point[R]) {
			defer wg.Done()
			out[i], errs[i] = resolve(ctx, e, p)
			if errs[i] != nil && !engine.IsCancellation(errs[i]) {
				cancel()
			}
		}(i, p)
	}
	wg.Wait()
	if err := FirstError(errs, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// resolve computes one point on the engine's pool and memo; routable
// points offer their payload to the engine's router first.
func resolve[R any](ctx context.Context, e *Engine, p Point[R]) (R, error) {
	var payload any
	if rp, ok := p.(Routable); ok {
		payload = rp.RoutePayload()
	}
	v, err := e.DoRouted(ctx, p.Key(), payload, func() (any, error) { return p.Compute() })
	if err != nil {
		var zero R
		return zero, err
	}
	return v.(R), nil
}

// Sims evaluates a batch of cycle-simulator configurations on the
// context's engine (FromContext). A context carrying a tiered
// evaluator (WithTier) evaluates the batch through it instead; the
// default path runs every point on the simulator.
func Sims(ctx context.Context, cfgs []sim.Config) ([]sim.Result, error) {
	if t := TierFromContext(ctx); t != nil {
		return t.Sims(ctx, cfgs)
	}
	pts := make([]Point[sim.Result], len(cfgs))
	for i, c := range cfgs {
		pts[i] = SimPoint{c}
	}
	return Points(ctx, FromContext(ctx), pts)
}

// Structurals evaluates a batch of structural-simulator configurations
// on the context's engine (FromContext). Like Sims, it defers to the
// context's tiered evaluator when one is installed (WithTier).
func Structurals(ctx context.Context, cfgs []sim.StructuralConfig) ([]sim.StructuralResult, error) {
	if t := TierFromContext(ctx); t != nil {
		return t.Structurals(ctx, cfgs)
	}
	pts := make([]Point[sim.StructuralResult], len(cfgs))
	for i, c := range cfgs {
		pts[i] = StructuralPoint{c}
	}
	return Points(ctx, FromContext(ctx), pts)
}

// Map evaluates fn over items on e's worker pool, unmemoized, returning
// results in input order — the fan-out primitive for analytic-model
// sweeps whose points are cheap but numerous.
func Map[T, R any](ctx context.Context, e *Engine, items []T, fn func(T) (R, error)) ([]R, error) {
	pts := make([]Point[R], len(items))
	for i, item := range items {
		item := item
		pts[i] = Func[R]{F: func() (R, error) { return fn(item) }}
	}
	return Points(ctx, e, pts)
}
