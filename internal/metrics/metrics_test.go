package metrics

import (
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTextRendering locks the exposition format down: HELP/TYPE
// comments, sorted families, label escaping, histogram expansion.
func TestTextRendering(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("soproc_test_points_total", "points handled")
	c.Add(3)
	g := reg.Gauge("soproc_test_in_flight_points", "points in flight")
	g.Set(2)
	g.Add(-1)
	reg.CounterVecFunc("soproc_test_lane_admitted_total", "per-lane admits",
		[]string{"lane"}, func(emit EmitFunc) {
			emit(5, "interactive")
			emit(7, `we"ird\lane`)
		})

	text := reg.Text()
	for _, want := range []string{
		"# HELP soproc_test_points_total points handled\n",
		"# TYPE soproc_test_points_total counter\n",
		"soproc_test_points_total 3\n",
		"soproc_test_in_flight_points 1\n",
		`soproc_test_lane_admitted_total{lane="interactive"} 5` + "\n",
		`soproc_test_lane_admitted_total{lane="we\"ird\\lane"} 7` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendering missing %q in:\n%s", want, text)
		}
	}
	// Families must render sorted by name.
	if strings.Index(text, "soproc_test_in_flight_points") > strings.Index(text, "soproc_test_points_total") {
		t.Errorf("families not sorted by name:\n%s", text)
	}
}

// TestHistogram checks cumulative bucket expansion and sum/count.
func TestHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("soproc_test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	fams, err := ParseText(reg.Text())
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	fam := fams["soproc_test_latency_seconds"]
	if fam == nil || fam.Kind != KindHistogram {
		t.Fatalf("histogram family missing or mistyped: %+v", fam)
	}
	wantBuckets := map[string]float64{"0.01": 1, "0.1": 2, "1": 3, "+Inf": 4}
	for le, want := range wantBuckets {
		s, ok := fam.Sample(map[string]string{"le": le})
		if !ok || s.Value != want {
			t.Errorf("bucket le=%s: got %+v ok=%v, want %v", le, s, ok, want)
		}
	}
	var sum, count float64
	for _, s := range fam.Samples {
		switch s.Name {
		case "soproc_test_latency_seconds_sum":
			sum = s.Value
		case "soproc_test_latency_seconds_count":
			count = s.Value
		}
	}
	if count != 4 || math.Abs(sum-5.555) > 1e-9 {
		t.Errorf("sum=%v count=%v, want 5.555 and 4", sum, count)
	}
}

// TestParseRoundTrip renders a registry and re-parses it: every family
// must come back with its kind, help, and values intact.
func TestParseRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.CounterFunc("soproc_test_routed_points_total", "routed", func() float64 { return 42 })
	reg.GaugeVecFunc("soproc_test_replica_down", "down flags", []string{"replica"}, func(emit EmitFunc) {
		emit(1, "10.0.0.1:8080")
	})
	fams, err := ParseText(reg.Text())
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	if v, ok := fams["soproc_test_routed_points_total"].Value(); !ok || v != 42 {
		t.Errorf("routed counter: got %v ok=%v", v, ok)
	}
	if fams["soproc_test_routed_points_total"].Help != "routed" {
		t.Errorf("help lost: %+v", fams["soproc_test_routed_points_total"])
	}
	s, ok := fams["soproc_test_replica_down"].Sample(map[string]string{"replica": "10.0.0.1:8080"})
	if !ok || s.Value != 1 {
		t.Errorf("replica gauge: got %+v ok=%v", s, ok)
	}
}

// TestParseRejectsMalformed verifies the parser is strict about the
// properties the CI lint relies on.
func TestParseRejectsMalformed(t *testing.T) {
	for _, page := range []string{
		"soproc_orphan_total 3\n",                                        // sample without TYPE
		"# TYPE soproc_x_total counter\nsoproc_x_total x\n",              // non-numeric value
		"# TYPE soproc_x_total widget\n",                                 // unknown kind
		"# TYPE soproc_x_total counter\n# TYPE soproc_x_total counter\n", // duplicate
	} {
		if _, err := ParseText(page); err == nil {
			t.Errorf("ParseText accepted malformed page %q", page)
		}
	}
}

// TestHandler serves a scrape over HTTP with the 0.0.4 content type.
func TestHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("soproc_test_points_total", "points").Inc()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != ContentType {
		t.Errorf("Content-Type = %q, want %q", got, ContentType)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "soproc_test_points_total 1") {
		t.Errorf("scrape body missing counter: %s", buf[:n])
	}
}

// TestDuplicateRegistrationPanics locks in fail-fast registration.
func TestDuplicateRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("soproc_test_points_total", "points")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	reg.Counter("soproc_test_points_total", "again")
}

// TestDecisionLogRing checks wraparound, ordering, and Seq continuity.
func TestDecisionLogRing(t *testing.T) {
	l := NewDecisionLog(4)
	for i := 0; i < 10; i++ {
		l.Add(Decision{Key: fmt.Sprintf("k%d", i), Source: "memo"})
	}
	if l.Total() != 10 {
		t.Fatalf("Total = %d, want 10", l.Total())
	}
	last := l.Last(0)
	if len(last) != 4 {
		t.Fatalf("Last(0) returned %d records, want 4", len(last))
	}
	for i, d := range last {
		wantKey := fmt.Sprintf("k%d", 6+i)
		if d.Key != wantKey || d.Seq != uint64(7+i) {
			t.Errorf("record %d = %+v, want key %s seq %d", i, d, wantKey, 7+i)
		}
	}
	if two := l.Last(2); len(two) != 2 || two[1].Key != "k9" {
		t.Errorf("Last(2) = %+v", two)
	}
}

// TestDecisionLogConcurrent hammers the ring from many goroutines
// while a reader snapshots it — run under -race this is the ring's
// safety proof.
func TestDecisionLogConcurrent(t *testing.T) {
	l := NewDecisionLog(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Add(Decision{Key: KeyFingerprint(fmt.Sprintf("w%d-%d", w, i)), Source: "simulated"})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			l.Last(16)
		}
	}()
	wg.Wait()
	<-done
	if l.Total() != 8*500 {
		t.Fatalf("Total = %d, want %d", l.Total(), 8*500)
	}
}

// TestKeyFingerprint pins stability and distinctness.
func TestKeyFingerprint(t *testing.T) {
	a, b := KeyFingerprint("config-a"), KeyFingerprint("config-b")
	if a == b || a == "" {
		t.Errorf("fingerprints not distinct: %q %q", a, b)
	}
	if KeyFingerprint("config-a") != a {
		t.Error("fingerprint not stable")
	}
	if KeyFingerprint("") != "" {
		t.Error("empty key must fingerprint to empty")
	}
}

// TestDecisionLogTimestamps verifies records carry the injected clock.
func TestDecisionLogTimestamps(t *testing.T) {
	l := NewDecisionLog(2)
	fixed := time.Unix(1700000000, 42)
	l.clock = func() time.Time { return fixed }
	l.Add(Decision{Source: "memo"})
	if got := l.Last(1)[0].UnixNanos; got != fixed.UnixNano() {
		t.Errorf("UnixNanos = %d, want %d", got, fixed.UnixNano())
	}
}
