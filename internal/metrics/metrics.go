// Package metrics is a dependency-free Prometheus exporter: counter,
// gauge, and histogram primitives collected into a Registry and
// rendered in the Prometheus text exposition format 0.0.4 at
// GET /metricsz. It deliberately implements only what this repository
// scrapes — no client library, no push gateway, no protobuf — so the
// module keeps its zero-dependency guarantee while any off-the-shelf
// Prometheus server can collect a soprocd replica or coordinator.
//
// Two collection styles coexist:
//
//   - Live instruments (Counter, Gauge, Histogram) are updated on the
//     hot path by the instrumented code — the engine's per-point
//     latency histogram is one.
//   - Scrape-time collectors (CounterFunc, GaugeFunc and their labeled
//     Vec variants) read an existing snapshot source at scrape time.
//     Every subsystem in this repository already keeps atomic counters
//     behind a Stats() method, so most metrics are closures over those
//     — the hot paths gain no new writes.
//
// The package also carries the decision-trace ring (DecisionLog): a
// bounded in-memory log of per-point routing decisions exposed at
// GET /v1/trace. Both live in one package because they are the two
// halves of ROADMAP item 4(c): aggregate counters for dashboards,
// per-request records for audits.
//
// ParseText parses the same text format back into families; the
// metrics-contract test and cmd/soload's -lint-metrics mode use it to
// verify that every exposed page is well-formed and conventionally
// named.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's type as declared on its # TYPE line.
type Kind string

// The metric kinds this exporter can expose.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Label is one name="value" pair attached to a sample.
type Label struct {
	// Name is the label name (a valid Prometheus label identifier).
	Name string
	// Value is the label value; rendering escapes \, " and newlines.
	Value string
}

// sample is one rendered line of a family: an optional suffix
// (histograms emit _bucket/_sum/_count), labels, and a value.
type sample struct {
	suffix string
	labels []Label
	value  float64
}

// family is one named metric family and its scrape-time collector.
type family struct {
	name, help string
	kind       Kind
	collect    func(emit func(sample))
}

// Registry holds metric families and renders them in the text
// exposition format. The zero value is not usable; construct with
// NewRegistry. Registration methods panic on a duplicate or invalid
// name — a registration error is a programming error, caught by the
// first scrape in any test — and are safe for concurrent use, as is
// rendering.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName reports whether name is a legal Prometheus metric or label
// identifier: [a-zA-Z_][a-zA-Z0-9_]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r == '_', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register installs a family, panicking on duplicate or invalid names.
func (r *Registry) register(name, help string, kind Kind, collect func(emit func(sample))) {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric name %q", name))
	}
	r.families[name] = &family{name: name, help: help, kind: kind, collect: collect}
}

// Counter is a live monotonically-increasing instrument. Use the
// returned value's Inc/Add from the instrumented code path.
type Counter struct{ bits atomic.Uint64 }

// Inc adds one to the counter.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta to the counter; negative deltas are ignored (a
// counter never decreases).
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	addFloat(&c.bits, delta)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a live instrument for a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (which may be negative) to the gauge.
func (g *Gauge) Add(delta float64) { addFloat(&g.bits, delta) }

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloat atomically adds delta to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram is a live cumulative histogram with fixed bucket upper
// bounds. Observe is safe for concurrent use and lock-free.
type Histogram struct {
	uppers []float64 // sorted upper bounds, +Inf excluded
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.uppers {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	addFloat(&h.sum, v)
	h.count.Add(1)
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Counter registers and returns a live counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, KindCounter, func(emit func(sample)) {
		emit(sample{value: c.Value()})
	})
	return c
}

// Gauge registers and returns a live gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, KindGauge, func(emit func(sample)) {
		emit(sample{value: g.Value()})
	})
	return g
}

// Histogram registers and returns a live histogram with the given
// bucket upper bounds (sorted ascending; the +Inf bucket is implicit).
// It panics if buckets is empty or unsorted.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q needs at least one bucket", name))
	}
	uppers := append([]float64(nil), buckets...)
	for i := 1; i < len(uppers); i++ {
		if uppers[i] <= uppers[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q buckets not strictly ascending", name))
		}
	}
	h := &Histogram{uppers: uppers, counts: make([]atomic.Uint64, len(uppers))}
	r.register(name, help, KindHistogram, func(emit func(sample)) {
		var cum uint64
		for i, ub := range h.uppers {
			cum += h.counts[i].Load()
			emit(sample{suffix: "_bucket", labels: []Label{{"le", formatValue(ub)}}, value: float64(cum)})
		}
		total := h.count.Load()
		emit(sample{suffix: "_bucket", labels: []Label{{"le", "+Inf"}}, value: float64(total)})
		emit(sample{suffix: "_sum", value: math.Float64frombits(h.sum.Load())})
		emit(sample{suffix: "_count", value: float64(total)})
	})
	return h
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time — the natural fit for subsystems that already keep
// atomic counters behind a Stats() snapshot.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, KindCounter, func(emit func(sample)) {
		emit(sample{value: fn()})
	})
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, KindGauge, func(emit func(sample)) {
		emit(sample{value: fn()})
	})
}

// EmitFunc receives one labeled sample from a Vec collector. The
// number of label values must match the label names the collector was
// registered with; mismatches panic at scrape time.
type EmitFunc func(value float64, labelValues ...string)

// vecCollect adapts a labeled collector to the family collect shape.
func vecCollect(name string, labelNames []string, fn func(EmitFunc)) func(emit func(sample)) {
	return func(emit func(sample)) {
		fn(func(value float64, labelValues ...string) {
			if len(labelValues) != len(labelNames) {
				panic(fmt.Sprintf("metrics: %s emitted %d label values, want %d",
					name, len(labelValues), len(labelNames)))
			}
			labels := make([]Label, len(labelNames))
			for i, n := range labelNames {
				labels[i] = Label{Name: n, Value: labelValues[i]}
			}
			emit(sample{labels: labels, value: value})
		})
	}
}

// CounterVecFunc registers a labeled counter family whose samples are
// produced by fn at scrape time: fn calls emit once per label
// combination. The admission controller's per-lane counters and the
// coordinator's per-replica counters use this.
func (r *Registry) CounterVecFunc(name, help string, labelNames []string, fn func(EmitFunc)) {
	for _, n := range labelNames {
		if !validName(n) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", n, name))
		}
	}
	r.register(name, help, KindCounter, vecCollect(name, labelNames, fn))
}

// GaugeVecFunc registers a labeled gauge family whose samples are
// produced by fn at scrape time.
func (r *Registry) GaugeVecFunc(name, help string, labelNames []string, fn func(EmitFunc)) {
	for _, n := range labelNames {
		if !validName(n) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", n, name))
		}
	}
	r.register(name, help, KindGauge, vecCollect(name, labelNames, fn))
}

// formatValue renders a float the way Prometheus expects: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out. Integral
// values render without a decimal point, which keeps shell assertions
// in CI (string equality on counter values) simple.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// WriteText renders every registered family in the Prometheus text
// exposition format 0.0.4; see Text.
func (r *Registry) WriteText(w io.Writer) error {
	_, err := io.WriteString(w, r.Text())
	return err
}

// render renders all families into b, sorted by name so output is
// deterministic for a fixed set of values.
func (r *Registry) render(w *strings.Builder) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		f.collect(func(s sample) {
			w.WriteString(f.name)
			w.WriteString(s.suffix)
			if len(s.labels) > 0 {
				w.WriteByte('{')
				for i, l := range s.labels {
					if i > 0 {
						w.WriteByte(',')
					}
					w.WriteString(l.Name)
					w.WriteString(`="`)
					w.WriteString(escapeLabel(l.Value))
					w.WriteByte('"')
				}
				w.WriteByte('}')
			}
			w.WriteByte(' ')
			w.WriteString(formatValue(s.value))
			w.WriteByte('\n')
		})
	}
}

// Text renders the registry as a string in the Prometheus text
// exposition format 0.0.4.
func (r *Registry) Text() string {
	var b strings.Builder
	r.render(&b)
	return b.String()
}

// ContentType is the Content-Type header value for the text exposition
// format this package renders.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler serving the registry as a scrape
// endpoint (GET /metricsz).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		fmt.Fprint(w, r.Text())
	})
}
