package metrics

import (
	"hash/fnv"
	"strconv"
	"sync"
	"time"
)

// Decision is one per-point decision record: how a single sweep point
// was resolved, where, and at what cost. Records are produced by the
// engine's decision hook (exp.ObserveDecisions) and by the tiered
// evaluator, appended to a DecisionLog, and served as JSON by
// GET /v1/trace.
type Decision struct {
	// Seq is the record's position in the log since process start,
	// starting at 1; gaps never occur, so Seq - Capacity tells a reader
	// how much history the ring has dropped.
	Seq uint64 `json:"seq"`
	// UnixNanos is the wall-clock time the record was appended.
	UnixNanos int64 `json:"t_unix_ns"`
	// Key is the sweep point's key fingerprint (KeyFingerprint of the
	// engine memo key), stable across replicas for one configuration.
	Key string `json:"key"`
	// Source tells how the point was resolved: "memo", "store",
	// "remote", "simulated", "seeded", "evicted" (engine paths), or
	// "anchor", "surrogate" (tiered evaluator, point never reached the
	// engine).
	Source string `json:"source"`
	// Replica is the replica address that computed a "remote" point.
	Replica string `json:"replica,omitempty"`
	// Rank is the chosen replica's position in the key's rendezvous
	// order (0 = the key's home replica; >0 means failover).
	Rank int `json:"rank,omitempty"`
	// Retries counts same-replica retransmissions before success.
	Retries int `json:"retries,omitempty"`
	// QueueWaitSeconds is time spent waiting for a local worker slot.
	QueueWaitSeconds float64 `json:"queue_wait_seconds,omitempty"`
	// LatencySeconds is the total time from request to resolution.
	LatencySeconds float64 `json:"latency_seconds,omitempty"`
	// Err marks a point whose resolution returned a genuine error.
	Err bool `json:"err,omitempty"`
}

// KeyFingerprint condenses an engine memo key — a canonical but very
// long configuration rendering — into a short stable hex fingerprint
// for trace records and logs. Equal keys always produce equal
// fingerprints, on every replica.
func KeyFingerprint(key string) string {
	if key == "" {
		return ""
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return strconv.FormatUint(h.Sum64(), 16)
}

// DecisionLog is a bounded ring of Decision records: appends are O(1),
// the newest Capacity records are retained, and readers get a
// consistent snapshot. It is safe for concurrent use. The zero value
// is not usable; construct with NewDecisionLog.
type DecisionLog struct {
	mu    sync.Mutex
	ring  []Decision
	next  uint64 // total records ever appended
	clock func() time.Time
}

// NewDecisionLog returns a ring retaining the newest capacity records;
// capacity <= 0 selects 4096.
func NewDecisionLog(capacity int) *DecisionLog {
	if capacity <= 0 {
		capacity = 4096
	}
	return &DecisionLog{ring: make([]Decision, capacity), clock: time.Now}
}

// Capacity reports how many records the ring retains.
func (l *DecisionLog) Capacity() int { return len(l.ring) }

// Total reports how many records have ever been appended.
func (l *DecisionLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Add appends one record, stamping its Seq and UnixNanos. The caller
// fills every other field.
func (l *DecisionLog) Add(d Decision) {
	l.mu.Lock()
	l.next++
	d.Seq = l.next
	d.UnixNanos = l.clock().UnixNano()
	l.ring[(l.next-1)%uint64(len(l.ring))] = d
	l.mu.Unlock()
}

// Last returns the newest n records in chronological order (oldest
// first). n <= 0 or n beyond the retained window returns everything
// retained.
func (l *DecisionLog) Last(n int) []Decision {
	l.mu.Lock()
	defer l.mu.Unlock()
	retained := l.next
	if ringCap := uint64(len(l.ring)); retained > ringCap {
		retained = ringCap
	}
	if n <= 0 || uint64(n) > retained {
		n = int(retained)
	}
	out := make([]Decision, 0, n)
	for i := l.next - uint64(n); i < l.next; i++ {
		out = append(out, l.ring[i%uint64(len(l.ring))])
	}
	return out
}
