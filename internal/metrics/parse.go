package metrics

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// ParsedSample is one sample line of a parsed exposition page.
type ParsedSample struct {
	// Name is the full sample name, including any histogram suffix
	// (for example soproc_engine_point_latency_seconds_bucket).
	Name string
	// Labels holds the sample's label pairs.
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// ParsedFamily is one metric family of a parsed exposition page.
type ParsedFamily struct {
	// Name is the family name from its # TYPE line.
	Name string
	// Help is the # HELP text, unescaped.
	Help string
	// Kind is the declared type.
	Kind Kind
	// Samples holds the family's sample lines in page order.
	Samples []ParsedSample
}

// Sample returns the family's first sample whose labels include every
// pair in want (nil matches the first sample), or ok=false.
func (f *ParsedFamily) Sample(want map[string]string) (ParsedSample, bool) {
next:
	for _, s := range f.Samples {
		for k, v := range want {
			if s.Labels[k] != v {
				continue next
			}
		}
		return s, true
	}
	return ParsedSample{}, false
}

// Value returns the value of the family's single unlabeled sample. It
// returns ok=false if the family has no samples or the first sample
// carries labels (use Sample for labeled families).
func (f *ParsedFamily) Value() (float64, bool) {
	if len(f.Samples) == 0 || len(f.Samples[0].Labels) != 0 {
		return 0, false
	}
	return f.Samples[0].Value, true
}

var (
	sampleRe = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)(\{.*\})?\s+(\S+)$`)
	labelRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// ParseText parses a Prometheus text exposition (0.0.4) page into its
// families, keyed by family name. It is strict about the subset this
// package renders: every sample must belong to a family declared by a
// preceding # TYPE line (histogram samples may append _bucket, _sum,
// _count), values must parse as floats, and label pairs must be
// well-formed. The metrics-contract test and cmd/soload -lint-metrics
// run every scraped page through it.
func ParseText(page string) (map[string]*ParsedFamily, error) {
	families := make(map[string]*ParsedFamily)
	helps := make(map[string]string)
	for ln, line := range strings.Split(page, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				return nil, fmt.Errorf("metrics: line %d: malformed comment %q", ln+1, line)
			}
			switch fields[1] {
			case "HELP":
				rest := ""
				if len(fields) == 4 {
					rest = fields[3]
				}
				helps[fields[2]] = unescape(rest)
			case "TYPE":
				if len(fields) != 4 {
					return nil, fmt.Errorf("metrics: line %d: malformed TYPE %q", ln+1, line)
				}
				name, kind := fields[2], Kind(fields[3])
				switch kind {
				case KindCounter, KindGauge, KindHistogram:
				default:
					return nil, fmt.Errorf("metrics: line %d: unknown type %q for %s", ln+1, kind, name)
				}
				if _, dup := families[name]; dup {
					return nil, fmt.Errorf("metrics: line %d: duplicate TYPE for %s", ln+1, name)
				}
				families[name] = &ParsedFamily{Name: name, Help: helps[name], Kind: kind}
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("metrics: line %d: malformed sample %q", ln+1, line)
		}
		name, labelBlock, valueText := m[1], m[2], m[3]
		fam := familyFor(families, name)
		if fam == nil {
			return nil, fmt.Errorf("metrics: line %d: sample %s has no TYPE declaration", ln+1, name)
		}
		labels, err := parseLabels(labelBlock)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %v", ln+1, err)
		}
		value, err := parseValue(valueText)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: bad value %q: %v", ln+1, valueText, err)
		}
		fam.Samples = append(fam.Samples, ParsedSample{Name: name, Labels: labels, Value: value})
	}
	return families, nil
}

// familyFor resolves a sample name to its declaring family, stripping
// histogram suffixes when the base family is a histogram.
func familyFor(families map[string]*ParsedFamily, name string) *ParsedFamily {
	if f, ok := families[name]; ok {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, found := strings.CutSuffix(name, suffix)
		if !found {
			continue
		}
		if f, ok := families[base]; ok && f.Kind == KindHistogram {
			return f
		}
	}
	return nil
}

// parseLabels parses an optional {k="v",...} block.
func parseLabels(block string) (map[string]string, error) {
	labels := make(map[string]string)
	if block == "" {
		return labels, nil
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	if inner == "" {
		return labels, nil
	}
	for _, pair := range splitLabelPairs(inner) {
		m := labelRe.FindStringSubmatch(pair)
		if m == nil {
			return nil, fmt.Errorf("malformed label pair %q", pair)
		}
		labels[m[1]] = unescape(m[2])
	}
	return labels, nil
}

// splitLabelPairs splits k="v",k2="v2" on commas outside quotes.
func splitLabelPairs(inner string) []string {
	var pairs []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for _, r := range inner {
		switch {
		case escaped:
			escaped = false
			cur.WriteRune(r)
		case r == '\\' && inQuote:
			escaped = true
			cur.WriteRune(r)
		case r == '"':
			inQuote = !inQuote
			cur.WriteRune(r)
		case r == ',' && !inQuote:
			pairs = append(pairs, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		pairs = append(pairs, cur.String())
	}
	return pairs
}

// parseValue parses a sample value, accepting the special spellings
// +Inf, -Inf and NaN.
func parseValue(text string) (float64, error) {
	switch text {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(text, 64)
}

// unescape reverses escapeLabel/escapeHelp: \n, \" and \\ sequences
// become their literal characters.
func unescape(v string) string {
	var b strings.Builder
	escaped := false
	for _, r := range v {
		if escaped {
			if r == 'n' {
				b.WriteByte('\n')
			} else {
				b.WriteRune(r)
			}
			escaped = false
			continue
		}
		if r == '\\' {
			escaped = true
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}
