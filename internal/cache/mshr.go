package cache

import "fmt"

// MSHR is a miss-status holding register file: it bounds the number of
// outstanding misses a cache can sustain and merges requests to a block
// that already has a miss in flight (secondary misses).
type MSHR struct {
	capacity int
	inflight map[uint64]int // block -> merged request count
}

// NewMSHR builds an MSHR file with the given number of entries.
func NewMSHR(entries int) (*MSHR, error) {
	if entries <= 0 {
		return nil, fmt.Errorf("cache: MSHR with %d entries", entries)
	}
	return &MSHR{capacity: entries, inflight: make(map[uint64]int, entries)}, nil
}

// Capacity returns the total number of entries.
func (m *MSHR) Capacity() int { return m.capacity }

// Inflight returns the number of occupied entries.
func (m *MSHR) Inflight() int { return len(m.inflight) }

// Full reports whether a new primary miss would be rejected.
func (m *MSHR) Full() bool { return len(m.inflight) >= m.capacity }

// Allocate registers a miss for the block. It returns primary=true if
// this is a new entry, primary=false if merged into an existing one, and
// ok=false if the file is full and the block has no entry (the requester
// must stall).
func (m *MSHR) Allocate(block uint64) (primary, ok bool) {
	if n, exists := m.inflight[block]; exists {
		m.inflight[block] = n + 1
		return false, true
	}
	if m.Full() {
		return false, false
	}
	m.inflight[block] = 1
	return true, true
}

// Complete releases the entry for the block when its fill returns,
// reporting how many merged requests it satisfied (0 if the block had no
// entry).
func (m *MSHR) Complete(block uint64) int {
	n := m.inflight[block]
	delete(m.inflight, block)
	return n
}

// Pending reports whether the block has a miss in flight.
func (m *MSHR) Pending(block uint64) bool {
	_, ok := m.inflight[block]
	return ok
}
