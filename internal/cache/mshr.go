package cache

import "fmt"

// MSHR is a miss-status holding register file: it bounds the number of
// outstanding misses a cache can sustain and merges requests to a block
// that already has a miss in flight (secondary misses).
//
// Entries are dense parallel arrays scanned linearly — the file holds at
// most a few dozen entries (Table 2.2: 64), usually far fewer, so a scan
// over the live prefix beats the map the seed implementation used: no
// hashing, no allocation on the structural simulator's miss path, and
// the scan reads one or two contiguous cache lines.
type MSHR struct {
	capacity int
	blocks   []uint64 // live entries in [0, n); order is insignificant
	merged   []int    // request count per live entry
	n        int
}

// NewMSHR builds an MSHR file with the given number of entries.
func NewMSHR(entries int) (*MSHR, error) {
	if entries <= 0 {
		return nil, fmt.Errorf("cache: MSHR with %d entries", entries)
	}
	return &MSHR{
		capacity: entries,
		blocks:   make([]uint64, entries),
		merged:   make([]int, entries),
	}, nil
}

// Capacity returns the total number of entries.
func (m *MSHR) Capacity() int { return m.capacity }

// Inflight returns the number of occupied entries.
func (m *MSHR) Inflight() int { return m.n }

// Full reports whether a new primary miss would be rejected.
func (m *MSHR) Full() bool { return m.n >= m.capacity }

// Reset releases every entry, reusing the arrays.
func (m *MSHR) Reset() { m.n = 0 }

// find returns the live index of block, or -1.
func (m *MSHR) find(block uint64) int {
	for i, b := range m.blocks[:m.n] {
		if b == block {
			return i
		}
	}
	return -1
}

// Allocate registers a miss for the block. It returns primary=true if
// this is a new entry, primary=false if merged into an existing one, and
// ok=false if the file is full and the block has no entry (the requester
// must stall).
func (m *MSHR) Allocate(block uint64) (primary, ok bool) {
	if i := m.find(block); i >= 0 {
		m.merged[i]++
		return false, true
	}
	if m.Full() {
		return false, false
	}
	m.blocks[m.n] = block
	m.merged[m.n] = 1
	m.n++
	return true, true
}

// Complete releases the entry for the block when its fill returns,
// reporting how many merged requests it satisfied (0 if the block had no
// entry).
func (m *MSHR) Complete(block uint64) int {
	i := m.find(block)
	if i < 0 {
		return 0
	}
	n := m.merged[i]
	m.n--
	m.blocks[i] = m.blocks[m.n]
	m.merged[i] = m.merged[m.n]
	return n
}

// Pending reports whether the block has a miss in flight.
func (m *MSHR) Pending(block uint64) bool { return m.find(block) >= 0 }
