package cache

import (
	"testing"
	"testing/quick"
)

func mustDir(t *testing.T, cores int) *Directory {
	t.Helper()
	d, err := NewDirectory(cores)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDirectoryValidation(t *testing.T) {
	if _, err := NewDirectory(0); err == nil {
		t.Fatal("0-core directory accepted")
	}
	if _, err := NewDirectory(65); err == nil {
		t.Fatal("65-core directory accepted")
	}
	if _, err := NewDirectory(64); err != nil {
		t.Fatal(err)
	}
}

func TestReadNoSnoopWhenUnshared(t *testing.T) {
	d := mustDir(t, 4)
	r := d.Read(0, 1)
	if r.Snoops != 0 || r.ForwardedFromL1 {
		t.Fatalf("first read triggered %+v", r)
	}
	if d.State(1) != Shared || d.Sharers(1) != 1 {
		t.Fatalf("state %v, sharers %d", d.State(1), d.Sharers(1))
	}
}

func TestReadSharingGrows(t *testing.T) {
	d := mustDir(t, 8)
	for c := 0; c < 8; c++ {
		if r := d.Read(c, 7); r.Snoops != 0 {
			t.Fatalf("read by core %d snooped", c)
		}
	}
	if d.Sharers(7) != 8 {
		t.Fatalf("sharers %d, want 8", d.Sharers(7))
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	d := mustDir(t, 4)
	d.Read(0, 3)
	d.Read(1, 3)
	d.Read(2, 3)
	r := d.Write(3, 3)
	if r.Snoops != 3 {
		t.Fatalf("write snooped %d sharers, want 3", r.Snoops)
	}
	if d.State(3) != Modified || d.Sharers(3) != 1 {
		t.Fatalf("post-write state %v sharers %d", d.State(3), d.Sharers(3))
	}
}

func TestWriteByOnlySharerIsSilent(t *testing.T) {
	d := mustDir(t, 4)
	d.Read(2, 9)
	if r := d.Write(2, 9); r.Snoops != 0 {
		t.Fatalf("upgrade by sole sharer snooped: %+v", r)
	}
}

func TestReadOfModifiedForwards(t *testing.T) {
	d := mustDir(t, 4)
	d.Write(1, 5)
	r := d.Read(2, 5)
	if !r.ForwardedFromL1 || r.Snoops != 1 {
		t.Fatalf("read of M block: %+v", r)
	}
	if d.State(5) != Shared || d.Sharers(5) != 2 {
		t.Fatalf("after forward: state %v sharers %d", d.State(5), d.Sharers(5))
	}
}

func TestWriteOfModifiedByOtherForwards(t *testing.T) {
	d := mustDir(t, 4)
	d.Write(0, 5)
	r := d.Write(1, 5)
	if !r.ForwardedFromL1 || r.Snoops != 1 {
		t.Fatalf("write of other's M block: %+v", r)
	}
	if d.State(5) != Modified {
		t.Fatalf("state %v", d.State(5))
	}
}

func TestRepeatedWriteByOwnerSilent(t *testing.T) {
	d := mustDir(t, 4)
	d.Write(0, 5)
	if r := d.Write(0, 5); r.Snoops != 0 {
		t.Fatalf("owner rewrite snooped: %+v", r)
	}
}

func TestEvictL1(t *testing.T) {
	d := mustDir(t, 4)
	d.Read(0, 2)
	d.Read(1, 2)
	d.EvictL1(0, 2)
	if d.Sharers(2) != 1 {
		t.Fatalf("sharers %d after evict", d.Sharers(2))
	}
	d.EvictL1(1, 2)
	if d.State(2) != Invalid || d.TrackedBlocks() != 0 {
		t.Fatal("entry not reclaimed after last evict")
	}
	d.EvictL1(3, 99) // absent block: no-op
}

func TestEvictOwnerDowngrades(t *testing.T) {
	d := mustDir(t, 4)
	d.Write(0, 2)
	d.Read(1, 2)
	d.EvictL1(0, 2)
	if d.State(2) == Modified {
		t.Fatal("state still Modified after owner eviction")
	}
}

func TestSnoopRateAccounting(t *testing.T) {
	d := mustDir(t, 4)
	d.Read(0, 1)  // no snoop
	d.Read(1, 1)  // no snoop
	d.Write(2, 1) // snoops 2 sharers, ONE snoop access
	if d.Lookups != 3 || d.SnoopAccesses != 1 || d.SnoopsSent != 2 {
		t.Fatalf("lookups=%d snoopAccesses=%d sent=%d", d.Lookups, d.SnoopAccesses, d.SnoopsSent)
	}
	if got, want := d.SnoopRate(), 1.0/3; got != want {
		t.Fatalf("snoop rate %v, want %v", got, want)
	}
	empty := mustDir(t, 2)
	if empty.SnoopRate() != 0 {
		t.Fatal("empty directory snoop rate nonzero")
	}
}

func TestDirectoryPanicsOnBadCore(t *testing.T) {
	d := mustDir(t, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-domain core accepted")
		}
	}()
	d.Read(4, 0)
}

// Property: a Modified block has exactly one sharer; Shared blocks have
// at least one; reads never leave a block Modified by someone else.
func TestDirectoryInvariants(t *testing.T) {
	d := mustDir(t, 8)
	f := func(core uint8, block uint8, write bool) bool {
		c := int(core % 8)
		b := uint64(block % 32)
		if write {
			d.Write(c, b)
		} else {
			d.Read(c, b)
		}
		switch d.State(b) {
		case Modified:
			return d.Sharers(b) == 1
		case Shared:
			return d.Sharers(b) >= 1
		default:
			return d.Sharers(b) == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

// Property: total snoop accesses never exceed lookups, and forwards plus
// invalidations equal snoops sent.
func TestDirectoryStatsConsistency(t *testing.T) {
	d := mustDir(t, 8)
	f := func(core, block uint8, write bool) bool {
		c, b := int(core%8), uint64(block%16)
		if write {
			d.Write(c, b)
		} else {
			d.Read(c, b)
		}
		return d.SnoopAccesses <= d.Lookups &&
			d.Forwards+d.Invalidation == d.SnoopsSent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestCoherenceStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Modified.String() != "M" {
		t.Fatal("state names")
	}
	if CoherenceState(9).String() == "" {
		t.Fatal("unknown state unnamed")
	}
}

// ResetStats zeroes every counter but keeps the coherence state — the
// simulator's warmup/measure boundary must not forget who shares what.
func TestDirectoryResetStats(t *testing.T) {
	d, err := NewDirectory(4)
	if err != nil {
		t.Fatal(err)
	}
	d.Read(0, 1)
	d.Write(1, 1) // invalidation
	d.Read(2, 1)  // forward from the modified owner
	if d.Lookups == 0 || d.SnoopsSent == 0 || d.SnoopAccesses == 0 ||
		d.Invalidation == 0 || d.Forwards == 0 {
		t.Fatalf("scenario did not exercise every counter: %+v", *d)
	}
	tracked, state := d.TrackedBlocks(), d.State(1)
	d.ResetStats()
	if d.Lookups != 0 || d.SnoopsSent != 0 || d.SnoopAccesses != 0 ||
		d.Invalidation != 0 || d.Forwards != 0 {
		t.Fatalf("counters survived ResetStats: %+v", *d)
	}
	if d.TrackedBlocks() != tracked || d.State(1) != state {
		t.Fatal("ResetStats disturbed coherence state")
	}
	if d.SnoopRate() != 0 {
		t.Fatal("snoop rate nonzero after reset")
	}
}
