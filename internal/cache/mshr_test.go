package cache

import (
	"testing"
	"testing/quick"
)

func TestMSHRValidation(t *testing.T) {
	if _, err := NewMSHR(0); err == nil {
		t.Fatal("0-entry MSHR accepted")
	}
	m, err := NewMSHR(64)
	if err != nil || m.Capacity() != 64 {
		t.Fatalf("m=%v err=%v", m, err)
	}
}

func TestMSHRPrimaryAndSecondary(t *testing.T) {
	m, _ := NewMSHR(2)
	primary, ok := m.Allocate(1)
	if !primary || !ok {
		t.Fatal("first allocation should be a primary miss")
	}
	primary, ok = m.Allocate(1)
	if primary || !ok {
		t.Fatal("second allocation to same block should merge")
	}
	if m.Inflight() != 1 {
		t.Fatalf("inflight %d, want 1 (merged)", m.Inflight())
	}
}

func TestMSHRFull(t *testing.T) {
	m, _ := NewMSHR(2)
	m.Allocate(1)
	m.Allocate(2)
	if !m.Full() {
		t.Fatal("not full at capacity")
	}
	if _, ok := m.Allocate(3); ok {
		t.Fatal("allocation beyond capacity accepted")
	}
	// Merging into an existing entry still works when full.
	if primary, ok := m.Allocate(2); primary || !ok {
		t.Fatal("merge rejected while full")
	}
}

func TestMSHRComplete(t *testing.T) {
	m, _ := NewMSHR(4)
	m.Allocate(7)
	m.Allocate(7)
	m.Allocate(7)
	if n := m.Complete(7); n != 3 {
		t.Fatalf("completed %d merged requests, want 3", n)
	}
	if m.Pending(7) || m.Inflight() != 0 {
		t.Fatal("entry not freed")
	}
	if n := m.Complete(7); n != 0 {
		t.Fatalf("completing absent block returned %d", n)
	}
}

// Property: inflight count never exceeds capacity, and Pending agrees
// with allocate/complete history.
func TestMSHRInvariant(t *testing.T) {
	m, _ := NewMSHR(8)
	f := func(block uint8, complete bool) bool {
		b := uint64(block % 16)
		if complete {
			m.Complete(b)
			if m.Pending(b) {
				return false
			}
		} else {
			_, ok := m.Allocate(b)
			if ok && !m.Pending(b) {
				return false
			}
		}
		return m.Inflight() <= m.Capacity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}
