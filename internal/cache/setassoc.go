// Package cache provides the memory-hierarchy building blocks the
// simulator composes: a set-associative tag array with LRU replacement, a
// miss-status holding register (MSHR) file, a victim cache, and the
// directory that tracks coherence state per block (Table 2.2: 16-way LLC,
// 64B lines, 64 MSHRs, 16-entry victim cache).
package cache

import "fmt"

// LineBytes is the cache line size used throughout the hierarchy.
const LineBytes = 64

// Addr is a byte address in the simulated physical address space.
type Addr uint64

// Block returns the cache-block index of the address.
func (a Addr) Block() uint64 { return uint64(a) / LineBytes }

// SetAssoc is a set-associative tag array with true-LRU replacement.
// It tracks presence and dirtiness only; data payloads are immaterial to
// timing simulation.
type SetAssoc struct {
	sets  int
	ways  int
	tags  []uint64 // sets*ways entries; 0 means invalid
	dirty []bool
	// lru[i] holds the recency rank of way i within its set: lower is
	// more recently used.
	lru []uint8
}

// NewSetAssoc builds a cache of the given capacity in bytes. Capacity
// must be a positive multiple of ways*LineBytes and the set count must be
// a power of two (hardware-indexable).
func NewSetAssoc(capacityBytes, ways int) (*SetAssoc, error) {
	if ways <= 0 || ways > 255 {
		return nil, fmt.Errorf("cache: ways %d out of range", ways)
	}
	lines := capacityBytes / LineBytes
	if lines <= 0 || capacityBytes%LineBytes != 0 {
		return nil, fmt.Errorf("cache: capacity %dB is not a positive multiple of the %dB line", capacityBytes, LineBytes)
	}
	sets := lines / ways
	if sets <= 0 || lines%ways != 0 {
		return nil, fmt.Errorf("cache: %d lines not divisible into %d ways", lines, ways)
	}
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	c := &SetAssoc{
		sets:  sets,
		ways:  ways,
		tags:  make([]uint64, sets*ways),
		dirty: make([]bool, sets*ways),
		lru:   make([]uint8, sets*ways),
	}
	// Each set starts with a valid recency permutation 0..ways-1 so that
	// touch() preserves the permutation invariant from the first access.
	for s := 0; s < sets; s++ {
		for w := 0; w < ways; w++ {
			c.lru[s*ways+w] = uint8(w)
		}
	}
	return c, nil
}

// Sets returns the number of sets.
func (c *SetAssoc) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

// CapacityBytes returns the cache capacity.
func (c *SetAssoc) CapacityBytes() int { return c.sets * c.ways * LineBytes }

func (c *SetAssoc) setOf(block uint64) int { return int(block & uint64(c.sets-1)) }

// tagOf stores block+1 so that tag 0 can mean "invalid".
func tagOf(block uint64) uint64 { return block + 1 }

// touch promotes way w of set s to most-recently-used. The set is
// sliced up front so the recency loop — the hottest loop in the
// structural simulator — runs without bounds checks.
func (c *SetAssoc) touch(s, w int) {
	lru := c.lru[s*c.ways : s*c.ways+c.ways]
	old := lru[w]
	for i, r := range lru {
		if r < old {
			lru[i] = r + 1
		}
	}
	lru[w] = 0
}

// Lookup probes the cache. If the block is present it is promoted to MRU
// and hit is true.
func (c *SetAssoc) Lookup(block uint64) (hit bool) {
	s := c.setOf(block)
	base := s * c.ways
	t := tagOf(block)
	for w, tag := range c.tags[base : base+c.ways] {
		if tag == t {
			c.touch(s, w)
			return true
		}
	}
	return false
}

// Contains probes without disturbing LRU state.
func (c *SetAssoc) Contains(block uint64) bool {
	s := c.setOf(block)
	base := s * c.ways
	t := tagOf(block)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == t {
			return true
		}
	}
	return false
}

// Eviction describes a block displaced by an Insert.
type Eviction struct {
	Block uint64
	Dirty bool
}

// Insert fills the block, evicting the LRU line of its set if needed.
// The returned eviction is valid only when evicted is true. Inserting a
// block that is already present just promotes it.
func (c *SetAssoc) Insert(block uint64, dirty bool) (ev Eviction, evicted bool) {
	s := c.setOf(block)
	base := s * c.ways
	t := tagOf(block)
	tags := c.tags[base : base+c.ways]
	// Full match scan first: the block may be resident in any way.
	for w, tag := range tags {
		if tag == t {
			c.touch(s, w)
			if dirty {
				c.dirty[base+w] = true
			}
			return Eviction{}, false
		}
	}
	// Victim selection: an invalid way if one exists, else true LRU.
	lru := c.lru[base : base+c.ways]
	victim := 0
	for w, tag := range tags {
		if tag == 0 {
			victim = w
			break
		}
		if lru[w] > lru[victim] {
			victim = w
		}
	}
	if c.tags[base+victim] != 0 {
		ev = Eviction{Block: c.tags[base+victim] - 1, Dirty: c.dirty[base+victim]}
		evicted = true
	}
	c.tags[base+victim] = t
	c.dirty[base+victim] = dirty
	c.touch(s, victim)
	return ev, evicted
}

// MarkDirty sets the dirty bit if the block is present, reporting whether
// it was found.
func (c *SetAssoc) MarkDirty(block uint64) bool {
	s := c.setOf(block)
	base := s * c.ways
	t := tagOf(block)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == t {
			c.dirty[base+w] = true
			return true
		}
	}
	return false
}

// Invalidate removes the block, reporting whether it was present and dirty.
func (c *SetAssoc) Invalidate(block uint64) (present, dirty bool) {
	s := c.setOf(block)
	base := s * c.ways
	t := tagOf(block)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == t {
			present, dirty = true, c.dirty[base+w]
			c.tags[base+w] = 0
			c.dirty[base+w] = false
			return present, dirty
		}
	}
	return false, false
}

// Occupancy returns the number of valid lines.
func (c *SetAssoc) Occupancy() int {
	n := 0
	for _, t := range c.tags {
		if t != 0 {
			n++
		}
	}
	return n
}
