// Package cache provides the memory-hierarchy building blocks the
// simulator composes: a set-associative tag array with LRU replacement, a
// miss-status holding register (MSHR) file, a victim cache, and the
// directory that tracks coherence state per block (Table 2.2: 16-way LLC,
// 64B lines, 64 MSHRs, 16-entry victim cache).
package cache

import "fmt"

// LineBytes is the cache line size used throughout the hierarchy.
const LineBytes = 64

// Addr is a byte address in the simulated physical address space.
type Addr uint64

// Block returns the cache-block index of the address.
func (a Addr) Block() uint64 { return uint64(a) / LineBytes }

// SetAssoc is a set-associative tag array with true-LRU replacement.
// It tracks presence and dirtiness only; data payloads are immaterial to
// timing simulation.
//
// Replacement state is timestamp-LRU: every line carries the value of a
// per-cache monotonic counter at its last touch, so promoting a line to
// MRU — the operation the structural simulator performs on every hit —
// is a single store instead of the recency-rank walk the seed
// implementation did over all ways. The O(ways) work moves to the victim
// scan, which runs only on misses. Eviction decisions are identical to
// rank-based true LRU: touches are strictly ordered by the counter, so
// the minimum stamp in a set is exactly the least recently used way (the
// randomized differential test in setassoc_ref_test.go drives both
// implementations through millions of operations to prove it).
//
// Line metadata is a struct of arrays — tags, stamps, and a dirty bitmap
// in separate contiguous slices — so the tag scan of a 16-way LLC set
// touches two cache lines instead of sixteen interleaved structs.
type SetAssoc struct {
	sets  int
	ways  int
	tags  []uint64 // sets*ways entries; 0 means invalid
	stamp []uint64 // counter value at the line's last touch
	dirty []uint64 // one bit per line, indexed like tags
	tick  uint64   // strictly increasing touch counter
	occ   int      // live count of valid lines
}

// NewSetAssoc builds a cache of the given capacity in bytes. Capacity
// must be a positive multiple of ways*LineBytes and the set count must be
// a power of two (hardware-indexable).
func NewSetAssoc(capacityBytes, ways int) (*SetAssoc, error) {
	if ways <= 0 || ways > 255 {
		return nil, fmt.Errorf("cache: ways %d out of range", ways)
	}
	lines := capacityBytes / LineBytes
	if lines <= 0 || capacityBytes%LineBytes != 0 {
		return nil, fmt.Errorf("cache: capacity %dB is not a positive multiple of the %dB line", capacityBytes, LineBytes)
	}
	sets := lines / ways
	if sets <= 0 || lines%ways != 0 {
		return nil, fmt.Errorf("cache: %d lines not divisible into %d ways", lines, ways)
	}
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	return &SetAssoc{
		sets:  sets,
		ways:  ways,
		tags:  make([]uint64, sets*ways),
		stamp: make([]uint64, sets*ways),
		dirty: make([]uint64, (sets*ways+63)/64),
	}, nil
}

// Sets returns the number of sets.
func (c *SetAssoc) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

// CapacityBytes returns the cache capacity.
func (c *SetAssoc) CapacityBytes() int { return c.sets * c.ways * LineBytes }

// Reset restores the just-constructed state — every line invalid and
// clean, the touch counter at zero — reusing the existing arrays. Machine
// pools (internal/sim) call it to recycle multi-MB LLC arrays across
// sweep points.
func (c *SetAssoc) Reset() {
	clear(c.tags)
	clear(c.stamp)
	clear(c.dirty)
	c.tick = 0
	c.occ = 0
}

// CopyStateFrom makes c's contents — tags, recency stamps, dirty bits,
// occupancy, and the touch counter — identical to src's, reusing c's
// arrays. Both caches must share a geometry. Machine pools use it to
// restore a memoized warm-start image instead of replaying the fill.
func (c *SetAssoc) CopyStateFrom(src *SetAssoc) {
	if c.sets != src.sets || c.ways != src.ways {
		panic(fmt.Sprintf("cache: CopyStateFrom geometry mismatch: %dx%d vs %dx%d",
			c.sets, c.ways, src.sets, src.ways))
	}
	copy(c.tags, src.tags)
	copy(c.stamp, src.stamp)
	copy(c.dirty, src.dirty)
	c.tick = src.tick
	c.occ = src.occ
}

func (c *SetAssoc) setOf(block uint64) int { return int(block & uint64(c.sets-1)) }

// tagOf stores block+1 so that tag 0 can mean "invalid".
func tagOf(block uint64) uint64 { return block + 1 }

// touch promotes line idx to most-recently-used: one store of the next
// counter value. Counter values are assigned strictly increasingly, so
// within any set the stamps order valid lines exactly by recency.
func (c *SetAssoc) touch(idx int) {
	c.tick++
	c.stamp[idx] = c.tick
}

func (c *SetAssoc) isDirty(idx int) bool { return c.dirty[idx>>6]&(1<<(idx&63)) != 0 }
func (c *SetAssoc) setDirty(idx int)     { c.dirty[idx>>6] |= 1 << (idx & 63) }
func (c *SetAssoc) clearDirty(idx int)   { c.dirty[idx>>6] &^= 1 << (idx & 63) }

// Lookup probes the cache. If the block is present it is promoted to MRU
// and hit is true.
func (c *SetAssoc) Lookup(block uint64) (hit bool) {
	s := c.setOf(block)
	base := s * c.ways
	t := tagOf(block)
	for w, tag := range c.tags[base : base+c.ways] {
		if tag == t {
			c.touch(base + w)
			return true
		}
	}
	return false
}

// Access probes like Lookup and additionally sets the dirty bit when a
// write hits — one tag scan where the Lookup-then-MarkDirty sequence
// the simulator's store path used to issue cost two.
func (c *SetAssoc) Access(block uint64, write bool) (hit bool) {
	s := c.setOf(block)
	base := s * c.ways
	t := tagOf(block)
	for w, tag := range c.tags[base : base+c.ways] {
		if tag == t {
			idx := base + w
			c.touch(idx)
			if write {
				c.setDirty(idx)
			}
			return true
		}
	}
	return false
}

// Contains probes without disturbing LRU state.
func (c *SetAssoc) Contains(block uint64) bool {
	s := c.setOf(block)
	base := s * c.ways
	t := tagOf(block)
	for _, tag := range c.tags[base : base+c.ways] {
		if tag == t {
			return true
		}
	}
	return false
}

// Eviction describes a block displaced by an Insert.
type Eviction struct {
	Block uint64
	Dirty bool
}

// Insert fills the block, evicting the LRU line of its set if needed.
// The returned eviction is valid only when evicted is true. Inserting a
// block that is already present just promotes it.
func (c *SetAssoc) Insert(block uint64, dirty bool) (ev Eviction, evicted bool) {
	s := c.setOf(block)
	base := s * c.ways
	t := tagOf(block)
	tags := c.tags[base : base+c.ways]
	stamps := c.stamp[base : base+c.ways] // sliced with tags for BCE
	// One pass finds a resident match, the first invalid way, and the
	// minimum-stamp way. The match must win over everything (the block
	// may sit in any way), then the first invalid way, then the least
	// recently touched — the same victim the recency-rank walk chose.
	firstInvalid := -1
	lru := 0
	var lruStamp uint64 = ^uint64(0)
	for w, tag := range tags {
		if tag == t {
			c.touch(base + w)
			if dirty {
				c.setDirty(base + w)
			}
			return Eviction{}, false
		}
		if tag == 0 {
			if firstInvalid < 0 {
				firstInvalid = w
			}
		} else if s := stamps[w]; s < lruStamp {
			lruStamp = s
			lru = w
		}
	}
	victim := firstInvalid
	if victim < 0 {
		victim = lru
	}
	idx := base + victim
	if c.tags[idx] != 0 {
		ev = Eviction{Block: c.tags[idx] - 1, Dirty: c.isDirty(idx)}
		evicted = true
	} else {
		c.occ++
	}
	c.tags[idx] = t
	if dirty {
		c.setDirty(idx)
	} else {
		c.clearDirty(idx)
	}
	c.touch(idx)
	return ev, evicted
}

// MarkDirty sets the dirty bit if the block is present, reporting whether
// it was found.
func (c *SetAssoc) MarkDirty(block uint64) bool {
	s := c.setOf(block)
	base := s * c.ways
	t := tagOf(block)
	for w, tag := range c.tags[base : base+c.ways] {
		if tag == t {
			c.setDirty(base + w)
			return true
		}
	}
	return false
}

// Invalidate removes the block, reporting whether it was present and dirty.
func (c *SetAssoc) Invalidate(block uint64) (present, dirty bool) {
	s := c.setOf(block)
	base := s * c.ways
	t := tagOf(block)
	for w, tag := range c.tags[base : base+c.ways] {
		if tag == t {
			idx := base + w
			present, dirty = true, c.isDirty(idx)
			c.tags[idx] = 0
			c.clearDirty(idx)
			c.occ--
			return present, dirty
		}
	}
	return false, false
}

// Occupancy returns the number of valid lines. The count is maintained
// live by Insert and Invalidate, so sweeps can poll it without the
// O(lines) tag scan the seed implementation performed.
func (c *SetAssoc) Occupancy() int { return c.occ }
