package cache

import (
	"testing"
	"testing/quick"
)

func TestVictimValidation(t *testing.T) {
	if _, err := NewVictim(0); err == nil {
		t.Fatal("0-entry victim cache accepted")
	}
	v, err := NewVictim(16)
	if err != nil || v.Capacity() != 16 {
		t.Fatalf("v=%v err=%v", v, err)
	}
}

func TestVictimProbeRemoves(t *testing.T) {
	v, _ := NewVictim(4)
	v.Insert(7, true)
	hit, dirty := v.Probe(7)
	if !hit || !dirty {
		t.Fatalf("probe: hit=%v dirty=%v", hit, dirty)
	}
	if hit, _ := v.Probe(7); hit {
		t.Fatal("block survived a promoting probe")
	}
	if v.Len() != 0 {
		t.Fatalf("len %d after promotion", v.Len())
	}
}

func TestVictimLRUSpill(t *testing.T) {
	v, _ := NewVictim(2)
	v.Insert(1, false)
	v.Insert(2, true)
	spill, spilled := v.Insert(3, false)
	if !spilled || spill.Block != 1 || spill.Dirty {
		t.Fatalf("spill %+v spilled=%v, want clean block 1", spill, spilled)
	}
	spill, spilled = v.Insert(4, false)
	if !spilled || spill.Block != 2 || !spill.Dirty {
		t.Fatalf("spill %+v, want dirty block 2", spill)
	}
}

func TestVictimDuplicateInsertRefreshes(t *testing.T) {
	v, _ := NewVictim(2)
	v.Insert(1, false)
	v.Insert(2, false)
	if _, spilled := v.Insert(1, true); spilled {
		t.Fatal("duplicate insert spilled")
	}
	// 2 is now LRU; inserting 3 must spill it, and 1 must carry dirty.
	if spill, spilled := v.Insert(3, false); !spilled || spill.Block != 2 {
		t.Fatalf("spill %+v", spill)
	}
	if hit, dirty := v.Probe(1); !hit || !dirty {
		t.Fatalf("block 1: hit=%v dirty=%v, want dirty (merged)", hit, dirty)
	}
}

func TestVictimHitRate(t *testing.T) {
	v, _ := NewVictim(4)
	if v.HitRate() != 0 {
		t.Fatal("unprobed hit rate nonzero")
	}
	v.Insert(1, false)
	v.Probe(1)
	v.Probe(2)
	if v.HitRate() != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", v.HitRate())
	}
}

// Property: occupancy never exceeds capacity and a just-inserted block
// always probes as a hit.
func TestVictimInvariant(t *testing.T) {
	v, _ := NewVictim(8)
	f := func(block uint8, dirty bool) bool {
		b := uint64(block % 32)
		v.Insert(b, dirty)
		if v.Len() > v.Capacity() {
			return false
		}
		hit, _ := v.Probe(b)
		return hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
