package cache

import "fmt"

// CoherenceState is the per-block directory state of the MESI-style
// protocol the pods run (Section 4.2.1 describes the traffic it induces).
type CoherenceState uint8

const (
	// Invalid: no L1 holds the block.
	Invalid CoherenceState = iota
	// Shared: one or more L1s hold a read-only copy.
	Shared
	// Modified: exactly one L1 holds a dirty copy.
	Modified
)

// String names the state.
func (s CoherenceState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("CoherenceState(%d)", uint8(s))
	}
}

// dirEntry tracks one block's sharers as a bitmap (up to 64 cores per
// directory domain — a pod never exceeds that).
type dirEntry struct {
	state   CoherenceState
	sharers uint64
	owner   uint8
}

// Directory is the LLC-side coherence directory of one pod. It records,
// for every tracked block, which L1 caches hold it and in what state, and
// decides which snoop messages each access must generate.
type Directory struct {
	cores   int
	entries map[uint64]*dirEntry

	// Stats
	Lookups       uint64 // LLC accesses checked against the directory
	SnoopsSent    uint64 // total snoop messages sent to cores
	SnoopAccesses uint64 // accesses that triggered at least one snoop
	Invalidation  uint64 // snoops that were invalidations
	Forwards      uint64 // snoops that were L1-to-L1 forward requests
}

// NewDirectory builds a directory for a pod with the given core count.
func NewDirectory(cores int) (*Directory, error) {
	if cores < 1 || cores > 64 {
		return nil, fmt.Errorf("cache: directory for %d cores (1-64 supported)", cores)
	}
	return &Directory{cores: cores, entries: make(map[uint64]*dirEntry)}, nil
}

// Cores returns the directory's domain size.
func (d *Directory) Cores() int { return d.cores }

// State returns the coherence state of a block.
func (d *Directory) State(block uint64) CoherenceState {
	if e, ok := d.entries[block]; ok {
		return e.state
	}
	return Invalid
}

// Sharers returns the number of L1s holding the block.
func (d *Directory) Sharers(block uint64) int {
	e, ok := d.entries[block]
	if !ok {
		return 0
	}
	n := 0
	for b := e.sharers; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// AccessResult describes the coherence actions one L1 access triggered.
type AccessResult struct {
	// Snoops is the number of snoop messages sent to cores: invalidations
	// of sharers on a write, or a forward request to the owner of a
	// modified block.
	Snoops int
	// ForwardedFromL1 is true when the data comes from another core's L1
	// (L1-to-L1 forwarding) rather than the LLC.
	ForwardedFromL1 bool
}

// Read records core's read of block and returns the induced actions.
func (d *Directory) Read(core int, block uint64) AccessResult {
	d.check(core)
	d.Lookups++
	e := d.entry(block)
	var r AccessResult
	if e.state == Modified && e.owner != uint8(core) {
		// Owner must forward the line and downgrade to Shared.
		r.Snoops = 1
		r.ForwardedFromL1 = true
		d.Forwards++
		d.SnoopsSent++
		d.SnoopAccesses++
		e.sharers |= 1 << e.owner
	}
	e.state = Shared
	e.sharers |= 1 << uint(core)
	return r
}

// Write records core's write of block: all other sharers are invalidated
// and the block becomes Modified with core as owner.
func (d *Directory) Write(core int, block uint64) AccessResult {
	d.check(core)
	d.Lookups++
	e := d.entry(block)
	var r AccessResult
	others := e.sharers &^ (1 << uint(core))
	if e.state == Modified && e.owner != uint8(core) {
		r.Snoops = 1
		r.ForwardedFromL1 = true
		d.Forwards++
		d.SnoopsSent++
		d.SnoopAccesses++
	} else if e.state == Shared && others != 0 {
		for b := others; b != 0; b &= b - 1 {
			r.Snoops++
		}
		d.Invalidation += uint64(r.Snoops)
		d.SnoopsSent += uint64(r.Snoops)
		d.SnoopAccesses++
	}
	e.state = Modified
	e.owner = uint8(core)
	e.sharers = 1 << uint(core)
	return r
}

// EvictL1 records that core dropped its copy (silent S-eviction or a
// dirty writeback for Modified blocks).
func (d *Directory) EvictL1(core int, block uint64) {
	d.check(core)
	e, ok := d.entries[block]
	if !ok {
		return
	}
	e.sharers &^= 1 << uint(core)
	if e.sharers == 0 {
		delete(d.entries, block)
		return
	}
	if e.state == Modified && e.owner == uint8(core) {
		e.state = Shared
	}
}

// SnoopRate returns the fraction of directory lookups that sent at least
// one snoop — the quantity Figure 4.3 plots (as a percentage).
func (d *Directory) SnoopRate() float64 {
	if d.Lookups == 0 {
		return 0
	}
	return float64(d.SnoopAccesses) / float64(d.Lookups)
}

// TrackedBlocks returns the number of blocks with at least one sharer.
func (d *Directory) TrackedBlocks() int { return len(d.entries) }

// Reset drops all coherence state and statistics, restoring the
// just-constructed directory while reusing its map's storage. Machine
// pools call it when recycling a machine for a new sweep point.
func (d *Directory) Reset() {
	clear(d.entries)
	d.ResetStats()
}

// ResetStats zeroes every stat counter, leaving the coherence state
// (tracked blocks, sharers, owners) intact — what a simulator does at
// its warmup/measure boundary.
func (d *Directory) ResetStats() {
	d.Lookups = 0
	d.SnoopsSent = 0
	d.SnoopAccesses = 0
	d.Invalidation = 0
	d.Forwards = 0
}

func (d *Directory) entry(block uint64) *dirEntry {
	e, ok := d.entries[block]
	if !ok {
		e = &dirEntry{}
		d.entries[block] = e
	}
	return e
}

func (d *Directory) check(core int) {
	if core < 0 || core >= d.cores {
		panic(fmt.Sprintf("cache: core %d outside directory domain of %d", core, d.cores))
	}
}
