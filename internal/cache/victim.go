package cache

import "fmt"

// Victim is the small fully associative victim cache that backs each LLC
// bank (Table 2.2: 16 entries): blocks evicted from the main array get a
// second chance, converting a fraction of conflict misses back into hits.
type Victim struct {
	capacity int
	blocks   []uint64 // LRU order: index 0 is the least recently used
	dirty    []bool

	Hits   uint64
	Probes uint64
}

// NewVictim builds a victim cache with the given entry count.
func NewVictim(entries int) (*Victim, error) {
	if entries <= 0 {
		return nil, fmt.Errorf("cache: victim cache with %d entries", entries)
	}
	return &Victim{
		capacity: entries,
		blocks:   make([]uint64, 0, entries),
		dirty:    make([]bool, 0, entries),
	}, nil
}

// Capacity returns the entry count.
func (v *Victim) Capacity() int { return v.capacity }

// Len returns the number of occupied entries.
func (v *Victim) Len() int { return len(v.blocks) }

// Probe checks for the block; on a hit the entry is removed (the block
// moves back into the main array) and its dirtiness returned.
func (v *Victim) Probe(block uint64) (hit, dirty bool) {
	v.Probes++
	for i, b := range v.blocks {
		if b == block {
			v.Hits++
			dirty = v.dirty[i]
			v.blocks = append(v.blocks[:i], v.blocks[i+1:]...)
			v.dirty = append(v.dirty[:i], v.dirty[i+1:]...)
			return true, dirty
		}
	}
	return false, false
}

// Insert stores an evicted block. If the victim cache is full, the LRU
// entry spills; it is returned so the caller can write it back if dirty.
func (v *Victim) Insert(block uint64, dirty bool) (spill Eviction, spilled bool) {
	// Duplicate insert refreshes recency and dirtiness.
	for i, b := range v.blocks {
		if b == block {
			d := v.dirty[i] || dirty
			v.blocks = append(v.blocks[:i], v.blocks[i+1:]...)
			v.dirty = append(v.dirty[:i], v.dirty[i+1:]...)
			v.blocks = append(v.blocks, block)
			v.dirty = append(v.dirty, d)
			return Eviction{}, false
		}
	}
	if len(v.blocks) >= v.capacity {
		spill = Eviction{Block: v.blocks[0], Dirty: v.dirty[0]}
		spilled = true
		v.blocks = v.blocks[1:]
		v.dirty = v.dirty[1:]
	}
	v.blocks = append(v.blocks, block)
	v.dirty = append(v.dirty, dirty)
	return spill, spilled
}

// HitRate returns hits over probes (zero when unprobed).
func (v *Victim) HitRate() float64 {
	if v.Probes == 0 {
		return 0
	}
	return float64(v.Hits) / float64(v.Probes)
}
