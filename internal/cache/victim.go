package cache

import "fmt"

// Victim is the small fully associative victim cache that backs each LLC
// bank (Table 2.2: 16 entries): blocks evicted from the main array get a
// second chance, converting a fraction of conflict misses back into hits.
//
// Entries live in fixed arrays with timestamp-LRU recency, like SetAssoc:
// the seed implementation kept a slice in LRU order and re-sliced on
// every spill, which forced an allocation per spill once the cache filled
// — on the structural simulator's miss path. Here a probe hit clears the
// entry in place, an insert refreshes a stamp, and a spill overwrites the
// minimum-stamp entry; nothing allocates after construction.
type Victim struct {
	capacity int
	tags     []uint64 // block+1; 0 means empty
	dirty    []bool
	stamp    []uint64 // counter value at last insert or refresh
	tick     uint64
	occ      int

	Hits   uint64
	Probes uint64
}

// NewVictim builds a victim cache with the given entry count.
func NewVictim(entries int) (*Victim, error) {
	if entries <= 0 {
		return nil, fmt.Errorf("cache: victim cache with %d entries", entries)
	}
	return &Victim{
		capacity: entries,
		tags:     make([]uint64, entries),
		dirty:    make([]bool, entries),
		stamp:    make([]uint64, entries),
	}, nil
}

// Capacity returns the entry count.
func (v *Victim) Capacity() int { return v.capacity }

// Len returns the number of occupied entries.
func (v *Victim) Len() int { return v.occ }

// Reset restores the just-constructed state, reusing the arrays.
func (v *Victim) Reset() {
	clear(v.tags)
	clear(v.dirty)
	clear(v.stamp)
	v.tick = 0
	v.occ = 0
	v.Hits = 0
	v.Probes = 0
}

// CopyStateFrom makes v's contents and statistics identical to src's,
// reusing v's arrays. Both caches must share a capacity.
func (v *Victim) CopyStateFrom(src *Victim) {
	if v.capacity != src.capacity {
		panic(fmt.Sprintf("cache: CopyStateFrom capacity mismatch: %d vs %d", v.capacity, src.capacity))
	}
	copy(v.tags, src.tags)
	copy(v.dirty, src.dirty)
	copy(v.stamp, src.stamp)
	v.tick = src.tick
	v.occ = src.occ
	v.Hits = src.Hits
	v.Probes = src.Probes
}

// Probe checks for the block; on a hit the entry is removed (the block
// moves back into the main array) and its dirtiness returned.
func (v *Victim) Probe(block uint64) (hit, dirty bool) {
	v.Probes++
	t := tagOf(block)
	for i, tag := range v.tags {
		if tag == t {
			v.Hits++
			dirty = v.dirty[i]
			v.tags[i] = 0
			v.dirty[i] = false
			v.occ--
			return true, dirty
		}
	}
	return false, false
}

// Insert stores an evicted block. If the victim cache is full, the least
// recently inserted entry spills; it is returned so the caller can write
// it back if dirty.
func (v *Victim) Insert(block uint64, dirty bool) (spill Eviction, spilled bool) {
	t := tagOf(block)
	// Duplicate insert refreshes recency and accumulates dirtiness.
	for i, tag := range v.tags {
		if tag == t {
			v.dirty[i] = v.dirty[i] || dirty
			v.tick++
			v.stamp[i] = v.tick
			return Eviction{}, false
		}
	}
	// Slot selection: the first empty entry if one exists, else the
	// minimum-stamp entry, which spills.
	slot := 0
	for i, tag := range v.tags {
		if tag == 0 {
			slot = i
			break
		}
		if v.stamp[i] < v.stamp[slot] {
			slot = i
		}
	}
	if v.tags[slot] != 0 {
		spill = Eviction{Block: v.tags[slot] - 1, Dirty: v.dirty[slot]}
		spilled = true
	} else {
		v.occ++
	}
	v.tags[slot] = t
	v.dirty[slot] = dirty
	v.tick++
	v.stamp[slot] = v.tick
	return spill, spilled
}

// HitRate returns hits over probes (zero when unprobed).
func (v *Victim) HitRate() float64 {
	if v.Probes == 0 {
		return 0
	}
	return float64(v.Hits) / float64(v.Probes)
}
