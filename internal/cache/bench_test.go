package cache

import (
	"testing"

	"scaleout/internal/stats"
)

// Hot-path microbenchmarks, tracked below the harness level so a cache
// regression names itself before it shows up as a structural-simulator
// slowdown. The LLC geometry (16-way, 1MB bank) matches Table 2.2.

// BenchmarkSetAssocLookupHit measures the hit path — one tag scan plus
// the O(1) timestamp touch that replaced the seed's recency-rank walk.
func BenchmarkSetAssocLookupHit(b *testing.B) {
	c, err := NewSetAssoc(1<<20, 16)
	if err != nil {
		b.Fatal(err)
	}
	lines := uint64(c.Sets() * c.Ways())
	for i := uint64(0); i < lines; i++ {
		c.Insert(i, false)
	}
	rng := stats.NewRng(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Lookup(rng.Uint64() % lines) {
			b.Fatal("miss in a fully resident set")
		}
	}
}

// BenchmarkSetAssocLookupMiss measures the miss path: a full-set scan
// that finds nothing.
func BenchmarkSetAssocLookupMiss(b *testing.B) {
	c, err := NewSetAssoc(1<<20, 16)
	if err != nil {
		b.Fatal(err)
	}
	lines := uint64(c.Sets() * c.Ways())
	for i := uint64(0); i < lines; i++ {
		c.Insert(i, false)
	}
	rng := stats.NewRng(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Lookup(lines + rng.Uint64()%lines) {
			b.Fatal("hit on an absent block")
		}
	}
}

// BenchmarkSetAssocInsertEvict measures steady-state fills: every
// insert scans for a match, selects the minimum-stamp victim, and
// evicts.
func BenchmarkSetAssocInsertEvict(b *testing.B) {
	c, err := NewSetAssoc(1<<20, 16)
	if err != nil {
		b.Fatal(err)
	}
	lines := uint64(c.Sets() * c.Ways())
	rng := stats.NewRng(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(rng.Uint64()%(8*lines), rng.Uint64()&1 == 0)
	}
}

// BenchmarkMSHR measures the allocate/complete cycle of the dense-array
// MSHR file at a realistic occupancy.
func BenchmarkMSHR(b *testing.B) {
	m, err := NewMSHR(32)
	if err != nil {
		b.Fatal(err)
	}
	for i := uint64(0); i < 8; i++ {
		m.Allocate(i)
	}
	rng := stats.NewRng(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		block := 100 + rng.Uint64()%16
		if primary, ok := m.Allocate(block); ok && primary {
			m.Complete(block)
		}
	}
}

// BenchmarkVictimInsertSpill measures the fixed-array victim cache in
// its steady spilling state, which used to reallocate per spill.
func BenchmarkVictimInsertSpill(b *testing.B) {
	v, err := NewVictim(16)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRng(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Insert(rng.Uint64()%64, rng.Uint64()&1 == 0)
	}
}
