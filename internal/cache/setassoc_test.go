package cache

import (
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, capacity, ways int) *SetAssoc {
	t.Helper()
	c, err := NewSetAssoc(capacity, ways)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewSetAssocValidation(t *testing.T) {
	cases := []struct {
		capacity, ways int
		ok             bool
	}{
		{32 * 1024, 2, true},
		{1024 * 1024, 16, true},
		{0, 2, false},
		{4096, 0, false},
		{4096, 300, false},
		{100, 2, false},        // not a multiple of the line size
		{3 * 64 * 2, 2, false}, // 3 sets: not a power of two
	}
	for _, c := range cases {
		_, err := NewSetAssoc(c.capacity, c.ways)
		if (err == nil) != c.ok {
			t.Errorf("NewSetAssoc(%d, %d): err=%v, want ok=%v", c.capacity, c.ways, err, c.ok)
		}
	}
}

func TestGeometry(t *testing.T) {
	c := mustCache(t, 32*1024, 2)
	if c.Sets() != 256 || c.Ways() != 2 {
		t.Fatalf("32KB 2-way: %d sets x %d ways", c.Sets(), c.Ways())
	}
	if c.CapacityBytes() != 32*1024 {
		t.Fatalf("capacity %d", c.CapacityBytes())
	}
}

func TestHitAfterInsert(t *testing.T) {
	c := mustCache(t, 4096, 4)
	if c.Lookup(100) {
		t.Fatal("hit in empty cache")
	}
	c.Insert(100, false)
	if !c.Lookup(100) {
		t.Fatal("miss after insert")
	}
}

func TestLRUEviction(t *testing.T) {
	c := mustCache(t, 2*64, 2) // one set, two ways
	c.Insert(0, false)
	c.Insert(1, false)
	c.Lookup(0) // block 0 now MRU
	ev, evicted := c.Insert(2, false)
	if !evicted || ev.Block != 1 {
		t.Fatalf("expected eviction of LRU block 1, got %+v evicted=%v", ev, evicted)
	}
	if !c.Contains(0) || !c.Contains(2) || c.Contains(1) {
		t.Fatal("wrong residents after eviction")
	}
}

func TestDirtyEviction(t *testing.T) {
	c := mustCache(t, 2*64, 2)
	c.Insert(0, true)
	c.Insert(1, false)
	c.Insert(2, false) // evicts 0 (LRU), which is dirty
	ev, evicted := c.Insert(3, false)
	_ = ev
	_ = evicted
	// Direct check on the first eviction instead:
	c2 := mustCache(t, 2*64, 2)
	c2.Insert(0, true)
	c2.Insert(1, false)
	ev2, ev2ok := c2.Insert(2, false)
	if !ev2ok || ev2.Block != 0 || !ev2.Dirty {
		t.Fatalf("expected dirty eviction of block 0, got %+v", ev2)
	}
}

func TestInsertExistingPromotes(t *testing.T) {
	c := mustCache(t, 2*64, 2)
	c.Insert(0, false)
	c.Insert(1, false)
	if _, evicted := c.Insert(0, false); evicted {
		t.Fatal("re-insert evicted")
	}
	// 1 is now LRU.
	ev, evicted := c.Insert(2, false)
	if !evicted || ev.Block != 1 {
		t.Fatalf("expected eviction of 1, got %+v", ev)
	}
}

func TestMarkDirty(t *testing.T) {
	c := mustCache(t, 4096, 4)
	c.Insert(5, false)
	if !c.MarkDirty(5) {
		t.Fatal("MarkDirty missed resident block")
	}
	if c.MarkDirty(6) {
		t.Fatal("MarkDirty hit absent block")
	}
	present, dirty := c.Invalidate(5)
	if !present || !dirty {
		t.Fatalf("invalidate: present=%v dirty=%v", present, dirty)
	}
}

func TestInvalidate(t *testing.T) {
	c := mustCache(t, 4096, 4)
	c.Insert(9, false)
	present, dirty := c.Invalidate(9)
	if !present || dirty {
		t.Fatalf("present=%v dirty=%v", present, dirty)
	}
	if c.Contains(9) {
		t.Fatal("block survived invalidation")
	}
	if present, _ := c.Invalidate(9); present {
		t.Fatal("double invalidation reported present")
	}
}

func TestContainsDoesNotPromote(t *testing.T) {
	c := mustCache(t, 2*64, 2)
	c.Insert(0, false)
	c.Insert(1, false)
	c.Contains(0) // must NOT promote
	ev, _ := c.Insert(2, false)
	if ev.Block != 0 {
		t.Fatalf("Contains promoted block 0: evicted %d", ev.Block)
	}
}

func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	c := mustCache(t, 8192, 4)
	lines := 8192 / 64
	for b := uint64(0); b < 10000; b++ {
		c.Insert(b, b%3 == 0)
		if occ := c.Occupancy(); occ > lines {
			t.Fatalf("occupancy %d exceeds %d lines", occ, lines)
		}
	}
	if occ := c.Occupancy(); occ != lines {
		t.Fatalf("cache not full after 10000 inserts: %d/%d", occ, lines)
	}
}

// Property: a block just inserted is always resident; inserting never
// evicts the block being inserted.
func TestInsertThenLookupProperty(t *testing.T) {
	c := mustCache(t, 16*1024, 8)
	f := func(block uint64, dirty bool) bool {
		ev, evicted := c.Insert(block, dirty)
		if evicted && ev.Block == block {
			return false
		}
		return c.Contains(block)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: within one set, the cache retains the most recently used
// `ways` distinct blocks.
func TestLRUStackProperty(t *testing.T) {
	const ways = 4
	c := mustCache(t, ways*64, ways) // single set
	var recent []uint64
	touch := func(b uint64) {
		for i, x := range recent {
			if x == b {
				recent = append(recent[:i], recent[i+1:]...)
				break
			}
		}
		recent = append(recent, b)
		if len(recent) > ways {
			recent = recent[1:]
		}
	}
	f := func(b8 uint8) bool {
		b := uint64(b8 % 16)
		c.Insert(b, false)
		touch(b)
		for _, x := range recent {
			if !c.Contains(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestAddrBlock(t *testing.T) {
	if Addr(0).Block() != 0 || Addr(63).Block() != 0 || Addr(64).Block() != 1 {
		t.Fatal("Addr.Block misaligned")
	}
}
