package cache

import (
	"testing"

	"scaleout/internal/stats"
)

// refSetAssoc is the seed's recency-rank LRU implementation, retained
// verbatim as the behavioural reference for TestSetAssocMatchesReference:
// every way holds its recency rank within the set and a touch walks all
// of them. The production SetAssoc replaced the walk with timestamp-LRU;
// the differential test below proves the two make identical hit and
// eviction decisions under millions of mixed operations.
type refSetAssoc struct {
	sets  int
	ways  int
	tags  []uint64
	dirty []bool
	lru   []uint8 // recency rank of way i within its set; lower is MRU
}

func newRefSetAssoc(capacityBytes, ways int) *refSetAssoc {
	lines := capacityBytes / LineBytes
	sets := lines / ways
	c := &refSetAssoc{
		sets:  sets,
		ways:  ways,
		tags:  make([]uint64, sets*ways),
		dirty: make([]bool, sets*ways),
		lru:   make([]uint8, sets*ways),
	}
	for s := 0; s < sets; s++ {
		for w := 0; w < ways; w++ {
			c.lru[s*ways+w] = uint8(w)
		}
	}
	return c
}

func (c *refSetAssoc) setOf(block uint64) int { return int(block & uint64(c.sets-1)) }

func (c *refSetAssoc) touch(s, w int) {
	lru := c.lru[s*c.ways : s*c.ways+c.ways]
	old := lru[w]
	for i, r := range lru {
		if r < old {
			lru[i] = r + 1
		}
	}
	lru[w] = 0
}

func (c *refSetAssoc) Lookup(block uint64) bool {
	s := c.setOf(block)
	base := s * c.ways
	t := tagOf(block)
	for w, tag := range c.tags[base : base+c.ways] {
		if tag == t {
			c.touch(s, w)
			return true
		}
	}
	return false
}

func (c *refSetAssoc) Insert(block uint64, dirty bool) (ev Eviction, evicted bool) {
	s := c.setOf(block)
	base := s * c.ways
	t := tagOf(block)
	tags := c.tags[base : base+c.ways]
	for w, tag := range tags {
		if tag == t {
			c.touch(s, w)
			if dirty {
				c.dirty[base+w] = true
			}
			return Eviction{}, false
		}
	}
	lru := c.lru[base : base+c.ways]
	victim := 0
	for w, tag := range tags {
		if tag == 0 {
			victim = w
			break
		}
		if lru[w] > lru[victim] {
			victim = w
		}
	}
	if c.tags[base+victim] != 0 {
		ev = Eviction{Block: c.tags[base+victim] - 1, Dirty: c.dirty[base+victim]}
		evicted = true
	}
	c.tags[base+victim] = t
	c.dirty[base+victim] = dirty
	c.touch(s, victim)
	return ev, evicted
}

func (c *refSetAssoc) MarkDirty(block uint64) bool {
	s := c.setOf(block)
	base := s * c.ways
	t := tagOf(block)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == t {
			c.dirty[base+w] = true
			return true
		}
	}
	return false
}

func (c *refSetAssoc) Invalidate(block uint64) (present, dirty bool) {
	s := c.setOf(block)
	base := s * c.ways
	t := tagOf(block)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == t {
			present, dirty = true, c.dirty[base+w]
			c.tags[base+w] = 0
			c.dirty[base+w] = false
			return present, dirty
		}
	}
	return false, false
}

func (c *refSetAssoc) Occupancy() int {
	n := 0
	for _, t := range c.tags {
		if t != 0 {
			n++
		}
	}
	return n
}

// TestSetAssocMatchesReference drives the timestamp-LRU SetAssoc and the
// seed's recency-rank reference through the same randomized stream of
// mixed operations and asserts every observable — hits, evictions and
// their dirtiness, invalidation results, occupancy — is identical. Block
// draws are confined to a few sets' worth of conflicting addresses so
// every set cycles through fill, eviction, and re-reference many times.
func TestSetAssocMatchesReference(t *testing.T) {
	geometries := []struct {
		capacity, ways int
	}{
		{2 * 64, 2},       // one 2-way set: maximal conflict pressure
		{4 * 4 * 64, 4},   // 4 sets x 4 ways
		{16 * 64, 16},     // one 16-way set: the LLC's associativity
		{8 * 16 * 64, 16}, // 8 sets x 16 ways
		{128 * 1 * 64, 1}, // direct-mapped
		{64 * 8 * 64, 8},  // L1-like
	}
	ops := 600000
	if testing.Short() {
		ops = 60000
	}
	for _, g := range geometries {
		got := mustCache(t, g.capacity, g.ways)
		want := newRefSetAssoc(g.capacity, g.ways)
		rng := stats.NewRng(uint64(g.capacity)*31 + uint64(g.ways))
		// 4x the cache's line count of distinct blocks keeps sets
		// oversubscribed without making hits vanishingly rare.
		blockSpace := uint64(4 * g.capacity / LineBytes)
		for i := 0; i < ops; i++ {
			block := rng.Uint64() % blockSpace
			switch op := rng.Intn(100); {
			case op < 45:
				if gh, wh := got.Lookup(block), want.Lookup(block); gh != wh {
					t.Fatalf("%d-way/%dB op %d: Lookup(%d) = %v, reference %v",
						g.ways, g.capacity, i, block, gh, wh)
				}
			case op < 80:
				dirty := rng.Intn(2) == 0
				gev, gok := got.Insert(block, dirty)
				wev, wok := want.Insert(block, dirty)
				if gok != wok || gev != wev {
					t.Fatalf("%d-way/%dB op %d: Insert(%d, %v) = (%+v, %v), reference (%+v, %v)",
						g.ways, g.capacity, i, block, dirty, gev, gok, wev, wok)
				}
			case op < 85:
				gp, gd := got.Invalidate(block)
				wp, wd := want.Invalidate(block)
				if gp != wp || gd != wd {
					t.Fatalf("%d-way/%dB op %d: Invalidate(%d) = (%v, %v), reference (%v, %v)",
						g.ways, g.capacity, i, block, gp, gd, wp, wd)
				}
			case op < 92:
				// Access(write) must behave exactly like the seed's
				// Lookup-then-MarkDirty store path.
				write := rng.Intn(2) == 0
				gh := got.Access(block, write)
				wh := want.Lookup(block)
				if wh && write {
					want.MarkDirty(block)
				}
				if gh != wh {
					t.Fatalf("%d-way/%dB op %d: Access(%d, %v) = %v, reference %v",
						g.ways, g.capacity, i, block, write, gh, wh)
				}
			default:
				if gm, wm := got.MarkDirty(block), want.MarkDirty(block); gm != wm {
					t.Fatalf("%d-way/%dB op %d: MarkDirty(%d) = %v, reference %v",
						g.ways, g.capacity, i, block, gm, wm)
				}
			}
			if i%1024 == 0 {
				if go_, wo := got.Occupancy(), want.Occupancy(); go_ != wo {
					t.Fatalf("%d-way/%dB op %d: Occupancy %d, reference %d",
						g.ways, g.capacity, i, go_, wo)
				}
			}
		}
	}
}

// refVictim is the seed's slice-shuffling victim cache, kept as the
// reference for TestVictimMatchesReference.
type refVictim struct {
	capacity int
	blocks   []uint64
	dirty    []bool
}

func (v *refVictim) Probe(block uint64) (hit, dirty bool) {
	for i, b := range v.blocks {
		if b == block {
			dirty = v.dirty[i]
			v.blocks = append(v.blocks[:i], v.blocks[i+1:]...)
			v.dirty = append(v.dirty[:i], v.dirty[i+1:]...)
			return true, dirty
		}
	}
	return false, false
}

func (v *refVictim) Insert(block uint64, dirty bool) (spill Eviction, spilled bool) {
	for i, b := range v.blocks {
		if b == block {
			d := v.dirty[i] || dirty
			v.blocks = append(v.blocks[:i], v.blocks[i+1:]...)
			v.dirty = append(v.dirty[:i], v.dirty[i+1:]...)
			v.blocks = append(v.blocks, block)
			v.dirty = append(v.dirty, d)
			return Eviction{}, false
		}
	}
	if len(v.blocks) >= v.capacity {
		spill = Eviction{Block: v.blocks[0], Dirty: v.dirty[0]}
		spilled = true
		v.blocks = v.blocks[1:]
		v.dirty = v.dirty[1:]
	}
	v.blocks = append(v.blocks, block)
	v.dirty = append(v.dirty, dirty)
	return spill, spilled
}

// TestVictimMatchesReference drives the fixed-array victim cache and the
// seed's LRU-ordered-slice reference through the same randomized probe
// and insert stream, asserting identical hits, dirtiness, and spills.
func TestVictimMatchesReference(t *testing.T) {
	got, err := NewVictim(16)
	if err != nil {
		t.Fatal(err)
	}
	want := &refVictim{capacity: 16}
	rng := stats.NewRng(7)
	ops := 300000
	if testing.Short() {
		ops = 30000
	}
	for i := 0; i < ops; i++ {
		block := rng.Uint64() % 48 // 3x capacity keeps it spilling
		if rng.Intn(2) == 0 {
			gh, gd := got.Probe(block)
			wh, wd := want.Probe(block)
			if gh != wh || gd != wd {
				t.Fatalf("op %d: Probe(%d) = (%v, %v), reference (%v, %v)", i, block, gh, gd, wh, wd)
			}
		} else {
			dirty := rng.Intn(3) == 0
			gs, gok := got.Insert(block, dirty)
			ws, wok := want.Insert(block, dirty)
			if gok != wok || gs != ws {
				t.Fatalf("op %d: Insert(%d, %v) = (%+v, %v), reference (%+v, %v)",
					i, block, dirty, gs, gok, ws, wok)
			}
		}
		if got.Len() != len(want.blocks) {
			t.Fatalf("op %d: Len %d, reference %d", i, got.Len(), len(want.blocks))
		}
	}
}
