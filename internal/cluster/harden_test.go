package cluster

import (
	"context"
	"net/http"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"scaleout/internal/exp"
	"scaleout/internal/sim"
	"scaleout/internal/vclock"
)

// routeOnce drives one point through coord.Route, returning its result.
func routeOnce(t *testing.T, coord *Coordinator, cfg sim.Config) (any, bool, error) {
	t.Helper()
	return coord.Route(context.Background(), cfg.Key(), cfg.WirePayload())
}

// waitUntil polls cond without fixed sleeps; it exists for the few
// assertions that depend on a goroutine observing an Advance.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCooldownExpiresOnInjectedClock: a failed replica is down exactly
// until the (virtual) cooldown lapses — no real sleeps anywhere.
func TestCooldownExpiresOnInjectedClock(t *testing.T) {
	clk := vclock.NewFake(time.Unix(0, 0))
	coord, err := New([]string{"127.0.0.1:1"}, WithBatchWindow(0), WithRetries(0),
		WithCooldown(3*time.Second), WithProbeInterval(0), WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfigs(1)[0]
	if _, handled, rerr := routeOnce(t, coord, cfg); handled || rerr != nil {
		t.Fatalf("Route = handled %v, err %v; want declined", handled, rerr)
	}
	rep := coord.replicas[0]
	if !rep.down(clk.Now()) {
		t.Fatal("failed replica not in cooldown")
	}
	clk.Advance(2 * time.Second)
	if !rep.down(clk.Now()) {
		t.Fatal("cooldown ended early without a probe")
	}
	clk.Advance(time.Second)
	if rep.down(clk.Now()) {
		t.Fatal("cooldown did not expire on the injected clock")
	}
}

// TestHealthProbeEndsCooldownEarly: a replica that starts failing
// /v1/sweep is marked down for a long cooldown, but the active
// /healthz prober returns it to rotation as soon as it answers — hours
// of virtual cooldown end after one probe interval.
func TestHealthProbeEndsCooldownEarly(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	rep := startReplica(t, func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/sweep" && failing.Load() {
				http.Error(w, "injected outage", http.StatusInternalServerError)
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	clk := vclock.NewFake(time.Unix(0, 0))
	coord, err := New([]string{rep.addr()}, WithBatchWindow(0), WithRetries(0),
		WithCooldown(time.Hour), WithProbeInterval(100*time.Millisecond), WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfigs(1)[0]
	if _, handled, rerr := routeOnce(t, coord, cfg); handled || rerr != nil {
		t.Fatalf("Route = handled %v, err %v; want declined while failing", handled, rerr)
	}
	r := coord.replicas[0]
	if !r.down(clk.Now()) {
		t.Fatal("replica not marked down")
	}

	// The replica recovers; the prober (armed on the fake clock) fires
	// after one interval and clears the cooldown 59m59.9s early.
	failing.Store(false)
	clk.BlockUntil(1)
	clk.Advance(100 * time.Millisecond)
	waitUntil(t, func() bool { return !r.down(clk.Now()) })
	if r.probes.Load() == 0 {
		t.Fatal("recovery did not come from a probe")
	}

	// Back in rotation: the same point now routes and returns the
	// local-identical result.
	val, handled, rerr := routeOnce(t, coord, cfg)
	if !handled || rerr != nil {
		t.Fatalf("Route after recovery = handled %v, err %v", handled, rerr)
	}
	want, err := sim.Run(cfg)
	if err != nil || !reflect.DeepEqual(val, want) {
		t.Fatalf("post-recovery result differs: %v", err)
	}
	st := coord.Stats()
	if st.Peers[0].Probes == 0 || st.Peers[0].Down {
		t.Fatalf("peer stats = %+v, want probes recorded and up", st.Peers[0])
	}
}

// TestReplicaBusyHonored: a replica answering 429 with a Retry-After
// hint is waited out and retried — never marked down, never charged a
// failure — and the point still lands on it.
func TestReplicaBusyHonored(t *testing.T) {
	var sheds atomic.Int64
	rep := startReplica(t, func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/sweep" && sheds.Add(1) <= 2 {
				w.Header().Set("Retry-After", "0")
				http.Error(w, "shedding", http.StatusTooManyRequests)
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	coord, err := New([]string{rep.addr()}, WithBatchWindow(0),
		WithRetries(3), WithBackoff(time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfigs(1)[0]
	val, handled, rerr := routeOnce(t, coord, cfg)
	if !handled || rerr != nil {
		t.Fatalf("Route = handled %v, err %v", handled, rerr)
	}
	want, err := sim.Run(cfg)
	if err != nil || !reflect.DeepEqual(val, want) {
		t.Fatalf("result differs: %v", err)
	}
	st := coord.Stats()
	if st.Busy != 2 || st.Peers[0].Busy != 2 {
		t.Fatalf("stats = %+v, want 2 busy responses honored", st)
	}
	if st.Peers[0].Failures != 0 || st.Peers[0].Down {
		t.Fatalf("peer stats = %+v: shedding must not look like failure", st.Peers[0])
	}
	if st.Routed != 1 {
		t.Fatalf("stats = %+v, want the point routed after the busy waits", st)
	}
}

// TestPostTimeoutFailsOver: a hung replica is bounded by the per-post
// timeout and the point fails over to the next-ranked owner instead of
// stalling for the old flat ten minutes.
func TestPostTimeoutFailsOver(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	hung := startReplica(t, func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/sweep" {
				<-release // hold the request until the test ends
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	healthy := startReplica(t, nil)
	coord, err := New([]string{hung.addr(), healthy.addr()}, WithBatchWindow(0),
		WithRetries(0), WithPostTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	cfgs := testConfigs(8)
	eng := exp.New(4)
	eng.SetRoute(coord.Route)
	got, err := exp.Sims(exp.WithEngine(context.Background(), eng), cfgs)
	if err != nil {
		t.Fatalf("Sims: %v", err)
	}
	for i, cfg := range cfgs {
		want, err := sim.Run(cfg)
		if err != nil || !reflect.DeepEqual(got[i], want) {
			t.Fatalf("point %d differs after post-timeout failover: %v", i, err)
		}
	}
	st := coord.Stats()
	if st.LocalFallbacks != 0 {
		t.Fatalf("stats = %+v: want failover to the healthy replica, not local compute", st)
	}
	var hungStats PeerStats
	for _, p := range st.Peers {
		if p.Addr == hung.addr() {
			hungStats = p
		}
	}
	if hungStats.Failures == 0 {
		t.Fatalf("peer stats = %+v: the hung replica should be charged its timeouts", hungStats)
	}
}

// TestBackoffBoundedAndJittered: the schedule doubles from base to cap
// with jitter confined to [d/2, d].
func TestBackoffBoundedAndJittered(t *testing.T) {
	coord, err := New([]string{"a:1"}, WithBackoff(10*time.Millisecond, 80*time.Millisecond), WithJitterSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	for try := 0; try < 8; try++ {
		d := 10 * time.Millisecond << try
		if d > 80*time.Millisecond {
			d = 80 * time.Millisecond
		}
		for i := 0; i < 32; i++ {
			got := coord.backoff(try)
			if got < d/2 || got > d {
				t.Fatalf("backoff(%d) = %v, want in [%v, %v]", try, got, d/2, d)
			}
		}
	}
}

// TestClampHint: Retry-After hints are clamped into
// [backoff base, cooldown].
func TestClampHint(t *testing.T) {
	coord, err := New([]string{"a:1"}, WithBackoff(20*time.Millisecond, time.Second), WithCooldown(3*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ in, want time.Duration }{
		{0, 20 * time.Millisecond},                    // missing hint: backoff base, never busy-spin
		{time.Second, time.Second},                    // sane hint honored exactly
		{time.Minute, 3 * time.Second},                // huge hint capped at the cooldown
		{5 * time.Millisecond, 20 * time.Millisecond}, // sub-base hint raised
	}
	for _, tc := range cases {
		if got := coord.clampHint(tc.in); got != tc.want {
			t.Errorf("clampHint(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("7"); d != 7*time.Second {
		t.Errorf("parseRetryAfter(7) = %v", d)
	}
	if d := parseRetryAfter(""); d != 0 {
		t.Errorf("parseRetryAfter(empty) = %v", d)
	}
	if d := parseRetryAfter("-3"); d != 0 {
		t.Errorf("parseRetryAfter(-3) = %v", d)
	}
	if d := parseRetryAfter("garbage"); d != 0 {
		t.Errorf("parseRetryAfter(garbage) = %v", d)
	}
}
