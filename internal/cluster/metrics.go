package cluster

import "scaleout/internal/metrics"

// RegisterMetrics registers the coordinator's routing counters on reg
// under the soproc_cluster_* namespace, including the per-replica
// families labeled by replica address. Values are read from the same
// atomic counters Stats() snapshots, at scrape time; cmd/soprocd calls
// this when it builds a coordinator, so a -peers daemon's /metricsz
// page carries its routing picture next to its engine's.
func (c *Coordinator) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("soproc_cluster_routed_points_total",
		"points answered by a replica",
		func() float64 { return float64(c.routed.Load()) })
	reg.CounterFunc("soproc_cluster_failovers_total",
		"points retried past their first-choice owner after a failure",
		func() float64 { return float64(c.failovers.Load()) })
	reg.CounterFunc("soproc_cluster_retries_total",
		"same-replica re-attempts after transient failures",
		func() float64 { return float64(c.retried.Load()) })
	reg.CounterFunc("soproc_cluster_busy_total",
		"429 responses honored (replica shedding load, Retry-After waited out)",
		func() float64 { return float64(c.busy.Load()) })
	reg.CounterFunc("soproc_cluster_local_fallbacks_total",
		"points computed locally because every replica failed or rejected them",
		func() float64 { return float64(c.fallbacks.Load()) })
	reg.CounterFunc("soproc_cluster_unroutable_total",
		"points whose payload has no wire form (always computed locally)",
		func() float64 { return float64(c.unroutable.Load()) })
	reg.CounterFunc("soproc_cluster_rejects_total",
		"permanent per-replica rejections (definitive 4xx other than 429)",
		func() float64 { return float64(c.rejects.Load()) })
	reg.CounterFunc("soproc_cluster_posts_total",
		"/v1/sweep requests issued (routed/posts is the batching factor)",
		func() float64 { return float64(c.posts.Load()) })

	replicaLabels := []string{"replica"}
	reg.CounterVecFunc("soproc_cluster_replica_sent_points_total",
		"points each replica answered",
		replicaLabels, func(emit metrics.EmitFunc) {
			for _, rep := range c.replicas {
				emit(float64(rep.sent.Load()), rep.addr)
			}
		})
	reg.CounterVecFunc("soproc_cluster_replica_failures_total",
		"failed /v1/sweep attempts per replica",
		replicaLabels, func(emit metrics.EmitFunc) {
			for _, rep := range c.replicas {
				emit(float64(rep.failures.Load()), rep.addr)
			}
		})
	reg.CounterVecFunc("soproc_cluster_replica_busy_total",
		"429 responses shed per replica",
		replicaLabels, func(emit metrics.EmitFunc) {
			for _, rep := range c.replicas {
				emit(float64(rep.busy.Load()), rep.addr)
			}
		})
	reg.CounterVecFunc("soproc_cluster_replica_probes_total",
		"/healthz probes issued per replica while in cooldown",
		replicaLabels, func(emit metrics.EmitFunc) {
			for _, rep := range c.replicas {
				emit(float64(rep.probes.Load()), rep.addr)
			}
		})
	reg.GaugeVecFunc("soproc_cluster_replica_down",
		"1 while the replica is in failure cooldown",
		replicaLabels, func(emit metrics.EmitFunc) {
			now := c.clock.Now()
			for _, rep := range c.replicas {
				v := 0.0
				if rep.down(now) {
					v = 1
				}
				emit(v, rep.addr)
			}
		})
}
