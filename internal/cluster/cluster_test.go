package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"scaleout/internal/exp"
	"scaleout/internal/figures"
	"scaleout/internal/noc"
	"scaleout/internal/serve"
	"scaleout/internal/sim"
	"scaleout/internal/tech"
	"scaleout/internal/vclock"
	"scaleout/internal/workload"
)

// testReplica is one in-process soprocd: a serve handler on its own
// engine, optionally wrapped for fault injection.
type testReplica struct {
	srv *httptest.Server
	eng *exp.Engine
}

func (r *testReplica) addr() string { return r.srv.URL }

func (r *testReplica) statsz(t *testing.T) serve.StatsResponse {
	t.Helper()
	resp, err := http.Get(r.srv.URL + "/statsz")
	if err != nil {
		t.Fatalf("statsz: %v", err)
	}
	defer resp.Body.Close()
	var st serve.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("statsz decode: %v", err)
	}
	return st
}

func startReplica(t *testing.T, wrap func(http.Handler) http.Handler) *testReplica {
	t.Helper()
	eng := exp.New(2)
	h := http.Handler(serve.New(eng))
	if wrap != nil {
		h = wrap(h)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return &testReplica{srv: srv, eng: eng}
}

func startCluster(t *testing.T, n int, opts ...Option) ([]*testReplica, *Coordinator, *exp.Engine) {
	t.Helper()
	reps := make([]*testReplica, n)
	addrs := make([]string, n)
	for i := range reps {
		reps[i] = startReplica(t, nil)
		addrs[i] = reps[i].addr()
	}
	coord, err := New(addrs, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	eng := exp.New(0)
	eng.SetRoute(coord.Route)
	return reps, coord, eng
}

func testConfigs(n int) []sim.Config {
	w, _ := workload.ByName(workload.Names()[0])
	cfgs := make([]sim.Config, n)
	for i := range cfgs {
		cfgs[i] = sim.Config{
			Workload: w, CoreType: tech.OoO, Cores: 4 + 4*(i%4), LLCMB: 2 + float64(i%3),
			WarmupCycles: 500, MeasureCycles: 1000, Seed: uint64(1 + i/12),
		}
	}
	return cfgs
}

// TestClusterSweepByteIdentical: a sweep routed across three replicas
// returns exactly what local computation returns, every point lands on
// a replica, and each distinct configuration is computed exactly once
// cluster-wide (the sharded memo does not duplicate work).
func TestClusterSweepByteIdentical(t *testing.T) {
	reps, coord, eng := startCluster(t, 3)
	cfgs := testConfigs(24)

	ctx := exp.WithEngine(context.Background(), eng)
	got, err := exp.Sims(ctx, cfgs)
	if err != nil {
		t.Fatalf("Sims: %v", err)
	}
	for i, cfg := range cfgs {
		want, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("local Run: %v", err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("point %d: cluster %+v != local %+v", i, got[i], want)
		}
	}

	distinct := make(map[string]bool)
	for _, c := range cfgs {
		distinct[c.Key()] = true
	}
	st := coord.Stats()
	if st.Routed != int64(len(distinct)) || st.Unroutable != 0 || st.LocalFallbacks != 0 {
		t.Fatalf("stats = %+v, want %d routed and no fallbacks", st, len(distinct))
	}
	if est := eng.Stats(); est.Remote != int64(len(distinct)) || est.Misses != 0 {
		t.Fatalf("engine stats = %+v, want all %d points remote", est, len(distinct))
	}
	var replicaMisses int64
	var spread int
	for _, rep := range reps {
		m := rep.statsz(t).Memo.Misses
		replicaMisses += m
		if m > 0 {
			spread++
		}
	}
	if replicaMisses != int64(len(distinct)) {
		t.Fatalf("replicas computed %d points, want exactly %d (no duplication)", replicaMisses, len(distinct))
	}
	if spread < 2 {
		t.Fatalf("memo spread across %d replicas, want >= 2", spread)
	}
}

// TestClusterStructuralSweep routes structural points too.
func TestClusterStructuralSweep(t *testing.T) {
	_, coord, eng := startCluster(t, 2)
	w, _ := workload.ByName(workload.Names()[1])
	cfgs := []sim.StructuralConfig{
		{Workload: w, CoreType: tech.OoO, Cores: 2, LLCMB: 2, WarmupCycles: 2000, MeasureCycles: 1000},
		{Workload: w, CoreType: tech.OoO, Cores: 4, LLCMB: 2, WarmupCycles: 2000, MeasureCycles: 1000},
	}
	ctx := exp.WithEngine(context.Background(), eng)
	got, err := exp.Structurals(ctx, cfgs)
	if err != nil {
		t.Fatalf("Structurals: %v", err)
	}
	for i, cfg := range cfgs {
		want, err := sim.RunStructural(cfg)
		if err != nil {
			t.Fatalf("local RunStructural: %v", err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("point %d: cluster %+v != local %+v", i, got[i], want)
		}
	}
	if st := coord.Stats(); st.Routed != 2 {
		t.Fatalf("stats = %+v, want 2 routed", st)
	}
}

// TestClusterFigureByteIdentical: a full figure rendered through the
// cluster is byte-identical to the single-node rendering.
func TestClusterFigureByteIdentical(t *testing.T) {
	_, coord, eng := startCluster(t, 3)

	ctx := exp.WithEngine(context.Background(), eng)
	clustered, err := figures.RunContext(ctx, "fig2.1")
	if err != nil {
		t.Fatalf("clustered run: %v", err)
	}
	local, err := figures.RunContext(exp.WithEngine(context.Background(), exp.New(0)), "fig2.1")
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	if clustered.String() != local.String() {
		t.Fatalf("fig2.1 differs:\ncluster:\n%s\nlocal:\n%s", clustered.String(), local.String())
	}
	if st := coord.Stats(); st.Routed == 0 {
		t.Fatal("figure run routed nothing")
	}
}

// TestClusterFailoverMidSweep kills one replica partway through a sweep
// and asserts the re-hashed retries return byte-identical results while
// the stats show its shard redistributed to the survivors.
func TestClusterFailoverMidSweep(t *testing.T) {
	var killed atomic.Bool
	var victimServed atomic.Int64
	victim := startReplica(t, func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/sweep" {
				if killed.Load() {
					http.Error(w, "replica killed", http.StatusServiceUnavailable)
					return
				}
				if victimServed.Add(1) >= 2 {
					killed.Store(true) // die after this response
				}
			}
			h.ServeHTTP(w, r)
		})
	})
	survivors := []*testReplica{startReplica(t, nil), startReplica(t, nil)}
	addrs := []string{victim.addr(), survivors[0].addr(), survivors[1].addr()}

	// One point per POST so the kill lands mid-sweep, between batches;
	// a small retry budget so the test exercises the backoff path
	// without waiting out the default schedule.
	coord, err := New(addrs, WithMaxBatch(1), WithBatchWindow(0),
		WithRetries(1), WithBackoff(time.Millisecond, 4*time.Millisecond))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	eng := exp.New(2) // serial enough that posts interleave with the kill
	eng.SetRoute(coord.Route)

	cfgs := testConfigs(24)
	ctx := exp.WithEngine(context.Background(), eng)
	got, err := exp.Sims(ctx, cfgs)
	if err != nil {
		t.Fatalf("Sims: %v", err)
	}
	for i, cfg := range cfgs {
		want, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("local Run: %v", err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("point %d differs after failover", i)
		}
	}

	st := coord.Stats()
	if st.LocalFallbacks != 0 {
		t.Fatalf("stats = %+v: failover should re-hash, not fall back locally", st)
	}
	if st.Failovers == 0 {
		t.Fatalf("stats = %+v: expected re-hashed retries after the kill", st)
	}
	if st.Retries == 0 {
		t.Fatalf("stats = %+v: the killed replica should have been retried before failover", st)
	}
	var victimStats, survivorSent PeerStats
	for _, p := range st.Peers {
		if p.Addr == victim.addr() {
			victimStats = p
		} else {
			survivorSent.Sent += p.Sent
		}
	}
	if victimStats.Failures == 0 || !victimStats.Down {
		t.Fatalf("victim peer stats = %+v, want failures and down", victimStats)
	}
	if survivorSent.Sent+victimStats.Sent != st.Routed {
		t.Fatalf("sent %d+%d != routed %d", survivorSent.Sent, victimStats.Sent, st.Routed)
	}
	// /statsz shows the redistribution: the survivors computed every
	// point the dead replica did not manage to answer.
	var survivorMisses int64
	for _, rep := range survivors {
		survivorMisses += rep.statsz(t).Memo.Misses
	}
	distinct := make(map[string]bool)
	for _, c := range cfgs {
		distinct[c.Key()] = true
	}
	if want := int64(len(distinct)) - victimStats.Sent; survivorMisses != want {
		t.Fatalf("survivors computed %d points, want %d (= %d distinct - %d answered by victim)",
			survivorMisses, want, len(distinct), victimStats.Sent)
	}
}

// TestRendezvousRedistribution: removing a replica re-homes only the
// keys it owned — every other key keeps its (warm) owner.
func TestRendezvousRedistribution(t *testing.T) {
	full, err := New([]string{"a:1", "b:1", "c:1"})
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := New([]string{"a:1", "c:1"})
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.rank(key)[0].base
		after := reduced.rank(key)[0].base
		if before == "http://b:1" {
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %q moved %s -> %s though its owner survived", key, before, after)
		}
	}
	if moved == 0 || moved == 200 {
		t.Fatalf("b owned %d/200 keys; the hash is not spreading", moved)
	}
}

// TestClusterWireDeltaRoutes: the configurations the legacy symbolic
// wire form silently computed on the coordinator — WireDelta meshes,
// express-linked NOC-Out, perturbed workloads — now route to replicas
// like any other point, byte-identically.
func TestClusterWireDeltaRoutes(t *testing.T) {
	reps, coord, eng := startCluster(t, 2)
	w, _ := workload.ByName(workload.Names()[0])
	net := noc.New(noc.Mesh, 8)
	net.WireDelta = -0.25 * net.OneWayLatency() // the ch4 3D-stacked variant
	nocOut := noc.New(noc.NOCOut, 8)
	nocOut.Concentration = 2
	nocOut.ExpressLinks = true
	perturbed := w
	perturbed.APKI *= 1.5 // not a suite entry
	cfgs := []sim.Config{
		{Workload: w, CoreType: tech.OoO, Cores: 8, LLCMB: 2, Net: net,
			WarmupCycles: 500, MeasureCycles: 1000},
		{Workload: w, CoreType: tech.OoO, Cores: 8, LLCMB: 2, Net: nocOut,
			WarmupCycles: 500, MeasureCycles: 1000},
		{Workload: perturbed, CoreType: tech.OoO, Cores: 8, LLCMB: 2,
			WarmupCycles: 500, MeasureCycles: 1000},
	}

	ctx := exp.WithEngine(context.Background(), eng)
	got, err := exp.Sims(ctx, cfgs)
	if err != nil {
		t.Fatalf("Sims: %v", err)
	}
	for i, cfg := range cfgs {
		want, err := sim.Run(cfg)
		if err != nil || !reflect.DeepEqual(got[i], want) {
			t.Fatalf("point %d: routed result differs: %v", i, err)
		}
	}
	if st := coord.Stats(); st.Unroutable != 0 || st.Routed != int64(len(cfgs)) {
		t.Fatalf("stats = %+v, want %d routed and 0 unroutable", st, len(cfgs))
	}
	var replicaMisses int64
	for _, rep := range reps {
		replicaMisses += rep.statsz(t).Memo.Misses
	}
	if replicaMisses != int64(len(cfgs)) {
		t.Fatalf("replicas computed %d points, want %d", replicaMisses, len(cfgs))
	}
	if est := eng.Stats(); est.Misses != 0 {
		t.Fatalf("engine stats = %+v, want nothing computed locally", est)
	}
}

// TestClusterUnroutableFallsBack: a point whose payload has no wire
// form — an invalid configuration's Unroutable marker, or a foreign
// payload type — is computed locally, with identical accounting, and
// never reaches a replica.
func TestClusterUnroutableFallsBack(t *testing.T) {
	reps, coord, _ := startCluster(t, 2)
	w, _ := workload.ByName(workload.Names()[0])
	invalid := sim.Config{Workload: w, CoreType: tech.OoO, Cores: 0, LLCMB: 2}
	if _, ok := invalid.WirePayload().(sim.Unroutable); !ok {
		t.Fatalf("WirePayload of an invalid config = %T, want sim.Unroutable", invalid.WirePayload())
	}
	if _, handled, err := coord.Route(context.Background(), invalid.Key(), invalid.WirePayload()); handled || err != nil {
		t.Fatalf("Route(unroutable) = handled %v, err %v; want declined", handled, err)
	}
	if _, handled, err := coord.Route(context.Background(), "k", "not a wire payload"); handled || err != nil {
		t.Fatalf("Route(foreign payload) = handled %v, err %v; want declined", handled, err)
	}
	if st := coord.Stats(); st.Unroutable != 2 || st.Routed != 0 || st.LocalFallbacks != 0 {
		t.Fatalf("stats = %+v, want 2 unroutable, 0 routed, 0 fallbacks", st)
	}
	for _, rep := range reps {
		if m := rep.statsz(t).Memo.Misses; m != 0 {
			t.Fatalf("replica computed %d points for an unroutable payload", m)
		}
	}
}

// TestClusterFormerlyUnroutableFiguresByteIdentical: ch4 (whose
// scale-limited pods carry WireDelta interconnects) and the extensions
// structural study — the generators the legacy wire form could never
// shard — render byte-identically through a 3-replica cluster with
// zero representability fallbacks.
func TestClusterFormerlyUnroutableFiguresByteIdentical(t *testing.T) {
	_, coord, eng := startCluster(t, 3)
	for _, id := range []string{"fig4.3", "ext.structural"} {
		clustered, err := figures.RunContext(exp.WithEngine(context.Background(), eng), id)
		if err != nil {
			t.Fatalf("%s clustered run: %v", id, err)
		}
		local, err := figures.RunContext(exp.WithEngine(context.Background(), exp.New(0)), id)
		if err != nil {
			t.Fatalf("%s local run: %v", id, err)
		}
		if clustered.String() != local.String() {
			t.Fatalf("%s differs:\ncluster:\n%s\nlocal:\n%s", id, clustered.String(), local.String())
		}
	}
	st := coord.Stats()
	if st.Unroutable != 0 || st.LocalFallbacks != 0 {
		t.Fatalf("stats = %+v, want zero unroutable and zero fallbacks", st)
	}
	if st.Routed == 0 {
		t.Fatal("formerly-unroutable figures routed nothing")
	}
	if est := eng.Stats(); est.Remote != st.Routed {
		t.Fatalf("engine remote %d != routed %d: some points computed locally", est.Remote, st.Routed)
	}
}

// TestWireVersionRejectIsPermanent: a replica that does not speak this
// coordinator's wire version answers with the structured 400; the
// coordinator must treat it as permanent — no same-replica retry, no
// markDown — fail over, and still produce the correct result from a
// compatible replica (or locally when none exists).
func TestWireVersionRejectIsPermanent(t *testing.T) {
	var rejects atomic.Int64
	rejecting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/sweep" {
			rejects.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			fmt.Fprintf(w, `{"error": "point 0: unsupported wire_version", "wire_version": %d, "supported_wire_version": 99}`, sim.WireVersion)
			return
		}
		http.NotFound(w, r)
	}))
	t.Cleanup(rejecting.Close)
	compatible := startReplica(t, nil)

	coord, err := New([]string{rejecting.URL, compatible.addr()},
		WithBatchWindow(0), WithRetries(3))
	if err != nil {
		t.Fatal(err)
	}
	// Pick a config the rejecting replica owns, so the reject path runs
	// before failover reaches the compatible replica.
	var cfg sim.Config
	for _, c := range testConfigs(24) {
		if coord.rank(c.Key())[0].base == rejecting.URL {
			cfg = c
			break
		}
	}
	if cfg.Cores == 0 {
		t.Fatal("no test config ranks the rejecting replica first")
	}

	val, handled, err := coord.Route(context.Background(), cfg.Key(), cfg.WirePayload())
	if err != nil || !handled {
		t.Fatalf("Route = handled %v, err %v; want failover to the compatible replica", handled, err)
	}
	want, err := sim.Run(cfg)
	if err != nil || !reflect.DeepEqual(val, want) {
		t.Fatalf("failover result differs: %v", err)
	}
	st := coord.Stats()
	if rejects.Load() != 1 || st.Retries != 0 {
		t.Fatalf("rejecting replica saw %d posts (%d retries), want exactly 1 and none: rejection must not be retried", rejects.Load(), st.Retries)
	}
	if st.Rejects != 1 || st.Failovers != 1 || st.LocalFallbacks != 0 {
		t.Fatalf("stats = %+v, want 1 reject, 1 failover, 0 fallbacks", st)
	}
	for _, p := range st.Peers {
		if p.Addr == rejecting.URL && p.Down {
			t.Fatal("incompatible replica marked down; rejection is not unhealth")
		}
	}
}

// TestClusterBatching: points released together coalesce into per-replica
// POSTs instead of one request per point.
func TestClusterBatching(t *testing.T) {
	_, coord, eng := startCluster(t, 3, WithBatchWindow(100*time.Millisecond))
	cfgs := testConfigs(24)
	ctx := exp.WithEngine(context.Background(), eng)
	if _, err := exp.Sims(ctx, cfgs); err != nil {
		t.Fatalf("Sims: %v", err)
	}
	st := coord.Stats()
	if st.Posts > 3 {
		t.Fatalf("%d points took %d posts, want at most one per replica", st.Routed, st.Posts)
	}
}

// TestForwardedRequestsNeverLoop: two daemons configured as each other's
// peers must degenerate to one forwarding hop — the forwarded request
// computes locally — not an infinite bounce.
func TestForwardedRequestsNeverLoop(t *testing.T) {
	// Build a and b with mutual routes. Addresses must exist before
	// coordinators do, so wire the routes up after both are listening.
	a := startReplica(t, nil)
	b := startReplica(t, nil)
	coordA, err := New([]string{b.addr()})
	if err != nil {
		t.Fatal(err)
	}
	coordB, err := New([]string{a.addr()})
	if err != nil {
		t.Fatal(err)
	}
	a.eng.SetRoute(coordA.Route)
	b.eng.SetRoute(coordB.Route)

	// A client sweep against a: a routes every point to b (its only
	// peer); b must compute them itself rather than bouncing back to a.
	w, _ := workload.ByName(workload.Names()[0])
	cfg := sim.Config{Workload: w, CoreType: tech.OoO, Cores: 4, LLCMB: 2,
		WarmupCycles: 500, MeasureCycles: 1000}
	body, _ := json.Marshal(serve.SweepRequest{Points: mustWire(t, cfg)})
	resp, err := http.Post(a.srv.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %s", resp.Status)
	}
	var sr serve.SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	want, err := sim.Run(cfg)
	if err != nil || sr.Results[0].Sim == nil || !reflect.DeepEqual(*sr.Results[0].Sim, want) {
		t.Fatalf("mutual-peer sweep result differs: %v", err)
	}
	if m := b.statsz(t).Memo.Misses; m != 1 {
		t.Fatalf("b computed %d points, want 1 (forwarded request computes locally)", m)
	}
	if st := coordB.Stats(); st.Routed != 0 {
		t.Fatalf("b re-routed a forwarded request: %+v", st)
	}
}

// TestAbandonedBatchDetached: a batch whose every caller disconnected
// before the flush must not linger in the pending map — a later caller
// inside the same window must open a fresh batch and succeed, without
// the healthy replica being blamed for the dead batch's cancellation.
// The batch window runs on an injected fake clock, so the test drives
// both windows with Advance instead of real sleeps.
func TestAbandonedBatchDetached(t *testing.T) {
	rep := startReplica(t, nil)
	clk := vclock.NewFake(time.Unix(0, 0))
	coord, err := New([]string{rep.addr()}, WithBatchWindow(100*time.Millisecond), WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	wire := mustWire(t, testConfigs(1)[0])[0]

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := coord.enqueue(cancelled, coord.replicas[0], wire); err == nil {
		t.Fatal("enqueue on a cancelled context succeeded")
	}
	// Still inside the abandoned batch's (virtual) window: must not
	// join it. The fresh enqueue parks until its own window timer
	// fires, so drive the clock once both timers are armed — the dead
	// batch's flush must be a no-op, the live one must POST.
	type out struct {
		res serve.SweepResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := coord.enqueue(context.Background(), coord.replicas[0], wire)
		done <- out{res, err}
	}()
	clk.BlockUntil(2)
	clk.Advance(100 * time.Millisecond)
	got := <-done
	if got.err != nil {
		t.Fatalf("enqueue after abandoned batch: %v", got.err)
	}
	if got.res.Sim == nil {
		t.Fatal("no result from fresh batch")
	}
	if f := coord.replicas[0].failures.Load(); f != 0 {
		t.Fatalf("healthy replica charged with %d failures from an abandoned batch", f)
	}
	if coord.replicas[0].down(clk.Now()) {
		t.Fatal("healthy replica marked down by an abandoned batch")
	}
}

// TestRouteAttemptsEachReplicaOnce: with a zero retry budget and every
// replica unreachable, a point tries each exactly once — a replica
// that failed during this very call is not immediately re-attempted by
// the cooldown pass.
func TestRouteAttemptsEachReplicaOnce(t *testing.T) {
	// Ports from the reserved loopback range with nothing listening:
	// connection refused, instantly.
	coord, err := New([]string{"127.0.0.1:1", "127.0.0.1:2"}, WithBatchWindow(0), WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfigs(1)[0]
	_, handled, rerr := coord.Route(context.Background(), cfg.Key(), cfg.WirePayload())
	if handled || rerr != nil {
		t.Fatalf("Route = handled %v, err %v; want declined", handled, rerr)
	}
	st := coord.Stats()
	if st.LocalFallbacks != 1 {
		t.Fatalf("stats = %+v, want 1 local fallback", st)
	}
	for _, p := range st.Peers {
		if p.Failures != 1 {
			t.Fatalf("peer %s attempted %d times, want exactly 1", p.Addr, p.Failures)
		}
	}
}

func mustWire(t *testing.T, cfg sim.Config) []serve.SweepPoint {
	t.Helper()
	wc, err := cfg.Wire()
	if err != nil {
		t.Fatalf("Wire: %v", err)
	}
	p, err := serve.WirePoint(wc)
	if err != nil {
		t.Fatalf("WirePoint: %v", err)
	}
	return []serve.SweepPoint{p}
}
