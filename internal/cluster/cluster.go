// Package cluster federates the sweep engine across soprocd replicas,
// the way the paper's pod architecture scales by replicating
// self-contained pods behind a thin interconnect rather than growing
// one monolith.
//
// A Coordinator is an engine Route (exp.Route): installed on an engine
// with SetRoute, it intercepts each memo miss whose point carries a
// wire-form payload (sim.WireConfig — the versioned, complete encoding
// every engine point attaches via sim's WirePayload), wraps it in a
// /v1/sweep complete-form point (serve.WirePoint), and ships it to the
// replica that owns the point's canonical fingerprint. Because the wire
// form carries the full interconnect and workload specification, every
// point a figure can construct is routable — there is no symbolic
// subset that silently computes on the coordinator. A point can still
// be unroutable (an invalid configuration, or a payload type with no
// wire form): that is counted, logged on first occurrence, and
// declined to local compute, so representability regressions are
// visible in /statsz rather than silent.
// Ownership is rendezvous (highest-random-weight) hashing over the
// fingerprint: every coordinator agrees on the owner without shared
// state, each replica's memo accumulates a disjoint shard of the design
// space — so the global hit rate survives coordinator restarts — and
// when a replica dies only its shard re-hashes, each key to its
// next-ranked owner, while every other key keeps its warm replica.
//
// Points bound for the same replica are micro-batched into one
// /v1/sweep POST (the engine releases a whole sweep's misses at once,
// so a short batch window collects them), and concurrent identical
// points are deduplicated by the engine's single-flight memo before
// they reach the coordinator.
//
// Failure handling is layered for the degraded regime, not just the
// dead one. A transient failure (connection error, 5xx, torn response,
// post timeout) is retried on the same replica with jittered
// exponential backoff, a bounded number of times (WithRetries); only
// when the budget is exhausted is the replica marked down for a
// cooldown and the point failed over to its next-ranked owner. A 429
// from a replica's admission controller is different: the replica is
// shedding load, not dying, so the coordinator honors its Retry-After
// hint (clamped between the backoff base and the cooldown) and never
// marks it down. A definitive 4xx other than 429 — most notably the
// structured wire_version 400 from a replica that does not speak this
// coordinator's wire encoding — is permanent for that replica: the same
// bytes can never succeed there, so the point moves straight to the
// next-ranked owner with no retry and no markDown (the replica is
// healthy, just incompatible). A replica in cooldown is probed actively
// (GET /healthz every WithProbeInterval) so it returns to rotation as
// soon as it recovers rather than when the cooldown clock says so.
// Every post carries a per-request timeout (WithPostTimeout) so one
// hung replica cannot pin a batch for the old flat ten minutes. If
// every replica is unreachable the Route declines and the engine
// computes locally — sharding changes only where a point runs, never
// its result, so cluster output is byte-identical to single-node
// output, under fault injection included (see internal/chaos).
//
// All time-dependent behavior — cooldowns, backoff, batch windows,
// probe scheduling — runs on an injectable clock (WithClock,
// internal/vclock), so the failure logic is deterministic in tests.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"scaleout/internal/admit"
	"scaleout/internal/exp/engine"
	"scaleout/internal/serve"
	"scaleout/internal/sim"
	"scaleout/internal/vclock"
)

// Coordinator shards routable sweep points across soprocd replicas.
// Construct with New; install on an engine with eng.SetRoute(c.Route).
// A Coordinator is safe for concurrent use.
type Coordinator struct {
	replicas      []*replica
	client        *http.Client
	clock         vclock.Clock
	window        time.Duration
	maxBatch      int
	cooldown      time.Duration
	retries       int
	backoffBase   time.Duration
	backoffCap    time.Duration
	postTimeout   time.Duration
	probeInterval time.Duration
	probeTimeout  time.Duration

	rngMu sync.Mutex
	rng   *rand.Rand // backoff jitter; seeded for deterministic tests

	mu      sync.Mutex
	batches map[*replica]*batch

	routed     atomic.Int64 // points answered by a replica
	failovers  atomic.Int64 // points retried past their first-choice owner
	fallbacks  atomic.Int64 // points declined because every replica failed
	unroutable atomic.Int64 // points not representable on the wire
	rejects    atomic.Int64 // permanent replica rejections (4xx other than 429)
	posts      atomic.Int64 // /v1/sweep requests issued
	retried    atomic.Int64 // same-replica re-attempts after transient failures
	busy       atomic.Int64 // 429 responses honored (replica shedding load)

	// Silent degradation is the failure mode this PR class exists to
	// kill: the first unroutable point, permanent rejection, and local
	// fallback of a coordinator's lifetime are each logged once, so a
	// run that quietly stopped sharding says why.
	logUnroutable sync.Once
	logReject     sync.Once
	logFallback   sync.Once
}

// Option configures a Coordinator at construction.
type Option func(*Coordinator)

// WithBatchWindow sets how long the first point bound for a replica
// waits for companions before its batch is POSTed (default 2ms; <= 0
// flushes every point immediately in its own request).
func WithBatchWindow(d time.Duration) Option {
	return func(c *Coordinator) { c.window = d }
}

// WithMaxBatch caps the points per /v1/sweep POST (default
// serve.MaxSweepPoints, the most a replica accepts).
func WithMaxBatch(n int) Option {
	return func(c *Coordinator) {
		if n > 0 {
			c.maxBatch = n
		}
	}
}

// WithCooldown sets how long a failed replica is skipped before it is
// offered work again by wall clock alone (default 3s); active health
// probing (WithProbeInterval) can end the cooldown earlier.
func WithCooldown(d time.Duration) Option {
	return func(c *Coordinator) { c.cooldown = d }
}

// WithHTTPClient replaces the HTTP client used for replica requests
// (default: a dedicated client with no global timeout — every post is
// individually bounded by WithPostTimeout instead).
func WithHTTPClient(cl *http.Client) Option {
	return func(c *Coordinator) { c.client = cl }
}

// WithRetries bounds how many times a failed post is re-attempted on
// the same replica — with jittered exponential backoff — before the
// replica is marked down and the point fails over to its next-ranked
// owner (default 2, i.e. up to 3 attempts per replica; negative is
// treated as 0).
func WithRetries(n int) Option {
	return func(c *Coordinator) {
		if n < 0 {
			n = 0
		}
		c.retries = n
	}
}

// WithBackoff sets the retry backoff's base and cap: attempt n waits a
// jittered duration in [d/2, d] where d = min(base<<n, cap) (defaults
// 25ms and 1s).
func WithBackoff(base, cap time.Duration) Option {
	return func(c *Coordinator) {
		if base > 0 {
			c.backoffBase = base
		}
		if cap > 0 {
			c.backoffCap = cap
		}
	}
}

// WithPostTimeout bounds one forwarded /v1/sweep request (default 2m;
// <= 0 leaves posts untimed). A post that times out counts as a
// transient replica failure: retried, then failed over.
func WithPostTimeout(d time.Duration) Option {
	return func(c *Coordinator) { c.postTimeout = d }
}

// WithProbeInterval sets how often a replica in cooldown is probed with
// GET /healthz so it can return to rotation before the cooldown
// expires (default 500ms; <= 0 disables probing and leaves recovery to
// the cooldown clock alone).
func WithProbeInterval(d time.Duration) Option {
	return func(c *Coordinator) { c.probeInterval = d }
}

// WithClock injects the coordinator's clock (default the system
// clock). Tests inject a vclock.Fake so cooldown expiry, backoff, and
// batch windows are driven by Advance instead of real sleeps. Post
// timeouts are context deadlines and always run on real time.
func WithClock(clk vclock.Clock) Option {
	return func(c *Coordinator) {
		if clk != nil {
			c.clock = clk
		}
	}
}

// WithJitterSeed seeds the backoff jitter (default 1), making retry
// schedules reproducible.
func WithJitterSeed(seed int64) Option {
	return func(c *Coordinator) { c.rng = rand.New(rand.NewSource(seed)) }
}

// New returns a coordinator over the given replica addresses
// ("host:port", or a full http:// base URL). It validates only shape,
// not liveness: a replica that is down when work arrives is skipped
// (cooldown) and its shard re-hashes to the next owners.
func New(peers []string, opts ...Option) (*Coordinator, error) {
	c := &Coordinator{
		client:        &http.Client{},
		clock:         vclock.System{},
		window:        2 * time.Millisecond,
		maxBatch:      serve.MaxSweepPoints,
		cooldown:      3 * time.Second,
		retries:       2,
		backoffBase:   25 * time.Millisecond,
		backoffCap:    time.Second,
		postTimeout:   2 * time.Minute,
		probeInterval: 500 * time.Millisecond,
		probeTimeout:  2 * time.Second,
		rng:           rand.New(rand.NewSource(1)),
		batches:       make(map[*replica]*batch),
	}
	for _, o := range opts {
		o(c)
	}
	seen := make(map[string]bool)
	for _, p := range peers {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		base := p
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		base = strings.TrimRight(base, "/")
		if seen[base] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
		seen[base] = true
		c.replicas = append(c.replicas, &replica{addr: p, base: base})
	}
	if len(c.replicas) == 0 {
		return nil, fmt.Errorf("cluster: no peers")
	}
	return c, nil
}

// replica is one soprocd backend and its health/traffic accounting.
type replica struct {
	addr string // as configured (-peers)
	base string // http://host:port

	downUntil atomic.Int64 // unix nanos; 0 = healthy
	probing   atomic.Bool  // a health-probe goroutine is active
	sent      atomic.Int64 // points this replica answered
	failures  atomic.Int64 // failed /v1/sweep attempts
	busy      atomic.Int64 // 429 responses (shedding, not failing)
	probes    atomic.Int64 // /healthz probes issued while in cooldown
}

func (r *replica) down(now time.Time) bool {
	return now.UnixNano() < r.downUntil.Load()
}

func (r *replica) markDown(now time.Time, cooldown time.Duration) {
	r.downUntil.Store(now.Add(cooldown).UnixNano())
}

// busyError is a replica's 429: it is shedding load, not failing, so
// the caller honors RetryAfter instead of marking the replica down.
type busyError struct {
	replica    string
	retryAfter time.Duration
}

func (e *busyError) Error() string {
	return fmt.Sprintf("cluster: %s shedding load (retry after %s)", e.replica, e.retryAfter)
}

// rejectError is a replica's definitive 4xx other than 429: the request
// itself was refused — most notably a wire_version this replica does
// not speak — so retrying the same bytes cannot succeed, and the
// replica is compatible-unhealthy rather than down. The coordinator
// moves to the next candidate with no retry and no markDown.
type rejectError struct {
	replica     string
	status      string
	msg         string
	wireVersion int // non-zero when the replica reported a wire_version mismatch
}

func (e *rejectError) Error() string {
	if e.wireVersion != 0 {
		return fmt.Sprintf("cluster: %s rejected wire_version %d: %s", e.replica, e.wireVersion, e.msg)
	}
	return fmt.Sprintf("cluster: %s rejected request: %s: %s", e.replica, e.status, e.msg)
}

// declineUnroutable counts an unroutable point, logs the first
// occurrence of a coordinator's lifetime, and leaves the point to local
// compute.
func (c *Coordinator) declineUnroutable(key string, err error) {
	c.unroutable.Add(1)
	c.logUnroutable.Do(func() {
		log.Printf("cluster: unroutable point (computing locally; first occurrence, key %s): %v", key, err)
	})
}

// Route implements exp.Route: it ships a wire-form payload
// (sim.WireConfig) to the replica owning key — retrying transient
// failures on the same replica under the bounded backoff budget,
// honoring 429 Retry-After hints, treating definitive 4xx rejections
// (wire-version mismatches included) as permanent per replica, and
// failing over in rendezvous order — and declines (handled=false)
// payloads that carry no wire form (sim.Unroutable markers, foreign
// types) or that no replica would take; the engine then computes them
// locally with identical results. Every decline is counted, and the
// first of each kind per run is logged.
func (c *Coordinator) Route(ctx context.Context, key string, payload any) (any, bool, error) {
	var wc sim.WireConfig
	switch p := payload.(type) {
	case sim.WireConfig:
		wc = p
	case sim.Unroutable:
		c.declineUnroutable(key, p.Err)
		return nil, false, nil
	default:
		c.declineUnroutable(key, fmt.Errorf("payload type %T has no wire form", payload))
		return nil, false, nil
	}
	wire, err := serve.WirePoint(wc)
	if err != nil {
		c.declineUnroutable(key, err)
		return nil, false, nil
	}
	kind := wc.Kind

	// Candidate order: healthy replicas in rendezvous rank, then — as a
	// last resort, if the whole cluster looks down, an attempt is still
	// cheaper than silently degrading to local-only — the ones already
	// in cooldown when this point arrived. Down-ness is snapshotted
	// here so a replica that fails during this very call is never
	// immediately re-attempted by the same point.
	ranked := c.rank(key)
	now := c.clock.Now()
	candidates := make([]*replica, 0, len(ranked))
	for _, rep := range ranked {
		if !rep.down(now) {
			candidates = append(candidates, rep)
		}
	}
	for _, rep := range ranked {
		if rep.down(now) {
			candidates = append(candidates, rep)
		}
	}
	pointRetries := 0 // same-replica re-attempts for this point, all replicas
	for attempt, rep := range candidates {
		for try := 0; ; try++ {
			res, err := c.enqueue(ctx, rep, wire)
			if err == nil {
				val, derr := decodeResult(kind, res)
				if derr == nil {
					if attempt > 0 {
						c.failovers.Add(1)
					}
					c.routed.Add(1)
					// An observed request (engine decision hook installed)
					// carries a RouteInfo slot: record where the point
					// actually ran for its trace record.
					if ri := engine.RouteInfoFrom(ctx); ri != nil {
						ri.Replica = rep.addr
						ri.Rank = rankOf(ranked, rep)
						ri.Retries = pointRetries
					}
					return val, true, nil
				}
				err = derr
			}
			if ctx.Err() != nil {
				// The caller went away; this is a cancellation, not a
				// replica failure, and the engine withdraws the entry.
				return nil, true, ctx.Err()
			}
			var re *rejectError
			if errors.As(err, &re) {
				// The replica refused the request outright; the same
				// bytes cannot succeed there, so spill straight to the
				// next-ranked owner — no retry, and no markDown, because
				// an incompatible replica is not a dead one.
				c.rejects.Add(1)
				c.logReject.Do(func() {
					log.Printf("cluster: permanent rejection (first occurrence, key %s): %v", key, re)
				})
				break
			}
			var be *busyError
			if errors.As(err, &be) {
				// The replica shed the batch: healthy but saturated.
				// Honor its hint (within the backoff/cooldown clamp) and
				// retry it, never marking it down; once the budget is
				// spent, spill to the next-ranked owner.
				rep.busy.Add(1)
				c.busy.Add(1)
				if try >= c.retries {
					break
				}
				pointRetries++
				if serr := vclock.Sleep(ctx, c.clock, c.clampHint(be.retryAfter)); serr != nil {
					return nil, true, serr
				}
				continue
			}
			rep.failures.Add(1)
			if try >= c.retries {
				c.markDown(rep)
				break
			}
			c.retried.Add(1)
			pointRetries++
			if serr := vclock.Sleep(ctx, c.clock, c.backoff(try)); serr != nil {
				return nil, true, serr
			}
		}
	}
	c.fallbacks.Add(1)
	c.logFallback.Do(func() {
		log.Printf("cluster: every replica failed or rejected key %s; computing locally (first occurrence)", key)
	})
	return nil, false, nil
}

// backoff returns the jittered wait before retry number try (0-based):
// uniform in [d/2, d] where d = min(base<<try, cap).
func (c *Coordinator) backoff(try int) time.Duration {
	d := c.backoffBase
	for i := 0; i < try && d < c.backoffCap; i++ {
		d *= 2
	}
	if d > c.backoffCap {
		d = c.backoffCap
	}
	if d <= 0 {
		return 0
	}
	c.rngMu.Lock()
	j := time.Duration(c.rng.Int63n(int64(d/2) + 1))
	c.rngMu.Unlock()
	return d/2 + j
}

// clampHint bounds a replica's Retry-After hint: at least the backoff
// base (a zero or missing hint must not busy-spin), at most the
// cooldown (a shedding replica should not stall a point longer than a
// dead one would).
func (c *Coordinator) clampHint(d time.Duration) time.Duration {
	if d < c.backoffBase {
		d = c.backoffBase
	}
	if c.cooldown > 0 && d > c.cooldown {
		d = c.cooldown
	}
	return d
}

// markDown puts rep in failure cooldown and starts its health prober,
// which ends the cooldown early if the replica answers /healthz.
func (c *Coordinator) markDown(rep *replica) {
	rep.markDown(c.clock.Now(), c.cooldown)
	c.ensureProbe(rep)
}

// ensureProbe starts rep's probe loop unless one is already running.
func (c *Coordinator) ensureProbe(rep *replica) {
	if c.probeInterval > 0 && rep.probing.CompareAndSwap(false, true) {
		go c.probeLoop(rep)
	}
}

// probeLoop probes rep's /healthz every probeInterval while it is in
// cooldown, clearing the cooldown on the first success. It exits when
// the replica recovers or the cooldown lapses on its own; if the
// replica was re-marked down in the instant the loop was exiting, a
// fresh loop is started so a down replica is never left unprobed.
func (c *Coordinator) probeLoop(rep *replica) {
	defer func() {
		rep.probing.Store(false)
		if rep.down(c.clock.Now()) {
			c.ensureProbe(rep)
		}
	}()
	for {
		<-c.clock.After(c.probeInterval)
		if !rep.down(c.clock.Now()) {
			return
		}
		rep.probes.Add(1)
		if c.probeHealthz(rep) {
			rep.downUntil.Store(0)
			return
		}
	}
}

// probeHealthz reports whether rep currently answers its liveness
// probe.
func (c *Coordinator) probeHealthz(rep *replica) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 64))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// rank orders the replicas by rendezvous weight for key, highest first:
// the first entry owns the key, the rest are its failover order. Every
// coordinator computes the same ranking from the peer list alone, and
// removing one replica re-homes only the keys it owned.
func (c *Coordinator) rank(key string) []*replica {
	type scored struct {
		rep   *replica
		score uint64
	}
	sc := make([]scored, len(c.replicas))
	for i, rep := range c.replicas {
		h := fnv.New64a()
		io.WriteString(h, rep.base)
		h.Write([]byte{0})
		io.WriteString(h, key)
		sc[i] = scored{rep, h.Sum64()}
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].score != sc[j].score {
			return sc[i].score > sc[j].score
		}
		return sc[i].rep.base < sc[j].rep.base
	})
	out := make([]*replica, len(sc))
	for i, s := range sc {
		out[i] = s.rep
	}
	return out
}

// rankOf returns rep's position in the ranked rendezvous order
// (0 = the key's home replica).
func rankOf(ranked []*replica, rep *replica) int {
	for i, r := range ranked {
		if r == rep {
			return i
		}
	}
	return -1
}

// decodeResult unwraps one wire result into the value a local compute
// of the same point would have returned.
func decodeResult(kind string, res serve.SweepResult) (any, error) {
	switch {
	case kind == "sim" && res.Sim != nil:
		return *res.Sim, nil
	case kind == "structural" && res.Structural != nil:
		return *res.Structural, nil
	}
	return nil, fmt.Errorf("cluster: replica returned %q result for %q point", res.Kind, kind)
}

// batch is one pending /v1/sweep POST to a replica: the points that
// accumulated during the batch window and the rendezvous of their
// waiting callers. Results land in results[i] for points[i]; err, if
// set, applies to every point (and each caller fails over
// independently).
type batch struct {
	ctx     context.Context // cancelled when every caller abandons
	cancel  context.CancelFunc
	points  []serve.SweepPoint
	live    int  // callers still waiting; 0 cancels the POST
	flushed bool // exactly one flusher POSTs (window timer vs full)
	done    chan struct{}
	results []serve.SweepResult
	err     error
}

// enqueue joins (or opens) the pending batch for rep and waits for its
// slot of the response. The POST itself runs on a context detached from
// any single caller: like an engine memo entry, a batch in flight
// serves every caller that joined it, and is cancelled only when all of
// them have gone away.
func (c *Coordinator) enqueue(ctx context.Context, rep *replica, p serve.SweepPoint) (serve.SweepResult, error) {
	c.mu.Lock()
	b := c.batches[rep]
	if b == nil {
		bctx, cancel := context.WithCancel(context.Background())
		b = &batch{ctx: bctx, cancel: cancel, done: make(chan struct{})}
		c.batches[rep] = b
		if c.window > 0 {
			c.clock.AfterFunc(c.window, func() { c.flush(rep, b) })
		} else {
			// No batching: this point's own goroutine flushes as soon
			// as the append below is published (flush reacquires mu).
			go c.flush(rep, b)
		}
	}
	idx := len(b.points)
	b.points = append(b.points, p)
	b.live++
	full := len(b.points) >= c.maxBatch
	if full {
		// Detach immediately so later points open a fresh batch and
		// this one can never outgrow what a replica accepts.
		delete(c.batches, rep)
	}
	c.mu.Unlock()
	if full {
		go c.flush(rep, b)
	}

	select {
	case <-b.done:
		if b.err != nil {
			return serve.SweepResult{}, b.err
		}
		return b.results[idx], nil
	case <-ctx.Done():
		c.mu.Lock()
		b.live--
		abandoned := b.live == 0
		if abandoned && !b.flushed {
			// Every caller left before anything was POSTed: claim the
			// flush so the window timer does nothing, and detach the
			// batch so a later point opens a fresh one instead of
			// joining this dead batch and mistaking its cancelled
			// context for a replica failure.
			b.flushed = true
			if c.batches[rep] == b {
				delete(c.batches, rep)
			}
		}
		c.mu.Unlock()
		if abandoned {
			b.cancel()
		}
		return serve.SweepResult{}, ctx.Err()
	}
}

// flush POSTs b once: it detaches b so later points open a fresh batch,
// snapshots the membership, and distributes the response (or error) to
// every waiter. The window timer and the batch-full path may both call
// it; the flushed flag makes the second call a no-op.
func (c *Coordinator) flush(rep *replica, b *batch) {
	c.mu.Lock()
	if b.flushed {
		c.mu.Unlock()
		return
	}
	b.flushed = true
	if c.batches[rep] == b {
		delete(c.batches, rep)
	}
	points := b.points
	c.mu.Unlock()
	defer b.cancel()
	defer close(b.done)

	c.posts.Add(1)
	results, err := c.post(b.ctx, rep, points)
	if err != nil {
		b.err = err
		return
	}
	b.results = results
	rep.sent.Add(int64(len(points)))
}

// post issues one forwarded /v1/sweep request — bounded by the
// per-post timeout — and decodes the response. A 429 becomes a
// busyError carrying the replica's Retry-After hint.
func (c *Coordinator) post(ctx context.Context, rep *replica, points []serve.SweepPoint) ([]serve.SweepResult, error) {
	if c.postTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.postTimeout)
		defer cancel()
	}
	body, err := json.Marshal(serve.SweepRequest{Points: points})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.base+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.ForwardedHeader, "1")
	req.Header.Set(admit.ClientHeader, "coordinator")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
		return nil, &busyError{replica: rep.addr, retryAfter: parseRetryAfter(resp.Header.Get("Retry-After"))}
	}
	if resp.StatusCode >= 400 && resp.StatusCode < 500 {
		// A definitive client-error rejection: retrying the same bytes
		// cannot succeed. When the body is the structured wire-version
		// 400 (serve.WireVersionErrorResponse), surface the version so
		// the mismatch is diagnosable from the coordinator's log alone.
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		re := &rejectError{replica: rep.addr, status: resp.Status, msg: strings.TrimSpace(string(msg))}
		var body struct {
			WireVersion int `json:"wire_version"`
		}
		if json.Unmarshal(msg, &body) == nil {
			re.wireVersion = body.WireVersion
		}
		return nil, re
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("cluster: %s: %s: %s", rep.addr, resp.Status, strings.TrimSpace(string(msg)))
	}
	var sr serve.SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("cluster: %s: bad sweep response: %v", rep.addr, err)
	}
	if len(sr.Results) != len(points) {
		return nil, fmt.Errorf("cluster: %s: %d results for %d points", rep.addr, len(sr.Results), len(points))
	}
	return sr.Results, nil
}

// parseRetryAfter decodes a Retry-After header: delta-seconds or an
// HTTP date; 0 when absent or malformed (the caller clamps upward).
func parseRetryAfter(h string) time.Duration {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		return time.Until(t)
	}
	return 0
}

// Stats is a point-in-time snapshot of a coordinator's routing traffic;
// it is the /statsz "cluster" section of a -peers daemon.
type Stats struct {
	// Peers reports each replica in -peers order.
	Peers []PeerStats `json:"peers"`
	// Routed counts points answered by a replica; Failovers the subset
	// retried past their first-choice owner after a failure.
	Routed    int64 `json:"routed"`
	Failovers int64 `json:"failovers"`
	// Retries counts same-replica re-attempts after transient failures
	// (each waits a jittered exponential backoff); Busy counts 429
	// responses honored — the replica was shedding load, so its
	// Retry-After hint was waited out instead of marking it down.
	Retries int64 `json:"retries"`
	Busy    int64 `json:"busy"`
	// LocalFallbacks counts points computed locally because every
	// replica failed or rejected them; Unroutable those whose payload
	// could not be converted to the wire form at all (always computed
	// locally). With the complete wire encoding both should be zero in
	// a healthy cluster — the first occurrence of each per run is also
	// logged, and CI asserts unroutable == 0 across the figure suite.
	LocalFallbacks int64 `json:"local_fallbacks"`
	Unroutable     int64 `json:"unroutable"`
	// Rejects counts permanent per-replica rejections (a definitive
	// 4xx other than 429, e.g. a wire_version the replica does not
	// speak): no retry, no markDown, straight to the next owner.
	Rejects int64 `json:"rejects"`
	// Posts counts /v1/sweep requests issued — Routed/Posts is the
	// batching factor.
	Posts int64 `json:"posts"`
}

// PeerStats is one replica's slice of a Stats snapshot.
type PeerStats struct {
	Addr string `json:"addr"`
	// Sent counts points this replica answered; Failures the attempts
	// it failed; Busy the 429s it shed; Probes the /healthz probes
	// issued at it while in cooldown; Down whether it is currently in
	// failure cooldown.
	Sent     int64 `json:"sent"`
	Failures int64 `json:"failures"`
	Busy     int64 `json:"busy"`
	Probes   int64 `json:"probes"`
	Down     bool  `json:"down"`
}

// Stats snapshots the coordinator's routing counters.
func (c *Coordinator) Stats() Stats {
	now := c.clock.Now()
	st := Stats{
		Routed:         c.routed.Load(),
		Failovers:      c.failovers.Load(),
		Retries:        c.retried.Load(),
		Busy:           c.busy.Load(),
		LocalFallbacks: c.fallbacks.Load(),
		Unroutable:     c.unroutable.Load(),
		Rejects:        c.rejects.Load(),
		Posts:          c.posts.Load(),
	}
	for _, rep := range c.replicas {
		st.Peers = append(st.Peers, PeerStats{
			Addr:     rep.addr,
			Sent:     rep.sent.Load(),
			Failures: rep.failures.Load(),
			Busy:     rep.busy.Load(),
			Probes:   rep.probes.Load(),
			Down:     rep.down(now),
		})
	}
	return st
}
