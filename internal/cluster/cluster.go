// Package cluster federates the sweep engine across soprocd replicas,
// the way the paper's pod architecture scales by replicating
// self-contained pods behind a thin interconnect rather than growing
// one monolith.
//
// A Coordinator is an engine Route (exp.Route): installed on an engine
// with SetRoute, it intercepts each memo miss whose point carries a
// sim.Config or sim.StructuralConfig payload, converts it to the
// /v1/sweep wire form (serve.WirePointSim/WirePointStructural), and
// ships it to the replica that owns the point's canonical fingerprint.
// Ownership is rendezvous (highest-random-weight) hashing over the
// fingerprint: every coordinator agrees on the owner without shared
// state, each replica's memo accumulates a disjoint shard of the design
// space — so the global hit rate survives coordinator restarts — and
// when a replica dies only its shard re-hashes, each key to its
// next-ranked owner, while every other key keeps its warm replica.
//
// Points bound for the same replica are micro-batched into one
// /v1/sweep POST (the engine releases a whole sweep's misses at once,
// so a short batch window collects them), concurrent identical points
// are deduplicated by the engine's single-flight memo before they reach
// the coordinator, and a replica failure marks it down for a cooldown
// and retries the point on its next-ranked owner. If every replica is
// unreachable the Route declines and the engine computes locally —
// sharding changes only where a point runs, never its result, so
// cluster output is byte-identical to single-node output.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"scaleout/internal/serve"
	"scaleout/internal/sim"
)

// Coordinator shards routable sweep points across soprocd replicas.
// Construct with New; install on an engine with eng.SetRoute(c.Route).
// A Coordinator is safe for concurrent use.
type Coordinator struct {
	replicas []*replica
	client   *http.Client
	window   time.Duration
	maxBatch int
	cooldown time.Duration

	mu      sync.Mutex
	batches map[*replica]*batch

	routed     atomic.Int64 // points answered by a replica
	failovers  atomic.Int64 // points retried past their first-choice owner
	fallbacks  atomic.Int64 // points declined because every replica failed
	unroutable atomic.Int64 // points not representable on the wire
	posts      atomic.Int64 // /v1/sweep requests issued
}

// Option configures a Coordinator at construction.
type Option func(*Coordinator)

// WithBatchWindow sets how long the first point bound for a replica
// waits for companions before its batch is POSTed (default 2ms; <= 0
// flushes every point immediately in its own request).
func WithBatchWindow(d time.Duration) Option {
	return func(c *Coordinator) { c.window = d }
}

// WithMaxBatch caps the points per /v1/sweep POST (default
// serve.MaxSweepPoints, the most a replica accepts).
func WithMaxBatch(n int) Option {
	return func(c *Coordinator) {
		if n > 0 {
			c.maxBatch = n
		}
	}
}

// WithCooldown sets how long a failed replica is skipped before it is
// offered work again (default 3s).
func WithCooldown(d time.Duration) Option {
	return func(c *Coordinator) { c.cooldown = d }
}

// WithHTTPClient replaces the HTTP client used for replica requests
// (default: a dedicated client with a 10-minute request timeout).
func WithHTTPClient(cl *http.Client) Option {
	return func(c *Coordinator) { c.client = cl }
}

// New returns a coordinator over the given replica addresses
// ("host:port", or a full http:// base URL). It validates only shape,
// not liveness: a replica that is down when work arrives is skipped
// (cooldown) and its shard re-hashes to the next owners.
func New(peers []string, opts ...Option) (*Coordinator, error) {
	c := &Coordinator{
		client:   &http.Client{Timeout: 10 * time.Minute},
		window:   2 * time.Millisecond,
		maxBatch: serve.MaxSweepPoints,
		cooldown: 3 * time.Second,
		batches:  make(map[*replica]*batch),
	}
	for _, o := range opts {
		o(c)
	}
	seen := make(map[string]bool)
	for _, p := range peers {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		base := p
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		base = strings.TrimRight(base, "/")
		if seen[base] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
		seen[base] = true
		c.replicas = append(c.replicas, &replica{addr: p, base: base})
	}
	if len(c.replicas) == 0 {
		return nil, fmt.Errorf("cluster: no peers")
	}
	return c, nil
}

// replica is one soprocd backend and its health/traffic accounting.
type replica struct {
	addr string // as configured (-peers)
	base string // http://host:port

	downUntil atomic.Int64 // unix nanos; 0 = healthy
	sent      atomic.Int64 // points this replica answered
	failures  atomic.Int64 // failed /v1/sweep requests
}

func (r *replica) down(now time.Time) bool {
	return now.UnixNano() < r.downUntil.Load()
}

func (r *replica) markDown(now time.Time, cooldown time.Duration) {
	r.downUntil.Store(now.Add(cooldown).UnixNano())
}

// Route implements exp.Route: it ships a sim.Config or
// sim.StructuralConfig payload to the replica owning key, failing over
// in rendezvous order, and declines (handled=false) payloads it cannot
// represent on the wire or deliver to any replica — the engine then
// computes them locally with identical results.
func (c *Coordinator) Route(ctx context.Context, key string, payload any) (any, bool, error) {
	var (
		wire serve.SweepPoint
		ok   bool
		kind string
	)
	switch cfg := payload.(type) {
	case sim.Config:
		wire, ok = serve.WirePointSim(cfg)
		kind = "sim"
	case sim.StructuralConfig:
		wire, ok = serve.WirePointStructural(cfg)
		kind = "structural"
	default:
		ok = false
	}
	if !ok {
		c.unroutable.Add(1)
		return nil, false, nil
	}

	// Candidate order: healthy replicas in rendezvous rank, then — as a
	// last resort, if the whole cluster looks down, an attempt is still
	// cheaper than silently degrading to local-only — the ones already
	// in cooldown when this point arrived. Down-ness is snapshotted
	// here so a replica that fails during this very call is never
	// immediately re-attempted by the same point.
	ranked := c.rank(key)
	now := time.Now()
	candidates := make([]*replica, 0, len(ranked))
	for _, rep := range ranked {
		if !rep.down(now) {
			candidates = append(candidates, rep)
		}
	}
	for _, rep := range ranked {
		if rep.down(now) {
			candidates = append(candidates, rep)
		}
	}
	for attempt, rep := range candidates {
		res, err := c.enqueue(ctx, rep, wire)
		if err == nil {
			val, derr := decodeResult(kind, res)
			if derr == nil {
				if attempt > 0 {
					c.failovers.Add(1)
				}
				c.routed.Add(1)
				return val, true, nil
			}
			err = derr
		}
		if ctx.Err() != nil {
			// The caller went away; this is a cancellation, not a
			// replica failure, and the engine withdraws the entry.
			return nil, true, ctx.Err()
		}
		rep.failures.Add(1)
		rep.markDown(time.Now(), c.cooldown)
	}
	c.fallbacks.Add(1)
	return nil, false, nil
}

// rank orders the replicas by rendezvous weight for key, highest first:
// the first entry owns the key, the rest are its failover order. Every
// coordinator computes the same ranking from the peer list alone, and
// removing one replica re-homes only the keys it owned.
func (c *Coordinator) rank(key string) []*replica {
	type scored struct {
		rep   *replica
		score uint64
	}
	sc := make([]scored, len(c.replicas))
	for i, rep := range c.replicas {
		h := fnv.New64a()
		io.WriteString(h, rep.base)
		h.Write([]byte{0})
		io.WriteString(h, key)
		sc[i] = scored{rep, h.Sum64()}
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].score != sc[j].score {
			return sc[i].score > sc[j].score
		}
		return sc[i].rep.base < sc[j].rep.base
	})
	out := make([]*replica, len(sc))
	for i, s := range sc {
		out[i] = s.rep
	}
	return out
}

// decodeResult unwraps one wire result into the value a local compute
// of the same point would have returned.
func decodeResult(kind string, res serve.SweepResult) (any, error) {
	switch {
	case kind == "sim" && res.Sim != nil:
		return *res.Sim, nil
	case kind == "structural" && res.Structural != nil:
		return *res.Structural, nil
	}
	return nil, fmt.Errorf("cluster: replica returned %q result for %q point", res.Kind, kind)
}

// batch is one pending /v1/sweep POST to a replica: the points that
// accumulated during the batch window and the rendezvous of their
// waiting callers. Results land in results[i] for points[i]; err, if
// set, applies to every point (and each caller fails over
// independently).
type batch struct {
	ctx     context.Context // cancelled when every caller abandons
	cancel  context.CancelFunc
	points  []serve.SweepPoint
	live    int  // callers still waiting; 0 cancels the POST
	flushed bool // exactly one flusher POSTs (window timer vs full)
	done    chan struct{}
	results []serve.SweepResult
	err     error
}

// enqueue joins (or opens) the pending batch for rep and waits for its
// slot of the response. The POST itself runs on a context detached from
// any single caller: like an engine memo entry, a batch in flight
// serves every caller that joined it, and is cancelled only when all of
// them have gone away.
func (c *Coordinator) enqueue(ctx context.Context, rep *replica, p serve.SweepPoint) (serve.SweepResult, error) {
	c.mu.Lock()
	b := c.batches[rep]
	if b == nil {
		bctx, cancel := context.WithCancel(context.Background())
		b = &batch{ctx: bctx, cancel: cancel, done: make(chan struct{})}
		c.batches[rep] = b
		if c.window > 0 {
			time.AfterFunc(c.window, func() { c.flush(rep, b) })
		} else {
			// No batching: this point's own goroutine flushes as soon
			// as the append below is published (flush reacquires mu).
			go c.flush(rep, b)
		}
	}
	idx := len(b.points)
	b.points = append(b.points, p)
	b.live++
	full := len(b.points) >= c.maxBatch
	if full {
		// Detach immediately so later points open a fresh batch and
		// this one can never outgrow what a replica accepts.
		delete(c.batches, rep)
	}
	c.mu.Unlock()
	if full {
		go c.flush(rep, b)
	}

	select {
	case <-b.done:
		if b.err != nil {
			return serve.SweepResult{}, b.err
		}
		return b.results[idx], nil
	case <-ctx.Done():
		c.mu.Lock()
		b.live--
		abandoned := b.live == 0
		if abandoned && !b.flushed {
			// Every caller left before anything was POSTed: claim the
			// flush so the window timer does nothing, and detach the
			// batch so a later point opens a fresh one instead of
			// joining this dead batch and mistaking its cancelled
			// context for a replica failure.
			b.flushed = true
			if c.batches[rep] == b {
				delete(c.batches, rep)
			}
		}
		c.mu.Unlock()
		if abandoned {
			b.cancel()
		}
		return serve.SweepResult{}, ctx.Err()
	}
}

// flush POSTs b once: it detaches b so later points open a fresh batch,
// snapshots the membership, and distributes the response (or error) to
// every waiter. The window timer and the batch-full path may both call
// it; the flushed flag makes the second call a no-op.
func (c *Coordinator) flush(rep *replica, b *batch) {
	c.mu.Lock()
	if b.flushed {
		c.mu.Unlock()
		return
	}
	b.flushed = true
	if c.batches[rep] == b {
		delete(c.batches, rep)
	}
	points := b.points
	c.mu.Unlock()
	defer b.cancel()
	defer close(b.done)

	c.posts.Add(1)
	results, err := c.post(b.ctx, rep, points)
	if err != nil {
		b.err = err
		return
	}
	b.results = results
	rep.sent.Add(int64(len(points)))
}

// post issues one forwarded /v1/sweep request and decodes the response.
func (c *Coordinator) post(ctx context.Context, rep *replica, points []serve.SweepPoint) ([]serve.SweepResult, error) {
	body, err := json.Marshal(serve.SweepRequest{Points: points})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.base+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.ForwardedHeader, "1")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("cluster: %s: %s: %s", rep.addr, resp.Status, strings.TrimSpace(string(msg)))
	}
	var sr serve.SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("cluster: %s: bad sweep response: %v", rep.addr, err)
	}
	if len(sr.Results) != len(points) {
		return nil, fmt.Errorf("cluster: %s: %d results for %d points", rep.addr, len(sr.Results), len(points))
	}
	return sr.Results, nil
}

// Stats is a point-in-time snapshot of a coordinator's routing traffic;
// it is the /statsz "cluster" section of a -peers daemon.
type Stats struct {
	// Peers reports each replica in -peers order.
	Peers []PeerStats `json:"peers"`
	// Routed counts points answered by a replica; Failovers the subset
	// retried past their first-choice owner after a failure.
	Routed    int64 `json:"routed"`
	Failovers int64 `json:"failovers"`
	// LocalFallbacks counts points computed locally because every
	// replica failed; Unroutable those whose configuration the wire
	// cannot represent (always computed locally).
	LocalFallbacks int64 `json:"local_fallbacks"`
	Unroutable     int64 `json:"unroutable"`
	// Posts counts /v1/sweep requests issued — Routed/Posts is the
	// batching factor.
	Posts int64 `json:"posts"`
}

// PeerStats is one replica's slice of a Stats snapshot.
type PeerStats struct {
	Addr string `json:"addr"`
	// Sent counts points this replica answered; Failures the requests
	// it failed; Down whether it is currently in failure cooldown.
	Sent     int64 `json:"sent"`
	Failures int64 `json:"failures"`
	Down     bool  `json:"down"`
}

// Stats snapshots the coordinator's routing counters.
func (c *Coordinator) Stats() Stats {
	now := time.Now()
	st := Stats{
		Routed:         c.routed.Load(),
		Failovers:      c.failovers.Load(),
		LocalFallbacks: c.fallbacks.Load(),
		Unroutable:     c.unroutable.Load(),
		Posts:          c.posts.Load(),
	}
	for _, rep := range c.replicas {
		st.Peers = append(st.Peers, PeerStats{
			Addr:     rep.addr,
			Sent:     rep.sent.Load(),
			Failures: rep.failures.Load(),
			Down:     rep.down(now),
		})
	}
	return st
}
