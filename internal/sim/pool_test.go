package sim

import (
	"testing"

	"scaleout/internal/noc"
	"scaleout/internal/tech"
	"scaleout/internal/trace"
	"scaleout/internal/workload"
)

// Golden pool-equivalence test: a machine recycled through the pool and
// reset for a new configuration must produce results byte-identical to
// a freshly constructed machine — across shape-sharing configurations
// (same geometry, different workload/seed/MSHRs trigger actual reuse)
// and back-to-back repeats. Any residue a reset leaves behind — a stale
// tag, stamp, RNG position, directory entry, or queue depth — shows up
// here as a field-level divergence.
func TestMachinePoolEquivalence(t *testing.T) {
	ws := workload.Suite()
	short := func(c StructuralConfig) StructuralConfig {
		c.WarmupCycles, c.MeasureCycles = 8000, 10000
		return c
	}
	// Consecutive entries share a shape where possible so the pooled
	// pass genuinely reuses machines rather than always building fresh.
	cfgs := []StructuralConfig{
		short(StructuralConfig{Workload: ws[0], CoreType: tech.OoO, Cores: 8, LLCMB: 2}),
		short(StructuralConfig{Workload: ws[1], CoreType: tech.OoO, Cores: 8, LLCMB: 2}),
		short(StructuralConfig{Workload: ws[0], CoreType: tech.OoO, Cores: 8, LLCMB: 2, Seed: 42}),
		short(StructuralConfig{Workload: ws[2], CoreType: tech.InOrder, Cores: 8, LLCMB: 2}),
		short(StructuralConfig{Workload: ws[0], CoreType: tech.OoO, Cores: 16, LLCMB: 4,
			Net: noc.New(noc.Mesh, 16)}),
		short(StructuralConfig{Workload: ws[0], CoreType: tech.OoO, Cores: 8, LLCMB: 2}), // repeat of [0]
	}

	// Fresh baseline: pool disabled, every run constructs.
	UseMachinePool(false)
	fresh := make([]StructuralResult, len(cfgs))
	for i, cfg := range cfgs {
		r, err := RunStructural(cfg)
		if err != nil {
			t.Fatalf("fresh cfg %d: %v", i, err)
		}
		fresh[i] = r
	}

	// Pooled pass: same sequence, machines recycled in between.
	UseMachinePool(true)
	defer UseMachinePool(true) // leave the default state behind
	for i, cfg := range cfgs {
		r, err := RunStructural(cfg)
		if err != nil {
			t.Fatalf("pooled cfg %d: %v", i, err)
		}
		if r != fresh[i] {
			t.Fatalf("pooled run %d diverged:\npooled: %+v\nfresh:  %+v", i, r, fresh[i])
		}
	}

	// The shape-sharing prefix must actually have recycled: after the
	// sequence the pool holds fewer machines than configurations run.
	machinePool.mu.Lock()
	total := machinePool.total
	machinePool.mu.Unlock()
	if total >= len(cfgs) {
		t.Fatalf("pool holds %d machines after %d runs; reuse never happened", total, len(cfgs))
	}
	if total == 0 {
		t.Fatal("pool empty after pooled runs")
	}
}

// A pooled machine must also behave identically on the lock-step
// reference kernel, which shares the reset path.
func TestMachinePoolEquivalenceLockstep(t *testing.T) {
	cfg := StructuralConfig{Workload: workload.Suite()[0], CoreType: tech.OoO, Cores: 8, LLCMB: 2,
		WarmupCycles: 6000, MeasureCycles: 8000}
	UseMachinePool(false)
	fresh, err := RunStructuralLockstep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	UseMachinePool(true)
	defer UseMachinePool(true)
	for i := 0; i < 3; i++ {
		pooled, err := RunStructuralLockstep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if pooled != fresh {
			t.Fatalf("pooled lockstep run %d diverged:\npooled: %+v\nfresh:  %+v", i, pooled, fresh)
		}
	}
}

// The pool must never retain more machines than its global bound, and
// eviction must leave the bookkeeping consistent.
func TestMachinePoolBound(t *testing.T) {
	UseMachinePool(true)
	defer UseMachinePool(true)
	machinePool.drain()
	cfg := StructuralConfig{Workload: workload.Suite()[0], CoreType: tech.OoO, Cores: 4, LLCMB: 1,
		WarmupCycles: 500, MeasureCycles: 500}
	if err := cfg.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	// Hold more machines live than the pool bound, then release all.
	n := machinePool.limit + 3
	ms := make([]*structMachine, 0, n)
	for i := 0; i < n; i++ {
		m, err := acquireStructMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	for _, m := range ms {
		releaseStructMachine(m)
	}
	machinePool.mu.Lock()
	total, orderLen := machinePool.total, len(machinePool.order)
	listLen := 0
	for _, l := range machinePool.free {
		listLen += len(l)
	}
	machinePool.mu.Unlock()
	if total > machinePool.limit {
		t.Fatalf("pool retains %d machines, limit %d", total, machinePool.limit)
	}
	if total != orderLen || total != listLen {
		t.Fatalf("pool bookkeeping inconsistent: total %d, order %d, listed %d", total, orderLen, listLen)
	}
}

// Regression test for the MSHR-full hang: when the MSHR file reports
// full but no miss is outstanding (an invariant violation — pending
// mirrors the MSHR file), the earliest-completion lookup used to leave
// blockedUntil at the far-future sentinel and the core hung silently
// forever. structMiss must record an explicit error instead, and the
// run must surface it.
func TestStructMissMSHRFullGuard(t *testing.T) {
	cfg := StructuralConfig{Workload: workload.Suite()[0], CoreType: tech.OoO, Cores: 2, LLCMB: 1,
		L1MSHRs: 2, WarmupCycles: 100, MeasureCycles: 100}
	if err := cfg.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	m, err := newStructMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := &m.cores[0]
	// Corrupt the invariant: fill the MSHR file without tracking any
	// pending completion.
	c.mshr.Allocate(1001)
	c.mshr.Allocate(1002)
	if !c.mshr.Full() {
		t.Fatal("MSHR not full after filling")
	}
	done, stalled := m.structMiss(0, c, trace.Access{Block: 2002})
	if !stalled {
		t.Fatalf("structMiss did not stall on a full MSHR (done=%d)", done)
	}
	if m.err == nil {
		t.Fatal("structMiss left no error for a full MSHR with empty pending")
	}
	if c.blockedUntil <= m.now {
		t.Fatal("core not parked after the invariant violation")
	}
	// The healthy path — pending non-empty — must keep stalling
	// without an error.
	m2, err := newStructMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2 := &m2.cores[0]
	c2.mshr.Allocate(1001)
	c2.mshr.Allocate(1002)
	c2.pending = append(c2.pending, pendingMiss{block: 1001, done: 77})
	c2.pendingMin = 77
	done, stalled = m2.structMiss(0, c2, trace.Access{Block: 2002})
	if !stalled || done != 77 {
		t.Fatalf("healthy MSHR-full stall = (%d, %v), want (77, true)", done, stalled)
	}
	if m2.err != nil {
		t.Fatalf("healthy stall produced an error: %v", m2.err)
	}
}

// The warm-start image cache must evict FIFO past its bound — each
// image clones a full LLC, so unbounded retention would let a
// geometry-diverse sweep pin arbitrary memory.
func TestPrefillImageCacheBound(t *testing.T) {
	c := &prefillImageCache{images: map[prefillKey]*prefillImage{}, limit: 2}
	k := func(i int) prefillKey { return prefillKey{instrFootprintMB: float64(i), banks: 1, bankBytes: 1} }
	for i := 1; i <= 3; i++ {
		c.store(k(i), &prefillImage{})
	}
	if len(c.images) != 2 || len(c.order) != 2 {
		t.Fatalf("cache holds %d images / %d order entries, limit 2", len(c.images), len(c.order))
	}
	if _, ok := c.load(k(1)); ok {
		t.Fatal("oldest image survived eviction")
	}
	for i := 2; i <= 3; i++ {
		if _, ok := c.load(k(i)); !ok {
			t.Fatalf("image %d missing", i)
		}
	}
	// Re-storing an existing key must not duplicate its order entry.
	c.store(k(3), &prefillImage{})
	if len(c.order) != 2 {
		t.Fatalf("duplicate store grew order to %d", len(c.order))
	}
}

// The warm-start image cache must hold an entry after a structural run
// and replay it into a pooled machine exactly (covered value-wise by
// TestMachinePoolEquivalence; this pins the mechanism itself).
func TestPrefillImageMemoized(t *testing.T) {
	cfg := StructuralConfig{Workload: workload.Suite()[0], CoreType: tech.OoO, Cores: 4, LLCMB: 1,
		WarmupCycles: 500, MeasureCycles: 500}
	if _, err := RunStructural(cfg); err != nil {
		t.Fatal(err)
	}
	cc, err := cfg.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	banks := cc.base().banksFor()
	key := prefillKey{
		instrFootprintMB: cc.Workload.InstrFootprintMB,
		banks:            banks,
		bankBytes:        int(cc.LLCMB * 1024 * 1024 / float64(banks)),
	}
	img, ok := prefillImages.load(key)
	if !ok {
		t.Fatal("no warm-start image memoized after a structural run")
	}
	if len(img.llc) != banks || len(img.victims) != banks {
		t.Fatalf("image has %d/%d banks, want %d", len(img.llc), len(img.victims), banks)
	}
	occ := 0
	for _, b := range img.llc {
		occ += b.Occupancy()
	}
	if occ == 0 {
		t.Fatal("memoized warm-start image is empty")
	}
}
