package sim

import (
	"math/rand"
	"testing"
)

// FuzzUnmarshalWire hardens the wire decoder against arbitrary bytes:
// the daemon feeds client-controlled "config" objects straight into
// UnmarshalWire/Decode, so no input may panic, and anything that does
// decode must satisfy the same round-trip invariant the property test
// checks — re-encoding the decoded configuration reproduces its memo
// key exactly. The seed corpus is the property test's 300 randomized
// valid encodings (same generator, seed 7) plus malformed shapes:
// truncations, wrong JSON kinds, version skew, and non-JSON bytes.
func FuzzUnmarshalWire(f *testing.F) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		base := randBase(rng)
		var (
			data []byte
			err  error
		)
		if i%2 == 0 {
			cfg := base
			cfg.DisableSWScaling = rng.Intn(2) == 0
			data, err = cfg.MarshalWire()
		} else {
			data, err = randStructural(rng, base).MarshalWire()
		}
		if err != nil {
			f.Fatalf("seed %d: MarshalWire: %v", i, err)
		}
		f.Add(data)
		if i == 0 {
			f.Add(data[:len(data)/2])
		}
	}
	for _, seed := range []string{
		``,
		`not json`,
		`{}`,
		`[1,2,3]`,
		`"sim"`,
		`{"wire_version":1}`,
		`{"wire_version":99,"field_from_the_future":true}`,
		`{"wire_version":1,"kind":"structural","cores":-1}`,
		`{"wire_version":1,"workload":{"name":"x","base_ipc":{"ooo":1e308}}}`,
	} {
		f.Add([]byte(seed))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		wc, err := UnmarshalWire(data)
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		dec, err := wc.Decode()
		if err != nil {
			return
		}
		switch cfg := dec.(type) {
		case Config:
			roundTrip(t, cfg.Key(), func() ([]byte, error) { return cfg.MarshalWire() })
		case StructuralConfig:
			roundTrip(t, cfg.Key(), func() ([]byte, error) { return cfg.MarshalWire() })
		default:
			t.Fatalf("Decode returned %T", dec)
		}
	})
}

// roundTrip re-encodes a successfully decoded configuration and
// requires the second decode to land on the identical memo key — the
// invariant that keeps a cluster's routed results keyed consistently no
// matter which hop decoded the bytes.
func roundTrip(t *testing.T, wantKey string, marshal func() ([]byte, error)) {
	t.Helper()
	data, err := marshal()
	if err != nil {
		t.Fatalf("decoded config does not re-encode: %v", err)
	}
	wc, err := UnmarshalWire(data)
	if err != nil {
		t.Fatalf("re-encoded config does not decode: %v", err)
	}
	dec, err := wc.Decode()
	if err != nil {
		t.Fatalf("re-encoded config does not validate: %v", err)
	}
	var key string
	switch cfg := dec.(type) {
	case Config:
		key = cfg.Key()
	case StructuralConfig:
		key = cfg.Key()
	default:
		t.Fatalf("re-decode returned %T", dec)
	}
	if key != wantKey {
		t.Fatalf("round-trip key mismatch:\n got %s\nwant %s", key, wantKey)
	}
}
