package sim

import (
	"errors"
	"math/rand"
	"testing"

	"scaleout/internal/noc"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// randNet draws one interconnect across all five kinds with randomly
// perturbed WireDelta, Concentration, ExpressLinks, TileEdge, and
// LinkBits — the fields the old symbolic wire form could not carry.
func randNet(rng *rand.Rand, cores int) noc.Config {
	kinds := []noc.Kind{noc.Ideal, noc.Crossbar, noc.Mesh, noc.FlattenedButterfly, noc.NOCOut}
	net := noc.New(kinds[rng.Intn(len(kinds))], cores)
	if rng.Intn(2) == 0 {
		net.WireDelta = -3 + 6*rng.Float64()
	}
	if rng.Intn(3) == 0 {
		net.TileEdge = 1 + 2*rng.Float64()
	}
	if rng.Intn(3) == 0 {
		net.LinkBits = 32 << rng.Intn(4)
	}
	if net.Kind == noc.NOCOut {
		if rng.Intn(2) == 0 {
			net.Concentration = 1 + rng.Intn(4)
		}
		if rng.Intn(2) == 0 {
			net.ExpressLinks = true
		}
		if rng.Intn(2) == 0 {
			net.LLCTiles = 4 << rng.Intn(3)
		}
	}
	return net
}

// randWorkload perturbs a suite workload into a valid non-suite spec.
func randWorkload(rng *rand.Rand) workload.Workload {
	names := workload.Names()
	w, _ := workload.ByName(names[rng.Intn(len(names))])
	if rng.Intn(2) == 0 {
		return w
	}
	w.Name = w.Name + " (perturbed)"
	w.APKI *= 0.5 + rng.Float64()
	w.MPKIFloor *= rng.Float64()
	w.MPKI1 = w.MPKIFloor + (w.MPKI1-w.MPKIFloor)*(0.5+rng.Float64())
	w.Alpha = 0.1 + 1.5*rng.Float64()
	w.SnoopPct *= rng.Float64() * 2
	w.SharedFrac = rng.Float64() * 0.1
	bi := make(map[tech.CoreType]float64)
	for t, v := range w.BaseIPC {
		bi[t] = v * (0.5 + 0.5*rng.Float64())
	}
	w.BaseIPC = bi
	return w
}

// randBase draws one randomized base configuration — the shared
// generator behind the round-trip property test and FuzzUnmarshalWire's
// seed corpus (both walk it from seed 7).
func randBase(rng *rand.Rand) Config {
	cores := 1 << rng.Intn(8)
	base := Config{
		Workload: randWorkload(rng),
		CoreType: tech.CoreType(rng.Intn(3)),
		Cores:    cores,
		LLCMB:    0.5 * float64(1+rng.Intn(32)),
		Net:      randNet(rng, cores),
	}
	if rng.Intn(2) == 0 {
		base.MemChannels = 1 + rng.Intn(8)
	}
	if rng.Intn(2) == 0 {
		base.WarmupCycles = 1000 * (1 + rng.Intn(50))
	}
	if rng.Intn(2) == 0 {
		base.MeasureCycles = 1000 * (1 + rng.Intn(100))
	}
	if rng.Intn(2) == 0 {
		base.Seed = rng.Uint64()
	}
	return base
}

// randStructural reshapes a base configuration into the structural
// variant the property test uses for odd samples.
func randStructural(rng *rand.Rand, base Config) StructuralConfig {
	cfg := StructuralConfig{
		Workload: base.Workload, CoreType: base.CoreType, Cores: base.Cores,
		LLCMB: base.LLCMB, Net: base.Net, MemChannels: base.MemChannels,
		WarmupCycles: base.WarmupCycles, MeasureCycles: base.MeasureCycles,
		Seed: base.Seed,
	}
	if rng.Intn(2) == 0 {
		cfg.L1MSHRs = 4 << rng.Intn(5)
	}
	return cfg
}

// TestWireRoundTripRandomized is the wire form's property test: for
// randomized configurations across every noc kind — perturbed
// WireDelta/Concentration/ExpressLinks/TileEdge/LinkBits and mutated
// non-suite workloads — UnmarshalWire(MarshalWire(c)) must re-derive
// exactly c's memo key. This is the invariant that keeps cluster output
// byte-identical to single-node output for every representable point.
func TestWireRoundTripRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		base := randBase(rng)

		if i%2 == 0 {
			cfg := base
			cfg.DisableSWScaling = rng.Intn(2) == 0
			data, err := cfg.MarshalWire()
			if err != nil {
				t.Fatalf("sample %d: MarshalWire: %v", i, err)
			}
			wc, err := UnmarshalWire(data)
			if err != nil {
				t.Fatalf("sample %d: UnmarshalWire: %v", i, err)
			}
			dec, err := wc.Decode()
			if err != nil {
				t.Fatalf("sample %d: Decode: %v", i, err)
			}
			got, ok := dec.(Config)
			if !ok {
				t.Fatalf("sample %d: Decode returned %T", i, dec)
			}
			if got.Key() != cfg.Key() {
				t.Fatalf("sample %d: round-trip key mismatch:\n got %s\nwant %s", i, got.Key(), cfg.Key())
			}
		} else {
			cfg := randStructural(rng, base)
			data, err := cfg.MarshalWire()
			if err != nil {
				t.Fatalf("sample %d: structural MarshalWire: %v", i, err)
			}
			wc, err := UnmarshalWire(data)
			if err != nil {
				t.Fatalf("sample %d: structural UnmarshalWire: %v", i, err)
			}
			dec, err := wc.Decode()
			if err != nil {
				t.Fatalf("sample %d: structural Decode: %v", i, err)
			}
			got, ok := dec.(StructuralConfig)
			if !ok {
				t.Fatalf("sample %d: Decode returned %T", i, dec)
			}
			if got.Key() != cfg.Key() {
				t.Fatalf("sample %d: structural round-trip key mismatch:\n got %s\nwant %s", i, got.Key(), cfg.Key())
			}
		}
	}
}

// TestWireVersionRejected: a wire config with any other version is
// rejected with a typed *WireVersionError before the body is even
// looked at — fields from a future schema must not fail as "unknown
// field" ahead of the version check.
func TestWireVersionRejected(t *testing.T) {
	_, err := UnmarshalWire([]byte(`{"wire_version": 99, "field_from_the_future": true}`))
	var ve *WireVersionError
	if !errors.As(err, &ve) || ve.Version != 99 {
		t.Fatalf("UnmarshalWire = %v, want *WireVersionError{99}", err)
	}
	if _, err := UnmarshalWire([]byte(`{"kind": "sim"}`)); err == nil {
		t.Fatal("UnmarshalWire accepted a config without wire_version")
	}
}

// TestWireRejectsInvalid: decode validates with the same rules that
// gate locally constructed points.
func TestWireRejectsInvalid(t *testing.T) {
	w, _ := workload.ByName(workload.Names()[0])
	cfg := Config{Workload: w, CoreType: tech.OoO, Cores: 4, LLCMB: 2}
	wc, err := cfg.Wire()
	if err != nil {
		t.Fatalf("Wire: %v", err)
	}

	bad := wc
	bad.Workload.Alpha = 17 // outside Validate's (0, 2]
	if _, err := bad.Decode(); err == nil {
		t.Fatal("Decode accepted an out-of-range workload")
	}

	bad = wc
	bad.Core = "quantum"
	if _, err := bad.Decode(); err == nil {
		t.Fatal("Decode accepted an unknown core token")
	}

	bad = wc
	bad.Net.Kind = "tokenring"
	if _, err := bad.Decode(); err == nil {
		t.Fatal("Decode accepted an unknown net kind")
	}

	bad = wc
	bad.Kind = "analytic"
	if _, err := bad.Decode(); err == nil {
		t.Fatal("Decode accepted an unknown simulator kind")
	}

	bad = wc
	bad.L1MSHRs = 8 // structural-only field on a sim config
	if _, err := bad.Decode(); err == nil {
		t.Fatal("Decode accepted l1_mshrs on a sim config")
	}

	invalid := cfg
	invalid.Cores = 0
	if _, err := invalid.Wire(); err == nil {
		t.Fatal("Wire accepted an invalid config")
	}
	if p, ok := invalid.WirePayload().(Unroutable); !ok || p.Err == nil {
		t.Fatalf("WirePayload = %#v, want an Unroutable marker", invalid.WirePayload())
	}
}

// TestWireCarriesFormerlyUnroutable: the exact shapes the legacy
// symbolic wire form declined — WireDelta meshes (ch4's scale-limited
// pods), express-linked concentrated NOC-Out, custom tile edges,
// perturbed workloads — must now round-trip to the same key.
func TestWireCarriesFormerlyUnroutable(t *testing.T) {
	w, _ := workload.ByName(workload.Names()[0])

	mesh := noc.New(noc.Mesh, 64)
	mesh.WireDelta = -0.25 * mesh.OneWayLatency()

	nocOut := noc.New(noc.NOCOut, 128)
	nocOut.Concentration = 2
	nocOut.ExpressLinks = true

	edge := noc.New(noc.FlattenedButterfly, 16)
	edge.TileEdge = 2.5

	perturbed := w
	perturbed.APKI *= 1.5

	for name, cfg := range map[string]Config{
		"wire-delta":        {Workload: w, CoreType: tech.OoO, Cores: 64, LLCMB: 4, Net: mesh},
		"nocout-scaled":     {Workload: w, CoreType: tech.InOrder, Cores: 128, LLCMB: 8, Net: nocOut},
		"tile-edge":         {Workload: w, CoreType: tech.OoO, Cores: 16, LLCMB: 4, Net: edge},
		"non-suite":         {Workload: perturbed, CoreType: tech.OoO, Cores: 16, LLCMB: 4},
		"conventional-core": {Workload: w, CoreType: tech.Conventional, Cores: 4, LLCMB: 2},
	} {
		data, err := cfg.MarshalWire()
		if err != nil {
			t.Fatalf("%s: MarshalWire: %v", name, err)
		}
		wc, err := UnmarshalWire(data)
		if err != nil {
			t.Fatalf("%s: UnmarshalWire: %v", name, err)
		}
		dec, err := wc.Decode()
		if err != nil {
			t.Fatalf("%s: Decode: %v", name, err)
		}
		if dec.(Config).Key() != cfg.Key() {
			t.Fatalf("%s: round-trip key mismatch", name)
		}
	}
}
