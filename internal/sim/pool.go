// The machine pool. A structural sweep — associativity, MSHR, bank, or
// core-count what-ifs — runs hundreds of points, and before this pool
// every point paid to allocate and zero a multi-MB LLC tag image, per-
// core L1 arrays, and the kernel's scheduling state, only to discard
// them milliseconds later. Machines are instead keyed by their
// allocation geometry (machineShape) and recycled: a finished machine
// returns to the pool, and the next point of the same shape resets it
// in place (structMachine.reset restores cold state exactly — the
// pooled-vs-fresh golden test asserts byte-identical results). The
// warm-start LLC image is memoized separately (prefillImages), so a
// recycled machine replays it with array copies instead of re-inserting
// the workload's whole resident footprint.
package sim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"scaleout/internal/cache"
	"scaleout/internal/tech"
)

// machineShape is everything that determines a structural machine's
// allocation sizes — and therefore which configurations can reuse its
// arrays. Semantics (workload, seed, latencies) are deliberately
// excluded: reset re-derives them from the new configuration.
type machineShape struct {
	cores     int
	banks     int
	bankBytes int
	l1iBytes  int
	l1dBytes  int
	l1Ways    int
	mshrs     int
	chans     int
	dirCores  int
}

// shapeOf computes the allocation geometry of a defaults-applied
// configuration, mirroring the sizing rules in newStructMachine and
// newKernel.
func shapeOf(cfg StructuralConfig) machineShape {
	spec := tech.Cores(cfg.CoreType)
	banks := cfg.base().banksFor()
	return machineShape{
		cores:     cfg.Cores,
		banks:     banks,
		bankBytes: int(cfg.LLCMB * 1024 * 1024 / float64(banks)),
		l1iBytes:  spec.L1IKB * 1024,
		l1dBytes:  spec.L1DKB * 1024,
		l1Ways:    spec.L1Ways,
		mshrs:     cfg.L1MSHRs,
		chans:     cfg.MemChannels,
		dirCores:  min(cfg.Cores, 64),
	}
}

// structMachinePool holds idle machines per shape. Retention is bounded
// globally; when the bound is hit the oldest pooled machine (FIFO
// across shapes) is dropped so a shape-diverse harness cannot pin
// arbitrary memory.
type structMachinePool struct {
	mu    sync.Mutex
	free  map[machineShape][]*structMachine
	order []machineShape // one entry per pooled machine, in put order
	limit int
	total int
}

var machinePool = &structMachinePool{
	free:  map[machineShape][]*structMachine{},
	limit: 2 * runtime.GOMAXPROCS(0),
}

// machinePoolDisabled turns acquire/release into plain construction and
// disposal; see UseMachinePool.
var machinePoolDisabled atomic.Bool

// UseMachinePool selects whether RunStructural recycles machines
// through the shape-keyed pool (true, the default) or constructs a
// fresh machine per run (false). Results are byte-identical either way;
// the switch exists so benchmark harnesses and the pool's own golden
// tests can measure and verify the reuse path. Disabling drains the
// pool.
func UseMachinePool(on bool) {
	machinePoolDisabled.Store(!on)
	if !on {
		machinePool.drain()
	}
}

func (p *structMachinePool) get(shape machineShape) *structMachine {
	p.mu.Lock()
	defer p.mu.Unlock()
	list := p.free[shape]
	if len(list) == 0 {
		return nil
	}
	m := list[len(list)-1]
	p.free[shape] = list[:len(list)-1]
	p.total--
	// Drop the newest order entry for this shape (the lists are LIFO).
	for i := len(p.order) - 1; i >= 0; i-- {
		if p.order[i] == shape {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
	return m
}

func (p *structMachinePool) put(m *structMachine) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.total >= p.limit {
		// Evict the oldest pooled machine of any shape, clearing its
		// slot so the multi-MB machine is actually collectable instead
		// of lingering in the slice's backing array.
		oldest := p.order[0]
		p.order = p.order[1:]
		list := p.free[oldest]
		copy(list, list[1:])
		list[len(list)-1] = nil
		p.free[oldest] = list[:len(list)-1]
		p.total--
	}
	p.free[m.shape] = append(p.free[m.shape], m)
	p.order = append(p.order, m.shape)
	p.total++
}

func (p *structMachinePool) drain() {
	p.mu.Lock()
	defer p.mu.Unlock()
	clear(p.free)
	p.order = p.order[:0]
	p.total = 0
}

// acquireStructMachine returns a machine ready to run cfg: a pooled
// machine of matching shape reset in place, or a fresh construction.
func acquireStructMachine(cfg StructuralConfig) (*structMachine, error) {
	if !machinePoolDisabled.Load() {
		if m := machinePool.get(shapeOf(cfg)); m != nil {
			if err := m.reset(cfg); err != nil {
				return nil, err
			}
			return m, nil
		}
	}
	return newStructMachine(cfg)
}

// releaseStructMachine returns a finished machine to the pool.
func releaseStructMachine(m *structMachine) {
	if machinePoolDisabled.Load() {
		return
	}
	machinePool.put(m)
}

// prefillKey identifies a warm-start LLC image: the fill replays the
// workload's resident footprint (instruction blocks, the shared
// secondary working set, the shared pool — the latter two have fixed
// sizes) into the bank geometry, so those are the only inputs.
type prefillKey struct {
	instrFootprintMB float64
	banks            int
	bankBytes        int
}

// prefillImage is the memoized post-fill state of every LLC bank and
// victim cache (frozen clones, only ever read via CopyStateFrom), plus
// the off-chip traffic the fill generated.
type prefillImage struct {
	llc          []*cache.SetAssoc
	victims      []*cache.Victim
	offChipLines uint64
}

// prefillImageCache holds warm-start images, FIFO-bounded like the
// machine pool — each image clones a full LLC, so an unbounded map
// would let a geometry-diverse sweep pin arbitrary memory. An evicted
// key just replays its fill on the next miss.
type prefillImageCache struct {
	mu     sync.Mutex
	images map[prefillKey]*prefillImage
	order  []prefillKey
	limit  int
}

var prefillImages = &prefillImageCache{
	images: map[prefillKey]*prefillImage{},
	limit:  8,
}

func (c *prefillImageCache) load(key prefillKey) (*prefillImage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	img, ok := c.images[key]
	return img, ok
}

func (c *prefillImageCache) store(key prefillKey, img *prefillImage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.images[key]; ok {
		return // another machine raced the same deterministic fill
	}
	if len(c.order) >= c.limit {
		delete(c.images, c.order[0])
		c.order = c.order[1:]
	}
	c.images[key] = img
	c.order = append(c.order, key)
}
