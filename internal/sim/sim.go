// Package sim is the cycle-driven multicore timing simulator that stands
// in for the thesis's Flexus/Simics full-system infrastructure (Sections
// 3.3 and 4.3.4). It models, per cycle: cores (issue-width and base-CPI
// limited, with front-end stalls on instruction fetches, bounded
// memory-level parallelism for out-of-order cores, and blocking loads for
// in-order cores), a banked NUCA/UCA last-level cache with per-bank
// queueing, a real coherence directory over the shared working set, the
// interconnect (latency, serialization, per-kind topology), and memory
// channels with finite bandwidth.
//
// The simulator is trace-driven: each committed instruction draws its
// memory behaviour (instruction fetch misses, data accesses, hit/miss,
// sharing) from the calibrated workload model using a deterministic
// per-core RNG, so runs are exactly reproducible. What the simulator adds
// over the analytic model — and what Figure 3.3's validation measures —
// is timing fidelity: queueing at banks and channels, MLP saturation,
// burstiness, and software-scalability derating.
//
// Two simulators share one event-scheduled kernel (kernel.go): the
// statistical machine in this file draws cache behaviour from the
// calibrated curves, while the structural machine (structural.go)
// replays synthetic streams through real cache arrays. Each plugs its
// access model into the kernel as a coreModel; the kernel supplies the
// scheduler, the bank/channel/directory timing spine, and the stats.
package sim

import (
	"context"
	"fmt"
	"math"
	"sync"

	"scaleout/internal/cache"
	"scaleout/internal/exp/engine"
	"scaleout/internal/noc"
	"scaleout/internal/stats"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// Config describes one simulated pod or chip.
type Config struct {
	Workload workload.Workload
	CoreType tech.CoreType
	Cores    int
	LLCMB    float64
	Net      noc.Config

	// MemChannels is the number of memory channels (default: enough for
	// the configuration per the provisioning rule, minimum 1).
	MemChannels int

	// WarmupCycles are simulated but not measured (default 20000).
	// MeasureCycles are measured (default 50000, as in SimFlex runs).
	WarmupCycles  int
	MeasureCycles int

	// Seed selects the deterministic random stream (default 1).
	Seed uint64

	// DisableSWScaling turns off the software-scalability derating, for
	// direct comparison against the analytic model's hardware potential.
	DisableSWScaling bool
}

// Result reports the measured behaviour of one simulation. The JSON
// field names are the wire format of the soprocd sweep API
// (internal/serve) and must stay stable.
type Result struct {
	Cycles          int     `json:"cycles"`
	Instructions    uint64  `json:"instructions"` // application instructions committed (all cores)
	AppIPC          float64 `json:"app_ipc"`      // aggregate application IPC — the thesis metric
	PerCoreIPC      float64 `json:"per_core_ipc"`
	LLCAccesses     uint64  `json:"llc_accesses"`
	LLCMisses       uint64  `json:"llc_misses"`
	SnoopRatePct    float64 `json:"snoop_rate_pct"`   // % of LLC accesses triggering a snoop (Fig 4.3)
	AvgLLCLatency   float64 `json:"avg_llc_latency"`  // average end-to-end LLC hit latency, cycles
	OffChipGBs      float64 `json:"off_chip_gbs"`     // average off-chip bandwidth used
	DirectoryBlocks int     `json:"directory_blocks"` // blocks tracked by the coherence directory

	// Source tags how the result was produced. The simulators leave it
	// empty; the tiered evaluator (internal/tier) sets "surrogate" on
	// results it answered from the analytic model in fast mode, so a
	// caller — or a downstream reader of the sweep API — can always tell
	// a certified approximation from a measured simulation. Exact-tier
	// results are genuine simulator output and keep the empty tag, which
	// also keeps their wire form byte-identical to a direct run.
	Source string `json:"source,omitempty"`
}

// MissRatio returns LLC misses over accesses.
func (r Result) MissRatio() float64 {
	if r.LLCAccesses == 0 {
		return 0
	}
	return float64(r.LLCMisses) / float64(r.LLCAccesses)
}

func (c *Config) applyDefaults() error {
	if c.Cores < 1 {
		return fmt.Errorf("sim: %d cores", c.Cores)
	}
	if c.LLCMB <= 0 {
		return fmt.Errorf("sim: %vMB LLC", c.LLCMB)
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if c.Net.Kind == 0 && c.Net.Cores == 0 { // zero Config: default crossbar
		c.Net = noc.New(noc.Crossbar, c.Cores)
	}
	if c.MemChannels < 1 {
		c.MemChannels = 1 + c.Cores/16
	}
	if c.WarmupCycles <= 0 {
		c.WarmupCycles = 20000
	}
	if c.MeasureCycles <= 0 {
		c.MeasureCycles = 50000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// Canonical returns the configuration with every default applied — the
// form under which two Configs describe the same simulation. Experiment
// engines use it to fingerprint sweep points, so a Config with an
// explicit default (say, Seed 1) deduplicates against one that left the
// field zero. It reports an error for invalid configurations.
func (c Config) Canonical() (Config, error) {
	err := c.applyDefaults()
	return c, err
}

// Key canonically fingerprints the defaults-applied configuration — the
// memo key under which experiment engines (internal/exp) deduplicate
// identical sweep points. Invalid configurations key their raw form;
// running them reports the validation error.
func (c Config) Key() string {
	cc, err := c.Canonical()
	if err != nil {
		cc = c
	}
	return "sim:" + engine.Fingerprint(cc)
}

// banksFor mirrors the analytic model's banking rule (Table 3.1): UCA
// designs have one bank per four cores; NUCA fabrics one bank per tile,
// except NOC-Out, which concentrates two banks in each of its LLC tiles.
func (c Config) banksFor() int {
	switch c.Net.Kind {
	case noc.Crossbar, noc.Ideal:
		b := (c.Cores + 3) / 4
		if b < 4 {
			b = 4 // a shared cache is always built from at least four banks
		}
		return b
	case noc.NOCOut:
		t := c.Net.LLCTiles
		if t <= 0 {
			t = 8
		}
		return 2 * t
	default:
		return c.Cores
	}
}

// sharedPoolBlocks is the size of the read-write shared working set the
// directory tracks (locks, allocator and session metadata): 512 blocks =
// 32KB, deliberately small — scale-out requests are independent.
const sharedPoolBlocks = 512

// Run simulates the configuration and returns measured results.
func Run(cfg Config) (Result, error) {
	return runKernel(cfg, lockstepKernel.Load())
}

// RunLockstep simulates the configuration on the lock-step reference
// kernel — the seed implementation that polls every core every cycle.
// Results are byte-identical to Run; it exists as the baseline for the
// kernel-equivalence golden tests and the `soproc -bench` harness.
func RunLockstep(cfg Config) (Result, error) {
	return runKernel(cfg, true)
}

func runKernel(cfg Config, lockstep bool) (Result, error) {
	if err := cfg.applyDefaults(); err != nil {
		return Result{}, err
	}
	m, err := newMachine(cfg)
	if err != nil {
		return Result{}, err
	}
	simulateOn(&m.kernel, m, cfg.WarmupCycles, cfg.MeasureCycles, lockstep)
	return m.result(), nil
}

// sampleSeed derives the i-th sample's seed from the base configuration.
func sampleSeed(base uint64, i int) uint64 { return base + uint64(i)*0x9E37 }

// RunSampled runs n independent samples with distinct seeds and returns
// the per-sample results plus an accumulator over aggregate IPC — the
// SimFlex-style sampling methodology (Section 3.3) that lets callers
// check the 95% confidence interval. Samples fan out across the default
// experiment engine's worker pool; see RunSampledContext to choose the
// engine.
func RunSampled(cfg Config, n int) ([]Result, *stats.Accumulator, error) {
	return RunSampledContext(context.Background(), cfg, n)
}

// RunSampledContext is RunSampled on the context's experiment engine
// (engine.FromContext): samples run in parallel on the engine's worker
// pool and are memoized per seed like any other sweep point. Results
// are returned in seed order and are byte-identical to a serial,
// single-worker run.
//
// Do not call it from inside a computation already running on the same
// engine (e.g. an exp.Func point): the outer computation holds a worker
// slot while the samples wait for one, which deadlocks a small pool.
// Declare the samples as top-level sweep points instead.
func RunSampledContext(ctx context.Context, cfg Config, n int) ([]Result, *stats.Accumulator, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("sim: %d samples", n)
	}
	e := engine.FromContext(ctx)
	out := make([]Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = sampleSeed(cfg.Seed, i)
		wg.Add(1)
		go func(i int, c Config) {
			defer wg.Done()
			v, err := e.Do(ctx, c.Key(), func() (any, error) { return Run(c) })
			if err != nil {
				errs[i] = err
				return
			}
			out[i] = v.(Result)
		}(i, c)
	}
	wg.Wait()
	if err := engine.FirstError(errs, nil); err != nil {
		return nil, nil, err
	}
	var acc stats.Accumulator
	for _, r := range out {
		acc.Add(r.AppIPC)
	}
	return out, &acc, nil
}

// machine is the statistical simulator: the shared kernel plus cores
// whose memory behaviour is drawn from the calibrated workload curves.
type machine struct {
	kernel
	cores []coreState
}

// cfgDerived caches per-run constants derived from the Config.
type cfgDerived struct {
	Config
	pInstr      float64 // P(instruction slot performs an LLC I-fetch)
	pData       float64 // P(instruction slot performs an LLC data access)
	pAccess     float64 // pInstr + pData, the issue loop's second branch
	pMissInstr  float64 // P(I-fetch misses LLC)
	pMissData   float64 // P(data access misses LLC)
	baseIPC     float64
	width       int
	overlap     float64
	slots       int // outstanding off-chip misses an OoO core sustains
	netLat      int64
	replyLat    int64
	bankLat     int64
	memLat      int64
	lineCycles  int64 // channel occupancy per line
	banks       int
	bankBusy    int64 // cycles a bank is occupied per request
	swEff       float64
	writebackPr float64
}

func derive(cfg Config) cfgDerived {
	w, t := cfg.Workload, cfg.CoreType
	acc := w.AccessBreakdown(t, cfg.LLCMB, cfg.Cores)
	iAPKI := acc.IHitAPKI + acc.IMissMPKI
	dAPKI := acc.DHitAPKI + acc.DMissMPKI

	d := cfgDerived{Config: cfg}
	d.pInstr = iAPKI / 1000
	d.pData = dAPKI / 1000
	d.pAccess = d.pInstr + d.pData
	if iAPKI > 0 {
		d.pMissInstr = acc.IMissMPKI / iAPKI
	}
	if dAPKI > 0 {
		d.pMissData = acc.DMissMPKI / dAPKI
	}
	d.baseIPC = w.BaseIPC[t]
	d.width = tech.Cores(t).Width
	d.overlap = w.LLCOverlap[t]
	d.slots = int(math.Round(w.MLP[t]))
	if d.slots < 1 {
		d.slots = 1
	}
	if t == tech.InOrder {
		d.slots = 1
	}
	d.netLat = int64(math.Round(cfg.Net.OneWayLatency()))
	d.replyLat = d.netLat + int64(cfg.Net.ReplySerializationCycles())
	d.banks = cfg.banksFor()
	d.bankLat = int64(tech.LLCBankLatency(cfg.LLCMB / float64(d.banks)))
	d.bankBusy = 1
	if cfg.Net.Kind == noc.NOCOut {
		// NOC-Out concentrates two banks behind each LLC-tile router;
		// the shared port halves the accept rate (Section 4.4.1 notes
		// the resulting bank contention on Data Serving).
		d.bankBusy = 2
	}
	d.memLat = int64(tech.MemoryLatencyCycles)
	gbs := tech.DDR3UsableGBs
	d.lineCycles = int64(math.Ceil(float64(tech.CacheLineBytes) * tech.ClockGHz / gbs))
	d.swEff = 1
	if !cfg.DisableSWScaling {
		d.swEff = w.SWEfficiency(cfg.Cores)
	}
	d.writebackPr = w.WritebackFrac
	return d
}

func newMachine(cfg Config) (*machine, error) {
	k, err := newKernel(cfg)
	if err != nil {
		return nil, err
	}
	m := &machine{
		kernel: k,
		cores:  make([]coreState, cfg.Cores),
	}
	for i := range m.cores {
		m.cores[i] = newCoreState(cfg.Seed, i, m.cfg.slots)
	}
	m.attach(m)
	return m, nil
}

// core returns core i's scheduling state to the kernel.
func (m *machine) core(i int) *coreState { return &m.cores[i] }

// stepActive advances core i through one active cycle: retirement, then
// the issue loop. The kernel has already drained stall debt and waited
// out front-end or blocking-load stalls.
func (m *machine) stepActive(i int) {
	c := &m.cores[i]
	// Retire completed off-chip loads to free MLP slots.
	c.retireSlots(m.now)

	// Issue budget and instruction count commit once per step; see the
	// structural stepActive for the rationale.
	credit := c.credit + m.cfg.baseIPC
	issued := uint64(0)
	for n := 0; credit >= 1 && n < m.cfg.width; n++ {
		credit--
		issued++
		u := c.rng.Float64()
		switch {
		case u < m.cfg.pInstr:
			// Instruction fetch from the LLC: the front end stalls for
			// the full access latency.
			c.blockedUntil = m.access(c, true)
			goto commit
		case u < m.cfg.pAccess:
			isWrite := false
			shared := c.rng.Float64() < m.cfg.Workload.SharedFrac
			if shared {
				isWrite = c.rng.Float64() < m.cfg.Workload.SharedWriteFrac
			}
			done := m.dataAccess(i, c, shared, isWrite)
			if m.cfg.CoreType == tech.InOrder {
				c.blockedUntil = done
				goto commit
			}
			lat := done - m.now
			if m.isMissLatency(lat) {
				// Off-chip load: occupy an MLP slot; block when the
				// window is exhausted.
				if len(c.slotDone) >= m.cfg.slots {
					c.blockedUntil = c.slotMin
					goto commit
				}
				c.addSlot(done)
			} else {
				// LLC hit: the out-of-order window hides part of the
				// latency; the exposed fraction accrues as stall debt.
				c.stallDebt += m.cfg.overlap * float64(lat)
			}
		}
	}
commit:
	c.credit = credit
	m.instructions += issued
}

// dataAccess performs a data access, consulting the directory for shared
// blocks. It returns the completion cycle.
func (m *machine) dataAccess(i int, c *coreState, shared, isWrite bool) int64 {
	if !shared {
		c.privateSeq++
		return m.access(c, false)
	}
	block := uint64(c.rng.Intn(sharedPoolBlocks))
	var res cache.AccessResult
	dirCore := i % m.dir.Cores()
	if isWrite {
		res = m.dir.Write(dirCore, block)
	} else {
		res = m.dir.Read(dirCore, block)
	}
	done := m.accessShared(c, res.ForwardedFromL1)
	if res.Snoops > 0 && !res.ForwardedFromL1 {
		// Invalidations complete in the background; only a fraction of
		// their latency is on the critical path (write acknowledgment).
		done += m.cfg.netLat
	}
	return done
}

// access performs a plain LLC access (instruction fetch or private data).
func (m *machine) access(c *coreState, isInstr bool) int64 {
	pMiss := m.cfg.pMissData
	if isInstr {
		pMiss = m.cfg.pMissInstr
	}
	miss := c.rng.Float64() < pMiss
	return m.timeAccess(&c.rng, miss, false)
}

// accessShared performs the LLC-side timing of a shared-block access.
// Shared metadata is hot and hits on chip; a forward adds an L1-to-L1
// round trip through the LLC fabric.
func (m *machine) accessShared(c *coreState, forwarded bool) int64 {
	return m.timeAccess(&c.rng, false, forwarded)
}
