// Package sim is the cycle-driven multicore timing simulator that stands
// in for the thesis's Flexus/Simics full-system infrastructure (Sections
// 3.3 and 4.3.4). It models, per cycle: cores (issue-width and base-CPI
// limited, with front-end stalls on instruction fetches, bounded
// memory-level parallelism for out-of-order cores, and blocking loads for
// in-order cores), a banked NUCA/UCA last-level cache with per-bank
// queueing, a real coherence directory over the shared working set, the
// interconnect (latency, serialization, per-kind topology), and memory
// channels with finite bandwidth.
//
// The simulator is trace-driven: each committed instruction draws its
// memory behaviour (instruction fetch misses, data accesses, hit/miss,
// sharing) from the calibrated workload model using a deterministic
// per-core RNG, so runs are exactly reproducible. What the simulator adds
// over the analytic model — and what Figure 3.3's validation measures —
// is timing fidelity: queueing at banks and channels, MLP saturation,
// burstiness, and software-scalability derating.
package sim

import (
	"fmt"
	"math"

	"scaleout/internal/cache"
	"scaleout/internal/noc"
	"scaleout/internal/stats"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// Config describes one simulated pod or chip.
type Config struct {
	Workload workload.Workload
	CoreType tech.CoreType
	Cores    int
	LLCMB    float64
	Net      noc.Config

	// MemChannels is the number of memory channels (default: enough for
	// the configuration per the provisioning rule, minimum 1).
	MemChannels int

	// WarmupCycles are simulated but not measured (default 20000).
	// MeasureCycles are measured (default 50000, as in SimFlex runs).
	WarmupCycles  int
	MeasureCycles int

	// Seed selects the deterministic random stream (default 1).
	Seed uint64

	// DisableSWScaling turns off the software-scalability derating, for
	// direct comparison against the analytic model's hardware potential.
	DisableSWScaling bool
}

// Result reports the measured behaviour of one simulation.
type Result struct {
	Cycles          int
	Instructions    uint64  // application instructions committed (all cores)
	AppIPC          float64 // aggregate application IPC — the thesis metric
	PerCoreIPC      float64
	LLCAccesses     uint64
	LLCMisses       uint64
	SnoopRatePct    float64 // % of LLC accesses triggering a snoop (Fig 4.3)
	AvgLLCLatency   float64 // average end-to-end LLC hit latency, cycles
	OffChipGBs      float64 // average off-chip bandwidth used
	DirectoryBlocks int     // blocks tracked by the coherence directory
}

// MissRatio returns LLC misses over accesses.
func (r Result) MissRatio() float64 {
	if r.LLCAccesses == 0 {
		return 0
	}
	return float64(r.LLCMisses) / float64(r.LLCAccesses)
}

func (c *Config) applyDefaults() error {
	if c.Cores < 1 {
		return fmt.Errorf("sim: %d cores", c.Cores)
	}
	if c.LLCMB <= 0 {
		return fmt.Errorf("sim: %vMB LLC", c.LLCMB)
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if c.Net.Kind == 0 && c.Net.Cores == 0 { // zero Config: default crossbar
		c.Net = noc.New(noc.Crossbar, c.Cores)
	}
	if c.MemChannels < 1 {
		c.MemChannels = 1 + c.Cores/16
	}
	if c.WarmupCycles <= 0 {
		c.WarmupCycles = 20000
	}
	if c.MeasureCycles <= 0 {
		c.MeasureCycles = 50000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// Canonical returns the configuration with every default applied — the
// form under which two Configs describe the same simulation. Experiment
// engines use it to fingerprint sweep points, so a Config with an
// explicit default (say, Seed 1) deduplicates against one that left the
// field zero. It reports an error for invalid configurations.
func (c Config) Canonical() (Config, error) {
	err := c.applyDefaults()
	return c, err
}

// banksFor mirrors the analytic model's banking rule (Table 3.1): UCA
// designs have one bank per four cores; NUCA fabrics one bank per tile,
// except NOC-Out, which concentrates two banks in each of its LLC tiles.
func (c Config) banksFor() int {
	switch c.Net.Kind {
	case noc.Crossbar, noc.Ideal:
		b := (c.Cores + 3) / 4
		if b < 4 {
			b = 4 // a shared cache is always built from at least four banks
		}
		return b
	case noc.NOCOut:
		t := c.Net.LLCTiles
		if t <= 0 {
			t = 8
		}
		return 2 * t
	default:
		return c.Cores
	}
}

// sharedPoolBlocks is the size of the read-write shared working set the
// directory tracks (locks, allocator and session metadata): 512 blocks =
// 32KB, deliberately small — scale-out requests are independent.
const sharedPoolBlocks = 512

// Run simulates the configuration and returns measured results.
func Run(cfg Config) (Result, error) {
	if err := cfg.applyDefaults(); err != nil {
		return Result{}, err
	}
	m, err := newMachine(cfg)
	if err != nil {
		return Result{}, err
	}
	m.run(cfg.WarmupCycles)
	m.resetStats()
	m.run(cfg.MeasureCycles)
	return m.result(), nil
}

// RunSampled runs n independent samples with distinct seeds and returns
// the per-sample results plus an accumulator over aggregate IPC — the
// SimFlex-style sampling methodology (Section 3.3) that lets callers
// check the 95% confidence interval.
func RunSampled(cfg Config, n int) ([]Result, *stats.Accumulator, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("sim: %d samples", n)
	}
	var acc stats.Accumulator
	out := make([]Result, 0, n)
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*0x9E37
		r, err := Run(c)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, r)
		acc.Add(r.AppIPC)
	}
	return out, &acc, nil
}

// machine is the simulated hardware: cores, LLC banks, directory, and
// memory channels, advanced in lock-step cycles.
type machine struct {
	cfg   cfgDerived
	cores []coreState
	banks []int64 // next cycle each LLC bank can accept a request
	chans []int64 // next cycle each memory channel can start a line
	dir   *cache.Directory
	now   int64

	// measured stats
	instructions  uint64
	llcAccesses   uint64
	llcMisses     uint64
	llcLatencySum uint64
	offChipLines  uint64
}

// cfgDerived caches per-run constants derived from the Config.
type cfgDerived struct {
	Config
	pInstr      float64 // P(instruction slot performs an LLC I-fetch)
	pData       float64 // P(instruction slot performs an LLC data access)
	pMissInstr  float64 // P(I-fetch misses LLC)
	pMissData   float64 // P(data access misses LLC)
	baseIPC     float64
	width       int
	overlap     float64
	slots       int // outstanding off-chip misses an OoO core sustains
	netLat      int64
	replyLat    int64
	bankLat     int64
	memLat      int64
	lineCycles  int64 // channel occupancy per line
	banks       int
	bankBusy    int64 // cycles a bank is occupied per request
	swEff       float64
	writebackPr float64
}

func derive(cfg Config) cfgDerived {
	w, t := cfg.Workload, cfg.CoreType
	acc := w.AccessBreakdown(t, cfg.LLCMB, cfg.Cores)
	iAPKI := acc.IHitAPKI + acc.IMissMPKI
	dAPKI := acc.DHitAPKI + acc.DMissMPKI

	d := cfgDerived{Config: cfg}
	d.pInstr = iAPKI / 1000
	d.pData = dAPKI / 1000
	if iAPKI > 0 {
		d.pMissInstr = acc.IMissMPKI / iAPKI
	}
	if dAPKI > 0 {
		d.pMissData = acc.DMissMPKI / dAPKI
	}
	d.baseIPC = w.BaseIPC[t]
	d.width = tech.Cores(t).Width
	d.overlap = w.LLCOverlap[t]
	d.slots = int(math.Round(w.MLP[t]))
	if d.slots < 1 {
		d.slots = 1
	}
	if t == tech.InOrder {
		d.slots = 1
	}
	d.netLat = int64(math.Round(cfg.Net.OneWayLatency()))
	d.replyLat = d.netLat + int64(cfg.Net.SerializationCycles(tech.CacheLineBytes+8))
	d.banks = cfg.banksFor()
	d.bankLat = int64(tech.LLCBankLatency(cfg.LLCMB / float64(d.banks)))
	d.bankBusy = 1
	if cfg.Net.Kind == noc.NOCOut {
		// NOC-Out concentrates two banks behind each LLC-tile router;
		// the shared port halves the accept rate (Section 4.4.1 notes
		// the resulting bank contention on Data Serving).
		d.bankBusy = 2
	}
	d.memLat = int64(tech.MemoryLatencyCycles)
	gbs := tech.DDR3UsableGBs
	d.lineCycles = int64(math.Ceil(float64(tech.CacheLineBytes) * tech.ClockGHz / gbs))
	d.swEff = 1
	if !cfg.DisableSWScaling {
		d.swEff = w.SWEfficiency(cfg.Cores)
	}
	d.writebackPr = w.WritebackFrac
	return d
}

// coreState is one core's execution state.
type coreState struct {
	rng          *stats.Rng
	credit       float64 // fractional issue budget from the base IPC
	stallDebt    float64 // exposed LLC-hit latency still to drain
	blockedUntil int64   // front-end or blocking-load stall
	slotDone     []int64 // completion cycles of outstanding off-chip loads
	privateSeq   uint64  // streaming pointer into the core's private data
}

func newMachine(cfg Config) (*machine, error) {
	d := derive(cfg)
	dir, err := cache.NewDirectory(min(cfg.Cores, 64))
	if err != nil {
		return nil, err
	}
	m := &machine{
		cfg:   d,
		cores: make([]coreState, cfg.Cores),
		banks: make([]int64, d.banks),
		chans: make([]int64, cfg.MemChannels),
		dir:   dir,
	}
	for i := range m.cores {
		m.cores[i] = coreState{
			rng:      stats.NewRng(cfg.Seed + uint64(i)*0x9E3779B97F4A7C15),
			slotDone: make([]int64, 0, d.slots),
		}
	}
	return m, nil
}

func (m *machine) resetStats() {
	m.instructions = 0
	m.llcAccesses = 0
	m.llcMisses = 0
	m.llcLatencySum = 0
	m.offChipLines = 0
	m.dir.Lookups = 0
	m.dir.SnoopsSent = 0
	m.dir.SnoopAccesses = 0
	m.dir.Invalidation = 0
	m.dir.Forwards = 0
}

func (m *machine) run(cycles int) {
	end := m.now + int64(cycles)
	for ; m.now < end; m.now++ {
		for i := range m.cores {
			m.stepCore(i)
		}
	}
}

// stepCore advances core i by one cycle.
func (m *machine) stepCore(i int) {
	c := &m.cores[i]
	if c.stallDebt >= 1 {
		c.stallDebt--
		return
	}
	if m.now < c.blockedUntil {
		return
	}
	// Retire completed off-chip loads to free MLP slots.
	live := c.slotDone[:0]
	for _, done := range c.slotDone {
		if done > m.now {
			live = append(live, done)
		}
	}
	c.slotDone = live

	c.credit += m.cfg.baseIPC
	for n := 0; c.credit >= 1 && n < m.cfg.width; n++ {
		c.credit--
		m.instructions++
		u := c.rng.Float64()
		switch {
		case u < m.cfg.pInstr:
			// Instruction fetch from the LLC: the front end stalls for
			// the full access latency.
			done := m.access(i, c, true, false)
			c.blockedUntil = done
			return
		case u < m.cfg.pInstr+m.cfg.pData:
			isWrite := false
			shared := c.rng.Float64() < m.cfg.Workload.SharedFrac
			if shared {
				isWrite = c.rng.Float64() < m.cfg.Workload.SharedWriteFrac
			}
			done := m.dataAccess(i, c, shared, isWrite)
			if m.cfg.CoreType == tech.InOrder {
				c.blockedUntil = done
				return
			}
			lat := done - m.now
			if m.isMissLatency(lat) {
				// Off-chip load: occupy an MLP slot; block when the
				// window is exhausted.
				if len(c.slotDone) >= m.cfg.slots {
					c.blockedUntil = minInt64(c.slotDone)
					return
				}
				c.slotDone = append(c.slotDone, done)
			} else {
				// LLC hit: the out-of-order window hides part of the
				// latency; the exposed fraction accrues as stall debt.
				c.stallDebt += m.cfg.overlap * float64(lat)
			}
		}
	}
}

// isMissLatency distinguishes off-chip completions from LLC hits by
// magnitude (misses always include the DRAM latency).
func (m *machine) isMissLatency(lat int64) bool {
	return lat >= m.cfg.memLat
}

// dataAccess performs a data access, consulting the directory for shared
// blocks. It returns the completion cycle.
func (m *machine) dataAccess(i int, c *coreState, shared, isWrite bool) int64 {
	if !shared {
		c.privateSeq++
		return m.access(i, c, false, false)
	}
	block := uint64(c.rng.Intn(sharedPoolBlocks))
	var res cache.AccessResult
	dirCore := i % m.dir.Cores()
	if isWrite {
		res = m.dir.Write(dirCore, block)
	} else {
		res = m.dir.Read(dirCore, block)
	}
	done := m.accessShared(i, c, res.ForwardedFromL1)
	if res.Snoops > 0 && !res.ForwardedFromL1 {
		// Invalidations complete in the background; only a fraction of
		// their latency is on the critical path (write acknowledgment).
		done += m.cfg.netLat
	}
	return done
}

// access performs a plain LLC access (instruction fetch or private data).
func (m *machine) access(i int, c *coreState, isInstr, _ bool) int64 {
	pMiss := m.cfg.pMissData
	if isInstr {
		pMiss = m.cfg.pMissInstr
	}
	miss := c.rng.Float64() < pMiss
	return m.timeAccess(c, miss, false)
}

// accessShared performs the LLC-side timing of a shared-block access.
// Shared metadata is hot and hits on chip; a forward adds an L1-to-L1
// round trip through the LLC fabric.
func (m *machine) accessShared(i int, c *coreState, forwarded bool) int64 {
	return m.timeAccess(c, false, forwarded)
}

// timeAccess models the request path: network to a bank, bank queueing
// and access, then either the reply or the memory-channel round trip.
func (m *machine) timeAccess(c *coreState, miss, forwarded bool) int64 {
	m.llcAccesses++
	bank := c.rng.Intn(m.cfg.banks)
	arrive := m.now + m.cfg.netLat
	start := arrive
	if m.banks[bank] > start {
		start = m.banks[bank]
	}
	m.banks[bank] = start + m.cfg.bankBusy // pipelined bank accept rate
	ready := start + m.cfg.bankLat

	var done int64
	switch {
	case miss:
		m.llcMisses++
		m.offChipLines++
		occupancy := m.cfg.lineCycles
		if c.rng.Float64() < m.cfg.writebackPr {
			// A dirty eviction accompanies the fill and occupies the
			// channel for another line, off the critical path.
			m.offChipLines++
			occupancy += m.cfg.lineCycles
		}
		ch := c.rng.Intn(len(m.chans))
		chStart := ready
		if m.chans[ch] > chStart {
			chStart = m.chans[ch]
		}
		m.chans[ch] = chStart + occupancy
		done = chStart + m.cfg.memLat + m.cfg.replyLat
	case forwarded:
		// LLC directory forwards to the owning L1 and back.
		done = ready + 2*m.cfg.netLat + m.cfg.replyLat
	default:
		done = ready + m.cfg.replyLat
	}
	m.llcLatencySum += uint64(done - m.now)
	return done
}

func (m *machine) result() Result {
	cycles := m.cfg.MeasureCycles
	appInstr := float64(m.instructions) * m.cfg.swEff
	r := Result{
		Cycles:          cycles,
		Instructions:    uint64(appInstr),
		AppIPC:          appInstr / float64(cycles),
		LLCAccesses:     m.llcAccesses,
		LLCMisses:       m.llcMisses,
		SnoopRatePct:    m.dirSnoopPct(),
		OffChipGBs:      float64(m.offChipLines) * tech.CacheLineBytes * tech.ClockGHz / float64(cycles),
		DirectoryBlocks: m.dir.TrackedBlocks(),
	}
	r.PerCoreIPC = r.AppIPC / float64(len(m.cores))
	if m.llcAccesses > 0 {
		r.AvgLLCLatency = float64(m.llcLatencySum) / float64(m.llcAccesses)
	}
	return r
}

// dirSnoopPct scales the directory's snoop rate (over tracked shared
// accesses) to the full LLC access stream, as Figure 4.3 plots it.
func (m *machine) dirSnoopPct() float64 {
	if m.llcAccesses == 0 {
		return 0
	}
	return 100 * float64(m.dir.SnoopAccesses) / float64(m.llcAccesses)
}

func minInt64(xs []int64) int64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
