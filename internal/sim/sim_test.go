package sim

import (
	"context"
	"math"
	"testing"

	"scaleout/internal/analytic"
	"scaleout/internal/exp/engine"
	"scaleout/internal/noc"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

func wl(t *testing.T, name string) workload.Workload {
	t.Helper()
	w, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	return w
}

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func baseCfg(t *testing.T) Config {
	return Config{
		Workload: wl(t, workload.WebSearch),
		CoreType: tech.OoO,
		Cores:    16,
		LLCMB:    4,
		Net:      noc.New(noc.Crossbar, 16),
	}
}

func TestRunValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.LLCMB = 0 },
		func(c *Config) { c.Workload = workload.Workload{} },
	}
	for i, mutate := range cases {
		cfg := baseCfg(t)
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := baseCfg(t)
	a := run(t, cfg)
	b := run(t, cfg)
	if a != b {
		t.Fatalf("identical configs diverged:\n%+v\n%+v", a, b)
	}
}

func TestSeedChangesResult(t *testing.T) {
	cfg := baseCfg(t)
	a := run(t, cfg)
	cfg.Seed = 99
	b := run(t, cfg)
	if a.Instructions == b.Instructions {
		t.Fatal("different seeds produced identical instruction counts")
	}
	// But the measured IPC should be statistically stable.
	if math.Abs(a.AppIPC-b.AppIPC)/a.AppIPC > 0.1 {
		t.Fatalf("seed sensitivity too high: %v vs %v", a.AppIPC, b.AppIPC)
	}
}

func TestIPCBounds(t *testing.T) {
	for _, w := range workload.Suite() {
		cfg := baseCfg(t)
		cfg.Workload = w
		r := run(t, cfg)
		if r.AppIPC <= 0 {
			t.Errorf("%s: IPC %v", w.Name, r.AppIPC)
		}
		if r.PerCoreIPC >= w.BaseIPC[tech.OoO] {
			t.Errorf("%s: per-core %v above base %v", w.Name, r.PerCoreIPC, w.BaseIPC[tech.OoO])
		}
	}
}

// Agreement with the analytic model within the window the thesis reports
// for Figure 3.3 ("excellent accuracy up to 16 cores").
func TestAgreementWithModel(t *testing.T) {
	for _, w := range workload.Suite() {
		for _, cores := range []int{4, 16} {
			if cores > w.ScaleLimit {
				continue
			}
			cfg := Config{
				Workload: w, CoreType: tech.OoO, Cores: cores, LLCMB: 4,
				Net: noc.New(noc.Crossbar, cores), DisableSWScaling: true,
			}
			r := run(t, cfg)
			model := analytic.ChipIPC(w, analytic.NewDesign(tech.OoO, cores, 4, noc.Crossbar))
			if errPct := math.Abs(r.AppIPC-model) / model; errPct > 0.15 {
				t.Errorf("%s at %d cores: sim %v vs model %v (%.0f%%)",
					w.Name, cores, r.AppIPC, model, errPct*100)
			}
		}
	}
}

// Interconnect ordering holds in simulation: ideal >= crossbar >= mesh.
func TestInterconnectOrdering(t *testing.T) {
	w := wl(t, workload.MediaStreaming) // the most latency-sensitive
	ipc := func(kind noc.Kind) float64 {
		cfg := baseCfg(t)
		cfg.Workload = w
		cfg.Net = noc.New(kind, cfg.Cores)
		return run(t, cfg).AppIPC
	}
	ideal, xbar, mesh := ipc(noc.Ideal), ipc(noc.Crossbar), ipc(noc.Mesh)
	if !(ideal >= xbar && xbar >= mesh) {
		t.Fatalf("ordering violated: ideal %v xbar %v mesh %v", ideal, xbar, mesh)
	}
}

// Media Streaming — the thesis's most latency-sensitive workload (lowest
// ILP/MLP, highest L1 miss rate) — must lose more to a slow fabric than
// SAT Solver, the least access-intensive one (Section 4.4.1).
func TestLatencySensitivityOrdering(t *testing.T) {
	rel := func(name string) float64 {
		w := wl(t, name)
		fast := run(t, Config{Workload: w, CoreType: tech.OoO, Cores: 16, LLCMB: 4,
			Net: noc.New(noc.Ideal, 16), DisableSWScaling: true})
		slow := run(t, Config{Workload: w, CoreType: tech.OoO, Cores: 16, LLCMB: 4,
			Net: noc.New(noc.Mesh, 64), DisableSWScaling: true}) // long-latency fabric
		return slow.AppIPC / fast.AppIPC
	}
	if ms, sat := rel(workload.MediaStreaming), rel(workload.SATSolver); ms >= sat {
		t.Fatalf("Media Streaming retained %v of its performance, SAT Solver %v; expected MS to suffer more", ms, sat)
	}
}

// Software scalability derating: beyond the workload's knee, measured
// aggregate IPC grows sublinearly vs the derating-free run.
func TestSWScaling(t *testing.T) {
	w := wl(t, workload.DataServing) // knee at 16 cores
	with := run(t, Config{Workload: w, CoreType: tech.OoO, Cores: 64, LLCMB: 4,
		Net: noc.New(noc.Crossbar, 64)})
	without := run(t, Config{Workload: w, CoreType: tech.OoO, Cores: 64, LLCMB: 4,
		Net: noc.New(noc.Crossbar, 64), DisableSWScaling: true})
	if with.AppIPC >= without.AppIPC {
		t.Fatalf("derating absent: %v >= %v", with.AppIPC, without.AppIPC)
	}
	ratio := with.AppIPC / without.AppIPC
	if want := w.SWEfficiency(64); math.Abs(ratio-want) > 0.02 {
		t.Fatalf("derating %v, want %v", ratio, want)
	}
}

// Snoop rates land near the Figure 4.3 calibration targets.
func TestSnoopRates(t *testing.T) {
	for _, w := range workload.Suite() {
		cores := 64
		if w.ScaleLimit < cores {
			cores = w.ScaleLimit
		}
		cfg := Config{Workload: w, CoreType: tech.OoO, Cores: cores, LLCMB: 8,
			Net: noc.New(noc.Mesh, 64), MemChannels: 4}
		r := run(t, cfg)
		if r.SnoopRatePct < w.SnoopPct*0.4 || r.SnoopRatePct > w.SnoopPct*1.9 {
			t.Errorf("%s: snoop rate %.2f%%, target %.2f%%", w.Name, r.SnoopRatePct, w.SnoopPct)
		}
	}
}

// Off-chip bandwidth is bounded by the provisioned channels.
func TestBandwidthRespectChannels(t *testing.T) {
	w := wl(t, workload.SATSolver)
	cfg := Config{Workload: w, CoreType: tech.OoO, Cores: 32, LLCMB: 2,
		Net: noc.New(noc.Crossbar, 32), MemChannels: 1}
	r := run(t, cfg)
	if r.OffChipGBs > tech.DDR3UsableGBs*1.05 {
		t.Fatalf("one channel supplied %v GB/s, cap %v", r.OffChipGBs, tech.DDR3UsableGBs)
	}
}

// Channel starvation throttles performance.
func TestChannelThrottling(t *testing.T) {
	w := wl(t, workload.SATSolver)
	mk := func(ch int) float64 {
		return run(t, Config{Workload: w, CoreType: tech.OoO, Cores: 32, LLCMB: 2,
			Net: noc.New(noc.Crossbar, 32), MemChannels: ch}).AppIPC
	}
	if starved, fed := mk(1), mk(4); starved >= fed {
		t.Fatalf("starved %v >= fed %v", starved, fed)
	}
}

func TestMissRatioMatchesCurve(t *testing.T) {
	w := wl(t, workload.MapReduceC)
	cfg := baseCfg(t)
	cfg.Workload = w
	r := run(t, cfg)
	acc := w.AccessBreakdown(tech.OoO, 4, 16)
	want := acc.MemMPKITotal() / acc.Total()
	if math.Abs(r.MissRatio()-want)/want > 0.2 {
		t.Fatalf("miss ratio %v, curve %v", r.MissRatio(), want)
	}
}

func TestRunSampled(t *testing.T) {
	cfg := baseCfg(t)
	results, acc, err := RunSampled(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 || acc.N() != 5 {
		t.Fatalf("samples: %d, acc %d", len(results), acc.N())
	}
	// SimFlex bound: 95% CI within a few percent of the mean.
	if acc.RelativeError95() > 0.04 {
		t.Fatalf("relative error %v exceeds 4%%", acc.RelativeError95())
	}
	if _, _, err := RunSampled(cfg, 0); err == nil {
		t.Fatal("zero samples accepted")
	}
}

// Parallel sampling must match a serial per-seed loop exactly: same
// per-sample results in seed order, same accumulator, independent of
// the worker count.
func TestSampledParallelMatchesSerial(t *testing.T) {
	cfg := baseCfg(t)
	cfg.WarmupCycles, cfg.MeasureCycles = 2000, 5000
	const n = 6

	// Serial reference: one Run per derived seed, in order.
	var serial []Result
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = sampleSeed(cfg.Seed, i)
		serial = append(serial, run(t, c))
	}

	for _, workers := range []int{1, 8} {
		ctx := engine.WithEngine(context.Background(), engine.New(workers))
		results, acc, err := RunSampledContext(ctx, cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != n || acc.N() != n {
			t.Fatalf("workers=%d: %d results, acc %d", workers, len(results), acc.N())
		}
		for i := range results {
			if results[i] != serial[i] {
				t.Fatalf("workers=%d: sample %d diverged:\n%+v\n%+v",
					workers, i, results[i], serial[i])
			}
		}
	}
}

// Sampling fans out through the engine memo: re-sampling the same
// configuration on one engine costs zero new simulations.
func TestSampledMemoized(t *testing.T) {
	cfg := baseCfg(t)
	cfg.WarmupCycles, cfg.MeasureCycles = 1000, 2000
	e := engine.New(2)
	ctx := engine.WithEngine(context.Background(), e)
	first, _, err := RunSampledContext(ctx, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := RunSampledContext(ctx, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("memoized sample %d differs", i)
		}
	}
	if st := e.Stats(); st.Misses != 3 {
		t.Fatalf("%d simulations ran, want 3", st.Misses)
	}
}

func TestBankRule(t *testing.T) {
	cfg := baseCfg(t)
	if b := cfg.banksFor(); b != 4 {
		t.Fatalf("crossbar 16c: %d banks, want 4", b)
	}
	cfg.Net = noc.New(noc.Mesh, 16)
	if b := cfg.banksFor(); b != 16 {
		t.Fatalf("mesh 16c: %d banks, want 16", b)
	}
	cfg.Net = noc.New(noc.NOCOut, 64)
	if b := cfg.banksFor(); b != 16 {
		t.Fatalf("NOC-Out: %d banks, want 16 (2 per LLC tile)", b)
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{Workload: wl(t, workload.WebSearch), CoreType: tech.OoO, Cores: 8, LLCMB: 2}
	if err := cfg.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.Net.Kind != noc.Crossbar || cfg.MemChannels < 1 ||
		cfg.WarmupCycles <= 0 || cfg.MeasureCycles <= 0 || cfg.Seed == 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestDirectoryActivityVisible(t *testing.T) {
	cfg := baseCfg(t)
	cfg.Workload = wl(t, workload.WebFrontend) // highest sharing
	r := run(t, cfg)
	if r.DirectoryBlocks == 0 {
		t.Fatal("directory tracked no blocks despite shared accesses")
	}
	if r.SnoopRatePct <= 0 {
		t.Fatal("no snoops measured on the most share-heavy workload")
	}
}

// Warmup must not be measured: doubling warmup leaves measured cycles
// and the IPC definition unchanged.
func TestWarmupExcluded(t *testing.T) {
	cfg := baseCfg(t)
	cfg.WarmupCycles = 5000
	a := run(t, cfg)
	cfg.WarmupCycles = 40000
	b := run(t, cfg)
	if a.Cycles != b.Cycles {
		t.Fatalf("measured cycles differ: %d vs %d", a.Cycles, b.Cycles)
	}
	if math.Abs(a.AppIPC-b.AppIPC)/a.AppIPC > 0.1 {
		t.Fatalf("warmup leaked into measurement: %v vs %v", a.AppIPC, b.AppIPC)
	}
}
