// The event-scheduled simulation kernel. Both simulators in this
// package — the statistical one (sim.go) and the structural one
// (structural.go) — are built from the same machine scaffolding: cores
// that stall and wake, a banked LLC with per-bank occupancy, a coherence
// directory, and finite-bandwidth memory channels. The kernel owns that
// scaffolding plus the core scheduler; each simulator plugs in a
// coreModel (its access path: calibrated draws vs real tag arrays) and
// inherits the timing spine and stat accumulation.
//
// The seed kernel advanced a lock-step loop, polling every core every
// cycle even though most cores spend most cycles blocked — on fetch
// stalls, exhausted MLP windows, or stall debt. The event kernel keeps
// a wakeup schedule instead: a bucketed wheel of per-cycle core
// bitmaps, with exactly one pending wakeup per core. A core is stepped
// only at its next actionable cycle; everything in between costs
// nothing per core. (A (cycle, core) min-heap gives the same order but
// loses the race in practice: its sift comparisons are data-dependent
// branches the predictor cannot learn, while the wheel's bit scans
// branch on nothing.)
//
// Equivalence to the lock-step loop is exact, not approximate:
//
//   - A blocked or stalled core's lock-step "step" touches no shared
//     state and draws no randomness — it only decrements stall debt or
//     waits — so skipping it is invisible. Whole cycles of stall debt
//     are drained arithmetically at schedule time (subtracting the
//     integral part of the debt is an exact float operation, so the
//     remainder is bit-identical to N repeated decrements).
//   - Shared state (banks, channels, directory, stat counters) is only
//     touched on active cycles, and the wheel drains wakeups in
//     (cycle, core) order — exactly the cores the lock-step loop would
//     have found active, in exactly the order it visits them — so
//     cross-core interleaving at shared resources is preserved.
//   - Randomness is per-core (counter RNGs), so per-core draw order is
//     untouched by scheduling.
//
// runLockstep keeps the seed loop as the behavioural reference; the
// golden tests in kernel_test.go assert byte-identical results across
// core counts, core types, NoC kinds, and both simulators, and
// UseLockstepKernel lets benchmark harnesses measure the speedup on
// unmodified workloads.
package sim

import (
	"math"
	"math/bits"
	"sync/atomic"

	"scaleout/internal/cache"
	"scaleout/internal/stats"
	"scaleout/internal/tech"
)

// coreModel is the pluggable per-core behaviour a simulator mounts on
// the kernel: the access model (statistical draws or structural replay
// through real L1/MSHR arrays) behind a core's active cycles.
type coreModel interface {
	// core returns core i's scheduling state. The kernel reads it to
	// compute the core's next actionable cycle after a step.
	core(i int) *coreState

	// stepActive advances core i through one active cycle at the
	// kernel's current time. The kernel calls it only at cycles where
	// the lock-step loop would have gotten past the stall-debt and
	// blocked-until checks, so implementations start directly at
	// retirement and the issue loop.
	stepActive(i int)
}

// coreState is the per-core execution state the kernel schedules on.
// Models embed or hold it alongside their own structures.
type coreState struct {
	rng          stats.Rng
	credit       float64 // fractional issue budget from the base IPC
	stallDebt    float64 // exposed LLC-hit latency still to drain
	blockedUntil int64   // front-end or blocking-load stall
	slotDone     []int64 // completion cycles of outstanding off-chip loads
	slotMin      int64   // min(slotDone), noCompletion when empty
	privateSeq   uint64  // streaming pointer into the core's private data
}

// noCompletion is the sentinel "nothing outstanding" completion cycle:
// retirement scans are skipped entirely while the earliest completion
// (slotMin, pendingMin) is still in the future, which is most active
// cycles.
const noCompletion = int64(1)<<62 - 1

// newCoreState builds core i's initial state: a deterministic per-core
// RNG stream and an MLP window of the given depth.
func newCoreState(seed uint64, i int, slots int) coreState {
	return coreState{
		rng:      *stats.NewRng(seed + uint64(i)*0x9E3779B97F4A7C15),
		slotDone: make([]int64, 0, slots),
		slotMin:  noCompletion,
	}
}

// retireSlots drops completed off-chip loads from the MLP window,
// keeping slotMin in step. The guard makes the common case — nothing
// due yet — free.
func (c *coreState) retireSlots(now int64) {
	if c.slotMin > now {
		return
	}
	live := c.slotDone[:0]
	earliest := noCompletion
	for _, done := range c.slotDone {
		if done > now {
			live = append(live, done)
			if done < earliest {
				earliest = done
			}
		}
	}
	c.slotDone = live
	c.slotMin = earliest
}

// addSlot occupies an MLP slot until done.
func (c *coreState) addSlot(done int64) {
	c.slotDone = append(c.slotDone, done)
	if done < c.slotMin {
		c.slotMin = done
	}
}

// reset restores the state newCoreState(seed, i, ...) would produce,
// reusing the RNG and the MLP window's backing array.
func (c *coreState) reset(seed uint64, i int) {
	c.rng.Reseed(seed + uint64(i)*0x9E3779B97F4A7C15)
	c.credit = 0
	c.stallDebt = 0
	c.blockedUntil = 0
	c.slotDone = c.slotDone[:0]
	c.slotMin = noCompletion
	c.privateSeq = 0
}

// nextWake returns the next cycle at which the core does work, given it
// was just stepped at cycle now, draining whole cycles of stall debt on
// the way — exactly what the lock-step loop's prologue would have done
// one cycle at a time. Subtracting the integral part of the debt is
// exact in IEEE arithmetic (an integer ≤ the value is always on the
// value's representation grid), so the fractional remainder is
// bit-identical to repeated decrements.
func (c *coreState) nextWake(now int64) int64 {
	wake := now + 1
	if c.stallDebt >= 1 {
		whole := math.Floor(c.stallDebt)
		c.stallDebt -= whole
		wake += int64(whole)
	}
	if c.blockedUntil > wake {
		wake = c.blockedUntil
	}
	return wake
}

// The wheel's horizon: wakeups up to wheelSpan-1 cycles out land in
// their exact bucket; rarer, farther ones (deep memory-channel backlog)
// park in the bucket their cycle aliases to and lap the wheel — the
// wakeAt check filters them — until their lap comes due. 512 cycles
// covers every on-chip latency and ordinary DRAM queueing.
const (
	wheelBits = 9
	wheelSpan = 1 << wheelBits
	wheelMask = wheelSpan - 1
)

// wakeWheel is a bucketed timing wheel of per-cycle core bitmaps: bucket
// (cycle & wheelMask) holds one bit per core due (or parked) at that
// cycle. Each core has exactly one pending wakeup, recorded in wakeAt.
// Draining a bucket ascends word index then bit index, so same-cycle
// wakeups step cores in exactly the order the lock-step loop visits
// them. Scheduling is a bit-set and draining a bit-scan — no
// comparisons, which is what makes the wheel cheaper than a heap here.
type wakeWheel struct {
	wakeAt []int64  // per-core next actionable cycle
	slots  []uint64 // wheelSpan buckets × words of core bits
	words  int      // words per bucket: ceil(cores/64)
}

func newWakeWheel(cores int) wakeWheel {
	words := (cores + 63) / 64
	return wakeWheel{
		wakeAt: make([]int64, cores),
		slots:  make([]uint64, wheelSpan*words),
		words:  words,
	}
}

// schedule records core's next wakeup. Aliasing is deliberate: a cycle
// beyond the horizon sets the same bit its due cycle will occupy, and
// the drain loop re-parks it until wakeAt matches.
func (w *wakeWheel) schedule(core int, at int64) {
	w.wakeAt[core] = at
	w.slots[int(at&wheelMask)*w.words+(core>>6)] |= 1 << (core & 63)
}

// bucket returns the slice of core-bit words for a cycle's bucket.
func (w *wakeWheel) bucket(cycle int64) []uint64 {
	base := int(cycle&wheelMask) * w.words
	return w.slots[base : base+w.words]
}

// kernel is the shared machine scaffolding both simulators instantiate:
// the wakeup schedule, LLC bank and memory-channel occupancy, the
// coherence directory, and stat accumulation.
type kernel struct {
	cfg    cfgDerived
	banks  []int64 // next cycle each LLC bank can accept a request
	chans  []int64 // next cycle each memory channel can start a line
	dir    *cache.Directory
	now    int64
	sched  wakeWheel
	model  coreModel
	states []*coreState // model.core(i) for every core, devirtualized

	// measured stats
	instructions  uint64
	llcAccesses   uint64
	llcMisses     uint64
	llcLatencySum uint64
	offChipLines  uint64
}

// newKernel builds the scaffolding for a defaults-applied Config.
func newKernel(cfg Config) (kernel, error) {
	d := derive(cfg)
	dir, err := cache.NewDirectory(min(cfg.Cores, 64))
	if err != nil {
		return kernel{}, err
	}
	return kernel{
		cfg:   d,
		banks: make([]int64, d.banks),
		chans: make([]int64, cfg.MemChannels),
		dir:   dir,
	}, nil
}

// attach mounts the core model and schedules every core's first wakeup
// at the current cycle. Core scheduling state is resolved once here —
// the run loops touch it every event or poll, too hot for an interface
// call. A pooled machine re-attaching with an unchanged core count
// reuses the wheel's buckets and the state slice in place.
func (k *kernel) attach(model coreModel) {
	k.model = model
	words := (k.cfg.Cores + 63) / 64
	if len(k.states) == k.cfg.Cores && k.sched.words == words {
		clear(k.sched.slots)
		clear(k.sched.wakeAt)
	} else {
		k.states = make([]*coreState, k.cfg.Cores)
		k.sched = newWakeWheel(k.cfg.Cores)
	}
	for i := 0; i < k.cfg.Cores; i++ {
		k.states[i] = model.core(i)
		k.sched.schedule(i, k.now)
	}
}

// lockstepKernel routes Run/RunStructural onto the lock-step reference
// kernel; see UseLockstepKernel.
var lockstepKernel atomic.Bool

// UseLockstepKernel selects the lock-step reference kernel for
// subsequent Run/RunStructural calls (true) or the event-scheduled
// kernel (false, the default). Results are byte-identical either way;
// the switch exists so benchmark harnesses (`soproc -bench`, the
// BenchmarkKernel* pair) can measure the event kernel's speedup on
// unmodified workloads. Do not toggle while simulations are running.
func UseLockstepKernel(on bool) { lockstepKernel.Store(on) }

// simulateOn runs the warmup and measured windows on the selected
// kernel, with the concrete machine type M devirtualizing the step
// calls.
func simulateOn[M coreModel](k *kernel, model M, warmup, measure int, lockstep bool) {
	if lockstep {
		runLockstepOn(k, model, warmup)
		k.resetStats()
		runLockstepOn(k, model, measure)
		return
	}
	runEvent(k, model, warmup)
	k.resetStats()
	runEvent(k, model, measure)
}

// run advances the machine by the given number of cycles on the wakeup
// schedule; see runEvent. (Interface-typed form for tests; simulators
// call runEvent/runLockstepOn with their concrete type.)
func (k *kernel) run(cycles int) { runEvent(k, k.model, cycles) }

// runEvent advances the machine by the given number of cycles on the
// wakeup schedule. Wakeups past the window stay queued: a core blocked
// across the warmup/measure boundary resumes at the same cycle the
// lock-step loop would have resumed it.
//
// The loop is generic over the concrete machine type so the per-event
// stepActive call — the hottest indirect call in the simulator —
// devirtualizes when a machine runs itself (simulators pass their
// concrete type; the kernel.run wrapper keeps the interface form for
// tests).
func runEvent[M coreModel](k *kernel, model M, cycles int) {
	end := k.now + int64(cycles)
	w := &k.sched
	for t := k.now; t < end; t++ {
		bucket := w.bucket(t)
		for wi := range bucket {
			word := bucket[wi]
			if word == 0 {
				continue
			}
			// Drain a snapshot: wakeups scheduled while stepping — a
			// core rescheduling itself exactly one lap out, or a parked
			// core re-parking — land back in the live bucket for a
			// future lap, not in this drain.
			bucket[wi] = 0
			for word != 0 {
				core := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				if w.wakeAt[core] > t {
					// Beyond-horizon wakeup lapping the wheel: park it
					// in the same bucket for the next lap.
					bucket[wi] |= 1 << (core & 63)
					continue
				}
				k.now = t
				model.stepActive(core)
				w.schedule(core, k.states[core].nextWake(t))
			}
		}
	}
	k.now = end
}

// runLockstepOn advances the machine with the seed kernel's cycle loop —
// polling every core every cycle — as the behavioural reference for the
// golden equivalence tests and the benchmark baseline.
func runLockstepOn[M coreModel](k *kernel, model M, cycles int) {
	end := k.now + int64(cycles)
	for ; k.now < end; k.now++ {
		for i := 0; i < k.cfg.Cores; i++ {
			c := k.states[i]
			if c.stallDebt >= 1 {
				c.stallDebt--
				continue
			}
			if k.now < c.blockedUntil {
				continue
			}
			model.stepActive(i)
		}
	}
}

func (k *kernel) resetStats() {
	k.instructions = 0
	k.llcAccesses = 0
	k.llcMisses = 0
	k.llcLatencySum = 0
	k.offChipLines = 0
	k.dir.ResetStats()
}

// isMissLatency distinguishes off-chip completions from LLC hits by
// magnitude (misses always include the DRAM latency).
func (k *kernel) isMissLatency(lat int64) bool {
	return lat >= k.cfg.memLat
}

// bankReady routes a request through the network to a bank, queues on
// the bank's accept rate, and returns the cycle the bank's data is
// ready.
func (k *kernel) bankReady(bank int) int64 {
	arrive := k.now + k.cfg.netLat
	start := arrive
	if k.banks[bank] > start {
		start = k.banks[bank]
	}
	k.banks[bank] = start + k.cfg.bankBusy // pipelined bank accept rate
	return start + k.cfg.bankLat
}

// channelDone occupies a memory channel for occupancy cycles starting no
// earlier than ready and returns the line's end-to-end completion cycle.
func (k *kernel) channelDone(ch int, ready, occupancy int64) int64 {
	start := ready
	if k.chans[ch] > start {
		start = k.chans[ch]
	}
	k.chans[ch] = start + occupancy
	return start + k.cfg.memLat + k.cfg.replyLat
}

// timeAccess models the statistical request path: the bank and (on a
// miss) the channel are drawn from the core's RNG, and a dirty eviction
// accompanies a calibrated fraction of fills.
func (k *kernel) timeAccess(rng *stats.Rng, miss, forwarded bool) int64 {
	k.llcAccesses++
	ready := k.bankReady(rng.Intn(k.cfg.banks))

	var done int64
	switch {
	case miss:
		k.llcMisses++
		k.offChipLines++
		occupancy := k.cfg.lineCycles
		if rng.Float64() < k.cfg.writebackPr {
			// A dirty eviction accompanies the fill and occupies the
			// channel for another line, off the critical path.
			k.offChipLines++
			occupancy += k.cfg.lineCycles
		}
		done = k.channelDone(rng.Intn(len(k.chans)), ready, occupancy)
	case forwarded:
		// LLC directory forwards to the owning L1 and back.
		done = ready + 2*k.cfg.netLat + k.cfg.replyLat
	default:
		done = ready + k.cfg.replyLat
	}
	k.llcLatencySum += uint64(done - k.now)
	return done
}

// timeAccessBank models the same path for a structural access whose
// bank is determined by the block address; channels are interleaved by
// bank and writeback traffic is accounted by the real victim arrays.
func (k *kernel) timeAccessBank(bank int, miss, forwarded bool) int64 {
	k.llcAccesses++
	ready := k.bankReady(bank)

	var done int64
	switch {
	case miss:
		k.llcMisses++
		k.offChipLines++
		done = k.channelDone(int(uint64(bank)%uint64(len(k.chans))), ready, k.cfg.lineCycles)
	case forwarded:
		done = ready + 2*k.cfg.netLat + k.cfg.replyLat
	default:
		done = ready + k.cfg.replyLat
	}
	k.llcLatencySum += uint64(done - k.now)
	return done
}

func (k *kernel) result() Result {
	cycles := k.cfg.MeasureCycles
	appInstr := float64(k.instructions) * k.cfg.swEff
	r := Result{
		Cycles:          cycles,
		Instructions:    uint64(appInstr),
		AppIPC:          appInstr / float64(cycles),
		LLCAccesses:     k.llcAccesses,
		LLCMisses:       k.llcMisses,
		SnoopRatePct:    k.dirSnoopPct(),
		OffChipGBs:      float64(k.offChipLines) * tech.CacheLineBytes * tech.ClockGHz / float64(cycles),
		DirectoryBlocks: k.dir.TrackedBlocks(),
	}
	r.PerCoreIPC = r.AppIPC / float64(k.cfg.Cores)
	if k.llcAccesses > 0 {
		r.AvgLLCLatency = float64(k.llcLatencySum) / float64(k.llcAccesses)
	}
	return r
}

// dirSnoopPct scales the directory's snoop rate (over tracked shared
// accesses) to the full LLC access stream, as Figure 4.3 plots it.
func (k *kernel) dirSnoopPct() float64 {
	if k.llcAccesses == 0 {
		return 0
	}
	return 100 * float64(k.dir.SnoopAccesses) / float64(k.llcAccesses)
}
