package sim

import (
	"context"
	"sync"

	"scaleout/internal/exp/engine"
)

// RunStructuralBatch simulates a batch of structural configurations,
// amortizing machine setup across points of the same allocation
// geometry: the batch is grouped by machineShape, and each group runs
// on one machine acquired once and reset in place between points, so a
// shape-homogeneous sweep pays pool traffic (and, worst case,
// construction) once per group instead of once per point. This also
// sidesteps the pool's global retention bound: a shape-diverse sweep
// that would thrash the 2×GOMAXPROCS-machine pool holds each group's
// machine for the group's whole lifetime.
//
// Results are byte-identical to calling RunStructural per
// configuration, in input order (reset restores cold state exactly; the
// batched-vs-individual golden test asserts it). The first error aborts
// the batch.
func RunStructuralBatch(cfgs []StructuralConfig) ([]StructuralResult, error) {
	return RunStructuralBatchContext(context.Background(), cfgs)
}

// RunStructuralBatchContext is RunStructuralBatch on the context's
// experiment engine: shape groups fan out across the engine's worker
// pool (large groups are chunked so one hot shape cannot serialize the
// batch), and cancellation aborts between points.
//
// Do not call it from inside a computation already running on the same
// engine: each group chunk holds a worker slot for its duration, so
// nested calls can exhaust the pool and deadlock (see Engine.Do).
func RunStructuralBatchContext(ctx context.Context, cfgs []StructuralConfig) ([]StructuralResult, error) {
	out := make([]StructuralResult, len(cfgs))
	if len(cfgs) == 0 {
		return out, nil
	}
	canon := make([]StructuralConfig, len(cfgs))
	groups := make(map[machineShape][]int)
	var order []machineShape // deterministic group launch order
	for i, c := range cfgs {
		cc, err := c.Canonical()
		if err != nil {
			return nil, err
		}
		canon[i] = cc
		sh := shapeOf(cc)
		if _, ok := groups[sh]; !ok {
			order = append(order, sh)
		}
		groups[sh] = append(groups[sh], i)
	}

	e := engine.FromContext(ctx)
	lockstep := lockstepKernel.Load()

	// Chunk each shape group so a single dominant shape still spreads
	// across the pool; every chunk keeps the one-machine amortization
	// for its own points.
	type chunk struct{ idxs []int }
	var chunks []chunk
	for _, sh := range order {
		idxs := groups[sh]
		per := (len(idxs) + e.Workers() - 1) / e.Workers()
		if per < 1 {
			per = 1
		}
		for start := 0; start < len(idxs); start += per {
			end := min(start+per, len(idxs))
			chunks = append(chunks, chunk{idxs: idxs[start:end]})
		}
	}

	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for ci, ch := range chunks {
		wg.Add(1)
		go func(ci int, idxs []int) {
			defer wg.Done()
			_, errs[ci] = e.Do(ctx, "", func() (any, error) {
				return nil, runStructChunk(ctx, canon, idxs, out, lockstep)
			})
		}(ci, ch.idxs)
	}
	wg.Wait()
	if err := engine.FirstError(errs, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// runStructChunk runs one same-shape slice of the batch on a single
// machine, resetting it in place between points.
func runStructChunk(ctx context.Context, canon []StructuralConfig, idxs []int, out []StructuralResult, lockstep bool) error {
	var m *structMachine
	defer func() {
		if m != nil {
			releaseStructMachine(m)
		}
	}()
	for _, i := range idxs {
		if err := ctx.Err(); err != nil {
			return err
		}
		cfg := canon[i]
		var err error
		if m == nil {
			m, err = acquireStructMachine(cfg)
		} else {
			err = m.reset(cfg)
		}
		if err != nil {
			return err
		}
		if lockstep {
			runLockstepOn(&m.kernel, m, cfg.WarmupCycles)
			m.resetStructStats()
			runLockstepOn(&m.kernel, m, cfg.MeasureCycles)
		} else {
			runEvent(&m.kernel, m, cfg.WarmupCycles)
			m.resetStructStats()
			runEvent(&m.kernel, m, cfg.MeasureCycles)
		}
		if m.err != nil {
			// A poisoned machine is dropped, not pooled or reused.
			err := m.err
			m = nil
			return err
		}
		out[i] = m.structResult()
	}
	return nil
}
