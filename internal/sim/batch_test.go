package sim

import (
	"context"
	"reflect"
	"testing"

	"scaleout/internal/noc"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// Golden batch-equivalence test: RunStructuralBatch must return exactly
// what per-point RunStructural returns, in input order, across a batch
// that mixes machine shapes and repeats a configuration — the grouping,
// chunking, and in-place resets must be invisible in the results.
func TestStructuralBatchMatchesIndividual(t *testing.T) {
	ws := workload.Suite()
	cfgs := []StructuralConfig{
		{Workload: ws[0], CoreType: tech.OoO, Cores: 16, LLCMB: 4},
		{Workload: ws[1], CoreType: tech.OoO, Cores: 16, LLCMB: 4}, // same shape, different workload
		{Workload: ws[0], CoreType: tech.OoO, Cores: 8, LLCMB: 2,
			Net: noc.New(noc.Mesh, 8)}, // different shape
		{Workload: ws[0], CoreType: tech.OoO, Cores: 16, LLCMB: 4}, // repeat of [0]
		{Workload: ws[2], CoreType: tech.OoO, Cores: 16, LLCMB: 4, Seed: 7},
	}
	got, err := RunStructuralBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cfgs) {
		t.Fatalf("batch returned %d results for %d configs", len(got), len(cfgs))
	}
	for i, cfg := range cfgs {
		want, err := RunStructural(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("point %d: batch %+v != individual %+v", i, got[i], want)
		}
	}
}

// An already-cancelled context aborts the batch instead of running it.
func TestStructuralBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ws := workload.Suite()
	_, err := RunStructuralBatchContext(ctx, []StructuralConfig{
		{Workload: ws[0], CoreType: tech.OoO, Cores: 16, LLCMB: 4},
	})
	if err == nil {
		t.Fatal("cancelled batch returned no error")
	}
}

// A config that fails canonicalization fails the whole batch up front —
// no partial results.
func TestStructuralBatchBadConfig(t *testing.T) {
	ws := workload.Suite()
	_, err := RunStructuralBatch([]StructuralConfig{
		{Workload: ws[0], CoreType: tech.OoO, Cores: 16, LLCMB: 4},
		{Workload: ws[0], CoreType: tech.OoO, Cores: -1, LLCMB: 4},
	})
	if err == nil {
		t.Fatal("batch with invalid config returned no error")
	}
}

// An empty batch is a no-op.
func TestStructuralBatchEmpty(t *testing.T) {
	got, err := RunStructuralBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}
