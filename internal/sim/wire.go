package sim

import (
	"bytes"
	"encoding/json"
	"fmt"

	"scaleout/internal/noc"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// WireVersion is the version of the canonical wire encoding this
// process speaks. A receiver that decodes a WireConfig with any other
// wire_version rejects it with a *WireVersionError — never a guess at
// compatibility — so mixed-version clusters fail loudly and per-point
// instead of corrupting memo keys.
const WireVersion = 1

// WireConfig is the versioned, self-describing wire form of a Config or
// StructuralConfig: the single point representation every layer shares,
// from figure generators through the cluster coordinator to a replica's
// /v1/sweep handler. Unlike the legacy symbolic sweep fields, it
// carries the complete interconnect (noc.Wire, including WireDelta,
// Concentration, ExpressLinks, TileEdge, LinkBits) and the full
// workload specification (workload.Wire), so *every* point a figure can
// construct is representable — nothing silently "never leaves the
// process".
//
// Producers build one with Config.Wire or StructuralConfig.Wire, which
// canonicalize first and enforce round-trip key equality; consumers
// decode bytes with UnmarshalWire and materialize the configuration
// with Decode. The memo key is always re-derived from the decoded form
// (Config.Key / StructuralConfig.Key), never carried on the wire.
type WireConfig struct {
	// Version is the encoding version (WireVersion); wire_version is
	// the first field a receiver checks.
	Version int `json:"wire_version"`

	// Kind selects the simulator: "sim" or "structural".
	Kind string `json:"kind"`

	Workload workload.Wire `json:"workload"`

	// Core is the core microarchitecture token: "conventional", "ooo",
	// or "in-order".
	Core string `json:"core"`

	Cores int     `json:"cores"`
	LLCMB float64 `json:"llc_mb"`

	Net noc.Wire `json:"net"`

	MemChannels   int    `json:"mem_channels"`
	WarmupCycles  int    `json:"warmup_cycles"`
	MeasureCycles int    `json:"measure_cycles"`
	Seed          uint64 `json:"seed"`

	// DisableSWScaling applies to kind "sim" only.
	DisableSWScaling bool `json:"disable_sw_scaling,omitempty"`
	// L1MSHRs applies to kind "structural" only.
	L1MSHRs int `json:"l1_mshrs,omitempty"`
}

// WireVersionError reports a WireConfig whose wire_version this process
// does not speak. The serve layer maps it to a structured 400 carrying
// the offending version; the cluster coordinator treats that response
// as permanent for the replica (no retry, no markDown).
type WireVersionError struct {
	// Version is the wire_version the peer sent.
	Version int
}

// Error names the unsupported version and the one this process speaks.
func (e *WireVersionError) Error() string {
	return fmt.Sprintf("sim: unsupported wire_version %d (this process speaks %d)", e.Version, WireVersion)
}

// Unroutable is the route payload of an engine point whose
// configuration could not be converted to the wire form — an invalid
// configuration, or one a future Config field is not yet carried for
// (the round-trip key check in Wire catches that regression). Shipping
// this marker instead of a nil payload keeps the failure visible: the
// cluster coordinator counts and logs it before declining, so
// representability gaps surface in /statsz rather than silently
// computing locally.
type Unroutable struct {
	// Key is the point's memo fingerprint; Err says why it cannot
	// travel.
	Key string
	Err error
}

// coreWireName maps a core type to its wire token; ok is false for
// values outside the enum.
func coreWireName(t tech.CoreType) (string, bool) {
	switch t {
	case tech.Conventional:
		return "conventional", true
	case tech.OoO:
		return "ooo", true
	case tech.InOrder:
		return "in-order", true
	default:
		return "", false
	}
}

// parseWireCore is coreWireName's inverse.
func parseWireCore(name string) (tech.CoreType, bool) {
	switch name {
	case "conventional":
		return tech.Conventional, true
	case "ooo":
		return tech.OoO, true
	case "in-order":
		return tech.InOrder, true
	default:
		return 0, false
	}
}

// Wire converts the configuration to its canonical wire form. The
// configuration is canonicalized first (defaults applied), so two
// Configs with equal Keys marshal identically; the conversion then
// decodes its own output and verifies the re-derived memo key matches —
// the loud failure that catches a new Config field the wire form does
// not carry yet. An error here makes the point unroutable (see
// WirePayload), never silently lossy.
func (c Config) Wire() (WireConfig, error) {
	cc, err := c.Canonical()
	if err != nil {
		return WireConfig{}, fmt.Errorf("sim: invalid config: %w", err)
	}
	core, ok := coreWireName(cc.CoreType)
	if !ok {
		return WireConfig{}, fmt.Errorf("sim: core type %v has no wire name", cc.CoreType)
	}
	w := WireConfig{
		Version:          WireVersion,
		Kind:             "sim",
		Workload:         cc.Workload.Wire(),
		Core:             core,
		Cores:            cc.Cores,
		LLCMB:            cc.LLCMB,
		Net:              cc.Net.Wire(),
		MemChannels:      cc.MemChannels,
		WarmupCycles:     cc.WarmupCycles,
		MeasureCycles:    cc.MeasureCycles,
		Seed:             cc.Seed,
		DisableSWScaling: cc.DisableSWScaling,
	}
	dec, err := w.simConfig()
	if err != nil {
		return WireConfig{}, fmt.Errorf("sim: wire round-trip: %w", err)
	}
	if dec.Key() != c.Key() {
		return WireConfig{}, fmt.Errorf("sim: wire round-trip changes the memo key for %s — a Config field is not carried by WireConfig", c.Key())
	}
	return w, nil
}

// Wire converts the structural configuration to its canonical wire
// form, with the same canonicalization and round-trip key enforcement
// as Config.Wire.
func (c StructuralConfig) Wire() (WireConfig, error) {
	cc, err := c.Canonical()
	if err != nil {
		return WireConfig{}, fmt.Errorf("sim: invalid structural config: %w", err)
	}
	core, ok := coreWireName(cc.CoreType)
	if !ok {
		return WireConfig{}, fmt.Errorf("sim: core type %v has no wire name", cc.CoreType)
	}
	w := WireConfig{
		Version:       WireVersion,
		Kind:          "structural",
		Workload:      cc.Workload.Wire(),
		Core:          core,
		Cores:         cc.Cores,
		LLCMB:         cc.LLCMB,
		Net:           cc.Net.Wire(),
		MemChannels:   cc.MemChannels,
		WarmupCycles:  cc.WarmupCycles,
		MeasureCycles: cc.MeasureCycles,
		Seed:          cc.Seed,
		L1MSHRs:       cc.L1MSHRs,
	}
	dec, err := w.structuralConfig()
	if err != nil {
		return WireConfig{}, fmt.Errorf("sim: wire round-trip: %w", err)
	}
	if dec.Key() != c.Key() {
		return WireConfig{}, fmt.Errorf("sim: wire round-trip changes the memo key for %s — a StructuralConfig field is not carried by WireConfig", c.Key())
	}
	return w, nil
}

// MarshalWire encodes the configuration's canonical wire form as JSON.
func (c Config) MarshalWire() ([]byte, error) {
	w, err := c.Wire()
	if err != nil {
		return nil, err
	}
	return json.Marshal(w)
}

// MarshalWire encodes the structural configuration's canonical wire
// form as JSON.
func (c StructuralConfig) MarshalWire() ([]byte, error) {
	w, err := c.Wire()
	if err != nil {
		return nil, err
	}
	return json.Marshal(w)
}

// UnmarshalWire decodes one wire-form configuration. The version is
// checked before anything else — an unknown wire_version returns a
// *WireVersionError even if the rest of the document has fields this
// process has never heard of — and only then is the body decoded
// strictly (unknown fields rejected). The returned WireConfig is
// syntactically decoded but not yet validated; Decode materializes and
// validates the configuration.
func UnmarshalWire(data []byte) (WireConfig, error) {
	var v struct {
		Version *int `json:"wire_version"`
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return WireConfig{}, fmt.Errorf("sim: bad wire config: %w", err)
	}
	if v.Version == nil {
		return WireConfig{}, fmt.Errorf("sim: wire config missing wire_version")
	}
	if *v.Version != WireVersion {
		return WireConfig{}, &WireVersionError{Version: *v.Version}
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w WireConfig
	if err := dec.Decode(&w); err != nil {
		return WireConfig{}, fmt.Errorf("sim: bad wire config: %w", err)
	}
	return w, nil
}

// Decode materializes the configuration the wire form describes — a
// Config for kind "sim", a StructuralConfig for kind "structural" —
// validated by the same Canonical rules that gate every locally
// constructed point (workload ranges included). The memo key is always
// re-derived from the returned value; the wire carries no key to trust.
func (w WireConfig) Decode() (any, error) {
	switch w.Kind {
	case "sim":
		c, err := w.simConfig()
		if err != nil {
			return nil, err
		}
		return c, nil
	case "structural":
		c, err := w.structuralConfig()
		if err != nil {
			return nil, err
		}
		return c, nil
	default:
		return nil, fmt.Errorf("sim: unknown wire kind %q (want sim or structural)", w.Kind)
	}
}

// fields decodes the parts shared by both simulator kinds.
func (w WireConfig) fields() (workload.Workload, tech.CoreType, noc.Config, error) {
	core, ok := parseWireCore(w.Core)
	if !ok {
		return workload.Workload{}, 0, noc.Config{}, fmt.Errorf("sim: unknown wire core %q (want conventional, ooo, or in-order)", w.Core)
	}
	net, err := w.Net.Config()
	if err != nil {
		return workload.Workload{}, 0, noc.Config{}, err
	}
	return w.Workload.Workload(), core, net, nil
}

func (w WireConfig) simConfig() (Config, error) {
	if w.L1MSHRs != 0 {
		return Config{}, fmt.Errorf("sim: l1_mshrs on a %q wire config", w.Kind)
	}
	wl, core, net, err := w.fields()
	if err != nil {
		return Config{}, err
	}
	c := Config{
		Workload: wl, CoreType: core, Cores: w.Cores, LLCMB: w.LLCMB,
		Net: net, MemChannels: w.MemChannels,
		WarmupCycles: w.WarmupCycles, MeasureCycles: w.MeasureCycles,
		Seed: w.Seed, DisableSWScaling: w.DisableSWScaling,
	}
	if _, err := c.Canonical(); err != nil {
		return Config{}, err
	}
	return c, nil
}

func (w WireConfig) structuralConfig() (StructuralConfig, error) {
	if w.DisableSWScaling {
		return StructuralConfig{}, fmt.Errorf("sim: disable_sw_scaling on a %q wire config", w.Kind)
	}
	wl, core, net, err := w.fields()
	if err != nil {
		return StructuralConfig{}, err
	}
	c := StructuralConfig{
		Workload: wl, CoreType: core, Cores: w.Cores, LLCMB: w.LLCMB,
		Net: net, MemChannels: w.MemChannels,
		WarmupCycles: w.WarmupCycles, MeasureCycles: w.MeasureCycles,
		Seed: w.Seed, L1MSHRs: w.L1MSHRs,
	}
	if _, err := c.Canonical(); err != nil {
		return StructuralConfig{}, err
	}
	return c, nil
}

// WirePayload returns the route payload engine points attach to this
// configuration: its wire form, or an Unroutable marker when conversion
// fails, so the failure is counted at the coordinator instead of
// vanishing into a nil payload.
func (c Config) WirePayload() any {
	w, err := c.Wire()
	if err != nil {
		return Unroutable{Key: c.Key(), Err: err}
	}
	return w
}

// WirePayload returns the route payload for a structural point; see
// Config.WirePayload.
func (c StructuralConfig) WirePayload() any {
	w, err := c.Wire()
	if err != nil {
		return Unroutable{Key: c.Key(), Err: err}
	}
	return w
}

// Run executes the statistical simulator on the configuration — the
// method form of Run(c), giving generic engine points (exp.SimPoint)
// one call surface across both simulator kinds.
func (c Config) Run() (Result, error) { return Run(c) }

// Run executes the structural simulator on the configuration; see
// Config.Run.
func (c StructuralConfig) Run() (StructuralResult, error) { return RunStructural(c) }
