package sim

import (
	"testing"

	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// BenchmarkStructMiss measures the structural L1-miss service path in
// isolation — MSHR allocate, LLC bank lookup, victim-cache probe, bank
// and channel timing, pending bookkeeping — the code an L1 miss executes
// inside stepActive. The machine is built once; the measured loop
// replays misses over a spread of blocks with periodic retirement so the
// MSHR file cycles through realistic occupancies.
func BenchmarkStructMiss(b *testing.B) {
	cfg := StructuralConfig{
		Workload: workload.Suite()[0], CoreType: tech.OoO, Cores: 16, LLCMB: 4,
	}
	if err := cfg.applyDefaults(); err != nil {
		b.Fatal(err)
	}
	m, err := newStructMachine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	c := &m.cores[0]
	gen := c.gen
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !gen.WantData() {
			continue
		}
		acc := gen.DataAccess()
		if _, stalled := m.structMiss(0, c, acc); stalled {
			// Retire everything outstanding — every pending entry, so
			// no MSHR slot leaks — and advance time so the next misses
			// allocate freely.
			m.now = c.pendingMin + 1
			for _, p := range c.pending {
				c.mshr.Complete(p.block)
			}
			c.pending = c.pending[:0]
			c.pendingMin = noCompletion
		}
	}
}

// BenchmarkStructuralPooled/Fresh track the machine pool's contribution:
// the same sweep point run through recycled machines vs a fresh
// construction (multi-MB LLC arrays, L1s, wheel) per run.
func benchStructural16(b *testing.B, pooled bool) {
	b.Helper()
	cfg := StructuralConfig{
		Workload: workload.Suite()[0], CoreType: tech.OoO, Cores: 16, LLCMB: 4,
	}
	UseMachinePool(pooled)
	defer UseMachinePool(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunStructural(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStructuralPooled(b *testing.B) { benchStructural16(b, true) }
func BenchmarkStructuralFresh(b *testing.B)  { benchStructural16(b, false) }
