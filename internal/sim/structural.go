package sim

import (
	"fmt"
	"math/bits"

	"scaleout/internal/cache"
	"scaleout/internal/exp/engine"
	"scaleout/internal/noc"
	"scaleout/internal/tech"
	"scaleout/internal/trace"
	"scaleout/internal/workload"
)

// StructuralConfig describes a run of the structural simulator: instead
// of drawing cache behaviour from the calibrated workload curves, each
// core replays a synthetic reference stream (internal/trace) against
// real set-associative L1 arrays with MSHRs, and the LLC is a real
// banked tag array. Miss rates therefore *emerge* from the stream — an
// independent cross-check of the statistical calibration, and the mode
// to use for microarchitectural what-ifs (associativity, MSHR counts,
// bank counts) that the statistical model cannot see.
type StructuralConfig struct {
	Workload workload.Workload
	CoreType tech.CoreType
	Cores    int
	LLCMB    float64
	Net      noc.Config

	MemChannels   int
	WarmupCycles  int // default 150000 (the LLC must fill)
	MeasureCycles int
	Seed          uint64

	L1MSHRs int // default 32 (Table 2.2)
}

// StructuralResult extends the timing results with the emergent cache
// behaviour of the structural run. As with Result, the JSON field names
// are the soprocd sweep API's wire format.
type StructuralResult struct {
	Result
	L1IMPKI      float64 `json:"l1i_mpki"`       // emergent L1-I misses per kilo-instruction
	L1DMPKI      float64 `json:"l1d_mpki"`       // emergent L1-D misses per kilo-instruction
	LLCMissPct   float64 `json:"llc_miss_pct"`   // emergent LLC miss ratio (%)
	MSHRStallPct float64 `json:"mshr_stall_pct"` // % of cycles lost to full MSHRs
}

func (c *StructuralConfig) applyDefaults() error {
	if c.Cores < 1 {
		return fmt.Errorf("sim: %d cores", c.Cores)
	}
	if c.LLCMB <= 0 {
		return fmt.Errorf("sim: %vMB LLC", c.LLCMB)
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if c.Net.Kind == 0 && c.Net.Cores == 0 {
		c.Net = noc.New(noc.Crossbar, c.Cores)
	}
	if c.MemChannels < 1 {
		c.MemChannels = 1 + c.Cores/16
	}
	if c.WarmupCycles <= 0 {
		c.WarmupCycles = 60000
	}
	if c.MeasureCycles <= 0 {
		c.MeasureCycles = 50000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.L1MSHRs <= 0 {
		c.L1MSHRs = 32
	}
	return nil
}

// Canonical returns the configuration with every default applied, for
// canonical fingerprinting by experiment engines (see Config.Canonical).
func (c StructuralConfig) Canonical() (StructuralConfig, error) {
	err := c.applyDefaults()
	return c, err
}

// Key canonically fingerprints the defaults-applied configuration — the
// memo key under which experiment engines deduplicate identical
// structural sweep points.
func (c StructuralConfig) Key() string {
	cc, err := c.Canonical()
	if err != nil {
		cc = c
	}
	return "structural:" + engine.Fingerprint(cc)
}

// base maps the structural configuration onto the statistical Config the
// shared kernel derives its bank, channel, and directory sizing from.
func (c StructuralConfig) base() Config {
	return Config{
		Workload: c.Workload, CoreType: c.CoreType, Cores: c.Cores,
		LLCMB: c.LLCMB, Net: c.Net, MemChannels: c.MemChannels,
		WarmupCycles: c.WarmupCycles, MeasureCycles: c.MeasureCycles,
		Seed: c.Seed,
	}
}

// pendingMiss is one outstanding L1 miss: the block and the cycle its
// fill returns.
type pendingMiss struct {
	block uint64
	done  int64
}

// structCore is the per-core structural state.
type structCore struct {
	coreState
	gen  *trace.Generator
	l1i  *cache.SetAssoc
	l1d  *cache.SetAssoc
	mshr *cache.MSHR
	// outstanding MSHR entries and their completion cycles. A small
	// slice beats a map here: the retire scan runs every active cycle,
	// and every use (retire filter, earliest-completion min, secondary
	// lookup) is order-insensitive. The backing array is sized to the
	// MSHR capacity up front, so the miss path never allocates.
	pending []pendingMiss
	// pendingMin caches min(pending.done) (noCompletion when empty) so
	// the per-cycle retire scan and the MSHR-full earliest-completion
	// lookup are O(1) in the common case.
	pendingMin int64

	instrs     uint64
	l1iMisses  uint64
	l1dMisses  uint64
	mshrStalls uint64
}

// structMachine is the structural simulator: the shared kernel's timing
// spine (scheduler, banks, channels, directory) plus real cache
// structures replayed by synthetic reference streams.
type structMachine struct {
	kernel
	scfg    StructuralConfig
	cores   []structCore
	llc     []*cache.SetAssoc // one array per bank
	victims []*cache.Victim   // 16-entry victim cache per bank (Table 2.2)
	shape   machineShape      // allocation geometry, the pool's reuse key

	// Bank routing: the harness's bank counts are powers of two, where
	// selection is a mask and the index a shift instead of the generic
	// divide the miss path would otherwise pay.
	bankPow2  bool
	bankMask  uint64
	bankShift uint

	// err records a structural invariant violation (an MSHR file full
	// with nothing outstanding) discovered mid-run; the offending core
	// is parked and the error surfaces when the run returns.
	err error
}

// RunStructural simulates the configuration in structural mode.
func RunStructural(cfg StructuralConfig) (StructuralResult, error) {
	return runStructuralKernel(cfg, lockstepKernel.Load())
}

// RunStructuralLockstep simulates the configuration on the lock-step
// reference kernel; see RunLockstep.
func RunStructuralLockstep(cfg StructuralConfig) (StructuralResult, error) {
	return runStructuralKernel(cfg, true)
}

func runStructuralKernel(cfg StructuralConfig, lockstep bool) (StructuralResult, error) {
	if err := cfg.applyDefaults(); err != nil {
		return StructuralResult{}, err
	}
	m, err := acquireStructMachine(cfg)
	if err != nil {
		return StructuralResult{}, err
	}
	if lockstep {
		runLockstepOn(&m.kernel, m, cfg.WarmupCycles)
		m.resetStructStats()
		runLockstepOn(&m.kernel, m, cfg.MeasureCycles)
	} else {
		runEvent(&m.kernel, m, cfg.WarmupCycles)
		m.resetStructStats()
		runEvent(&m.kernel, m, cfg.MeasureCycles)
	}
	if m.err != nil {
		// A poisoned machine is dropped, not pooled.
		return StructuralResult{}, m.err
	}
	res := m.structResult()
	releaseStructMachine(m)
	return res, nil
}

func newStructMachine(cfg StructuralConfig) (*structMachine, error) {
	k, err := newKernel(cfg.base())
	if err != nil {
		return nil, err
	}
	spec := tech.Cores(cfg.CoreType)
	m := &structMachine{kernel: k, scfg: cfg, shape: shapeOf(cfg)}
	banks := m.cfg.banks
	bankBytes := int(cfg.LLCMB * 1024 * 1024 / float64(banks))
	m.llc = make([]*cache.SetAssoc, banks)
	m.victims = make([]*cache.Victim, banks)
	for i := range m.llc {
		arr, err := cache.NewSetAssoc(bankBytes, tech.LLCWays)
		if err != nil {
			return nil, fmt.Errorf("sim: LLC bank: %w", err)
		}
		m.llc[i] = arr
		vc, err := cache.NewVictim(16)
		if err != nil {
			return nil, err
		}
		m.victims[i] = vc
	}
	m.cores = make([]structCore, cfg.Cores)
	for i := range m.cores {
		gen, err := trace.NewFromWorkload(cfg.Workload, cfg.CoreType, i, cfg.Seed)
		if err != nil {
			return nil, err
		}
		l1i, err := cache.NewSetAssoc(spec.L1IKB*1024, spec.L1Ways)
		if err != nil {
			return nil, err
		}
		l1d, err := cache.NewSetAssoc(spec.L1DKB*1024, spec.L1Ways)
		if err != nil {
			return nil, err
		}
		mshr, err := cache.NewMSHR(cfg.L1MSHRs)
		if err != nil {
			return nil, err
		}
		m.cores[i] = structCore{
			coreState: newCoreState(cfg.Seed, i, m.cfg.slots),
			gen:       gen, l1i: l1i, l1d: l1d, mshr: mshr,
			pending:    make([]pendingMiss, 0, cfg.L1MSHRs),
			pendingMin: noCompletion,
		}
	}
	m.initBankRouting()
	m.warmLLC()
	m.attach(m)
	return m, nil
}

// reset restores the machine to the exact state newStructMachine(cfg)
// would construct — cold caches, reseeded streams, warm-start LLC image
// — while reusing every allocation. The pool only pairs a machine with
// configurations of identical shape (shapeOf), so all array lengths
// already match; everything semantic is re-derived from cfg here.
func (m *structMachine) reset(cfg StructuralConfig) error {
	m.cfg = derive(cfg.base())
	m.scfg = cfg
	m.now = 0
	m.err = nil
	clear(m.banks)
	clear(m.chans)
	m.dir.Reset()
	m.resetStats()
	for i := range m.cores {
		c := &m.cores[i]
		gen, err := trace.NewFromWorkload(cfg.Workload, cfg.CoreType, i, cfg.Seed)
		if err != nil {
			return err
		}
		c.gen = gen
		c.coreState.reset(cfg.Seed, i)
		c.l1i.Reset()
		c.l1d.Reset()
		c.mshr.Reset()
		c.pending = c.pending[:0]
		c.pendingMin = noCompletion
		c.instrs, c.l1iMisses, c.l1dMisses, c.mshrStalls = 0, 0, 0, 0
	}
	m.initBankRouting()
	m.warmLLC() // owns LLC bank and victim state: copies or rebuilds it
	m.attach(m)
	return nil
}

// initBankRouting precomputes the bank-selection mask and index shift
// when the bank count is a power of two (it always is for the thesis's
// configurations).
func (m *structMachine) initBankRouting() {
	banks := uint64(len(m.llc))
	m.bankPow2 = banks&(banks-1) == 0
	if m.bankPow2 {
		m.bankMask = banks - 1
		m.bankShift = uint(bits.TrailingZeros64(banks))
	}
}

// bankOf routes a block to its LLC bank and strips the bank-selection
// bits off the in-bank index, so every set of the bank array is usable.
func (m *structMachine) bankOf(block uint64) (int, uint64) {
	if m.bankPow2 {
		return int(block & m.bankMask), block >> m.bankShift
	}
	banks := uint64(len(m.llc))
	return int(block % banks), block / banks
}

// warmLLC applies the checkpoint-style warm start (Section 3.3:
// simulations launch from checkpoints with warmed caches): the LLC is
// pre-filled with the blocks a steady-state system would hold, and the
// remaining warmup cycles settle the L1s, queues, and directory. The
// post-fill image depends only on the workload's footprint and the bank
// geometry, so it is computed once per (footprint, banks, bank size)
// and replayed into pooled machines with array copies instead of
// hundreds of thousands of tag-array inserts.
//
// warmLLC owns the LLC bank and victim state outright: an image hit
// overwrites it completely, and only the (once per key) miss path pays
// to reset the arrays before the fill. Callers must not reset them
// first — on the pooled path that would touch every byte twice.
func (m *structMachine) warmLLC() {
	key := prefillKey{
		instrFootprintMB: m.scfg.Workload.InstrFootprintMB,
		banks:            len(m.llc),
		bankBytes:        m.llc[0].CapacityBytes(),
	}
	if img, ok := prefillImages.load(key); ok {
		for i := range m.llc {
			m.llc[i].CopyStateFrom(img.llc[i])
			m.victims[i].CopyStateFrom(img.victims[i])
		}
		m.offChipLines += img.offChipLines
		return
	}
	for i := range m.llc {
		m.llc[i].Reset()
		m.victims[i].Reset()
	}
	before := m.offChipLines
	for _, block := range m.cores[0].gen.ResidentBlocks() {
		m.llcInsert(block, false)
	}
	img := &prefillImage{
		llc:          make([]*cache.SetAssoc, len(m.llc)),
		victims:      make([]*cache.Victim, len(m.victims)),
		offChipLines: m.offChipLines - before,
	}
	for i := range m.llc {
		arr, err := cache.NewSetAssoc(m.llc[i].CapacityBytes(), m.llc[i].Ways())
		if err != nil {
			return // geometry was already validated; keep the live fill
		}
		arr.CopyStateFrom(m.llc[i])
		img.llc[i] = arr
		vc, err := cache.NewVictim(m.victims[i].Capacity())
		if err != nil {
			return
		}
		vc.CopyStateFrom(m.victims[i])
		img.victims[i] = vc
	}
	prefillImages.store(key, img)
}

func (m *structMachine) resetStructStats() {
	m.resetStats()
	for i := range m.cores {
		c := &m.cores[i]
		c.instrs, c.l1iMisses, c.l1dMisses, c.mshrStalls = 0, 0, 0, 0
	}
}

// core returns core i's scheduling state to the kernel.
func (m *structMachine) core(i int) *coreState { return &m.cores[i].coreState }

// stepActive advances core i through one active cycle of the structural
// path: MSHR/MLP retirement, then the issue loop through the real L1s.
func (m *structMachine) stepActive(i int) {
	c := &m.cores[i]
	// Retire completed misses: free MSHR entries and MLP slots. The
	// guards skip the scans while nothing is due — most active cycles.
	if c.pendingMin <= m.now {
		livePending := c.pending[:0]
		earliest := noCompletion
		for _, p := range c.pending {
			if p.done > m.now {
				livePending = append(livePending, p)
				if p.done < earliest {
					earliest = p.done
				}
			} else {
				c.mshr.Complete(p.block)
			}
		}
		c.pending = livePending
		c.pendingMin = earliest
	}
	c.retireSlots(m.now)

	// The issue budget and instruction counters stay in registers for
	// the whole step and commit once at the end — per-instruction
	// memory RMWs on them were a measurable slice of the issue loop.
	credit := c.credit + m.cfg.baseIPC
	issued := uint64(0)
	for n := 0; credit >= 1 && n < m.cfg.width; n++ {
		credit--
		issued++

		// Instruction fetch through the real L1-I. The gate draw is
		// inlined here; the access body runs one fetch in twelve.
		if c.gen.WantInstr() {
			acc := c.gen.InstrAccess()
			if !c.l1i.Lookup(acc.Block) {
				c.l1iMisses++
				done, stalled := m.structMiss(i, c, acc)
				if !stalled {
					c.l1i.Insert(acc.Block, false)
					c.blockedUntil = done // front end stalls on I-misses
				}
				goto commit
			}
		}

		// Data access through the real L1-D.
		if !c.gen.WantData() {
			continue
		}
		if acc := c.gen.DataAccess(); !c.l1d.Access(acc.Block, acc.IsWrite) {
			c.l1dMisses++
			done, stalled := m.structMiss(i, c, acc)
			if stalled {
				goto commit
			}
			if ev, evicted := c.l1d.Insert(acc.Block, acc.IsWrite); evicted && ev.Dirty {
				// Dirty L1 writeback lands in the LLC.
				m.llcInsert(ev.Block, true)
			}
			lat := done - m.now
			if m.cfg.CoreType == tech.InOrder {
				c.blockedUntil = done
				goto commit
			}
			if m.isMissLatency(lat) {
				if len(c.slotDone) >= m.cfg.slots {
					c.blockedUntil = c.slotMin
					goto commit
				}
				c.addSlot(done)
			} else {
				c.stallDebt += m.cfg.overlap * float64(lat)
			}
		}
	}
commit:
	c.credit = credit
	c.instrs += issued
	m.instructions += issued
}

// structMiss services an L1 miss through the MSHR, the LLC tag arrays,
// the directory (for shared blocks), and memory. It returns the
// completion cycle, or stalled=true when the MSHR file is full.
func (m *structMachine) structMiss(i int, c *structCore, acc trace.Access) (int64, bool) {
	primary, ok := c.mshr.Allocate(acc.Block)
	if !ok {
		// MSHR full: stall until the earliest outstanding miss returns.
		c.mshrStalls++
		if len(c.pending) == 0 {
			// A full MSHR file with no outstanding miss cannot retire:
			// the earliest-completion lookup would leave the core
			// blocked on the noCompletion sentinel forever. Record the
			// invariant violation and park the core; the error surfaces
			// when the run returns.
			m.err = fmt.Errorf("sim: core %d: MSHR file full (%d entries) with no outstanding miss to retire",
				i, c.mshr.Capacity())
			c.blockedUntil = m.now + (1 << 40)
			return c.blockedUntil, true
		}
		c.blockedUntil = c.pendingMin
		return c.pendingMin, true
	}
	if !primary {
		// Secondary miss: completes with the primary.
		for _, p := range c.pending {
			if p.block == acc.Block {
				return p.done, false
			}
		}
		return 0, false // unreachable: pending mirrors the MSHR file
	}

	// Directory for coherence-visible shared blocks.
	var forwarded bool
	if acc.Shared {
		dirCore := i % m.dir.Cores()
		var res cache.AccessResult
		if acc.IsWrite {
			res = m.dir.Write(dirCore, acc.Block)
		} else {
			res = m.dir.Read(dirCore, acc.Block)
		}
		forwarded = res.ForwardedFromL1
	}

	// Real LLC lookup in the block's bank. Misses get a second chance
	// in the bank's 16-entry victim cache.
	bank, idx := m.bankOf(acc.Block)
	hit := m.llc[bank].Lookup(idx) || forwarded
	if !hit {
		if vHit, vDirty := m.victims[bank].Probe(idx); vHit {
			hit = true
			m.llcInsert(acc.Block, vDirty) // promote back into the array
		}
	}
	done := m.timeAccessBank(bank, !hit, forwarded)
	if !hit {
		m.llcInsert(acc.Block, false)
	}
	c.pending = append(c.pending, pendingMiss{block: acc.Block, done: done})
	if done < c.pendingMin {
		c.pendingMin = done
	}
	return done, false
}

// llcInsert fills a block into its LLC bank, spilling dirty victims to
// the memory channels' traffic accounting.
func (m *structMachine) llcInsert(block uint64, dirty bool) {
	bank, idx := m.bankOf(block)
	if ev, evicted := m.llc[bank].Insert(idx, dirty); evicted {
		// Evicted blocks get a second chance in the victim cache; only
		// dirty spills from the victim cache go off-chip.
		if spill, spilled := m.victims[bank].Insert(ev.Block, ev.Dirty); spilled && spill.Dirty {
			m.offChipLines++
		}
	}
}

func (m *structMachine) structResult() StructuralResult {
	r := StructuralResult{Result: m.result()}
	var instrs, l1i, l1d, stalls uint64
	for i := range m.cores {
		c := &m.cores[i]
		instrs += c.instrs
		l1i += c.l1iMisses
		l1d += c.l1dMisses
		stalls += c.mshrStalls
	}
	if instrs > 0 {
		r.L1IMPKI = float64(l1i) / float64(instrs) * 1000
		r.L1DMPKI = float64(l1d) / float64(instrs) * 1000
	}
	if m.llcAccesses > 0 {
		r.LLCMissPct = 100 * float64(m.llcMisses) / float64(m.llcAccesses)
	}
	totalCycles := uint64(m.cfg.MeasureCycles) * uint64(len(m.cores))
	if totalCycles > 0 {
		r.MSHRStallPct = 100 * float64(stalls) / float64(totalCycles)
	}
	return r
}
