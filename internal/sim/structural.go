package sim

import (
	"fmt"

	"scaleout/internal/cache"
	"scaleout/internal/exp/engine"
	"scaleout/internal/noc"
	"scaleout/internal/tech"
	"scaleout/internal/trace"
	"scaleout/internal/workload"
)

// StructuralConfig describes a run of the structural simulator: instead
// of drawing cache behaviour from the calibrated workload curves, each
// core replays a synthetic reference stream (internal/trace) against
// real set-associative L1 arrays with MSHRs, and the LLC is a real
// banked tag array. Miss rates therefore *emerge* from the stream — an
// independent cross-check of the statistical calibration, and the mode
// to use for microarchitectural what-ifs (associativity, MSHR counts,
// bank counts) that the statistical model cannot see.
type StructuralConfig struct {
	Workload workload.Workload
	CoreType tech.CoreType
	Cores    int
	LLCMB    float64
	Net      noc.Config

	MemChannels   int
	WarmupCycles  int // default 150000 (the LLC must fill)
	MeasureCycles int
	Seed          uint64

	L1MSHRs int // default 32 (Table 2.2)
}

// StructuralResult extends the timing results with the emergent cache
// behaviour of the structural run.
type StructuralResult struct {
	Result
	L1IMPKI      float64 // emergent L1-I misses per kilo-instruction
	L1DMPKI      float64 // emergent L1-D misses per kilo-instruction
	LLCMissPct   float64 // emergent LLC miss ratio (%)
	MSHRStallPct float64 // % of cycles lost to full MSHRs
}

func (c *StructuralConfig) applyDefaults() error {
	if c.Cores < 1 {
		return fmt.Errorf("sim: %d cores", c.Cores)
	}
	if c.LLCMB <= 0 {
		return fmt.Errorf("sim: %vMB LLC", c.LLCMB)
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if c.Net.Kind == 0 && c.Net.Cores == 0 {
		c.Net = noc.New(noc.Crossbar, c.Cores)
	}
	if c.MemChannels < 1 {
		c.MemChannels = 1 + c.Cores/16
	}
	if c.WarmupCycles <= 0 {
		c.WarmupCycles = 60000
	}
	if c.MeasureCycles <= 0 {
		c.MeasureCycles = 50000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.L1MSHRs <= 0 {
		c.L1MSHRs = 32
	}
	return nil
}

// Canonical returns the configuration with every default applied, for
// canonical fingerprinting by experiment engines (see Config.Canonical).
func (c StructuralConfig) Canonical() (StructuralConfig, error) {
	err := c.applyDefaults()
	return c, err
}

// Key canonically fingerprints the defaults-applied configuration — the
// memo key under which experiment engines deduplicate identical
// structural sweep points.
func (c StructuralConfig) Key() string {
	cc, err := c.Canonical()
	if err != nil {
		cc = c
	}
	return "structural:" + engine.Fingerprint(cc)
}

// pendingMiss is one outstanding L1 miss: the block and the cycle its
// fill returns.
type pendingMiss struct {
	block uint64
	done  int64
}

// structCore is the per-core structural state.
type structCore struct {
	coreState
	gen  *trace.Generator
	l1i  *cache.SetAssoc
	l1d  *cache.SetAssoc
	mshr *cache.MSHR
	// outstanding MSHR entries and their completion cycles. A small
	// slice beats a map here: the retire scan runs every active cycle,
	// and every use (retire filter, earliest-completion min, secondary
	// lookup) is order-insensitive.
	pending []pendingMiss

	instrs     uint64
	l1iMisses  uint64
	l1dMisses  uint64
	mshrStalls uint64
}

// structMachine is the structural simulator: the shared kernel's timing
// spine (scheduler, banks, channels, directory) plus real cache
// structures replayed by synthetic reference streams.
type structMachine struct {
	kernel
	scfg    StructuralConfig
	cores   []structCore
	llc     []*cache.SetAssoc // one array per bank
	victims []*cache.Victim   // 16-entry victim cache per bank (Table 2.2)
}

// RunStructural simulates the configuration in structural mode.
func RunStructural(cfg StructuralConfig) (StructuralResult, error) {
	return runStructuralKernel(cfg, lockstepKernel.Load())
}

// RunStructuralLockstep simulates the configuration on the lock-step
// reference kernel; see RunLockstep.
func RunStructuralLockstep(cfg StructuralConfig) (StructuralResult, error) {
	return runStructuralKernel(cfg, true)
}

func runStructuralKernel(cfg StructuralConfig, lockstep bool) (StructuralResult, error) {
	if err := cfg.applyDefaults(); err != nil {
		return StructuralResult{}, err
	}
	m, err := newStructMachine(cfg)
	if err != nil {
		return StructuralResult{}, err
	}
	run := m.run
	if lockstep {
		run = m.runLockstep
	}
	run(cfg.WarmupCycles)
	m.resetStructStats()
	run(cfg.MeasureCycles)
	return m.structResult(), nil
}

func newStructMachine(cfg StructuralConfig) (*structMachine, error) {
	// Reuse the statistical kernel for banks/channels/directory sizing.
	base := Config{
		Workload: cfg.Workload, CoreType: cfg.CoreType, Cores: cfg.Cores,
		LLCMB: cfg.LLCMB, Net: cfg.Net, MemChannels: cfg.MemChannels,
		WarmupCycles: cfg.WarmupCycles, MeasureCycles: cfg.MeasureCycles,
		Seed: cfg.Seed,
	}
	k, err := newKernel(base)
	if err != nil {
		return nil, err
	}
	spec := tech.Cores(cfg.CoreType)
	m := &structMachine{kernel: k, scfg: cfg}
	banks := m.cfg.banks
	bankBytes := int(cfg.LLCMB * 1024 * 1024 / float64(banks))
	m.llc = make([]*cache.SetAssoc, banks)
	m.victims = make([]*cache.Victim, banks)
	for i := range m.llc {
		arr, err := cache.NewSetAssoc(bankBytes, tech.LLCWays)
		if err != nil {
			return nil, fmt.Errorf("sim: LLC bank: %w", err)
		}
		m.llc[i] = arr
		vc, err := cache.NewVictim(16)
		if err != nil {
			return nil, err
		}
		m.victims[i] = vc
	}
	m.cores = make([]structCore, cfg.Cores)
	for i := range m.cores {
		gen, err := trace.NewFromWorkload(cfg.Workload, cfg.CoreType, i, cfg.Seed)
		if err != nil {
			return nil, err
		}
		l1i, err := cache.NewSetAssoc(spec.L1IKB*1024, spec.L1Ways)
		if err != nil {
			return nil, err
		}
		l1d, err := cache.NewSetAssoc(spec.L1DKB*1024, spec.L1Ways)
		if err != nil {
			return nil, err
		}
		mshr, err := cache.NewMSHR(cfg.L1MSHRs)
		if err != nil {
			return nil, err
		}
		m.cores[i] = structCore{
			coreState: newCoreState(cfg.Seed, i, m.cfg.slots),
			gen:       gen, l1i: l1i, l1d: l1d, mshr: mshr,
		}
	}
	// Checkpoint-style warm start (Section 3.3: simulations launch from
	// checkpoints with warmed caches): pre-fill the LLC with the blocks
	// a steady-state system would hold. The remaining warmup cycles
	// settle the L1s, queues, and directory.
	for _, block := range m.cores[0].gen.ResidentBlocks() {
		m.llcInsert(block, false)
	}
	m.attach(m)
	return m, nil
}

func (m *structMachine) resetStructStats() {
	m.resetStats()
	for i := range m.cores {
		c := &m.cores[i]
		c.instrs, c.l1iMisses, c.l1dMisses, c.mshrStalls = 0, 0, 0, 0
	}
}

// core returns core i's scheduling state to the kernel.
func (m *structMachine) core(i int) *coreState { return &m.cores[i].coreState }

// stepActive advances core i through one active cycle of the structural
// path: MSHR/MLP retirement, then the issue loop through the real L1s.
func (m *structMachine) stepActive(i int) {
	c := &m.cores[i]
	// Retire completed misses: free MSHR entries and MLP slots.
	livePending := c.pending[:0]
	for _, p := range c.pending {
		if p.done > m.now {
			livePending = append(livePending, p)
		} else {
			c.mshr.Complete(p.block)
		}
	}
	c.pending = livePending
	live := c.slotDone[:0]
	for _, done := range c.slotDone {
		if done > m.now {
			live = append(live, done)
		}
	}
	c.slotDone = live

	c.credit += m.cfg.baseIPC
	for n := 0; c.credit >= 1 && n < m.cfg.width; n++ {
		c.credit--
		m.instructions++
		c.instrs++

		// Instruction fetch through the real L1-I.
		if acc, ok := c.gen.NextInstr(); ok {
			if !c.l1i.Lookup(acc.Block) {
				c.l1iMisses++
				done, stalled := m.structMiss(i, c, acc)
				if stalled {
					return
				}
				c.l1i.Insert(acc.Block, false)
				c.blockedUntil = done // front end stalls on I-misses
				return
			}
		}

		// Data access through the real L1-D.
		acc, ok := c.gen.NextData()
		if !ok {
			continue
		}
		if c.l1d.Lookup(acc.Block) {
			if acc.IsWrite {
				c.l1d.MarkDirty(acc.Block)
			}
			continue // L1 hit: no LLC traffic
		}
		c.l1dMisses++
		done, stalled := m.structMiss(i, c, acc)
		if stalled {
			return
		}
		if ev, evicted := c.l1d.Insert(acc.Block, acc.IsWrite); evicted && ev.Dirty {
			// Dirty L1 writeback lands in the LLC.
			m.llcInsert(ev.Block, true)
		}
		lat := done - m.now
		if m.cfg.CoreType == tech.InOrder {
			c.blockedUntil = done
			return
		}
		if m.isMissLatency(lat) {
			if len(c.slotDone) >= m.cfg.slots {
				c.blockedUntil = minInt64(c.slotDone)
				return
			}
			c.slotDone = append(c.slotDone, done)
		} else {
			c.stallDebt += m.cfg.overlap * float64(lat)
		}
	}
}

// structMiss services an L1 miss through the MSHR, the LLC tag arrays,
// the directory (for shared blocks), and memory. It returns the
// completion cycle, or stalled=true when the MSHR file is full.
func (m *structMachine) structMiss(i int, c *structCore, acc trace.Access) (int64, bool) {
	primary, ok := c.mshr.Allocate(acc.Block)
	if !ok {
		// MSHR full: stall until the earliest outstanding miss returns.
		c.mshrStalls++
		earliest := int64(1<<62 - 1)
		for _, p := range c.pending {
			if p.done < earliest {
				earliest = p.done
			}
		}
		c.blockedUntil = earliest
		return earliest, true
	}
	if !primary {
		// Secondary miss: completes with the primary.
		for _, p := range c.pending {
			if p.block == acc.Block {
				return p.done, false
			}
		}
		return 0, false // unreachable: pending mirrors the MSHR file
	}

	// Directory for coherence-visible shared blocks.
	var forwarded bool
	if acc.Shared {
		dirCore := i % m.dir.Cores()
		var res cache.AccessResult
		if acc.IsWrite {
			res = m.dir.Write(dirCore, acc.Block)
		} else {
			res = m.dir.Read(dirCore, acc.Block)
		}
		forwarded = res.ForwardedFromL1
	}

	// Real LLC lookup in the block's bank. The bank-selection bits are
	// stripped before indexing so every set of the bank array is usable.
	// Misses get a second chance in the bank's 16-entry victim cache.
	banks := uint64(len(m.llc))
	bank := int(acc.Block % banks)
	hit := m.llc[bank].Lookup(acc.Block/banks) || forwarded
	if !hit {
		if vHit, vDirty := m.victims[bank].Probe(acc.Block / banks); vHit {
			hit = true
			m.llcInsert(acc.Block, vDirty) // promote back into the array
		}
	}
	done := m.timeAccessBank(bank, !hit, forwarded)
	if !hit {
		m.llcInsert(acc.Block, false)
	}
	c.pending = append(c.pending, pendingMiss{block: acc.Block, done: done})
	return done, false
}

// llcInsert fills a block into its LLC bank, spilling dirty victims to
// the memory channels' traffic accounting. Bank-selection bits are
// stripped before indexing the bank array.
func (m *structMachine) llcInsert(block uint64, dirty bool) {
	banks := uint64(len(m.llc))
	bank := int(block % banks)
	if ev, evicted := m.llc[bank].Insert(block/banks, dirty); evicted {
		// Evicted blocks get a second chance in the victim cache; only
		// dirty spills from the victim cache go off-chip.
		if spill, spilled := m.victims[bank].Insert(ev.Block, ev.Dirty); spilled && spill.Dirty {
			m.offChipLines++
		}
	}
}

func (m *structMachine) structResult() StructuralResult {
	r := StructuralResult{Result: m.result()}
	var instrs, l1i, l1d, stalls uint64
	for i := range m.cores {
		c := &m.cores[i]
		instrs += c.instrs
		l1i += c.l1iMisses
		l1d += c.l1dMisses
		stalls += c.mshrStalls
	}
	if instrs > 0 {
		r.L1IMPKI = float64(l1i) / float64(instrs) * 1000
		r.L1DMPKI = float64(l1d) / float64(instrs) * 1000
	}
	if m.llcAccesses > 0 {
		r.LLCMissPct = 100 * float64(m.llcMisses) / float64(m.llcAccesses)
	}
	totalCycles := uint64(m.cfg.MeasureCycles) * uint64(len(m.cores))
	if totalCycles > 0 {
		r.MSHRStallPct = 100 * float64(stalls) / float64(totalCycles)
	}
	return r
}
