package sim

import (
	"testing"

	"scaleout/internal/noc"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// Golden kernel-equivalence test: the event-scheduled kernel must be
// byte-identical to the lock-step seed kernel — same Result struct,
// field for field — across core counts, core types, NoC kinds
// (including NOC-Out's halved bank accept rate), channel-starved
// memory systems, and seeds. Every divergence here is a real bug: the
// two kernels run the same per-core code, so only scheduling can
// differ.
func TestKernelEquivalence(t *testing.T) {
	ws := workload.Suite()
	short := func(c Config) Config {
		c.WarmupCycles, c.MeasureCycles = 4000, 10000
		return c
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"1core-crossbar", short(Config{Workload: ws[0], CoreType: tech.OoO, Cores: 1, LLCMB: 1})},
		{"4core-inorder", short(Config{Workload: ws[1], CoreType: tech.InOrder, Cores: 4, LLCMB: 2})},
		{"16core-crossbar", short(Config{Workload: ws[0], CoreType: tech.OoO, Cores: 16, LLCMB: 4,
			Net: noc.New(noc.Crossbar, 16)})},
		{"32core-inorder-mesh", short(Config{Workload: ws[2], CoreType: tech.InOrder, Cores: 32, LLCMB: 2,
			Net: noc.New(noc.Mesh, 32)})},
		{"64core-mesh", short(Config{Workload: ws[0], CoreType: tech.OoO, Cores: 64, LLCMB: 8,
			Net: noc.New(noc.Mesh, 64), MemChannels: 4})},
		{"64core-nocout", short(Config{Workload: ws[3%len(ws)], CoreType: tech.OoO, Cores: 64, LLCMB: 8,
			Net: noc.New(noc.NOCOut, 64)})},
		{"channel-starved", short(Config{Workload: ws[0], CoreType: tech.OoO, Cores: 32, LLCMB: 2,
			Net: noc.New(noc.Crossbar, 32), MemChannels: 1})},
		{"seeded", short(Config{Workload: ws[1], CoreType: tech.OoO, Cores: 16, LLCMB: 4, Seed: 99})},
		{"default-cycles", Config{Workload: ws[0], CoreType: tech.OoO, Cores: 16, LLCMB: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			event, err := Run(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			lockstep, err := RunLockstep(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if event != lockstep {
				t.Fatalf("kernels diverged:\nevent:    %+v\nlockstep: %+v", event, lockstep)
			}
		})
	}
}

// The same equivalence must hold for the structural simulator, whose
// emergent cache behaviour (L1 MPKI, MSHR stalls) is far more sensitive
// to step ordering than the statistical draws.
func TestKernelEquivalenceStructural(t *testing.T) {
	ws := workload.Suite()
	short := func(c StructuralConfig) StructuralConfig {
		c.WarmupCycles, c.MeasureCycles = 8000, 10000
		return c
	}
	cases := []struct {
		name string
		cfg  StructuralConfig
	}{
		{"16core-ooo", short(StructuralConfig{Workload: ws[0], CoreType: tech.OoO, Cores: 16, LLCMB: 4})},
		{"8core-inorder", short(StructuralConfig{Workload: ws[1], CoreType: tech.InOrder, Cores: 8, LLCMB: 2})},
		{"nocout-banks", short(StructuralConfig{Workload: ws[0], CoreType: tech.OoO, Cores: 32, LLCMB: 8,
			Net: noc.New(noc.NOCOut, 32)})},
		{"tiny-mshr", short(StructuralConfig{Workload: ws[2], CoreType: tech.OoO, Cores: 8, LLCMB: 2,
			L1MSHRs: 2})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			event, err := RunStructural(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			lockstep, err := RunStructuralLockstep(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if event != lockstep {
				t.Fatalf("kernels diverged:\nevent:    %+v\nlockstep: %+v", event, lockstep)
			}
		})
	}
}

// UseLockstepKernel reroutes the plain entry points, so benchmark
// harnesses measure the reference kernel on unmodified workloads.
func TestUseLockstepKernel(t *testing.T) {
	cfg := Config{Workload: workload.Suite()[0], CoreType: tech.OoO, Cores: 4, LLCMB: 1,
		WarmupCycles: 1000, MeasureCycles: 2000}
	event, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	UseLockstepKernel(true)
	defer UseLockstepKernel(false)
	rerouted, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if event != rerouted {
		t.Fatalf("rerouted lockstep run differs:\n%+v\n%+v", event, rerouted)
	}
}

// The wheel must drain same-cycle wakeups in ascending core order and
// deliver far wakeups (beyond the wheel horizon, which alias buckets
// and lap) at exactly their cycle.
func TestWakeWheelOrdering(t *testing.T) {
	const cores = 130 // three bitmap words, two of them partial
	w := newWakeWheel(cores)
	type ev struct {
		at   int64
		core int
	}
	// Schedule a spread: same-cycle groups, horizon-aliased far events.
	var want []ev
	for i := 0; i < cores; i++ {
		at := int64(1 + (i%7)*wheelSpan) // cycles 1, 513, 1025, ... alias bucket 1
		w.schedule(i, at)
		want = append(want, ev{at, i})
	}
	// Expected order: by (at, core).
	for i := range want {
		for j := i + 1; j < len(want); j++ {
			if want[j].at < want[i].at || (want[j].at == want[i].at && want[j].core < want[i].core) {
				want[i], want[j] = want[j], want[i]
			}
		}
	}

	var got []ev
	end := int64(7*wheelSpan + 2)
	for tcyc := int64(0); tcyc < end; tcyc++ {
		bucket := w.bucket(tcyc)
		for wi := range bucket {
			word := bucket[wi]
			if word == 0 {
				continue
			}
			bucket[wi] = 0
			for word != 0 {
				core := wi<<6 + trailingZeros(word)
				word &= word - 1
				if w.wakeAt[core] > tcyc {
					bucket[wi] |= 1 << (core & 63)
					continue
				}
				got = append(got, ev{tcyc, core})
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d wakeups, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wakeup %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// nextWake drains whole cycles of stall debt exactly as the lock-step
// prologue does, and defers to blockedUntil when it is later.
func TestNextWake(t *testing.T) {
	cases := []struct {
		debt     float64
		blocked  int64
		now      int64
		wantWake int64
		wantDebt float64
	}{
		{0, 0, 10, 11, 0},     // free-running: next cycle
		{0.5, 0, 10, 11, 0.5}, // sub-cycle debt: no drain
		{3.5, 0, 10, 14, 0.5}, // 3 drain cycles then active
		{2, 0, 10, 13, 0},     // integral debt drains fully
		{0, 30, 10, 30, 0},    // blocked dominates
		{10, 14, 10, 21, 0},   // drain outlasts the block
		{2, 40, 10, 40, 0},    // block outlasts the drain
	}
	for i, tc := range cases {
		c := coreState{stallDebt: tc.debt, blockedUntil: tc.blocked}
		if got := c.nextWake(tc.now); got != tc.wantWake {
			t.Errorf("case %d: wake %d, want %d", i, got, tc.wantWake)
		}
		if c.stallDebt != tc.wantDebt {
			t.Errorf("case %d: residual debt %v, want %v", i, c.stallDebt, tc.wantDebt)
		}
	}
}

// Directory stats reset at the warmup/measure boundary while coherence
// state survives: measured snoop rates must not include warmup traffic,
// and a second reset-and-run window reproduces the first.
func TestResetStatsPreservesCoherence(t *testing.T) {
	cfg := Config{Workload: workload.Suite()[0], CoreType: tech.OoO, Cores: 8, LLCMB: 2,
		WarmupCycles: 2000, MeasureCycles: 4000}
	if err := cfg.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	m, err := newMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.run(cfg.WarmupCycles)
	if m.dir.TrackedBlocks() == 0 {
		t.Fatal("warmup tracked no shared blocks")
	}
	tracked := m.dir.TrackedBlocks()
	m.resetStats()
	if m.dir.Lookups != 0 || m.dir.SnoopsSent != 0 || m.dir.SnoopAccesses != 0 ||
		m.dir.Invalidation != 0 || m.dir.Forwards != 0 {
		t.Fatal("directory stats survived resetStats")
	}
	if m.dir.TrackedBlocks() != tracked {
		t.Fatal("resetStats dropped coherence state")
	}
	if m.instructions != 0 || m.llcAccesses != 0 || m.llcMisses != 0 ||
		m.llcLatencySum != 0 || m.offChipLines != 0 {
		t.Fatal("kernel counters survived resetStats")
	}
}
