package sim

import (
	"math"
	"testing"

	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

func structCfg(t *testing.T) StructuralConfig {
	return StructuralConfig{
		Workload: wl(t, workload.WebSearch),
		CoreType: tech.OoO,
		Cores:    16,
		LLCMB:    4,
	}
}

func runStruct(t *testing.T, cfg StructuralConfig) StructuralResult {
	t.Helper()
	r, err := RunStructural(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestStructuralValidation(t *testing.T) {
	bad := structCfg(t)
	bad.Cores = 0
	if _, err := RunStructural(bad); err == nil {
		t.Fatal("0 cores accepted")
	}
	bad = structCfg(t)
	bad.LLCMB = 0
	if _, err := RunStructural(bad); err == nil {
		t.Fatal("0MB LLC accepted")
	}
}

func TestStructuralDeterminism(t *testing.T) {
	a := runStruct(t, structCfg(t))
	b := runStruct(t, structCfg(t))
	if a != b {
		t.Fatalf("structural runs diverged:\n%+v\n%+v", a, b)
	}
}

// The emergent L1 miss rates from the real tag arrays land near the
// calibrated per-workload APKI targets — the cross-check the structural
// mode exists for.
func TestEmergentL1MissRates(t *testing.T) {
	for _, w := range workload.Suite() {
		cfg := structCfg(t)
		cfg.Workload = w
		r := runStruct(t, cfg)
		apki := w.EffectiveAPKI(tech.OoO)
		iT := apki * w.IFetchFrac
		dT := apki - iT
		if r.L1IMPKI < iT*0.7 || r.L1IMPKI > iT*1.5 {
			t.Errorf("%s: emergent L1-I MPKI %v vs calibrated %v", w.Name, r.L1IMPKI, iT)
		}
		if r.L1DMPKI < dT*0.7 || r.L1DMPKI > dT*1.5 {
			t.Errorf("%s: emergent L1-D MPKI %v vs calibrated %v", w.Name, r.L1DMPKI, dT)
		}
	}
}

// With a warmed LLC, the instruction footprint and secondary working set
// are resident: the emergent LLC miss ratio is dominated by the
// streaming dataset and stays modest.
func TestEmergentLLCMissRatio(t *testing.T) {
	for _, w := range workload.Suite() {
		cfg := structCfg(t)
		cfg.Workload = w
		r := runStruct(t, cfg)
		if r.LLCMissPct < 2 || r.LLCMissPct > 35 {
			t.Errorf("%s: LLC miss ratio %v%% implausible", w.Name, r.LLCMissPct)
		}
	}
}

// Shrinking the LLC must raise the emergent miss ratio (capacity is a
// real tag array here, not a curve).
func TestStructuralCapacitySensitivity(t *testing.T) {
	big := structCfg(t)
	big.LLCMB = 8
	small := structCfg(t)
	small.LLCMB = 1
	rb, rs := runStruct(t, big), runStruct(t, small)
	if rs.LLCMissPct <= rb.LLCMissPct {
		t.Fatalf("1MB miss ratio %v not above 8MB's %v", rs.LLCMissPct, rb.LLCMissPct)
	}
	if rs.AppIPC >= rb.AppIPC {
		t.Fatalf("1MB IPC %v not below 8MB's %v", rs.AppIPC, rb.AppIPC)
	}
}

// Starving the MSHR file must surface as stalls and cost performance —
// a microarchitectural effect only the structural mode can see.
func TestMSHRPressure(t *testing.T) {
	ample := structCfg(t)
	ample.L1MSHRs = 32
	starved := structCfg(t)
	starved.L1MSHRs = 1
	ra, rs := runStruct(t, ample), runStruct(t, starved)
	if rs.MSHRStallPct <= ra.MSHRStallPct {
		t.Fatalf("1-entry MSHR stall %v%% not above 32-entry %v%%", rs.MSHRStallPct, ra.MSHRStallPct)
	}
	if rs.AppIPC >= ra.AppIPC {
		t.Fatalf("starved MSHR IPC %v not below ample %v", rs.AppIPC, ra.AppIPC)
	}
}

// Structural and statistical modes must agree on the big picture: same
// configuration, same order of magnitude, same direction under a slower
// interconnect.
func TestStructuralVsStatistical(t *testing.T) {
	cfg := structCfg(t)
	structIPC := runStruct(t, cfg).AppIPC
	statIPC := run(t, Config{
		Workload: cfg.Workload, CoreType: cfg.CoreType, Cores: cfg.Cores,
		LLCMB: cfg.LLCMB, DisableSWScaling: true,
	}).AppIPC
	if ratio := structIPC / statIPC; ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("structural %v vs statistical %v (ratio %v)", structIPC, statIPC, ratio)
	}
}

func TestStructuralSnoopsPresent(t *testing.T) {
	cfg := structCfg(t)
	cfg.Workload = wl(t, workload.WebFrontend) // heaviest sharing
	r := runStruct(t, cfg)
	if r.SnoopRatePct <= 0 {
		t.Fatal("no snoops despite a coherence-visible shared pool")
	}
	if r.DirectoryBlocks == 0 {
		t.Fatal("directory tracked nothing")
	}
}

func TestStructuralWritebacksCounted(t *testing.T) {
	r := runStruct(t, structCfg(t))
	if r.OffChipGBs <= 0 {
		t.Fatal("no off-chip traffic measured")
	}
	if math.IsNaN(r.AvgLLCLatency) || r.AvgLLCLatency <= 0 {
		t.Fatalf("LLC latency %v", r.AvgLLCLatency)
	}
}
