// Package stats provides the small statistical toolkit used across the
// scale-out processor models: a deterministic xorshift RNG (so every
// simulation run is exactly reproducible), running mean/variance
// accumulators with confidence intervals (the SimFlex-style sampling
// methodology reports 95% confidence with <4% error), and the geometric
// mean used for cross-workload summaries.
package stats

import (
	"errors"
	"math"
)

// Rng is a deterministic xorshift64* pseudo-random number generator.
// Each simulated component owns its own Rng so component insertion order
// never perturbs another component's stream.
type Rng struct {
	state uint64
}

// NewRng returns a generator seeded with seed. A zero seed is remapped to
// a fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRng(seed uint64) *Rng {
	r := &Rng{}
	r.Reseed(seed)
	return r
}

// Reseed restarts the stream from seed, exactly as NewRng(seed) would —
// the allocation-free form machine pools use to recycle per-core RNGs.
func (r *Rng) Reseed(seed uint64) {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	r.state = seed
}

// Uint64 returns the next 64-bit value in the stream.
func (r *Rng) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a value uniformly distributed in [0, 1). Multiplying
// by the exact reciprocal is bit-identical to dividing by 2^53 (both
// are exact power-of-two scalings) and keeps a division off the
// simulator's hottest path.
func (r *Rng) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a value uniformly distributed in [0, n). It panics if n <= 0.
func (r *Rng) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rng) Exp(mean float64) float64 {
	u := r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(u)
}

// Geometric returns a geometrically distributed trial count (>= 1) with
// success probability p. It is used for run lengths such as basic-block
// sizes. p is clamped into (0, 1].
func (r *Rng) Geometric(p float64) int {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		p = 1e-9
	}
	u := r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	n := int(math.Ceil(math.Log(u) / math.Log(1-p)))
	if n < 1 {
		n = 1
	}
	return n
}

// Zipf draws from a Zipf-like distribution over ranks [0, n) with skew s,
// using inverse-CDF on the truncated harmonic series approximation. It is
// adequate for workload reuse-rank draws where exactness is not required.
func (r *Rng) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// Inverse CDF of p(x) ~ x^-s via the integral approximation.
	u := r.Float64()
	if s == 1 {
		x := math.Pow(float64(n), u)
		k := int(x) - 1
		if k < 0 {
			k = 0
		}
		if k >= n {
			k = n - 1
		}
		return k
	}
	oneMinus := 1 - s
	hn := (math.Pow(float64(n), oneMinus) - 1) / oneMinus
	x := math.Pow(u*hn*oneMinus+1, 1/oneMinus)
	k := int(x) - 1
	if k < 0 {
		k = 0
	}
	if k >= n {
		k = n - 1
	}
	return k
}

// Accumulator maintains a running mean and variance using Welford's
// algorithm, and can report a normal-approximation confidence interval.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (zero if empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (zero if n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// z95 is the two-sided 95% normal quantile.
const z95 = 1.959963984540054

// ConfidenceInterval95 returns the half-width of the 95% confidence
// interval around the mean under the normal approximation.
func (a *Accumulator) ConfidenceInterval95() float64 {
	if a.n < 2 {
		return math.Inf(1)
	}
	return z95 * a.StdDev() / math.Sqrt(float64(a.n))
}

// RelativeError95 returns the CI half-width as a fraction of the mean, the
// quantity the SimFlex methodology bounds at 4%. It returns +Inf when the
// mean is zero or fewer than two samples exist.
func (a *Accumulator) RelativeError95() float64 {
	if a.mean == 0 {
		return math.Inf(1)
	}
	return math.Abs(a.ConfidenceInterval95() / a.mean)
}

// ErrEmpty is returned by reductions over empty slices.
var ErrEmpty = errors.New("stats: empty input")

// GeoMean returns the geometric mean of xs. All values must be positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geometric mean requires positive values")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Normalize divides every element of xs by base, returning a new slice.
// It is the "normalized to X" operation used by most thesis figures.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}
