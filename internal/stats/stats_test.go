package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRngDeterminism(t *testing.T) {
	a, b := NewRng(42), NewRng(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRngZeroSeedRemapped(t *testing.T) {
	r := NewRng(0)
	if r.Uint64() == 0 {
		t.Fatal("zero seed produced zero output (xorshift fixed point)")
	}
}

func TestRngSeedsIndependent(t *testing.T) {
	a, b := NewRng(1), NewRng(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between differently seeded streams", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRng(7)
	for i := 0; i < 10000; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", x)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRng(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRng(3)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) produced only %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRng(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := NewRng(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Exp(3.0)
	}
	if mean := sum / n; math.Abs(mean-3.0) > 0.1 {
		t.Fatalf("exponential mean %v, want ~3", mean)
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRng(9)
	sum := 0.0
	const n, p = 100000, 0.25
	for i := 0; i < n; i++ {
		v := r.Geometric(p)
		if v < 1 {
			t.Fatalf("Geometric returned %d < 1", v)
		}
		sum += float64(v)
	}
	if mean := sum / n; math.Abs(mean-1/p) > 0.15 {
		t.Fatalf("geometric mean %v, want ~%v", mean, 1/p)
	}
}

func TestGeometricEdge(t *testing.T) {
	r := NewRng(1)
	if v := r.Geometric(1); v != 1 {
		t.Fatalf("Geometric(1) = %d, want 1", v)
	}
	if v := r.Geometric(0); v < 1 {
		t.Fatalf("Geometric(0) = %d", v)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRng(13)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[r.Zipf(100, 1.2)]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
}

func TestZipfBounds(t *testing.T) {
	r := NewRng(17)
	for _, s := range []float64{0.5, 1.0, 1.5} {
		for i := 0; i < 10000; i++ {
			v := r.Zipf(64, s)
			if v < 0 || v >= 64 {
				t.Fatalf("Zipf(64, %v) = %d", s, v)
			}
		}
	}
	if v := NewRng(1).Zipf(1, 1); v != 0 {
		t.Fatalf("Zipf(1) = %d, want 0", v)
	}
}

func TestAccumulatorMeanVariance(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Fatalf("mean %v, want 5", a.Mean())
	}
	// Unbiased sample variance of this classic set is 32/7.
	if math.Abs(a.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("variance %v, want %v", a.Variance(), 32.0/7)
	}
}

func TestAccumulatorCI(t *testing.T) {
	var a Accumulator
	r := NewRng(21)
	for i := 0; i < 10000; i++ {
		a.Add(r.Float64())
	}
	ci := a.ConfidenceInterval95()
	if ci <= 0 || ci > 0.01 {
		t.Fatalf("CI %v outside plausible range for 10k uniform samples", ci)
	}
	if rel := a.RelativeError95(); rel > 0.04 {
		t.Fatalf("relative error %v exceeds the 4%% SimFlex bound", rel)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if !math.IsInf(a.ConfidenceInterval95(), 1) {
		t.Fatal("CI of empty accumulator should be +Inf")
	}
	if a.Variance() != 0 {
		t.Fatal("variance of empty accumulator should be 0")
	}
}

// Property: Welford's mean matches the naive mean for any input.
func TestAccumulatorMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		var a Accumulator
		sum := 0.0
		for _, x := range clean {
			a.Add(x)
			sum += x
		}
		naive := sum / float64(len(clean))
		return math.Abs(a.Mean()-naive) < 1e-6*(1+math.Abs(naive))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean %v, want 4", g)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Fatal("empty geomean should error")
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Fatal("negative geomean should error")
	}
}

// Property: geometric mean is bounded by min and max of the inputs.
func TestGeoMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if x > 1e-6 && x < 1e6 && !math.IsNaN(x) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g, err := GeoMean(xs)
		if err != nil {
			return false
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAndNormalize(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3})
	if err != nil || m != 2 {
		t.Fatalf("mean = %v, err = %v", m, err)
	}
	if _, err := Mean(nil); err == nil {
		t.Fatal("empty mean should error")
	}
	n := Normalize([]float64{2, 4, 6}, 2)
	if n[0] != 1 || n[1] != 2 || n[2] != 3 {
		t.Fatalf("normalize = %v", n)
	}
}
