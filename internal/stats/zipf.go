package stats

import (
	"math"
	"sync"
)

// ZipfGen draws from a fixed Zipf-like distribution over ranks [0, n)
// with skew s — the repeated-draw form of Rng.Zipf, and the workhorse
// behind the structural simulator's reference streams (internal/trace
// draws one per data reference).
//
// A draw is a binary search over a precomputed rank-threshold table
// instead of the math.Pow inverse-CDF evaluation Rng.Zipf performs —
// Pow was the single hottest function in the structural simulator's
// profile. The table stores, for every rank k, the smallest value u can
// take (Rng.Float64 values lie exactly on the j*2^-53 grid) for which
// the Pow expression yields rank >= k, found by inverting the exact
// floating-point expression the per-call path evaluates. Draws are
// therefore bit-identical to Rng.Zipf with the same arguments
// (TestZipfGenMatchesRngZipf drives both across the full rank range and
// adversarially probes every threshold's neighbourhood).
//
// Tables depend only on (n, s), so they are built once per process and
// shared — every core of every pooled machine draws from the same table.
type ZipfGen struct {
	n          int
	s          float64
	oneMinus   float64   // 1 - s
	hn         float64   // (n^(1-s) - 1) / (1-s), unused when s == 1
	inv        float64   // 1 / (1-s), unused when s == 1
	thresholds []float64 // thresholds[k]: smallest grid u with rank >= k
	radix      []int32   // u-bucketed rank brackets narrowing the search
	radixScale float64   // number of radix buckets, as a float for the map
}

// The radix index buckets u-space: bucket i covers [i, i+1)/buckets,
// and radix[i] holds the rank at the bucket's left edge, so a draw
// binary-searches only the ranks its bucket spans — usually zero to
// three — instead of all n. The bucket count tracks n (rounded up to a
// power of two, clamped): more buckets than ranks buys nothing but
// cache pressure — the trace generator's 512-rank primary table wants
// its whole search structure L1-resident — while the 24576-rank
// secondary table wants enough buckets to keep spans short.
const (
	zipfRadixMinBits = 6
	zipfRadixMaxBits = 14
)

func radixBitsFor(n int) int {
	bits := zipfRadixMinBits
	for 1<<bits < n && bits < zipfRadixMaxBits {
		bits++
	}
	return bits
}

// zipfTables caches threshold tables by (n, s) for the life of the
// process, like the trig tables a hardware RNG would bake into ROM.
var zipfTables sync.Map // zipfKey -> *zipfTable

type zipfKey struct {
	n int
	s float64
}

type zipfTable struct {
	thresholds []float64
	radix      []int32
}

// NewZipfGen precomputes the draw constants and the rank-threshold table
// for ranks [0, n) at skew s.
func NewZipfGen(n int, s float64) *ZipfGen {
	z := &ZipfGen{n: n, s: s}
	if n <= 1 {
		return z
	}
	if s != 1 {
		z.oneMinus = 1 - s
		z.hn = (math.Pow(float64(n), z.oneMinus) - 1) / z.oneMinus
		z.inv = 1 / z.oneMinus
	}
	key := zipfKey{n, s}
	if t, ok := zipfTables.Load(key); ok {
		tab := t.(*zipfTable)
		z.thresholds, z.radix = tab.thresholds, tab.radix
		z.radixScale = float64(len(z.radix) - 1)
		return z
	}
	z.thresholds = z.buildThresholds()
	z.radix = buildRadix(z.thresholds)
	z.radixScale = float64(len(z.radix) - 1)
	zipfTables.Store(key, &zipfTable{z.thresholds, z.radix})
	return z
}

// buildRadix maps every u bucket to the rank at its left edge. Rank is
// non-decreasing in u, so for u inside bucket i the rank lies in
// [radix[i], radix[i+1]].
func buildRadix(thresholds []float64) []int32 {
	buckets := 1 << radixBitsFor(len(thresholds))
	radix := make([]int32, buckets+1)
	k := 0
	for i := range radix {
		edge := float64(i) / float64(buckets)
		for k+1 < len(thresholds) && thresholds[k+1] <= edge {
			k++
		}
		radix[i] = int32(k)
	}
	// The last bucket edge is u = 1.0, past every drawable u.
	radix[len(radix)-1] = int32(len(thresholds) - 1)
	return radix
}

// powRank evaluates the per-call inverse-CDF exactly as Rng.Zipf does:
// one math.Pow, truncate, clamp.
func (z *ZipfGen) powRank(u float64) int {
	var x float64
	if z.s == 1 {
		x = math.Pow(float64(z.n), u)
	} else {
		x = math.Pow(u*z.hn*z.oneMinus+1, z.inv)
	}
	k := int(x) - 1
	if k < 0 {
		k = 0
	}
	if k >= z.n {
		k = z.n - 1
	}
	return k
}

// zipfGrid is the resolution of Rng.Float64's output: every drawn u is
// exactly j / zipfGrid for an integer j in [0, zipfGrid).
const zipfGrid = 1 << 53

// buildThresholds computes, for each rank k, the smallest grid point u
// at which powRank reaches k. The analytic inverse of the CDF lands
// within a few ulps of the true boundary; a short walk against the
// floating-point powRank pins it exactly. Thresholds are forced
// non-decreasing so the binary search in Draw is well defined even if
// math.Pow were locally non-monotone at ulp scale.
func (z *ZipfGen) buildThresholds() []float64 {
	t := make([]float64, z.n)
	logN := math.Log(float64(z.n))
	c := z.hn * z.oneMinus
	prev := int64(0)
	for k := 1; k < z.n; k++ {
		// Analytic inverse of x >= k+1 in exact arithmetic.
		m := float64(k + 1)
		var u float64
		if z.s == 1 {
			u = math.Log(m) / logN
		} else {
			u = (math.Pow(m, z.oneMinus) - 1) / c
		}
		j := int64(u * zipfGrid)
		if j < prev {
			j = prev
		}
		if j > zipfGrid-1 {
			j = zipfGrid - 1
		}
		j = pinBoundary(j, prev, func(j int64) bool {
			return z.powRank(float64(j)/zipfGrid) >= k
		})
		if j >= zipfGrid {
			// No representable u < 1 reaches this rank through the Pow
			// path; park this and every later threshold at 1.0, which
			// Rng.Float64 never produces.
			for ; k < z.n; k++ {
				t[k] = 1.0
			}
			break
		}
		t[k] = float64(j) / zipfGrid
		prev = j
	}
	return t
}

// pinBoundary refines guess j to the smallest grid index >= floor
// satisfying pred, walking locally first and falling back to a full
// binary search if the analytic guess was off by more than a small
// window. pred must be (up to ulp-scale jitter) monotone in j.
func pinBoundary(j, floor int64, pred func(int64) bool) int64 {
	const window = 1024
	switch {
	case pred(j):
		for steps := 0; j > floor && pred(j-1); steps++ {
			j--
			if steps >= window {
				return searchBoundary(floor, j, pred)
			}
		}
		return j
	default:
		for steps := 0; !pred(j); steps++ {
			j++
			if j >= zipfGrid || steps >= window {
				return searchBoundary(j, zipfGrid-1, pred)
			}
		}
		return j
	}
}

// searchBoundary binary-searches [lo, hi] for the smallest index
// satisfying pred, assuming pred is monotone over the bracket. It
// returns hi+1 when no index satisfies it.
func searchBoundary(lo, hi int64, pred func(int64) bool) int64 {
	if lo > hi || !pred(hi) {
		return hi + 1
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if pred(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// zipfBoundaryEps is the width, in u-space, of the guard band around
// every threshold inside which Draw re-evaluates the Pow expression
// instead of trusting the table. math.Pow's ~1-ulp error makes the
// truncated rank flicker within a couple of grid points of a boundary
// (the set {u : rank(u) >= k} is not exactly an up-set), so a pure
// threshold table cannot be bit-identical; outside the band the table
// is provably exact because a mismatch would need a Pow error larger
// than the distance to the nearest integer crossing, which grows by
// ~one x-ulp per grid step. 2^16 grid points is a ~30000x safety margin
// over the observed flicker width, and the band is still so narrow that
// fewer than one draw in a million takes the Pow path.
const zipfBoundaryEps = float64(1<<16) / zipfGrid

// Draw advances r's stream by one value, exactly as Rng.Zipf does, and
// maps it to a rank through the threshold table.
func (z *ZipfGen) Draw(r *Rng) int {
	if z.n <= 1 {
		return 0
	}
	return z.rankOf(r.Float64())
}

// GeometricGen draws geometrically distributed trial counts with a
// fixed success probability — the repeated-draw form of Rng.Geometric,
// and the basic-block run-length source of the structural reference
// streams. Like ZipfGen it replaces the per-draw transcendental
// (Rng.Geometric pays two Logs) with a threshold table over u: the
// count k(u) = ceil(log(u)/log(1-p)) is a non-increasing step function,
// so draw = first tabulated boundary at or below u, with the exact Log
// evaluation kept for boundary guard bands and the far tail. Draws are
// bit-identical to Rng.Geometric with the same p
// (TestGeometricGenMatchesRngGeometric).
type GeometricGen struct {
	p          float64
	logQ       float64   // math.Log(1-p), after Rng.Geometric's clamping
	thresholds []float64 // thresholds[m]: smallest grid u with count <= m
}

// geomTableMax bounds the tabulated counts: P(k > 64) = (1-p)^64, under
// 1e-8 for the trace generator's p = 0.25; beyond it Draw falls back to
// the exact evaluation.
const geomTableMax = 64

// geomTables caches threshold tables by p for the life of the process.
var geomTables sync.Map // float64 -> []float64

// NewGeometricGen precomputes the draw constants and threshold table
// for probability p, clamped into (0, 1] exactly as Rng.Geometric
// clamps it.
func NewGeometricGen(p float64) *GeometricGen {
	g := &GeometricGen{p: p}
	if p >= 1 {
		return g
	}
	q := p
	if q <= 0 {
		q = 1e-9
	}
	g.logQ = math.Log(1 - q)
	if t, ok := geomTables.Load(p); ok {
		g.thresholds = t.([]float64)
		return g
	}
	g.thresholds = g.buildThresholds()
	geomTables.Store(p, g.thresholds)
	return g
}

// exact evaluates the count exactly as Rng.Geometric does (with the
// log(1-p) factored out, an exact reuse of the same expression).
func (g *GeometricGen) exact(u float64) int {
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	n := int(math.Ceil(math.Log(u) / g.logQ))
	if n < 1 {
		n = 1
	}
	return n
}

// buildThresholds tabulates, for each count m, the smallest grid u with
// exact(u) <= m. In exact arithmetic that boundary is (1-p)^m; the
// analytic guess is pinned against the floating-point expression as in
// ZipfGen. Thresholds are forced non-increasing in u as m grows.
func (g *GeometricGen) buildThresholds() []float64 {
	t := make([]float64, geomTableMax+1)
	t[0] = 1.0 // count 0 never occurs; sentinel above every drawable u
	q := 1 - g.p
	if g.p <= 0 {
		q = 1 - 1e-9
	}
	ceil := int64(zipfGrid)
	for m := 1; m <= geomTableMax; m++ {
		u := math.Pow(q, float64(m))
		j := int64(u * zipfGrid)
		if j > zipfGrid-1 {
			j = zipfGrid - 1
		}
		if j < 0 {
			j = 0
		}
		j = pinBoundary(j, 0, func(j int64) bool {
			return g.exact(float64(j)/zipfGrid) <= m
		})
		if j > ceil {
			j = ceil // non-increasing regions: never above the previous boundary
		}
		t[m] = float64(j) / zipfGrid
		ceil = j
	}
	return t
}

// Draw advances r's stream by one value, exactly as Rng.Geometric does,
// and maps it to a count through the threshold table. The expected scan
// length is 1/p entries; u inside a boundary guard band or below the
// tabulated range takes the exact Log path.
func (g *GeometricGen) Draw(r *Rng) int {
	if g.p >= 1 {
		return 1
	}
	u := r.Float64()
	t := g.thresholds
	for m := 1; m < len(t); m++ {
		if u >= t[m] {
			if u-t[m] < zipfBoundaryEps || t[m-1]-u < zipfBoundaryEps {
				return g.exact(u)
			}
			return m
		}
	}
	return g.exact(u)
}

// rankOf maps one drawn u to its rank: a binary search for the largest
// k with thresholds[k] <= u (thresholds[0] == 0 bounds it), bracketed
// by the radix index and deferring to the exact Pow evaluation inside
// the boundary guard bands.
func (z *ZipfGen) rankOf(u float64) int {
	b := int(u * z.radixScale)
	lo, hi := int(z.radix[b]), int(z.radix[b+1])+1
	if hi > len(z.thresholds) {
		hi = len(z.thresholds)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if z.thresholds[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	k := lo - 1
	if u-z.thresholds[k] < zipfBoundaryEps ||
		(k+1 < z.n && z.thresholds[k+1]-u < zipfBoundaryEps) {
		return z.powRank(u)
	}
	return k
}
