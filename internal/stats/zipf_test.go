package stats

import (
	"math"
	"testing"
)

// The threshold-table draw must be bit-identical to the Pow inverse-CDF
// it replaced: the structural simulator's reference streams feed every
// drawn rank into real cache arrays, so a single differing draw changes
// emergent miss rates. The (n, s) pairs cover the trace generator's
// production parameters (512 @ 0.6, 24576 @ 0.4) plus the s == 1 branch
// and degenerate sizes.
func zipfCases() []struct {
	n int
	s float64
} {
	return []struct {
		n int
		s float64
	}{
		{512, 0.6},   // trace primary working set
		{24576, 0.4}, // trace secondary working set
		{1000, 1.0},  // the s == 1 branch
		{100, 0.0},   // uniform
		{7, 0.9},
		{1, 0.5}, // degenerate: always rank 0, no draw consumed
	}
}

// TestZipfGenMatchesRngZipf drives ZipfGen.Draw and Rng.Zipf from two
// identically seeded streams and asserts every rank matches.
func TestZipfGenMatchesRngZipf(t *testing.T) {
	for _, tc := range zipfCases() {
		z := NewZipfGen(tc.n, tc.s)
		r1 := NewRng(42)
		r2 := NewRng(42)
		draws := 200000
		if testing.Short() {
			draws = 20000
		}
		for i := 0; i < draws; i++ {
			got := z.Draw(r1)
			want := r2.Zipf(tc.n, tc.s)
			if got != want {
				t.Fatalf("n=%d s=%v draw %d: table %d, pow %d", tc.n, tc.s, i, got, want)
			}
		}
	}
}

// TestZipfThresholdNeighbourhoods adversarially probes the grid points
// around every threshold — exactly where a misplaced boundary or a
// non-monotone math.Pow at ulp scale would surface — asserting the
// table and Pow paths agree on each.
func TestZipfThresholdNeighbourhoods(t *testing.T) {
	for _, tc := range zipfCases() {
		if tc.n <= 1 {
			continue
		}
		z := NewZipfGen(tc.n, tc.s)
		checked := 0
		for k := 1; k < z.n; k++ {
			th := z.thresholds[k]
			if th >= 1 { // unreachable rank: no representable u draws it
				continue
			}
			j := int64(math.Round(th * zipfGrid))
			// Probe the flicker zone (±3) and both edges of the guard
			// band, where rankOf switches between table and Pow paths.
			offsets := []int64{-3, -2, -1, 0, 1, 2, 3,
				-(1 << 16) - 1, -(1 << 16), -(1 << 16) + 1,
				1<<16 - 1, 1 << 16, 1<<16 + 1}
			for _, d := range offsets {
				jj := j + d
				if jj < 0 || jj >= zipfGrid {
					continue
				}
				u := float64(jj) / zipfGrid
				if got, want := z.rankOf(u), z.powRank(u); got != want {
					t.Fatalf("n=%d s=%v: threshold %d neighbourhood u=%v: table %d, pow %d",
						tc.n, tc.s, k, u, got, want)
				}
				checked++
			}
		}
		if checked == 0 {
			t.Fatalf("n=%d s=%v: no thresholds probed", tc.n, tc.s)
		}
	}
}

// Thresholds must be sorted for the binary search to be meaningful.
func TestZipfThresholdsMonotone(t *testing.T) {
	for _, tc := range zipfCases() {
		if tc.n <= 1 {
			continue
		}
		z := NewZipfGen(tc.n, tc.s)
		if len(z.thresholds) != tc.n {
			t.Fatalf("n=%d s=%v: %d thresholds", tc.n, tc.s, len(z.thresholds))
		}
		if z.thresholds[0] != 0 {
			t.Fatalf("n=%d s=%v: thresholds[0] = %v", tc.n, tc.s, z.thresholds[0])
		}
		for k := 1; k < tc.n; k++ {
			if z.thresholds[k] < z.thresholds[k-1] {
				t.Fatalf("n=%d s=%v: thresholds[%d]=%v < thresholds[%d]=%v",
					tc.n, tc.s, k, z.thresholds[k], k-1, z.thresholds[k-1])
			}
		}
	}
}

// TestGeometricGenMatchesRngGeometric drives the table-driven
// GeometricGen and the per-call Rng.Geometric from identically seeded
// streams and asserts every count matches.
func TestGeometricGenMatchesRngGeometric(t *testing.T) {
	for _, p := range []float64{0.25, 0.5, 0.9, 0.01, 1.0, 1.5, 0, -1} {
		g := NewGeometricGen(p)
		r1 := NewRng(7)
		r2 := NewRng(7)
		draws := 200000
		if testing.Short() {
			draws = 20000
		}
		for i := 0; i < draws; i++ {
			got := g.Draw(r1)
			want := r2.Geometric(p)
			if got != want {
				t.Fatalf("p=%v draw %d: table %d, exact %d", p, i, got, want)
			}
		}
	}
}

// TestGeometricThresholdNeighbourhoods probes the grid points around
// every tabulated count boundary and the guard-band edges, asserting
// table and Log paths agree.
func TestGeometricThresholdNeighbourhoods(t *testing.T) {
	g := NewGeometricGen(0.25)
	drawAt := func(u float64) int {
		tt := g.thresholds
		for m := 1; m < len(tt); m++ {
			if u >= tt[m] {
				if u-tt[m] < zipfBoundaryEps || tt[m-1]-u < zipfBoundaryEps {
					return g.exact(u)
				}
				return m
			}
		}
		return g.exact(u)
	}
	checked := 0
	for m := 1; m < len(g.thresholds); m++ {
		j := int64(math.Round(g.thresholds[m] * zipfGrid))
		for _, d := range []int64{-3, -2, -1, 0, 1, 2, 3,
			-(1 << 16) - 1, -(1 << 16), 1<<16 - 1, 1 << 16, 1<<16 + 1} {
			jj := j + d
			if jj < 0 || jj >= zipfGrid {
				continue
			}
			u := float64(jj) / zipfGrid
			if got, want := drawAt(u), g.exact(u); got != want {
				t.Fatalf("p=0.25 boundary %d neighbourhood u=%v: table %d, exact %d", m, u, got, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no boundaries probed")
	}
}

func BenchmarkGeometricDrawTable(b *testing.B) {
	g := NewGeometricGen(0.25)
	r := NewRng(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Draw(r)
	}
}

func BenchmarkGeometricDrawLog(b *testing.B) {
	r := NewRng(1)
	for i := 0; i < b.N; i++ {
		r.Geometric(0.25)
	}
}

func BenchmarkZipfDrawTable(b *testing.B) {
	z := NewZipfGen(24576, 0.4)
	r := NewRng(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z.Draw(r)
	}
}

func BenchmarkZipfDrawPow(b *testing.B) {
	r := NewRng(1)
	for i := 0; i < b.N; i++ {
		r.Zipf(24576, 0.4)
	}
}
