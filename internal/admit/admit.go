// Package admit is the serve tier's admission controller: the paper's
// "millions of users" story means a pod absorbs datacenter traffic
// without falling over, so the daemon needs explicit overload behavior
// instead of unbounded queueing. The controller combines three
// mechanisms, applied in order on every request:
//
//  1. Per-client token-bucket rate limiting, keyed by the
//     X-Soproc-Client header (falling back to the remote address), so
//     one greedy client cannot starve the rest. An empty rate disables
//     this stage.
//  2. A concurrency gate with a bounded admission queue: at most
//     MaxInFlight requests run at once; up to QueueDepth more wait per
//     lane; anything beyond that is shed immediately with 429 Too Many
//     Requests and a Retry-After hint — the saturated daemon fails
//     fast instead of accumulating goroutines.
//  3. Two priority lanes. Interactive requests (GET /v1/exp figure
//     fetches) are granted freed slots before Bulk requests (POST
//     /v1/sweep generations), so a human waiting on a figure preempts
//     a design-space search's backlog.
//
// Admitted requests optionally run under a per-request deadline
// (RequestTimeout) propagated via context, and Drain flips the
// controller into shutdown mode: everything new is refused with 503
// while in-flight requests finish. The Middleware method wires all of
// this in front of the serve handler; /healthz, /statsz, /metricsz and
// /v1/trace bypass admission so probes, scrapes, and trace reads still
// see a saturated or draining daemon.
package admit

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"scaleout/internal/vclock"
)

// Lane is a request's priority class.
type Lane int

// The two lanes: Interactive requests (figure fetches a human is
// waiting on) are granted freed slots before Bulk requests (sweep
// generations a search harness can retry).
const (
	Interactive Lane = iota
	Bulk
	numLanes
)

// String names the lane for stats and error bodies.
func (l Lane) String() string {
	switch l {
	case Interactive:
		return "interactive"
	case Bulk:
		return "bulk"
	default:
		return fmt.Sprintf("lane(%d)", int(l))
	}
}

// ClientHeader carries the caller's self-declared identity for
// per-client rate limiting; without it the client key is the remote
// host. A cluster coordinator sets it so a replica can tell coordinator
// traffic from direct clients.
const ClientHeader = "X-Soproc-Client"

// Options configures a Controller; the zero value of any field selects
// its documented default.
type Options struct {
	// Rate is the per-client steady-state admission rate in requests
	// per second; 0 disables rate limiting.
	Rate float64
	// Burst is the per-client token-bucket depth; 0 derives
	// max(1, ceil(2*Rate)).
	Burst int
	// MaxInFlight caps concurrently admitted requests; 0 selects
	// 4*GOMAXPROCS.
	MaxInFlight int
	// QueueDepth caps waiting requests per lane once MaxInFlight is
	// reached; beyond it requests are shed with 429. 0 selects 128;
	// negative disables queueing (full slots shed immediately).
	QueueDepth int
	// RequestTimeout is the per-request deadline applied by Middleware
	// to admitted requests' contexts; 0 leaves requests untimed.
	RequestTimeout time.Duration
	// RetryAfter is the hint returned with queue-full sheds; 0 selects
	// 1s. (Rate-limit sheds hint the bucket's actual refill time.)
	RetryAfter time.Duration
	// Clock injects a virtual clock for tests; nil selects the system
	// clock.
	Clock vclock.Clock
}

// Controller applies rate limiting, bounded queueing, and priority
// lanes to incoming requests. Construct with New; a Controller is safe
// for concurrent use.
type Controller struct {
	opts  Options
	clock vclock.Clock

	mu       sync.Mutex
	inflight int
	queues   [numLanes][]*waiter
	buckets  map[string]*bucket
	draining bool
	stats    statsCounters
}

// waiter is one request parked in the admission queue. grant hands it
// the slot (nil) or a terminal refusal; exactly one of grant/abandon
// wins, decided under Controller.mu.
type waiter struct {
	ch      chan error
	granted bool
}

// bucket is one client's token bucket; guarded by Controller.mu.
type bucket struct {
	tokens float64
	last   time.Time
}

// statsCounters accumulates under Controller.mu.
type statsCounters struct {
	admitted    [numLanes]int64
	queued      [numLanes]int64
	rateLimited int64
	shedFull    int64
	shedDrain   int64
	abandoned   int64
}

// New returns a controller with o's limits, applying defaults for zero
// fields.
func New(o Options) *Controller {
	if o.MaxInFlight == 0 {
		o.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 128
	}
	if o.QueueDepth < 0 {
		o.QueueDepth = 0
	}
	if o.Burst <= 0 {
		o.Burst = int(math.Max(1, math.Ceil(2*o.Rate)))
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	clk := o.Clock
	if clk == nil {
		clk = vclock.System{}
	}
	return &Controller{opts: o, clock: clk, buckets: make(map[string]*bucket)}
}

// Error is a refused admission: the HTTP status to return and, when
// positive, the Retry-After hint. It implements error so Admit callers
// outside the middleware can propagate it.
type Error struct {
	// Status is 429 (rate-limited or queue full) or 503 (draining, or
	// the request's deadline expired while queued).
	Status int
	// Message is the human-readable reason, returned in the body.
	Message string
	// RetryAfter, when positive, is the client's resubmission hint.
	RetryAfter time.Duration
}

// Error implements error.
func (e *Error) Error() string { return e.Message }

// Admit asks for an execution slot in lane for client, blocking in the
// bounded queue when the controller is at capacity. On success the
// returned release must be called exactly once when the request
// finishes; on refusal it returns a nil release and an *Error carrying
// the status and Retry-After hint. A ctx that expires while queued
// refuses with 503.
func (c *Controller) Admit(ctx context.Context, lane Lane, client string) (release func(), err error) {
	if lane < 0 || lane >= numLanes {
		lane = Bulk
	}
	c.mu.Lock()
	if c.draining {
		c.stats.shedDrain++
		c.mu.Unlock()
		return nil, &Error{Status: http.StatusServiceUnavailable, Message: "draining: not accepting new work"}
	}
	if wait, limited := c.takeTokenLocked(client); limited {
		c.stats.rateLimited++
		c.mu.Unlock()
		return nil, &Error{
			Status:     http.StatusTooManyRequests,
			Message:    fmt.Sprintf("client %q over rate limit (%.3g req/s)", client, c.opts.Rate),
			RetryAfter: wait,
		}
	}
	if c.inflight < c.opts.MaxInFlight {
		c.inflight++
		c.stats.admitted[lane]++
		c.mu.Unlock()
		return c.release, nil
	}
	if len(c.queues[lane]) >= c.opts.QueueDepth {
		c.stats.shedFull++
		c.mu.Unlock()
		return nil, &Error{
			Status:     http.StatusTooManyRequests,
			Message:    fmt.Sprintf("%s admission queue full (%d waiting)", lane, c.opts.QueueDepth),
			RetryAfter: c.opts.RetryAfter,
		}
	}
	w := &waiter{ch: make(chan error, 1)}
	c.queues[lane] = append(c.queues[lane], w)
	c.stats.queued[lane]++
	c.mu.Unlock()

	select {
	case err := <-w.ch:
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.stats.admitted[lane]++
		c.mu.Unlock()
		return c.release, nil
	case <-ctx.Done():
		c.mu.Lock()
		if w.granted {
			// The grant raced the cancellation and won under the lock:
			// the slot is ours to give back.
			c.mu.Unlock()
			c.release()
		} else {
			c.queues[lane] = removeWaiter(c.queues[lane], w)
			c.stats.abandoned++
			c.mu.Unlock()
		}
		return nil, &Error{Status: http.StatusServiceUnavailable, Message: "abandoned admission queue: " + ctx.Err().Error()}
	}
}

func removeWaiter(q []*waiter, w *waiter) []*waiter {
	for i, x := range q {
		if x == w {
			return append(q[:i], q[i+1:]...)
		}
	}
	return q
}

// release returns a slot, handing it to the longest-waiting
// interactive request first, then bulk — the priority inversion the
// lanes exist to prevent.
func (c *Controller) release() {
	c.mu.Lock()
	for lane := Interactive; lane < numLanes; lane++ {
		if len(c.queues[lane]) > 0 {
			w := c.queues[lane][0]
			c.queues[lane] = c.queues[lane][1:]
			w.granted = true
			w.ch <- nil
			c.mu.Unlock()
			return
		}
	}
	c.inflight--
	c.mu.Unlock()
}

// takeTokenLocked consumes one token from client's bucket, reporting
// (wait, true) when the bucket is empty — wait is the time until the
// next token. Rate 0 always admits. Caller holds c.mu.
func (c *Controller) takeTokenLocked(client string) (time.Duration, bool) {
	if c.opts.Rate <= 0 {
		return 0, false
	}
	now := c.clock.Now()
	b := c.buckets[client]
	if b == nil {
		c.pruneBucketsLocked(now)
		b = &bucket{tokens: float64(c.opts.Burst), last: now}
		c.buckets[client] = b
	}
	b.tokens = math.Min(float64(c.opts.Burst), b.tokens+now.Sub(b.last).Seconds()*c.opts.Rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, false
	}
	wait := time.Duration((1 - b.tokens) / c.opts.Rate * float64(time.Second))
	return wait, true
}

// pruneBucketsLocked drops buckets refilled to burst long ago so the
// per-client map cannot grow without bound under address churn. Caller
// holds c.mu.
func (c *Controller) pruneBucketsLocked(now time.Time) {
	if len(c.buckets) < 1024 {
		return
	}
	for k, b := range c.buckets {
		idle := now.Sub(b.last).Seconds()
		if b.tokens+idle*c.opts.Rate >= float64(c.opts.Burst) && idle > 60 {
			delete(c.buckets, k)
		}
	}
}

// Drain flips the controller into shutdown mode: every queued request
// is refused with 503 immediately (so the HTTP server's drain isn't
// held up by parked waiters) and every new Admit refuses the same way,
// while already-admitted requests run to completion. Drain is
// idempotent.
func (c *Controller) Drain() {
	c.mu.Lock()
	c.draining = true
	for lane := range c.queues {
		for _, w := range c.queues[lane] {
			w.granted = true
			w.ch <- &Error{Status: http.StatusServiceUnavailable, Message: "draining: not accepting new work"}
			c.stats.shedDrain++
		}
		c.queues[lane] = nil
	}
	c.mu.Unlock()
}

// Draining reports whether Drain has been called.
func (c *Controller) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// LaneStats is one lane's slice of a Stats snapshot.
type LaneStats struct {
	// Admitted counts requests granted a slot in this lane; Queued the
	// subset that waited for one; Depth the requests waiting right now.
	Admitted int64 `json:"admitted"`
	Queued   int64 `json:"queued"`
	Depth    int   `json:"depth"`
}

// Stats is a point-in-time snapshot of the controller's admission
// traffic; it is the /statsz "admit" section.
type Stats struct {
	// Admitted counts requests granted a slot; InFlight the admitted
	// requests currently running.
	Admitted int64 `json:"admitted"`
	InFlight int   `json:"in_flight"`
	// RateLimited counts sheds by a client's empty token bucket;
	// ShedQueueFull sheds by a full admission queue (both 429);
	// ShedDraining refusals during drain (503); Abandoned queue waits
	// given up by deadline or disconnect.
	RateLimited   int64 `json:"rate_limited"`
	ShedQueueFull int64 `json:"shed_queue_full"`
	ShedDraining  int64 `json:"shed_draining"`
	Abandoned     int64 `json:"abandoned"`
	// Lanes maps lane name ("interactive", "bulk") to its counters.
	Lanes map[string]LaneStats `json:"lanes"`
	// Clients is the number of tracked per-client rate buckets.
	Clients int `json:"clients"`
	// Draining reports shutdown mode.
	Draining bool `json:"draining"`
}

// Stats snapshots the controller's counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		InFlight:      c.inflight,
		RateLimited:   c.stats.rateLimited,
		ShedQueueFull: c.stats.shedFull,
		ShedDraining:  c.stats.shedDrain,
		Abandoned:     c.stats.abandoned,
		Lanes:         make(map[string]LaneStats, numLanes),
		Clients:       len(c.buckets),
		Draining:      c.draining,
	}
	for lane := Interactive; lane < numLanes; lane++ {
		st.Admitted += c.stats.admitted[lane]
		st.Lanes[lane.String()] = LaneStats{
			Admitted: c.stats.admitted[lane],
			Queued:   c.stats.queued[lane],
			Depth:    len(c.queues[lane]),
		}
	}
	return st
}

// ErrorBody is the JSON body of a refused request (429/503) and of the
// serve layer's structured 413; Retry-After mirrors the header of the
// same name.
type ErrorBody struct {
	// Error is the human-readable refusal reason.
	Error string `json:"error"`
	// RetryAfterSeconds, when positive, hints when to resubmit.
	RetryAfterSeconds int64 `json:"retry_after_seconds,omitempty"`
}

// WriteError writes a structured refusal: JSON ErrorBody plus the
// Retry-After header when the error carries a hint. Exposed so the
// serve layer's 413 path and tests produce the same shape.
func WriteError(w http.ResponseWriter, status int, msg string, retryAfter time.Duration) {
	var secs int64
	if retryAfter > 0 {
		secs = int64(math.Ceil(retryAfter.Seconds()))
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorBody{Error: msg, RetryAfterSeconds: secs})
}

// LaneFor classifies a request: GET /v1/exp and /v1/experiments are
// Interactive (a figure a caller is blocked on), everything else —
// /v1/sweep above all — is Bulk.
func LaneFor(r *http.Request) Lane {
	if r.Method == http.MethodGet &&
		(strings.HasPrefix(r.URL.Path, "/v1/exp/") || r.URL.Path == "/v1/experiments") {
		return Interactive
	}
	return Bulk
}

// ClientKey identifies the caller for rate limiting: the ClientHeader
// value when present, else the remote host without its ephemeral port.
func ClientKey(r *http.Request) string {
	if id := r.Header.Get(ClientHeader); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// Middleware wires the controller in front of next: /healthz and
// /statsz — with /metricsz and /v1/trace, the observability pair —
// bypass admission (probes and monitoring must see a saturated
// daemon), every other request is admitted through its lane and — when
// RequestTimeout is set — runs under a per-request deadline propagated
// via context. Refusals are structured ErrorBody responses with
// Retry-After where applicable.
func (c *Controller) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz", "/statsz", "/metricsz", "/v1/trace":
			// Probes, scrapes, and trace reads bypass admission: a
			// saturated or draining daemon must stay observable.
			next.ServeHTTP(w, r)
			return
		}
		release, err := c.Admit(r.Context(), LaneFor(r), ClientKey(r))
		if err != nil {
			ae, ok := err.(*Error)
			if !ok {
				ae = &Error{Status: http.StatusServiceUnavailable, Message: err.Error()}
			}
			WriteError(w, ae.Status, ae.Message, ae.RetryAfter)
			return
		}
		defer release()
		if c.opts.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), c.opts.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(w, r)
	})
}
