package admit

import "scaleout/internal/metrics"

// RegisterMetrics registers the controller's admission counters on reg
// under the soproc_admit_* namespace, including the per-lane families
// labeled by lane name. Values are read from the same counters Stats()
// snapshots, at scrape time, so admission's hot path gains no new
// writes.
func (c *Controller) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("soproc_admit_admitted_total",
		"requests granted an execution slot (all lanes)",
		func() float64 { return float64(c.Stats().Admitted) })
	reg.CounterFunc("soproc_admit_rate_limited_total",
		"requests shed by a client's empty token bucket (429)",
		func() float64 { return float64(c.Stats().RateLimited) })
	reg.CounterFunc("soproc_admit_shed_queue_full_total",
		"requests shed by a full admission queue (429)",
		func() float64 { return float64(c.Stats().ShedQueueFull) })
	reg.CounterFunc("soproc_admit_shed_draining_total",
		"requests refused during drain (503)",
		func() float64 { return float64(c.Stats().ShedDraining) })
	reg.CounterFunc("soproc_admit_abandoned_total",
		"queue waits given up by deadline or disconnect",
		func() float64 { return float64(c.Stats().Abandoned) })
	reg.GaugeFunc("soproc_admit_in_flight_requests",
		"admitted requests currently running",
		func() float64 { return float64(c.Stats().InFlight) })
	reg.GaugeFunc("soproc_admit_clients",
		"tracked per-client rate buckets",
		func() float64 { return float64(c.Stats().Clients) })
	reg.GaugeFunc("soproc_admit_draining",
		"1 while the controller is draining",
		func() float64 {
			if c.Draining() {
				return 1
			}
			return 0
		})

	laneLabels := []string{"lane"}
	laneNames := func() []string {
		names := make([]string, 0, int(numLanes))
		for lane := Interactive; lane < numLanes; lane++ {
			names = append(names, lane.String())
		}
		return names
	}()
	reg.CounterVecFunc("soproc_admit_lane_admitted_total",
		"requests granted a slot, per lane",
		laneLabels, func(emit metrics.EmitFunc) {
			st := c.Stats()
			for _, name := range laneNames {
				emit(float64(st.Lanes[name].Admitted), name)
			}
		})
	reg.CounterVecFunc("soproc_admit_lane_queued_total",
		"admitted requests that waited in the queue first, per lane",
		laneLabels, func(emit metrics.EmitFunc) {
			st := c.Stats()
			for _, name := range laneNames {
				emit(float64(st.Lanes[name].Queued), name)
			}
		})
	reg.GaugeVecFunc("soproc_admit_lane_depth",
		"requests waiting in the queue right now, per lane",
		laneLabels, func(emit metrics.EmitFunc) {
			st := c.Stats()
			for _, name := range laneNames {
				emit(float64(st.Lanes[name].Depth), name)
			}
		})
}
