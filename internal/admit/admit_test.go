package admit

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"scaleout/internal/vclock"
)

func TestAdmitWithinCapacity(t *testing.T) {
	c := New(Options{MaxInFlight: 2, QueueDepth: 1})
	r1, err := c.Admit(context.Background(), Bulk, "a")
	if err != nil {
		t.Fatalf("Admit 1: %v", err)
	}
	r2, err := c.Admit(context.Background(), Interactive, "b")
	if err != nil {
		t.Fatalf("Admit 2: %v", err)
	}
	st := c.Stats()
	if st.Admitted != 2 || st.InFlight != 2 {
		t.Fatalf("stats = %+v, want 2 admitted, 2 in flight", st)
	}
	if st.Lanes["bulk"].Admitted != 1 || st.Lanes["interactive"].Admitted != 1 {
		t.Fatalf("lane stats = %+v", st.Lanes)
	}
	r1()
	r2()
	if st := c.Stats(); st.InFlight != 0 {
		t.Fatalf("in flight = %d after release, want 0", st.InFlight)
	}
}

// TestQueueFullSheds429: a saturated controller refuses immediately
// with 429 and a Retry-After hint instead of queueing without bound.
func TestQueueFullSheds429(t *testing.T) {
	c := New(Options{MaxInFlight: 1, QueueDepth: 1, RetryAfter: 7 * time.Second})
	release, err := c.Admit(context.Background(), Bulk, "a")
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	defer release()

	// Fill the one queue slot.
	queued := make(chan struct{})
	go func() {
		r, err := c.Admit(context.Background(), Bulk, "b")
		if err == nil {
			r()
		}
		close(queued)
	}()
	waitFor(t, func() bool { return c.Stats().Lanes["bulk"].Depth == 1 })

	// The next arrival sheds instantly.
	start := time.Now()
	_, err = c.Admit(context.Background(), Bulk, "c")
	ae, ok := err.(*Error)
	if !ok || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("Admit = %v, want 429", err)
	}
	if ae.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter = %v, want 7s", ae.RetryAfter)
	}
	if time.Since(start) > time.Second {
		t.Fatal("shed request did not fail fast")
	}
	if st := c.Stats(); st.ShedQueueFull != 1 {
		t.Fatalf("stats = %+v, want 1 queue-full shed", st)
	}
	release()
	<-queued
}

// TestInteractivePreemptsBulk: a freed slot goes to the interactive
// waiter even when bulk waiters have queued longer.
func TestInteractivePreemptsBulk(t *testing.T) {
	c := New(Options{MaxInFlight: 1, QueueDepth: 4})
	release, err := c.Admit(context.Background(), Bulk, "a")
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}

	var mu sync.Mutex
	var order []Lane
	var wg sync.WaitGroup
	enqueue := func(lane Lane) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := c.Admit(context.Background(), lane, "x")
			if err != nil {
				t.Errorf("queued Admit: %v", err)
				return
			}
			mu.Lock()
			order = append(order, lane)
			mu.Unlock()
			r()
		}()
		waitFor(t, func() bool {
			st := c.Stats()
			return st.Lanes["bulk"].Depth+st.Lanes["interactive"].Depth > 0 &&
				st.Lanes[lane.String()].Queued > 0
		})
	}
	enqueue(Bulk) // queues first...
	enqueue(Interactive)
	release() // ...but interactive is granted first
	wg.Wait()
	if len(order) != 2 || order[0] != Interactive || order[1] != Bulk {
		t.Fatalf("grant order = %v, want [interactive bulk]", order)
	}
}

// TestRateLimitPerClient: one client's exhausted bucket sheds with a
// refill hint while another client still admits; the bucket refills on
// the injected clock.
func TestRateLimitPerClient(t *testing.T) {
	clk := vclock.NewFake(time.Unix(0, 0))
	c := New(Options{Rate: 1, Burst: 2, MaxInFlight: 16, Clock: clk})
	for i := 0; i < 2; i++ {
		r, err := c.Admit(context.Background(), Bulk, "greedy")
		if err != nil {
			t.Fatalf("Admit %d: %v", i, err)
		}
		r()
	}
	_, err := c.Admit(context.Background(), Bulk, "greedy")
	ae, ok := err.(*Error)
	if !ok || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("Admit = %v, want 429", err)
	}
	if ae.RetryAfter <= 0 || ae.RetryAfter > time.Second {
		t.Fatalf("RetryAfter = %v, want (0, 1s]", ae.RetryAfter)
	}
	// A different client is unaffected.
	if r, err := c.Admit(context.Background(), Bulk, "polite"); err != nil {
		t.Fatalf("other client shed: %v", err)
	} else {
		r()
	}
	// The bucket refills with (virtual) time.
	clk.Advance(time.Second)
	if r, err := c.Admit(context.Background(), Bulk, "greedy"); err != nil {
		t.Fatalf("Admit after refill: %v", err)
	} else {
		r()
	}
	if st := c.Stats(); st.RateLimited != 1 || st.Clients != 2 {
		t.Fatalf("stats = %+v, want 1 rate-limited, 2 clients", st)
	}
}

// TestDrainRefusesAndFlushesQueue: draining refuses new arrivals with
// 503 and kicks parked waiters out with 503, while admitted work keeps
// its slot.
func TestDrainRefusesAndFlushesQueue(t *testing.T) {
	c := New(Options{MaxInFlight: 1, QueueDepth: 4})
	release, err := c.Admit(context.Background(), Bulk, "a")
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := c.Admit(context.Background(), Bulk, "b")
		errc <- err
	}()
	waitFor(t, func() bool { return c.Stats().Lanes["bulk"].Depth == 1 })

	c.Drain()
	qerr := <-errc
	if ae, ok := qerr.(*Error); !ok || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("queued waiter got %v, want 503", qerr)
	}
	if _, err := c.Admit(context.Background(), Interactive, "c"); err == nil {
		t.Fatal("Admit during drain succeeded")
	}
	st := c.Stats()
	if !st.Draining || st.ShedDraining != 2 || st.InFlight != 1 {
		t.Fatalf("stats = %+v, want draining, 2 drain sheds, 1 in flight", st)
	}
	release() // in-flight work finishes normally
	if st := c.Stats(); st.InFlight != 0 {
		t.Fatalf("in flight = %d, want 0", st.InFlight)
	}
}

// TestQueuedWaiterAbandons: a queued request whose context dies leaves
// the queue and reports 503.
func TestQueuedWaiterAbandons(t *testing.T) {
	c := New(Options{MaxInFlight: 1, QueueDepth: 4})
	release, err := c.Admit(context.Background(), Bulk, "a")
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.Admit(ctx, Bulk, "b")
		errc <- err
	}()
	waitFor(t, func() bool { return c.Stats().Lanes["bulk"].Depth == 1 })
	cancel()
	if ae, ok := (<-errc).(*Error); !ok || ae.Status != http.StatusServiceUnavailable {
		t.Fatal("abandoned waiter did not get 503")
	}
	st := c.Stats()
	if st.Abandoned != 1 || st.Lanes["bulk"].Depth != 0 {
		t.Fatalf("stats = %+v, want 1 abandoned, empty queue", st)
	}
}

// TestMiddleware: lanes classify by path, refusals carry the structured
// body and Retry-After header, and health/stats endpoints bypass
// admission entirely.
func TestMiddleware(t *testing.T) {
	clk := vclock.NewFake(time.Unix(0, 0))
	c := New(Options{Rate: 1, Burst: 1, MaxInFlight: 4, Clock: clk})
	var served []string
	h := c.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served = append(served, r.URL.Path)
		w.WriteHeader(http.StatusOK)
	}))

	get := func(path, client string) *httptest.ResponseRecorder {
		r := httptest.NewRequest(http.MethodGet, path, nil)
		if client != "" {
			r.Header.Set(ClientHeader, client)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		return w
	}

	if w := get("/v1/exp/fig2.1", "cli"); w.Code != http.StatusOK {
		t.Fatalf("first request = %d", w.Code)
	}
	w := get("/v1/sweep", "cli") // bucket empty now
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("rate-limited request = %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	var body ErrorBody
	if err := json.NewDecoder(w.Body).Decode(&body); err != nil || body.Error == "" || body.RetryAfterSeconds <= 0 {
		t.Fatalf("429 body = %+v, err %v; want structured ErrorBody", body, err)
	}
	// Probes and monitoring bypass admission even for the shed client.
	if w := get("/healthz", "cli"); w.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200 (bypasses admission)", w.Code)
	}
	if w := get("/statsz", "cli"); w.Code != http.StatusOK {
		t.Fatalf("statsz = %d, want 200 (bypasses admission)", w.Code)
	}
	if st := c.Stats(); st.Lanes["interactive"].Admitted != 1 || st.RateLimited != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(served) != 3 {
		t.Fatalf("served %v", served)
	}
}

// TestMiddlewareRequestTimeout: an admitted request runs under the
// configured deadline, propagated through its context.
func TestMiddlewareRequestTimeout(t *testing.T) {
	c := New(Options{RequestTimeout: 10 * time.Millisecond})
	deadlineSeen := make(chan bool, 1)
	h := c.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, ok := r.Context().Deadline()
		deadlineSeen <- ok
	}))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/exp/all", nil))
	if !<-deadlineSeen {
		t.Fatal("admitted request had no deadline")
	}
}

func TestLaneForAndClientKey(t *testing.T) {
	cases := []struct {
		method, path string
		want         Lane
	}{
		{http.MethodGet, "/v1/exp/fig2.1", Interactive},
		{http.MethodGet, "/v1/experiments", Interactive},
		{http.MethodPost, "/v1/sweep", Bulk},
		{http.MethodGet, "/v1/sweep", Bulk},
	}
	for _, tc := range cases {
		r := httptest.NewRequest(tc.method, tc.path, nil)
		if got := LaneFor(r); got != tc.want {
			t.Errorf("LaneFor(%s %s) = %v, want %v", tc.method, tc.path, got, tc.want)
		}
	}
	r := httptest.NewRequest(http.MethodGet, "/v1/sweep", nil)
	r.RemoteAddr = "10.1.2.3:54321"
	if got := ClientKey(r); got != "10.1.2.3" {
		t.Errorf("ClientKey = %q, want host only", got)
	}
	r.Header.Set(ClientHeader, "searchbot")
	if got := ClientKey(r); got != "searchbot" {
		t.Errorf("ClientKey = %q, want header value", got)
	}
}

// TestWriteError is the structured-refusal shape shared with serve's
// 413 path.
func TestWriteError(t *testing.T) {
	w := httptest.NewRecorder()
	WriteError(w, http.StatusRequestEntityTooLarge, "too big", 0)
	if w.Code != http.StatusRequestEntityTooLarge || w.Header().Get("Retry-After") != "" {
		t.Fatalf("code %d, Retry-After %q", w.Code, w.Header().Get("Retry-After"))
	}
	b, _ := io.ReadAll(w.Body)
	var body ErrorBody
	if err := json.Unmarshal(b, &body); err != nil || body.Error != "too big" {
		t.Fatalf("body %s: %v", b, err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
