package admit

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"scaleout/internal/vclock"
)

// TestInteractiveFairUnderBulkSaturation is the fairness regression
// lock: with the pool saturated by bulk work — the only slot held and
// the bulk queue full to the point of shedding — a newly arrived
// interactive request must be granted by the very next slot release,
// ahead of every bulk waiter that queued before it. Time is injected
// (vclock) and every wait is on controller state, so the test takes no
// real sleeps.
func TestInteractiveFairUnderBulkSaturation(t *testing.T) {
	const queueDepth = 8
	clk := vclock.NewFake(time.Unix(0, 0))
	c := New(Options{MaxInFlight: 1, QueueDepth: queueDepth, Clock: clk})

	// One bulk request holds the only slot...
	release, err := c.Admit(context.Background(), Bulk, "bulk")
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}

	// ...and bulk arrivals fill that lane's queue behind it.
	var mu sync.Mutex
	var order []Lane
	var wg sync.WaitGroup
	enqueue := func(lane Lane) {
		wg.Add(1)
		before := c.Stats().Lanes[lane.String()].Depth
		go func() {
			defer wg.Done()
			r, err := c.Admit(context.Background(), lane, "load")
			if err != nil {
				t.Errorf("queued %s Admit: %v", lane, err)
				return
			}
			mu.Lock()
			order = append(order, lane)
			mu.Unlock()
			r()
		}()
		waitFor(t, func() bool { return c.Stats().Lanes[lane.String()].Depth == before+1 })
	}
	for i := 0; i < queueDepth; i++ {
		enqueue(Bulk)
	}

	// Saturation fact, not an assumption: one more bulk arrival sheds.
	if _, err := c.Admit(context.Background(), Bulk, "load"); err == nil {
		t.Fatal("bulk lane not saturated: extra arrival admitted")
	} else if ae, ok := err.(*Error); !ok || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("extra bulk arrival: %v, want 429", err)
	}

	// The interactive request arrives last, after the whole bulk
	// backlog.
	enqueue(Interactive)

	// One slot release must admit it — exactly one grant happens, and
	// it is the interactive one, with the bulk backlog intact.
	release()
	waitFor(t, func() bool {
		st := c.Stats()
		return st.Lanes["interactive"].Admitted == 1
	})
	if st := c.Stats(); st.Lanes["interactive"].Depth != 0 || st.Lanes["bulk"].Depth != queueDepth-1 {
		// The interactive grant itself released a slot, so one bulk
		// waiter follows it out of the queue.
		waitFor(t, func() bool { return c.Stats().Lanes["bulk"].Depth <= queueDepth-1 })
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if order[0] != Interactive {
		t.Fatalf("first grant after release = %v, want interactive (order %v)", order[0], order)
	}
	if len(order) != queueDepth+1 {
		t.Fatalf("grants = %d, want %d", len(order), queueDepth+1)
	}
	if st := c.Stats(); st.Lanes["interactive"].Queued != 1 || st.Lanes["bulk"].Queued != queueDepth {
		t.Fatalf("queued stats = %+v, want 1 interactive / %d bulk", st.Lanes, queueDepth)
	}
}
