package serve_test

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"regexp"
	"sort"
	"strings"
	"testing"

	"scaleout/internal/admit"
	"scaleout/internal/cluster"
	"scaleout/internal/exp"
	"scaleout/internal/metrics"
	"scaleout/internal/serve"
	"scaleout/internal/store"
)

// statszTwin maps every numeric (or boolean) /statsz leaf — dotted
// path, array indices and lane names collapsed to "*" — to the
// /metricsz family that carries the same number. This is the contract
// that keeps the two observability surfaces from drifting: a counter
// added to a Stats() snapshot without a metrics twin fails the test
// until it is either wired up or explicitly exempted with a reason.
var statszTwin = map[string]string{
	"workers":         "soproc_engine_worker_slots",
	"in_flight":       "soproc_engine_in_flight_points",
	"remote":          "soproc_engine_remote_points_total",
	"memo.hits":       "soproc_engine_memo_hits_total",
	"memo.misses":     "soproc_engine_points_total",
	"memo.evictions":  "soproc_engine_memo_evictions_total",
	"memo.store_hits": "soproc_engine_store_hits_total",
	"memo.size":       "soproc_engine_memo_entries",
	"memo.capacity":   "soproc_engine_memo_capacity_entries",
	"experiments":     "soproc_server_experiments",
	"uptime_seconds":  "soproc_server_uptime_seconds",

	"tier.scored":           "soproc_tier_scored_points_total",
	"tier.anchor_hits":      "soproc_tier_anchor_hits_total",
	"tier.surrogate_served": "soproc_tier_surrogate_served_total",
	"tier.escalated":        "soproc_tier_escalated_points_total",
	"tier.anchors":          "soproc_tier_anchors",
	"tier.regions":          "soproc_tier_regions",

	"store.loaded":      "soproc_store_loaded_records_total",
	"store.entries":     "soproc_store_entries",
	"store.disk_hits":   "soproc_store_disk_hits_total",
	"store.disk_misses": "soproc_store_disk_misses_total",
	"store.appends":     "soproc_store_appends_total",
	"store.compactions": "soproc_store_compactions_total",
	"store.bytes":       "soproc_store_log_bytes",
	"store.save_errors": "soproc_store_save_errors_total",

	"cluster.routed":           "soproc_cluster_routed_points_total",
	"cluster.failovers":        "soproc_cluster_failovers_total",
	"cluster.retries":          "soproc_cluster_retries_total",
	"cluster.busy":             "soproc_cluster_busy_total",
	"cluster.local_fallbacks":  "soproc_cluster_local_fallbacks_total",
	"cluster.unroutable":       "soproc_cluster_unroutable_total",
	"cluster.rejects":          "soproc_cluster_rejects_total",
	"cluster.posts":            "soproc_cluster_posts_total",
	"cluster.peers.*.sent":     "soproc_cluster_replica_sent_points_total",
	"cluster.peers.*.failures": "soproc_cluster_replica_failures_total",
	"cluster.peers.*.busy":     "soproc_cluster_replica_busy_total",
	"cluster.peers.*.probes":   "soproc_cluster_replica_probes_total",
	"cluster.peers.*.down":     "soproc_cluster_replica_down",

	"admit.admitted":         "soproc_admit_admitted_total",
	"admit.in_flight":        "soproc_admit_in_flight_requests",
	"admit.rate_limited":     "soproc_admit_rate_limited_total",
	"admit.shed_queue_full":  "soproc_admit_shed_queue_full_total",
	"admit.shed_draining":    "soproc_admit_shed_draining_total",
	"admit.abandoned":        "soproc_admit_abandoned_total",
	"admit.lanes.*.admitted": "soproc_admit_lane_admitted_total",
	"admit.lanes.*.queued":   "soproc_admit_lane_queued_total",
	"admit.lanes.*.depth":    "soproc_admit_lane_depth",
	"admit.clients":          "soproc_admit_clients",
	"admit.draining":         "soproc_admit_draining",
}

// statszExempt lists /statsz leaves that deliberately have no metrics
// twin, with the reason.
var statszExempt = map[string]string{
	"tier.escalation_rate": "derived ratio; compute from escalated/scored at query time",
}

// metricNamePattern is the repo's naming contract:
// soproc_<subsystem>_<name>, lower-snake.
var metricNamePattern = regexp.MustCompile(`^soproc_(engine|tier|server|store|cluster|admit)_[a-z0-9_]+$`)

// TestMetricsContract wires every subsystem into one server — engine
// with store, tiered evaluator, admission controller, and a (never
// routed) cluster coordinator — and holds /metricsz to its contracts:
// the page parses as strict Prometheus text, every family obeys the
// naming rules, and every /statsz leaf has its metrics twin present on
// the same scrape.
func TestMetricsContract(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	defer st.Close()
	eng := exp.NewBounded(2, 64)
	eng.SetStore(st)
	srv := serve.New(eng)
	obs := srv.EnableObservability(serve.ObservabilityOptions{TraceDecisions: true})
	st.RegisterMetrics(obs.Registry)
	coord, err := cluster.New([]string{"127.0.0.1:1", "127.0.0.1:2"})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	coord.RegisterMetrics(obs.Registry)
	srv.SetClusterStats(func() any { return coord.Stats() })
	srv.SetStoreStats(func() any { return st.Stats() })
	ctrl := admit.New(admit.Options{MaxInFlight: 4})
	ctrl.RegisterMetrics(obs.Registry)
	srv.SetAdmitStats(func() any { return ctrl.Stats() })

	ts := httptest.NewServer(ctrl.Middleware(srv.Handler()))
	defer ts.Close()

	// Scrape and parse /metricsz.
	mres, err := ts.Client().Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatalf("GET /metricsz: %v", err)
	}
	defer mres.Body.Close()
	if ct := mres.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, metrics.ContentType)
	}
	page, err := io.ReadAll(mres.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := metrics.ParseText(string(page))
	if err != nil {
		t.Fatalf("ParseText(/metricsz): %v\npage:\n%s", err, page)
	}

	// Naming contract.
	for name, fam := range fams {
		if !metricNamePattern.MatchString(name) {
			t.Errorf("family %q violates soproc_<subsystem>_<name> naming", name)
		}
		if fam.Kind == "counter" && !strings.HasSuffix(name, "_total") {
			t.Errorf("counter %q must end in _total", name)
		}
		if strings.TrimSpace(fam.Help) == "" {
			t.Errorf("family %q has no HELP text", name)
		}
	}

	// Flatten /statsz and cross-check the twin table.
	sres, err := ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatalf("GET /statsz: %v", err)
	}
	defer sres.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(sres.Body).Decode(&doc); err != nil {
		t.Fatalf("decode /statsz: %v", err)
	}
	leaves := map[string]bool{}
	flattenStatsz("", doc, leaves)

	var paths []string
	for p := range leaves {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if _, ok := statszExempt[path]; ok {
			continue
		}
		family, ok := statszTwin[path]
		if !ok {
			t.Errorf("/statsz leaf %q has no /metricsz twin: add one to the registry and to statszTwin, or exempt it with a reason", path)
			continue
		}
		if _, ok := fams[family]; !ok {
			t.Errorf("/statsz leaf %q maps to %q, which is missing from /metricsz", path, family)
		}
	}
	// The table must not reference families that no longer exist
	// either — a rename has to land on both surfaces.
	for path, family := range statszTwin {
		if _, ok := fams[family]; !ok {
			t.Errorf("statszTwin[%q] = %q is not on /metricsz", path, family)
		}
	}
}

// flattenStatsz walks a decoded JSON document and records every
// numeric or boolean leaf as a dotted path; array indices and the keys
// of "lanes" maps collapse to "*" so per-replica and per-lane leaves
// match one table entry.
func flattenStatsz(prefix string, v any, out map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			key := k
			if strings.HasSuffix(prefix, "lanes") {
				key = "*"
			}
			p := key
			if prefix != "" {
				p = prefix + "." + key
			}
			flattenStatsz(p, child, out)
		}
	case []any:
		for _, child := range x {
			flattenStatsz(prefix+".*", child, out)
		}
	case float64, bool:
		out[prefix] = true
	}
}

// TestMetricsTwinValuesAgree spot-checks that a twin pair reports the
// same number on the same scrape after traffic: the engine's /statsz
// memo counters equal the soproc_engine_* families.
func TestMetricsTwinValuesAgree(t *testing.T) {
	eng := exp.New(2)
	srv := serve.New(eng)
	obs := srv.EnableObservability(serve.ObservabilityOptions{})

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Drive some points through the sweep endpoint, twice for memo hits.
	body := `{"points":[{"workload":"Web Search","core":"ooo","cores":4,"llc_mb":2}]}`
	for i := 0; i < 2; i++ {
		res, err := ts.Client().Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /v1/sweep: %v", err)
		}
		res.Body.Close()
		if res.StatusCode != 200 {
			t.Fatalf("POST /v1/sweep: status %d", res.StatusCode)
		}
	}

	fams, err := metrics.ParseText(obs.Registry.Text())
	if err != nil {
		t.Fatal(err)
	}
	es := eng.Stats()
	for family, want := range map[string]int64{
		"soproc_engine_points_total":    es.Misses,
		"soproc_engine_memo_hits_total": es.Hits,
	} {
		fam, ok := fams[family]
		if !ok {
			t.Fatalf("%s missing from scrape", family)
		}
		if got := fam.Samples[0].Value; got != float64(want) {
			t.Errorf("%s = %v, /statsz says %d", family, got, want)
		}
	}
	if es.Misses == 0 || es.Hits == 0 {
		t.Fatalf("traffic did not exercise both memo paths: %+v", es)
	}
}
