// Package serve implements the soprocd HTTP/JSON service: the
// experiment engine behind a long-running endpoint, so many clients
// sweeping overlapping pod configurations share one worker pool and one
// bounded memo, and repeated design points become cache hits instead of
// simulations.
//
// Endpoints:
//
//	GET  /healthz              liveness probe ("ok")
//	GET  /statsz               engine statistics (memo hits/misses/
//	                           evictions, in-flight work, pool size)
//	GET  /v1/experiments       registered experiment IDs (JSON)
//	GET  /v1/exp/{id}          run one experiment; id "all" runs every
//	                           experiment in ID order. format=table|csv
//	                           selects the rendering; the body is
//	                           byte-identical to the soproc CLI's stdout
//	                           for the same experiment and format.
//	POST /v1/sweep             ad-hoc batched sweep: JSON points
//	                           (statistical or structural simulator)
//	                           fanned out across the worker pool,
//	                           results in input order.
//
// Every request runs on the server's engine via the same context
// plumbing the CLIs use: a disconnecting client cancels its points, and
// process shutdown drains in-flight work before cancelling the rest.
//
// The server itself admits everything; soprocd layers overload
// protection in front of it with internal/admit's middleware (rate
// limits, bounded queueing with 429 + Retry-After shedding, priority
// lanes, per-request deadlines), and the /statsz "admit" section
// reports what that middleware did (SetAdmitStats).
//
// The full HTTP contract — request and response JSON shapes with wire
// tags, error codes, limits, and drain semantics — is documented in
// API.md at the repository root; the coordinator protocol that shards
// /v1/sweep points across replicas is in internal/cluster and the
// DESIGN.md cluster section.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"scaleout/internal/admit"
	"scaleout/internal/exp"
	"scaleout/internal/figures"
	"scaleout/internal/noc"
	"scaleout/internal/sim"
	"scaleout/internal/tech"
	"scaleout/internal/tier"
	"scaleout/internal/workload"
)

// MaxSweepPoints bounds one /v1/sweep request; larger design-space
// scans should batch across requests so no single client can monopolize
// the pool's queue.
const MaxSweepPoints = 4096

// ForwardedHeader marks a /v1/sweep request that was already forwarded
// by a cluster coordinator. The serving replica disables routing for
// such a request (exp.DisableRouting), so work is forwarded at most one
// hop and a peer cycle cannot loop; see API.md.
const ForwardedHeader = "X-Soproc-Forwarded"

// Server routes the soprocd endpoints onto one experiment engine.
// Construct with New; the zero value is not usable.
type Server struct {
	eng   *exp.Engine
	mux   *http.ServeMux
	known map[string]bool // registered experiment IDs
	start time.Time

	// tier is the tiered evaluator every sweep and experiment runs
	// through. New installs an uncalibrated evaluator (exact mode, no
	// anchors — behaviour and output identical to direct simulation);
	// SetTier swaps in a calibrated one (soprocd -calibration).
	tier *tier.Evaluator

	// obs, if set (EnableObservability), is the live instrumentation
	// behind GET /metricsz and GET /v1/trace.
	obs *Observability

	// clusterStats, if set (SetClusterStats), supplies the /statsz
	// "cluster" section for a coordinator daemon.
	clusterStats func() any

	// storeStats, if set (SetStoreStats), supplies the /statsz "store"
	// section for a daemon running with a persistent result store.
	storeStats func() any

	// admitStats, if set (SetAdmitStats), supplies the /statsz "admit"
	// section for a daemon running behind an admission controller.
	admitStats func() any
}

// SetAdmitStats installs a snapshot hook whose value is reported as the
// /statsz "admit" section — soprocd wires admit.Controller.Stats here
// when admission control is enabled. Call before serving; a nil hook
// (the default) omits the section.
func (s *Server) SetAdmitStats(fn func() any) { s.admitStats = fn }

// SetStoreStats installs a snapshot hook whose value is reported as the
// /statsz "store" section — soprocd -store wires store.Store.Stats
// here. Call before serving; a nil hook (the default) omits the
// section.
func (s *Server) SetStoreStats(fn func() any) { s.storeStats = fn }

// SetClusterStats installs a snapshot hook whose value is reported as
// the /statsz "cluster" section — a coordinator daemon wires its
// cluster.Coordinator.Stats here. Call before serving; a nil hook (the
// default) omits the section.
func (s *Server) SetClusterStats(fn func() any) { s.clusterStats = fn }

// SetTier replaces the server's tiered evaluator — how soprocd installs
// one loaded with a calibration file. Call before serving; a nil ev
// restores the uncalibrated default. The evaluator's default mode
// applies to /v1/exp (always exact, preserving byte-identity with the
// CLI); /v1/sweep requests select their mode per request via the tier
// field.
func (s *Server) SetTier(ev *tier.Evaluator) {
	if ev == nil {
		ev = tier.New(nil, tier.Exact)
	}
	s.tier = ev
	s.installTierHook()
}

// New returns a server running every request on eng (nil selects the
// process-wide default engine).
func New(eng *exp.Engine) *Server {
	if eng == nil {
		eng = exp.Default()
	}
	s := &Server{
		eng:   eng,
		mux:   http.NewServeMux(),
		known: make(map[string]bool),
		start: time.Now(),
		tier:  tier.New(nil, tier.Exact),
	}
	for _, id := range figures.IDs() {
		s.known[id] = true
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/exp/{id}", s.handleExp)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	return s
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// MemoStats is the memo section of the /statsz response.
type MemoStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// StoreHits counts memo misses answered by the persistent result
	// store instead of the simulator; always 0 without -store.
	StoreHits int64 `json:"store_hits,omitempty"`
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"` // 0 = unbounded
}

// StatsResponse is the /statsz body. Remote counts points resolved on
// cluster replicas rather than the local pool; Cluster is the
// coordinator's per-replica routing snapshot (cluster.Stats) and is
// present only when this daemon runs with -peers.
type StatsResponse struct {
	Workers       int       `json:"workers"`
	InFlight      int64     `json:"in_flight"`
	Remote        int64     `json:"remote"`
	Memo          MemoStats `json:"memo"`
	Experiments   int       `json:"experiments"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	// Tier is the tiered evaluator's per-tier point counters and
	// escalation rate (tier.Stats).
	Tier tier.Stats `json:"tier"`
	// Store is the persistent result store's counter snapshot
	// (store.Stats); present only when the daemon runs with -store.
	Store   any `json:"store,omitempty"`
	Cluster any `json:"cluster,omitempty"`
	// Admit is the admission controller's counter snapshot
	// (admit.Stats); present only when the daemon runs behind
	// admit.Middleware.
	Admit any `json:"admit,omitempty"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	st := s.eng.Stats()
	resp := StatsResponse{
		Workers:  s.eng.Workers(),
		InFlight: st.InFlight,
		Remote:   st.Remote,
		Memo: MemoStats{
			Hits:      st.Hits,
			Misses:    st.Misses,
			Evictions: st.Evictions,
			StoreHits: st.StoreHits,
			Size:      st.MemoSize,
			Capacity:  st.MemoCapacity,
		},
		Experiments:   len(s.known),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Tier:          s.tier.Stats(),
	}
	if s.storeStats != nil {
		resp.Store = s.storeStats()
	}
	if s.clusterStats != nil {
		resp.Cluster = s.clusterStats()
	}
	if s.admitStats != nil {
		resp.Admit = s.admitStats()
	}
	writeJSON(w, http.StatusOK, resp)
}

// ExperimentsResponse is the /v1/experiments body.
type ExperimentsResponse struct {
	Experiments []string `json:"experiments"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, ExperimentsResponse{Experiments: figures.IDs()})
}

func (s *Server) handleExp(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "table"
	}
	// Reject unknown formats exactly as the soproc CLI does (same
	// validation, figures.Renderer), rather than silently falling back.
	render, err := figures.Renderer(format)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if id != "all" && !s.known[id] {
		http.Error(w, fmt.Sprintf("unknown experiment %q (see /v1/experiments)", id), http.StatusNotFound)
		return
	}

	// Experiments always run through the tiered evaluator in exact mode:
	// every value is a genuine simulator result (anchor-served or
	// escalated), so the body stays byte-identical to the CLI's.
	ctx := exp.WithTier(tier.WithMode(exp.WithEngine(r.Context(), s.eng), tier.Exact), s.tier)
	var tables []figures.Table
	if id == "all" {
		tables, err = figures.RunAllContext(ctx)
	} else {
		var t figures.Table
		t, err = figures.RunContext(ctx, id)
		tables = []figures.Table{t}
	}
	if err != nil {
		status := http.StatusInternalServerError
		if exp.IsCancellation(err) {
			// The client went away or the server is draining; the
			// engine has already withdrawn the unfinished points.
			status = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), status)
		return
	}

	if format == "csv" {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	// One rendered table per line group with a trailing blank separator
	// — the same framing the CLI's fmt.Println produces, so a response
	// body diffs clean against `soproc -exp <id> -format <format>`.
	for _, t := range tables {
		io.WriteString(w, render(t))
		io.WriteString(w, "\n")
	}
}

// SweepPoint is one ad-hoc simulation request in a /v1/sweep batch, in
// one of two forms. The human-friendly short form names its workload
// and core type symbolically; the server resolves them against the
// calibrated models and applies the simulator's usual defaults. The
// complete form carries a versioned wire object (sim.WireConfig) in
// Config instead — every field the simulators consume, including
// interconnect and workload parameters the short form cannot express —
// and is what a cluster coordinator forwards. Either way the point is
// memoized by the same canonical fingerprint the experiment generators
// use, so a point shared with a figure sweep is a cache hit.
type SweepPoint struct {
	// Config, when present, is the complete wire-form configuration
	// (sim.WireConfig JSON, wire_version checked first); every symbolic
	// field below must then be unset. Build one with WirePoint.
	Config json.RawMessage `json:"config,omitempty"`

	// Kind selects the simulator: "sim" (statistical, the default) or
	// "structural".
	Kind string `json:"kind,omitempty"`

	// Workload is the CloudSuite workload name as in the thesis
	// figures, e.g. "Web Search" (see workload.Names).
	Workload string `json:"workload"`

	// Core is the core microarchitecture: "conventional", "ooo", or
	// "in-order".
	Core string `json:"core"`

	Cores int     `json:"cores"`
	LLCMB float64 `json:"llc_mb"`

	// Net names the interconnect: "ideal", "crossbar" (default),
	// "mesh", "flattened-butterfly", or "noc-out". LLCTiles and
	// LinkBits require an explicit Net (LLCTiles "noc-out" only);
	// on other nets they would be ignored by the simulator while
	// still splitting the memo fingerprint, so they are rejected.
	Net      string `json:"net,omitempty"`
	LLCTiles int    `json:"llc_tiles,omitempty"` // NOC-Out LLC tiles
	LinkBits int    `json:"link_bits,omitempty"` // link width override

	MemChannels   int    `json:"mem_channels,omitempty"`
	WarmupCycles  int    `json:"warmup_cycles,omitempty"`
	MeasureCycles int    `json:"measure_cycles,omitempty"`
	Seed          uint64 `json:"seed,omitempty"`

	// DisableSWScaling applies to kind "sim" only.
	DisableSWScaling bool `json:"disable_sw_scaling,omitempty"`
	// L1MSHRs applies to kind "structural" only.
	L1MSHRs int `json:"l1_mshrs,omitempty"`
}

// SweepRequest is the /v1/sweep body. Tier selects the evaluation
// tier: "exact" (the default, also the empty string) answers every
// point with a genuine simulator result — from the calibration anchor
// store when the fingerprint matches, otherwise simulated — while
// "fast" additionally serves calibration-certified interior points from
// the analytic surrogate, tagged source:"surrogate" in the result.
// Unknown tier names are rejected with 400.
type SweepRequest struct {
	Tier   string       `json:"tier,omitempty"`
	Points []SweepPoint `json:"points"`
}

// WireVersionErrorResponse is the structured 400 body for a "config"
// wire object whose wire_version this daemon does not speak: the
// offending version, and the one supported here. A cluster coordinator
// keys on the wire_version field to classify the rejection as permanent
// (no retry, no markDown) rather than a replica failure.
type WireVersionErrorResponse struct {
	Error       string `json:"error"`
	WireVersion int    `json:"wire_version"`
	Supported   int    `json:"supported_wire_version"`
}

// SweepResult is one point's outcome, in input order; exactly one of
// Sim/Structural is set, matching the point's kind.
type SweepResult struct {
	Kind       string                `json:"kind"`
	Sim        *sim.Result           `json:"sim,omitempty"`
	Structural *sim.StructuralResult `json:"structural,omitempty"`
}

// SweepResponse is the /v1/sweep response body.
type SweepResponse struct {
	Results []SweepResult `json:"results"`
}

// maxSweepBody bounds the /v1/sweep request body: the decoder
// allocates the whole value before the point-count check can run, so
// the byte cap is what actually protects the daemon's memory. 8MB is
// ~2KB per point at MaxSweepPoints.
const maxSweepBody = 8 << 20

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSweepBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			// The cap fired before validation could: a structured 413
			// tells the client the body limit rather than a generic
			// decode failure.
			admit.WriteError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("sweep request body exceeds %d bytes", tooBig.Limit), 0)
			return
		}
		http.Error(w, "bad sweep request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Points) == 0 {
		http.Error(w, "sweep request has no points", http.StatusBadRequest)
		return
	}
	if len(req.Points) > MaxSweepPoints {
		http.Error(w, fmt.Sprintf("sweep request has %d points, max %d", len(req.Points), MaxSweepPoints),
			http.StatusBadRequest)
		return
	}

	mode, ok := tier.ParseMode(req.Tier)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown tier %q (want exact or fast)", req.Tier), http.StatusBadRequest)
		return
	}

	// Group the points by simulator kind: each group is one batch
	// through the tiered evaluator, which scores every point on the
	// surrogate and escalates only what the tier mode requires.
	kinds := make([]string, len(req.Points))
	var simIdx []int
	var simCfgs []sim.Config
	var structIdx []int
	var structCfgs []sim.StructuralConfig
	for i, p := range req.Points {
		kind, cfg, err := p.config()
		if err != nil {
			var ve *sim.WireVersionError
			if errors.As(err, &ve) {
				// Version negotiation is structured so a coordinator can
				// tell "this replica does not speak my wire version"
				// (permanent, try another replica) from a transient
				// failure it should retry.
				writeJSON(w, http.StatusBadRequest, WireVersionErrorResponse{
					Error:       fmt.Sprintf("point %d: %v", i, err),
					WireVersion: ve.Version,
					Supported:   sim.WireVersion,
				})
				return
			}
			http.Error(w, fmt.Sprintf("point %d: %v", i, err), http.StatusBadRequest)
			return
		}
		kinds[i] = kind
		switch c := cfg.(type) {
		case sim.Config:
			simIdx = append(simIdx, i)
			simCfgs = append(simCfgs, c)
		case sim.StructuralConfig:
			structIdx = append(structIdx, i)
			structCfgs = append(structCfgs, c)
		}
	}

	ctx := tier.WithMode(exp.WithEngine(r.Context(), s.eng), mode)
	if r.Header.Get(ForwardedHeader) != "" {
		// Already forwarded once by a coordinator: compute here, never
		// re-route, so a peer cycle cannot bounce work forever.
		ctx = exp.DisableRouting(ctx)
	}

	resp := SweepResponse{Results: make([]SweepResult, len(req.Points))}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	if len(simCfgs) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := s.tier.Sims(ctx, simCfgs)
			if err != nil {
				errs[0] = err
				return
			}
			for k, i := range simIdx {
				r := res[k]
				resp.Results[i].Sim = &r
			}
		}()
	}
	if len(structCfgs) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := s.tier.Structurals(ctx, structCfgs)
			if err != nil {
				errs[1] = err
				return
			}
			for k, i := range structIdx {
				r := res[k]
				resp.Results[i].Structural = &r
			}
		}()
	}
	wg.Wait()
	if err := exp.FirstError(errs, nil); err != nil {
		status := http.StatusInternalServerError
		if exp.IsCancellation(err) {
			status = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), status)
		return
	}

	for i := range resp.Results {
		resp.Results[i].Kind = kinds[i]
	}
	writeJSON(w, http.StatusOK, resp)
}

// WirePoint wraps a configuration's wire form in the SweepPoint that
// carries it — the complete-form request a cluster coordinator POSTs to
// a replica's /v1/sweep. Unlike the retired symbolic conversion, every
// valid configuration is representable; the only error source is JSON
// marshalling itself.
func WirePoint(wc sim.WireConfig) (SweepPoint, error) {
	raw, err := json.Marshal(wc)
	if err != nil {
		return SweepPoint{}, err
	}
	return SweepPoint{Config: raw}, nil
}

// legacyEmpty reports whether every symbolic short-form field is unset,
// so a point carrying a "config" wire object is unambiguous.
func (p SweepPoint) legacyEmpty() bool {
	return p.Kind == "" && p.Workload == "" && p.Core == "" && p.Cores == 0 &&
		p.LLCMB == 0 && p.Net == "" && p.LLCTiles == 0 && p.LinkBits == 0 &&
		p.MemChannels == 0 && p.WarmupCycles == 0 && p.MeasureCycles == 0 &&
		p.Seed == 0 && !p.DisableSWScaling && p.L1MSHRs == 0
}

// config resolves the request into a validated simulator configuration
// — a sim.Config or sim.StructuralConfig matching kind. A "config"
// wire object is decoded with its version checked first
// (*sim.WireVersionError on mismatch); otherwise the symbolic short
// form is resolved against the calibrated models.
func (p SweepPoint) config() (kind string, cfg any, err error) {
	if len(p.Config) > 0 {
		if !p.legacyEmpty() {
			return "", nil, fmt.Errorf("config cannot be combined with the symbolic short-form fields")
		}
		wc, err := sim.UnmarshalWire(p.Config)
		if err != nil {
			return "", nil, err
		}
		c, err := wc.Decode()
		if err != nil {
			return "", nil, err
		}
		switch c.(type) {
		case sim.Config:
			return "sim", c, nil
		case sim.StructuralConfig:
			return "structural", c, nil
		default:
			return "", nil, fmt.Errorf("unsupported wire config type %T", c)
		}
	}
	w, ok := workload.ByName(p.Workload)
	if !ok {
		return "", nil, fmt.Errorf("unknown workload %q (want one of: %s)",
			p.Workload, strings.Join(workload.Names(), ", "))
	}
	core, err := parseCore(p.Core)
	if err != nil {
		return "", nil, err
	}
	net, err := p.net()
	if err != nil {
		return "", nil, err
	}
	switch p.Kind {
	case "", "sim":
		if p.L1MSHRs != 0 {
			return "", nil, fmt.Errorf("l1_mshrs applies to structural points only")
		}
		c := sim.Config{
			Workload: w, CoreType: core, Cores: p.Cores, LLCMB: p.LLCMB,
			Net: net, MemChannels: p.MemChannels,
			WarmupCycles: p.WarmupCycles, MeasureCycles: p.MeasureCycles,
			Seed: p.Seed, DisableSWScaling: p.DisableSWScaling,
		}
		if _, err := c.Canonical(); err != nil {
			return "", nil, err
		}
		return "sim", c, nil
	case "structural":
		if p.DisableSWScaling {
			return "", nil, fmt.Errorf("disable_sw_scaling applies to sim points only")
		}
		c := sim.StructuralConfig{
			Workload: w, CoreType: core, Cores: p.Cores, LLCMB: p.LLCMB,
			Net: net, MemChannels: p.MemChannels,
			WarmupCycles: p.WarmupCycles, MeasureCycles: p.MeasureCycles,
			Seed: p.Seed, L1MSHRs: p.L1MSHRs,
		}
		if _, err := c.Canonical(); err != nil {
			return "", nil, err
		}
		return "structural", c, nil
	default:
		return "", nil, fmt.Errorf("unknown kind %q (want sim or structural)", p.Kind)
	}
}

// net builds the point's interconnect. An empty name leaves the zero
// Config so the simulator applies its own crossbar default, keeping the
// fingerprint identical to a CLI sweep that did the same; overrides on
// a net that cannot use them are rejected rather than silently
// splitting the memo key.
func (p SweepPoint) net() (noc.Config, error) {
	if p.Net == "" {
		if p.LLCTiles != 0 || p.LinkBits != 0 {
			return noc.Config{}, fmt.Errorf("llc_tiles/link_bits require an explicit net")
		}
		return noc.Config{}, nil
	}
	var kind noc.Kind
	switch strings.ToLower(p.Net) {
	case "ideal":
		kind = noc.Ideal
	case "crossbar":
		kind = noc.Crossbar
	case "mesh":
		kind = noc.Mesh
	case "flattened-butterfly", "fbfly":
		kind = noc.FlattenedButterfly
	case "noc-out", "nocout":
		kind = noc.NOCOut
	default:
		return noc.Config{}, fmt.Errorf("unknown net %q (want ideal, crossbar, mesh, flattened-butterfly, or noc-out)", p.Net)
	}
	if p.LLCTiles != 0 && kind != noc.NOCOut {
		return noc.Config{}, fmt.Errorf("llc_tiles applies to net \"noc-out\" only")
	}
	cfg := noc.New(kind, p.Cores)
	if p.LLCTiles > 0 {
		cfg.LLCTiles = p.LLCTiles
	}
	if p.LinkBits > 0 {
		cfg = cfg.WithLinkBits(p.LinkBits)
	}
	return cfg, nil
}

func parseCore(name string) (tech.CoreType, error) {
	switch strings.ToLower(name) {
	case "conventional":
		return tech.Conventional, nil
	case "ooo", "out-of-order":
		return tech.OoO, nil
	case "in-order", "inorder":
		return tech.InOrder, nil
	default:
		return 0, fmt.Errorf("unknown core %q (want conventional, ooo, or in-order)", name)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
