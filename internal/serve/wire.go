package serve

import (
	"scaleout/internal/noc"
	"scaleout/internal/sim"
	"scaleout/internal/tech"
)

// WirePointSim converts a simulator configuration into the SweepPoint
// that resolves back to it — the wire form a cluster coordinator POSTs
// to a replica's /v1/sweep. The conversion is verified by round-trip:
// the returned point is re-resolved exactly as the receiving replica
// would resolve it, and must reproduce the configuration's canonical
// memo fingerprint (sim.Config.Key). ok is false when the
// configuration is not representable on the wire — a workload not in
// the calibrated suite, or an interconnect with fields the sweep API
// does not carry (WireDelta, Concentration, ExpressLinks, a custom
// TileEdge) — in which case the caller must compute the point locally.
func WirePointSim(cfg sim.Config) (p SweepPoint, ok bool) {
	cc, err := cfg.Canonical()
	if err != nil {
		return SweepPoint{}, false
	}
	p, ok = wireCommon(cc.Workload.Name, cc.CoreType, cc.Cores, cc.LLCMB, cc.Net)
	if !ok {
		return SweepPoint{}, false
	}
	p.Kind = "sim"
	p.MemChannels = cc.MemChannels
	p.WarmupCycles = cc.WarmupCycles
	p.MeasureCycles = cc.MeasureCycles
	p.Seed = cc.Seed
	p.DisableSWScaling = cc.DisableSWScaling
	return p, roundTrips(p, cfg.Key())
}

// WirePointStructural is WirePointSim for the structural simulator; the
// round-trip is verified against sim.StructuralConfig.Key.
func WirePointStructural(cfg sim.StructuralConfig) (p SweepPoint, ok bool) {
	cc, err := cfg.Canonical()
	if err != nil {
		return SweepPoint{}, false
	}
	p, ok = wireCommon(cc.Workload.Name, cc.CoreType, cc.Cores, cc.LLCMB, cc.Net)
	if !ok {
		return SweepPoint{}, false
	}
	p.Kind = "structural"
	p.MemChannels = cc.MemChannels
	p.WarmupCycles = cc.WarmupCycles
	p.MeasureCycles = cc.MeasureCycles
	p.Seed = cc.Seed
	p.L1MSHRs = cc.L1MSHRs
	return p, roundTrips(p, cfg.Key())
}

// wireCommon maps the fields shared by both simulator kinds into their
// symbolic wire names, declining combinations the sweep API cannot
// express.
func wireCommon(workload string, core tech.CoreType, cores int, llcMB float64, net noc.Config) (SweepPoint, bool) {
	p := SweepPoint{Workload: workload, Cores: cores, LLCMB: llcMB}
	switch core {
	case tech.Conventional:
		p.Core = "conventional"
	case tech.OoO:
		p.Core = "ooo"
	case tech.InOrder:
		p.Core = "in-order"
	default:
		return SweepPoint{}, false
	}
	switch net.Kind {
	case noc.Ideal:
		p.Net = "ideal"
	case noc.Crossbar:
		p.Net = "crossbar"
	case noc.Mesh:
		p.Net = "mesh"
	case noc.FlattenedButterfly:
		p.Net = "flattened-butterfly"
	case noc.NOCOut:
		p.Net = "noc-out"
		p.LLCTiles = net.LLCTiles
	default:
		return SweepPoint{}, false
	}
	if def := noc.New(net.Kind, cores); net.LinkBits != def.LinkBits {
		p.LinkBits = net.LinkBits
	}
	return p, true
}

// roundTrips reports whether the wire point, resolved exactly as a
// replica's /v1/sweep handler resolves it, reproduces the original
// configuration's memo fingerprint. This is the safety gate that keeps
// cluster output byte-identical to single-node output: a configuration
// the wire cannot faithfully carry never leaves the process.
func roundTrips(p SweepPoint, wantKey string) bool {
	_, pt, err := p.point()
	return err == nil && pt.Key() == wantKey
}
