package serve

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"scaleout/internal/exp"
	"scaleout/internal/sim"
	"scaleout/internal/tech"
	"scaleout/internal/tier"
	"scaleout/internal/workload"
)

func postSweepReq(t *testing.T, s *Server, req SweepRequest) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(string(body)))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	return w
}

// An unknown tier name is a 400, not a silent fall back to exact.
func TestSweepUnknownTier(t *testing.T) {
	s := New(exp.New(1))
	w := postSweepReq(t, s, SweepRequest{Tier: "bogus", Points: []SweepPoint{{
		Workload: workload.WebSearch, Core: "ooo", Cores: 2, LLCMB: 1,
	}}})
	if w.Code != 400 {
		t.Fatalf("tier bogus: status %d, want 400", w.Code)
	}
	if !strings.Contains(w.Body.String(), "unknown tier") {
		t.Errorf("tier bogus: body %q", w.Body.String())
	}
}

// The default (exact, uncalibrated) sweep path returns exactly what the
// simulator returns — the evaluator is invisible.
func TestSweepExactMatchesDirect(t *testing.T) {
	s := New(exp.New(1))
	pt := SweepPoint{Workload: workload.WebSearch, Core: "ooo", Cores: 4, LLCMB: 2}
	w := postSweepReq(t, s, SweepRequest{Points: []SweepPoint{pt}})
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp SweepResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	_, cfg, err := pt.config()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(cfg.(sim.Config))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Sim == nil || !reflect.DeepEqual(*resp.Results[0].Sim, want) {
		t.Errorf("sweep result %+v != direct %+v", resp.Results[0].Sim, want)
	}
}

// tier:"fast" against a calibrated evaluator serves certified interior
// points from the surrogate, tagged in the wire result; the same
// request without the tier field stays exact.
func TestSweepFastTier(t *testing.T) {
	s := New(exp.New(1))
	s.SetTier(tier.New(&tier.Calibration{
		Granularity: 1,
		Safety:      1,
		Regions: []tier.Region{
			{Key: tier.RegionKey(1, "sim", tech.OoO, 0, 0, 0), Samples: 1, MaxRelErr: 0.05},
		},
	}, tier.Exact))

	pt := SweepPoint{Workload: workload.WebSearch, Core: "ooo", Cores: 4, LLCMB: 2}
	w := postSweepReq(t, s, SweepRequest{Tier: "fast", Points: []SweepPoint{pt}})
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp SweepResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Sim.Source != "surrogate" {
		t.Errorf("fast tier source = %q, want surrogate", resp.Results[0].Sim.Source)
	}

	w = postSweepReq(t, s, SweepRequest{Tier: "exact", Points: []SweepPoint{pt}})
	var exact SweepResponse
	if err := json.Unmarshal(w.Body.Bytes(), &exact); err != nil {
		t.Fatal(err)
	}
	if exact.Results[0].Sim.Source != "" {
		t.Errorf("exact tier served a surrogate value: %+v", exact.Results[0].Sim)
	}
}

// /statsz reports the evaluator's per-tier counters.
func TestStatszTierSection(t *testing.T) {
	s := New(exp.New(1))
	postSweepReq(t, s, SweepRequest{Points: []SweepPoint{{
		Workload: workload.WebSearch, Core: "ooo", Cores: 2, LLCMB: 1,
	}}})
	r := httptest.NewRequest("GET", "/statsz", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	var st StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Tier.Scored != 1 || st.Tier.Escalated != 1 {
		t.Errorf("tier stats = %+v, want 1 scored, 1 escalated", st.Tier)
	}
}
