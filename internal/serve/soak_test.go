package serve

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scaleout/internal/admit"
	"scaleout/internal/exp"
	"scaleout/internal/metrics"
	"scaleout/internal/sim"
	"scaleout/internal/store"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// TestObservabilitySoak churns every observable subsystem at once under
// the race detector: eight workers push overlapping sim batches through
// a small-memo engine backed by a write-through store, gated by an
// admission controller, while a scraper renders and re-parses the
// shared metrics registry (live histogram plus scrape-time closures)
// and the decision ring fills. Afterwards the books must balance —
// every admission attempt accounted for, every point served by exactly
// one of memo/store/compute, and the final scrape numerically equal to
// the subsystems' own stats.
func TestObservabilitySoak(t *testing.T) {
	dur := 2 * time.Second
	if testing.Short() {
		dur = 200 * time.Millisecond
	}

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	defer st.Close()
	// A memo far smaller than the working set forces concurrent
	// evictions, store write-through, and disk re-hits.
	eng := exp.NewBounded(4, 24)
	eng.SetStore(st)
	srv := New(eng)
	obs := srv.EnableObservability(ObservabilityOptions{TraceDecisions: true, TraceCapacity: 256})
	st.RegisterMetrics(obs.Registry)
	ctrl := admit.New(admit.Options{MaxInFlight: 6, QueueDepth: 4})
	ctrl.RegisterMetrics(obs.Registry)

	suite := workload.Suite()
	cfgs := make([]sim.Config, 96)
	for i := range cfgs {
		cfgs[i] = sim.Config{
			Workload: suite[i%len(suite)],
			CoreType: tech.CoreType(i % 3),
			Cores:    2 << (i % 2),
			LLCMB:    0.5 * float64(1+i),
		}
	}

	ctx := exp.WithEngine(context.Background(), eng)
	deadline := time.Now().Add(dur)
	var attempts, admitted, completed, shedded, points atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(deadline) {
				attempts.Add(1)
				release, err := ctrl.Admit(ctx, admit.Bulk, "soak")
				if err != nil {
					shedded.Add(1)
					continue
				}
				admitted.Add(1)
				batch := []sim.Config{
					cfgs[rng.Intn(len(cfgs))],
					cfgs[rng.Intn(len(cfgs))],
				}
				if _, err := exp.Sims(ctx, batch); err != nil {
					t.Errorf("Sims: %v", err)
				} else {
					points.Add(int64(len(batch)))
				}
				release()
				completed.Add(1)
			}
		}(int64(g))
	}
	// The scraper races the workers on purpose: rendering must never
	// tear (ParseText re-validates every page) and never deadlock
	// against the subsystems' own locks.
	scrapes := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			if _, err := metrics.ParseText(obs.Registry.Text()); err != nil {
				t.Errorf("mid-soak scrape: %v", err)
				return
			}
			scrapes++
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// Admission conservation: every attempt either got a slot or was
	// shed, every admitted request released.
	ast := ctrl.Stats()
	if ast.Admitted != admitted.Load() || admitted.Load() != completed.Load() {
		t.Fatalf("admitted = %d (stats %d), completed = %d; want equal", admitted.Load(), ast.Admitted, completed.Load())
	}
	refused := ast.RateLimited + ast.ShedQueueFull + ast.ShedDraining + ast.Abandoned
	if refused != shedded.Load() {
		t.Fatalf("refused per stats = %d, observed sheds = %d", refused, shedded.Load())
	}
	if got := ast.Admitted + refused; got != attempts.Load() {
		t.Fatalf("admitted %d + refused %d = %d, want %d attempts", ast.Admitted, refused, got, attempts.Load())
	}
	if ast.InFlight != 0 {
		t.Fatalf("in-flight after soak = %d, want 0", ast.InFlight)
	}

	// Engine conservation: each point came from exactly one source.
	es := eng.Stats()
	if got := es.Hits + es.Misses + es.StoreHits; got != points.Load() {
		t.Fatalf("hits %d + misses %d + store hits %d = %d, want %d points",
			es.Hits, es.Misses, es.StoreHits, got, points.Load())
	}
	if es.InFlight != 0 {
		t.Fatalf("engine in-flight after soak = %d, want 0", es.InFlight)
	}
	if es.Evictions == 0 || es.StoreHits == 0 {
		t.Fatalf("soak did not exercise eviction + disk re-hit (evictions %d, store hits %d)", es.Evictions, es.StoreHits)
	}

	// The quiesced scrape equals the subsystems' own counters, and the
	// decision ring saw every engine resolution.
	byName, err := metrics.ParseText(obs.Registry.Text())
	if err != nil {
		t.Fatalf("final scrape: %v", err)
	}
	for name, want := range map[string]int64{
		"soproc_engine_points_total":      es.Misses,
		"soproc_engine_memo_hits_total":   es.Hits,
		"soproc_engine_store_hits_total":  es.StoreHits,
		"soproc_admit_admitted_total":     ast.Admitted,
		"soproc_store_disk_hits_total":    st.Stats().DiskHits,
		"soproc_engine_in_flight_points":  0,
		"soproc_admit_in_flight_requests": 0,
	} {
		fam := byName[name]
		if fam == nil {
			t.Fatalf("final scrape is missing %s", name)
		}
		if got := fam.Samples[0].Value; got != float64(want) {
			t.Fatalf("%s = %v, want %d", name, got, want)
		}
	}
	if total := obs.Trace.Total(); total == 0 {
		t.Fatal("decision ring recorded nothing")
	}
	if scrapes == 0 {
		t.Fatal("scraper never ran")
	}
}
