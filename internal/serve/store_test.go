package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"scaleout/internal/exp"
	"scaleout/internal/store"
)

// newTestServer2 serves a pre-configured Server (newTestServer builds
// its own, which cannot carry a store-stats hook).
func newTestServer2(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestStoreRestartByteIdentity is the kill-and-restart contract of
// soprocd -store, in process: a daemon serves the full experiment
// suite into a persistent store, "dies" (engine and store discarded,
// store closed as the graceful drain would), and a second daemon over
// the same store directory must re-serve the suite byte-identically
// without a single engine miss — every point re-warmed from disk.
func TestStoreRestartByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite regeneration in -short mode")
	}
	dir := t.TempDir()

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng1 := exp.NewBounded(2, 4096)
	eng1.SetStore(st1)
	ts1 := newTestServer(t, eng1)
	status, body1 := get(t, ts1.URL+"/v1/exp/all?format=csv")
	if status != http.StatusOK {
		t.Fatalf("first run: status %d", status)
	}
	ts1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	if m := eng1.Stats().Misses; m == 0 {
		t.Fatal("first run computed nothing; test proves nothing")
	}

	// The restart: fresh engine, fresh memo, same store directory.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	if st2.Stats().Loaded == 0 {
		t.Fatal("restarted store loaded nothing from disk")
	}
	eng2 := exp.NewBounded(2, 4096)
	eng2.SetStore(st2)
	srv2 := New(eng2)
	srv2.SetStoreStats(func() any { return st2.Stats() })
	ts2 := newTestServer2(t, srv2)
	status, body2 := get(t, ts2.URL+"/v1/exp/all?format=csv")
	if status != http.StatusOK {
		t.Fatalf("restarted run: status %d", status)
	}
	if body1 != body2 {
		t.Fatal("restarted daemon's /v1/exp/all differs from the first run")
	}
	es := eng2.Stats()
	if es.Misses != 0 {
		t.Fatalf("restarted daemon simulated %d points; want 0 (all from disk)", es.Misses)
	}
	if es.StoreHits == 0 {
		t.Fatal("restarted daemon reports no store hits")
	}

	// /statsz must surface the re-warm: store.loaded > 0, memo
	// store_hits > 0.
	status, statsz := get(t, ts2.URL+"/statsz")
	if status != http.StatusOK {
		t.Fatalf("statsz: status %d", status)
	}
	var resp struct {
		Memo  MemoStats   `json:"memo"`
		Store store.Stats `json:"store"`
	}
	if err := json.Unmarshal([]byte(statsz), &resp); err != nil {
		t.Fatalf("statsz: %v\n%s", err, statsz)
	}
	if resp.Store.Loaded == 0 || resp.Store.DiskHits == 0 {
		t.Fatalf("statsz store section: %+v (want loaded > 0, disk_hits > 0)", resp.Store)
	}
	if resp.Memo.StoreHits == 0 {
		t.Fatalf("statsz memo.store_hits = 0, want > 0")
	}
}
