package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"scaleout/internal/exp"
	"scaleout/internal/figures"
	"scaleout/internal/sim"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

func newTestServer(t *testing.T, eng *exp.Engine) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(eng).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func postSweep(t *testing.T, url string, req SweepRequest) (int, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(out)
}

// cheapPoint is a sweep point small enough to simulate in milliseconds.
func cheapPoint(kind string, seed uint64) SweepPoint {
	return SweepPoint{
		Kind: kind, Workload: workload.WebSearch, Core: "ooo",
		Cores: 2, LLCMB: 1, WarmupCycles: 2000, MeasureCycles: 2000, Seed: seed,
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, exp.New(2))
	status, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz = %d %q", status, body)
	}
}

func TestExperimentsListsRegistry(t *testing.T) {
	ts := newTestServer(t, exp.New(2))
	status, body := get(t, ts.URL+"/v1/experiments")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	var resp ExperimentsResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Experiments, figures.IDs()) {
		t.Fatalf("experiments %v != figures.IDs() %v", resp.Experiments, figures.IDs())
	}
}

// The HTTP body for an experiment must be byte-identical to what the
// soproc CLI writes to stdout for the same experiment and format: one
// rendered table followed by the Println newline.
func cliOutput(t *testing.T, id, format string) string {
	t.Helper()
	render, err := figures.Renderer(format)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := figures.RunContext(exp.WithEngine(context.Background(), exp.New(0)), id)
	if err != nil {
		t.Fatal(err)
	}
	return render(tbl) + "\n"
}

func TestExpMatchesCLI(t *testing.T) {
	ts := newTestServer(t, exp.New(0))
	for _, format := range figures.Formats() {
		status, body := get(t, fmt.Sprintf("%s/v1/exp/fig2.1?format=%s", ts.URL, format))
		if status != http.StatusOK {
			t.Fatalf("fig2.1 %s: status %d: %s", format, status, body)
		}
		if want := cliOutput(t, "fig2.1", format); body != want {
			t.Fatalf("fig2.1 %s body differs from CLI output\n got %q\nwant %q", format, body, want)
		}
	}
	// Default format is table, as in the CLI.
	status, body := get(t, ts.URL+"/v1/exp/fig2.1")
	if status != http.StatusOK || body != cliOutput(t, "fig2.1", "table") {
		t.Fatalf("default format: status %d, body %q", status, body)
	}
}

func TestExpFig46CSVMatchesCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("64-core pod simulations are slow")
	}
	ts := newTestServer(t, exp.New(0))
	status, body := get(t, ts.URL+"/v1/exp/fig4.6?format=csv")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if want := cliOutput(t, "fig4.6", "csv"); body != want {
		t.Fatalf("fig4.6 CSV differs from `soproc -exp fig4.6 -format csv`\n got %q\nwant %q", body, want)
	}
}

func TestExpErrors(t *testing.T) {
	ts := newTestServer(t, exp.New(2))
	if status, body := get(t, ts.URL+"/v1/exp/fig9.9"); status != http.StatusNotFound {
		t.Fatalf("unknown experiment: status %d, body %q", status, body)
	}
	// Unknown formats are rejected like the CLI's -format, never
	// silently rendered as table.
	status, body := get(t, ts.URL+"/v1/exp/fig2.1?format=xml")
	if status != http.StatusBadRequest {
		t.Fatalf("format=xml: status %d, body %q", status, body)
	}
	if !strings.Contains(body, `"xml"`) {
		t.Fatalf("format error does not name the bad format: %q", body)
	}
}

func TestSweepRunsAndDeduplicates(t *testing.T) {
	eng := exp.New(2)
	ts := newTestServer(t, eng)
	req := SweepRequest{Points: []SweepPoint{
		cheapPoint("sim", 1),
		cheapPoint("sim", 1), // identical: must be served from the memo
		cheapPoint("structural", 1),
	}}
	status, body := postSweep(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp SweepResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("%d results, want 3", len(resp.Results))
	}

	w, _ := workload.ByName(workload.WebSearch)
	want, err := sim.Run(sim.Config{
		Workload: w, CoreType: tech.OoO, Cores: 2, LLCMB: 1,
		WarmupCycles: 2000, MeasureCycles: 2000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Kind != "sim" || resp.Results[0].Sim == nil {
		t.Fatalf("result 0 = %+v, want a sim result", resp.Results[0])
	}
	if *resp.Results[0].Sim != want {
		t.Fatalf("sweep sim result %+v differs from direct sim.Run %+v", *resp.Results[0].Sim, want)
	}
	if *resp.Results[1].Sim != want {
		t.Fatal("duplicate point returned a different result")
	}
	if resp.Results[2].Kind != "structural" || resp.Results[2].Structural == nil {
		t.Fatalf("result 2 = %+v, want a structural result", resp.Results[2])
	}
	// Two distinct computations: the duplicated sim point was a memo hit.
	if st := eng.Stats(); st.Misses != 2 || st.Hits != 1 {
		t.Fatalf("stats %+v, want 2 misses / 1 hit", st)
	}
}

func TestSweepValidation(t *testing.T) {
	ts := newTestServer(t, exp.New(2))
	cases := []struct {
		name string
		req  SweepRequest
	}{
		{"empty", SweepRequest{}},
		{"unknown workload", SweepRequest{Points: []SweepPoint{{
			Workload: "Crypto Mining", Core: "ooo", Cores: 2, LLCMB: 1}}}},
		{"unknown core", SweepRequest{Points: []SweepPoint{{
			Workload: workload.WebSearch, Core: "riscy", Cores: 2, LLCMB: 1}}}},
		{"unknown kind", SweepRequest{Points: []SweepPoint{{
			Kind: "quantum", Workload: workload.WebSearch, Core: "ooo", Cores: 2, LLCMB: 1}}}},
		{"unknown net", SweepRequest{Points: []SweepPoint{{
			Workload: workload.WebSearch, Core: "ooo", Cores: 2, LLCMB: 1, Net: "token-ring"}}}},
		{"invalid config", SweepRequest{Points: []SweepPoint{{
			Workload: workload.WebSearch, Core: "ooo", Cores: 0, LLCMB: 1}}}},
		{"sim-only field on structural", SweepRequest{Points: []SweepPoint{{
			Kind: "structural", Workload: workload.WebSearch, Core: "ooo",
			Cores: 2, LLCMB: 1, DisableSWScaling: true}}}},
		{"llc_tiles without a net", SweepRequest{Points: []SweepPoint{{
			Workload: workload.WebSearch, Core: "ooo", Cores: 2, LLCMB: 1,
			LLCTiles: 8}}}},
		{"llc_tiles on a non-NOC-Out net", SweepRequest{Points: []SweepPoint{{
			Workload: workload.WebSearch, Core: "ooo", Cores: 2, LLCMB: 1,
			Net: "mesh", LLCTiles: 8}}}},
	}
	for _, tc := range cases {
		if status, body := postSweep(t, ts.URL, tc.req); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, body %q, want 400", tc.name, status, body)
		}
	}
}

// Sweeping more distinct configurations than the memo capacity keeps
// the resident set bounded and reports the evictions on /statsz — the
// invariant that makes soprocd safe to leave running.
func TestStatszReportsBoundedMemo(t *testing.T) {
	const capacity = 1
	eng := exp.NewBounded(2, capacity)
	ts := newTestServer(t, eng)
	for seed := uint64(1); seed <= 3; seed++ {
		req := SweepRequest{Points: []SweepPoint{cheapPoint("sim", seed)}}
		if status, body := postSweep(t, ts.URL, req); status != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, status, body)
		}
	}
	status, body := get(t, ts.URL+"/statsz")
	if status != http.StatusOK {
		t.Fatalf("statsz status %d", status)
	}
	var st StatsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Memo.Capacity != capacity {
		t.Fatalf("statsz capacity %d, want %d", st.Memo.Capacity, capacity)
	}
	if st.Memo.Size > capacity {
		t.Fatalf("memo size %d exceeds capacity %d", st.Memo.Size, capacity)
	}
	if st.Memo.Misses != 3 || st.Memo.Evictions != 2 {
		t.Fatalf("statsz memo %+v, want 3 misses / 2 evictions", st.Memo)
	}
	if st.Workers != eng.Workers() || st.InFlight != 0 {
		t.Fatalf("statsz %+v: bad workers/in-flight", st)
	}
}
