package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"scaleout/internal/admit"
	"scaleout/internal/exp"
	"scaleout/internal/store"
)

// TestGracefulDrainUnderLoad is the drain contract end to end: while a
// sweep is in flight, drain begins; the in-flight sweep completes with
// 200, concurrent new requests are refused with a structured 503, and
// the store holds every completed result for the next start's warm
// boot.
func TestGracefulDrainUnderLoad(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := exp.New(2)
	eng.SetStore(st)
	srv := New(eng)
	ctrl := admit.New(admit.Options{})
	srv.SetAdmitStats(func() any { return ctrl.Stats() })
	ts := httptest.NewServer(ctrl.Middleware(srv.Handler()))
	defer ts.Close()

	// A sweep heavy enough to still be running when drain begins; the
	// launch is confirmed by the admission controller's in-flight
	// gauge (held for the whole request), not a sleep.
	points := []SweepPoint{
		cheapPoint("sim", 101), cheapPoint("sim", 102),
		cheapPoint("sim", 103), cheapPoint("sim", 104),
	}
	for i := range points {
		points[i].MeasureCycles = 2000000
	}
	body, _ := json.Marshal(SweepRequest{Points: points})
	type reply struct {
		status int
		body   []byte
	}
	inflight := make(chan reply, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			inflight <- reply{}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		inflight <- reply{resp.StatusCode, b}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for ctrl.Stats().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sweep was never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// Drain begins mid-sweep. New work is refused immediately with a
	// structured 503...
	ctrl.Drain()
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post during drain: %v", err)
	}
	refusal, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("during drain: status %d (%s), want 503", resp.StatusCode, refusal)
	}
	var eb admit.ErrorBody
	if err := json.Unmarshal(refusal, &eb); err != nil || eb.Error == "" {
		t.Fatalf("drain refusal not structured: %v (%s)", err, refusal)
	}

	// ...while /statsz stays reachable and reports the drain...
	code, statsBody := get(t, ts.URL+"/statsz")
	if code != http.StatusOK {
		t.Fatalf("statsz during drain: %d", code)
	}
	var stats StatsResponse
	if err := json.Unmarshal([]byte(statsBody), &stats); err != nil {
		t.Fatal(err)
	}
	admitJSON, _ := json.Marshal(stats.Admit)
	var ast admit.Stats
	if err := json.Unmarshal(admitJSON, &ast); err != nil {
		t.Fatal(err)
	}
	if !ast.Draining || ast.ShedDraining == 0 {
		t.Fatalf("admit section = %+v, want draining with one shed", ast)
	}

	// ...and the sweep that was already admitted completes normally.
	got := <-inflight
	if got.status != http.StatusOK {
		t.Fatalf("in-flight sweep: status %d (%s), want 200", got.status, got.body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(got.body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != len(points) {
		t.Fatalf("%d results, want %d", len(sr.Results), len(points))
	}
	for i, r := range sr.Results {
		if r.Sim == nil {
			t.Fatalf("result %d missing", i)
		}
	}

	// The store flush is the drain's last act: after Close, a fresh
	// open re-warms every completed point.
	if err := st.Close(); err != nil {
		t.Fatalf("store close: %v", err)
	}
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != len(points) {
		t.Fatalf("restarted store holds %d results, want %d", st2.Len(), len(points))
	}
}

// TestSweepBodyTooLarge: a body past the cap is refused with a
// structured 413 before any of it is decoded into points.
func TestSweepBodyTooLarge(t *testing.T) {
	ts := newTestServer(t, exp.New(2))
	// Valid JSON shape, too many bytes: one giant padded workload name.
	huge := bytes.Repeat([]byte("x"), maxSweepBody+1024)
	body := []byte(`{"points":[{"workload":"` + string(huge) + `"}]}`)
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (%s), want 413", resp.StatusCode, out)
	}
	var eb admit.ErrorBody
	if err := json.Unmarshal(out, &eb); err != nil || eb.Error == "" {
		t.Fatalf("413 not structured: %v (%s)", err, out)
	}
	// A small body is still decoded (and then rejected for what it
	// says, not for its size).
	small, _ := json.Marshal(SweepRequest{})
	resp2, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty request: status %d, want 400", resp2.StatusCode)
	}
}
