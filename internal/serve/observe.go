package serve

import (
	"net/http"
	"strconv"
	"time"

	"scaleout/internal/exp"
	"scaleout/internal/metrics"
)

// ObservabilityOptions configures EnableObservability.
type ObservabilityOptions struct {
	// TraceDecisions enables the per-point decision ring served by
	// GET /v1/trace (soprocd -trace-level decisions). Metrics are
	// always on once EnableObservability is called; only the trace is
	// gated, because it is the one piece with per-request cost.
	TraceDecisions bool
	// TraceCapacity is the ring's retained-record count; <= 0 selects
	// the metrics.NewDecisionLog default (4096).
	TraceCapacity int
}

// Observability is the live instrumentation EnableObservability wires
// into a server: the registry behind GET /metricsz (cmd/soprocd
// registers its store, cluster, and admission metrics on it too) and
// the decision ring behind GET /v1/trace (nil unless TraceDecisions).
type Observability struct {
	Registry *metrics.Registry
	Trace    *metrics.DecisionLog
}

// EnableObservability builds the server's metrics registry — engine,
// tier, and server families, plus the per-point latency histogram fed
// by the engine's decision hook — and mounts GET /metricsz and
// GET /v1/trace. Call exactly once, before serving and before SetTier
// swaps in a calibrated evaluator (the decision hook follows the swap;
// the tier metric families always read the current evaluator).
func (s *Server) EnableObservability(o ObservabilityOptions) *Observability {
	reg := metrics.NewRegistry()
	obs := &Observability{Registry: reg}
	if o.TraceDecisions {
		obs.Trace = metrics.NewDecisionLog(o.TraceCapacity)
	}
	s.obs = obs

	exp.RegisterEngineMetrics(reg, s.eng)
	hist := exp.NewPointLatencyHistogram(reg)
	exp.ObserveDecisions(s.eng, obs.Trace, hist)
	s.installTierHook()

	// Tier families read through s.tier at scrape time, so a later
	// SetTier (soprocd -calibration) is reflected without re-wiring.
	reg.CounterFunc("soproc_tier_scored_points_total",
		"points seen by the tiered evaluator (all surrogate-scored first)",
		func() float64 { return float64(s.tier.Stats().Scored) })
	reg.CounterFunc("soproc_tier_anchor_hits_total",
		"points served from the calibration anchor store",
		func() float64 { return float64(s.tier.Stats().AnchorHits) })
	reg.CounterFunc("soproc_tier_surrogate_served_total",
		"points served from the analytic surrogate in fast mode",
		func() float64 { return float64(s.tier.Stats().SurrogateServed) })
	reg.CounterFunc("soproc_tier_escalated_points_total",
		"points escalated to the simulators",
		func() float64 { return float64(s.tier.Stats().Escalated) })
	reg.GaugeFunc("soproc_tier_anchors",
		"calibration anchors loaded",
		func() float64 { return float64(s.tier.Stats().Anchors) })
	reg.GaugeFunc("soproc_tier_regions",
		"certified calibration regions loaded",
		func() float64 { return float64(s.tier.Stats().Regions) })

	reg.GaugeFunc("soproc_server_uptime_seconds",
		"seconds since this server was constructed",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("soproc_server_experiments",
		"registered experiment IDs",
		func() float64 { return float64(len(s.known)) })

	s.mux.Handle("GET /metricsz", reg.Handler())
	s.mux.HandleFunc("GET /v1/trace", s.handleTrace)
	return obs
}

// installTierHook points the current evaluator's decision hook at the
// trace ring, recording anchor- and surrogate-served points — which
// never reach the engine — next to the engine's own records. SetTier
// re-installs it on the replacement evaluator.
func (s *Server) installTierHook() {
	if s.obs == nil || s.obs.Trace == nil {
		return
	}
	log := s.obs.Trace
	s.tier.SetDecisionHook(func(key, source string) {
		log.Add(metrics.Decision{Key: metrics.KeyFingerprint(key), Source: source})
	})
}

// TraceResponse is the GET /v1/trace body: the newest decision records
// in chronological order. Enabled is false when the daemon runs
// without -trace-level decisions — the endpoint still answers, so a
// prober can tell "tracing off" from "no traffic yet" (Total 0).
type TraceResponse struct {
	Enabled bool `json:"enabled"`
	// Capacity is the ring's retained-record bound; Total counts
	// records ever appended, so Total - Capacity (when positive) is
	// the history the ring has dropped.
	Capacity int    `json:"capacity"`
	Total    uint64 `json:"total"`
	// Decisions are the newest records, oldest first; at most the n
	// query parameter (default 100, capped at Capacity).
	Decisions []metrics.Decision `json:"decisions"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	resp := TraceResponse{Decisions: []metrics.Decision{}}
	if s.obs == nil || s.obs.Trace == nil {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	n := 100
	if arg := r.URL.Query().Get("n"); arg != "" {
		v, err := strconv.Atoi(arg)
		if err != nil || v < 1 {
			http.Error(w, "n must be a positive integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	log := s.obs.Trace
	resp.Enabled = true
	resp.Capacity = log.Capacity()
	resp.Total = log.Total()
	resp.Decisions = log.Last(n)
	writeJSON(w, http.StatusOK, resp)
}
