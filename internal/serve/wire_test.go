package serve

import (
	"testing"

	"scaleout/internal/noc"
	"scaleout/internal/sim"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

func suiteWorkload(t *testing.T, name string) workload.Workload {
	t.Helper()
	w, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("workload %q not in suite", name)
	}
	return w
}

// TestWirePointRoundTrip: every wire-representable configuration must
// convert to a SweepPoint that re-resolves to the exact memo key — the
// invariant that keeps cluster results byte-identical.
func TestWirePointRoundTrip(t *testing.T) {
	w := suiteWorkload(t, workload.Names()[0])
	nets := []noc.Config{
		{}, // zero: simulator defaults to crossbar
		noc.New(noc.Ideal, 16),
		noc.New(noc.Crossbar, 16),
		noc.New(noc.Mesh, 16),
		noc.New(noc.FlattenedButterfly, 16),
		noc.New(noc.NOCOut, 16),
		noc.New(noc.NOCOut, 16).WithLinkBits(64),
		noc.New(noc.Mesh, 16).WithLinkBits(256),
	}
	for i, net := range nets {
		cfg := sim.Config{
			Workload: w, CoreType: tech.OoO, Cores: 16, LLCMB: 4, Net: net,
			WarmupCycles: 500, MeasureCycles: 1000,
		}
		p, ok := WirePointSim(cfg)
		if !ok {
			t.Fatalf("net[%d] %v: WirePointSim declined", i, net.Kind)
		}
		_, pt, err := p.point()
		if err != nil {
			t.Fatalf("net[%d]: round-trip resolve: %v", i, err)
		}
		if pt.Key() != cfg.Key() {
			t.Fatalf("net[%d]: round-trip key mismatch:\n got %s\nwant %s", i, pt.Key(), cfg.Key())
		}
	}

	scfg := sim.StructuralConfig{
		Workload: w, CoreType: tech.Conventional, Cores: 8, LLCMB: 2,
		L1MSHRs: 16, Seed: 3,
	}
	p, ok := WirePointStructural(scfg)
	if !ok {
		t.Fatal("WirePointStructural declined a representable config")
	}
	kind, pt, err := p.point()
	if err != nil || kind != "structural" {
		t.Fatalf("round-trip resolve: kind %q, err %v", kind, err)
	}
	if pt.Key() != scfg.Key() {
		t.Fatalf("structural round-trip key mismatch:\n got %s\nwant %s", pt.Key(), scfg.Key())
	}
}

// TestWirePointDeclinesUnrepresentable: configurations the sweep API
// cannot carry must be declined, never approximated.
func TestWirePointDeclinesUnrepresentable(t *testing.T) {
	w := suiteWorkload(t, workload.Names()[0])
	base := sim.Config{Workload: w, CoreType: tech.OoO, Cores: 16, LLCMB: 4}

	wireDelta := base
	net := noc.New(noc.Mesh, 16)
	net.WireDelta = -0.5
	wireDelta.Net = net

	express := base
	net2 := noc.New(noc.NOCOut, 16)
	net2.ExpressLinks = true
	express.Net = net2

	tileEdge := base
	net3 := noc.New(noc.Mesh, 16)
	net3.TileEdge = 2.5
	tileEdge.Net = net3

	modified := base
	modified.Workload.APKI *= 1.5 // not the calibrated suite entry

	invalid := base
	invalid.Cores = 0

	for name, cfg := range map[string]sim.Config{
		"wire-delta": wireDelta, "express-links": express,
		"tile-edge": tileEdge, "modified-workload": modified,
		"invalid": invalid,
	} {
		if _, ok := WirePointSim(cfg); ok {
			t.Errorf("%s: WirePointSim accepted an unrepresentable config", name)
		}
	}
}
