package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"scaleout/internal/noc"
	"scaleout/internal/sim"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

func suiteWorkload(t *testing.T, name string) workload.Workload {
	t.Helper()
	w, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("workload %q not in suite", name)
	}
	return w
}

// TestWirePointRoundTrip: every valid configuration — including the
// shapes the retired symbolic form declined — converts to a SweepPoint
// whose "config" object re-resolves to the exact memo key, the
// invariant that keeps cluster results byte-identical.
func TestWirePointRoundTrip(t *testing.T) {
	w := suiteWorkload(t, workload.Names()[0])
	delta := noc.New(noc.Mesh, 16)
	delta.WireDelta = -0.25 * delta.OneWayLatency()
	express := noc.New(noc.NOCOut, 16)
	express.Concentration = 2
	express.ExpressLinks = true
	perturbed := w
	perturbed.APKI *= 1.5
	nets := []noc.Config{
		{}, // zero: simulator defaults to crossbar
		noc.New(noc.Ideal, 16),
		noc.New(noc.Crossbar, 16),
		noc.New(noc.Mesh, 16),
		noc.New(noc.FlattenedButterfly, 16),
		noc.New(noc.NOCOut, 16),
		noc.New(noc.NOCOut, 16).WithLinkBits(64),
		noc.New(noc.Mesh, 16).WithLinkBits(256),
		delta,
		express,
	}
	for i, net := range nets {
		cfg := sim.Config{
			Workload: w, CoreType: tech.OoO, Cores: 16, LLCMB: 4, Net: net,
			WarmupCycles: 500, MeasureCycles: 1000,
		}
		wc, err := cfg.Wire()
		if err != nil {
			t.Fatalf("net[%d] %v: Wire: %v", i, net.Kind, err)
		}
		p, err := WirePoint(wc)
		if err != nil {
			t.Fatalf("net[%d]: WirePoint: %v", i, err)
		}
		kind, dec, err := p.config()
		if err != nil || kind != "sim" {
			t.Fatalf("net[%d]: round-trip resolve: kind %q, err %v", i, kind, err)
		}
		if dec.(sim.Config).Key() != cfg.Key() {
			t.Fatalf("net[%d]: round-trip key mismatch:\n got %s\nwant %s", i, dec.(sim.Config).Key(), cfg.Key())
		}
	}

	// A perturbed, non-suite workload rides the wire too.
	mod := sim.Config{Workload: perturbed, CoreType: tech.OoO, Cores: 16, LLCMB: 4}
	wc, err := mod.Wire()
	if err != nil {
		t.Fatalf("perturbed Wire: %v", err)
	}
	p, err := WirePoint(wc)
	if err != nil {
		t.Fatalf("perturbed WirePoint: %v", err)
	}
	if _, dec, err := p.config(); err != nil || dec.(sim.Config).Key() != mod.Key() {
		t.Fatalf("perturbed round-trip failed: %v", err)
	}

	scfg := sim.StructuralConfig{
		Workload: w, CoreType: tech.Conventional, Cores: 8, LLCMB: 2,
		L1MSHRs: 16, Seed: 3,
	}
	swc, err := scfg.Wire()
	if err != nil {
		t.Fatalf("structural Wire: %v", err)
	}
	sp, err := WirePoint(swc)
	if err != nil {
		t.Fatalf("structural WirePoint: %v", err)
	}
	kind, dec, err := sp.config()
	if err != nil || kind != "structural" {
		t.Fatalf("structural round-trip resolve: kind %q, err %v", kind, err)
	}
	if dec.(sim.StructuralConfig).Key() != scfg.Key() {
		t.Fatalf("structural round-trip key mismatch:\n got %s\nwant %s",
			dec.(sim.StructuralConfig).Key(), scfg.Key())
	}
}

// TestSweepWireEqualsLegacy: the same point expressed in the wire form
// and the legacy symbolic short form returns byte-identical results
// through a live /v1/sweep.
func TestSweepWireEqualsLegacy(t *testing.T) {
	srv := httptest.NewServer(New(nil))
	t.Cleanup(srv.Close)

	cfg := sim.Config{
		Workload: suiteWorkload(t, workload.Names()[0]), CoreType: tech.OoO,
		Cores: 8, LLCMB: 2, WarmupCycles: 500, MeasureCycles: 1000,
	}
	wc, err := cfg.Wire()
	if err != nil {
		t.Fatalf("Wire: %v", err)
	}
	wirePt, err := WirePoint(wc)
	if err != nil {
		t.Fatalf("WirePoint: %v", err)
	}
	legacyPt := SweepPoint{
		Workload: cfg.Workload.Name, Core: "ooo", Cores: 8, LLCMB: 2,
		WarmupCycles: 500, MeasureCycles: 1000,
	}

	var bodies [2]string
	for i, pt := range []SweepPoint{wirePt, legacyPt} {
		status, body := postSweep(t, srv.URL, SweepRequest{Points: []SweepPoint{pt}})
		if status != http.StatusOK {
			t.Fatalf("form %d: status %d: %s", i, status, body)
		}
		bodies[i] = body
	}
	if bodies[0] != bodies[1] {
		t.Fatalf("wire and legacy responses differ:\nwire:   %s\nlegacy: %s", bodies[0], bodies[1])
	}
	var sr SweepResponse
	if err := json.Unmarshal([]byte(bodies[0]), &sr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	want, err := sim.Run(cfg)
	if err != nil || sr.Results[0].Sim == nil || !reflect.DeepEqual(*sr.Results[0].Sim, want) {
		t.Fatalf("sweep result differs from direct Run: %v", err)
	}
}

// TestSweepWireVersionMismatch: an unknown wire_version draws the
// structured 400 with the offending and supported versions — the body
// a coordinator keys on to classify the reject as permanent.
func TestSweepWireVersionMismatch(t *testing.T) {
	srv := httptest.NewServer(New(nil))
	t.Cleanup(srv.Close)

	status, body := postSweep(t, srv.URL, SweepRequest{Points: []SweepPoint{
		{Config: json.RawMessage(`{"wire_version": 99, "field_from_the_future": true}`)},
	}})
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", status, body)
	}
	var ver WireVersionErrorResponse
	if err := json.Unmarshal([]byte(body), &ver); err != nil {
		t.Fatalf("400 body is not the structured version error: %v\n%s", err, body)
	}
	if ver.WireVersion != 99 || ver.Supported != sim.WireVersion || ver.Error == "" {
		t.Fatalf("version error = %+v, want wire_version 99 and supported %d", ver, sim.WireVersion)
	}
}

// TestSweepWireRejectsMixedForms: a point carrying both the "config"
// wire object and symbolic short-form fields is ambiguous and refused.
func TestSweepWireRejectsMixedForms(t *testing.T) {
	cfg := sim.Config{
		Workload: suiteWorkload(t, workload.Names()[0]), CoreType: tech.OoO,
		Cores: 8, LLCMB: 2,
	}
	wc, err := cfg.Wire()
	if err != nil {
		t.Fatalf("Wire: %v", err)
	}
	p, err := WirePoint(wc)
	if err != nil {
		t.Fatalf("WirePoint: %v", err)
	}
	p.Workload = cfg.Workload.Name // reintroduce a symbolic field
	if _, _, err := p.config(); err == nil {
		t.Fatal("config() accepted a point mixing wire and symbolic forms")
	}

	// And over HTTP, it is a plain 400, not a version error.
	srv := httptest.NewServer(New(nil))
	t.Cleanup(srv.Close)
	status, body := postSweep(t, srv.URL, SweepRequest{Points: []SweepPoint{p}})
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", status, body)
	}
}

// TestSweepWireRejectsInvalidConfig: decode validates wire configs with
// the same rules that gate locally constructed points.
func TestSweepWireRejectsInvalidConfig(t *testing.T) {
	srv := httptest.NewServer(New(nil))
	t.Cleanup(srv.Close)

	cfg := sim.Config{
		Workload: suiteWorkload(t, workload.Names()[0]), CoreType: tech.OoO,
		Cores: 4, LLCMB: 2,
	}
	wc, err := cfg.Wire()
	if err != nil {
		t.Fatalf("Wire: %v", err)
	}
	wc.Workload.Alpha = 17 // outside Validate's range
	raw, _ := json.Marshal(wc)
	status, body := postSweep(t, srv.URL, SweepRequest{Points: []SweepPoint{{Config: raw}}})
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 for an invalid wire workload: %s", status, body)
	}
}
