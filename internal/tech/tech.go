// Package tech models the process-technology and component cost data the
// thesis builds on: per-component area and power at 40nm (Table 2.1), core
// microarchitecture specifications (Table 2.2), the 40nm -> 20nm scaling
// rules (Section 2.4.1), the 32nm NOC-Out evaluation node (Table 4.1), and
// the relaxed 3D budgets (Table 6.1).
//
// All areas are in mm^2, all powers in Watts, all capacities in MB unless
// stated otherwise. Latencies are in core clock cycles at the fixed 2GHz
// operating frequency the thesis assumes for every core type.
package tech

import "fmt"

// ClockGHz is the operating frequency assumed for all cores and nodes.
const ClockGHz = 2.0

// CacheLineBytes is the line size used throughout the memory hierarchy.
const CacheLineBytes = 64

// CoreType enumerates the three core microarchitectures of Table 2.2.
type CoreType int

const (
	// Conventional is the aggressive 4-wide server core (Xeon-class):
	// 128-entry ROB, 32-entry LSQ, 64KB L1s.
	Conventional CoreType = iota
	// OoO is the lower-complexity 3-wide out-of-order core
	// (ARM Cortex-A15 class): 60-entry ROB, 16-entry LSQ, 32KB L1s.
	OoO
	// InOrder is the dual-issue in-order core (ARM Cortex-A8 class).
	InOrder
)

// String returns the thesis's name for the core type.
func (c CoreType) String() string {
	switch c {
	case Conventional:
		return "Conventional"
	case OoO:
		return "OoO"
	case InOrder:
		return "In-order"
	default:
		return fmt.Sprintf("CoreType(%d)", int(c))
	}
}

// CoreSpec captures the microarchitectural parameters of Table 2.2 along
// with the 40nm area and power figures of Table 2.1.
type CoreSpec struct {
	Type       CoreType
	Width      int     // dispatch/retire width
	ROBEntries int     // reorder buffer (0 for in-order)
	LSQEntries int     // load/store queue (0 for in-order)
	L1IKB      int     // L1 instruction cache capacity (KB)
	L1DKB      int     // L1 data cache capacity (KB)
	L1Ways     int     // L1 associativity (I-cache; D-cache for conventional is 8)
	L1Latency  int     // load-to-use latency (cycles)
	AreaMM2    float64 // die area at 40nm including L1s
	PowerW     float64 // peak power at 40nm
}

// Cores returns the specification for the requested core type (Table 2.1/2.2).
func Cores(t CoreType) CoreSpec {
	switch t {
	case Conventional:
		return CoreSpec{
			Type: Conventional, Width: 4, ROBEntries: 128, LSQEntries: 32,
			L1IKB: 64, L1DKB: 64, L1Ways: 4, L1Latency: 3,
			AreaMM2: 25.0, PowerW: 11.0,
		}
	case OoO:
		return CoreSpec{
			Type: OoO, Width: 3, ROBEntries: 60, LSQEntries: 16,
			L1IKB: 32, L1DKB: 32, L1Ways: 2, L1Latency: 2,
			AreaMM2: 4.5, PowerW: 1.0,
		}
	case InOrder:
		return CoreSpec{
			Type: InOrder, Width: 2, ROBEntries: 0, LSQEntries: 0,
			L1IKB: 32, L1DKB: 32, L1Ways: 2, L1Latency: 2,
			AreaMM2: 1.3, PowerW: 0.48,
		}
	default:
		panic(fmt.Sprintf("tech: unknown core type %d", int(t)))
	}
}

// LLC cost constants at 40nm (Table 2.1): a 16-way set-associative
// last-level cache costs 5mm^2 and 1W per MB.
const (
	LLCAreaPerMB  = 5.0
	LLCPowerPerMB = 1.0
	LLCWays       = 16
)

// Memory interface constants (Table 2.1). A DDR3 interface (PHY +
// controller) occupies 12mm^2 and dissipates 5.7W. A DDR3-1667 channel
// provides 12.8GB/s raw, of which 70% (9GB/s) is usable. DDR4 doubles the
// per-channel bandwidth at the same area and power (Section 2.4.1).
const (
	MemIfaceAreaMM2     = 12.0
	MemIfacePowerW      = 5.7
	DDR3UsableGBs       = 9.0
	DDR4UsableGBs       = 18.0
	MemoryLatencyNanos  = 45.0 // main memory access latency (Table 2.2)
	MaxMemoryInterfaces = 6
)

// SoC miscellaneous components (I/O, glue logic): 42mm^2, 5W (Table 2.1).
const (
	SoCMiscAreaMM2 = 42.0
	SoCMiscPowerW  = 5.0
)

// MemoryLatencyCycles is the main-memory access latency expressed in core
// cycles at the 2GHz clock: 45ns -> 90 cycles.
const MemoryLatencyCycles = int(MemoryLatencyNanos * ClockGHz)

// DDRGen selects the memory interface generation for a node.
type DDRGen int

const (
	// DDR3 is the 40nm-era interface: 9GB/s usable per channel.
	DDR3 DDRGen = iota
	// DDR4 doubles per-channel bandwidth; assumed at 20nm and for 3D.
	DDR4
)

// UsableGBs returns the usable per-channel bandwidth for the generation.
func (g DDRGen) UsableGBs() float64 {
	if g == DDR4 {
		return DDR4UsableGBs
	}
	return DDR3UsableGBs
}

// String names the generation.
func (g DDRGen) String() string {
	if g == DDR4 {
		return "DDR4"
	}
	return "DDR3"
}

// Node describes a process-technology design point with its chip-level
// budgets (Section 2.4.1 and Table 6.1).
type Node struct {
	Name            string
	FeatureNM       int
	SupplyV         float64
	LogicAreaScale  float64 // multiplier on 40nm core/cache area
	LogicPowerScale float64 // multiplier on 40nm core/cache power
	MaxDieAreaMM2   float64 // upper end of the die-area budget
	MinDieAreaMM2   float64 // lower end (designs below this are fine; above Max is not)
	TDPWatts        float64 // chip power budget
	Memory          DDRGen
}

// N40 is the 40nm baseline: 250-280mm^2 dies, 95W TDP, DDR3.
func N40() Node {
	return Node{
		Name: "40nm", FeatureNM: 40, SupplyV: 0.9,
		LogicAreaScale: 1.0, LogicPowerScale: 1.0,
		MaxDieAreaMM2: 280, MinDieAreaMM2: 250, TDPWatts: 95, Memory: DDR3,
	}
}

// N20 is the 20nm projection: logic area scales by 1/4 over two
// generations; logic power by ~0.4 (0.8V supply and capacitance scaling);
// memory interfaces do not scale and move to DDR4. These factors exactly
// reproduce the die areas and powers of Tables 2.4 and 3.2.
func N20() Node {
	return Node{
		Name: "20nm", FeatureNM: 20, SupplyV: 0.8,
		LogicAreaScale: 0.25, LogicPowerScale: 0.4,
		MaxDieAreaMM2: 280, MinDieAreaMM2: 190, TDPWatts: 95, Memory: DDR4,
	}
}

// N40For3D is the 40nm node with the relaxed 3D budgets of Table 6.1:
// 250W (liquid-cooled stack) and DDR4 interfaces, 250-280mm^2 per logic die.
func N40For3D() Node {
	n := N40()
	n.Name = "40nm-3D"
	n.TDPWatts = 250
	n.Memory = DDR4
	return n
}

// N32NOCOut is the 32nm node used for the NOC-Out evaluation (Table 4.1):
// the A15-like core is 2.9mm^2 and LLC costs 3.2mm^2 per MB.
func N32NOCOut() Node {
	return Node{
		Name: "32nm", FeatureNM: 32, SupplyV: 0.9,
		LogicAreaScale: 2.9 / 4.5, LogicPowerScale: 0.8,
		MaxDieAreaMM2: 280, MinDieAreaMM2: 200, TDPWatts: 95, Memory: DDR3,
	}
}

// CoreArea returns the area of one core of type t at this node.
func (n Node) CoreArea(t CoreType) float64 {
	return Cores(t).AreaMM2 * n.LogicAreaScale
}

// CorePower returns the peak power of one core of type t at this node.
func (n Node) CorePower(t CoreType) float64 {
	return Cores(t).PowerW * n.LogicPowerScale
}

// LLCArea returns the area of an LLC of the given capacity at this node.
func (n Node) LLCArea(mb float64) float64 {
	return mb * LLCAreaPerMB * n.LogicAreaScale
}

// LLCPower returns the power of an LLC of the given capacity at this node.
func (n Node) LLCPower(mb float64) float64 {
	return mb * LLCPowerPerMB * n.LogicPowerScale
}

// LLCBankLatency returns the access latency, in cycles, of one bank of a
// last-level cache of total capacity mb megabytes. It is a CACTI-like fit:
// latency grows with the log of capacity, anchored so that a 4MB cache has
// a ~6-cycle bank access and a 48MB conventional LLC ~13 cycles, matching
// the latency window the thesis's configurations imply.
func LLCBankLatency(mb float64) int {
	if mb <= 0 {
		return 1
	}
	lat := 4.0
	for c := 1.0; c < mb; c *= 2 {
		if c >= 4 {
			// Word lines, H-trees, and decoder depth grow superlinearly
			// in large banks: beyond 4MB each doubling costs two cycles,
			// which is what makes very large caches strictly detrimental
			// for scale-out workloads (Figure 2.2).
			lat += 2
			continue
		}
		lat++
	}
	return int(lat)
}

// WireDelayPSPerMM is the repeated semi-global wire delay (Section 4.3.2):
// 125 ps/mm, i.e. a 2GHz cycle covers 4mm of wire.
const WireDelayPSPerMM = 125.0

// WireCyclesForMM returns the number of 2GHz clock cycles needed to
// traverse d millimetres of repeated wire, rounded up, minimum zero.
func WireCyclesForMM(d float64) int {
	if d <= 0 {
		return 0
	}
	ps := d * WireDelayPSPerMM
	cyclePS := 1000.0 / ClockGHz
	c := int(ps / cyclePS)
	if float64(c)*cyclePS < ps {
		c++
	}
	return c
}

// LinkEnergyFJPerBitMM is the link traversal energy on random data
// (Section 4.3.2): 50 fJ/bit/mm.
const LinkEnergyFJPerBitMM = 50.0
