package tech

import (
	"math"
	"testing"
)

func TestCoreSpecs(t *testing.T) {
	conv := Cores(Conventional)
	if conv.Width != 4 || conv.ROBEntries != 128 || conv.AreaMM2 != 25 || conv.PowerW != 11 {
		t.Fatalf("conventional spec: %+v", conv)
	}
	ooo := Cores(OoO)
	if ooo.Width != 3 || ooo.ROBEntries != 60 || ooo.AreaMM2 != 4.5 || ooo.PowerW != 1 {
		t.Fatalf("OoO spec: %+v", ooo)
	}
	io := Cores(InOrder)
	if io.Width != 2 || io.ROBEntries != 0 || io.AreaMM2 != 1.3 || io.PowerW != 0.48 {
		t.Fatalf("in-order spec: %+v", io)
	}
}

func TestCoreTypeString(t *testing.T) {
	if Conventional.String() != "Conventional" || OoO.String() != "OoO" || InOrder.String() != "In-order" {
		t.Fatal("core type names")
	}
	if CoreType(9).String() == "" {
		t.Fatal("unknown core type unnamed")
	}
}

func TestCoresPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown core type accepted")
		}
	}()
	Cores(CoreType(42))
}

// The thesis's published die areas are exact sums of the Table 2.1
// component areas; verify the signature configurations.
func TestThesisAreaArithmetic40nm(t *testing.T) {
	n := N40()
	// Scale-Out (OoO): 2 pods x (16 cores + 4MB) + 3 MCs + SoC = 262mm2.
	pod := 16*n.CoreArea(OoO) + n.LLCArea(4)
	if math.Abs(pod-92) > 1e-9 {
		t.Fatalf("OoO pod area %v, want 92 (thesis Section 3.4.2)", pod)
	}
	chip := 2*pod + 3*MemIfaceAreaMM2 + SoCMiscAreaMM2
	if math.Abs(chip-262) > 1e-9 {
		t.Fatalf("Scale-Out (OoO) die %v, want 262", chip)
	}
	// In-order pod: 32 cores + 2MB = 51.6mm2 (thesis: 52).
	podI := 32*n.CoreArea(InOrder) + n.LLCArea(2)
	if math.Abs(podI-51.6) > 1e-9 {
		t.Fatalf("in-order pod area %v, want 51.6", podI)
	}
	// Conventional: 6 cores + 12MB + 2 MCs + SoC = 276mm2.
	conv := 6*n.CoreArea(Conventional) + n.LLCArea(12) + 2*MemIfaceAreaMM2 + SoCMiscAreaMM2
	if math.Abs(conv-276) > 1e-9 {
		t.Fatalf("conventional die %v, want 276", conv)
	}
}

// At 20nm logic area quarters, logic power scales by 0.4, and memory
// interfaces stay fixed — the factors that reproduce Table 2.4 exactly.
func TestThesisScaling20nm(t *testing.T) {
	n := N20()
	// Tiled (OoO) at 20nm: 80 cores + 80MB + 2 MCs + SoC = 256mm2, 80W.
	area := 80*n.CoreArea(OoO) + n.LLCArea(80) + 2*MemIfaceAreaMM2 + SoCMiscAreaMM2
	if math.Abs(area-256) > 1e-9 {
		t.Fatalf("tiled 20nm die %v, want 256", area)
	}
	power := 80*n.CorePower(OoO) + n.LLCPower(80) + 2*MemIfacePowerW + SoCMiscPowerW
	if math.Abs(power-80.4) > 0.01 {
		t.Fatalf("tiled 20nm power %v, want 80.4", power)
	}
}

func TestLLCBankLatencyMonotonic(t *testing.T) {
	prev := 0
	for _, mb := range []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32, 64} {
		lat := LLCBankLatency(mb)
		if lat < prev {
			t.Fatalf("bank latency not monotonic at %vMB: %d < %d", mb, lat, prev)
		}
		prev = lat
	}
	if LLCBankLatency(0) != 1 {
		t.Fatal("zero-capacity latency")
	}
	if LLCBankLatency(1) != 4 {
		t.Fatalf("1MB bank latency %d, want 4", LLCBankLatency(1))
	}
}

func TestMemoryLatencyCycles(t *testing.T) {
	if MemoryLatencyCycles != 90 {
		t.Fatalf("45ns at 2GHz = %d cycles, want 90", MemoryLatencyCycles)
	}
}

func TestDDRGen(t *testing.T) {
	if DDR3.UsableGBs() != 9 || DDR4.UsableGBs() != 18 {
		t.Fatal("channel bandwidths")
	}
	if DDR3.String() != "DDR3" || DDR4.String() != "DDR4" {
		t.Fatal("DDR names")
	}
}

func TestNodes(t *testing.T) {
	if n := N40(); n.Memory != DDR3 || n.TDPWatts != 95 || n.LogicAreaScale != 1 {
		t.Fatalf("N40: %+v", n)
	}
	if n := N20(); n.Memory != DDR4 || n.LogicAreaScale != 0.25 || n.LogicPowerScale != 0.4 {
		t.Fatalf("N20: %+v", n)
	}
	if n := N40For3D(); n.TDPWatts != 250 || n.Memory != DDR4 {
		t.Fatalf("N40For3D: %+v", n)
	}
	if n := N32NOCOut(); math.Abs(n.CoreArea(OoO)-2.9) > 1e-9 {
		t.Fatalf("32nm A15 core area %v, want 2.9 (Table 4.1)", n.CoreArea(OoO))
	}
}

func TestWireCycles(t *testing.T) {
	// 125ps/mm at 2GHz: a 4mm wire fits in one 500ps cycle.
	if c := WireCyclesForMM(4); c != 1 {
		t.Fatalf("4mm = %d cycles, want 1", c)
	}
	if c := WireCyclesForMM(4.1); c != 2 {
		t.Fatalf("4.1mm = %d cycles, want 2", c)
	}
	if WireCyclesForMM(0) != 0 || WireCyclesForMM(-1) != 0 {
		t.Fatal("non-positive distance")
	}
}
