package trace

import (
	"testing"

	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

func validCfg() Config {
	return Config{
		InstrFootprintMB: 1.0, HotCodeKB: 16, PFar: 0.2,
		LoadStoreFrac: 0.32, WriteFrac: 0.3,
		PPrimary: 0.9, PSecondary: 0.06, PShared: 0.01,
		PrimaryKB: 16, SecondaryMB: 1.5, SharedBlocks: 512,
		BlocksPerInstrRef: 1.0 / 12,
	}
}

func TestConfigValidation(t *testing.T) {
	if err := validCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*Config){
		func(c *Config) { c.InstrFootprintMB = 0 },
		func(c *Config) { c.HotCodeKB = 0 },
		func(c *Config) { c.HotCodeKB = 1 << 20 },
		func(c *Config) { c.PFar = 1.5 },
		func(c *Config) { c.LoadStoreFrac = 0 },
		func(c *Config) { c.PPrimary = 0.9; c.PSecondary = 0.2 },
		func(c *Config) { c.PrimaryKB = 0 },
		func(c *Config) { c.BlocksPerInstrRef = 0 },
	}
	for i, mutate := range bads {
		c := validCfg()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := New(validCfg(), 3, 7)
	b, _ := New(validCfg(), 3, 7)
	for i := 0; i < 10000; i++ {
		ai, aok := a.NextInstr()
		bi, bok := b.NextInstr()
		if ai != bi || aok != bok {
			t.Fatalf("instruction streams diverged at %d", i)
		}
		ad, aok := a.NextData()
		bd, bok := b.NextData()
		if ad != bd || aok != bok {
			t.Fatalf("data streams diverged at %d", i)
		}
	}
}

func TestCoresGetDistinctStreams(t *testing.T) {
	a, _ := New(validCfg(), 0, 7)
	b, _ := New(validCfg(), 1, 7)
	same := 0
	for i := 0; i < 1000; i++ {
		ad, aok := a.NextData()
		bd, bok := b.NextData()
		if aok && bok && ad == bd {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("cores emitted %d identical accesses of 1000", same)
	}
}

func TestRegionsDisjoint(t *testing.T) {
	g, _ := New(validCfg(), 2, 1)
	for i := 0; i < 50000; i++ {
		if acc, ok := g.NextInstr(); ok {
			if !acc.IsInstr || acc.IsWrite || acc.Shared {
				t.Fatalf("instruction access flags: %+v", acc)
			}
			if acc.Block < instrBase || acc.Block >= privateBase {
				t.Fatalf("instruction access outside its region: %x", acc.Block)
			}
		}
		if acc, ok := g.NextData(); ok {
			if acc.IsInstr {
				t.Fatalf("data access flagged as instruction")
			}
			if acc.Block < privateBase {
				t.Fatalf("data access in the instruction region: %x", acc.Block)
			}
			if acc.Shared && (acc.Block < sharedBase || acc.Block >= secondaryBase) {
				t.Fatalf("shared access outside the shared pool: %x", acc.Block)
			}
		}
	}
}

func TestStreamNeverRepeats(t *testing.T) {
	cfg := validCfg()
	cfg.PPrimary, cfg.PSecondary, cfg.PShared = 0.0, 0.0, 0.0 // everything streams
	cfg.LoadStoreFrac = 1.0
	g, _ := New(cfg, 0, 1)
	seen := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		acc, ok := g.NextData()
		if !ok {
			continue
		}
		if seen[acc.Block] {
			t.Fatalf("streaming block %x repeated", acc.Block)
		}
		seen[acc.Block] = true
	}
}

// The derived generator's access rates match the workload's statistics:
// instruction-block accesses per instruction near BlocksPerInstrRef, and
// the data mix summing correctly.
func TestNewFromWorkloadRates(t *testing.T) {
	for _, w := range workload.Suite() {
		g, err := NewFromWorkload(w, tech.OoO, 0, 1)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		instrAccesses, dataAccesses := 0, 0
		const n = 200000
		for i := 0; i < n; i++ {
			if _, ok := g.NextInstr(); ok {
				instrAccesses++
			}
			if _, ok := g.NextData(); ok {
				dataAccesses++
			}
		}
		iRate := float64(instrAccesses) / n
		if iRate < 0.06 || iRate > 0.11 {
			t.Errorf("%s: I-block rate %v, want ~1/12", w.Name, iRate)
		}
		dRate := float64(dataAccesses) / n
		if dRate < 0.25 || dRate > 0.40 {
			t.Errorf("%s: data rate %v, want ~0.32", w.Name, dRate)
		}
	}
}

func TestResidentBlocksCoverFootprint(t *testing.T) {
	g, err := NewFromWorkload(mustWorkload(t), tech.OoO, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	blocks := g.ResidentBlocks()
	if len(blocks) == 0 {
		t.Fatal("empty resident set")
	}
	var instr, secondary, shared int
	for _, b := range blocks {
		switch {
		case b >= instrBase && b < privateBase:
			instr++
		case b >= secondaryBase && b < streamBase:
			secondary++
		case b >= sharedBase && b < secondaryBase:
			shared++
		}
	}
	if instr != g.instrBlocks || secondary != g.secondBlocks || shared != g.sharedBlocks {
		t.Fatalf("resident set %d/%d/%d, want %d/%d/%d",
			instr, secondary, shared, g.instrBlocks, g.secondBlocks, g.sharedBlocks)
	}
}

func mustWorkload(t *testing.T) workload.Workload {
	t.Helper()
	w, ok := workload.ByName(workload.WebSearch)
	if !ok {
		t.Fatal("missing workload")
	}
	return w
}

func TestSharedWritesOccur(t *testing.T) {
	g, _ := NewFromWorkload(mustWorkload(t), tech.OoO, 0, 1)
	sharedWrites := 0
	for i := 0; i < 500000; i++ {
		if acc, ok := g.NextData(); ok && acc.Shared && acc.IsWrite {
			sharedWrites++
		}
	}
	if sharedWrites == 0 {
		t.Fatal("no shared writes generated; coherence would be silent")
	}
}
