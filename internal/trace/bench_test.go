package trace

import (
	"testing"

	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// BenchmarkTraceNext measures one instruction's worth of reference
// generation — the instruction-fetch gate plus the data gate, with the
// occasional block advance, Zipf rank draw, and geometric run length —
// exactly what the structural simulator's issue loop pays per
// instruction before it touches a cache.
func BenchmarkTraceNext(b *testing.B) {
	g, err := NewFromWorkload(workload.Suite()[0], tech.OoO, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		if g.WantInstr() {
			sink += g.InstrAccess().Block
		}
		if g.WantData() {
			sink += g.DataAccess().Block
		}
	}
	if sink == 42 {
		b.Log("unlikely") // keep the accesses from being optimized away
	}
}

// BenchmarkTraceDataAccess isolates the data-stream body (Zipf draws
// over the primary and secondary working sets dominate it).
func BenchmarkTraceDataAccess(b *testing.B) {
	g, err := NewFromWorkload(workload.Suite()[0], tech.OoO, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += g.DataAccess().Block
	}
	if sink == 42 {
		b.Log("unlikely")
	}
}
