// Package trace generates deterministic synthetic memory-reference
// streams with the locality structure of scale-out workloads (Section
// 2.1): an instruction stream that loops over a hot code region and
// periodically jumps across a multi-megabyte footprint, and a data
// stream split between an L1-resident primary working set, an
// LLC-resident secondary working set, and a vast streaming dataset with
// no reuse.
//
// The simulator's structural mode replays these streams against real
// set-associative L1 arrays (internal/cache), so L1 miss rates *emerge*
// from the stream instead of being drawn from the calibrated workload
// curves — an independent cross-check of the calibration.
package trace

import (
	"fmt"

	"scaleout/internal/cache"
	"scaleout/internal/stats"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// Address-space layout (block numbers). Each region is given a disjoint
// range so streams never alias across regions or cores.
const (
	instrBase     = 0x1000_0000
	privateBase   = 0x2000_0000
	sharedBase    = 0x3000_0000
	secondaryBase = 0x3800_0000 // read-mostly shared secondary working set
	streamBase    = 0x4000_0000
	coreStride    = 0x0100_0000 // per-core offset within private regions
)

// Access is one memory reference of the synthetic stream.
type Access struct {
	Block   uint64 // cache-block number
	IsInstr bool
	IsWrite bool
	Shared  bool // targets the read-write shared pool (coherence-visible)
}

// Generator produces the reference stream of one core.
type Generator struct {
	rng stats.Rng

	// Instruction stream state.
	instrBlocks  int     // footprint in blocks
	hotBlocks    int     // hot loop region (L1-I resident)
	pc           uint64  // current hot-region block
	run          int     // blocks left in the current sequential run
	pFar         float64 // probability a new run starts outside the hot region
	blocksPerRef float64 // I-block advance probability per instruction

	// Data stream state.
	loadStoreFrac float64 // data references per instruction
	writeFrac     float64 // stores among data references
	pPrimary      float64 // hits the L1-resident primary working set
	pSecondary    float64 // hits the LLC-resident secondary working set
	pShared       float64 // hits the read-write shared pool
	primaryBlocks int
	secondBlocks  int
	sharedBlocks  int
	zipfPrimary   *stats.ZipfGen      // skewed rank draws over the primary set
	zipfSecondary *stats.ZipfGen      // ... and the secondary set
	geomRun       *stats.GeometricGen // basic-block run lengths
	streamNext    uint64              // next block of the no-reuse dataset scan

	core uint64 // region offsets
}

// Config tunes a Generator directly; NewFromWorkload derives one from a
// calibrated workload model.
type Config struct {
	InstrFootprintMB  float64
	HotCodeKB         int     // hot loop region (should fit L1-I)
	PFar              float64 // far-jump probability per new basic-block run
	LoadStoreFrac     float64
	WriteFrac         float64
	PPrimary          float64
	PSecondary        float64
	PShared           float64
	PrimaryKB         int // primary working set (should fit L1-D)
	SecondaryMB       float64
	SharedBlocks      int
	BlocksPerInstrRef float64
}

// Validate reports an error for inconsistent configurations.
func (c Config) Validate() error {
	switch {
	case c.InstrFootprintMB <= 0:
		return fmt.Errorf("trace: non-positive instruction footprint")
	case c.HotCodeKB <= 0 || float64(c.HotCodeKB) > c.InstrFootprintMB*1024:
		return fmt.Errorf("trace: hot code %dKB exceeds footprint", c.HotCodeKB)
	case c.PFar < 0 || c.PFar > 1:
		return fmt.Errorf("trace: PFar %v", c.PFar)
	case c.LoadStoreFrac <= 0 || c.LoadStoreFrac > 1:
		return fmt.Errorf("trace: load/store fraction %v", c.LoadStoreFrac)
	case c.PPrimary+c.PSecondary+c.PShared > 1:
		return fmt.Errorf("trace: data mix probabilities exceed 1")
	case c.PrimaryKB <= 0 || c.SecondaryMB <= 0 || c.SharedBlocks <= 0:
		return fmt.Errorf("trace: non-positive working set")
	case c.BlocksPerInstrRef <= 0 || c.BlocksPerInstrRef > 1:
		return fmt.Errorf("trace: blocks per instruction %v", c.BlocksPerInstrRef)
	}
	return nil
}

// New builds a generator for one core with the given configuration.
func New(cfg Config, coreID int, seed uint64) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		rng:           *stats.NewRng(seed ^ (uint64(coreID)+1)*0x9E3779B97F4A7C15),
		instrBlocks:   int(cfg.InstrFootprintMB * 1024 * 1024 / cache.LineBytes),
		hotBlocks:     cfg.HotCodeKB * 1024 / cache.LineBytes,
		pFar:          cfg.PFar,
		blocksPerRef:  cfg.BlocksPerInstrRef,
		loadStoreFrac: cfg.LoadStoreFrac,
		writeFrac:     cfg.WriteFrac,
		pPrimary:      cfg.PPrimary,
		pSecondary:    cfg.PSecondary,
		pShared:       cfg.PShared,
		primaryBlocks: cfg.PrimaryKB * 1024 / cache.LineBytes,
		secondBlocks:  int(cfg.SecondaryMB * 1024 * 1024 / cache.LineBytes),
		sharedBlocks:  cfg.SharedBlocks,
		core:          uint64(coreID),
	}
	if g.hotBlocks > g.instrBlocks {
		g.hotBlocks = g.instrBlocks
	}
	g.zipfPrimary = stats.NewZipfGen(g.primaryBlocks, 0.6)
	g.zipfSecondary = stats.NewZipfGen(g.secondBlocks, 0.4)
	g.geomRun = stats.NewGeometricGen(0.25)
	return g, nil
}

// NewFromWorkload derives trace parameters from a calibrated workload:
// the instruction footprint comes straight from the model; the hot-code
// and primary working-set sizes are set against the core's L1 capacities
// so that the structural L1 miss rates land near the workload's APKI.
func NewFromWorkload(w workload.Workload, coreType tech.CoreType, coreID int, seed uint64) (*Generator, error) {
	spec := tech.Cores(coreType)
	apki := w.EffectiveAPKI(coreType)
	iAPKI := apki * w.IFetchFrac
	dAPKI := apki - iAPKI

	const loadStoreFrac = 0.32
	// Per instruction, the I-stream advances to a new block with
	// probability ~1/12 (mean run of 12 instructions per 64B block with
	// taken branches). A far jump leaves the L1-resident hot region and
	// misses; solve pFar so the expected L1-I MPKI matches iAPKI.
	const blocksPerRef = 1.0 / 12
	pFar := iAPKI / 1000 / blocksPerRef
	if pFar > 0.9 {
		pFar = 0.9
	}
	// Data misses: references outside the primary working set miss the
	// L1-D; solve the secondary+stream+shared mix for dAPKI.
	pMiss := dAPKI / 1000 / loadStoreFrac
	if pMiss > 0.95 {
		pMiss = 0.95
	}
	pShared := w.SharedFrac * pMiss // shared accesses are L1 misses too
	cfg := Config{
		InstrFootprintMB:  w.InstrFootprintMB,
		HotCodeKB:         spec.L1IKB / 2, // hot loops fit half the L1-I
		PFar:              pFar,
		LoadStoreFrac:     loadStoreFrac,
		WriteFrac:         0.30,
		PPrimary:          1 - pMiss,
		PSecondary:        (pMiss - pShared) * 0.78, // LLC-resident share
		PShared:           pShared,
		PrimaryKB:         spec.L1DKB / 2,
		SecondaryMB:       1.5,
		SharedBlocks:      512,
		BlocksPerInstrRef: blocksPerRef,
	}
	return New(cfg, coreID, seed)
}

// ResidentBlocks returns the block numbers that a warmed system would
// hold in its LLC — the instruction footprint and the shared secondary
// working set — in LRU-friendly order (coldest first). The thesis's
// SimFlex methodology launches from checkpoints with warmed caches
// (Section 3.3); the structural simulator pre-fills its LLC arrays with
// these blocks for the same reason.
func (g *Generator) ResidentBlocks() []uint64 {
	out := make([]uint64, 0, g.secondBlocks+g.instrBlocks+g.sharedBlocks)
	for b := g.secondBlocks - 1; b >= 0; b-- {
		out = append(out, secondaryBase+uint64(b)) // cold tail first
	}
	for b := 0; b < g.instrBlocks; b++ {
		out = append(out, instrBase+uint64(b))
	}
	for b := 0; b < g.sharedBlocks; b++ {
		out = append(out, sharedBase+uint64(b))
	}
	return out
}

// WantInstr reports whether this instruction's fetch crosses into a new
// cache block, advancing the stream by one gate draw. It is the
// inlineable fast path of NextInstr: the simulator issues it for every
// instruction, and eleven times out of twelve it is the only draw.
func (g *Generator) WantInstr() bool { return g.rng.Float64() < g.blocksPerRef }

// InstrAccess returns the fetch access of an instruction whose gate
// passed (WantInstr returned true).
func (g *Generator) InstrAccess() Access {
	if g.run <= 0 {
		// Start a new basic-block run: near (within the hot region) or
		// far (uniform over the whole footprint).
		g.run = g.geomRun.Draw(&g.rng) // mean 4-block runs
		if g.rng.Float64() < g.pFar {
			g.pc = uint64(g.rng.Intn(g.instrBlocks))
		} else {
			g.pc = uint64(g.rng.Intn(g.hotBlocks))
		}
	}
	g.run--
	block := instrBase + g.pc
	// pc is always < instrBlocks, so the wrap is a compare instead of
	// the hardware divide a % would cost on every block advance.
	g.pc++
	if g.pc >= uint64(g.instrBlocks) {
		g.pc = 0
	}
	return Access{Block: block, IsInstr: true}
}

// NextInstr returns the instruction-fetch access for one instruction, or
// ok=false when the fetch stays within the current block (no cache
// access needed beyond the already-fetched line).
func (g *Generator) NextInstr() (Access, bool) {
	if !g.WantInstr() {
		return Access{}, false
	}
	return g.InstrAccess(), true
}

// WantData reports whether this instruction performs a memory operation,
// advancing the stream by one gate draw — the inlineable fast path of
// NextData.
func (g *Generator) WantData() bool { return g.rng.Float64() < g.loadStoreFrac }

// DataAccess returns the data access of an instruction whose gate passed
// (WantData returned true).
func (g *Generator) DataAccess() Access {
	u := g.rng.Float64()
	write := g.rng.Float64() < g.writeFrac
	switch {
	case u < g.pPrimary:
		// Primary working set: Zipf-skewed for realistic L1 residency.
		b := uint64(g.zipfPrimary.Draw(&g.rng))
		return Access{Block: privateBase + g.core*coreStride + b, IsWrite: write}
	case u < g.pPrimary+g.pSecondary:
		// The secondary working set (indexes, OS structures, session
		// tables) is read-mostly and shared by all cores serving the
		// same application, so it is LLC-resident like the instruction
		// footprint (Section 3.2.2).
		b := uint64(g.zipfSecondary.Draw(&g.rng))
		return Access{Block: secondaryBase + b}
	case u < g.pPrimary+g.pSecondary+g.pShared:
		b := uint64(g.rng.Intn(g.sharedBlocks))
		return Access{Block: sharedBase + b, IsWrite: write, Shared: true}
	default:
		// Streaming over the vast dataset: every block is new.
		g.streamNext++
		return Access{Block: streamBase + g.core*coreStride + g.streamNext, IsWrite: write}
	}
}

// NextData returns the data access for one instruction, or ok=false when
// the instruction performs no memory operation.
func (g *Generator) NextData() (Access, bool) {
	if !g.WantData() {
		return Access{}, false
	}
	return g.DataAccess(), true
}
