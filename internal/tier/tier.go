// Package tier implements surrogate-first tiered evaluation: the
// repository's three evaluators — the analytic model (microseconds),
// the statistical simulator (tens of milliseconds), and the structural
// simulator (up to ~100ms/point) — arranged as one speed hierarchy
// behind the experiment layer's batch API.
//
// Every sweep point is first scored by the analytic surrogate
// (analytic.Surrogate). What happens next depends on the tier mode:
//
//   - Exact (the default): every returned value is a genuine simulator
//     result. Points whose canonical fingerprint matches a calibration
//     anchor are served from the anchor store (simulator results
//     recorded by cmd/calibrate; JSON round-trips float64 exactly, so
//     anchor-served figures are byte-identical to fresh simulation);
//     everything else escalates to the simulator. Escalated structural
//     points batch through one shape-keyed pooled machine per group
//     (sim.RunStructuralBatch) when running locally, or route like
//     ordinary structural points when the engine has a cluster router.
//
//   - Fast (explicit opt-in): points in regions the calibration
//     certifies, and not within their error band of the caller's
//     decision boundary (Decision), are answered from the surrogate and
//     tagged Source="surrogate"; boundary points, uncertified regions,
//     and anchor misses under a decision all escalate exactly as above.
//
// The certification contract: in fast mode a surrogate-served value is
// wrong by at most the region's calibrated MaxRelErr × Safety, and any
// point whose answer could change the caller's decision under that
// bound has escalated — so figures regenerated in tiered mode are
// byte-identical to full simulation wherever the band says escalation
// fires. The band math and the calibration harness live in
// calibration.go and calibrate.go; boundary predicates in decision.go.
package tier

import (
	"context"
	"math"
	"sync/atomic"

	"scaleout/internal/analytic"
	"scaleout/internal/exp"
	"scaleout/internal/exp/engine"
	"scaleout/internal/sim"
)

// Mode selects how much the evaluator trusts the surrogate.
type Mode int

const (
	// Exact returns genuine simulator results for every point,
	// accelerating only through anchors and batched escalation. It is
	// the default everywhere (the /v1/sweep tier field, soproc -tier).
	Exact Mode = iota
	// Fast serves certified interior points from the surrogate, tagged
	// Source="surrogate". Callers opt in explicitly.
	Fast
)

// String returns the mode's wire name ("exact" or "fast").
func (m Mode) String() string {
	if m == Fast {
		return "fast"
	}
	return "exact"
}

// ParseMode parses a wire-form tier name; the empty string is Exact
// (the documented default of the sweep API's tier field).
func ParseMode(s string) (Mode, bool) {
	switch s {
	case "", "exact":
		return Exact, true
	case "fast":
		return Fast, true
	default:
		return Exact, false
	}
}

type modeKey struct{}

// WithMode returns a context that overrides the evaluator's default
// mode for batches evaluated under it — how the serve layer applies a
// per-request tier field to the daemon's shared evaluator.
func WithMode(ctx context.Context, m Mode) context.Context {
	return context.WithValue(ctx, modeKey{}, m)
}

// modeFrom returns the context's mode override, or fallback.
func modeFrom(ctx context.Context, fallback Mode) Mode {
	if m, ok := ctx.Value(modeKey{}).(Mode); ok {
		return m
	}
	return fallback
}

// Evaluator is the tiered evaluator. It implements exp.Tier, so
// installing it on a context (exp.WithTier) reroutes every
// exp.Sims/exp.Structurals batch in the repository through the tiers.
// Construct with New; an Evaluator is safe for concurrent use.
type Evaluator struct {
	mode        Mode
	safety      float64
	granularity int

	regions       map[string]Region
	simAnchors    map[string]sim.Result
	structAnchors map[string]sim.StructuralResult

	scored          atomic.Int64
	anchorHits      atomic.Int64
	surrogateServed atomic.Int64
	escalated       atomic.Int64

	// decision, when set (SetDecisionHook), observes every point the
	// evaluator answers without touching the engine: anchor-store hits
	// and surrogate-served points. Escalated points reach the engine
	// and are observed there.
	decision atomic.Pointer[DecisionHook]
}

// DecisionHook receives one record per point the evaluator served
// itself, with the point's canonical key and the serving tier as
// source: "anchor" (calibration anchor store) or "surrogate" (analytic
// model, fast mode). Hooks must be fast and non-blocking; they run
// synchronously on the evaluation path.
type DecisionHook func(key, source string)

// SetDecisionHook installs fn as the evaluator's decision observer; a
// nil fn removes it.
func (ev *Evaluator) SetDecisionHook(fn DecisionHook) {
	if fn == nil {
		ev.decision.Store(nil)
		return
	}
	ev.decision.Store(&fn)
}

// emitDecision reports one self-served point to the installed hook.
func (ev *Evaluator) emitDecision(key, source string) {
	if hook := ev.decision.Load(); hook != nil {
		(*hook)(key, source)
	}
}

// New builds an evaluator from a calibration (nil means uncalibrated:
// no anchors, no certified regions, so every point escalates and exact
// mode degenerates to plain simulation) with the given default mode.
func New(c *Calibration, mode Mode) *Evaluator {
	ev := &Evaluator{
		mode:          mode,
		safety:        DefaultSafety,
		granularity:   DefaultGranularity,
		regions:       map[string]Region{},
		simAnchors:    map[string]sim.Result{},
		structAnchors: map[string]sim.StructuralResult{},
	}
	if c != nil {
		c.normalize()
		ev.safety = c.Safety
		ev.granularity = c.Granularity
		for _, r := range c.Regions {
			ev.regions[r.Key] = r
		}
		for _, a := range c.SimAnchors {
			ev.simAnchors[a.Key] = a.Result
		}
		for _, a := range c.StructuralAnchors {
			ev.structAnchors[a.Key] = a.Result
		}
	}
	return ev
}

// Stats is a snapshot of the evaluator's per-tier point counters; the
// JSON field names are the /statsz tier section's wire format.
type Stats struct {
	// Scored counts every point the evaluator saw (all are surrogate-
	// scored first). AnchorHits were served from the calibration anchor
	// store, SurrogateServed from the surrogate in fast mode, and
	// Escalated went to the simulators.
	Scored          int64 `json:"scored"`
	AnchorHits      int64 `json:"anchor_hits"`
	SurrogateServed int64 `json:"surrogate_served"`
	Escalated       int64 `json:"escalated"`
	// EscalationRate is Escalated/Scored (0 when nothing was scored).
	EscalationRate float64 `json:"escalation_rate"`
	// Anchors and Regions describe the loaded calibration.
	Anchors int `json:"anchors"`
	Regions int `json:"regions"`
}

// Stats snapshots the evaluator's counters.
func (ev *Evaluator) Stats() Stats {
	s := Stats{
		Scored:          ev.scored.Load(),
		AnchorHits:      ev.anchorHits.Load(),
		SurrogateServed: ev.surrogateServed.Load(),
		Escalated:       ev.escalated.Load(),
		Anchors:         len(ev.simAnchors) + len(ev.structAnchors),
		Regions:         len(ev.regions),
	}
	if s.Scored > 0 {
		s.EscalationRate = float64(s.Escalated) / float64(s.Scored)
	}
	return s
}

// band returns the certified escalation band half-width around a
// surrogate score: the region's worst observed relative error, times
// the safety margin, times the score's magnitude. An unknown or
// uncertifiable region returns +Inf — its points always escalate.
func (ev *Evaluator) band(regionKey string, score float64) float64 {
	r, ok := ev.regions[regionKey]
	if !ok || r.Samples == 0 || r.MaxRelErr > maxCertifiableRelErr {
		return math.Inf(1)
	}
	return r.MaxRelErr * ev.safety * math.Abs(score)
}

// certified reports whether the calibration certifies regionKey: its
// points carry a finite escalation band and are eligible for surrogate
// serving in fast mode.
func (ev *Evaluator) certified(regionKey string) bool {
	r, ok := ev.regions[regionKey]
	return ok && r.Samples > 0 && r.MaxRelErr <= maxCertifiableRelErr
}

// fullEscalation reports whether every point of a batch must escalate
// regardless of what the surrogate would say: no point matches an
// anchor, and either the mode is exact (anchors are the only
// non-simulator source) or no point falls in a certified region. When
// it holds, per-point surrogate scoring is pure overhead — the batch
// goes straight to batched simulation, so a tiered sweep the
// calibration cannot serve (escalation rate 1.0) costs the same as
// -tier exact instead of running slower than it. anchored and
// certifiedAt report, per point index, an anchor match and a certified
// region.
func fullEscalation(mode Mode, n int, anchored, certifiedAt func(i int) bool) bool {
	for i := 0; i < n; i++ {
		if anchored(i) {
			return false
		}
		if mode == Fast && certifiedAt(i) {
			return false
		}
	}
	return true
}

// simSpec maps a canonical statistical configuration onto the
// surrogate's input.
func simSpec(cc sim.Config) analytic.SurrogateSpec {
	return analytic.SurrogateSpec{
		Workload:    cc.Workload,
		Design:      analytic.DesignFor(cc.CoreType, cc.Cores, cc.LLCMB, cc.Net),
		SWScaling:   !cc.DisableSWScaling,
		MemChannels: cc.MemChannels,
	}
}

// structuralSpec maps a canonical structural configuration onto the
// surrogate's input; the MSHR bound is the structural-only knob the
// surrogate models (analytic.Surrogate).
func structuralSpec(cc sim.StructuralConfig) analytic.SurrogateSpec {
	return analytic.SurrogateSpec{
		Workload:    cc.Workload,
		Design:      analytic.DesignFor(cc.CoreType, cc.Cores, cc.LLCMB, cc.Net),
		MSHRs:       cc.L1MSHRs,
		SWScaling:   true,
		MemChannels: cc.MemChannels,
	}
}

// surrogateSimResult shapes a surrogate estimate as the statistical
// simulator's result type, tagged so callers can tell it apart.
func surrogateSimResult(est analytic.Estimate) sim.Result {
	return sim.Result{
		AppIPC:     est.AppIPC,
		PerCoreIPC: est.PerCoreIPC,
		OffChipGBs: est.OffChipGBs,
		Source:     "surrogate",
	}
}

// surrogateStructuralResult is surrogateSimResult for the structural
// result type, with the surrogate's emergent-cache predictions filled.
func surrogateStructuralResult(est analytic.Estimate) sim.StructuralResult {
	return sim.StructuralResult{
		Result:     surrogateSimResult(est),
		L1IMPKI:    est.L1IMPKI,
		L1DMPKI:    est.L1DMPKI,
		LLCMissPct: est.LLCMissPct,
	}
}

// Sims implements exp.Tier for statistical-simulator batches.
func (ev *Evaluator) Sims(ctx context.Context, cfgs []sim.Config) ([]sim.Result, error) {
	out, _, err := ev.SimsDecided(ctx, cfgs, nil)
	return out, err
}

// Structurals implements exp.Tier for structural-simulator batches.
func (ev *Evaluator) Structurals(ctx context.Context, cfgs []sim.StructuralConfig) ([]sim.StructuralResult, error) {
	out, _, err := ev.StructuralsDecided(ctx, cfgs, nil)
	return out, err
}

// SimsDecided evaluates a statistical batch under a decision boundary
// and additionally reports which points escalated (were within their
// band of the boundary, in an uncertified region, or — in exact mode —
// simply not anchored). A nil decision means the sweep feeds no
// boundary: in fast mode every certified point is then surrogate-
// served; in exact mode the decision is irrelevant to results.
func (ev *Evaluator) SimsDecided(ctx context.Context, cfgs []sim.Config, d Decision) ([]sim.Result, []bool, error) {
	n := len(cfgs)
	out := make([]sim.Result, n)
	keys := make([]string, n)
	ccs := make([]sim.Config, n)
	for i, c := range cfgs {
		cc, err := c.Canonical()
		if err != nil {
			return nil, nil, err
		}
		ccs[i] = cc
		keys[i] = c.Key()
	}
	ev.scored.Add(int64(n))
	mode := modeFrom(ctx, ev.mode)

	var boundary []bool
	var escalate []int
	if fullEscalation(mode, n,
		func(i int) bool { _, ok := ev.simAnchors[keys[i]]; return ok },
		func(i int) bool { return ev.certified(simRegionKey(ev.granularity, ccs[i])) },
	) {
		// Nothing in the batch is servable below the simulator: skip
		// surrogate scoring entirely and escalate everything.
		boundary = make([]bool, n)
		escalate = make([]int, n)
		for i := range cfgs {
			boundary[i] = true
			escalate[i] = i
		}
	} else {
		scores := make([]float64, n)
		bands := make([]float64, n)
		ests := make([]analytic.Estimate, n)
		for i := range cfgs {
			ests[i] = analytic.Surrogate(simSpec(ccs[i]))
			scores[i] = ests[i].AppIPC
			bands[i] = ev.band(simRegionKey(ev.granularity, ccs[i]), scores[i])
		}
		boundary = boundarySet(d, scores, bands)
		for i := range cfgs {
			if r, ok := ev.simAnchors[keys[i]]; ok {
				out[i] = r
				ev.anchorHits.Add(1)
				ev.emitDecision(keys[i], "anchor")
				continue
			}
			if mode == Fast && !boundary[i] && !math.IsInf(bands[i], 1) {
				out[i] = surrogateSimResult(ests[i])
				ev.surrogateServed.Add(1)
				ev.emitDecision(keys[i], "surrogate")
				continue
			}
			boundary[i] = true // escalated for any reason counts as boundary in the report
			escalate = append(escalate, i)
		}
	}
	ev.escalated.Add(int64(len(escalate)))
	if len(escalate) > 0 {
		eng := exp.FromContext(ctx)
		pts := make([]exp.Point[sim.Result], len(escalate))
		for k, i := range escalate {
			pts[k] = exp.SimPoint{Config: cfgs[i]}
		}
		res, err := exp.Points(ctx, eng, pts)
		if err != nil {
			return nil, nil, err
		}
		for k, i := range escalate {
			out[i] = res[k]
		}
	}
	return out, boundary, nil
}

// StructuralsDecided is SimsDecided for the structural simulator.
// Escalated points route like ordinary structural points when the
// engine has a cluster router; otherwise they run through the local
// shape-batched machine path (sim.RunStructuralBatch) and seed the
// engine's memo, so a later request for the same key is a hit.
func (ev *Evaluator) StructuralsDecided(ctx context.Context, cfgs []sim.StructuralConfig, d Decision) ([]sim.StructuralResult, []bool, error) {
	n := len(cfgs)
	out := make([]sim.StructuralResult, n)
	keys := make([]string, n)
	ccs := make([]sim.StructuralConfig, n)
	for i, c := range cfgs {
		cc, err := c.Canonical()
		if err != nil {
			return nil, nil, err
		}
		ccs[i] = cc
		keys[i] = c.Key()
	}
	ev.scored.Add(int64(n))
	mode := modeFrom(ctx, ev.mode)

	var boundary []bool
	var escalate []int
	if fullEscalation(mode, n,
		func(i int) bool { _, ok := ev.structAnchors[keys[i]]; return ok },
		func(i int) bool { return ev.certified(structuralRegionKey(ev.granularity, ccs[i])) },
	) {
		boundary = make([]bool, n)
		escalate = make([]int, n)
		for i := range cfgs {
			boundary[i] = true
			escalate[i] = i
		}
	} else {
		scores := make([]float64, n)
		bands := make([]float64, n)
		ests := make([]analytic.Estimate, n)
		for i := range cfgs {
			ests[i] = analytic.Surrogate(structuralSpec(ccs[i]))
			scores[i] = ests[i].AppIPC
			bands[i] = ev.band(structuralRegionKey(ev.granularity, ccs[i]), scores[i])
		}
		boundary = boundarySet(d, scores, bands)
		for i := range cfgs {
			if r, ok := ev.structAnchors[keys[i]]; ok {
				out[i] = r
				ev.anchorHits.Add(1)
				ev.emitDecision(keys[i], "anchor")
				continue
			}
			if mode == Fast && !boundary[i] && !math.IsInf(bands[i], 1) {
				out[i] = surrogateStructuralResult(ests[i])
				ev.surrogateServed.Add(1)
				ev.emitDecision(keys[i], "surrogate")
				continue
			}
			boundary[i] = true
			escalate = append(escalate, i)
		}
	}
	ev.escalated.Add(int64(len(escalate)))
	if err := ev.runStructurals(ctx, cfgs, keys, escalate, out); err != nil {
		return nil, nil, err
	}
	return out, boundary, nil
}

// boundarySet applies the decision, defaulting to "no point is on a
// boundary" when the sweep feeds none.
func boundarySet(d Decision, scores, bands []float64) []bool {
	if d == nil {
		return make([]bool, len(scores))
	}
	return d.Escalate(scores, bands)
}

// runStructurals computes the escalated structural points. With a live
// cluster router the points go through the routable per-point path, so
// a coordinator ships them to the replicas owning their fingerprints —
// surrogate-answered and anchor-served points never left this process.
// Locally they batch by machine shape, after a memo peek, and the
// results seed the memo for later non-tiered callers.
func (ev *Evaluator) runStructurals(ctx context.Context, cfgs []sim.StructuralConfig, keys []string, escalate []int, out []sim.StructuralResult) error {
	if len(escalate) == 0 {
		return nil
	}
	eng := exp.FromContext(ctx)
	if eng.HasRoute() && !engine.RoutingDisabled(ctx) {
		pts := make([]exp.Point[sim.StructuralResult], len(escalate))
		for k, i := range escalate {
			pts[k] = exp.StructuralPoint{Config: cfgs[i]}
		}
		res, err := exp.Points(ctx, eng, pts)
		if err != nil {
			return err
		}
		for k, i := range escalate {
			out[i] = res[k]
		}
		return nil
	}

	// Local path: serve what the engine already holds, dedup the rest
	// by fingerprint, and run one shape-batched pass.
	var miss []int
	first := map[string]int{} // key -> index into miss batch
	var batch []sim.StructuralConfig
	for _, i := range escalate {
		if v, ok := eng.Cached(keys[i]); ok {
			out[i] = v.(sim.StructuralResult)
			continue
		}
		if _, dup := first[keys[i]]; !dup {
			first[keys[i]] = len(batch)
			batch = append(batch, cfgs[i])
		}
		miss = append(miss, i)
	}
	if len(batch) == 0 {
		return nil
	}
	res, err := sim.RunStructuralBatchContext(ctx, batch)
	if err != nil {
		return err
	}
	for key, k := range first {
		eng.Seed(key, res[k])
	}
	for _, i := range miss {
		out[i] = res[first[keys[i]]]
	}
	return nil
}
