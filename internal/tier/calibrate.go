package tier

import (
	"context"
	"fmt"
	"math"
	"sync"

	"scaleout/internal/analytic"
	"scaleout/internal/exp"
	"scaleout/internal/exp/engine"
	"scaleout/internal/noc"
	"scaleout/internal/sim"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// Options parameterizes a calibration run. The grid axes sample the
// (workload, core count, LLC, NoC) space; every grid point runs on both
// simulators and both surrogates, contributing an error sample to its
// region and a result to the anchor store.
type Options struct {
	// Workloads defaults to the full calibrated suite.
	Workloads []workload.Workload
	// Cores defaults to {16, 32, 64}; LLCMB to {2, 4, 8}; Nets to
	// {crossbar, mesh}.
	Cores []int
	LLCMB []float64
	Nets  []noc.Kind

	// Granularity selects the region partition (RegionKey); Safety the
	// band margin. Zero values take the package defaults.
	Granularity int
	Safety      float64

	// Workers sizes the calibration engine's pool (0 = GOMAXPROCS).
	Workers int

	// Store, when set, round-trips the calibration through the
	// persistent result store: grid and suite points already on disk
	// are recorded as anchors without re-simulating, and every point
	// the harness does simulate is written through, so later -store
	// runs (and re-calibrations) serve them from disk.
	Store engine.Store

	// Suites, when set, runs under a recording engine after the grid:
	// every sim/structural point it evaluates (through the experiment
	// layer) is recorded as an anchor and an error sample. Pass a
	// closure over figures.RunAllContext to anchor the entire figure
	// suite — the recording costs one full regeneration, and afterwards
	// exact-tier regeneration serves those points without simulating.
	Suites func(ctx context.Context) error
}

func (o *Options) defaults() {
	if len(o.Workloads) == 0 {
		o.Workloads = workload.Suite()
	}
	if len(o.Cores) == 0 {
		o.Cores = []int{16, 32, 64}
	}
	if len(o.LLCMB) == 0 {
		o.LLCMB = []float64{2, 4, 8}
	}
	if len(o.Nets) == 0 {
		o.Nets = []noc.Kind{noc.Crossbar, noc.Mesh}
	}
	if o.Granularity <= 0 {
		o.Granularity = DefaultGranularity
	}
	if o.Safety <= 0 {
		o.Safety = DefaultSafety
	}
}

// recorded is one calibration observation: a canonical configuration
// and the genuine simulator result computed for it.
type recorded struct {
	key string
	cfg any // sim.Config or sim.StructuralConfig, as routed
	val any
}

// Calibrate runs the error-bounding harness: the grid (and optional
// recorded suites) on a parallel, memoizing engine, both tiers per
// point, folded into the per-region error table plus the anchor store.
// The run itself pays full simulator cost; everything after it rides on
// the result.
func Calibrate(ctx context.Context, opts Options) (*Calibration, error) {
	opts.defaults()

	// The recording engine: a Route observes every sim/structural point
	// (the experiment layer offers routable payloads on each memo miss),
	// computes it locally under a worker-sized semaphore, and records
	// the (key, config, result) triple. Single-flight memoization means
	// each distinct key is recorded exactly once.
	eng := exp.New(opts.Workers)
	var mu sync.Mutex
	var recs []recorded
	sem := make(chan struct{}, eng.Workers())
	eng.SetRoute(func(rctx context.Context, key string, payload any) (any, bool, error) {
		// Points arrive as their wire form (sim.WireConfig, the one
		// representation the routing layer speaks); decode back to the
		// configuration being simulated. Raw configs are accepted too
		// for callers that route them directly.
		switch p := payload.(type) {
		case sim.WireConfig:
			cfg, err := p.Decode()
			if err != nil {
				return nil, false, nil
			}
			payload = cfg
		case sim.Config, sim.StructuralConfig:
		default:
			return nil, false, nil
		}
		// A stored result is a genuine simulator result from an earlier
		// life: record it as an anchor without paying for the simulator
		// again — calibration anchors round-trip through the store.
		if opts.Store != nil {
			if val, ok := opts.Store.Load(key); ok {
				mu.Lock()
				recs = append(recs, recorded{key: key, cfg: payload, val: val})
				mu.Unlock()
				return val, true, nil
			}
		}
		select {
		case sem <- struct{}{}:
		case <-rctx.Done():
			return nil, true, rctx.Err()
		}
		defer func() { <-sem }()
		var val any
		var err error
		switch cfg := payload.(type) {
		case sim.Config:
			val, err = sim.Run(cfg)
		case sim.StructuralConfig:
			val, err = sim.RunStructural(cfg)
		}
		if err != nil {
			return nil, true, err
		}
		if opts.Store != nil {
			opts.Store.Save(key, val)
		}
		mu.Lock()
		recs = append(recs, recorded{key: key, cfg: payload, val: val})
		mu.Unlock()
		return val, true, nil
	})

	// Never calibrate through an inherited tier: the observations must
	// be the simulators' own.
	rctx := exp.WithTier(exp.WithEngine(ctx, eng), nil)

	var simCfgs []sim.Config
	var structCfgs []sim.StructuralConfig
	for _, w := range opts.Workloads {
		for _, cores := range opts.Cores {
			for _, llc := range opts.LLCMB {
				for _, kind := range opts.Nets {
					net := noc.New(kind, cores)
					simCfgs = append(simCfgs, sim.Config{
						Workload: w, CoreType: tech.OoO, Cores: cores, LLCMB: llc, Net: net,
					})
					structCfgs = append(structCfgs, sim.StructuralConfig{
						Workload: w, CoreType: tech.OoO, Cores: cores, LLCMB: llc, Net: net,
					})
				}
			}
		}
	}
	if _, err := exp.Sims(rctx, simCfgs); err != nil {
		return nil, fmt.Errorf("tier: calibration grid (sim): %w", err)
	}
	if _, err := exp.Structurals(rctx, structCfgs); err != nil {
		return nil, fmt.Errorf("tier: calibration grid (structural): %w", err)
	}
	if opts.Suites != nil {
		if err := opts.Suites(rctx); err != nil {
			return nil, fmt.Errorf("tier: calibration suites: %w", err)
		}
	}

	// Fold the observations into the region table and anchor store.
	type acc struct {
		samples int
		maxErr  float64
		sumErr  float64
	}
	regions := map[string]*acc{}
	sample := func(regionKey string, predicted, actual float64) {
		a := regions[regionKey]
		if a == nil {
			a = &acc{}
			regions[regionKey] = a
		}
		relErr := math.Inf(1)
		if actual != 0 {
			relErr = math.Abs(predicted-actual) / math.Abs(actual)
		}
		a.samples++
		a.sumErr += relErr
		if relErr > a.maxErr {
			a.maxErr = relErr
		}
	}

	cal := &Calibration{Granularity: opts.Granularity, Safety: opts.Safety}
	mu.Lock()
	defer mu.Unlock()
	for _, r := range recs {
		switch cfg := r.cfg.(type) {
		case sim.Config:
			cc, err := cfg.Canonical()
			if err != nil {
				continue
			}
			est := analytic.Surrogate(simSpec(cc))
			res := r.val.(sim.Result)
			sample(simRegionKey(opts.Granularity, cc), est.AppIPC, res.AppIPC)
			cal.SimAnchors = append(cal.SimAnchors, SimAnchor{Key: r.key, Result: res})
		case sim.StructuralConfig:
			cc, err := cfg.Canonical()
			if err != nil {
				continue
			}
			est := analytic.Surrogate(structuralSpec(cc))
			res := r.val.(sim.StructuralResult)
			sample(structuralRegionKey(opts.Granularity, cc), est.AppIPC, res.AppIPC)
			cal.StructuralAnchors = append(cal.StructuralAnchors, StructuralAnchor{Key: r.key, Result: res})
		}
	}
	for key, a := range regions {
		cal.Regions = append(cal.Regions, Region{
			Key:        key,
			Samples:    a.samples,
			MaxRelErr:  a.maxErr,
			MeanRelErr: a.sumErr / float64(a.samples),
		})
	}
	cal.normalize()
	return cal, nil
}
