package tier

import "math"

// Decision describes the boundary a sweep's answers feed into, so the
// evaluator knows which points are safe to answer from the surrogate:
// a point whose true value could fall on either side of the boundary —
// its surrogate score lands within its error band of it — must
// escalate to the simulator, while interior points cannot change the
// decision no matter where in the band their true value lies.
//
// Escalate receives each point's surrogate score and its certified
// band half-width (math.Inf(1) for points in uncertified regions) and
// reports, per point, whether the boundary is within reach of the
// band. Implementations must be conservative: when a tie or an exactly-
// on-boundary score makes the answer ambiguous, escalate.
type Decision interface {
	// Escalate reports, for each point, whether its score is within its
	// band of the decision boundary.
	Escalate(scores, bands []float64) []bool
}

// Threshold escalates points whose score could cross a caller-supplied
// cutoff value (e.g. "designs above 10 aggregate IPC"): point i
// escalates iff |scores[i] − Value| <= bands[i]. A point exactly on the
// threshold escalates even with a zero-width band.
type Threshold struct {
	// Value is the cutoff the sweep's answers are compared against.
	Value float64
}

// Escalate implements Decision.
func (t Threshold) Escalate(scores, bands []float64) []bool {
	out := make([]bool, len(scores))
	for i, s := range scores {
		out[i] = math.Abs(s-t.Value) <= bands[i] || math.IsInf(bands[i], 1)
	}
	return out
}

// TopK escalates points whose rank relative to the k-th place is
// ambiguous — the per-figure "top-k rank edge". Using each point's
// interval [score−band, score+band]: a point certainly in the top K
// (fewer than K others can even tie its worst case) or certainly out
// (at least K others beat its best case outright) is interior;
// everything else escalates. Ties at the rank edge escalate.
type TopK struct {
	// K is how many top-ranked points the caller will act on.
	K int
}

// Escalate implements Decision.
func (t TopK) Escalate(scores, bands []float64) []bool {
	n := len(scores)
	out := make([]bool, n)
	if t.K <= 0 {
		return out // top-0: no rank edge, nothing escalates
	}
	if t.K >= n {
		return out // everything is in the top K; no edge to resolve
	}
	lo := make([]float64, n)
	hi := make([]float64, n)
	for i := range scores {
		lo[i] = scores[i] - bands[i]
		hi[i] = scores[i] + bands[i]
	}
	for i := 0; i < n; i++ {
		beatsBest := 0 // others strictly above even in i's best case
		canTie := 0    // others that could reach i's worst case
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if lo[j] > hi[i] {
				beatsBest++
			}
			if hi[j] >= lo[i] {
				canTie++
			}
		}
		certainlyOut := beatsBest >= t.K
		certainlyIn := canTie < t.K
		out[i] = !certainlyOut && !certainlyIn
	}
	return out
}

// Crossover escalates points where two curves could cross — the
// figure-curve crossover boundary. Scores are one curve's points;
// Against holds the other curve's scores at the same sweep positions
// (with AgainstBands their band half-widths, all zero when the other
// curve is already simulator-measured). Point i escalates iff the two
// intervals overlap: |scores[i] − Against[i]| <= bands[i] +
// AgainstBands[i].
type Crossover struct {
	// Against is the other curve's score at each sweep position; must
	// be the same length as the evaluated batch.
	Against []float64
	// AgainstBands is the other curve's band half-widths; nil means
	// zero (the other curve is exact).
	AgainstBands []float64
}

// Escalate implements Decision.
func (c Crossover) Escalate(scores, bands []float64) []bool {
	out := make([]bool, len(scores))
	for i, s := range scores {
		if i >= len(c.Against) {
			out[i] = true // no opposing point: cannot rule a crossing out
			continue
		}
		ab := 0.0
		if i < len(c.AgainstBands) {
			ab = c.AgainstBands[i]
		}
		out[i] = math.Abs(s-c.Against[i]) <= bands[i]+ab ||
			math.IsInf(bands[i], 1) || math.IsInf(ab, 1)
	}
	return out
}
