package tier

import (
	"context"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"scaleout/internal/exp"
	"scaleout/internal/noc"
	"scaleout/internal/sim"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// Table-driven boundary cases for the escalation decisions: a point
// exactly on the boundary escalates even with a zero-width band, an
// infinite band always escalates, and the all-/none-escalate extremes
// come out right.
func TestThresholdBoundaries(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name   string
		d      Threshold
		scores []float64
		bands  []float64
		want   []bool
	}{
		{"exactly on threshold, band 0", Threshold{Value: 10}, []float64{10}, []float64{0}, []bool{true}},
		{"inside band", Threshold{Value: 10}, []float64{10.5, 9.5}, []float64{1, 0.4}, []bool{true, false}},
		{"all interior", Threshold{Value: 100}, []float64{1, 2, 3}, []float64{0.1, 0.1, 0.1}, []bool{false, false, false}},
		{"infinite band", Threshold{Value: 100}, []float64{1}, []float64{inf}, []bool{true}},
	}
	for _, c := range cases {
		if got := c.d.Escalate(c.scores, c.bands); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestTopKBoundaries(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name   string
		d      TopK
		scores []float64
		bands  []float64
		want   []bool
	}{
		{"k=0 none escalate", TopK{K: 0}, []float64{1, 2}, []float64{inf, inf}, []bool{false, false}},
		{"k>=n none escalate", TopK{K: 5}, []float64{1, 2}, []float64{inf, inf}, []bool{false, false}},
		{"band 0, clear ranks", TopK{K: 1}, []float64{1, 2, 3}, []float64{0, 0, 0}, []bool{false, false, false}},
		{"band 0, tie at the rank edge", TopK{K: 1}, []float64{3, 3, 1}, []float64{0, 0, 0}, []bool{true, true, false}},
		{"band reaches the edge", TopK{K: 1}, []float64{10, 9, 1}, []float64{0.6, 0.6, 0.1}, []bool{true, true, false}},
		// The uncertified middle point and the leader escalate; the last
		// point is certainly out (the leader beats it outright) no
		// matter where the uncertified point's true value lies.
		{"uncertified point escalates", TopK{K: 1}, []float64{10, 5, 1}, []float64{0, inf, 0}, []bool{true, true, false}},
	}
	for _, c := range cases {
		if got := c.d.Escalate(c.scores, c.bands); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestCrossoverBoundaries(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name   string
		d      Crossover
		scores []float64
		bands  []float64
		want   []bool
	}{
		{"exactly on crossover, band 0", Crossover{Against: []float64{5}}, []float64{5}, []float64{0}, []bool{true}},
		{"intervals apart", Crossover{Against: []float64{5}}, []float64{7}, []float64{1}, []bool{false}},
		{"intervals touch", Crossover{Against: []float64{5}, AgainstBands: []float64{1}}, []float64{7}, []float64{1}, []bool{true}},
		// Point 1 has no opposing point, so a crossing cannot be ruled
		// out; point 0's interval stays clear of its opposing score.
		{"missing opposing point", Crossover{Against: []float64{5}}, []float64{4, 9}, []float64{0.5, 0.5}, []bool{false, true}},
		{"infinite band", Crossover{Against: []float64{5}}, []float64{100}, []float64{inf}, []bool{true}},
	}
	for _, c := range cases {
		if got := c.d.Escalate(c.scores, c.bands); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

// band: unknown, empty, and uncertifiable regions are infinite;
// certified regions scale max error by safety and score magnitude.
func TestBand(t *testing.T) {
	ev := New(&Calibration{
		Granularity: 1,
		Safety:      2,
		Regions: []Region{
			{Key: "certified", Samples: 4, MaxRelErr: 0.1},
			{Key: "empty", Samples: 0, MaxRelErr: 0},
			{Key: "wild", Samples: 4, MaxRelErr: maxCertifiableRelErr * 2},
		},
	}, Exact)
	if got := ev.band("certified", 10); got != 0.1*2*10 {
		t.Errorf("certified band = %v, want 2", got)
	}
	if got := ev.band("unknown", 10); !math.IsInf(got, 1) {
		t.Errorf("unknown region band = %v, want +Inf", got)
	}
	if got := ev.band("empty", 10); !math.IsInf(got, 1) {
		t.Errorf("zero-sample region band = %v, want +Inf", got)
	}
	if got := ev.band("wild", 10); !math.IsInf(got, 1) {
		t.Errorf("uncertifiable region band = %v, want +Inf", got)
	}
}

func TestRegionKeyGranularity(t *testing.T) {
	if got := RegionKey(1, "sim", tech.OoO, noc.Crossbar, 16, 4); got != "sim/OoO" {
		t.Errorf("granularity 1: %q", got)
	}
	if got := RegionKey(2, "sim", tech.OoO, noc.Mesh, 16, 4); got != "sim/OoO/Mesh" {
		t.Errorf("granularity 2: %q", got)
	}
	want := "structural/OoO/Crossbar/c9-16/llc<=4"
	if got := RegionKey(3, "structural", tech.OoO, noc.Crossbar, 16, 4); got != want {
		t.Errorf("granularity 3: %q, want %q", got, want)
	}
}

func TestParseMode(t *testing.T) {
	for _, c := range []struct {
		in   string
		mode Mode
		ok   bool
	}{{"", Exact, true}, {"exact", Exact, true}, {"fast", Fast, true}, {"bogus", Exact, false}} {
		m, ok := ParseMode(c.in)
		if m != c.mode || ok != c.ok {
			t.Errorf("ParseMode(%q) = (%v, %v), want (%v, %v)", c.in, m, ok, c.mode, c.ok)
		}
	}
}

// An uncalibrated exact evaluator returns exactly what the simulators
// return: every point escalates, nothing is approximated.
func TestExactUncalibratedMatchesDirect(t *testing.T) {
	ws := workload.Suite()
	ev := New(nil, Exact)
	ctx := exp.WithEngine(context.Background(), exp.New(1))

	simCfgs := []sim.Config{
		{Workload: ws[0], CoreType: tech.OoO, Cores: 16, LLCMB: 4},
		{Workload: ws[1], CoreType: tech.OoO, Cores: 8, LLCMB: 2, Net: noc.New(noc.Mesh, 8)},
	}
	got, err := ev.Sims(ctx, simCfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range simCfgs {
		want, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("sim point %d: tiered %+v != direct %+v", i, got[i], want)
		}
	}

	structCfgs := []sim.StructuralConfig{
		{Workload: ws[0], CoreType: tech.OoO, Cores: 16, LLCMB: 4},
		{Workload: ws[0], CoreType: tech.OoO, Cores: 16, LLCMB: 4}, // duplicate
	}
	sgot, err := ev.Structurals(ctx, structCfgs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.RunStructural(structCfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range structCfgs {
		if !reflect.DeepEqual(sgot[i], want) {
			t.Errorf("structural point %d: tiered %+v != direct %+v", i, sgot[i], want)
		}
	}
	st := ev.Stats()
	if st.Scored != 4 || st.Escalated != 4 || st.SurrogateServed != 0 || st.AnchorHits != 0 {
		t.Errorf("uncalibrated exact stats = %+v, want 4 scored, 4 escalated", st)
	}
}

// Fast mode serves certified interior points from the surrogate, tagged
// Source="surrogate"; with a certified region and no decision boundary,
// nothing simulates.
func TestFastServesSurrogate(t *testing.T) {
	cal := &Calibration{
		Granularity: 1,
		Safety:      1,
		Regions: []Region{
			{Key: "sim/OoO", Samples: 1, MaxRelErr: 0.05},
			{Key: "structural/OoO", Samples: 1, MaxRelErr: 0.05},
		},
	}
	ev := New(cal, Fast)
	ctx := exp.WithEngine(context.Background(), exp.New(1))
	ws := workload.Suite()

	got, err := ev.Sims(ctx, []sim.Config{{Workload: ws[0], CoreType: tech.OoO, Cores: 16, LLCMB: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Source != "surrogate" {
		t.Errorf("fast interior sim point Source = %q, want surrogate", got[0].Source)
	}
	if got[0].AppIPC <= 0 {
		t.Errorf("surrogate sim AppIPC = %v", got[0].AppIPC)
	}

	sgot, err := ev.Structurals(ctx, []sim.StructuralConfig{{Workload: ws[0], CoreType: tech.OoO, Cores: 16, LLCMB: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if sgot[0].Source != "surrogate" || sgot[0].L1IMPKI <= 0 {
		t.Errorf("fast interior structural point = %+v, want surrogate-tagged prediction", sgot[0])
	}
	if st := ev.Stats(); st.SurrogateServed != 2 || st.Escalated != 0 {
		t.Errorf("fast stats = %+v, want 2 surrogate-served, 0 escalated", st)
	}
}

// A decision boundary forces fast mode to simulate the points whose
// band reaches it: with a Threshold pinned to the surrogate's own
// score, the point escalates and returns the genuine simulator result.
func TestFastEscalatesOnBoundary(t *testing.T) {
	cal := &Calibration{
		Granularity: 1,
		Safety:      1,
		Regions:     []Region{{Key: "sim/OoO", Samples: 1, MaxRelErr: 0.05}},
	}
	ev := New(cal, Fast)
	ctx := exp.WithEngine(context.Background(), exp.New(1))
	ws := workload.Suite()
	cfgs := []sim.Config{{Workload: ws[0], CoreType: tech.OoO, Cores: 16, LLCMB: 4}}

	// First learn the surrogate score via a far-away threshold, then pin
	// the threshold to it.
	score, _, err := ev.SimsDecided(ctx, cfgs, Threshold{Value: -1e9})
	if err != nil {
		t.Fatal(err)
	}
	if score[0].Source != "surrogate" {
		t.Fatalf("far threshold still escalated: %+v", score[0])
	}
	got, escalated, err := ev.SimsDecided(ctx, cfgs, Threshold{Value: score[0].AppIPC})
	if err != nil {
		t.Fatal(err)
	}
	if !escalated[0] {
		t.Fatal("point on the decision boundary did not escalate")
	}
	want, err := sim.Run(cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[0], want) {
		t.Errorf("escalated point %+v != direct %+v", got[0], want)
	}
}

// Mode plumbing: a context override beats the evaluator's default.
func TestModeOverride(t *testing.T) {
	cal := &Calibration{
		Granularity: 1,
		Safety:      1,
		Regions:     []Region{{Key: "sim/OoO", Samples: 1, MaxRelErr: 0.05}},
	}
	ev := New(cal, Exact)
	ctx := exp.WithEngine(context.Background(), exp.New(1))
	ws := workload.Suite()
	cfgs := []sim.Config{{Workload: ws[0], CoreType: tech.OoO, Cores: 16, LLCMB: 4}}

	got, err := ev.Sims(WithMode(ctx, Fast), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Source != "surrogate" {
		t.Errorf("fast override ignored: Source = %q", got[0].Source)
	}
	got, err = ev.Sims(ctx, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Source != "" {
		t.Errorf("exact default served a surrogate value")
	}
}

// Anchors survive a Save/Load round trip bit-exactly: Go's float64 JSON
// encoding is the shortest form that re-parses to the same value, which
// is what makes anchor-served figures byte-identical.
func TestCalibrationRoundTrip(t *testing.T) {
	ws := workload.Suite()
	cfg := sim.Config{Workload: ws[0], CoreType: tech.OoO, Cores: 16, LLCMB: 4}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cal := &Calibration{
		Regions:    []Region{{Key: "sim/OoO", Samples: 3, MaxRelErr: 0.1 + 0.2, MeanRelErr: math.Pi / 17}},
		SimAnchors: []SimAnchor{{Key: cfg.Key(), Result: res}},
	}
	path := filepath.Join(t.TempDir(), "cal.json")
	if err := cal.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.SimAnchors, cal.SimAnchors) {
		t.Errorf("anchors changed across round trip:\n%+v\n%+v", loaded.SimAnchors, cal.SimAnchors)
	}
	if !reflect.DeepEqual(loaded.Regions, cal.Regions) {
		t.Errorf("regions changed across round trip:\n%+v\n%+v", loaded.Regions, cal.Regions)
	}

	// And the evaluator serves the loaded anchor verbatim.
	ev := New(loaded, Exact)
	ctx := exp.WithEngine(context.Background(), exp.New(1))
	got, err := ev.Sims(ctx, []sim.Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[0], res) {
		t.Errorf("anchor-served result %+v != original %+v", got[0], res)
	}
	if st := ev.Stats(); st.AnchorHits != 1 {
		t.Errorf("anchor hit not counted: %+v", st)
	}
}
