package tier

import (
	"context"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"scaleout/internal/exp"
	"scaleout/internal/figures"
	"scaleout/internal/noc"
	"scaleout/internal/sim"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// The certification headline: figure suites regenerated through the
// exact tier — against a calibration that recorded them, saved to disk,
// and loaded back — are byte-identical to direct simulation. The JSON
// round trip is part of the claim: anchors must survive serialization
// bit-exactly.
func TestTieredExactFiguresByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates figure suites twice")
	}
	suites := []string{"ext.structural", "ablate.mshr", "ablate.banks"}

	render := func(ctx context.Context) string {
		var b strings.Builder
		for _, id := range suites {
			tb, err := figures.RunContext(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			b.WriteString(tb.String())
			b.WriteString("\n")
		}
		return b.String()
	}

	direct := render(exp.WithEngine(context.Background(), exp.New(0)))

	cal, err := Calibrate(context.Background(), Options{
		// A minimal grid plus the three suites under the recorder.
		Cores: []int{16}, LLCMB: []float64{4}, Nets: []noc.Kind{noc.Crossbar},
		Suites: func(ctx context.Context) error {
			for _, id := range suites {
				if _, err := figures.RunContext(ctx, id); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cal.json")
	if err := cal.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}

	ev := New(loaded, Exact)
	eng := exp.New(0)
	tiered := render(exp.WithTier(exp.WithEngine(context.Background(), eng), ev))
	if tiered != direct {
		t.Fatal("tiered exact regeneration differs from direct simulation")
	}
	st := ev.Stats()
	if st.AnchorHits == 0 {
		t.Errorf("tiered regeneration hit no anchors: %+v", st)
	}
	if es := eng.Stats(); es.Misses != 0 {
		t.Errorf("tiered regeneration simulated %d points despite full anchor coverage", es.Misses)
	}
}

// Randomized differential: across a seeded random scatter of structural
// configurations, the uncalibrated exact tier returns exactly what the
// structural simulator returns.
func TestTieredExactRandomizedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	ws := workload.Suite()
	coreCounts := []int{4, 8, 16, 32}
	llcs := []float64{1, 2, 4, 8}
	nets := []noc.Kind{noc.Crossbar, noc.Mesh}

	var cfgs []sim.StructuralConfig
	for i := 0; i < 12; i++ {
		cores := coreCounts[rng.Intn(len(coreCounts))]
		cfgs = append(cfgs, sim.StructuralConfig{
			Workload: ws[rng.Intn(len(ws))],
			CoreType: tech.OoO,
			Cores:    cores,
			LLCMB:    llcs[rng.Intn(len(llcs))],
			Net:      noc.New(nets[rng.Intn(len(nets))], cores),
			Seed:     uint64(rng.Intn(3) + 1),
		})
	}

	ev := New(nil, Exact)
	ctx := exp.WithEngine(context.Background(), exp.New(0))
	got, err := ev.Structurals(ctx, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		want, err := sim.RunStructural(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("config %d (%+v): tiered %+v != direct %+v", i, cfg, got[i], want)
		}
	}
}
