package tier

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"scaleout/internal/noc"
	"scaleout/internal/sim"
	"scaleout/internal/tech"
)

// Calibration is what cmd/calibrate emits (calibration.json) and the
// tiered evaluator loads: a per-region error table that sizes the
// escalation bands, plus the anchor store — genuine simulator results,
// keyed by the same canonical fingerprints the experiment engine
// memoizes under, that exact-tier evaluation serves without
// re-simulating. Anchors round-trip through JSON exactly (Go prints
// float64 in the shortest form that re-parses to the same value), so an
// anchor-served figure is byte-identical to a freshly simulated one.
type Calibration struct {
	// Granularity selects how finely the design space is partitioned
	// into error regions; see RegionKey. Evaluator lookups must use the
	// same partition the table was built with, so it travels in the
	// file.
	Granularity int `json:"granularity"`

	// Safety is the multiplier applied to a region's measured maximum
	// relative error when sizing escalation bands — the margin between
	// "worst error we observed" and "worst error we guard against".
	Safety float64 `json:"safety"`

	// Regions is the certified error table, sorted by key.
	Regions []Region `json:"regions"`

	// SimAnchors and StructuralAnchors are the memoized simulator
	// results from the calibration run, sorted by key.
	SimAnchors        []SimAnchor        `json:"sim_anchors,omitempty"`
	StructuralAnchors []StructuralAnchor `json:"structural_anchors,omitempty"`
}

// Region is the measured surrogate error over one slice of the design
// space: every calibration point falling in the region contributes a
// relative-error sample of the surrogate's AppIPC prediction against
// the simulator's measurement.
type Region struct {
	// Key identifies the region; see RegionKey.
	Key string `json:"key"`
	// Samples is how many calibration points landed in the region.
	Samples int `json:"samples"`
	// MaxRelErr and MeanRelErr summarize |surrogate−sim|/sim over the
	// region's samples. MaxRelErr (times Safety) is the certified band.
	MaxRelErr  float64 `json:"max_rel_err"`
	MeanRelErr float64 `json:"mean_rel_err"`
}

// SimAnchor is one memoized statistical-simulator result.
type SimAnchor struct {
	// Key is the configuration's canonical memo fingerprint (sim.Config.Key).
	Key string `json:"key"`
	// Result is the simulator's measurement for that configuration.
	Result sim.Result `json:"result"`
}

// StructuralAnchor is one memoized structural-simulator result.
type StructuralAnchor struct {
	// Key is the canonical fingerprint (sim.StructuralConfig.Key).
	Key string `json:"key"`
	// Result is the structural simulator's measurement.
	Result sim.StructuralResult `json:"result"`
}

// DefaultSafety is the band margin applied when a Calibration (or
// calibrate invocation) does not choose one.
const DefaultSafety = 1.25

// DefaultGranularity is the region partition used when none is chosen:
// the finest level (kind, core, net, cores bucket, LLC bucket).
const DefaultGranularity = 3

// maxCertifiableRelErr caps what the fast tier will serve: a region
// whose worst observed relative error exceeds this is treated as
// uncertified — its points always escalate — because a band that wide
// makes the surrogate's answer useless anyway.
const maxCertifiableRelErr = 0.5

// RegionKey maps one simulator configuration onto its error region.
// Granularity 1 partitions by simulator kind and core type; 2 adds the
// interconnect kind; 3 (the default) adds core-count and LLC-capacity
// buckets. kind is "sim" or "structural"; the configuration fields are
// from the canonical (defaults-applied) config.
func RegionKey(granularity int, kind string, core tech.CoreType, net noc.Kind, cores int, llcMB float64) string {
	key := kind + "/" + core.String()
	if granularity >= 2 {
		key += "/" + net.String()
	}
	if granularity >= 3 {
		key += "/" + coresBucket(cores) + "/" + llcBucket(llcMB)
	}
	return key
}

func coresBucket(n int) string {
	switch {
	case n <= 8:
		return "c1-8"
	case n <= 16:
		return "c9-16"
	case n <= 32:
		return "c17-32"
	case n <= 64:
		return "c33-64"
	default:
		return "c65+"
	}
}

func llcBucket(mb float64) string {
	switch {
	case mb <= 1:
		return "llc<=1"
	case mb <= 2:
		return "llc<=2"
	case mb <= 4:
		return "llc<=4"
	case mb <= 8:
		return "llc<=8"
	default:
		return "llc>8"
	}
}

// simRegionKey and structuralRegionKey key canonical configurations.
func simRegionKey(g int, cc sim.Config) string {
	return RegionKey(g, "sim", cc.CoreType, cc.Net.Kind, cc.Cores, cc.LLCMB)
}

func structuralRegionKey(g int, cc sim.StructuralConfig) string {
	return RegionKey(g, "structural", cc.CoreType, cc.Net.Kind, cc.Cores, cc.LLCMB)
}

// normalize applies defaults and sorts the table and anchors so the
// serialized form is deterministic.
func (c *Calibration) normalize() {
	if c.Granularity <= 0 {
		c.Granularity = DefaultGranularity
	}
	if c.Safety <= 0 {
		c.Safety = DefaultSafety
	}
	sort.Slice(c.Regions, func(i, j int) bool { return c.Regions[i].Key < c.Regions[j].Key })
	sort.Slice(c.SimAnchors, func(i, j int) bool { return c.SimAnchors[i].Key < c.SimAnchors[j].Key })
	sort.Slice(c.StructuralAnchors, func(i, j int) bool {
		return c.StructuralAnchors[i].Key < c.StructuralAnchors[j].Key
	})
}

// Save writes the calibration as indented JSON to path.
func (c *Calibration) Save(path string) error {
	c.normalize()
	out, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}

// Load reads a calibration written by Save (cmd/calibrate -out).
func Load(path string) (*Calibration, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Calibration
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("tier: parse %s: %w", path, err)
	}
	c.normalize()
	return &c, nil
}
