package store

import "scaleout/internal/metrics"

// RegisterMetrics registers the store's counters on reg under the
// soproc_store_* namespace. Values come from the same counters Stats()
// snapshots, read at scrape time.
func (s *Store) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("soproc_store_disk_hits_total",
		"Load probes answered from disk (memo misses that skipped compute)",
		func() float64 { return float64(s.Stats().DiskHits) })
	reg.CounterFunc("soproc_store_disk_misses_total",
		"Load probes that found nothing and went on to compute",
		func() float64 { return float64(s.Stats().DiskMisses) })
	reg.CounterFunc("soproc_store_appends_total",
		"records written by this process",
		func() float64 { return float64(s.Stats().Appends) })
	reg.CounterFunc("soproc_store_compactions_total",
		"snapshot rewrites of the log",
		func() float64 { return float64(s.Stats().Compactions) })
	reg.CounterFunc("soproc_store_save_errors_total",
		"appends abandoned on a write error (log rolled back to a record boundary)",
		func() float64 { return float64(s.Stats().SaveErrors) })
	reg.CounterFunc("soproc_store_loaded_records_total",
		"records Open replayed from disk at startup",
		func() float64 { return float64(s.Stats().Loaded) })
	reg.GaugeFunc("soproc_store_entries",
		"live keys in the store index",
		func() float64 { return float64(s.Stats().Entries) })
	reg.GaugeFunc("soproc_store_log_bytes",
		"current length of the append-only log",
		func() float64 { return float64(s.Stats().Bytes) })
}
