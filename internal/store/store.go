// Package store persists simulator results across processes: a
// crash-safe, append-only, content-addressed log keyed by the same
// canonical configuration fingerprints the experiment engine memoizes
// under (sim.Config.Key, sim.StructuralConfig.Key), so every soproc
// invocation, soprocd restart, and cluster-replica crash recovery is a
// warm start instead of a recomputation.
//
// A Store implements engine.Store and installs on an engine with
// Engine.SetStore as a read-through/write-through second tier beneath
// the bounded in-memory memo: a memo miss probes the store before the
// point is routed or computed, and every successful computation (local,
// routed, or seeded by the tiered evaluator's batch path) is appended.
// Because the value written is the result's JSON wire form — the same
// encoding the /v1/sweep API and the calibration anchor files use, and
// Go round-trips float64 through JSON exactly — a disk-served figure is
// byte-identical to a freshly simulated one.
//
// # On-disk format
//
// One file, results.log, in the store directory:
//
//	header:  8 bytes, "SOSTORE1" (magic + format version)
//	record:  uint32 LE payload length
//	         uint32 LE CRC32-IEEE of the payload
//	         payload = kind byte | uint32 LE key length | key | value JSON
//
// Appends are single write(2) calls, so a crash can tear at most the
// final record. Open scans the log sequentially: a record whose CRC
// does not match its payload is skipped (its framing is intact, so the
// scan continues), and the first record whose framing is broken — a
// torn tail — ends the scan and is truncated away. The log therefore
// never needs a recovery tool: reopening it is the recovery.
//
// Compaction rewrites the live records (one per key, sorted) into a
// temporary file that atomically renames over the log, so a crash
// mid-compaction leaves either the old log or the new one, never a
// hybrid. Open compacts automatically when dead records (skipped or
// superseded) outnumber live ones.
package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"scaleout/internal/sim"
)

// magic is the log header: format name plus version. A file that does
// not begin with it is not a result log, and Open refuses to touch it.
const magic = "SOSTORE1"

// LogName is the log's file name inside the store directory.
const LogName = "results.log"

// DefaultDir is the store directory the -store flags default to; it is
// git-ignored at the repository root.
const DefaultDir = ".sostore"

// maxRecord bounds one record's payload. Real records are a few KB (a
// canonical fingerprint plus a result's JSON); a length field beyond
// this is framing corruption, not a record.
const maxRecord = 16 << 20

// Result kinds, the first payload byte of every record. The store
// persists exactly the engine memo values that have a stable wire form.
const (
	kindSim        = 1 // sim.Result
	kindStructural = 2 // sim.StructuralResult
)

// record is one live index entry: the result kind and its JSON value,
// decoded lazily on Load so concurrent readers never share a value.
type record struct {
	kind byte
	val  []byte
}

// Store is the persistent result store. Construct with Open; a Store is
// safe for concurrent use. Writes go straight to the log file (one
// write per append, no fsync — a torn tail is recovered on the next
// Open); Flush or Close syncs the file when durability must be
// enforced, e.g. on soprocd's graceful drain.
type Store struct {
	mu    sync.RWMutex
	f     *os.File
	path  string
	index map[string]record
	size  int64 // current log length in bytes
	dead  int   // on-disk records not in the index (skipped or superseded)

	loaded      int64 // records loaded by Open
	appends     atomic.Int64
	compactions atomic.Int64
	hits        atomic.Int64
	misses      atomic.Int64
	saveErrors  atomic.Int64
}

// Open opens (creating if necessary) the result store in dir and
// replays its log into memory: every live record becomes servable
// before the first request, which is what re-warms a restarted daemon's
// shard before it takes traffic. A corrupt tail is truncated, CRC-
// mismatched records are skipped, and a log more than half dead is
// compacted in place.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, LogName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{f: f, path: path, index: make(map[string]record)}
	if err := s.replay(); err != nil {
		f.Close()
		return nil, err
	}
	if s.dead > 0 && s.dead >= len(s.index) {
		if err := s.compactLocked(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

// replay scans the log, building the index and truncating any corrupt
// tail. Called once from Open, before the store is shared.
func (s *Store) replay() error {
	buf, err := os.ReadFile(s.path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if len(buf) == 0 {
		if _, err := s.f.Write([]byte(magic)); err != nil {
			return fmt.Errorf("store: write header: %w", err)
		}
		s.size = int64(len(magic))
		return nil
	}
	if len(buf) < len(magic) || string(buf[:len(magic)]) != magic {
		return fmt.Errorf("store: %s is not a result log (bad header)", s.path)
	}

	end := len(magic) // offset past the last well-framed record
	for end+8 <= len(buf) {
		n := int(binary.LittleEndian.Uint32(buf[end:]))
		sum := binary.LittleEndian.Uint32(buf[end+4:])
		if n < 5 || n > maxRecord || end+8+n > len(buf) {
			break // framing broken: torn tail starts here
		}
		payload := buf[end+8 : end+8+n]
		end += 8 + n
		if crc32.ChecksumIEEE(payload) != sum {
			// The record is framed but its bytes are damaged: skip it
			// and keep scanning — records behind it are still good.
			s.dead++
			continue
		}
		kind := payload[0]
		keyLen := int(binary.LittleEndian.Uint32(payload[1:]))
		if keyLen < 0 || 5+keyLen > n {
			s.dead++
			continue
		}
		key := string(payload[5 : 5+keyLen])
		if _, ok := s.index[key]; ok {
			s.dead++ // superseded: last record for a key wins
		}
		val := make([]byte, n-5-keyLen)
		copy(val, payload[5+keyLen:])
		s.index[key] = record{kind: kind, val: val}
		s.loaded++
	}
	if end < len(buf) {
		if err := s.f.Truncate(int64(end)); err != nil {
			return fmt.Errorf("store: truncate corrupt tail: %w", err)
		}
	}
	if _, err := s.f.Seek(int64(end), 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.size = int64(end)
	return nil
}

// Load returns the stored result for key, decoded into the same typed
// value the key's computation would produce (sim.Result or
// sim.StructuralResult). It implements engine.Store: the experiment
// engine probes it on every memo miss.
func (s *Store) Load(key string) (any, bool) {
	s.mu.RLock()
	rec, ok := s.index[key]
	s.mu.RUnlock()
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	var val any
	var err error
	switch rec.kind {
	case kindSim:
		var r sim.Result
		err = json.Unmarshal(rec.val, &r)
		val = r
	case kindStructural:
		var r sim.StructuralResult
		err = json.Unmarshal(rec.val, &r)
		val = r
	default:
		err = fmt.Errorf("store: unknown record kind %d", rec.kind)
	}
	if err != nil {
		// An undecodable record is a miss, not a failure: the engine
		// recomputes the point and the append path supersedes the record.
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return val, true
}

// Save appends (key, val) to the log if the value has a persistable
// wire form — sim.Result or sim.StructuralResult; anything else is
// ignored — and the key is not already stored. It implements
// engine.Store: the engine writes every successful computation through.
// Append errors are counted (Stats.SaveErrors) and the log rolled back
// to its previous length, never left half-written.
func (s *Store) Save(key string, val any) {
	if key == "" {
		return
	}
	var kind byte
	switch val.(type) {
	case sim.Result:
		kind = kindSim
	case sim.StructuralResult:
		kind = kindStructural
	default:
		return
	}
	data, err := json.Marshal(val)
	if err != nil {
		s.saveErrors.Add(1)
		return
	}
	rec := encodeRecord(kind, key, data)

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; ok {
		return // computations are deterministic: the stored value stands
	}
	if _, err := s.f.Write(rec); err != nil {
		// Roll the log back so the next append starts on a clean record
		// boundary instead of extending a partial write.
		s.saveErrors.Add(1)
		s.f.Truncate(s.size)
		s.f.Seek(s.size, 0)
		return
	}
	s.size += int64(len(rec))
	s.index[key] = record{kind: kind, val: data}
	s.appends.Add(1)
}

// encodeRecord frames one record: length, CRC, then payload.
func encodeRecord(kind byte, key string, val []byte) []byte {
	n := 5 + len(key) + len(val)
	rec := make([]byte, 8+n)
	payload := rec[8:]
	payload[0] = kind
	binary.LittleEndian.PutUint32(payload[1:], uint32(len(key)))
	copy(payload[5:], key)
	copy(payload[5+len(key):], val)
	binary.LittleEndian.PutUint32(rec[0:], uint32(n))
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(payload))
	return rec
}

// Len reports the number of live (servable) entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Compact rewrites the log as one record per live key (sorted, so the
// compacted form is deterministic) in a temporary file that atomically
// renames over the log. Dead bytes — superseded, skipped, or truncated
// records — are dropped.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	tmp := s.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	defer os.Remove(tmp) // no-op after a successful rename
	size := int64(0)
	write := func(b []byte) error {
		n, werr := f.Write(b)
		size += int64(n)
		return werr
	}
	if err := write([]byte(magic)); err != nil {
		f.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rec := s.index[k]
		if err := write(encodeRecord(rec.kind, k, rec.val)); err != nil {
			f.Close()
			return fmt.Errorf("store: compact: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	old := s.f
	nf, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: reopen: %w", err)
	}
	if _, err := nf.Seek(size, 0); err != nil {
		nf.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	old.Close()
	s.f = nf
	s.size = size
	s.dead = 0
	s.compactions.Add(1)
	return nil
}

// Flush forces the log's buffered writes to stable storage (fsync).
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync()
}

// Close syncs and closes the log. The Store must not be used after
// Close; a daemon calls it after its graceful drain, so every result
// computed before shutdown is durable for the restart's warm start.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return fmt.Errorf("store: %w", err)
	}
	return s.f.Close()
}

// Stats is a snapshot of the store's counters; the JSON field names are
// the /statsz "store" section's wire format.
type Stats struct {
	// Loaded is the number of records Open replayed from disk — a
	// restarted daemon reporting Loaded > 0 re-warmed from its log.
	// Entries is the current live-key count (Loaded plus appends since).
	Loaded  int64 `json:"loaded"`
	Entries int   `json:"entries"`
	// DiskHits and DiskMisses count Load probes — in engine terms,
	// memo misses answered from disk vs. sent on to compute.
	DiskHits   int64 `json:"disk_hits"`
	DiskMisses int64 `json:"disk_misses"`
	// Appends counts records written this process; Compactions the
	// snapshot rewrites; Bytes the log's current length. SaveErrors
	// counts appends abandoned on a write error (the log is rolled back
	// to a record boundary each time).
	Appends     int64 `json:"appends"`
	Compactions int64 `json:"compactions"`
	Bytes       int64 `json:"bytes"`
	SaveErrors  int64 `json:"save_errors,omitempty"`
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	entries := len(s.index)
	bytes := s.size
	s.mu.RUnlock()
	return Stats{
		Loaded:      s.loaded,
		Entries:     entries,
		DiskHits:    s.hits.Load(),
		DiskMisses:  s.misses.Load(),
		Appends:     s.appends.Load(),
		Compactions: s.compactions.Load(),
		Bytes:       bytes,
		SaveErrors:  s.saveErrors.Load(),
	}
}
