package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"scaleout/internal/exp/engine"
	"scaleout/internal/sim"
)

func simVal(i int) sim.Result {
	return sim.Result{
		AppIPC:     1.0 + float64(i)/3.0, // not exactly representable: exercises float round-trip
		PerCoreIPC: 0.25 * float64(i),
		OffChipGBs: float64(i) * 7.3,
	}
}

func structVal(i int) sim.StructuralResult {
	return sim.StructuralResult{
		Result:     simVal(i),
		L1IMPKI:    float64(i) / 7.0,
		L1DMPKI:    float64(i) / 11.0,
		LLCMissPct: float64(i) * 1.5,
	}
}

func open(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := open(t, t.TempDir())
	s.Save("sim", simVal(1))
	s.Save("struct", structVal(2))
	s.Save("ignored", 42) // no wire form: silently not persisted

	got, ok := s.Load("sim")
	if !ok {
		t.Fatal("sim key missing")
	}
	if got != any(simVal(1)) {
		t.Fatalf("sim round-trip: got %#v want %#v", got, simVal(1))
	}
	got, ok = s.Load("struct")
	if !ok {
		t.Fatal("struct key missing")
	}
	if got != any(structVal(2)) {
		t.Fatalf("struct round-trip: got %#v want %#v", got, structVal(2))
	}
	if _, ok := s.Load("ignored"); ok {
		t.Fatal("unpersistable value was stored")
	}
	if _, ok := s.Load("absent"); ok {
		t.Fatal("absent key reported present")
	}
	if n := s.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
}

func TestReopenReplaysLog(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	for i := 0; i < 10; i++ {
		s.Save(fmt.Sprintf("k%d", i), simVal(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := open(t, dir)
	if st := r.Stats(); st.Loaded != 10 || st.Entries != 10 {
		t.Fatalf("reopen: loaded %d entries %d, want 10/10", st.Loaded, st.Entries)
	}
	for i := 0; i < 10; i++ {
		got, ok := r.Load(fmt.Sprintf("k%d", i))
		if !ok || got != any(simVal(i)) {
			t.Fatalf("k%d after reopen: got %#v ok=%v", i, got, ok)
		}
	}
}

// TestCorruptTailTruncated tears the final record mid-write (the crash
// the single-write append bounds the damage to) and checks that Open
// recovers every whole record, truncates the torn bytes, and accepts
// new appends on the clean boundary.
func TestCorruptTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	for i := 0; i < 5; i++ {
		s.Save(fmt.Sprintf("k%d", i), simVal(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, LogName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A torn tail: a plausible length prefix with only half a record
	// behind it.
	torn := append(append([]byte{}, buf...), 0x40, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	r := open(t, dir)
	if st := r.Stats(); st.Loaded != 5 {
		t.Fatalf("loaded %d records after torn tail, want 5", st.Loaded)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != int64(len(buf)) {
		t.Fatalf("log size %d after recovery, want %d (torn bytes truncated)", fi.Size(), len(buf))
	}
	// The log must keep working on the recovered boundary.
	r.Save("after", simVal(99))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := open(t, dir)
	if got, ok := r2.Load("after"); !ok || got != any(simVal(99)) {
		t.Fatalf("append after recovery: got %#v ok=%v", got, ok)
	}
}

// TestCRCMismatchSkipped damages one record's payload in place; Open
// must skip exactly that record and keep serving the ones behind it.
func TestCRCMismatchSkipped(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	s.Save("a", simVal(1))
	mark := s.Stats().Bytes // "b" starts here
	s.Save("b", simVal(2))
	s.Save("c", simVal(3))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, LogName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[mark+8+6] ^= 0xff // a payload byte of record "b": CRC now mismatches
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	r := open(t, dir)
	if _, ok := r.Load("b"); ok {
		t.Fatal("CRC-damaged record was served")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := r.Load(k); !ok {
			t.Fatalf("record %q lost alongside the damaged one", k)
		}
	}
}

// TestOpenCompactsMostlyDeadLog damages enough records that the dead
// outnumber the live: Open must rewrite the log down to the live set.
func TestOpenCompactsMostlyDeadLog(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	s.Save("a", simVal(1))
	mark := s.Stats().Bytes
	s.Save("b", simVal(2))
	s.Save("c", simVal(3))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, LogName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Damage "b" and "c": 2 dead >= 1 live triggers the auto-compact.
	buf[mark+8+6] ^= 0xff
	buf[len(buf)-1] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	r := open(t, dir)
	st := r.Stats()
	if st.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", st.Compactions)
	}
	if st.Entries != 1 || st.Bytes >= int64(len(buf)) {
		t.Fatalf("after compaction: %d entries, %d bytes (was %d)", st.Entries, st.Bytes, len(buf))
	}
	if _, ok := r.Load("a"); !ok {
		t.Fatal("live record lost in compaction")
	}
}

func TestCompactDeterministicAndServable(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	for i := 0; i < 20; i++ {
		s.Save(fmt.Sprintf("k%02d", i), structVal(i))
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, ok := s.Load(fmt.Sprintf("k%02d", i)); !ok {
			t.Fatalf("k%02d lost in compaction", i)
		}
	}
	// Appends after a compaction land in the renamed file.
	s.Save("post", simVal(1))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := open(t, dir)
	if st := r.Stats(); st.Entries != 21 {
		t.Fatalf("entries after compact+append+reopen = %d, want 21", st.Entries)
	}
}

// TestConcurrentAppendReadThrough drives Save and Load from many
// goroutines at once — the daemon's steady state — and relies on the
// race detector for the interesting assertions.
func TestConcurrentAppendReadThrough(t *testing.T) {
	s := open(t, t.TempDir())
	const writers, keys = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				s.Save(fmt.Sprintf("k%d", i), structVal(i))
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				if v, ok := s.Load(fmt.Sprintf("k%d", i)); ok {
					if v != any(structVal(i)) {
						t.Errorf("k%d: concurrent read saw wrong value", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if n := s.Len(); n != keys {
		t.Fatalf("Len = %d after concurrent appends, want %d", n, keys)
	}
}

// TestEngineEvictionFallsBackToDisk installs the store beneath a
// capacity-1 engine memo: a key evicted from memory must be served from
// disk — counted as a store hit, not recomputed and not a miss.
func TestEngineEvictionFallsBackToDisk(t *testing.T) {
	s := open(t, t.TempDir())
	eng := engine.NewBounded(1, 1)
	eng.SetStore(s)

	computes := 0
	compute := func(i int) func() (any, error) {
		return func() (any, error) {
			computes++
			return simVal(i), nil
		}
	}
	ctx := t.Context()
	if _, err := eng.Do(ctx, "a", compute(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Do(ctx, "b", compute(2)); err != nil { // evicts "a"
		t.Fatal(err)
	}
	got, err := eng.Do(ctx, "a", compute(1))
	if err != nil {
		t.Fatal(err)
	}
	if got != any(simVal(1)) {
		t.Fatalf("disk-served value = %#v, want %#v", got, simVal(1))
	}
	if computes != 2 {
		t.Fatalf("computes = %d, want 2 (evicted key must come from disk)", computes)
	}
	st := eng.Stats()
	if st.StoreHits != 1 {
		t.Fatalf("StoreHits = %d, want 1", st.StoreHits)
	}
	if st.Misses != 2 {
		t.Fatalf("Misses = %d, want 2 (a disk hit is not a miss)", st.Misses)
	}
}

// TestCachedProbesDisk: the tiered evaluator's non-waiting peek must
// see stored results, so a warm store short-circuits its batch path.
func TestCachedProbesDisk(t *testing.T) {
	s := open(t, t.TempDir())
	s.Save("k", structVal(3))
	eng := engine.New(1)
	eng.SetStore(s)

	got, ok := eng.Cached("k")
	if !ok || got != any(structVal(3)) {
		t.Fatalf("Cached from disk: got %#v ok=%v", got, ok)
	}
	st := eng.Stats()
	if st.Misses != 0 {
		t.Fatalf("Misses = %d after disk-served Cached, want 0", st.Misses)
	}
	if st.StoreHits != 1 {
		t.Fatalf("StoreHits = %d, want 1", st.StoreHits)
	}
	// The probe installed the entry: a second peek is a pure memo hit.
	if _, ok := eng.Cached("k"); !ok {
		t.Fatal("second Cached missed")
	}
	if st := eng.Stats(); st.StoreHits != 1 {
		t.Fatalf("StoreHits = %d after second Cached, want still 1", st.StoreHits)
	}
}

func TestOpenRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, LogName), []byte("not a log"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a file without the log header")
	}
}
