package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"scaleout/internal/noc"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

func suite() []workload.Workload { return workload.Suite() }

func TestValidate(t *testing.T) {
	if err := NewDesign(tech.OoO, 16, 4, noc.Crossbar).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Design{Cores: 0, LLCMB: 4}).Validate(); err == nil {
		t.Fatal("0 cores accepted")
	}
	if err := (Design{Cores: 4, LLCMB: 0}).Validate(); err == nil {
		t.Fatal("0MB LLC accepted")
	}
}

func TestBankRule(t *testing.T) {
	// UCA: one bank per four cores.
	d := NewDesign(tech.OoO, 16, 4, noc.Crossbar)
	if d.BankMB() != 1 {
		t.Fatalf("crossbar 16c/4MB bank = %vMB, want 1", d.BankMB())
	}
	// NUCA: one bank (slice) per tile.
	d = NewDesign(tech.OoO, 16, 4, noc.Mesh)
	if d.BankMB() != 0.25 {
		t.Fatalf("mesh 16c/4MB slice = %vMB, want 0.25", d.BankMB())
	}
	// Even a single-core design banks its shared cache at least 4 ways.
	d = NewDesign(tech.OoO, 1, 4, noc.Ideal)
	if d.BankMB() != 1 {
		t.Fatalf("single-core UCA bank = %vMB, want 1 (minimum 4 banks)", d.BankMB())
	}
}

func TestIPCBounds(t *testing.T) {
	types := []tech.CoreType{tech.Conventional, tech.OoO, tech.InOrder}
	kinds := []noc.Kind{noc.Ideal, noc.Crossbar, noc.Mesh}
	ws := suite()
	f := func(wi, ti, ki, cx uint8, llcX uint8) bool {
		w := ws[int(wi)%len(ws)]
		ct := types[int(ti)%len(types)]
		kind := kinds[int(ki)%len(kinds)]
		cores := 1 << (cx % 9) // 1..256
		llc := 1 + float64(llcX%32)
		ipc := PerCoreIPC(w, NewDesign(ct, cores, llc, kind))
		return ipc > 0 && ipc < w.BaseIPC[ct]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestChipIPCIsCoresTimesPerCore(t *testing.T) {
	d := NewDesign(tech.OoO, 32, 8, noc.Mesh)
	for _, w := range suite() {
		if got, want := ChipIPC(w, d), 32*PerCoreIPC(w, d); math.Abs(got-want) > 1e-12 {
			t.Fatalf("%s: chip %v != 32 x %v", w.Name, got, want)
		}
	}
}

// The core ordering the thesis relies on: conventional cores are fastest
// per core; in-order slowest — at identical cache/network conditions.
func TestCoreTypeOrdering(t *testing.T) {
	for _, w := range suite() {
		conv := PerCoreIPC(w, NewDesign(tech.Conventional, 4, 4, noc.Crossbar))
		ooo := PerCoreIPC(w, NewDesign(tech.OoO, 4, 4, noc.Crossbar))
		io := PerCoreIPC(w, NewDesign(tech.InOrder, 4, 4, noc.Crossbar))
		if !(conv > ooo && ooo > io) {
			t.Errorf("%s: ordering conv %v > ooo %v > io %v violated", w.Name, conv, ooo, io)
		}
	}
}

// Faster interconnects never hurt: ideal >= crossbar at every point.
func TestIdealAtLeastCrossbar(t *testing.T) {
	for _, w := range suite() {
		for c := 1; c <= 256; c *= 4 {
			ideal := PerCoreIPC(w, NewDesign(tech.OoO, c, 4, noc.Ideal))
			xbar := PerCoreIPC(w, NewDesign(tech.OoO, c, 4, noc.Crossbar))
			if ideal < xbar-1e-12 {
				t.Errorf("%s at %d cores: ideal %v < crossbar %v", w.Name, c, ideal, xbar)
			}
		}
	}
}

// Figure 2.3's contrast: per-core performance under a mesh degrades much
// faster with core count than under the ideal interconnect.
func TestDistanceEffect(t *testing.T) {
	ws := suite()
	ideal1 := SuiteMeanPerCoreIPC(ws, NewDesign(tech.OoO, 1, 4, noc.Ideal))
	ideal256 := SuiteMeanPerCoreIPC(ws, NewDesign(tech.OoO, 256, 4, noc.Ideal))
	mesh256 := SuiteMeanPerCoreIPC(ws, NewDesign(tech.OoO, 256, 4, noc.Mesh))
	idealDrop := 1 - ideal256/ideal1
	meshDrop := 1 - mesh256/ideal1
	if idealDrop > 0.35 {
		t.Errorf("ideal-interconnect sharing drop %v too steep (thesis: small)", idealDrop)
	}
	if meshDrop < idealDrop+0.1 {
		t.Errorf("mesh drop %v not clearly steeper than ideal drop %v", meshDrop, idealDrop)
	}
}

func TestLatencyAccounting(t *testing.T) {
	d := NewDesign(tech.OoO, 16, 4, noc.Crossbar)
	lllc := d.LLCLatency()
	// bank(1MB)=4 + crossbar16(5) + reply serialization(2 at 256b).
	if want := 4.0 + 5 + 2; math.Abs(lllc-want) > 1e-9 {
		t.Fatalf("LLC latency %v, want %v", lllc, want)
	}
	if d.MemLatency() <= lllc {
		t.Fatal("memory latency not above LLC latency")
	}
	if d.MemLatency() < float64(tech.MemoryLatencyCycles) {
		t.Fatal("memory latency below raw DRAM latency")
	}
}

// Bandwidth anchors from the thesis (Sections 3.4.2/3.4.3): the OoO pod
// demands ~9.4GB/s worst-case; the in-order pod ~15GB/s; both fit the
// channel provisioning that yields 3 and 6 DDR3 channels at 40nm.
func TestPodBandwidthAnchors(t *testing.T) {
	ws := suite()
	ooo := WorstCaseDemandGBs(ws, NewDesign(tech.OoO, 16, 4, noc.Crossbar))
	if ooo < 7.5 || ooo > 10.5 {
		t.Errorf("OoO pod worst-case demand %v GB/s, thesis ~9.4", ooo)
	}
	io := WorstCaseDemandGBs(ws, NewDesign(tech.InOrder, 32, 2, noc.Crossbar))
	if io < 15.4 || io > 18 {
		t.Errorf("in-order pod worst-case demand %v GB/s, thesis ~15-17", io)
	}
}

func TestSuiteMeansEmptyAndOrder(t *testing.T) {
	d := NewDesign(tech.OoO, 8, 4, noc.Crossbar)
	if SuiteMeanIPC(nil, d) != 0 || SuiteMeanPerCoreIPC(nil, d) != 0 {
		t.Fatal("empty suite should yield zero")
	}
	ws := suite()
	if got, want := SuiteMeanIPC(ws, d), 8*SuiteMeanPerCoreIPC(ws, d); math.Abs(got-want) > 1e-9 {
		t.Fatalf("suite means inconsistent: %v vs %v", got, want)
	}
}

func TestOffChipDemandPositive(t *testing.T) {
	d := NewDesign(tech.InOrder, 32, 2, noc.Crossbar)
	for _, w := range suite() {
		if OffChipDemandGBs(w, d) <= 0 {
			t.Errorf("%s: non-positive demand", w.Name)
		}
	}
}

// Larger LLCs reduce off-chip demand (the fixed-distance 3D argument).
func TestDemandFallsWithCapacity(t *testing.T) {
	ws := suite()
	small := WorstCaseDemandGBs(ws, NewDesign(tech.InOrder, 64, 2, noc.Crossbar))
	large := WorstCaseDemandGBs(ws, NewDesign(tech.InOrder, 64, 8, noc.Crossbar))
	if large >= small {
		t.Fatalf("demand did not fall with capacity: %v -> %v", small, large)
	}
}
