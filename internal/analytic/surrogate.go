package analytic

import (
	"scaleout/internal/noc"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// This file extends the first-order model into the surrogate tier
// (internal/tier): the same CPI-stack arithmetic, generalized to cover
// the simulators' configuration space — an arbitrary pre-built
// interconnect (not just the defaults NewDesign sizes), a bounded MSHR
// file, and software-scalability derating — and packaged as a predicted
// Result-shaped Estimate. The surrogate is *not* the simulator: its
// predictions carry per-region error measured by cmd/calibrate, and the
// tiered evaluator only trusts it as far as that calibration certifies.

// DesignFor builds a design around an existing interconnect
// configuration, where NewDesign would size a fresh one for the core
// count. This is how the surrogate tier maps a simulator configuration
// — whose Net may carry overrides (link width, LLC tiles) — onto the
// analytic model without losing those fields.
func DesignFor(core tech.CoreType, cores int, llcMB float64, net noc.Config) Design {
	if net.Kind == 0 && net.Cores == 0 {
		// Mirror the simulators' default: a zero Config means crossbar.
		net = noc.New(noc.Crossbar, cores)
	}
	return Design{Core: core, Cores: cores, LLCMB: llcMB, Net: net}
}

// Estimate is the surrogate tier's prediction for one simulator
// configuration: the analytic model's view of the quantities the
// simulators measure. Fields the first-order model cannot see (cycle
// counts, queueing latencies) are absent — the tiered evaluator fills a
// surrogate-served result only with these predicted fields.
type Estimate struct {
	AppIPC     float64 // aggregate application IPC (the decision score)
	PerCoreIPC float64
	OffChipGBs float64
	L1IMPKI    float64 // predicted L1-I misses/kilo-instruction (structural view)
	L1DMPKI    float64
	LLCMissPct float64 // predicted LLC miss ratio, percent
}

// SurrogateSpec is the surrogate's input: the slice of a simulator
// configuration the first-order model can act on.
type SurrogateSpec struct {
	Workload workload.Workload
	Design   Design

	// MSHRs bounds the memory-level parallelism an out-of-order core can
	// express (the structural simulator's L1 MSHR file); <= 0 leaves the
	// workload's calibrated MLP unbounded, matching the statistical
	// simulator.
	MSHRs int

	// SWScaling applies the workload's software-scalability derating,
	// matching sim.Config with DisableSWScaling unset.
	SWScaling bool

	// MemChannels caps predicted throughput at the chip's provisioned
	// off-chip bandwidth (channels x usable DDR3 GB/s), the saturation
	// both simulators model; <= 0 leaves bandwidth unbounded, matching
	// the first-order model's latency-only view.
	MemChannels int
}

// Surrogate predicts the simulators' headline metrics for one
// configuration in microseconds instead of milliseconds. It is the
// scoring function of the tiered evaluator: every sweep point is scored
// here first, and only points whose score lands near a decision
// boundary (within the calibrated error band) pay for the simulator.
func Surrogate(spec SurrogateSpec) Estimate {
	w, d := spec.Workload, spec.Design
	acc := w.AccessBreakdown(d.Core, d.LLCMB, d.Cores)
	lllc := d.LLCLatency()
	lmem := d.MemLatency()

	mlp := w.MLP[d.Core]
	if spec.MSHRs > 0 && float64(spec.MSHRs) < mlp {
		// A miss cannot overlap without an MSHR entry to live in: the
		// effective window is the smaller of the calibrated MLP and the
		// MSHR file. This is the knee the MSHR ablation sweeps.
		mlp = float64(spec.MSHRs)
	}

	cpi := 1 / w.BaseIPC[d.Core]
	cpi += acc.IHitAPKI / 1000 * lllc
	cpi += acc.DHitAPKI / 1000 * lllc * w.LLCOverlap[d.Core]
	cpi += acc.IMissMPKI / 1000 * lmem
	cpi += acc.DMissMPKI / 1000 * lmem / mlp
	ipc := 1 / cpi
	if spec.SWScaling {
		ipc *= w.SWEfficiency(d.Cores)
	}

	// Off-chip saturation: a chip cannot retire instructions faster than
	// its memory channels feed it lines. When latency-only IPC demands
	// more bandwidth than the channels supply, throughput degrades to
	// the bandwidth-limited rate.
	demand := w.OffChipGBs(d.Core, d.LLCMB, d.Cores, ipc)
	if spec.MemChannels > 0 {
		supply := float64(spec.MemChannels) * tech.DDR3UsableGBs
		if demand > supply {
			ipc *= supply / demand
			demand = supply
		}
	}

	est := Estimate{
		PerCoreIPC: ipc,
		AppIPC:     float64(d.Cores) * ipc,
		OffChipGBs: demand,
		L1IMPKI:    acc.IHitAPKI + acc.IMissMPKI,
		L1DMPKI:    acc.DHitAPKI + acc.DMissMPKI,
	}
	if total := acc.Total(); total > 0 {
		est.LLCMissPct = 100 * acc.MemMPKITotal() / total
	}
	return est
}
