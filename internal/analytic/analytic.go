// Package analytic implements the first-order chip performance model the
// thesis uses for its design-space exploration (Sections 2.4.3 and 3.3).
// The model extends classical average-memory-access-time analysis: given
// a core microarchitecture, an LLC capacity, a sharing degree, and an
// interconnect, it predicts the aggregate number of application
// instructions committed per cycle. It is parametrized by the same
// quantities the thesis extracts from simulation — base core performance,
// cache miss rates, and interconnect delay — which is why Chapter 3 can
// validate it against cycle-accurate simulation (Figure 3.3); our
// reproduction of that validation lives in internal/figures.
package analytic

import (
	"fmt"

	"scaleout/internal/noc"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// Design identifies one point in the processor design space: a core
// type, a number of cores sharing one LLC, the LLC capacity, and the
// interconnect between them.
type Design struct {
	Core  tech.CoreType
	Cores int
	LLCMB float64
	Net   noc.Config
}

// NewDesign builds a design with the interconnect sized for the core count.
func NewDesign(core tech.CoreType, cores int, llcMB float64, kind noc.Kind) Design {
	return Design{Core: core, Cores: cores, LLCMB: llcMB, Net: noc.New(kind, cores)}
}

// Validate reports an error for out-of-range configurations.
func (d Design) Validate() error {
	if d.Cores < 1 {
		return fmt.Errorf("analytic: design with %d cores", d.Cores)
	}
	if d.LLCMB <= 0 {
		return fmt.Errorf("analytic: design with %vMB LLC", d.LLCMB)
	}
	return nil
}

// memQueueMargin is the average queueing, controller, and row-buffer
// conflict overhead added to the raw 45ns DRAM access latency under load,
// in cycles (loaded latency ~70-80ns, typical for saturated channels).
const memQueueMargin = 50

// BankMB returns the capacity of one LLC bank. Following Table 3.1, UCA
// designs (crossbar, ideal) use one bank per four cores while NUCA
// designs (mesh and the other packet fabrics) slice the LLC per tile.
func (d Design) BankMB() float64 {
	banks := d.Cores
	if d.Net.Kind == noc.Crossbar || d.Net.Kind == noc.Ideal {
		banks = (d.Cores + 3) / 4
	}
	// A shared cache is always built from at least four banks; fewer
	// cores do not merge the array into one monolithic structure.
	if banks < 4 {
		banks = 4
	}
	return d.LLCMB / float64(banks)
}

// LLCLatency returns the load-to-use LLC hit latency in cycles: bank
// access plus the network contribution (header latency and data reply
// serialization).
func (d Design) LLCLatency() float64 {
	return float64(tech.LLCBankLatency(d.BankMB())) + d.Net.AccessLatency()
}

// MemLatency returns the effective off-chip miss latency in cycles: the
// LLC lookup that detects the miss, the DRAM access, and queueing margin.
func (d Design) MemLatency() float64 {
	return float64(tech.LLCBankLatency(d.BankMB())) + d.Net.OneWayLatency() +
		float64(tech.MemoryLatencyCycles) + memQueueMargin
}

// PerCoreIPC predicts the application IPC of one core of the design
// running workload w. The CPI stack is:
//
//	CPI = 1/BaseIPC                        issue-limited execution
//	    + iHit  * Lllc                     I-fetch from LLC, fully exposed
//	    + dHit  * Lllc * overlap           data from LLC, partly hidden
//	    + iMiss * Lmem                     I-fetch from memory, exposed
//	    + dMiss * Lmem / MLP               data from memory, overlapped
func PerCoreIPC(w workload.Workload, d Design) float64 {
	acc := w.AccessBreakdown(d.Core, d.LLCMB, d.Cores)
	lllc := d.LLCLatency()
	lmem := d.MemLatency()

	cpi := 1 / w.BaseIPC[d.Core]
	cpi += acc.IHitAPKI / 1000 * lllc
	cpi += acc.DHitAPKI / 1000 * lllc * w.LLCOverlap[d.Core]
	cpi += acc.IMissMPKI / 1000 * lmem
	cpi += acc.DMissMPKI / 1000 * lmem / w.MLP[d.Core]
	return 1 / cpi
}

// ChipIPC predicts the aggregate application instructions per cycle of
// the whole design: cores times per-core IPC. This is the thesis's
// "performance" metric (Section 2.4.3).
func ChipIPC(w workload.Workload, d Design) float64 {
	return float64(d.Cores) * PerCoreIPC(w, d)
}

// SuiteMeanIPC returns the aggregate IPC averaged (arithmetically, as the
// thesis's "averaged across all workloads") over the workload suite.
func SuiteMeanIPC(ws []workload.Workload, d Design) float64 {
	if len(ws) == 0 {
		return 0
	}
	sum := 0.0
	for _, w := range ws {
		sum += ChipIPC(w, d)
	}
	return sum / float64(len(ws))
}

// SuiteMeanPerCoreIPC returns the per-core IPC averaged over workloads.
func SuiteMeanPerCoreIPC(ws []workload.Workload, d Design) float64 {
	if len(ws) == 0 {
		return 0
	}
	sum := 0.0
	for _, w := range ws {
		sum += PerCoreIPC(w, d)
	}
	return sum / float64(len(ws))
}

// OffChipDemandGBs returns the average off-chip bandwidth demand of the
// design under workload w.
func OffChipDemandGBs(w workload.Workload, d Design) float64 {
	ipc := PerCoreIPC(w, d)
	return w.OffChipGBs(d.Core, d.LLCMB, d.Cores, ipc)
}

// WorstCaseDemandGBs returns the peak off-chip demand across the
// workload suite, the quantity memory channels are provisioned against
// (Section 2.1.6: "the number of memory interfaces must be chosen based
// on the worst-case off-chip traffic of the workloads").
func WorstCaseDemandGBs(ws []workload.Workload, d Design) float64 {
	peak := 0.0
	for _, w := range ws {
		ipc := PerCoreIPC(w, d)
		if demand := w.PeakOffChipGBs(d.Core, d.LLCMB, d.Cores, ipc); demand > peak {
			peak = demand
		}
	}
	return peak
}
