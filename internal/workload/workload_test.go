package workload

import (
	"math"
	"testing"
	"testing/quick"

	"scaleout/internal/tech"
)

func TestSuiteValid(t *testing.T) {
	ws := Suite()
	if len(ws) != 7 {
		t.Fatalf("suite has %d workloads, want 7", len(ws))
	}
	for _, w := range ws {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

func TestNamesAndByName(t *testing.T) {
	names := Names()
	if len(names) != 7 || names[0] != DataServing || names[6] != WebSearch {
		t.Fatalf("names: %v", names)
	}
	w, ok := ByName(MediaStreaming)
	if !ok || w.Name != MediaStreaming {
		t.Fatal("ByName failed for Media Streaming")
	}
	if _, ok := ByName("SPECint"); ok {
		t.Fatal("ByName found a non-existent workload")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	base, _ := ByName(WebSearch)
	bads := []func(*Workload){
		func(w *Workload) { w.Name = "" },
		func(w *Workload) { w.APKI = -1 },
		func(w *Workload) { w.APKI = 500 },
		func(w *Workload) { w.IFetchFrac = 1.5 },
		func(w *Workload) { w.MPKI1 = 0.1 }, // below floor
		func(w *Workload) { w.Alpha = 0 },
		func(w *Workload) { w.InstrFootprintMB = 0 },
		func(w *Workload) { w.ScaleLimit = 0 },
		func(w *Workload) { w.BaseIPC[tech.OoO] = 99 },
		func(w *Workload) { w.MLP[tech.InOrder] = 0.5 },
		func(w *Workload) { w.LLCOverlap[tech.Conventional] = 0 },
	}
	for i, mutate := range bads {
		w := base
		w.BaseIPC = map[tech.CoreType]float64{}
		w.MLP = map[tech.CoreType]float64{}
		w.LLCOverlap = map[tech.CoreType]float64{}
		for k, v := range base.BaseIPC {
			w.BaseIPC[k] = v
		}
		for k, v := range base.MLP {
			w.MLP[k] = v
		}
		for k, v := range base.LLCOverlap {
			w.LLCOverlap[k] = v
		}
		mutate(&w)
		if err := w.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// Miss rate must fall monotonically with LLC capacity at fixed sharing.
func TestMissCurveMonotonicInCapacity(t *testing.T) {
	for _, w := range Suite() {
		prev := math.Inf(1)
		for _, mb := range []float64{1, 2, 4, 8, 16, 32} {
			m := w.MemMPKI(tech.OoO, mb, 4)
			if m > prev+1e-12 {
				t.Errorf("%s: miss rate rose from %v to %v at %vMB", w.Name, prev, m, mb)
			}
			prev = m
		}
	}
}

// Miss rate must rise with the number of sharers at fixed capacity.
func TestMissCurveMonotonicInSharing(t *testing.T) {
	for _, w := range Suite() {
		prev := 0.0
		for _, cores := range []int{1, 4, 16, 64, 256} {
			m := w.MemMPKI(tech.OoO, 4, cores)
			if m < prev-1e-12 {
				t.Errorf("%s: miss rate fell with more sharers at %d cores", w.Name, cores)
			}
			prev = m
		}
	}
}

// Section 2.1.4: with an ideal interconnect, sharing one LLC among 256
// cores costs only a modest per-core miss increase. Bound the capacity-
// pressure growth from 2 to 256 cores.
func TestSharingPressureIsMild(t *testing.T) {
	for _, w := range Suite() {
		m2 := w.MemMPKI(tech.OoO, 4, 2)
		m256 := w.MemMPKI(tech.OoO, 4, 256)
		if m256 > m2*4 {
			t.Errorf("%s: misses grew %vx from 2 to 256 sharers", w.Name, m256/m2)
		}
	}
}

// AccessBreakdown must decompose consistently: components non-negative
// and summing to the effective APKI.
func TestAccessBreakdownConsistency(t *testing.T) {
	ws := Suite()
	types := []tech.CoreType{tech.Conventional, tech.OoO, tech.InOrder}
	f := func(wi uint8, ti uint8, llcX uint8, coresX uint8) bool {
		w := ws[int(wi)%len(ws)]
		ct := types[int(ti)%len(types)]
		llc := 0.5 + float64(llcX%64)
		cores := 1 + int(coresX)%255
		a := w.AccessBreakdown(ct, llc, cores)
		if a.IHitAPKI < 0 || a.DHitAPKI < 0 || a.IMissMPKI < 0 || a.DMissMPKI < 0 {
			return false
		}
		return math.Abs(a.Total()-w.EffectiveAPKI(ct)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestConventionalAPKISmaller(t *testing.T) {
	for _, w := range Suite() {
		if w.EffectiveAPKI(tech.Conventional) >= w.EffectiveAPKI(tech.OoO) {
			t.Errorf("%s: 64KB-L1 conventional core should miss less than 32KB-L1 cores", w.Name)
		}
	}
}

func TestSWEfficiency(t *testing.T) {
	w, _ := ByName(DataServing) // SWScaleCores 16
	if w.SWEfficiency(8) != 1 || w.SWEfficiency(16) != 1 {
		t.Fatal("derating below the knee")
	}
	e32, e64 := w.SWEfficiency(32), w.SWEfficiency(64)
	if !(e64 < e32 && e32 < 1) {
		t.Fatalf("derating not monotonic: e32=%v e64=%v", e32, e64)
	}
	perfect := Workload{}
	if perfect.SWEfficiency(1000) != 1 {
		t.Fatal("zero SWScaleCores should mean no derating")
	}
}

func TestOffChipTraffic(t *testing.T) {
	w, _ := ByName(SATSolver)
	gbs := w.OffChipGBs(tech.OoO, 4, 16, 0.9)
	if gbs <= 0 || gbs > 50 {
		t.Fatalf("implausible off-chip traffic %v GB/s", gbs)
	}
	peak := w.PeakOffChipGBs(tech.OoO, 4, 16, 0.9)
	if peak <= gbs {
		t.Fatal("peak demand should exceed the average")
	}
	// Traffic is linear in IPC at a fixed configuration.
	if d := w.OffChipGBs(tech.OoO, 4, 16, 1.8); math.Abs(d-2*gbs) > 1e-9 {
		t.Fatalf("traffic not linear in IPC: %v vs 2x%v", d, gbs)
	}
	// More sharers at fixed capacity demand at least proportional traffic.
	if d := w.OffChipGBs(tech.OoO, 4, 32, 0.9); d < 2*gbs {
		t.Fatalf("32 sharers demand %v, below 2x the 16-sharer %v", d, gbs)
	}
}

// Figure 2.1 calibration: Media Streaming is the only workload with
// conventional-core base IPC below the rest; snoop percentages average
// near the thesis's 2.7%.
func TestCalibrationAnchors(t *testing.T) {
	ws := Suite()
	ms, _ := ByName(MediaStreaming)
	for _, w := range ws {
		if w.Name != MediaStreaming && w.BaseIPC[tech.Conventional] <= ms.BaseIPC[tech.Conventional] {
			t.Errorf("%s base IPC below Media Streaming", w.Name)
		}
	}
	sum := 0.0
	for _, w := range ws {
		sum += w.SnoopPct
	}
	if mean := sum / float64(len(ws)); mean < 2.0 || mean > 3.5 {
		t.Errorf("mean snoop target %v%%, thesis reports ~2.7%%", mean)
	}
}

// Scale limits follow Table 3.1.
func TestScaleLimits(t *testing.T) {
	want := map[string]int{
		DataServing: 64, MapReduceC: 64, MapReduceW: 64, SATSolver: 64,
		WebFrontend: 32, WebSearch: 32, MediaStreaming: 16,
	}
	for _, w := range Suite() {
		if w.ScaleLimit != want[w.Name] {
			t.Errorf("%s scale limit %d, want %d", w.Name, w.ScaleLimit, want[w.Name])
		}
	}
}

func TestDataCapacityFloor(t *testing.T) {
	w, _ := ByName(WebFrontend)
	if c := w.DataCapacityMB(0.25, 64); c < 0.01 {
		t.Fatalf("data capacity collapsed to %v", c)
	}
	if c1, c4 := w.DataCapacityMB(8, 1), w.DataCapacityMB(8, 64); c4 >= c1 {
		t.Fatal("sharing pressure did not reduce effective capacity")
	}
}
