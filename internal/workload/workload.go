// Package workload models the seven CloudSuite scale-out workloads the
// thesis evaluates: Data Serving, MapReduce-C (text classification),
// MapReduce-W (word count), Media Streaming, SAT Solver, Web Frontend
// (SPECweb2009 banking), and Web Search.
//
// The thesis drives both its analytic model and its Flexus simulations
// with these applications. We cannot run CloudSuite itself, so each
// workload is represented by the statistical quantities the thesis's
// models actually consume: base (memory-system-free) IPC per core type,
// L1-miss rates into the LLC, the LLC miss-rate curve as a function of
// capacity and sharing degree, memory-level parallelism, and the coherence
// snoop fraction. Every constant is calibrated against a number the thesis
// reports (see DESIGN.md "Key calibration constants").
package workload

import (
	"fmt"
	"math"

	"scaleout/internal/tech"
)

// Workload is a calibrated statistical model of one scale-out application.
type Workload struct {
	// Name is the CloudSuite name as used in the thesis figures.
	Name string

	// BaseIPC is the IPC each core type sustains when every memory
	// reference hits in the L1s — the "application instructions per
	// cycle" ceiling set by issue width, branches, and dependencies.
	BaseIPC map[tech.CoreType]float64

	// APKI is the number of LLC accesses (L1 misses, instruction plus
	// data) per kilo-instruction for the 32KB-L1 cores. Conventional
	// cores with 64KB L1s see APKI * ConvAPKIFactor.
	APKI float64

	// ConvAPKIFactor scales APKI for the conventional core's larger L1s.
	ConvAPKIFactor float64

	// IFetchFrac is the fraction of LLC accesses that are instruction
	// fetches. Scale-out workloads have multi-megabyte instruction
	// footprints, so this fraction is large and the fetches nearly
	// always hit in the LLC.
	IFetchFrac float64

	// InstrFootprintMB is the dynamic instruction footprint resident in
	// the LLC (hundreds of KB to MB, Section 1).
	InstrFootprintMB float64

	// Miss-rate curve for data: misses per kilo-instruction to memory
	// given an effective per-workload data capacity of c MB follows
	//   m(c) = MPKIFloor + (MPKI1 - MPKIFloor) * c^(-Alpha)
	// MPKI1 is the data MPKI with 1MB of effective data capacity;
	// MPKIFloor is the compulsory/streaming floor that no cache captures.
	MPKI1     float64
	MPKIFloor float64
	Alpha     float64

	// ShareExp models the mild capacity pressure of sharing one LLC
	// among n cores: effective data capacity = dataMB * (1/n)^ShareExp
	// relative to the 1-core point. The thesis shows this effect is
	// small (Section 2.1.4: ~16% per-core loss from 2 to 256 cores with
	// an ideal interconnect).
	ShareExp float64

	// MLP is the average number of outstanding off-chip misses an
	// out-of-order core overlaps; conventional cores overlap a bit more
	// (deeper ROB/LSQ), in-order cores essentially block (MLP ~1).
	MLP map[tech.CoreType]float64

	// LLCOverlap is the fraction of each LLC *data* hit latency that the
	// core cannot hide (1 = fully exposed, as for in-order cores).
	// Instruction fetch latency is always fully exposed: L1-I misses
	// stall the front end (Section 2.2.3).
	LLCOverlap map[tech.CoreType]float64

	// SnoopPct is the percentage of LLC accesses that trigger a snoop
	// message to a core (Figure 4.3).
	SnoopPct float64

	// WritebackFrac is the fraction of off-chip misses that also cause a
	// dirty writeback, adding to off-chip traffic.
	WritebackFrac float64

	// ScaleLimit is the largest core count at which the software stack
	// scales in full-system simulation (Table 3.1): 64 for Data Serving,
	// MapReduce and SAT Solver; 32 for Web Frontend and Web Search; 16
	// for Media Streaming. The analytic model ignores it (it models
	// hardware potential); simulations respect it.
	ScaleLimit int

	// BWBurstFactor is the ratio of worst-case to average off-chip
	// bandwidth demand, used when provisioning memory channels for the
	// worst case (Section 2.1.6).
	BWBurstFactor float64

	// SWScaleCores and SWScaleExp model software scalability in
	// full-system simulation: beyond SWScaleCores cores, aggregate
	// application throughput is derated by (SWScaleCores/n)^SWScaleExp
	// — the effect Figure 3.3 shows at 32-64 cores on Data Serving,
	// Web Search, and SAT Solver, which the analytic model deliberately
	// does not capture.
	SWScaleCores int
	SWScaleExp   float64

	// SharedFrac is the fraction of data accesses that touch the small
	// read-write shared working set (locks, allocator metadata, shared
	// session state). Only these accesses can generate coherence snoops;
	// the independent-request datasets never do. SharedWriteFrac is the
	// write ratio within those accesses. Together they are calibrated so
	// the simulated directory reproduces the Figure 4.3 snoop rates.
	SharedFrac      float64
	SharedWriteFrac float64
}

// Validate reports an error if any parameter is outside its sane range.
func (w Workload) Validate() error {
	switch {
	case w.Name == "":
		return fmt.Errorf("workload: empty name")
	case w.APKI <= 0 || w.APKI > 200:
		return fmt.Errorf("workload %s: APKI %v out of range", w.Name, w.APKI)
	case w.IFetchFrac < 0 || w.IFetchFrac > 1:
		return fmt.Errorf("workload %s: IFetchFrac %v out of range", w.Name, w.IFetchFrac)
	case w.MPKI1 < w.MPKIFloor:
		return fmt.Errorf("workload %s: MPKI1 %v below floor %v", w.Name, w.MPKI1, w.MPKIFloor)
	case w.Alpha <= 0 || w.Alpha > 2:
		return fmt.Errorf("workload %s: Alpha %v out of range", w.Name, w.Alpha)
	case w.InstrFootprintMB <= 0:
		return fmt.Errorf("workload %s: non-positive instruction footprint", w.Name)
	case w.ScaleLimit < 1:
		return fmt.Errorf("workload %s: scale limit %d", w.Name, w.ScaleLimit)
	}
	for _, t := range []tech.CoreType{tech.Conventional, tech.OoO, tech.InOrder} {
		if w.BaseIPC[t] <= 0 || w.BaseIPC[t] > float64(tech.Cores(t).Width) {
			return fmt.Errorf("workload %s: BaseIPC[%v]=%v exceeds width", w.Name, t, w.BaseIPC[t])
		}
		if w.MLP[t] < 1 {
			return fmt.Errorf("workload %s: MLP[%v]=%v below 1", w.Name, t, w.MLP[t])
		}
		if w.LLCOverlap[t] <= 0 || w.LLCOverlap[t] > 1 {
			return fmt.Errorf("workload %s: LLCOverlap[%v]=%v out of (0,1]", w.Name, t, w.LLCOverlap[t])
		}
	}
	return nil
}

// SWEfficiency returns the software-scalability derating at n cores:
// 1 at or below SWScaleCores, then (SWScaleCores/n)^SWScaleExp.
func (w Workload) SWEfficiency(n int) float64 {
	if w.SWScaleCores <= 0 || n <= w.SWScaleCores {
		return 1
	}
	return math.Pow(float64(w.SWScaleCores)/float64(n), w.SWScaleExp)
}

// EffectiveAPKI returns LLC accesses per kilo-instruction for a core type.
func (w Workload) EffectiveAPKI(t tech.CoreType) float64 {
	if t == tech.Conventional {
		return w.APKI * w.ConvAPKIFactor
	}
	return w.APKI
}

// DataCapacityMB returns the LLC capacity left for data once the hot
// half of the shared instruction footprint is resident (instructions and
// data contend for the same ways; only the hot fraction is pinned),
// adjusted for sharing pressure among n cores. The footprint is counted
// once — it is shared by all cores executing the same binary (4.5.1).
func (w Workload) DataCapacityMB(llcMB float64, cores int) float64 {
	if cores < 1 {
		cores = 1
	}
	data := llcMB - 0.5*w.InstrFootprintMB
	if data < 0.125 {
		data = 0.125 // at least two 64KB-equivalent slivers remain for data
	}
	return data * math.Pow(1/float64(cores), w.ShareExp)
}

// MemMPKI returns off-chip misses per kilo-instruction for a core of type
// t given the shared LLC capacity and sharing degree.
func (w Workload) MemMPKI(t tech.CoreType, llcMB float64, cores int) float64 {
	return w.AccessBreakdown(t, llcMB, cores).MemMPKITotal()
}

// Accesses decomposes the LLC traffic of a core of type t into hit and
// miss components per kilo-instruction. Instruction fetches and data
// references are kept separate because instruction fetch latency is fully
// exposed (front-end stalls) while data latency is partially overlapped.
type Accesses struct {
	IHitAPKI  float64 // instruction fetches served by the LLC
	DHitAPKI  float64 // data references served by the LLC
	IMissMPKI float64 // instruction fetches going off-chip
	DMissMPKI float64 // data references going off-chip
}

// Total returns the total LLC accesses per kilo-instruction.
func (a Accesses) Total() float64 {
	return a.IHitAPKI + a.DHitAPKI + a.IMissMPKI + a.DMissMPKI
}

// MemMPKITotal returns the off-chip misses per kilo-instruction.
func (a Accesses) MemMPKITotal() float64 { return a.IMissMPKI + a.DMissMPKI }

// AccessBreakdown computes the hit/miss decomposition for a core of type
// t sharing an LLC of llcMB megabytes with cores peers.
func (w Workload) AccessBreakdown(t tech.CoreType, llcMB float64, cores int) Accesses {
	apki := w.EffectiveAPKI(t)
	iAPKI := apki * w.IFetchFrac
	dAPKI := apki - iAPKI

	iMiss := iAPKI * math.Exp(-3*llcMB/w.InstrFootprintMB)
	c := w.DataCapacityMB(llcMB, cores)
	dMiss := w.MPKIFloor + (w.MPKI1-w.MPKIFloor)*math.Pow(c, -w.Alpha)
	if dMiss > dAPKI {
		dMiss = dAPKI
	}
	return Accesses{
		IHitAPKI:  iAPKI - iMiss,
		DHitAPKI:  dAPKI - dMiss,
		IMissMPKI: iMiss,
		DMissMPKI: dMiss,
	}
}

// LLCHitAPKI returns the LLC accesses per kilo-instruction that hit
// on-chip for a core of type t.
func (w Workload) LLCHitAPKI(t tech.CoreType, llcMB float64, cores int) float64 {
	h := w.EffectiveAPKI(t) - w.MemMPKI(t, llcMB, cores)
	if h < 0 {
		h = 0
	}
	return h
}

// OffChipGBs returns the average off-chip traffic in GB/s generated by n
// cores of type t each committing ipc application instructions per cycle.
func (w Workload) OffChipGBs(t tech.CoreType, llcMB float64, cores int, ipc float64) float64 {
	mpki := w.MemMPKI(t, llcMB, cores)
	linesPerInstr := mpki / 1000 * (1 + w.WritebackFrac)
	instrPerSec := ipc * tech.ClockGHz * 1e9 * float64(cores)
	return instrPerSec * linesPerInstr * tech.CacheLineBytes / 1e9
}

// PeakOffChipGBs is OffChipGBs scaled by the worst-case burst factor used
// for channel provisioning.
func (w Workload) PeakOffChipGBs(t tech.CoreType, llcMB float64, cores int, ipc float64) float64 {
	return w.OffChipGBs(t, llcMB, cores, ipc) * w.BWBurstFactor
}
