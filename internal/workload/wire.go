package workload

import "scaleout/internal/tech"

// WireValues is a per-core-type parameter triple in wire form. The
// Workload struct keys these parameters by tech.CoreType in maps; on
// the wire they are flattened to named fields so the JSON is
// self-describing and independent of enum values and map iteration
// order.
type WireValues struct {
	Conventional float64 `json:"conventional"`
	OoO          float64 `json:"ooo"`
	InOrder      float64 `json:"in_order"`
}

func toWireValues(m map[tech.CoreType]float64) WireValues {
	return WireValues{
		Conventional: m[tech.Conventional],
		OoO:          m[tech.OoO],
		InOrder:      m[tech.InOrder],
	}
}

func (v WireValues) toMap() map[tech.CoreType]float64 {
	return map[tech.CoreType]float64{
		tech.Conventional: v.Conventional,
		tech.OoO:          v.OoO,
		tech.InOrder:      v.InOrder,
	}
}

// Wire is the complete JSON form of a Workload: every calibrated
// parameter the analytic model and the simulators consume. It exists so
// a sweep point can carry an arbitrary workload — a perturbed suite
// entry, a synthetic stress case — across the cluster instead of only
// the seven suite names; Workload.Validate still gates what a receiver
// accepts.
type Wire struct {
	Name             string     `json:"name"`
	BaseIPC          WireValues `json:"base_ipc"`
	APKI             float64    `json:"apki"`
	ConvAPKIFactor   float64    `json:"conv_apki_factor"`
	IFetchFrac       float64    `json:"ifetch_frac"`
	InstrFootprintMB float64    `json:"instr_footprint_mb"`
	MPKI1            float64    `json:"mpki1"`
	MPKIFloor        float64    `json:"mpki_floor"`
	Alpha            float64    `json:"alpha"`
	ShareExp         float64    `json:"share_exp"`
	MLP              WireValues `json:"mlp"`
	LLCOverlap       WireValues `json:"llc_overlap"`
	SnoopPct         float64    `json:"snoop_pct"`
	WritebackFrac    float64    `json:"writeback_frac"`
	ScaleLimit       int        `json:"scale_limit"`
	BWBurstFactor    float64    `json:"bw_burst_factor"`
	SWScaleCores     int        `json:"sw_scale_cores"`
	SWScaleExp       float64    `json:"sw_scale_exp"`
	SharedFrac       float64    `json:"shared_frac"`
	SharedWriteFrac  float64    `json:"shared_write_frac"`
}

// Wire converts the Workload to its wire form, flattening the
// per-core-type maps into named triples.
func (w Workload) Wire() Wire {
	return Wire{
		Name:             w.Name,
		BaseIPC:          toWireValues(w.BaseIPC),
		APKI:             w.APKI,
		ConvAPKIFactor:   w.ConvAPKIFactor,
		IFetchFrac:       w.IFetchFrac,
		InstrFootprintMB: w.InstrFootprintMB,
		MPKI1:            w.MPKI1,
		MPKIFloor:        w.MPKIFloor,
		Alpha:            w.Alpha,
		ShareExp:         w.ShareExp,
		MLP:              toWireValues(w.MLP),
		LLCOverlap:       toWireValues(w.LLCOverlap),
		SnoopPct:         w.SnoopPct,
		WritebackFrac:    w.WritebackFrac,
		ScaleLimit:       w.ScaleLimit,
		BWBurstFactor:    w.BWBurstFactor,
		SWScaleCores:     w.SWScaleCores,
		SWScaleExp:       w.SWScaleExp,
		SharedFrac:       w.SharedFrac,
		SharedWriteFrac:  w.SharedWriteFrac,
	}
}

// Workload converts a decoded wire form back to the Workload it
// encodes. The result is not validated here: callers run it through
// Workload.Validate (directly or via a simulator Canonical call) so an
// out-of-range spec is rejected by the same rules that gate the suite.
func (w Wire) Workload() Workload {
	return Workload{
		Name:             w.Name,
		BaseIPC:          w.BaseIPC.toMap(),
		APKI:             w.APKI,
		ConvAPKIFactor:   w.ConvAPKIFactor,
		IFetchFrac:       w.IFetchFrac,
		InstrFootprintMB: w.InstrFootprintMB,
		MPKI1:            w.MPKI1,
		MPKIFloor:        w.MPKIFloor,
		Alpha:            w.Alpha,
		ShareExp:         w.ShareExp,
		MLP:              w.MLP.toMap(),
		LLCOverlap:       w.LLCOverlap.toMap(),
		SnoopPct:         w.SnoopPct,
		WritebackFrac:    w.WritebackFrac,
		ScaleLimit:       w.ScaleLimit,
		BWBurstFactor:    w.BWBurstFactor,
		SWScaleCores:     w.SWScaleCores,
		SWScaleExp:       w.SWScaleExp,
		SharedFrac:       w.SharedFrac,
		SharedWriteFrac:  w.SharedWriteFrac,
	}
}
