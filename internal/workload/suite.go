package workload

import "scaleout/internal/tech"

// Workload name constants, spelled as in the thesis figures.
const (
	DataServing    = "Data Serving"
	MapReduceC     = "MapReduce-C"
	MapReduceW     = "MapReduce-W"
	MediaStreaming = "Media Streaming"
	SATSolver      = "SAT Solver"
	WebFrontend    = "Web Frontend"
	WebSearch      = "Web Search"
)

func ipc(conv, ooo, io float64) map[tech.CoreType]float64 {
	return map[tech.CoreType]float64{tech.Conventional: conv, tech.OoO: ooo, tech.InOrder: io}
}

func mlp(conv, ooo, io float64) map[tech.CoreType]float64 {
	return map[tech.CoreType]float64{tech.Conventional: conv, tech.OoO: ooo, tech.InOrder: io}
}

func overlap(conv, ooo, io float64) map[tech.CoreType]float64 {
	return map[tech.CoreType]float64{tech.Conventional: conv, tech.OoO: ooo, tech.InOrder: io}
}

// Suite returns the seven CloudSuite workload models in the order the
// thesis plots them. The calibration provenance for each constant is
// described in the package comment and DESIGN.md; collectively they are
// tuned so that the analytic model reproduces Figure 2.1 (per-workload
// IPC on the aggressive core), Figure 2.2 (LLC capacity sensitivity),
// Figure 4.3 (snoop rates), and the performance-density columns of
// Tables 2.3/2.4/3.2.
func Suite() []Workload {
	common := func(w Workload) Workload {
		w.ConvAPKIFactor = 0.60
		w.WritebackFrac = 0.20
		return w
	}
	return []Workload{
		common(Workload{
			Name:    DataServing,
			BaseIPC: ipc(2.6, 1.70, 1.10),
			APKI:    55, IFetchFrac: 0.42, InstrFootprintMB: 1.2,
			MPKI1: 3.53, MPKIFloor: 1.4, Alpha: 0.44, ShareExp: 0.28,
			MLP: mlp(2.6, 2.0, 1.05), LLCOverlap: overlap(0.50, 0.60, 1.0),
			SnoopPct: 4.5, ScaleLimit: 64, BWBurstFactor: 1.15,
			SWScaleCores: 16, SWScaleExp: 0.35, SharedFrac: 0.13, SharedWriteFrac: 0.45,
		}),
		common(Workload{
			Name:    MapReduceC,
			BaseIPC: ipc(2.7, 1.80, 1.15),
			APKI:    48, IFetchFrac: 0.35, InstrFootprintMB: 1.0,
			MPKI1: 4.29, MPKIFloor: 0.9, Alpha: 0.38, ShareExp: 0.28,
			MLP: mlp(3.0, 2.4, 1.10), LLCOverlap: overlap(0.50, 0.60, 1.0),
			SnoopPct: 2.0, ScaleLimit: 64, BWBurstFactor: 1.15,
			SWScaleCores: 64, SWScaleExp: 0.1, SharedFrac: 0.07, SharedWriteFrac: 0.4,
		}),
		common(Workload{
			Name:    MapReduceW,
			BaseIPC: ipc(3.2, 2.10, 1.30),
			APKI:    45, IFetchFrac: 0.40, InstrFootprintMB: 1.0,
			MPKI1: 3.63, MPKIFloor: 1.3, Alpha: 0.48, ShareExp: 0.28,
			MLP: mlp(2.8, 2.2, 1.05), LLCOverlap: overlap(0.50, 0.60, 1.0),
			SnoopPct: 2.2, ScaleLimit: 64, BWBurstFactor: 1.15,
			SWScaleCores: 64, SWScaleExp: 0.1, SharedFrac: 0.08, SharedWriteFrac: 0.4,
		}),
		common(Workload{
			Name:    MediaStreaming,
			BaseIPC: ipc(1.75, 1.35, 0.95),
			APKI:    65, IFetchFrac: 0.55, InstrFootprintMB: 1.0,
			MPKI1: 3.79, MPKIFloor: 2.6, Alpha: 0.54, ShareExp: 0.28,
			MLP: mlp(1.6, 1.35, 1.0), LLCOverlap: overlap(0.75, 0.85, 1.0),
			SnoopPct: 1.2, ScaleLimit: 16, BWBurstFactor: 1.25,
			SWScaleCores: 16, SWScaleExp: 0.5, SharedFrac: 0.09, SharedWriteFrac: 0.35,
		}),
		common(Workload{
			Name:    SATSolver,
			BaseIPC: ipc(3.5, 2.30, 1.40),
			APKI:    40, IFetchFrac: 0.25, InstrFootprintMB: 0.5,
			MPKI1: 4.61, MPKIFloor: 0.5, Alpha: 0.55, ShareExp: 0.28,
			MLP: mlp(2.8, 2.3, 1.10), LLCOverlap: overlap(0.50, 0.60, 1.0),
			SnoopPct: 1.5, ScaleLimit: 64, BWBurstFactor: 1.10,
			SWScaleCores: 16, SWScaleExp: 0.3, SharedFrac: 0.051, SharedWriteFrac: 0.4,
		}),
		common(Workload{
			Name:    WebFrontend,
			BaseIPC: ipc(3.6, 2.35, 1.45),
			APKI:    52, IFetchFrac: 0.50, InstrFootprintMB: 1.4,
			MPKI1: 2.53, MPKIFloor: 1, Alpha: 0.5, ShareExp: 0.28,
			MLP: mlp(2.4, 1.9, 1.05), LLCOverlap: overlap(0.55, 0.65, 1.0),
			SnoopPct: 5.5, ScaleLimit: 32, BWBurstFactor: 1.15,
			SWScaleCores: 32, SWScaleExp: 0.15, SharedFrac: 0.19, SharedWriteFrac: 0.45,
		}),
		common(Workload{
			Name:    WebSearch,
			BaseIPC: ipc(3.8, 2.50, 1.50),
			APKI:    42, IFetchFrac: 0.48, InstrFootprintMB: 1.3,
			MPKI1: 2.24, MPKIFloor: 0.9, Alpha: 0.5, ShareExp: 0.28,
			MLP: mlp(2.5, 2.0, 1.05), LLCOverlap: overlap(0.55, 0.65, 1.0),
			SnoopPct: 2.0, ScaleLimit: 32, BWBurstFactor: 1.15,
			SWScaleCores: 16, SWScaleExp: 0.3, SharedFrac: 0.1, SharedWriteFrac: 0.4,
		}),
	}
}

// ByName returns the suite workload with the given name, or false.
func ByName(name string) (Workload, bool) {
	for _, w := range Suite() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// Names returns the workload names in plot order.
func Names() []string {
	ws := Suite()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}
