// Package dvfs adds voltage-frequency scaling to pods — an extension the
// thesis's fixed 2GHz evaluation leaves open (its cores never clock up
// because "these approaches are not energy efficient", Chapter 1; this
// package quantifies exactly that trade-off for pods).
//
// The model: on-chip latencies (issue, LLC banks, interconnect) are
// measured in cycles and scale with the clock; DRAM latency is wall-
// clock, so a faster core waits more cycles per miss. Dynamic power
// scales with f*V^2 along the voltage-frequency curve; leakage with V.
// Memory-bound scale-out workloads therefore gain little from clocking
// up and lose little from clocking down — pods have an energy-efficiency
// sweet spot below nominal frequency.
package dvfs

import (
	"fmt"

	"scaleout/internal/core"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// OperatingPoint is one voltage-frequency pair.
type OperatingPoint struct {
	FreqGHz  float64
	VoltageV float64
}

// String formats the point as "1.5GHz@0.80V".
func (p OperatingPoint) String() string {
	return fmt.Sprintf("%.1fGHz@%.2fV", p.FreqGHz, p.VoltageV)
}

// Nominal is the thesis's fixed operating point: 2GHz at 0.9V (40nm).
func Nominal() OperatingPoint { return OperatingPoint{FreqGHz: 2.0, VoltageV: 0.9} }

// DefaultCurve returns a typical 40nm voltage-frequency curve around the
// nominal point.
func DefaultCurve() []OperatingPoint {
	return []OperatingPoint{
		{1.0, 0.70},
		{1.2, 0.74},
		{1.5, 0.79},
		{1.8, 0.86},
		{2.0, 0.90},
		{2.2, 0.96},
		{2.5, 1.05},
	}
}

// Validate reports an error for non-physical points.
func (p OperatingPoint) Validate() error {
	if p.FreqGHz <= 0 || p.FreqGHz > 5 {
		return fmt.Errorf("dvfs: frequency %vGHz out of range", p.FreqGHz)
	}
	if p.VoltageV < 0.5 || p.VoltageV > 1.3 {
		return fmt.Errorf("dvfs: voltage %vV out of range", p.VoltageV)
	}
	return nil
}

// Result reports a pod's behaviour at one operating point.
type Result struct {
	Point     OperatingPoint
	GIPS      float64 // aggregate giga-instructions per second
	PowerW    float64 // pod power (cores + LLC)
	GIPSPerW  float64
	PerCoreHz float64 // effective per-core instruction rate (GHz equivalents)
}

// leakageFrac is the leakage share of pod power at the nominal point.
const leakageFrac = 0.3

// PodAt evaluates a pod running workload w at an operating point.
//
// Throughput: the workload's CPI stack is rebuilt with the off-chip
// terms rescaled — a miss costs MemLatencyNanos of wall-clock time, i.e.
// more cycles at higher clocks — then converted to instructions per
// second at the point's frequency.
func PodAt(p core.Pod, n tech.Node, w workload.Workload, op OperatingPoint) (Result, error) {
	if err := op.Validate(); err != nil {
		return Result{}, err
	}
	d := p.Design()
	acc := w.AccessBreakdown(p.Core, p.LLCMB, p.Cores)
	lllc := d.LLCLatency() // cycles: scales with the clock by construction

	// Off-chip latency: the on-chip portion (bank + network) is cycles;
	// the DRAM core and queueing are wall-clock and rescale with f.
	onChip := d.MemLatency() - float64(tech.MemoryLatencyCycles) - 50
	wallCycles := (tech.MemoryLatencyNanos + 25) * op.FreqGHz
	lmem := onChip + wallCycles

	cpi := 1 / w.BaseIPC[p.Core]
	cpi += acc.IHitAPKI / 1000 * lllc
	cpi += acc.DHitAPKI / 1000 * lllc * w.LLCOverlap[p.Core]
	cpi += acc.IMissMPKI / 1000 * lmem
	cpi += acc.DMissMPKI / 1000 * lmem / w.MLP[p.Core]

	perCore := op.FreqGHz / cpi // GIPS per core
	gips := perCore * float64(p.Cores)

	nom := Nominal()
	nominalPower := p.Power(n)
	dyn := nominalPower * (1 - leakageFrac) *
		(op.FreqGHz / nom.FreqGHz) * (op.VoltageV / nom.VoltageV) * (op.VoltageV / nom.VoltageV)
	leak := nominalPower * leakageFrac * (op.VoltageV / nom.VoltageV)
	power := dyn + leak

	return Result{
		Point:     op,
		GIPS:      gips,
		PowerW:    power,
		GIPSPerW:  gips / power,
		PerCoreHz: perCore,
	}, nil
}

// SuiteMean evaluates the pod at the operating point averaged across the
// workload suite.
func SuiteMean(p core.Pod, n tech.Node, ws []workload.Workload, op OperatingPoint) (Result, error) {
	if len(ws) == 0 {
		return Result{}, fmt.Errorf("dvfs: empty suite")
	}
	var agg Result
	for _, w := range ws {
		r, err := PodAt(p, n, w, op)
		if err != nil {
			return Result{}, err
		}
		agg.GIPS += r.GIPS
		agg.PowerW = r.PowerW // identical across workloads (peak power model)
	}
	agg.Point = op
	agg.GIPS /= float64(len(ws))
	agg.PerCoreHz = agg.GIPS / float64(p.Cores)
	agg.GIPSPerW = agg.GIPS / agg.PowerW
	return agg, nil
}

// Sweep evaluates the pod across the whole curve.
func Sweep(p core.Pod, n tech.Node, ws []workload.Workload, curve []OperatingPoint) ([]Result, error) {
	out := make([]Result, 0, len(curve))
	for _, op := range curve {
		r, err := SuiteMean(p, n, ws, op)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// MostEfficient returns the sweep's best GIPS-per-Watt point.
func MostEfficient(results []Result) (Result, error) {
	if len(results) == 0 {
		return Result{}, fmt.Errorf("dvfs: empty sweep")
	}
	best := results[0]
	for _, r := range results[1:] {
		if r.GIPSPerW > best.GIPSPerW {
			best = r
		}
	}
	return best, nil
}
