package dvfs

import (
	"math"
	"testing"

	"scaleout/internal/core"
	"scaleout/internal/noc"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

var ws = workload.Suite()

func pod() core.Pod { return core.Pod{Core: tech.OoO, Cores: 16, LLCMB: 4, Net: noc.Crossbar} }

func TestValidate(t *testing.T) {
	if err := Nominal().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []OperatingPoint{{0, 0.9}, {6, 0.9}, {2, 0.4}, {2, 1.5}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("point %v accepted", bad)
		}
	}
	if _, err := PodAt(pod(), tech.N40(), ws[0], OperatingPoint{9, 9}); err == nil {
		t.Fatal("bad point accepted by PodAt")
	}
}

func TestCurveShape(t *testing.T) {
	curve := DefaultCurve()
	if len(curve) < 5 {
		t.Fatal("curve too sparse")
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].FreqGHz <= curve[i-1].FreqGHz || curve[i].VoltageV < curve[i-1].VoltageV {
			t.Fatalf("curve not monotone at %d", i)
		}
		if err := curve[i].Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// At the nominal point the DVFS model must agree with the base pod
// model: 2GHz x suite-mean IPC.
func TestNominalConsistency(t *testing.T) {
	r, err := SuiteMean(pod(), tech.N40(), ws, Nominal())
	if err != nil {
		t.Fatal(err)
	}
	wantGIPS := pod().IPC(ws) * tech.ClockGHz
	if math.Abs(r.GIPS-wantGIPS)/wantGIPS > 0.10 {
		t.Fatalf("nominal GIPS %v, base model %v", r.GIPS, wantGIPS)
	}
	if math.Abs(r.PowerW-pod().Power(tech.N40())) > 1e-9 {
		t.Fatalf("nominal power %v, pod %v", r.PowerW, pod().Power(tech.N40()))
	}
}

// Throughput grows sublinearly with frequency (memory-bound), power
// superlinearly — so efficiency falls monotonically along the curve.
func TestDVFSShape(t *testing.T) {
	results, err := Sweep(pod(), tech.N40(), ws, DefaultCurve())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(results); i++ {
		prev, cur := results[i-1], results[i]
		fRatio := cur.Point.FreqGHz / prev.Point.FreqGHz
		if cur.GIPS <= prev.GIPS {
			t.Fatalf("throughput fell along the curve at %v", cur.Point)
		}
		if cur.GIPS/prev.GIPS >= fRatio {
			t.Fatalf("throughput superlinear in frequency at %v (memory-bound workloads cannot)", cur.Point)
		}
		// Power must grow faster than throughput along the curve (the
		// leakage share keeps the low end from being strictly
		// superlinear in f, but efficiency still declines).
		if cur.PowerW/prev.PowerW <= cur.GIPS/prev.GIPS {
			t.Fatalf("power grew slower than throughput at %v", cur.Point)
		}
		if cur.GIPSPerW >= prev.GIPSPerW {
			t.Fatalf("efficiency rose with frequency at %v", cur.Point)
		}
	}
	best, err := MostEfficient(results)
	if err != nil {
		t.Fatal(err)
	}
	if best.Point.FreqGHz >= Nominal().FreqGHz {
		t.Fatalf("efficiency sweet spot at %v, expected below nominal", best.Point)
	}
}

func TestEmpty(t *testing.T) {
	if _, err := SuiteMean(pod(), tech.N40(), nil, Nominal()); err == nil {
		t.Fatal("empty suite accepted")
	}
	if _, err := MostEfficient(nil); err == nil {
		t.Fatal("empty sweep accepted")
	}
}

// Downclocking 2.0 -> 1.5GHz costs much less than 25% of throughput:
// the memory-bound fraction of execution time does not slow down.
func TestMemoryBoundDownclocking(t *testing.T) {
	nom, err := SuiteMean(pod(), tech.N40(), ws, Nominal())
	if err != nil {
		t.Fatal(err)
	}
	slow, err := SuiteMean(pod(), tech.N40(), ws, OperatingPoint{1.5, 0.79})
	if err != nil {
		t.Fatal(err)
	}
	loss := 1 - slow.GIPS/nom.GIPS
	if loss >= 0.25 {
		t.Fatalf("25%% downclock cost %v%% of throughput; memory-bound pods should lose less", loss*100)
	}
}
