package chaos_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"scaleout/internal/admit"
	"scaleout/internal/chaos"
	"scaleout/internal/cluster"
	"scaleout/internal/exp"
	"scaleout/internal/figures"
	"scaleout/internal/serve"
	"scaleout/internal/sim"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// startDaemon is one in-process soprocd: a serve handler on its own
// engine.
func startDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(serve.New(exp.New(2)))
	t.Cleanup(srv.Close)
	return srv
}

// startProxy puts a chaos proxy in front of target and returns the
// proxy plus its listening server.
func startProxy(t *testing.T, target string, f chaos.Faults) (*chaos.Proxy, *httptest.Server) {
	t.Helper()
	p, err := chaos.NewProxy(target, f)
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	srv := httptest.NewServer(p)
	t.Cleanup(srv.Close)
	return p, srv
}

func configs(n int) []sim.Config {
	w, _ := workload.ByName(workload.Names()[0])
	cfgs := make([]sim.Config, n)
	for i := range cfgs {
		cfgs[i] = sim.Config{
			Workload: w, CoreType: tech.OoO, Cores: 4 + 4*(i%4), LLCMB: 2 + float64(i%3),
			WarmupCycles: 500, MeasureCycles: 1000, Seed: uint64(1 + i/12),
		}
	}
	return cfgs
}

// TestTransportPassthrough: zero rates leave the exchange untouched.
func TestTransportPassthrough(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "hello from the backend")
	}))
	defer backend.Close()
	tr := chaos.NewTransport(nil, chaos.Faults{})
	client := &http.Client{Transport: tr}
	for i := 0; i < 5; i++ {
		resp, err := client.Get(backend.URL)
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || string(body) != "hello from the backend" {
			t.Fatalf("body = %q, %v", body, err)
		}
	}
	if st := tr.Stats(); st.Requests != 5 || st.Passed != 5 || st.Errors+st.Resets+st.Torn+st.Delayed != 0 {
		t.Fatalf("stats = %+v, want 5 clean passes", st)
	}
}

// outcome classifies one request through a fault transport.
func outcome(client *http.Client, url string) string {
	resp, err := client.Get(url)
	if err != nil {
		return "reset"
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "torn"
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Sprintf("err:%d", resp.StatusCode)
	}
	return "ok:" + string(body)
}

// TestTransportDeterministic: the same seed yields the same fault
// sequence, request for request.
func TestTransportDeterministic(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "payload-payload-payload")
	}))
	defer backend.Close()
	f := chaos.Faults{Seed: 42, ErrorRate: 0.3, ResetRate: 0.2, TornRate: 0.2}
	run := func() []string {
		client := &http.Client{Transport: chaos.NewTransport(nil, f)}
		out := make([]string, 40)
		for i := range out {
			out[i] = outcome(client, backend.URL)
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different fault sequences:\n%v\n%v", a, b)
	}
	kinds := map[string]bool{}
	for _, o := range a {
		kinds[o] = true
	}
	if len(kinds) < 3 {
		t.Fatalf("fault mix did not exercise multiple kinds: %v", kinds)
	}
}

// TestTransportFaultKinds pins each fault kind at rate 1.
func TestTransportFaultKinds(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "0123456789")
	}))
	defer backend.Close()

	errClient := &http.Client{Transport: chaos.NewTransport(nil, chaos.Faults{ErrorRate: 1})}
	resp, err := errClient.Get(backend.URL)
	if err != nil {
		t.Fatalf("error injection should still answer HTTP: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("injected status = %d, want default 502", resp.StatusCode)
	}

	resetClient := &http.Client{Transport: chaos.NewTransport(nil, chaos.Faults{ResetRate: 1})}
	if _, err := resetClient.Get(backend.URL); err == nil {
		t.Fatal("reset injection returned a response")
	}

	tornClient := &http.Client{Transport: chaos.NewTransport(nil, chaos.Faults{TornRate: 1})}
	resp, err = tornClient.Get(backend.URL)
	if err != nil {
		t.Fatalf("torn injection should deliver headers: %v", err)
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr == nil {
		t.Fatalf("torn body read succeeded (%q), want a mid-body failure", body)
	}
	if len(body) == 0 || len(body) >= 10 {
		t.Fatalf("torn body delivered %d bytes of 10, want a strict prefix", len(body))
	}
}

// TestProxyChaosz: the proxy reports its own injection counts.
func TestProxyChaosz(t *testing.T) {
	backend := startDaemon(t)
	_, proxy := startProxy(t, backend.URL, chaos.Faults{ErrorRate: 1, ErrorStatus: http.StatusInternalServerError})
	resp, err := http.Get(proxy.URL + "/healthz")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want injected 500", resp.StatusCode)
	}
	resp, err = http.Get(proxy.URL + "/chaosz")
	if err != nil {
		t.Fatalf("chaosz: %v", err)
	}
	defer resp.Body.Close()
	var st chaos.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("chaosz decode: %v", err)
	}
	if st.Requests != 1 || st.Errors != 1 {
		t.Fatalf("chaosz = %+v, want the one injected error counted", st)
	}
}

// TestClusterByteIdenticalUnderFaults is the acceptance centerpiece:
// one replica behind a flaky proxy (25% terminal faults: 5xx, resets,
// torn bodies), one behind a slow proxy (every request delayed — a
// p95 latency spike), one healthy. A sweep and a full figure routed
// through this degraded cluster must be byte-identical to local
// computation; the retry/failover machinery may move work around but
// never change it.
func TestClusterByteIdenticalUnderFaults(t *testing.T) {
	flaky, slow, healthy := startDaemon(t), startDaemon(t), startDaemon(t)
	flakyProxy, flakyFront := startProxy(t, flaky.URL, chaos.Faults{
		Seed: 7, ErrorRate: 0.15, ResetRate: 0.05, TornRate: 0.05,
	})
	_, slowFront := startProxy(t, slow.URL, chaos.Faults{
		Seed: 11, LatencyRate: 1, Latency: 3 * time.Millisecond,
	})

	coord, err := cluster.New(
		[]string{flakyFront.URL, slowFront.URL, healthy.URL},
		cluster.WithRetries(2),
		cluster.WithBackoff(time.Millisecond, 4*time.Millisecond),
		cluster.WithCooldown(50*time.Millisecond),
		cluster.WithProbeInterval(10*time.Millisecond),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	eng := exp.New(4)
	eng.SetRoute(coord.Route)
	ctx := exp.WithEngine(context.Background(), eng)

	cfgs := configs(24)
	got, err := exp.Sims(ctx, cfgs)
	if err != nil {
		t.Fatalf("Sims under faults: %v", err)
	}
	for i, cfg := range cfgs {
		want, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("local Run: %v", err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("point %d differs under fault injection", i)
		}
	}

	faulted, err := figures.RunContext(ctx, "fig2.1")
	if err != nil {
		t.Fatalf("figure under faults: %v", err)
	}
	local, err := figures.RunContext(exp.WithEngine(context.Background(), exp.New(0)), "fig2.1")
	if err != nil {
		t.Fatalf("local figure: %v", err)
	}
	if faulted.String() != local.String() {
		t.Fatalf("fig2.1 differs under fault injection:\nfaulted:\n%s\nlocal:\n%s",
			faulted.String(), local.String())
	}

	st := flakyProxy.Stats()
	if st.Errors+st.Resets+st.Torn == 0 {
		t.Fatalf("flaky proxy injected nothing (%+v); the test proved nothing", st)
	}
	cst := coord.Stats()
	if cst.Retries == 0 && cst.Failovers == 0 && cst.LocalFallbacks == 0 {
		t.Fatalf("cluster stats = %+v: faults were injected but nothing was retried", cst)
	}
	t.Logf("flaky proxy: %+v", st)
	t.Logf("cluster: routed=%d retries=%d failovers=%d local=%d",
		cst.Routed, cst.Retries, cst.Failovers, cst.LocalFallbacks)
}

// TestClusterAllReplicasFlaky: even when every replica is reached
// through a faulty client transport, output is byte-identical — the
// engine's local fallback is the floor under the whole tier.
func TestClusterAllReplicasFlaky(t *testing.T) {
	a, b := startDaemon(t), startDaemon(t)
	coord, err := cluster.New([]string{a.URL, b.URL},
		cluster.WithHTTPClient(&http.Client{Transport: chaos.NewTransport(nil, chaos.Faults{
			Seed: 3, ErrorRate: 0.25, ResetRate: 0.1, TornRate: 0.1,
		})}),
		cluster.WithRetries(1),
		cluster.WithBackoff(time.Millisecond, 2*time.Millisecond),
		cluster.WithCooldown(20*time.Millisecond),
		cluster.WithProbeInterval(5*time.Millisecond),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	eng := exp.New(4)
	eng.SetRoute(coord.Route)
	cfgs := configs(16)
	got, err := exp.Sims(exp.WithEngine(context.Background(), eng), cfgs)
	if err != nil {
		t.Fatalf("Sims: %v", err)
	}
	for i, cfg := range cfgs {
		want, err := sim.Run(cfg)
		if err != nil || !reflect.DeepEqual(got[i], want) {
			t.Fatalf("point %d differs with a flaky client transport: %v", i, err)
		}
	}
}

// TestShedRequestsFailFast: a saturated daemon answers 429 +
// Retry-After immediately instead of parking the caller behind a full
// queue.
func TestShedRequestsFailFast(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})
	ctrl := admit.New(admit.Options{MaxInFlight: 1, QueueDepth: -1, RetryAfter: 2 * time.Second})
	srv := httptest.NewServer(ctrl.Middleware(slow))
	defer srv.Close()    // waits for the parked request...
	defer close(release) // ...so the handler must be released first

	go http.Get(srv.URL + "/v1/sweep") // occupies the only slot
	<-started

	begin := time.Now()
	resp, err := http.Get(srv.URL + "/v1/sweep")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	if elapsed := time.Since(begin); elapsed > time.Second {
		t.Fatalf("shed took %v, want fail-fast", elapsed)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}
	var body admit.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		t.Fatalf("shed body not structured: %v (%+v)", err, body)
	}
}
