// Package chaos injects faults into HTTP traffic so the serve/cluster
// tier can be tested in its degraded regime, not just its happy path.
//
// Two injection points share one fault model (Faults): Transport wraps
// an http.RoundTripper on the client side — the coordinator's own
// replica client can be made flaky without any network help — and
// Proxy is a reverse proxy that sits in front of a live daemon, for
// end-to-end and CI runs where the faults must cross a real socket
// (cmd/sochaos is the standalone binary form).
//
// Four fault kinds cover the failure modes internal/cluster claims to
// survive: added latency (a slow replica), synthesized 5xx responses
// (a failing replica), abrupt connection resets (a dying replica), and
// torn response bodies — the response starts, declares its full
// length, and is cut off halfway (a replica dying mid-reply). Fault
// decisions are drawn from a seeded RNG, so a given request sequence
// sees a reproducible fault sequence; under concurrency the
// interleaving may vary but the fault mix does not.
//
// The invariant this package exists to check: none of these faults may
// change sweep output. The cluster retries, fails over, or computes
// locally — byte-identical either way — and the suite in this package
// asserts exactly that.
package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Faults is the injected fault mix. Rates are independent
// probabilities in [0, 1]; latency is decided separately from the
// terminal faults (error, reset, torn), which are mutually exclusive
// per request.
type Faults struct {
	// Seed seeds the fault RNG; 0 selects 1 so the zero value is
	// still deterministic.
	Seed int64
	// ErrorRate is the probability of answering with ErrorStatus
	// instead of forwarding.
	ErrorRate float64
	// ErrorStatus is the synthesized error's status code (default 502).
	ErrorStatus int
	// ResetRate is the probability of an abrupt connection reset: the
	// client sees a transport error, not an HTTP response.
	ResetRate float64
	// TornRate is the probability of a torn response: headers and the
	// first half of the body are delivered, then the connection dies.
	TornRate float64
	// LatencyRate is the probability of delaying a request by Latency
	// before it is otherwise handled (real time — the point of a slow
	// replica is that it is actually slow).
	LatencyRate float64
	// Latency is the injected delay.
	Latency time.Duration
}

// Stats counts what an injector actually did; the proxy serves it as
// JSON at /chaosz so CI can assert faults really happened.
type Stats struct {
	Requests int64 `json:"requests"`
	Passed   int64 `json:"passed"`
	Errors   int64 `json:"errors"`
	Resets   int64 `json:"resets"`
	Torn     int64 `json:"torn"`
	Delayed  int64 `json:"delayed"`
}

// faultKind is one terminal outcome for a request.
type faultKind int

const (
	faultNone faultKind = iota
	faultError
	faultReset
	faultTorn
)

// injector is the shared seeded decision engine behind Transport and
// Proxy.
type injector struct {
	f Faults

	mu  sync.Mutex
	rng *rand.Rand

	requests, passed, errors, resets, torn, delayed atomic.Int64
}

func newInjector(f Faults) *injector {
	if f.Seed == 0 {
		f.Seed = 1
	}
	if f.ErrorStatus == 0 {
		f.ErrorStatus = http.StatusBadGateway
	}
	return &injector{f: f, rng: rand.New(rand.NewSource(f.Seed))}
}

// roll draws this request's fate: whether to delay, and which terminal
// fault (if any) to inject.
func (in *injector) roll() (delay bool, kind faultKind) {
	in.requests.Add(1)
	in.mu.Lock()
	delay = in.f.LatencyRate > 0 && in.rng.Float64() < in.f.LatencyRate
	switch r := in.rng.Float64(); {
	case r < in.f.ErrorRate:
		kind = faultError
	case r < in.f.ErrorRate+in.f.ResetRate:
		kind = faultReset
	case r < in.f.ErrorRate+in.f.ResetRate+in.f.TornRate:
		kind = faultTorn
	}
	in.mu.Unlock()
	if delay {
		in.delayed.Add(1)
	}
	switch kind {
	case faultError:
		in.errors.Add(1)
	case faultReset:
		in.resets.Add(1)
	case faultTorn:
		in.torn.Add(1)
	default:
		in.passed.Add(1)
	}
	return delay, kind
}

func (in *injector) stats() Stats {
	return Stats{
		Requests: in.requests.Load(),
		Passed:   in.passed.Load(),
		Errors:   in.errors.Load(),
		Resets:   in.resets.Load(),
		Torn:     in.torn.Load(),
		Delayed:  in.delayed.Load(),
	}
}

// Transport is a fault-injecting http.RoundTripper: install it in a
// client (e.g. cluster.WithHTTPClient) to make every backend look
// flaky without touching the backend.
type Transport struct {
	base http.RoundTripper
	inj  *injector
}

// NewTransport wraps base (nil selects http.DefaultTransport) with the
// given fault mix.
func NewTransport(base http.RoundTripper, f Faults) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, inj: newInjector(f)}
}

// Stats reports what the transport has injected so far.
func (t *Transport) Stats() Stats { return t.inj.stats() }

// errReset is the transport-level error a reset injection surfaces; it
// mimics a peer closing the socket mid-request.
var errReset = fmt.Errorf("chaos: connection reset by peer")

// RoundTrip applies the fault roll to one request: a delay waits (or
// aborts with the request context), an error synthesizes ErrorStatus
// without forwarding, a reset fails the exchange outright, and a torn
// fault forwards the request but truncates the response body halfway.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	delay, kind := t.inj.roll()
	if delay && t.inj.f.Latency > 0 {
		select {
		case <-time.After(t.inj.f.Latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	switch kind {
	case faultError:
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		body := "chaos: injected error\n"
		return &http.Response{
			Status:        fmt.Sprintf("%d %s", t.inj.f.ErrorStatus, http.StatusText(t.inj.f.ErrorStatus)),
			StatusCode:    t.inj.f.ErrorStatus,
			Proto:         req.Proto,
			ProtoMajor:    req.ProtoMajor,
			ProtoMinor:    req.ProtoMinor,
			Header:        http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case faultReset:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, errReset
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil || kind != faultTorn {
		return resp, err
	}
	// Torn: deliver headers and half the body, then fail the read the
	// way a dead connection would.
	full, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	resp.Body = io.NopCloser(&tornReader{data: full[:len(full)/2]})
	return resp, nil
}

// tornReader yields its data, then an abrupt connection error instead
// of EOF.
type tornReader struct {
	data []byte
	off  int
}

func (r *tornReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, errReset
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// Proxy is a fault-injecting reverse proxy in front of one backend.
// It serves its own Stats as JSON at /chaosz; every other path is
// forwarded (or faulted). Use NewProxy.
type Proxy struct {
	target *url.URL
	client *http.Client
	inj    *injector
}

// NewProxy returns a proxy forwarding to target ("host:port" or a full
// http:// URL) with the given fault mix.
func NewProxy(target string, f Faults) (*Proxy, error) {
	if !strings.Contains(target, "://") {
		target = "http://" + target
	}
	u, err := url.Parse(target)
	if err != nil {
		return nil, fmt.Errorf("chaos: bad target %q: %v", target, err)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("chaos: target %q has no host", target)
	}
	// A dedicated transport so idle connections to the backend are not
	// shared with anyone else's DefaultTransport usage.
	return &Proxy{
		target: u,
		client: &http.Client{Transport: &http.Transport{}},
		inj:    newInjector(f),
	}, nil
}

// Stats reports what the proxy has injected so far.
func (p *Proxy) Stats() Stats { return p.inj.stats() }

// ServeHTTP rolls one fault decision and forwards, fails, or truncates
// the exchange accordingly.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/chaosz" {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(p.inj.stats())
		return
	}
	delay, kind := p.inj.roll()
	if delay && p.inj.f.Latency > 0 {
		select {
		case <-time.After(p.inj.f.Latency):
		case <-r.Context().Done():
			return
		}
	}
	switch kind {
	case faultError:
		http.Error(w, "chaos: injected error", p.inj.f.ErrorStatus)
		return
	case faultReset:
		p.reset(w)
		return
	}
	p.forward(w, r, kind == faultTorn)
}

// reset kills the client connection without an HTTP response: a real
// TCP RST when the server lets us hijack, an aborted handler
// otherwise.
func (p *Proxy) reset(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
			conn.Close()
			return
		}
	}
	panic(http.ErrAbortHandler)
}

// forward relays one request to the backend. With torn set it declares
// the response's full length, writes half, and aborts the connection.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, torn bool) {
	u := *p.target
	u.Path = strings.TrimRight(u.Path, "/") + r.URL.Path
	u.RawQuery = r.URL.RawQuery
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u.String(), r.Body)
	if err != nil {
		http.Error(w, "chaos: bad forward: "+err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		http.Error(w, "chaos: backend: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, "chaos: backend read: "+err.Error(), http.StatusBadGateway)
		return
	}
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("Content-Length", fmt.Sprint(len(body)))
	w.WriteHeader(resp.StatusCode)
	if torn {
		w.Write(body[:len(body)/2])
		panic(http.ErrAbortHandler) // close without the declared rest
	}
	w.Write(body)
}
