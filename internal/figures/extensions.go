package figures

import (
	"context"
	"fmt"

	"scaleout/internal/core"
	"scaleout/internal/dvfs"
	"scaleout/internal/exp"
	"scaleout/internal/noc"
	"scaleout/internal/sim"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// Extensions: features the thesis names as future work (Section 8.1) or
// leaves open, built on the same substrates.
func init() {
	register("ext.hetero", extHetero)
	register("ext.dvfs", extDVFS)
	register("ext.structural", extStructural)
	register("ext.nocout-scale", extNOCOutScale)
}

// extHetero enumerates heterogeneous Scale-Out chips mixing OoO pods
// (latency-critical services) with in-order pods (batch throughput) at
// 40nm, and marks the Pareto frontier over (OoO capability, total
// throughput). Pods make heterogeneity free: there is no shared
// infrastructure to reconcile between the two halves.
func extHetero(ctx context.Context) (Table, error) {
	ws := workload.Suite()
	n := tech.N40()
	podO := core.Pod{Core: tech.OoO, Cores: 16, LLCMB: 4, Net: noc.Crossbar}
	podI := core.Pod{Core: tech.InOrder, Cores: 32, LLCMB: 2, Net: noc.Crossbar}
	mixes, err := core.EnumerateHetero(n, podO, podI, ws)
	if err != nil {
		return Table{}, err
	}
	pareto := map[string]bool{}
	for _, c := range core.ParetoHetero(mixes, ws) {
		pareto[fmt.Sprintf("%d/%d", c.CountA, c.CountB)] = true
	}
	t := Table{
		ID:      "ext.hetero",
		Title:   "Heterogeneous Scale-Out Processors: OoO pods x in-order pods (40nm)",
		Note:    "* marks the Pareto frontier over (OoO throughput, total throughput)",
		Headers: []string{"OoO pods", "IO pods", "Cores", "MCs", "Die(mm2)", "Power(W)", "IPC", "PD", ""},
	}
	for _, c := range mixes {
		mark := ""
		if pareto[fmt.Sprintf("%d/%d", c.CountA, c.CountB)] {
			mark = "*"
		}
		t.AddRow(itoa(c.CountA), itoa(c.CountB), itoa(c.Cores()), itoa(c.MemChannels),
			f0(c.DieArea()), f0(c.Power()), f1(c.IPC(ws)), f3(c.PD(ws)), mark)
	}
	return t, nil
}

// extDVFS sweeps the voltage-frequency curve on the PD-optimal pod:
// memory-bound scale-out workloads gain little beyond nominal frequency
// while power grows with f*V^2 — the energy-efficiency sweet spot sits
// below 2GHz.
func extDVFS(ctx context.Context) (Table, error) {
	ws := workload.Suite()
	n := tech.N40()
	pod := core.Pod{Core: tech.OoO, Cores: 16, LLCMB: 4, Net: noc.Crossbar}
	results, err := dvfs.Sweep(pod, n, ws, dvfs.DefaultCurve())
	if err != nil {
		return Table{}, err
	}
	best, err := dvfs.MostEfficient(results)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "ext.dvfs",
		Title:   "DVFS on the 16-core OoO pod (suite mean)",
		Note:    "* marks the best GIPS/W point",
		Headers: []string{"Point", "GIPS", "Power(W)", "GIPS/W", ""},
	}
	for _, r := range results {
		mark := ""
		if r.Point == best.Point {
			mark = "*"
		}
		t.AddRow(r.Point.String(), f1(r.GIPS), f1(r.PowerW), f2(r.GIPSPerW), mark)
	}
	return t, nil
}

// extStructural cross-checks the statistical calibration against the
// structural simulator: real L1/LLC tag arrays replaying synthetic
// reference streams. Emergent L1 miss rates should track the workload
// models' APKI. The whole suite runs as one engine batch.
func extStructural(ctx context.Context) (Table, error) {
	t := Table{
		ID:      "ext.structural",
		Title:   "Structural simulation: emergent vs calibrated cache behaviour",
		Note:    "16 OoO cores, 4MB LLC; [targets] from the workload models",
		Headers: []string{"Workload", "L1I MPKI", "[tgt]", "L1D MPKI", "[tgt]", "LLC miss%", "AppIPC"},
	}
	ws := workload.Suite()
	cfgs := make([]sim.StructuralConfig, len(ws))
	for i, w := range ws {
		cfgs[i] = sim.StructuralConfig{
			Workload: w, CoreType: tech.OoO, Cores: 16, LLCMB: 4,
		}
	}
	rs, err := exp.Structurals(ctx, cfgs)
	if err != nil {
		return t, err
	}
	for i, w := range ws {
		apki := w.EffectiveAPKI(tech.OoO)
		iT := apki * w.IFetchFrac
		t.AddRow(w.Name, f1(rs[i].L1IMPKI), f1(iT), f1(rs[i].L1DMPKI), f1(apki-iT),
			f1(rs[i].LLCMissPct), f2(rs[i].AppIPC))
	}
	return t, nil
}

// extNOCOutScale explores NOC-Out beyond 64 cores with the Section-4.5.1
// mechanisms: concentration (two cores per tree node) and express links
// (bypassing alternate tree nodes). Both keep latency near the 64-core
// point as pods grow.
func extNOCOutScale(ctx context.Context) (Table, error) {
	t := Table{
		ID:      "ext.nocout-scale",
		Title:   "NOC-Out scalability: latency and area vs core count (Section 4.5.1)",
		Headers: []string{"Cores", "Variant", "One-way (cyc)", "NoC area (mm2)"},
	}
	for _, cores := range []int{64, 128, 256} {
		variants := []struct {
			name string
			cfg  noc.Config
		}{
			{"baseline", noc.New(noc.NOCOut, cores)},
			{"concentration=2", func() noc.Config {
				c := noc.New(noc.NOCOut, cores)
				c.Concentration = 2
				return c
			}()},
			{"express links", func() noc.Config {
				c := noc.New(noc.NOCOut, cores)
				c.ExpressLinks = true
				return c
			}()},
		}
		for _, v := range variants {
			t.AddRow(itoa(cores), v.name, f1(v.cfg.OneWayLatency()), f2(v.cfg.Area().Total()))
		}
	}
	return t, nil
}
