package figures

import (
	"context"
	"fmt"

	"scaleout/internal/core"
	"scaleout/internal/exp"
	"scaleout/internal/noc"
	"scaleout/internal/sim"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

func init() {
	register("fig3.1", fig31)
	register("fig3.3", fig33)
	register("fig3.4", func(ctx context.Context) (Table, error) { return pdSweep(ctx, "fig3.4", tech.OoO) })
	register("fig3.5", fig35)
	register("fig3.6", func(ctx context.Context) (Table, error) { return pdSweep(ctx, "fig3.6", tech.InOrder) })
	register("table3.2", table32)
}

// fig31 reproduces the intuition plot of Figure 3.1: as cores share a
// fixed LLC, per-core performance falls, chip performance grows
// sub-linearly, and performance density peaks at the balance point.
func fig31(ctx context.Context) (Table, error) {
	ws := workload.Suite()
	t := Table{
		ID:      "fig3.1",
		Title:   "Perf/core, perf/chip, and performance density vs cores",
		Note:    "crossbar pods, 4MB LLC, OoO cores, 40nm; all normalized to peak",
		Headers: []string{"Cores", "Perf/Core", "Perf/Chip", "PD"},
	}
	n := tech.N40()
	var perCore, perChip, pd []float64
	var cores []int
	for c := 1; c <= 256; c *= 2 {
		p := core.Pod{Core: tech.OoO, Cores: c, LLCMB: 4, Net: noc.Crossbar}
		ipc := p.IPC(ws)
		cores = append(cores, c)
		perCore = append(perCore, ipc/float64(c))
		perChip = append(perChip, ipc)
		pd = append(pd, p.PD(n, ws))
	}
	normPeak := func(xs []float64) []float64 {
		peak := xs[0]
		for _, x := range xs {
			if x > peak {
				peak = x
			}
		}
		out := make([]float64, len(xs))
		for i, x := range xs {
			out[i] = x / peak
		}
		return out
	}
	pcN, chN, pdN := normPeak(perCore), normPeak(perChip), normPeak(pd)
	for i, c := range cores {
		t.AddRow(itoa(c), f3(pcN[i]), f3(chN[i]), f3(pdN[i]))
	}
	return t, nil
}

// fig33 validates the analytic model against cycle simulation per
// workload for designs with OoO cores and a 4MB LLC across three
// interconnects (Figure 3.3). The simulator includes the software-
// scalability derating the model deliberately omits, so the two diverge
// at 32-64 cores on the poorly scaling workloads — as in the thesis.
// The sweep is declared up front — one point per (workload, net, cores)
// — and fanned out on the engine; the table is assembled from the
// ordered results.
func fig33(ctx context.Context) (Table, error) {
	n := tech.N40()
	t := Table{
		ID:      "fig3.3",
		Title:   "Model validation: simulation vs analytic PD (OoO, 4MB LLC)",
		Headers: []string{"Workload", "Net", "Cores", "PD(sim)", "PD(model)", "Err%"},
	}
	type point struct {
		w    workload.Workload
		kind noc.Kind
		c    int
	}
	var pts []point
	var cfgs []sim.Config
	kinds := []noc.Kind{noc.Ideal, noc.Crossbar, noc.Mesh}
	for _, w := range workload.Suite() {
		for _, kind := range kinds {
			for c := 1; c <= 64; c *= 2 {
				if c > w.ScaleLimit {
					continue
				}
				pts = append(pts, point{w, kind, c})
				cfgs = append(cfgs, sim.Config{
					Workload: w, CoreType: tech.OoO, Cores: c, LLCMB: 4,
					Net: noc.New(kind, c),
				})
			}
		}
	}
	rs, err := exp.Sims(ctx, cfgs)
	if err != nil {
		return t, err
	}
	for i, pt := range pts {
		p := core.Pod{Core: tech.OoO, Cores: pt.c, LLCMB: 4, Net: pt.kind}
		model := p.PD(n, workloadSlice(pt.w))
		simPD := rs[i].AppIPC / p.Area(n)
		errPct := 100 * (simPD - model) / model
		t.AddRow(pt.w.Name, pt.kind.String(), itoa(pt.c), f3(simPD), f3(model), f1(errPct))
	}
	return t, nil
}

func workloadSlice(w workload.Workload) []workload.Workload {
	return []workload.Workload{w}
}

// pdSweep renders Figures 3.4 (OoO) and 3.6 (in-order): suite-mean pod
// performance density across core counts, LLC sizes 1-8MB, and three
// interconnects. One engine point evaluates one (LLC, net) row of the
// analytic surface.
func pdSweep(ctx context.Context, id string, coreType tech.CoreType) (Table, error) {
	ws := workload.Suite()
	n := tech.N40()
	t := Table{
		ID:      id,
		Title:   fmt.Sprintf("Performance density sweep (%s cores, 40nm)", coreType),
		Headers: []string{"LLC(MB)", "Net", "1", "2", "4", "8", "16", "32", "64", "128", "256"},
	}
	type rowSpec struct {
		llc  float64
		kind noc.Kind
	}
	var specs []rowSpec
	for _, llc := range []float64{1, 2, 4, 8} {
		for _, kind := range []noc.Kind{noc.Ideal, noc.Crossbar, noc.Mesh} {
			specs = append(specs, rowSpec{llc, kind})
		}
	}
	rows, err := exp.Map(ctx, exp.FromContext(ctx), specs, func(s rowSpec) ([]string, error) {
		row := []string{fg(s.llc), s.kind.String()}
		for c := 1; c <= 256; c *= 2 {
			p := core.Pod{Core: coreType, Cores: c, LLCMB: s.llc, Net: s.kind}
			row = append(row, f3(p.PD(n, ws)))
		}
		return row, nil
	})
	if err != nil {
		return t, err
	}
	t.Rows = rows
	return t, nil
}

// fig35 examines crossbar pods across LLC sizes and applies the
// near-optimal selection rule of Section 3.4.2: the 16-core/4MB pod is
// adopted because it sits within 5% of the flat 32-core optimum at far
// lower design complexity.
func fig35(ctx context.Context) (Table, error) {
	ws := workload.Suite()
	n := tech.N40()
	t := Table{
		ID:      "fig3.5",
		Title:   "PD of crossbar pods (OoO) across LLC sizes; pod selection",
		Headers: []string{"Pod", "PD", "Note"},
	}
	space := core.SweepSpace{Core: tech.OoO, MaxCores: 64,
		LLCSizes: []float64{1, 2, 4, 8}, Nets: []noc.Kind{noc.Crossbar}}
	pts := core.Sweep(space, n, ws)
	opt, err := core.Optimal(pts)
	if err != nil {
		return t, err
	}
	sel, err := core.NearOptimal(pts, 0.05, 16)
	if err != nil {
		return t, err
	}
	for _, p := range pts {
		note := ""
		if p.Pod == opt.Pod {
			note = "peak PD"
		}
		if p.Pod == sel.Pod {
			note = "selected (within 5% of peak, modest complexity)"
		}
		t.AddRow(p.Pod.String(), f3(p.PD), note)
	}
	return t, nil
}

// table32 extends the catalog with the composed Scale-Out chips and their
// pod structure at both nodes (Table 3.2).
func table32(ctx context.Context) (Table, error) {
	ws := workload.Suite()
	t := Table{
		ID:    "table3.2",
		Title: "Scale-Out Processors vs existing designs (40nm and 20nm)",
		Headers: []string{"Node", "Design", "PD", "Cores", "LLC(MB)", "MCs",
			"Die(mm2)", "Power(W)", "Perf/Watt", "Limit"},
	}
	podO := core.Pod{Core: tech.OoO, Cores: 16, LLCMB: 4, Net: noc.Crossbar}
	podI := core.Pod{Core: tech.InOrder, Cores: 32, LLCMB: 2, Net: noc.Crossbar}
	for _, n := range []tech.Node{tech.N40(), tech.N20()} {
		for _, d := range []struct {
			pod  core.Pod
			name string
		}{{podO, "Scale-Out (OoO)"}, {podI, "Scale-Out (In-order)"}} {
			c, err := core.Compose(n, d.pod, ws)
			if err != nil {
				return t, err
			}
			t.AddRow(n.Name, fmt.Sprintf("%s %dx%s", d.name, c.Pods, c.Pod),
				f3(c.PD(ws)), itoa(c.Cores()), fg(c.LLCMB()), itoa(c.MemChannels),
				f0(c.DieArea()), f0(c.Power()), f2(c.PerfPerWatt(ws)), string(c.Limit))
		}
		// Context rows: the strongest competing organizations.
		cat, err := catalogTable("", n)
		if err != nil {
			return t, err
		}
		for _, row := range cat.Rows {
			t.AddRow(append([]string{n.Name}, append(row, "")...)...)
		}
	}
	return t, nil
}
