package figures

import (
	"context"
	"fmt"

	"scaleout/internal/core"
	"scaleout/internal/exp"
	"scaleout/internal/noc"
	"scaleout/internal/stack3d"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

func init() {
	register("fig6.4", func(ctx context.Context) (Table, error) { return pd3DSweep(ctx, "fig6.4", tech.OoO) })
	register("fig6.5", func(ctx context.Context) (Table, error) { return strategies("fig6.5", tech.OoO, []int{1, 2, 4}) })
	register("fig6.6", func(ctx context.Context) (Table, error) { return pd3DSweep(ctx, "fig6.6", tech.InOrder) })
	register("fig6.7", func(ctx context.Context) (Table, error) { return strategies("fig6.7", tech.InOrder, []int{1, 2, 3}) })
	register("table6.2", func(ctx context.Context) (Table, error) { return table62() })
}

// pd3DSweep renders Figures 6.4/6.6: pod performance density across core
// counts and LLC capacities (2-32MB) for 1, 2, and 4 stacked logic dies.
// Stacking folds the pod vertically, shortening horizontal wires, so PD
// rises with die count at every configuration. One engine point
// evaluates one (LLC, cores) row across the three die counts.
func pd3DSweep(ctx context.Context, id string, coreType tech.CoreType) (Table, error) {
	ws := workload.Suite()
	n := tech.N40For3D()
	t := Table{
		ID:      id,
		Title:   fmt.Sprintf("3D performance density sweep (%s cores)", coreType),
		Note:    "pod PD at 1/2/4 dies; fixed-pod folding",
		Headers: []string{"LLC(MB)", "Cores", "d=1", "d=2", "d=4"},
	}
	type rowSpec struct {
		llc   float64
		cores int
	}
	var specs []rowSpec
	for _, llc := range []float64{2, 4, 8, 16, 32} {
		for c := 4; c <= 64; c *= 2 {
			specs = append(specs, rowSpec{llc, c})
		}
	}
	rows, err := exp.Map(ctx, exp.FromContext(ctx), specs, func(s rowSpec) ([]string, error) {
		base := core.Pod{Core: coreType, Cores: s.cores, LLCMB: s.llc, Net: noc.Crossbar}
		row := []string{fg(s.llc), itoa(s.cores)}
		for _, dies := range []int{1, 2, 4} {
			// Per-pod density, independent of chip-level replication.
			pod := stack3d.PodAt(base, n, dies, stack3d.FixedPod)
			row = append(row, f3(pod.IPC(ws)/pod.Area(n)))
		}
		return row, nil
	})
	if err != nil {
		return t, err
	}
	t.Rows = rows
	return t, nil
}

// base3DPod returns the PD-optimal single-die pod for the Chapter-6 node.
func base3DPod(coreType tech.CoreType) (core.Pod, error) {
	return stack3d.Optimal2DPod(tech.N40For3D(), coreType, workload.Suite())
}

// strategies renders Figures 6.5/6.7: chip-level 3D performance density
// of the fixed-pod and fixed-distance strategies across die counts.
func strategies(id string, coreType tech.CoreType, dieCounts []int) (Table, error) {
	ws := workload.Suite()
	n := tech.N40For3D()
	base, err := base3DPod(coreType)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      id,
		Title:   fmt.Sprintf("3D Scale-Out Processors (%s): fixed-pod vs fixed-distance", coreType),
		Note:    fmt.Sprintf("base 2D pod %s; PD = perf / (footprint x dies)", base),
		Headers: []string{"Dies", "Strategy", "Config", "Pods", "MCs", "PD3D"},
	}
	for _, dies := range dieCounts {
		for _, s := range []stack3d.Strategy{stack3d.FixedPod, stack3d.FixedDistance} {
			if dies == 1 && s == stack3d.FixedDistance {
				continue // identical to fixed-pod at one die
			}
			c, err := stack3d.Compose3D(n, base, dies, s, ws)
			if err != nil {
				return t, err
			}
			t.AddRow(itoa(dies), s.String(), c.Pod.String(), itoa(c.Pods),
				itoa(c.MemChannels), f3(c.PD3D(ws)))
		}
	}
	return t, nil
}

// table62 renders Table 6.2: the specification of 2D and 3D Scale-Out
// Processors for both core types and both strategies.
func table62() (Table, error) {
	ws := workload.Suite()
	n := tech.N40For3D()
	t := Table{
		ID:    "table6.2",
		Title: "Specification of 2D and 3D Scale-Out Processors (40nm, DDR4, 250W)",
		Headers: []string{"Core", "Dies", "Configuration", "Pods", "Pod", "MCs",
			"PD", "Power(W)", "Limit"},
	}
	for _, coreType := range []tech.CoreType{tech.OoO, tech.InOrder} {
		base, err := base3DPod(coreType)
		if err != nil {
			return t, err
		}
		maxDies := 4
		if coreType == tech.InOrder {
			maxDies = 3 // 4-die in-order stacks are bandwidth-saturated
		}
		for dies := 1; dies <= maxDies; dies *= 2 {
			if coreType == tech.InOrder && dies == 4 {
				dies = 3
			}
			for _, s := range []stack3d.Strategy{stack3d.FixedPod, stack3d.FixedDistance} {
				name := s.String()
				if dies == 1 {
					if s == stack3d.FixedDistance {
						continue
					}
					name = "2D Pod"
				}
				c, err := stack3d.Compose3D(n, base, dies, s, ws)
				if err != nil {
					return t, err
				}
				t.AddRow(coreType.String(), itoa(dies), name, itoa(c.Pods),
					c.Pod.String(), itoa(c.MemChannels), f3(c.PD3D(ws)),
					f0(c.Power()), string(c.Limit))
			}
		}
	}
	return t, nil
}
