package figures

import (
	"context"
	"strings"
	"testing"

	"scaleout/internal/exp"
)

// renderAll concatenates every table's rendering into one string, the
// byte-for-byte artifact the determinism guarantee covers.
func renderAll(tables []Table) string {
	var b strings.Builder
	for _, t := range tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// A parallel RunAll must produce byte-identical tables to a serial run:
// one generator at a time on a single-worker engine. This is the
// engine's central guarantee — concurrency and memoization are invisible
// in the output.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the full harness twice")
	}
	// Serial baseline: sequential generators, one worker, fresh memo.
	serialCtx := exp.WithEngine(context.Background(), exp.New(1))
	var serial []Table
	for _, id := range IDs() {
		tab, err := RunContext(serialCtx, id)
		if err != nil {
			t.Fatalf("serial %s: %v", id, err)
		}
		serial = append(serial, tab)
	}
	// Parallel run: concurrent generators on the shared default engine —
	// the exact path `soproc -all` takes.
	parallel, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	s, p := renderAll(serial), renderAll(parallel)
	if s != p {
		t.Fatalf("parallel output differs from serial baseline:\nserial %d bytes, parallel %d bytes", len(s), len(p))
	}
}

// Regenerating an experiment on one engine serves the repeat entirely
// from the memo: the simulation count does not grow.
func TestRunMemoizesAcrossRepeats(t *testing.T) {
	eng := exp.New(2)
	ctx := exp.WithEngine(context.Background(), eng)
	first, err := RunContext(ctx, "fig2.1")
	if err != nil {
		t.Fatal(err)
	}
	missesAfterFirst := eng.Stats().Misses
	if missesAfterFirst == 0 {
		t.Fatal("fig2.1 ran no simulations")
	}
	second, err := RunContext(ctx, "fig2.1")
	if err != nil {
		t.Fatal(err)
	}
	if misses := eng.Stats().Misses; misses != missesAfterFirst {
		t.Fatalf("repeat ran %d new simulations", misses-missesAfterFirst)
	}
	if first.String() != second.String() {
		t.Fatal("memoized rerun differs")
	}
}

// Figures that share sweep points must share simulations: power4.4's
// configurations are a subset of fig4.6's, so regenerating it on the
// same engine costs zero new simulator runs.
func TestCrossFigureDeduplication(t *testing.T) {
	if testing.Short() {
		t.Skip("64-core pod simulations are slow")
	}
	eng := exp.New(4)
	ctx := exp.WithEngine(context.Background(), eng)
	if _, err := RunContext(ctx, "fig4.6"); err != nil {
		t.Fatal(err)
	}
	missesAfter46 := eng.Stats().Misses
	if _, err := RunContext(ctx, "power4.4"); err != nil {
		t.Fatal(err)
	}
	if misses := eng.Stats().Misses; misses != missesAfter46 {
		t.Fatalf("power4.4 ran %d simulations despite sharing every point with fig4.6",
			misses-missesAfter46)
	}
}
