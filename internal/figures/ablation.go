package figures

import (
	"context"
	"fmt"

	"scaleout/internal/chip"
	"scaleout/internal/core"
	"scaleout/internal/exp"
	"scaleout/internal/noc"
	"scaleout/internal/sim"
	"scaleout/internal/tco"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// Ablations: each experiment isolates one design choice the thesis (or
// this reproduction) makes and sweeps it, holding everything else fixed.
// They answer "how much does this choice matter" rather than reproduce a
// published artifact.
func init() {
	register("ablate.pods", ablatePodSize)
	register("ablate.llc", ablatePodLLC)
	register("ablate.banks", ablateBanks)
	register("ablate.mshr", ablateMSHR)
	register("ablate.linkwidth", ablateLinkWidth)
	register("ablate.sharing", ablateSharing)
	register("ablate.tco", ablateTCO)
}

// ablatePodSize holds the 40nm chip budgets fixed and varies the pod
// granularity: many small pods vs few large ones. The methodology's
// claim — a PD-optimal mid-size pod beats both extremes at the chip
// level — is visible directly.
func ablatePodSize(ctx context.Context) (Table, error) {
	ws := workload.Suite()
	n := tech.N40()
	t := Table{
		ID:      "ablate.pods",
		Title:   "Chip-level PD vs pod granularity (OoO, 4MB LLC per 16 cores, 40nm)",
		Note:    "same budgets, different pod sizes; the mid-size pod wins",
		Headers: []string{"Pod", "Pods/chip", "Cores", "MCs", "Chip PD", "Perf/W"},
	}
	for _, cores := range []int{4, 8, 16, 32, 64} {
		pod := core.Pod{Core: tech.OoO, Cores: cores, LLCMB: float64(cores) / 4, Net: noc.Crossbar}
		chip, err := core.Compose(n, pod, ws)
		if err != nil {
			// A 64-core/16MB pod exceeds the die by itself — the
			// scale-up endpoint literally does not fit.
			t.AddRow(pod.String(), "-", "-", "-", "does not fit", "-")
			continue
		}
		t.AddRow(pod.String(), itoa(chip.Pods), itoa(chip.Cores()),
			itoa(chip.MemChannels), f3(chip.PD(ws)), f2(chip.PerfPerWatt(ws)))
	}
	return t, nil
}

// ablatePodLLC varies only the per-pod LLC capacity of the 16-core pod:
// too little capacity floods the memory channels; too much wastes core
// area — the Figure 2.2 trade-off at chip level.
func ablatePodLLC(ctx context.Context) (Table, error) {
	ws := workload.Suite()
	n := tech.N40()
	t := Table{
		ID:      "ablate.llc",
		Title:   "Chip-level PD vs per-pod LLC capacity (16-core OoO pods, 40nm)",
		Headers: []string{"Pod", "Pods/chip", "MCs", "Chip PD", "Demand(GB/s)"},
	}
	for _, llc := range []float64{0.5, 1, 2, 4, 8, 16} {
		pod := core.Pod{Core: tech.OoO, Cores: 16, LLCMB: llc, Net: noc.Crossbar}
		chip, err := core.Compose(n, pod, ws)
		if err != nil {
			return t, err
		}
		t.AddRow(pod.String(), itoa(chip.Pods), itoa(chip.MemChannels),
			f3(chip.PD(ws)), f1(float64(chip.Pods)*pod.PeakBandwidthGBs(ws)))
	}
	return t, nil
}

// ablateBanks sweeps NOC-Out's banks-per-LLC-tile choice on the
// cycle simulator (Section 4.3.1 settles on two banks per tile).
func ablateBanks(ctx context.Context) (Table, error) {
	w, ok := workload.ByName(workload.DataServing) // the contention-sensitive one
	if !ok {
		return Table{}, fmt.Errorf("missing workload")
	}
	t := Table{
		ID:      "ablate.banks",
		Title:   "NOC-Out LLC banking vs performance (Data Serving, 64-core pod)",
		Note:    "statistical simulator; bank accept interval doubles as banks halve",
		Headers: []string{"LLC tiles", "Banks", "AppIPC"},
	}
	tiles := []int{4, 8, 16}
	cfgs := make([]sim.Config, len(tiles))
	for i, n := range tiles {
		net := noc.New(noc.NOCOut, ch4Cores)
		net.LLCTiles = n
		cfgs[i] = sim.Config{
			Workload: w, CoreType: tech.OoO, Cores: ch4Cores, LLCMB: ch4LLCMB,
			Net: net, MemChannels: ch4Channels,
		}
	}
	rs, err := exp.Sims(ctx, cfgs)
	if err != nil {
		return t, err
	}
	for i, n := range tiles {
		t.AddRow(itoa(n), itoa(2*n), f2(rs[i].AppIPC))
	}
	return t, nil
}

// ablateMSHR sweeps the per-core MSHR file on the structural simulator:
// Table 2.2's 32 entries are ample; the knee sits near the workloads'
// memory-level parallelism.
func ablateMSHR(ctx context.Context) (Table, error) {
	w, ok := workload.ByName(workload.SATSolver) // highest MLP
	if !ok {
		return Table{}, fmt.Errorf("missing workload")
	}
	t := Table{
		ID:      "ablate.mshr",
		Title:   "Per-core MSHR entries vs performance (SAT Solver, structural sim)",
		Headers: []string{"MSHRs", "AppIPC", "Stall %"},
	}
	entries := []int{1, 2, 4, 8, 16, 32}
	cfgs := make([]sim.StructuralConfig, len(entries))
	for i, e := range entries {
		cfgs[i] = sim.StructuralConfig{
			Workload: w, CoreType: tech.OoO, Cores: 16, LLCMB: 4, L1MSHRs: e,
		}
	}
	rs, err := exp.Structurals(ctx, cfgs)
	if err != nil {
		return t, err
	}
	for i, e := range entries {
		t.AddRow(itoa(e), f2(rs[i].AppIPC), f2(rs[i].MSHRStallPct))
	}
	return t, nil
}

// ablateLinkWidth sweeps NoC link width: the mesh barely cares (header
// latency dominates), the flattened butterfly collapses below ~64 bits
// (serialization), exactly the asymmetry Section 4.4.3 exploits. The
// 128-bit points are the calibration baseline and are shared with the
// Chapter-4 figures, so the engine memo already holds them.
func ablateLinkWidth(ctx context.Context) (Table, error) {
	w, ok := workload.ByName(workload.MediaStreaming)
	if !ok {
		return Table{}, fmt.Errorf("missing workload")
	}
	t := Table{
		ID:      "ablate.linkwidth",
		Title:   "NoC link width vs performance (Media Streaming, 64-core pod)",
		Note:    "normalized to 128-bit links per topology",
		Headers: []string{"Bits", "Mesh", "FBfly", "NOC-Out"},
	}
	kinds := []noc.Kind{noc.Mesh, noc.FlattenedButterfly, noc.NOCOut}
	widths := []int{128, 64, 32, 16}
	var cfgs []sim.Config
	for _, bits := range widths {
		for _, kind := range kinds {
			cfgs = append(cfgs, ch4Cfg(w, kind, bits))
		}
	}
	rs, err := exp.Sims(ctx, cfgs)
	if err != nil {
		return t, err
	}
	base := map[noc.Kind]float64{}
	for i, bits := range widths {
		row := []string{itoa(bits)}
		for k, kind := range kinds {
			ipc := rs[i*len(kinds)+k].AppIPC
			if bits == 128 {
				base[kind] = ipc
			}
			row = append(row, f2(ipc/base[kind]))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// ablateSharing scales the coherence-visible sharing of the most
// share-heavy workload: even at 4x the calibrated sharing (a ~26% snoop
// rate), performance falls only ~11% — the workload class tolerates
// minimal connectivity (Section 2.1.5).
func ablateSharing(ctx context.Context) (Table, error) {
	t := Table{
		ID:      "ablate.sharing",
		Title:   "Sharing intensity vs snoop rate and performance (Web Frontend)",
		Headers: []string{"SharedFrac x", "Snoop %", "AppIPC"},
	}
	w, ok := workload.ByName(workload.WebFrontend)
	if !ok {
		return t, fmt.Errorf("missing workload")
	}
	mults := []float64{0, 0.5, 1, 2, 4}
	cfgs := make([]sim.Config, len(mults))
	for i, mult := range mults {
		ww := w
		ww.SharedFrac = w.SharedFrac * mult
		cfgs[i] = sim.Config{
			Workload: ww, CoreType: tech.OoO, Cores: 32, LLCMB: 8,
			Net: noc.New(noc.Mesh, 64), MemChannels: 4,
		}
	}
	rs, err := exp.Sims(ctx, cfgs)
	if err != nil {
		return t, err
	}
	for i, mult := range mults {
		t.AddRow(fg(mult), f1(rs[i].SnoopRatePct), f2(rs[i].AppIPC))
	}
	return t, nil
}

// ablateTCO stresses the Chapter-5 ranking against the cost-model inputs
// a datacenter operator cannot control: the electricity price and the
// facility PUE. The Scale-Out designs' perf/TCO lead over the
// conventional design must survive across the whole range. One engine
// point evaluates one electricity-price row across the PUE columns.
func ablateTCO(ctx context.Context) (Table, error) {
	ws := workload.Suite()
	specs := chip.TCOCatalog(ws)
	conv, ok := chip.Find(specs, chip.ConventionalOrg, tech.Conventional)
	if !ok {
		return Table{}, fmt.Errorf("missing conventional design")
	}
	soI, ok := chip.Find(specs, chip.ScaleOutOrg, tech.InOrder)
	if !ok {
		return Table{}, fmt.Errorf("missing Scale-Out design")
	}
	t := Table{
		ID:      "ablate.tco",
		Title:   "Scale-Out (In-order) perf/TCO lead vs electricity price and PUE",
		Note:    "lead = Scale-Out perf/TCO over conventional; 64GB per 1U",
		Headers: []string{"$/kWh", "PUE 1.1", "PUE 1.3", "PUE 1.7", "PUE 2.0"},
	}
	rows, err := exp.Map(ctx, exp.FromContext(ctx), []float64{0.03, 0.07, 0.15, 0.30},
		func(price float64) ([]string, error) {
			row := []string{fmt.Sprintf("%.2f", price)}
			for _, pue := range []float64{1.1, 1.3, 1.7, 2.0} {
				p := tco.NewParams()
				p.ElectricityPerKWh = price
				p.PUE = pue
				dcC, err := tco.Compose(p, conv, 64, ws)
				if err != nil {
					return nil, err
				}
				dcS, err := tco.Compose(p, soI, 64, ws)
				if err != nil {
					return nil, err
				}
				row = append(row, f2(dcS.PerfPerTCO()/dcC.PerfPerTCO()))
			}
			return row, nil
		})
	if err != nil {
		return t, err
	}
	t.Rows = rows
	return t, nil
}
