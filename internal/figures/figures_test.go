package figures

import (
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
)

// The full experiment inventory of DESIGN.md must be registered.
func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{
		// Thesis artifacts (DESIGN.md per-experiment index).
		"fig2.1", "fig2.2", "fig2.3", "table2.3", "table2.4",
		"fig3.1", "fig3.3", "fig3.4", "fig3.5", "fig3.6", "table3.2",
		"fig4.3", "fig4.6", "fig4.7", "fig4.8", "power4.4",
		"table5.1", "fig5.1", "fig5.2", "fig5.3", "fig5.4", "fig5.5",
		"fig6.4", "fig6.5", "fig6.6", "fig6.7", "table6.2",
		// Ablations of our design choices.
		"ablate.pods", "ablate.llc", "ablate.banks", "ablate.mshr",
		"ablate.linkwidth", "ablate.sharing", "ablate.tco",
		// Extensions (thesis future work).
		"ext.hetero", "ext.dvfs", "ext.structural", "ext.nocout-scale",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registered %d experiments, inventory has %d", len(IDs()), len(want))
	}
}

// CSV must quote every cell containing a comma, quote, or line break;
// an unquoted embedded newline would split one cell across two CSV
// records and silently corrupt the row structure.
func TestCSVQuoting(t *testing.T) {
	tbl := Table{
		Headers: []string{"name", "value"},
		Rows: [][]string{
			{"multi\nline", "cr\rcell"},
			{"comma,cell", "quoted\"cell"},
			{"plain", "1.0"},
		},
	}
	got := tbl.CSV()
	want := "name,value\n" +
		"\"multi\nline\",\"cr\rcell\"\n" +
		"\"comma,cell\",\"quoted\"\"cell\"\n" +
		"plain,1.0\n"
	if got != want {
		t.Fatalf("CSV()\n got %q\nwant %q", got, want)
	}
	// A standard CSV reader must recover the original cells.
	records, err := csv.NewReader(strings.NewReader(got)).ReadAll()
	if err != nil {
		t.Fatalf("encoding/csv rejects our output: %v", err)
	}
	if len(records) != 4 {
		t.Fatalf("parsed %d records, want 4 (header + 3 rows)", len(records))
	}
	if records[1][0] != "multi\nline" {
		t.Fatalf("newline cell round-tripped as %q", records[1][0])
	}
	if records[2][1] != "quoted\"cell" {
		t.Fatalf("quote cell round-tripped as %q", records[2][1])
	}
}

// Renderer accepts exactly the documented formats; the CLI's -format
// flag and the serve layer's format= parameter share this validation.
func TestRenderer(t *testing.T) {
	tbl := Table{ID: "x", Title: "t", Headers: []string{"h"}, Rows: [][]string{{"v"}}}
	for _, format := range Formats() {
		render, err := Renderer(format)
		if err != nil {
			t.Fatalf("Renderer(%q): %v", format, err)
		}
		if render(tbl) == "" {
			t.Fatalf("Renderer(%q) produced no output", format)
		}
	}
	if table, _ := Renderer("table"); table(tbl) != tbl.String() {
		t.Fatal("table renderer differs from Table.String")
	}
	if csvr, _ := Renderer("csv"); csvr(tbl) != tbl.CSV() {
		t.Fatal("csv renderer differs from Table.CSV")
	}
	for _, bad := range []string{"xml", "json", "CSV", " csv", ""} {
		if _, err := Renderer(bad); err == nil {
			t.Errorf("Renderer(%q) accepted an unknown format", bad)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("fig9.9"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func runExp(t *testing.T, id string) Table {
	t.Helper()
	tab, err := Run(id)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tab.Rows) == 0 || len(tab.Headers) == 0 {
		t.Fatalf("%s: empty table", id)
	}
	for i, row := range tab.Rows {
		if len(row) != len(tab.Headers) {
			t.Fatalf("%s row %d: %d cells, %d headers", id, i, len(row), len(tab.Headers))
		}
	}
	return tab
}

func cell(t *testing.T, tab Table, rowPrefix, header string) float64 {
	t.Helper()
	col := -1
	for i, h := range tab.Headers {
		if h == header {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("%s: no column %q", tab.ID, header)
	}
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], rowPrefix) {
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[col], "*"), 64)
			if err != nil {
				t.Fatalf("%s[%s][%s] = %q: %v", tab.ID, rowPrefix, header, row[col], err)
			}
			return v
		}
	}
	t.Fatalf("%s: no row starting %q", tab.ID, rowPrefix)
	return 0
}

// Figure 2.1: Media Streaming below 1 IPC; every workload far below the
// 4-wide peak; Web Search the highest.
func TestFig21Shape(t *testing.T) {
	tab := runExp(t, "fig2.1")
	ms := cell(t, tab, "Media Streaming", "App IPC")
	wsr := cell(t, tab, "Web Search", "App IPC")
	if ms >= 1 {
		t.Errorf("Media Streaming IPC %v, thesis <1", ms)
	}
	if wsr <= 1 || wsr >= 2.5 {
		t.Errorf("Web Search IPC %v, thesis in (1,2)", wsr)
	}
	for _, row := range tab.Rows {
		v, _ := strconv.ParseFloat(row[1], 64)
		if v >= 2.6 {
			t.Errorf("%s IPC %v too close to the 4-wide peak", row[0], v)
		}
	}
}

// Figure 2.2: most workloads saturate by 8MB; capacity beyond 16MB is
// detrimental; MapReduce-C and SAT Solver gain the most from 1->16MB.
func TestFig22Shape(t *testing.T) {
	tab := runExp(t, "fig2.2")
	for _, row := range tab.Rows {
		p16, _ := strconv.ParseFloat(row[5], 64)
		p32, _ := strconv.ParseFloat(row[6], 64)
		if p32 >= p16 {
			t.Errorf("%s: 32MB (%v) not worse than 16MB (%v)", row[0], p32, p16)
		}
	}
	sat := cell(t, tab, "SAT Solver", "16MB")
	msr := cell(t, tab, "Media Streaming", "16MB")
	if sat <= msr {
		t.Errorf("SAT Solver 16MB gain %v not above Media Streaming's %v", sat, msr)
	}
	if sat < 1.10 || sat > 1.45 {
		t.Errorf("SAT Solver 1->16MB gain %v, thesis 12-24%%", sat)
	}
}

// Figure 2.3: the mesh design loses >15% of the ideal chip throughput at
// 256 cores (thesis: 28%), and per-core ideal degradation stays small.
func TestFig23Shape(t *testing.T) {
	tab := runExp(t, "fig2.3")
	ideal := cell(t, tab, "256", "Chip(Ideal)")
	mesh := cell(t, tab, "256", "Chip(Mesh)")
	loss := 1 - mesh/ideal
	if loss < 0.1 || loss > 0.5 {
		t.Errorf("mesh loss at 256 cores %v, thesis ~28%%", loss)
	}
	perCore := cell(t, tab, "256", "PerCore(Ideal)")
	if perCore < 0.6 {
		t.Errorf("ideal per-core at 256 cores fell to %v; thesis: small degradation", perCore)
	}
}

// Tables 2.3/2.4: Scale-Out tops every realizable design; Ideal tops all.
func TestCatalogTablesShape(t *testing.T) {
	for _, id := range []string{"table2.3", "table2.4"} {
		tab := runExp(t, id)
		conv := cell(t, tab, "Conventional", "PD")
		soI := cell(t, tab, "Scale-Out (In-order)", "PD")
		idealI := cell(t, tab, "Ideal (In-order)", "PD")
		if !(conv < soI && soI < idealI) {
			t.Errorf("%s: PD ordering conv %v < scale-out %v < ideal %v violated",
				id, conv, soI, idealI)
		}
	}
}

// Figure 3.1: performance density peaks strictly between the extremes.
func TestFig31Shape(t *testing.T) {
	tab := runExp(t, "fig3.1")
	first, _ := strconv.ParseFloat(tab.Rows[0][3], 64)
	last, _ := strconv.ParseFloat(tab.Rows[len(tab.Rows)-1][3], 64)
	if first >= 1 || last >= 1 {
		t.Errorf("PD peak at an extreme: first %v last %v", first, last)
	}
}

// Figure 3.3: the model tracks simulation within ~15% up to 16 cores.
func TestFig33Validation(t *testing.T) {
	tab := runExp(t, "fig3.3")
	for _, row := range tab.Rows {
		cores, _ := strconv.Atoi(row[2])
		if cores > 16 {
			continue
		}
		errPct, _ := strconv.ParseFloat(row[5], 64)
		if errPct > 17 || errPct < -17 {
			t.Errorf("%s/%s at %s cores: %v%% model error", row[0], row[1], row[2], errPct)
		}
	}
}

// Figure 4.3: snoop rates small, with a mean near the thesis's 2.7%.
func TestFig43Shape(t *testing.T) {
	tab := runExp(t, "fig4.3")
	mean := cell(t, tab, "Mean", "Snoop %")
	if mean < 1.5 || mean > 4.5 {
		t.Errorf("mean snoop rate %v%%, thesis ~2.7%%", mean)
	}
}

// Figure 4.6: the flattened butterfly beats the mesh by ~20% geomean and
// NOC-Out matches or exceeds it.
func TestFig46Shape(t *testing.T) {
	tab := runExp(t, "fig4.6")
	fb := cell(t, tab, "GMean", "FBfly")
	no := cell(t, tab, "GMean", "NOC-Out")
	if fb < 1.1 || fb > 1.5 {
		t.Errorf("fbfly geomean %v, thesis ~1.21", fb)
	}
	if no < fb*0.95 {
		t.Errorf("NOC-Out geomean %v well below fbfly %v; thesis: parity", no, fb)
	}
}

// Figure 4.8: at a fixed NOC area, NOC-Out leads the narrowed flattened
// butterfly decisively (thesis: ~75%) and the mesh clearly (thesis ~24%).
func TestFig48Shape(t *testing.T) {
	tab := runExp(t, "fig4.8")
	fb := cell(t, tab, "GMean", "FBfly")
	no := cell(t, tab, "GMean", "NOC-Out")
	if no/fb < 1.3 {
		t.Errorf("area-normalized NOC-Out/fbfly %v, thesis ~1.75", no/fb)
	}
	if no < 1.1 {
		t.Errorf("area-normalized NOC-Out vs mesh %v, thesis ~1.24", no)
	}
}

// power4.4: everything under 2.5W, NOC-Out cheapest, links dominate.
func TestPower44Shape(t *testing.T) {
	tab := runExp(t, "power4.4")
	mesh := cell(t, tab, "Mesh", "Total")
	no := cell(t, tab, "NOC-Out", "Total")
	if mesh > 2.5 || no > 2.5 {
		t.Errorf("NoC power above 2.5W: mesh %v nocout %v", mesh, no)
	}
	if no >= mesh {
		t.Errorf("NOC-Out power %v not below mesh %v", no, mesh)
	}
}

// Figure 5.1: in-order Scale-Out highest; 1pod ~4.4x conventional.
func TestFig51Shape(t *testing.T) {
	tab := runExp(t, "fig5.1")
	onePod := cell(t, tab, "1Pod (OoO)", "Perf (norm)")
	soI := cell(t, tab, "Scale-Out (In-order)", "Perf (norm)")
	if onePod < 3.2 || onePod > 5.6 {
		t.Errorf("1pod datacenter speedup %v, thesis 4.4", onePod)
	}
	for _, row := range tab.Rows {
		v, _ := strconv.ParseFloat(row[3], 64)
		if v > soI+1e-9 {
			t.Errorf("%s (%v) above Scale-Out In-order (%v)", row[0], v, soI)
		}
	}
}

// Table 6.2 / Figures 6.5, 6.7: stacking helps; the in-order 3-die point
// flips to fixed-distance.
func TestCh6Shapes(t *testing.T) {
	tab := runExp(t, "fig6.7")
	var pd1, fd3 float64
	for _, row := range tab.Rows {
		if row[0] == "1" {
			pd1, _ = strconv.ParseFloat(row[5], 64)
		}
		if row[0] == "3" && row[1] == "Fixed-Distance" {
			fd3, _ = strconv.ParseFloat(row[5], 64)
		}
	}
	if fd3 <= pd1 {
		t.Errorf("3-die fixed-distance PD %v not above the 2D baseline %v", fd3, pd1)
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{ID: "x", Title: "T", Note: "n", Headers: []string{"A", "B"}}
	tab.AddRow("1", "2")
	s := tab.String()
	for _, want := range []string{"x — T", "(n)", "A", "1"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}
