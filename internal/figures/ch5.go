package figures

import (
	"context"
	"fmt"

	"scaleout/internal/chip"
	"scaleout/internal/exp"
	"scaleout/internal/tco"
	"scaleout/internal/workload"
)

func init() {
	register("table5.1", table51)
	register("fig5.1", fig51)
	register("fig5.2", fig52)
	register("fig5.3", func(ctx context.Context) (Table, error) { return tcoSweep(ctx, "fig5.3", true) })
	register("fig5.4", func(ctx context.Context) (Table, error) { return tcoSweep(ctx, "fig5.4", false) })
	register("fig5.5", fig55)
}

// table51 renders the server-chip characteristics of Table 5.1, with
// prices from the volume model (conventional at its market price).
func table51(ctx context.Context) (Table, error) {
	ws := workload.Suite()
	t := Table{
		ID:    "table5.1",
		Title: "Server chip characteristics (40nm)",
		Headers: []string{"Processor", "Cores", "LLC(MB)", "DDR3", "Power(W)",
			"Area(mm2)", "Cost($)"},
	}
	for _, s := range chip.TCOCatalog(ws) {
		t.AddRow(s.Name(), itoa(s.Cores), fg(s.LLCMB), itoa(s.MemChannels),
			f0(s.Power()), f0(s.DieArea()), f0(tco.ChipPrice(s)))
	}
	return t, nil
}

// composeAll builds a 64GB-per-1U datacenter around every TCO-catalog
// chip, one engine point per chip.
func composeAll(ctx context.Context, memGB int) ([]chip.Spec, []tco.Datacenter, error) {
	ws := workload.Suite()
	p := tco.NewParams()
	specs := chip.TCOCatalog(ws)
	dcs, err := exp.Map(ctx, exp.FromContext(ctx), specs, func(s chip.Spec) (tco.Datacenter, error) {
		return tco.Compose(p, s, memGB, ws)
	})
	if err != nil {
		return nil, nil, err
	}
	return specs, dcs, nil
}

// fig51 reports datacenter performance normalized to the conventional
// design (Figure 5.1): 1pod ~4.4x, in-order Scale-Out the highest.
func fig51(ctx context.Context) (Table, error) {
	specs, dcs, err := composeAll(ctx, 64)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "fig5.1",
		Title:   "Datacenter performance normalized to the conventional design",
		Note:    "64GB per 1U server, 20MW facility",
		Headers: []string{"Processor", "Sockets/1U", "Racks", "Perf (norm)"},
	}
	base := dcs[0].PerfIPC
	for i, s := range specs {
		t.AddRow(s.Name(), itoa(dcs[i].Server.Sockets), itoa(dcs[i].Racks), f2(dcs[i].PerfIPC/base))
	}
	return t, nil
}

// fig52 reports datacenter TCO normalized to the conventional design
// (Figure 5.2): differences are muted because processors are only part of
// the acquisition and power budget.
func fig52(ctx context.Context) (Table, error) {
	specs, dcs, err := composeAll(ctx, 64)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "fig5.2",
		Title:   "Datacenter TCO normalized to the conventional design",
		Note:    "64GB per 1U server; monthly TCO",
		Headers: []string{"Processor", "Infra", "ServerHW", "Power", "Maint", "TCO (norm)"},
	}
	base := dcs[0].MonthlyTCO().Total()
	for i, s := range specs {
		b := dcs[i].MonthlyTCO()
		t.AddRow(s.Name(), f2(b.Infrastructure/1e6), f2(b.ServerHW/1e6),
			f2(b.Power/1e6), f2(b.Maintenance/1e6), f2(b.Total()/base))
	}
	return t, nil
}

// tcoSweep renders Figures 5.3 (performance/TCO) and 5.4 (performance/
// Watt) across per-server memory capacities of 32, 64, and 128GB. Each
// chip's row is one engine point.
func tcoSweep(ctx context.Context, id string, perTCO bool) (Table, error) {
	title := "Datacenter performance/TCO"
	if !perTCO {
		title = "Datacenter performance/Watt"
	}
	t := Table{
		ID:      id,
		Title:   title + " for different server chips",
		Note:    "columns: memory capacity per 1U server",
		Headers: []string{"Processor", "32GB", "64GB", "128GB"},
	}
	ws := workload.Suite()
	p := tco.NewParams()
	rows, err := exp.Map(ctx, exp.FromContext(ctx), chip.TCOCatalog(ws),
		func(s chip.Spec) ([]string, error) {
			row := []string{s.Name()}
			for _, mem := range []int{32, 64, 128} {
				dc, err := tco.Compose(p, s, mem, ws)
				if err != nil {
					return nil, err
				}
				if perTCO {
					row = append(row, f3(dc.PerfPerTCO()))
				} else {
					row = append(row, f3(dc.PerfPerWatt()))
				}
			}
			return row, nil
		})
	if err != nil {
		return t, err
	}
	t.Rows = rows
	return t, nil
}

// fig55 sweeps the processor price and reports performance/TCO (Figure
// 5.5): large dies are less price-sensitive because fewer chips populate
// each power-limited server.
func fig55(ctx context.Context) (Table, error) {
	ws := workload.Suite()
	p := tco.NewParams()
	prices := []float64{100, 200, 320, 370, 400, 600, 800}
	t := Table{
		ID:      "fig5.5",
		Title:   "Performance/TCO vs processor price (64GB per 1U)",
		Note:    "marked column: the design's modeled price at 200K volume",
		Headers: append([]string{"Processor"}, priceHeaders(prices)...),
	}
	rows, err := exp.Map(ctx, exp.FromContext(ctx), chip.TCOCatalog(ws),
		func(s chip.Spec) ([]string, error) {
			dc, err := tco.Compose(p, s, 64, ws)
			if err != nil {
				return nil, err
			}
			modeled := tco.ChipPrice(s)
			row := []string{s.Name()}
			for _, price := range prices {
				cell := f3(dc.WithChipPrice(price).PerfPerTCO())
				if price == roundTo(modeled, prices) {
					cell += "*"
				}
				row = append(row, cell)
			}
			return row, nil
		})
	if err != nil {
		return t, err
	}
	t.Rows = rows
	return t, nil
}

func priceHeaders(prices []float64) []string {
	out := make([]string, len(prices))
	for i, p := range prices {
		out[i] = fmt.Sprintf("$%.0f", p)
	}
	return out
}

// roundTo snaps x to the nearest element of grid.
func roundTo(x float64, grid []float64) float64 {
	best, bd := grid[0], abs(grid[0]-x)
	for _, g := range grid[1:] {
		if d := abs(g - x); d < bd {
			best, bd = g, d
		}
	}
	return best
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
