package figures

import (
	"context"
	"fmt"

	"scaleout/internal/exp"
	"scaleout/internal/noc"
	"scaleout/internal/sim"
	"scaleout/internal/stats"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

func init() {
	register("fig4.3", fig43)
	register("fig4.6", func(ctx context.Context) (Table, error) { return nocPerf(ctx, "fig4.6", 0) })
	register("fig4.7", fig47)
	register("fig4.8", func(ctx context.Context) (Table, error) { return nocPerf(ctx, "fig4.8", nocOutAreaBudget()) })
	register("power4.4", power44)
}

// ch4Pod is the Chapter-4 evaluation target: a 64-core pod with an 8MB
// NUCA LLC and four DDR3 channels at 32nm (Table 4.1).
const (
	ch4Cores    = 64
	ch4LLCMB    = 8.0
	ch4Channels = 4
)

// ch4Cfg declares one workload's run on the 64-core pod with the given
// NoC. For workloads that scale only to 16 or 32 cores, the active cores
// occupy the pod centre (mesh, flattened butterfly) or the rows adjacent
// to the LLC (NOC-Out), per Section 4.3.3. Several Chapter-4 figures
// share these exact configurations, so the engine simulates each only
// once per process.
func ch4Cfg(w workload.Workload, kind noc.Kind, linkBits int) sim.Config {
	active := ch4Cores
	if w.ScaleLimit < active {
		active = w.ScaleLimit
	}
	net := noc.New(kind, ch4Cores) // distances are set by the full pod
	switch {
	case kind == noc.NOCOut:
		net.Cores = active // active cores sit in the rows adjacent to the LLC
	case active < ch4Cores:
		// Scale-limited workloads run on the pod's centre tiles
		// (Section 4.3.3): the average distance from the centre region
		// to a uniformly distributed LLC slice is about a quarter less
		// than between uniformly random tile pairs.
		net.WireDelta = -0.25 * net.OneWayLatency()
	}
	if linkBits > 0 {
		net = net.WithLinkBits(linkBits)
	}
	return sim.Config{
		Workload: w, CoreType: tech.OoO, Cores: active, LLCMB: ch4LLCMB,
		Net: net, MemChannels: ch4Channels,
	}
}

// fig43 measures the percentage of LLC accesses that trigger a snoop
// message (Figure 4.3): negligible coherence activity, ~2.7% on average.
func fig43(ctx context.Context) (Table, error) {
	t := Table{
		ID:      "fig4.3",
		Title:   "% of LLC accesses causing a snoop message to be sent to a core",
		Note:    "64-core pod simulation with a real coherence directory",
		Headers: []string{"Workload", "Snoop %"},
	}
	ws := workload.Suite()
	cfgs := make([]sim.Config, len(ws))
	for i, w := range ws {
		cfgs[i] = ch4Cfg(w, noc.Mesh, 0)
	}
	rs, err := exp.Sims(ctx, cfgs)
	if err != nil {
		return t, err
	}
	var vals []float64
	for i, w := range ws {
		t.AddRow(w.Name, f1(rs[i].SnoopRatePct))
		vals = append(vals, rs[i].SnoopRatePct)
	}
	mean, err := stats.Mean(vals)
	if err != nil {
		return t, err
	}
	t.AddRow("Mean", f1(mean))
	return t, nil
}

// nocPerf renders Figures 4.6 (full-width links) and 4.8 (links narrowed
// until every NoC fits NOC-Out's area): per-workload performance of the
// mesh, flattened butterfly, and NOC-Out organizations, normalized to the
// mesh, with the geometric mean. All (workload x NoC) points run as one
// engine batch.
func nocPerf(ctx context.Context, id string, areaBudget float64) (Table, error) {
	t := Table{
		ID:      id,
		Title:   "System performance normalized to the mesh-based design",
		Headers: []string{"Workload", "Mesh", "FBfly", "NOC-Out"},
	}
	if areaBudget > 0 {
		t.Note = fmt.Sprintf("all NoCs constrained to %.1fmm2", areaBudget)
	}
	kinds := []noc.Kind{noc.Mesh, noc.FlattenedButterfly, noc.NOCOut}
	ws := workload.Suite()
	var cfgs []sim.Config
	for _, w := range ws {
		for _, kind := range kinds {
			bits := 0
			if areaBudget > 0 && kind != noc.NOCOut {
				bits = noc.New(kind, ch4Cores).LinkBitsForArea(areaBudget)
			}
			cfgs = append(cfgs, ch4Cfg(w, kind, bits))
		}
	}
	rs, err := exp.Sims(ctx, cfgs)
	if err != nil {
		return t, err
	}
	ratios := map[noc.Kind][]float64{}
	for i, w := range ws {
		perf := [3]float64{}
		for k := range kinds {
			perf[k] = rs[i*len(kinds)+k].AppIPC
		}
		t.AddRow(w.Name, "1.00", f2(perf[1]/perf[0]), f2(perf[2]/perf[0]))
		ratios[noc.FlattenedButterfly] = append(ratios[noc.FlattenedButterfly], perf[1]/perf[0])
		ratios[noc.NOCOut] = append(ratios[noc.NOCOut], perf[2]/perf[0])
	}
	gmF, err := stats.GeoMean(ratios[noc.FlattenedButterfly])
	if err != nil {
		return t, err
	}
	gmN, err := stats.GeoMean(ratios[noc.NOCOut])
	if err != nil {
		return t, err
	}
	t.AddRow("GMean", "1.00", f2(gmF), f2(gmN))
	return t, nil
}

// nocOutAreaBudget returns NOC-Out's total NoC area on the 64-core pod —
// the constraint of the Section 4.4.3 area-normalized study.
func nocOutAreaBudget() float64 {
	return noc.New(noc.NOCOut, ch4Cores).Area().Total()
}

// fig47 breaks the NoC area of the three organizations into links,
// buffers, and crossbars (Figure 4.7).
func fig47(ctx context.Context) (Table, error) {
	t := Table{
		ID:      "fig4.7",
		Title:   "NOC area breakdown (mm2), 64-core pod, 128-bit links",
		Headers: []string{"NoC", "Links", "Buffers", "Crossbar", "Total"},
	}
	for _, kind := range []noc.Kind{noc.Mesh, noc.FlattenedButterfly, noc.NOCOut} {
		a := noc.New(kind, ch4Cores).Area()
		t.AddRow(kind.String(), f2(a.LinksMM2), f2(a.BuffersMM2), f2(a.CrossbarMM2), f2(a.Total()))
	}
	return t, nil
}

// power44 evaluates NoC power at the measured LLC access rate of the
// 64-core pod (Section 4.4.4): below 2W everywhere, link-dominated,
// NOC-Out most efficient. Its simulation points are the same as Figure
// 4.6's, so with a shared engine they cost nothing extra.
func power44(ctx context.Context) (Table, error) {
	t := Table{
		ID:      "power4.4",
		Title:   "NOC power at scale-out load (W), 64-core pod",
		Headers: []string{"NoC", "Links", "Routers", "Total"},
	}
	ws := workload.Suite()
	kinds := []noc.Kind{noc.Mesh, noc.FlattenedButterfly, noc.NOCOut}
	var cfgs []sim.Config
	for _, kind := range kinds {
		for _, w := range ws {
			cfgs = append(cfgs, ch4Cfg(w, kind, 0))
		}
	}
	rs, err := exp.Sims(ctx, cfgs)
	if err != nil {
		return t, err
	}
	for k, kind := range kinds {
		// Average LLC access rate across workloads from simulation.
		var aps float64
		for i := range ws {
			r := rs[k*len(ws)+i]
			aps += float64(r.LLCAccesses) / float64(r.Cycles) * tech.ClockGHz * 1e9
		}
		aps /= float64(len(ws))
		p := noc.New(kind, ch4Cores).PowerW(aps)
		t.AddRow(kind.String(), f2(p.LinksW), f2(p.RoutersW), f2(p.Total()))
	}
	return t, nil
}
