// Package figures regenerates every table and figure of the thesis's
// evaluation. Each experiment is a named generator returning a Table —
// the same rows/series the thesis reports — produced by running the
// analytic model, the cycle-level simulator, the NoC models, the TCO
// model, or the 3D composer, as the thesis did for that artifact.
// EXPERIMENTS.md records paper-vs-measured for each.
package figures

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"scaleout/internal/exp"
)

// Table is a rendered experiment result: a title, column headers, and
// string rows (already formatted to the precision the figure warrants).
type Table struct {
	ID      string
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "  (%s)\n", t.Note)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (headers first), for
// piping into plotting tools. Cells containing a comma, quote, or line
// break are quoted per RFC 4180 — an embedded newline must not split a
// cell across CSV records.
func (t Table) CSV() string {
	var b strings.Builder
	quote := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n\r") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	quote(t.Headers)
	for _, row := range t.Rows {
		quote(row)
	}
	return b.String()
}

// Formats lists the output formats Renderer accepts.
func Formats() []string { return []string{"table", "csv"} }

// Renderer maps an output-format name to its rendering function. The
// soproc CLI (-format) and the soprocd HTTP service (format= query
// parameter) share this lookup, so both reject exactly the same set of
// unknown formats.
func Renderer(format string) (func(Table) string, error) {
	switch format {
	case "table":
		return Table.String, nil
	case "csv":
		return Table.CSV, nil
	default:
		return nil, fmt.Errorf("figures: unknown format %q (want %s)",
			format, strings.Join(Formats(), " or "))
	}
}

// Generator produces one experiment's table. Generators declare their
// sweep points and hand them to the engine carried by ctx (see
// internal/exp): the engine fans points out across its worker pool and
// memoizes them by canonical fingerprint, so the table a generator
// assembles is byte-identical whether the engine runs with one worker
// or many, and configurations shared between figures are simulated once.
type Generator func(ctx context.Context) (Table, error)

// registry maps experiment IDs to generators.
var registry = map[string]Generator{}

func register(id string, g Generator) {
	if _, dup := registry[id]; dup {
		panic("figures: duplicate experiment " + id)
	}
	registry[id] = g
}

// IDs returns the registered experiment identifiers in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run generates the experiment with the given ID on the default engine.
func Run(id string) (Table, error) {
	return RunContext(context.Background(), id)
}

// RunContext generates the experiment with the given ID, running its
// sweep points on the engine carried by ctx.
func RunContext(ctx context.Context, id string) (Table, error) {
	g, ok := registry[id]
	if !ok {
		return Table{}, fmt.Errorf("figures: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return g(ctx)
}

// RunAll generates every experiment in ID order on the default engine.
func RunAll() ([]Table, error) {
	return RunAllContext(context.Background())
}

// RunAllContext generates every experiment concurrently and returns the
// tables in ID order. Each generator assembles its table independently
// and deterministically, so concurrency never changes the output; the
// simulation work underneath is bounded by the context engine's worker
// pool. The first failure cancels the remaining experiments.
func RunAllContext(ctx context.Context) ([]Table, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ids := IDs()
	tables := make([]Table, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			tables[i], errs[i] = RunContext(ctx, id)
			if errs[i] != nil {
				cancel()
			}
		}(i, id)
	}
	wg.Wait()
	// Report a genuine failure over a cancellation it caused; both in
	// ID order for determinism.
	if err := exp.FirstError(errs, func(i int, err error) error {
		return fmt.Errorf("%s: %w", ids[i], err)
	}); err != nil {
		return nil, err
	}
	return tables, nil
}

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func f0(x float64) string { return fmt.Sprintf("%.0f", x) }
func itoa(x int) string   { return fmt.Sprintf("%d", x) }
func fg(x float64) string { return fmt.Sprintf("%g", x) }
