package figures

import (
	"context"

	"scaleout/internal/analytic"
	"scaleout/internal/chip"
	"scaleout/internal/exp"
	"scaleout/internal/noc"
	"scaleout/internal/sim"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

func init() {
	register("fig2.1", fig21)
	register("fig2.2", fig22)
	register("fig2.3", fig23)
	register("table2.3", func(ctx context.Context) (Table, error) { return catalogTable("table2.3", tech.N40()) })
	register("table2.4", func(ctx context.Context) (Table, error) { return catalogTable("table2.4", tech.N20()) })
}

// fig21 measures application IPC per workload on the aggressive
// out-of-order (conventional) core, on the simulator, as Figure 2.1:
// Media Streaming below 1, Data Serving and MapReduce-C around 1, the
// rest between 1 and 2, all far below the 4-wide peak.
func fig21(ctx context.Context) (Table, error) {
	t := Table{
		ID:      "fig2.1",
		Title:   "Application IPC on an aggressive OoO core (max IPC 4)",
		Note:    "cycle simulation, 4 cores, 4MB LLC, crossbar",
		Headers: []string{"Workload", "App IPC"},
	}
	ws := workload.Suite()
	cfgs := make([]sim.Config, len(ws))
	for i, w := range ws {
		cfgs[i] = sim.Config{
			Workload: w, CoreType: tech.Conventional, Cores: 4, LLCMB: 4,
			Net: noc.New(noc.Crossbar, 4), DisableSWScaling: true,
		}
	}
	rs, err := exp.Sims(ctx, cfgs)
	if err != nil {
		return t, err
	}
	for i, w := range ws {
		t.AddRow(w.Name, f2(rs[i].PerCoreIPC))
	}
	return t, nil
}

// fig22 sweeps the LLC from 1 to 32MB on a quad-core system and reports
// performance normalized to the 1MB point (Figure 2.2): capacities of
// 2-8MB suffice for most workloads; MapReduce-C and SAT Solver keep
// gaining to 16MB; beyond that latency wins and performance falls.
func fig22(ctx context.Context) (Table, error) {
	sizes := []float64{1, 2, 4, 8, 16, 32}
	t := Table{
		ID:      "fig2.2",
		Title:   "Performance of 4-core workloads varying the LLC size",
		Note:    "analytic model, normalized to 1MB",
		Headers: []string{"Workload", "1MB", "2MB", "4MB", "8MB", "16MB", "32MB"},
	}
	rows, err := exp.Map(ctx, exp.FromContext(ctx), workload.Suite(),
		func(w workload.Workload) ([]string, error) {
			row := []string{w.Name}
			base := 0.0
			for i, mb := range sizes {
				d := analytic.NewDesign(tech.Conventional, 4, mb, noc.Crossbar)
				perf := analytic.ChipIPC(w, d)
				if i == 0 {
					base = perf
				}
				row = append(row, f3(perf/base))
			}
			return row, nil
		})
	if err != nil {
		return t, err
	}
	t.Rows = rows
	return t, nil
}

// fig23 contrasts an ideal fixed-latency interconnect against a realistic
// mesh as the core count grows from 1 to 256 with a fixed 4MB LLC
// (Figure 2.3): per-core performance degrades slowly under the ideal
// network (sharing only) but steeply under the mesh (distance), cutting
// aggregate throughput at 256 cores.
func fig23(ctx context.Context) (Table, error) {
	ws := workload.Suite()
	t := Table{
		ID:    "fig2.3",
		Title: "Per-core and chip performance vs core count (4MB LLC)",
		Note:  "analytic model, averaged across workloads, normalized to 1 core",
		Headers: []string{"Cores", "PerCore(Ideal)", "PerCore(Mesh)",
			"Chip(Ideal)", "Chip(Mesh)"},
	}
	base := analytic.SuiteMeanPerCoreIPC(ws, analytic.NewDesign(tech.OoO, 1, 4, noc.Ideal))
	var cores []int
	for c := 1; c <= 256; c *= 2 {
		cores = append(cores, c)
	}
	rows, err := exp.Map(ctx, exp.FromContext(ctx), cores, func(c int) ([]string, error) {
		ideal := analytic.SuiteMeanPerCoreIPC(ws, analytic.NewDesign(tech.OoO, c, 4, noc.Ideal))
		mesh := analytic.SuiteMeanPerCoreIPC(ws, analytic.NewDesign(tech.OoO, c, 4, noc.Mesh))
		return []string{itoa(c), f3(ideal / base), f3(mesh / base),
			f1(float64(c) * ideal / base), f1(float64(c) * mesh / base)}, nil
	})
	if err != nil {
		return t, err
	}
	t.Rows = rows
	return t, nil
}

// catalogTable renders the processor-design comparison of Tables 2.3/2.4
// (and the Scale-Out rows of Table 3.2) at one technology node.
func catalogTable(id string, n tech.Node) (Table, error) {
	ws := workload.Suite()
	t := Table{
		ID:    id,
		Title: "Specification of processor designs at " + n.Name,
		Headers: []string{"Design", "PD", "Cores", "LLC(MB)", "MCs",
			"Die(mm2)", "Power(W)", "Perf/Watt"},
	}
	for _, s := range chip.Catalog(n, ws) {
		t.AddRow(s.Name(), f3(s.PD(ws)), itoa(s.Cores), fg(s.LLCMB),
			itoa(s.MemChannels), f0(s.DieArea()), f0(s.Power()), f2(s.PerfPerWatt(ws)))
	}
	return t, nil
}
