package figures

import (
	"strconv"
	"testing"
)

// RunAll must regenerate the entire harness without error — the same
// path `soproc -all` takes.
func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness regeneration is slow")
	}
	tables, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(IDs()) {
		t.Fatalf("RunAll returned %d tables for %d experiments", len(tables), len(IDs()))
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty", tab.ID)
		}
		if tab.String() == "" {
			t.Errorf("%s: renders empty", tab.ID)
		}
	}
}

// ablate.pods: the mid-size pods beat the tiny-pod endpoint and the
// scale-up endpoint does not fit at all.
func TestAblatePodsShape(t *testing.T) {
	tab := runExp(t, "ablate.pods")
	tiny := cell(t, tab, "4c-1MB", "Chip PD")
	mid := cell(t, tab, "16c-4MB", "Chip PD")
	if mid <= tiny {
		t.Errorf("mid-size pod PD %v not above tiny-pod %v", mid, tiny)
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "64c-16MB" || last[4] != "does not fit" {
		t.Errorf("scale-up endpoint row: %v", last)
	}
}

// ablate.llc: PD peaks at an interior capacity; tiny LLCs flood the
// memory channels (6 MCs at 0.5MB).
func TestAblateLLCShape(t *testing.T) {
	tab := runExp(t, "ablate.llc")
	tiny := cell(t, tab, "16c-0.5MB", "Chip PD")
	mid := cell(t, tab, "16c-2MB", "Chip PD")
	big := cell(t, tab, "16c-16MB", "Chip PD")
	if !(mid > tiny && mid > big) {
		t.Errorf("PD not peaked in the interior: %v %v %v", tiny, mid, big)
	}
	if mcs := cell(t, tab, "16c-0.5MB", "MCs"); mcs < 5 {
		t.Errorf("0.5MB pods should flood the channels, got %v MCs", mcs)
	}
}

// ablate.mshr: a single MSHR entry costs performance vs the 32-entry
// baseline and shows stalls.
func TestAblateMSHRShape(t *testing.T) {
	tab := runExp(t, "ablate.mshr")
	one := cell(t, tab, "1", "AppIPC")
	full := cell(t, tab, "32", "AppIPC")
	if one >= full {
		t.Errorf("1-entry MSHR IPC %v not below 32-entry %v", one, full)
	}
	if stall := cell(t, tab, "1", "Stall %"); stall <= 0 {
		t.Errorf("1-entry MSHR shows no stalls")
	}
}

// ablate.sharing: snoop rate grows monotonically with sharing intensity
// and is exactly zero with sharing disabled.
func TestAblateSharingShape(t *testing.T) {
	tab := runExp(t, "ablate.sharing")
	prev := -1.0
	for _, row := range tab.Rows {
		snoop, _ := strconv.ParseFloat(row[1], 64)
		if snoop < prev {
			t.Errorf("snoop rate fell at multiplier %s", row[0])
		}
		prev = snoop
	}
	if zero := cell(t, tab, "0", "Snoop %"); zero != 0 {
		t.Errorf("disabled sharing still snooped: %v%%", zero)
	}
}

// ablate.linkwidth: every topology degrades monotonically as links
// narrow, and no topology is hurt at full width by construction.
func TestAblateLinkWidthShape(t *testing.T) {
	tab := runExp(t, "ablate.linkwidth")
	for col := 1; col <= 3; col++ {
		prev := 2.0
		for _, row := range tab.Rows {
			v, _ := strconv.ParseFloat(row[col], 64)
			if v > prev+1e-9 {
				t.Errorf("column %d not monotone at %s bits", col, row[0])
			}
			prev = v
		}
	}
}

// ext.hetero: the frontier includes a genuinely mixed configuration and
// the all-in-order throughput endpoint.
func TestExtHeteroShape(t *testing.T) {
	tab := runExp(t, "ext.hetero")
	var sawMixedFrontier, sawIOEndpoint bool
	for _, row := range tab.Rows {
		a, _ := strconv.Atoi(row[0])
		b, _ := strconv.Atoi(row[1])
		starred := row[len(row)-1] == "*"
		if starred && a > 0 && b > 0 {
			sawMixedFrontier = true
		}
		if starred && a == 0 && b == 3 {
			sawIOEndpoint = true
		}
	}
	if !sawMixedFrontier {
		t.Error("no mixed configuration on the Pareto frontier")
	}
	if !sawIOEndpoint {
		t.Error("all-in-order endpoint missing from the frontier")
	}
}

// ext.dvfs: efficiency declines along the curve; the starred point is
// below nominal frequency.
func TestExtDVFSShape(t *testing.T) {
	tab := runExp(t, "ext.dvfs")
	prev := 1e9
	for _, row := range tab.Rows {
		eff, _ := strconv.ParseFloat(row[3], 64)
		if eff > prev {
			t.Errorf("efficiency rose at %s", row[0])
		}
		prev = eff
		if row[4] == "*" && row[0] >= "2.0GHz" {
			t.Errorf("efficiency sweet spot at %s, expected below nominal", row[0])
		}
	}
}

// ext.structural: emergent L1 rates track the calibrated targets.
func TestExtStructuralShape(t *testing.T) {
	tab := runExp(t, "ext.structural")
	for _, row := range tab.Rows {
		got, _ := strconv.ParseFloat(row[1], 64)
		want, _ := strconv.ParseFloat(row[2], 64)
		if got < want*0.6 || got > want*1.6 {
			t.Errorf("%s: emergent L1I %v vs target %v", row[0], got, want)
		}
	}
}

// ablate.banks: fewer LLC tiles means more contention, never more
// performance.
func TestAblateBanksShape(t *testing.T) {
	tab := runExp(t, "ablate.banks")
	prev := 0.0
	for _, row := range tab.Rows {
		ipc, _ := strconv.ParseFloat(row[2], 64)
		if ipc < prev-1e-9 {
			t.Errorf("performance fell with MORE banks at %s tiles", row[0])
		}
		prev = ipc
	}
}

// ablate.tco: the Scale-Out perf/TCO lead over the conventional design
// survives every electricity-price/PUE combination (thesis: ~7x).
func TestAblateTCOShape(t *testing.T) {
	tab := runExp(t, "ablate.tco")
	for _, row := range tab.Rows {
		for col := 1; col < len(row); col++ {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				t.Fatalf("cell %q: %v", row[col], err)
			}
			if v < 4 || v > 9 {
				t.Errorf("lead %v at $%s/%s outside the robust window", v, row[0], tab.Headers[col])
			}
		}
	}
}

func TestCSVRendering(t *testing.T) {
	tab := Table{Headers: []string{"A", "B"}}
	tab.AddRow("1", "two, quoted")
	csv := tab.CSV()
	if csv != "A,B\n1,\"two, quoted\"\n" {
		t.Fatalf("CSV rendering: %q", csv)
	}
}

// ext.nocout-scale: at 256 cores both mechanisms cut latency vs the
// baseline; concentration also cuts area.
func TestExtNOCOutScaleShape(t *testing.T) {
	tab := runExp(t, "ext.nocout-scale")
	vals := map[string][2]float64{}
	for _, row := range tab.Rows {
		if row[0] != "256" {
			continue
		}
		lat, _ := strconv.ParseFloat(row[2], 64)
		area, _ := strconv.ParseFloat(row[3], 64)
		vals[row[1]] = [2]float64{lat, area}
	}
	base := vals["baseline"]
	if conc := vals["concentration=2"]; conc[0] >= base[0] || conc[1] >= base[1] {
		t.Errorf("concentration at 256 cores: lat %v area %v vs base %v %v", conc[0], conc[1], base[0], base[1])
	}
	if expr := vals["express links"]; expr[0] >= base[0] {
		t.Errorf("express links at 256 cores: lat %v vs base %v", expr[0], base[0])
	}
}
