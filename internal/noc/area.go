package noc

import "math"

// AreaBreakdown is the NOC die-area decomposition of Figure 4.7: link
// repeaters (wires route over tiles; only repeaters cost area), packet
// buffers, and router switch fabric.
type AreaBreakdown struct {
	LinksMM2    float64
	BuffersMM2  float64
	CrossbarMM2 float64
}

// Total returns the summed NOC area.
func (a AreaBreakdown) Total() float64 {
	return a.LinksMM2 + a.BuffersMM2 + a.CrossbarMM2
}

// ORION-like area coefficients at the 32nm evaluation node. Calibrated so
// that the three Chapter-4 organizations land on the thesis totals: mesh
// ~3.5mm^2, flattened butterfly ~23mm^2, NOC-Out ~2.5mm^2 at 128-bit links
// on a 64-core pod (Figure 4.7 and Section 4.4.2).
const (
	repeaterMM2PerMMBit = 2.6e-5  // link repeater area per mm of wire per bit
	ffBufferMM2PerBit   = 2.05e-6 // flip-flop buffer area per bit (mesh, NOC-Out)
	sramBufferMM2PerBit = 1.15e-6 // SRAM buffer area per bit (flattened butterfly)
	xbarMM2PerPort2Bit  = 3.3e-6  // switch fabric area per port^2 per bit
)

// routerCfg describes one router population for area accounting.
type routerCfg struct {
	count     int
	ports     int
	vcsPerVC  int // virtual channels per port
	flitsPerV int // flit buffers per VC
	sram      bool
}

func (r routerCfg) bufferBits(width int) float64 {
	return float64(r.count * r.ports * r.vcsPerVC * r.flitsPerV * width)
}

func (r routerCfg) bufferArea(width int) float64 {
	per := ffBufferMM2PerBit
	if r.sram {
		per = sramBufferMM2PerBit
	}
	return r.bufferBits(width) * per
}

func (r routerCfg) xbarArea(width int) float64 {
	return float64(r.count) * float64(r.ports*r.ports) * float64(width) * xbarMM2PerPort2Bit
}

// rowPairWireMM returns the total wire length of a fully connected row of
// k tiles with pitch edge mm: sum over ordered pairs of |i-j|*edge.
func rowPairWireMM(k int, edge float64) float64 {
	total := 0.0
	for d := 1; d < k; d++ {
		total += float64(d * (k - d))
	}
	return total * edge
}

// Area returns the NOC area breakdown for this configuration.
func (c Config) Area() AreaBreakdown {
	w := c.linkBits()
	edge := c.tileEdge()
	switch c.Kind {
	case Ideal:
		return AreaBreakdown{} // abstraction; no physical cost modelled
	case Crossbar:
		// One central crossbar with cores+banks ports; latency-oriented
		// model with a small amount of per-port buffering.
		ports := c.Cores + max(1, c.Cores/4)
		r := routerCfg{count: 1, ports: ports, vcsPerVC: 2, flitsPerV: 2}
		// Dancehall wiring: every core runs a channel to the centre.
		wire := float64(c.Cores) * edge * float64(gridSide(c.Cores)) / 2
		return AreaBreakdown{
			LinksMM2:    wire * float64(w) * repeaterMM2PerMMBit,
			BuffersMM2:  r.bufferArea(w),
			CrossbarMM2: r.xbarArea(w) * 0.12, // a flat fabric, not per-tile routers
		}
	case Mesh:
		k := gridSide(c.Cores)
		r := routerCfg{count: c.Cores, ports: 5, vcsPerVC: 3, flitsPerV: 5}
		// 2*k*(k-1) bidirectional channels, two unidirectional links each.
		wire := 2 * float64(2*k*(k-1)) * edge
		return AreaBreakdown{
			LinksMM2:    wire * float64(w) * repeaterMM2PerMMBit,
			BuffersMM2:  r.bufferArea(w),
			CrossbarMM2: r.xbarArea(w),
		}
	case FlattenedButterfly:
		k := gridSide(c.Cores)
		r := routerCfg{count: c.Cores, ports: 2*(k-1) + 1, vcsPerVC: 3, flitsPerV: 8, sram: true}
		// Full row connectivity in both dimensions, both directions.
		wire := 2 * float64(2*k) * rowPairWireMM(k, edge)
		return AreaBreakdown{
			LinksMM2:    wire * float64(w) * repeaterMM2PerMMBit,
			BuffersMM2:  r.bufferArea(w),
			CrossbarMM2: r.xbarArea(w),
		}
	case NOCOut:
		return c.nocOutArea()
	default:
		panic("noc: unknown interconnect kind")
	}
}

func (c Config) nocOutArea() AreaBreakdown {
	w := c.linkBits()
	edge := c.tileEdge()
	tiles := c.llcTiles()
	cols := 2 * tiles
	conc := c.Concentration
	if conc < 1 {
		conc = 1
	}
	rows := int(math.Ceil(float64(c.Cores) / float64(cols*conc)))
	if rows < 1 {
		rows = 1
	}
	// Reduction and dispersion trees: one mux/demux node per (group of
	// concentrated) cores, local ports per concentrated core plus the
	// network port, two VCs, shallow buffers; links run down each column.
	nodes := (c.Cores + conc - 1) / conc
	tree := routerCfg{count: nodes, ports: conc + 1, vcsPerVC: 2, flitsPerV: 3}
	treeWire := float64(cols) * float64(rows) * edge
	if c.ExpressLinks && rows > 4 {
		treeWire *= 1.5 // express channels overlay the column links
	}
	treeArea := AreaBreakdown{
		LinksMM2:   treeWire * float64(w) * repeaterMM2PerMMBit,
		BuffersMM2: tree.bufferArea(w),
		// A two-input mux is negligible next to a 5-port crossbar: model
		// it as a 2-port fabric.
		CrossbarMM2: tree.xbarArea(w) * 0.5,
	}
	treeArea.LinksMM2 *= 2 // reduction + dispersion are separate networks
	treeArea.BuffersMM2 *= 2
	treeArea.CrossbarMM2 *= 2

	// LLC network: a 1D flattened butterfly over the LLC tiles, each
	// router with tiles-1 row ports, one local port and two tree ports.
	llc := routerCfg{count: tiles, ports: tiles + 2, vcsPerVC: 3, flitsPerV: 8, sram: true}
	llcWire := 2 * rowPairWireMM(tiles, edge)
	return AreaBreakdown{
		LinksMM2:    treeArea.LinksMM2 + llcWire*float64(w)*repeaterMM2PerMMBit,
		BuffersMM2:  treeArea.BuffersMM2 + llc.bufferArea(w),
		CrossbarMM2: treeArea.CrossbarMM2 + llc.xbarArea(w),
	}
}

// LinkBitsForArea returns the widest link width (a multiple of 8, at
// least 8) whose resulting NOC area does not exceed budget mm^2 — the
// area-normalized comparison of Section 4.4.3.
func (c Config) LinkBitsForArea(budget float64) int {
	for bits := c.linkBits(); bits > 8; bits -= 8 {
		if c.WithLinkBits(bits).Area().Total() <= budget {
			return bits
		}
	}
	return 8
}
