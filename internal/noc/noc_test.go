package noc

import (
	"math"
	"testing"
	"testing/quick"
)

// The thesis's Table 3.1 crossbar latencies.
func TestCrossbarLatencyTable(t *testing.T) {
	cases := map[int]float64{1: 4, 4: 4, 8: 4, 16: 5, 32: 7, 64: 11, 128: 19, 256: 35}
	for n, want := range cases {
		if got := CrossbarLatency(n); got != want {
			t.Errorf("CrossbarLatency(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestOneWayLatencyValues(t *testing.T) {
	if l := New(Ideal, 64).OneWayLatency(); l != 4 {
		t.Fatalf("ideal latency %v, want 4", l)
	}
	// Mesh, 64 tiles: 3 cycles/hop x mean Manhattan distance on 8x8.
	want := 3 * (2.0 / 3.0) * (8 - 1.0/8)
	if l := New(Mesh, 64).OneWayLatency(); math.Abs(l-want) > 1e-9 {
		t.Fatalf("mesh-64 latency %v, want %v", l, want)
	}
}

// The Chapter-4 latency ordering at 64 cores: mesh slowest; the flattened
// butterfly and NOC-Out close together and far faster.
func TestLatencyOrdering64(t *testing.T) {
	mesh := New(Mesh, 64).OneWayLatency()
	fb := New(FlattenedButterfly, 64).OneWayLatency()
	no := New(NOCOut, 64).OneWayLatency()
	if !(fb < mesh && no < mesh) {
		t.Fatalf("ordering violated: mesh %v fbfly %v nocout %v", mesh, fb, no)
	}
	if math.Abs(fb-no) > 3 {
		t.Fatalf("fbfly %v and nocout %v should be close (Section 4.4.1)", fb, no)
	}
}

// NOC-Out's adjacency benefit: with only 16 active cores the trees are a
// single row, cutting latency (Section 4.3.3).
func TestNOCOutAdjacency(t *testing.T) {
	full := New(NOCOut, 64).OneWayLatency()
	adj := New(NOCOut, 16).OneWayLatency()
	if adj >= full {
		t.Fatalf("16-core NOC-Out latency %v not below 64-core %v", adj, full)
	}
}

func TestLatencyMonotonicInCores(t *testing.T) {
	for _, kind := range []Kind{Crossbar, Mesh, FlattenedButterfly, NOCOut} {
		prev := 0.0
		for c := 4; c <= 256; c *= 2 {
			l := New(kind, c).OneWayLatency()
			if l < prev-1e-9 {
				t.Errorf("%v: latency fell from %v to %v at %d cores", kind, prev, l, c)
			}
			prev = l
		}
	}
}

func TestSerialization(t *testing.T) {
	c := New(Mesh, 64) // 128-bit links
	if s := c.SerializationCycles(8); s != 0 {
		t.Fatalf("8B request serialization %v, want 0", s)
	}
	if s := c.SerializationCycles(72); s != 4 {
		t.Fatalf("72B reply at 128b: %v, want 4 (5 flits)", s)
	}
	narrow := c.WithLinkBits(16)
	if s := narrow.SerializationCycles(72); s != 35 {
		t.Fatalf("72B at 16b: %v, want 35", s)
	}
	if a, b := c.AccessLatency(), c.OneWayLatency()+4; math.Abs(a-b) > 1e-9 {
		t.Fatalf("access latency %v, want %v", a, b)
	}
}

func TestWireDelta(t *testing.T) {
	c := New(Crossbar, 32)
	base := c.OneWayLatency()
	c.WireDelta = -2
	if got := c.OneWayLatency(); got != base-2 {
		t.Fatalf("wire delta: %v, want %v", got, base-2)
	}
	c.WireDelta = -100
	if got := c.OneWayLatency(); got != 2 {
		t.Fatalf("latency floor: %v, want 2", got)
	}
}

// Figure 4.7 calibration: total NoC areas near the thesis's values for
// the 64-core pod at 128-bit links.
func TestAreaCalibration(t *testing.T) {
	mesh := New(Mesh, 64).Area().Total()
	fb := New(FlattenedButterfly, 64).Area().Total()
	no := New(NOCOut, 64).Area().Total()
	if mesh < 2.8 || mesh > 4.2 {
		t.Errorf("mesh area %v, thesis ~3.5mm2", mesh)
	}
	if fb < 18 || fb > 28 {
		t.Errorf("fbfly area %v, thesis ~23mm2", fb)
	}
	if no < 2.0 || no > 3.0 {
		t.Errorf("NOC-Out area %v, thesis ~2.5mm2", no)
	}
	if !(no < mesh && mesh < fb) {
		t.Errorf("area ordering violated: %v %v %v", no, mesh, fb)
	}
	// NOC-Out saves ~28% vs mesh and ~10x vs the flattened butterfly.
	if r := no / mesh; r < 0.55 || r > 0.9 {
		t.Errorf("NOC-Out/mesh area ratio %v, thesis ~0.72", r)
	}
	if r := fb / no; r < 6 || r > 12 {
		t.Errorf("fbfly/NOC-Out area ratio %v, thesis ~10", r)
	}
}

func TestAreaBreakdownPositive(t *testing.T) {
	for _, kind := range []Kind{Crossbar, Mesh, FlattenedButterfly, NOCOut} {
		a := New(kind, 64).Area()
		if a.LinksMM2 < 0 || a.BuffersMM2 < 0 || a.CrossbarMM2 < 0 {
			t.Errorf("%v: negative area component %+v", kind, a)
		}
		if a.Total() <= 0 {
			t.Errorf("%v: non-positive total", kind)
		}
	}
	if a := New(Ideal, 64).Area(); a.Total() != 0 {
		t.Error("ideal interconnect should have no modelled area")
	}
}

// Area scales (sub)linearly with link width.
func TestAreaScalesWithWidth(t *testing.T) {
	f := func(bits8 uint8) bool {
		bits := 8 * (1 + int(bits8)%32)
		wide := New(Mesh, 64).WithLinkBits(bits * 2).Area().Total()
		narrow := New(Mesh, 64).WithLinkBits(bits).Area().Total()
		return wide > narrow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Section 4.4.3: shrinking the flattened butterfly to NOC-Out's budget
// cuts its links by about a factor of seven.
func TestLinkBitsForArea(t *testing.T) {
	budget := New(NOCOut, 64).Area().Total()
	fbBits := New(FlattenedButterfly, 64).LinkBitsForArea(budget)
	if fbBits > DefaultLinkBits/5 || fbBits < 8 {
		t.Fatalf("fbfly narrowed to %d bits; thesis ~1/7 of 128", fbBits)
	}
	meshBits := New(Mesh, 64).LinkBitsForArea(budget)
	if meshBits <= fbBits {
		t.Fatal("mesh should keep wider links than fbfly at equal area")
	}
	if got := New(Mesh, 64).WithLinkBits(meshBits).Area().Total(); got > budget {
		t.Fatalf("area %v exceeds budget %v at returned width", got, budget)
	}
}

// Section 4.4.4 calibration: all NoCs below 2W at scale-out load,
// link-dominated, with NOC-Out the most efficient.
func TestPowerCalibration(t *testing.T) {
	const aps = 2.5e9 // LLC accesses/s of a busy 64-core pod
	mesh := New(Mesh, 64).PowerW(aps)
	fb := New(FlattenedButterfly, 64).PowerW(aps)
	no := New(NOCOut, 64).PowerW(aps)
	for _, p := range []PowerBreakdown{mesh, fb, no} {
		if p.Total() <= 0 || p.Total() >= 2.5 {
			t.Fatalf("NoC power %v outside (0, 2.5W)", p.Total())
		}
		// Links carry most of the energy (Section 4.4.4); the mesh's
		// per-hop buffering brings its routers close to parity.
		if p.RoutersW > 1.4*p.LinksW {
			t.Fatalf("routers implausibly dominant: %+v", p)
		}
	}
	if fb.LinksW <= fb.RoutersW || no.LinksW <= no.RoutersW {
		t.Fatalf("links should dominate low-diameter NoCs: fb %+v no %+v", fb, no)
	}
	if !(no.Total() < fb.Total() && fb.Total() < mesh.Total()) {
		t.Fatalf("power ordering: nocout %v fbfly %v mesh %v (thesis 1.3/1.6/1.8)",
			no.Total(), fb.Total(), mesh.Total())
	}
}

func TestPowerLinearInLoad(t *testing.T) {
	c := New(Mesh, 64)
	p1, p2 := c.PowerW(1e9).Total(), c.PowerW(2e9).Total()
	if math.Abs(p2-2*p1) > 1e-12 {
		t.Fatalf("power not linear in load: %v vs 2x%v", p2, p1)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{Ideal: "Ideal", Crossbar: "Crossbar", Mesh: "Mesh",
		FlattenedButterfly: "Flattened Butterfly", NOCOut: "NOC-Out"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d: %q", k, k.String())
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind unnamed")
	}
}

func TestDefaults(t *testing.T) {
	c := Config{Kind: Mesh, Cores: 16}
	if c.linkBits() != DefaultLinkBits || c.tileEdge() != 1.83 || c.llcTiles() != 8 {
		t.Fatal("zero-value defaults")
	}
	if New(Crossbar, 8).LinkBits != 256 {
		t.Fatal("crossbar should default to a wide datapath")
	}
}

// Section 4.5.1: concentration and express links keep large NOC-Out pods
// near the 64-core latency at reduced (concentration) or bounded
// (express) area.
func TestNOCOutScalability(t *testing.T) {
	base64 := New(NOCOut, 64).OneWayLatency()
	base256 := New(NOCOut, 256)
	if base256.OneWayLatency() <= base64 {
		t.Fatal("256-core trees should be slower without scaling mechanisms")
	}
	conc := base256
	conc.Concentration = 2
	if conc.OneWayLatency() >= base256.OneWayLatency() {
		t.Fatalf("concentration did not shorten the trees: %v vs %v",
			conc.OneWayLatency(), base256.OneWayLatency())
	}
	if conc.Area().Total() >= base256.Area().Total() {
		t.Fatal("concentration should reduce tree node area")
	}
	expr := base256
	expr.ExpressLinks = true
	if expr.OneWayLatency() >= base256.OneWayLatency() {
		t.Fatal("express links did not shorten tall trees")
	}
	if expr.Area().Total() <= base256.Area().Total() {
		t.Fatal("express links are not free: channel area must grow")
	}
	// Express links are a no-op on short trees.
	short := New(NOCOut, 64)
	short.ExpressLinks = true
	if short.OneWayLatency() != New(NOCOut, 64).OneWayLatency() {
		t.Fatal("express links changed a short tree")
	}
}

// ReplySerializationCycles is the data-reply packet's streaming cost —
// the one the simulator's reply path uses — and must equal serializing
// a line plus its header at the configured link width.
func TestReplySerializationCycles(t *testing.T) {
	for _, c := range []Config{
		New(Mesh, 64),                         // 128-bit links
		New(Crossbar, 16),                     // 256-bit datapath
		New(Mesh, 64).WithLinkBits(64),        // narrowed links
		{Kind: FlattenedButterfly, Cores: 64}, // zero LinkBits: defaulted
	} {
		if got, want := c.ReplySerializationCycles(), c.SerializationCycles(replyBytes); got != want {
			t.Fatalf("%v: reply serialization %v, want %v", c.Kind, got, want)
		}
	}
	if New(Mesh, 64).ReplySerializationCycles() <= New(Crossbar, 16).ReplySerializationCycles() {
		t.Fatal("flit-serialized mesh reply should cost more than the wide crossbar datapath")
	}
}
