package noc

import (
	"math"

	"scaleout/internal/tech"
)

// PowerBreakdown splits NOC power into link traversal energy (dominant,
// Section 4.4.4) and router energy (buffers + arbitration + switch).
type PowerBreakdown struct {
	LinksW   float64
	RoutersW float64
}

// Total returns the summed NOC power in Watts.
func (p PowerBreakdown) Total() float64 { return p.LinksW + p.RoutersW }

// Per-flit-hop router energies (pJ), calibrated so a 64-core pod under
// scale-out load lands on the Section 4.4.4 totals: mesh ~1.8W, flattened
// butterfly ~1.6W, NOC-Out ~1.3W.
const (
	meshRouterPJ  = 6.0 // 5-port router: buffer write/read + arbitration + switch at every hop
	fbflyRouterPJ = 5.0 // 15-port router, larger fabric but only ~2 traversals
	treeMuxPJ     = 0.5 // two-input mux/demux node
	xbarPortPJ    = 1.0 // dancehall crossbar, per traversal per 8 ports
)

// bitsPerAccess is the request header plus the 72-byte data reply.
const bitsPerAccess = requestBytes*8 + replyBytes*8

// flitsPerAccess returns total flits moved per LLC access at this width.
func (c Config) flitsPerAccess() float64 {
	w := float64(c.linkBits())
	return math.Ceil(requestBytes*8/w) + math.Ceil(replyBytes*8/w)
}

// avgDistanceMM returns the mean one-way physical core-to-LLC distance.
func (c Config) avgDistanceMM() float64 {
	edge := c.tileEdge()
	switch c.Kind {
	case Ideal:
		return 0
	case Crossbar:
		return float64(gridSide(c.Cores)) * edge / 2
	case Mesh, FlattenedButterfly:
		// Same Manhattan wire distance; the butterfly merely traverses
		// fewer routers along the way.
		return meshAvgHops(gridSide(c.Cores)) * edge
	case NOCOut:
		tiles := c.llcTiles()
		cols := 2 * tiles
		rows := int(math.Ceil(float64(c.Cores) / float64(cols)))
		if rows < 1 {
			rows = 1
		}
		tree := (float64(rows) + 1) / 2
		llc := float64(tiles-1) / float64(tiles) * (float64(tiles) + 1) / 3
		return (tree + llc*0.8) * edge // LLC tiles are narrower than core tiles
	default:
		panic("noc: unknown interconnect kind")
	}
}

// routerHopEnergyPJ returns the per-access router energy in pJ.
func (c Config) routerHopEnergyPJ() float64 {
	flits := c.flitsPerAccess()
	switch c.Kind {
	case Ideal:
		return 0
	case Crossbar:
		return flits * xbarPortPJ * float64(c.Cores) / 8
	case Mesh:
		hops := 2 * meshAvgHops(gridSide(c.Cores)) // request + reply paths
		return flits * hops * meshRouterPJ
	case FlattenedButterfly:
		return flits * 2 * 2 * fbflyRouterPJ // <=2 hops each direction
	case NOCOut:
		tiles := c.llcTiles()
		cols := 2 * tiles
		rows := int(math.Ceil(float64(c.Cores) / float64(cols)))
		if rows < 1 {
			rows = 1
		}
		tree := (float64(rows) + 1) / 2
		pRemote := float64(tiles-1) / float64(tiles)
		return flits * (2*tree*treeMuxPJ + 2*pRemote*fbflyRouterPJ)
	default:
		panic("noc: unknown interconnect kind")
	}
}

// PowerW returns the NOC power at the given LLC access rate (accesses per
// second across all cores). Both directions of each access are counted.
func (c Config) PowerW(accessesPerSec float64) PowerBreakdown {
	mm := c.avgDistanceMM()
	linkJPerAccess := float64(bitsPerAccess) * mm * tech.LinkEnergyFJPerBitMM * 1e-15
	routerJPerAccess := c.routerHopEnergyPJ() * 1e-12
	return PowerBreakdown{
		LinksW:   accessesPerSec * linkJPerAccess,
		RoutersW: accessesPerSec * routerJPerAccess,
	}
}
