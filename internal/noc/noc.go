// Package noc models the on-chip interconnects the thesis evaluates:
// an ideal fixed-latency network, a crossbar (dancehall), a 2D mesh, a
// flattened butterfly, and NOC-Out — the reduction-tree / dispersion-tree
// / LLC-butterfly organization of Chapter 4.
//
// The package answers three questions about each network:
//
//  1. latency — zero-load one-way header latency from a core to the LLC
//     (Tables 2.2 and 3.1 give the calibrated values: ideal 4 cycles;
//     crossbar 4/5/7/11 cycles at <=8/16/32/64 cores; mesh 3 cycles/hop),
//     plus serialization delay as a function of link width;
//  2. area — an ORION-like parametric breakdown into links (repeaters),
//     buffers, and crossbar switch fabric (Figure 4.7);
//  3. power — link-dominated traversal energy at a given traffic load
//     (Section 4.4.4).
package noc

import (
	"fmt"
	"math"

	"scaleout/internal/tech"
)

// Kind enumerates the interconnect organizations.
type Kind int

const (
	// Ideal is the fixed 4-cycle interconnect used as the upper bound.
	Ideal Kind = iota
	// Crossbar is the dancehall crossbar of conventional processors and
	// small pods; its latency grows quickly beyond 16-32 ports.
	Crossbar
	// Mesh is the routed, packet-based multi-hop grid of tiled designs.
	Mesh
	// FlattenedButterfly is the richly connected low-diameter topology.
	FlattenedButterfly
	// NOCOut is the thesis's reduction/dispersion-tree organization with
	// a small flattened butterfly connecting only the LLC tiles.
	NOCOut
)

// String names the interconnect as in the thesis.
func (k Kind) String() string {
	switch k {
	case Ideal:
		return "Ideal"
	case Crossbar:
		return "Crossbar"
	case Mesh:
		return "Mesh"
	case FlattenedButterfly:
		return "Flattened Butterfly"
	case NOCOut:
		return "NOC-Out"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// DefaultLinkBits is the baseline link width used in Chapter 4.
const DefaultLinkBits = 128

// Packet sizes: a request is a single header flit; a data reply carries a
// 64-byte line plus a header.
const (
	requestBytes = 8
	replyBytes   = tech.CacheLineBytes + 8
)

// Config describes one interconnect instance.
type Config struct {
	Kind     Kind
	Cores    int     // number of core endpoints
	LLCTiles int     // NOC-Out: LLC tiles in the central row (default 8)
	TileEdge float64 // tile edge length in mm (for wire length and delay)
	LinkBits int     // link width in bits (default 128)

	// WireDelta adjusts the header latency by the given number of
	// cycles (may be negative). 3D-stacked pods use it to model the
	// shorter horizontal wires when a pod folds across dies (Chapter 6),
	// and fixed-distance pods to model wider-port arbitration. The total
	// latency never drops below 2 cycles.
	WireDelta float64

	// NOC-Out scalability mechanisms (Section 4.5.1), for pods beyond
	// 64 cores. Concentration aggregates that many cores at each tree
	// node (default 1), shortening the trees at one extra arbitration
	// cycle. ExpressLinks bypass every other tree node in tall trees,
	// halving the hop count at extra channel cost.
	Concentration int
	ExpressLinks  bool
}

// New returns a Config with defaults filled in. Packet-switched fabrics
// (mesh, flattened butterfly, NOC-Out) default to 128-bit links; the
// dancehall crossbar and the ideal interconnect use wide 256-bit
// datapaths, as crossbar-based designs do not flit-serialize lines.
func New(kind Kind, cores int) Config {
	bits := DefaultLinkBits
	if kind == Crossbar || kind == Ideal {
		bits = 256
	}
	return Config{Kind: kind, Cores: cores, LLCTiles: 8, TileEdge: 1.83, LinkBits: bits}
}

// WithLinkBits returns a copy with the given link width (area-normalized
// studies shrink links until areas match, Section 4.4.3).
func (c Config) WithLinkBits(bits int) Config {
	c.LinkBits = bits
	return c
}

func (c Config) llcTiles() int {
	if c.LLCTiles <= 0 {
		return 8
	}
	return c.LLCTiles
}

func (c Config) linkBits() int {
	if c.LinkBits <= 0 {
		return DefaultLinkBits
	}
	return c.LinkBits
}

func (c Config) tileEdge() float64 {
	if c.TileEdge <= 0 {
		return 1.83
	}
	return c.TileEdge
}

// gridSide returns the side of the smallest square grid holding n tiles.
func gridSide(n int) int {
	if n < 1 {
		return 1
	}
	k := int(math.Ceil(math.Sqrt(float64(n))))
	return k
}

// meshAvgHops is the mean Manhattan distance between two uniformly random
// tiles on a k-by-k grid: 2/3 * (k - 1/k).
func meshAvgHops(k int) float64 {
	if k <= 1 {
		return 1
	}
	return 2.0 / 3.0 * (float64(k) - 1/float64(k))
}

// CrossbarLatency returns the one-way crossbar traversal latency for n
// endpoints (Table 3.1): 4 cycles up to 8 endpoints, then 5, 7, 11 at
// 16, 32, 64, with the increment doubling per further doubling — the poor
// scalability that motivates pods.
func CrossbarLatency(n int) float64 {
	if n <= 8 {
		return 4
	}
	lat, inc := 4.0, 1.0
	for size := 16; ; size *= 2 {
		lat += inc
		if n <= size {
			return lat
		}
		inc *= 2
	}
}

// OneWayLatency returns the zero-load header latency, in cycles, from a
// core to an LLC bank (averaged over banks), including any 3D wire delta.
func (c Config) OneWayLatency() float64 {
	lat := c.baseLatency() + c.WireDelta
	if lat < 2 {
		lat = 2
	}
	return lat
}

func (c Config) baseLatency() float64 {
	switch c.Kind {
	case Ideal:
		return 4
	case Crossbar:
		return CrossbarLatency(c.Cores)
	case Mesh:
		k := gridSide(c.Cores)
		return 3 * meshAvgHops(k)
	case FlattenedButterfly:
		// At most one hop per dimension; each hop is a 3-stage router
		// plus a link covering up to two tiles per cycle.
		k := gridSide(c.Cores)
		avgSpan := (float64(k) + 1) / 3 // mean |i-j| along one dimension
		linkCycles := math.Ceil(avgSpan / 2)
		hops := 2.0
		if k <= 1 {
			hops = 1
		}
		return hops * (3 + linkCycles)
	case NOCOut:
		return c.nocOutLatency()
	default:
		panic("noc: unknown interconnect kind")
	}
}

// nocOutLatency models the reduction tree (1 cycle/hop, average half the
// column height) plus the expected LLC-network hop to reach a non-local
// bank (3-stage router + link).
func (c Config) nocOutLatency() float64 {
	tiles := c.llcTiles()
	cols := 2 * tiles // core columns on both sides of the LLC row
	conc := c.Concentration
	if conc < 1 {
		conc = 1
	}
	rows := int(math.Ceil(float64(c.Cores) / float64(cols*conc)))
	if rows < 1 {
		rows = 1
	}
	treeHops := (float64(rows) + 1) / 2
	if conc > 1 {
		treeHops += 1 // the concentrating mux adds an arbitration stage
	}
	if c.ExpressLinks && rows > 4 {
		// Express channels bypass every other node in tall trees.
		treeHops = treeHops/2 + 1
	}
	// Entering the LLC region costs an arbitration and tile crossing.
	const llcEntry = 2
	// Probability the target bank is not the column's own LLC tile.
	pRemote := float64(tiles-1) / float64(tiles)
	avgSpan := (float64(tiles) + 1) / 3
	linkCycles := math.Ceil(avgSpan / 2)
	return treeHops + llcEntry + pRemote*(3+linkCycles)
}

// SerializationCycles returns the extra cycles to stream a packet's body
// through the link after the header: ceil(bytes*8/width) - 1.
func (c Config) SerializationCycles(bytes int) float64 {
	w := c.linkBits()
	flits := int(math.Ceil(float64(bytes*8) / float64(w)))
	if flits < 1 {
		flits = 1
	}
	return float64(flits - 1)
}

// ReplySerializationCycles returns the serialization cycles of a data
// reply — a cache line plus its header, the packet a simulator's reply
// path streams back to the core. Exposed so timing components consume
// the reply packet size from one place instead of restating it.
func (c Config) ReplySerializationCycles() float64 {
	return c.SerializationCycles(replyBytes)
}

// AccessLatency is the network contribution to an LLC hit as the thesis
// counts it: the header latency through the fabric plus the cycles to
// stream the data reply's body. (The thesis's calibrated interconnect
// latencies — ideal 4 cycles, crossbar 4-11 cycles, mesh 3 cycles/hop —
// are the per-access network cost, with request and pipelined reply
// traversals folded into one term.)
func (c Config) AccessLatency() float64 {
	return c.OneWayLatency() + c.SerializationCycles(replyBytes)
}
