package noc

import "fmt"

// WireName returns the kind's canonical wire token — the lower-case
// name the sweep API and the versioned simulator wire form
// (sim.WireConfig) carry, stable across any reordering of the Kind
// enum. ParseWireKind is its inverse.
func (k Kind) WireName() string {
	switch k {
	case Ideal:
		return "ideal"
	case Crossbar:
		return "crossbar"
	case Mesh:
		return "mesh"
	case FlattenedButterfly:
		return "flattened-butterfly"
	case NOCOut:
		return "noc-out"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseWireKind resolves a canonical wire token (WireName) back to its
// Kind; ok is false for anything else, including the human-friendly
// aliases some CLIs accept.
func ParseWireKind(name string) (Kind, bool) {
	switch name {
	case "ideal":
		return Ideal, true
	case "crossbar":
		return Crossbar, true
	case "mesh":
		return Mesh, true
	case "flattened-butterfly":
		return FlattenedButterfly, true
	case "noc-out":
		return NOCOut, true
	default:
		return 0, false
	}
}

// Wire is the complete JSON form of a Config: every field the
// interconnect model consumes, with the kind carried by name so the
// encoding is self-describing. Unlike the sweep API's symbolic "net"
// field, Wire loses nothing — WireDelta, Concentration, ExpressLinks,
// and a custom TileEdge all travel — which is what lets a cluster
// coordinator ship any interconnect a figure can construct.
type Wire struct {
	Kind          string  `json:"kind"`
	Cores         int     `json:"cores"`
	LLCTiles      int     `json:"llc_tiles,omitempty"`
	TileEdge      float64 `json:"tile_edge,omitempty"`
	LinkBits      int     `json:"link_bits,omitempty"`
	WireDelta     float64 `json:"wire_delta,omitempty"`
	Concentration int     `json:"concentration,omitempty"`
	ExpressLinks  bool    `json:"express_links,omitempty"`
}

// Wire converts the Config to its wire form, field for field.
func (c Config) Wire() Wire {
	return Wire{
		Kind:          c.Kind.WireName(),
		Cores:         c.Cores,
		LLCTiles:      c.LLCTiles,
		TileEdge:      c.TileEdge,
		LinkBits:      c.LinkBits,
		WireDelta:     c.WireDelta,
		Concentration: c.Concentration,
		ExpressLinks:  c.ExpressLinks,
	}
}

// Config converts a decoded wire form back to the Config it encodes.
// It errors on an unknown kind token; numeric fields are carried
// verbatim (the simulators apply their own defaulting and validation).
func (w Wire) Config() (Config, error) {
	kind, ok := ParseWireKind(w.Kind)
	if !ok {
		return Config{}, fmt.Errorf("noc: unknown wire kind %q", w.Kind)
	}
	return Config{
		Kind:          kind,
		Cores:         w.Cores,
		LLCTiles:      w.LLCTiles,
		TileEdge:      w.TileEdge,
		LinkBits:      w.LinkBits,
		WireDelta:     w.WireDelta,
		Concentration: w.Concentration,
		ExpressLinks:  w.ExpressLinks,
	}, nil
}
