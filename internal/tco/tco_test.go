package tco

import (
	"math"
	"testing"

	"scaleout/internal/chip"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

var ws = workload.Suite()

func spec(t *testing.T, org chip.Organization, core tech.CoreType) chip.Spec {
	t.Helper()
	s, ok := chip.Find(chip.TCOCatalog(ws), org, core)
	if !ok {
		t.Fatalf("missing %v (%v)", org, core)
	}
	return s
}

func compose(t *testing.T, s chip.Spec, memGB int) Datacenter {
	t.Helper()
	dc, err := Compose(NewParams(), s, memGB, ws)
	if err != nil {
		t.Fatal(err)
	}
	return dc
}

// Table 5.1 price anchors: conventional at its $800 market price; tiled
// and Scale-Out near $370; the small 1pod dies near $320.
func TestPriceAnchors(t *testing.T) {
	if p := ChipPrice(spec(t, chip.ConventionalOrg, tech.Conventional)); p != 800 {
		t.Fatalf("conventional price %v, want market $800", p)
	}
	if p := ChipPrice(spec(t, chip.ScaleOutOrg, tech.OoO)); p < 340 || p > 400 {
		t.Errorf("Scale-Out (OoO) price %v, thesis ~$370", p)
	}
	if p := ChipPrice(spec(t, chip.OnePodOrg, tech.OoO)); p < 290 || p > 350 {
		t.Errorf("1Pod (OoO) price %v, thesis ~$320", p)
	}
}

// Section 5.2.2: doubling die area adds only ~$50 at 200K volume because
// NRE and mask costs dominate.
func TestNREDominates(t *testing.T) {
	small := EstimatePrice(158, DefaultVolume)
	large := EstimatePrice(263, DefaultVolume)
	if d := large - small; d < 30 || d > 80 {
		t.Fatalf("price delta for +105mm2: $%v, thesis ~$50", d)
	}
	// At tiny volumes, NRE swamps everything.
	if EstimatePrice(263, 40000) < 2*large {
		t.Fatal("40K-volume price should far exceed the 200K price")
	}
	if got := PriceVsVolume(263, []int{40000, 200000, 1000000}); !(got[0] > got[1] && got[1] > got[2]) {
		t.Fatalf("price not falling with volume: %v", got)
	}
	if EstimatePrice(100, 0) <= 0 {
		t.Fatal("degenerate volume")
	}
}

// Section 5.3.1: two conventional sockets per 1U server versus five for
// the low-power 1pod design.
func TestSocketCounts(t *testing.T) {
	conv := compose(t, spec(t, chip.ConventionalOrg, tech.Conventional), 64)
	if conv.Server.Sockets != 2 {
		t.Errorf("conventional sockets %d, thesis 2", conv.Server.Sockets)
	}
	onePod := compose(t, spec(t, chip.OnePodOrg, tech.OoO), 64)
	if onePod.Server.Sockets != 5 {
		t.Errorf("1pod sockets %d, thesis 5", onePod.Server.Sockets)
	}
}

// Figure 5.1: datacenter performance gains over the conventional design —
// 1pod ~4.4x; the in-order Scale-Out design the highest.
func TestDatacenterPerformanceShape(t *testing.T) {
	perf := func(org chip.Organization, core tech.CoreType) float64 {
		return compose(t, spec(t, org, core), 64).PerfIPC
	}
	conv := perf(chip.ConventionalOrg, tech.Conventional)
	onePod := perf(chip.OnePodOrg, tech.OoO)
	soO := perf(chip.ScaleOutOrg, tech.OoO)
	soI := perf(chip.ScaleOutOrg, tech.InOrder)
	if r := onePod / conv; r < 3.2 || r > 5.6 {
		t.Errorf("1pod/conventional %v, thesis ~4.4", r)
	}
	if soO <= onePod {
		t.Error("Scale-Out (OoO) should beat 1pod at the datacenter level")
	}
	if soI <= soO {
		t.Error("in-order Scale-Out should deliver the highest throughput")
	}
}

// Figure 5.2: TCO varies far less than performance across designs.
func TestTCOMuted(t *testing.T) {
	var lo, hi float64
	for i, s := range chip.TCOCatalog(ws) {
		tcoM := compose(t, s, 64).MonthlyTCO().Total()
		if i == 0 {
			lo, hi = tcoM, tcoM
			continue
		}
		lo, hi = math.Min(lo, tcoM), math.Max(hi, tcoM)
	}
	if hi/lo > 1.6 {
		t.Fatalf("TCO spread %vx too wide; thesis shows muted differences", hi/lo)
	}
}

// Section 5.3.1's paradox: the 1pod design, despite a cheaper and more
// efficient chip, does not get a commensurately lower TCO because five
// sockets per server raise acquisition costs.
func TestOnePodTCOParadox(t *testing.T) {
	conv := compose(t, spec(t, chip.ConventionalOrg, tech.Conventional), 64)
	onePod := compose(t, spec(t, chip.OnePodOrg, tech.OoO), 64)
	r := onePod.MonthlyTCO().Total() / conv.MonthlyTCO().Total()
	if r < 0.9 || r > 1.25 {
		t.Fatalf("1pod/conventional TCO ratio %v, thesis ~1.02", r)
	}
}

// Figure 5.3: perf/TCO ordering — Scale-Out designs on top; the in-order
// Scale-Out beats the OoO one; everything beats conventional by >3x.
func TestPerfPerTCOOrdering(t *testing.T) {
	ppt := func(org chip.Organization, core tech.CoreType) float64 {
		return compose(t, spec(t, org, core), 64).PerfPerTCO()
	}
	conv := ppt(chip.ConventionalOrg, tech.Conventional)
	tiled := ppt(chip.TiledOrg, tech.OoO)
	onePod := ppt(chip.OnePodOrg, tech.OoO)
	soO := ppt(chip.ScaleOutOrg, tech.OoO)
	soI := ppt(chip.ScaleOutOrg, tech.InOrder)
	if !(conv < tiled && tiled < onePod && onePod < soO && soO < soI) {
		t.Fatalf("perf/TCO ordering violated: conv %.0f tiled %.0f 1pod %.0f soO %.0f soI %.0f",
			conv, tiled, onePod, soO, soI)
	}
	if r := soI / conv; r < 4.5 || r > 9 {
		t.Errorf("in-order Scale-Out vs conventional perf/TCO %vx, thesis ~7.1x", r)
	}
	if r := soO / onePod; r < 1.1 || r > 1.6 {
		t.Errorf("Scale-Out vs 1pod perf/TCO %vx, thesis ~1.29x", r)
	}
}

// More memory per server lowers perf/TCO (cost up, processor power
// budget down) — the Figure 5.3 trend.
func TestMemoryCapacityTrend(t *testing.T) {
	s := spec(t, chip.ScaleOutOrg, tech.OoO)
	prev := math.Inf(1)
	for _, mem := range []int{32, 64, 128} {
		ppt := compose(t, s, mem).PerfPerTCO()
		if ppt >= prev {
			t.Fatalf("perf/TCO rose with memory at %dGB", mem)
		}
		prev = ppt
	}
}

// Figure 5.5: larger chips are less sensitive to unit price than the
// small 1pod die that populates five sockets per server.
func TestPriceSensitivity(t *testing.T) {
	sens := func(s chip.Spec) float64 {
		dc := compose(t, s, 64)
		cheap := dc.WithChipPrice(100).PerfPerTCO()
		dear := dc.WithChipPrice(800).PerfPerTCO()
		return cheap / dear
	}
	if s1, s2 := sens(spec(t, chip.OnePodOrg, tech.OoO)), sens(spec(t, chip.ScaleOutOrg, tech.OoO)); s1 <= s2 {
		t.Fatalf("1pod price sensitivity %v not above Scale-Out's %v", s1, s2)
	}
}

func TestBreakdownComponents(t *testing.T) {
	dc := compose(t, spec(t, chip.ScaleOutOrg, tech.InOrder), 64)
	b := dc.MonthlyTCO()
	for name, v := range map[string]float64{
		"infrastructure": b.Infrastructure, "serverHW": b.ServerHW,
		"networking": b.Networking, "power": b.Power, "maintenance": b.Maintenance,
	} {
		if v <= 0 {
			t.Errorf("%s component non-positive: %v", name, v)
		}
	}
	if math.Abs(b.Total()-(b.Infrastructure+b.ServerHW+b.Networking+b.Power+b.Maintenance)) > 1e-9 {
		t.Fatal("total != sum of components")
	}
	// Server acquisition and power are the two largest TCO components
	// (Hamilton; Section 5.1) — infrastructure should not dominate.
	if b.Infrastructure > b.ServerHW {
		t.Error("infrastructure exceeds server hardware; expected servers to dominate")
	}
}

func TestComposeValidation(t *testing.T) {
	if _, err := Compose(NewParams(), spec(t, chip.TiledOrg, tech.OoO), 0, ws); err == nil {
		t.Fatal("0GB memory accepted")
	}
}

func TestServerPrice(t *testing.T) {
	dc := compose(t, spec(t, chip.ConventionalOrg, tech.Conventional), 64)
	want := 2*800.0 + 330 + 2*180 + 64*25
	if math.Abs(dc.ServerPrice()-want) > 1e-9 {
		t.Fatalf("server price %v, want %v", dc.ServerPrice(), want)
	}
}

func TestFacilityPowerRespected(t *testing.T) {
	p := NewParams()
	for _, s := range chip.TCOCatalog(ws) {
		dc := compose(t, s, 64)
		rackIT := float64(p.ServersPerRack)*dc.Server.BoardPowerW*p.SPUE + p.NetworkGearW
		if it := float64(dc.Racks) * rackIT; it > p.DatacenterPowerW/p.PUE*1.001 {
			t.Errorf("%s: IT power %v exceeds the facility budget", s.Name(), it)
		}
	}
}
