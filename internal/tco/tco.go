// Package tco implements the EETCO-style datacenter total-cost-of-
// ownership model of Chapter 5: infrastructure (land, building, power
// provisioning and cooling), server and networking hardware, power, and
// maintenance, with the Table 5.2 parameters. It also implements the
// InCyte-style processor price model of Section 5.2.2 and the server/rack/
// datacenter composition rules of Section 5.2.3.
package tco

import (
	"fmt"
	"math"

	"scaleout/internal/chip"
	"scaleout/internal/workload"
)

// Params carries the Table 5.2 cost model constants. NewParams returns
// the thesis values; tests and sensitivity studies may vary them.
type Params struct {
	// Datacenter scale
	DatacenterPowerW float64 // total facility budget (20MW)
	RackPowerW       float64 // per-rack limit (17kW)
	ServersPerRack   int     // 42 x 1U

	// Infrastructure
	RackAreaM2          float64 // rack + inter-rack space
	InfraCostPerM2      float64 // $3000/m^2
	CoolingCostPerWatt  float64 // $12.5/W of critical power
	CoolingSpaceOvhd    float64 // 20% extra floor space
	InfraDepreciationYr float64 // 15 years

	// Efficiency
	SPUE float64 // fans + power supplies (1.3)
	PUE  float64 // facility (1.3)

	// Recurring
	ElectricityPerKWh float64 // $0.07
	PersonnelPerRack  float64 // $200/month

	// Hardware
	NetworkGearW       float64 // 360W per rack
	NetworkGearCost    float64 // $10,000 per rack
	NetworkAmortYr     float64 // 4 years
	MotherboardW       float64 // 25W per 1U
	MotherboardCost    float64 // $330
	DisksPerServer     int
	DiskW              float64 // 10W
	DiskCost           float64 // $180
	DRAMWPerGB         float64 // 1W
	DRAMCostPerGB      float64 // $25
	ServerAmortYr      float64 // 3 years
	DiskMTTFYears      float64 // 100
	DRAMMTTFYearsPerGB float64 // 800 (per GB module group)
	CPUMTTFYears       float64 // 30
}

// NewParams returns the thesis's Table 5.2 parameters.
func NewParams() Params {
	return Params{
		DatacenterPowerW:    20e6,
		RackPowerW:          17e3,
		ServersPerRack:      42,
		RackAreaM2:          0.6 * (1.2 + 1.2),
		InfraCostPerM2:      3000,
		CoolingCostPerWatt:  12.5,
		CoolingSpaceOvhd:    0.20,
		InfraDepreciationYr: 15,
		SPUE:                1.3,
		PUE:                 1.3,
		ElectricityPerKWh:   0.07,
		PersonnelPerRack:    200,
		NetworkGearW:        360,
		NetworkGearCost:     10000,
		NetworkAmortYr:      4,
		MotherboardW:        25,
		MotherboardCost:     330,
		DisksPerServer:      2,
		DiskW:               10,
		DiskCost:            180,
		DRAMWPerGB:          1,
		DRAMCostPerGB:       25,
		ServerAmortYr:       3,
		DiskMTTFYears:       100,
		DRAMMTTFYearsPerGB:  800,
		CPUMTTFYears:        30,
	}
}

// Price model constants (Section 5.2.2), reverse-engineered as the thesis
// did from the Tilera Gx-3036 selling price at a 200K-unit volume with a
// 50% margin: non-recurring engineering and mask costs dominate, so a
// near-doubling of die area adds only ~$50 to the unit price.
const (
	nreAndMaskCost  = 24.4e6 // $ per design
	dieCostPerMM2   = 0.24   // $ per mm^2 (production, yield-adjusted)
	priceMarginMult = 2.0    // 50% margin: price = 2x cost
)

// EstimatePrice returns the selling price of a chip of the given die area
// at the given production volume.
func EstimatePrice(dieAreaMM2 float64, volume int) float64 {
	if volume < 1 {
		volume = 1
	}
	return priceMarginMult * (nreAndMaskCost/float64(volume) + dieCostPerMM2*dieAreaMM2)
}

// DefaultVolume is the production volume assumed in the thesis (200K).
const DefaultVolume = 200000

// ChipPrice returns the modeled price for a catalog design: the known
// market price for the conventional processor (Xeon-class, $800) and the
// volume-estimated price otherwise (Table 5.1).
func ChipPrice(s chip.Spec) float64 {
	if s.Org == chip.ConventionalOrg {
		return 800
	}
	return EstimatePrice(s.DieArea(), DefaultVolume)
}

// ServerConfig describes one 1U server built around a processor design.
type ServerConfig struct {
	Chip        chip.Spec
	ChipPrice   float64
	Sockets     int
	MemoryGB    int
	BoardPowerW float64 // total board power including SPUE at the PSU
}

// Datacenter is a composed facility: racks of identical 1U servers.
type Datacenter struct {
	Params  Params
	Server  ServerConfig
	Racks   int
	PerfIPC float64 // aggregate suite-mean application IPC
}

// socketsPerServer computes how many processors fit a 1U server's power
// budget after the rack- and board-level overheads (Section 5.2.3).
func socketsPerServer(p Params, s chip.Spec, memoryGB int) (int, float64) {
	rackForServers := p.RackPowerW - p.NetworkGearW
	perServer := rackForServers / float64(p.ServersPerRack)
	board := perServer / p.SPUE // fans and PSU losses
	fixed := p.MotherboardW + float64(p.DisksPerServer)*p.DiskW + float64(memoryGB)*p.DRAMWPerGB
	avail := board - fixed
	n := int(avail / s.Power())
	if n < 1 {
		n = 1
	}
	return n, fixed + float64(n)*s.Power()
}

// Compose builds a datacenter around the given chip with the given memory
// per 1U server, under the facility power budget.
func Compose(p Params, s chip.Spec, memoryGB int, ws []workload.Workload) (Datacenter, error) {
	if memoryGB <= 0 {
		return Datacenter{}, fmt.Errorf("tco: %dGB memory per server", memoryGB)
	}
	sockets, boardW := socketsPerServer(p, s, memoryGB)
	server := ServerConfig{
		Chip:        s,
		ChipPrice:   ChipPrice(s),
		Sockets:     sockets,
		MemoryGB:    memoryGB,
		BoardPowerW: boardW,
	}
	// Facility IT power (before PUE) determines the rack count.
	itPower := p.DatacenterPowerW / p.PUE
	rackIT := float64(p.ServersPerRack)*boardW*p.SPUE + p.NetworkGearW
	racks := int(itPower / rackIT)
	if racks < 1 {
		racks = 1
	}
	dc := Datacenter{Params: p, Server: server, Racks: racks}
	dc.PerfIPC = float64(racks*p.ServersPerRack*sockets) * s.IPC(ws)
	return dc, nil
}

// Breakdown itemizes monthly TCO in dollars.
type Breakdown struct {
	Infrastructure float64
	ServerHW       float64
	Networking     float64
	Power          float64
	Maintenance    float64
}

// Total returns the monthly TCO.
func (b Breakdown) Total() float64 {
	return b.Infrastructure + b.ServerHW + b.Networking + b.Power + b.Maintenance
}

// ServerPrice returns the acquisition price of one 1U server.
func (d Datacenter) ServerPrice() float64 {
	s := d.Server
	return float64(s.Sockets)*s.ChipPrice + d.Params.MotherboardCost +
		float64(d.Params.DisksPerServer)*d.Params.DiskCost +
		float64(s.MemoryGB)*d.Params.DRAMCostPerGB
}

// MonthlyTCO computes the itemized monthly total cost of ownership.
func (d Datacenter) MonthlyTCO() Breakdown {
	p := d.Params
	racks := float64(d.Racks)
	servers := racks * float64(p.ServersPerRack)

	// Infrastructure: floor space (with cooling overhead) plus power
	// provisioning and cooling equipment sized to the critical power.
	area := racks * p.RackAreaM2 * (1 + p.CoolingSpaceOvhd)
	critical := servers*d.Server.BoardPowerW*p.SPUE + racks*p.NetworkGearW
	infraCapex := area*p.InfraCostPerM2 + critical*p.CoolingCostPerWatt
	infra := infraCapex / (p.InfraDepreciationYr * 12)

	// Server hardware on a 3-year schedule.
	serverHW := servers * d.ServerPrice() / (p.ServerAmortYr * 12)

	// Networking gear on a 4-year schedule.
	network := racks * p.NetworkGearCost / (p.NetworkAmortYr * 12)

	// Power: consumed IT power times PUE, at the utility rate.
	kwh := critical * p.PUE / 1000 * 24 * 365 / 12
	power := kwh * p.ElectricityPerKWh

	// Maintenance: MTTF-proportional replacements plus personnel.
	diskRepl := servers * float64(p.DisksPerServer) * p.DiskCost / (p.DiskMTTFYears * 12)
	dramRepl := servers * float64(d.Server.MemoryGB) * p.DRAMCostPerGB / (p.DRAMMTTFYearsPerGB * 12)
	cpuRepl := servers * float64(d.Server.Sockets) * d.Server.ChipPrice / (p.CPUMTTFYears * 12)
	personnel := racks * p.PersonnelPerRack
	maint := diskRepl + dramRepl + cpuRepl + personnel

	return Breakdown{
		Infrastructure: infra,
		ServerHW:       serverHW,
		Networking:     network,
		Power:          power,
		Maintenance:    maint,
	}
}

// PerfPerTCO returns performance (aggregate IPC) per monthly TCO dollar,
// scaled by 1000 for readability (IPC per k$/month) — the thesis's
// datacenter efficiency metric (Figure 5.3).
func (d Datacenter) PerfPerTCO() float64 {
	t := d.MonthlyTCO().Total()
	if t == 0 {
		return 0
	}
	return d.PerfIPC / t * 1000
}

// PerfPerWatt returns aggregate IPC per Watt of facility power (Fig 5.4).
func (d Datacenter) PerfPerWatt() float64 {
	return d.PerfIPC / d.Params.DatacenterPowerW * 1000
}

// WithChipPrice returns a copy of the datacenter re-priced with an
// explicit processor price — the Figure 5.5 sensitivity sweep.
func (d Datacenter) WithChipPrice(price float64) Datacenter {
	d.Server.ChipPrice = price
	return d
}

// PriceVsVolume tabulates the estimated price across production volumes,
// used to show how NRE amortization dominates (Section 5.2.2).
func PriceVsVolume(dieAreaMM2 float64, volumes []int) []float64 {
	out := make([]float64, len(volumes))
	for i, v := range volumes {
		out[i] = math.Round(EstimatePrice(dieAreaMM2, v))
	}
	return out
}
