package scaleout

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// docAuditDirs are the packages whose exported surface the repository
// guarantees is documented: the API layers (serve, cluster, exp) and
// the simulator they expose. CI runs this test, so an undocumented
// exported identifier fails the PR — the `revive exported` rule,
// without the dependency.
var docAuditDirs = []string{
	"internal/admit",
	"internal/chaos",
	"internal/cluster",
	"internal/serve",
	"internal/vclock",
	"internal/exp",
	"internal/exp/engine",
	"internal/metrics",
	"internal/sim",
	"internal/store",
	"internal/tier",
}

// TestExportedIdentifiersDocumented parses each audited package and
// requires a doc comment on every exported package-level declaration
// and every exported method with an exported receiver. A grouped
// const/var/type block may carry one comment for the group.
func TestExportedIdentifiersDocumented(t *testing.T) {
	for _, dir := range docAuditDirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			hasPkgDoc := false
			for _, f := range pkg.Files {
				if f.Doc != nil {
					hasPkgDoc = true
				}
				for _, decl := range f.Decls {
					for _, miss := range undocumented(decl) {
						pos := fset.Position(miss.pos)
						t.Errorf("%s:%d: exported %s %s has no doc comment",
							filepath.ToSlash(pos.Filename), pos.Line, miss.kind, miss.name)
					}
				}
			}
			if !hasPkgDoc {
				t.Errorf("%s: package %s has no package doc comment", dir, pkg.Name)
			}
		}
	}
}

type missing struct {
	kind string
	name string
	pos  token.Pos
}

// undocumented returns the exported, comment-less identifiers a
// top-level declaration introduces.
func undocumented(decl ast.Decl) []missing {
	var out []missing
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return nil
		}
		kind := "function"
		name := d.Name.Name
		if d.Recv != nil && len(d.Recv.List) > 0 {
			recv := receiverName(d.Recv.List[0].Type)
			if recv == "" || !ast.IsExported(recv) {
				return nil // method on an unexported type
			}
			kind = "method"
			name = recv + "." + name
		}
		out = append(out, missing{kind, name, d.Pos()})
	case *ast.GenDecl:
		if d.Doc != nil {
			return nil // one comment may cover the whole group
		}
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
					out = append(out, missing{"type", s.Name.Name, s.Pos()})
				}
			case *ast.ValueSpec:
				if s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						kind := "var"
						if d.Tok == token.CONST {
							kind = "const"
						}
						out = append(out, missing{kind, n.Name, n.Pos()})
					}
				}
			}
		}
	}
	return out
}

// receiverName unwraps a method receiver type expression ("*Engine",
// "Func[R]") to its type name.
func receiverName(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr: // generic receiver Func[R]
			expr = e.X
		case *ast.IndexListExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}
