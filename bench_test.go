// Benchmarks regenerating every table and figure of the thesis's
// evaluation (one per artifact, named after it), plus microbenchmarks of
// the substrates. Run with:
//
//	go test -bench=. -benchmem
//
// The Benchmark* bodies call the same generators as `soproc -exp <id>`;
// benchmarking them both regenerates the artifact and tracks the cost of
// doing so.
package scaleout

import (
	"context"
	"testing"

	"scaleout/internal/analytic"
	"scaleout/internal/cache"
	"scaleout/internal/chip"
	"scaleout/internal/core"
	"scaleout/internal/exp"
	"scaleout/internal/figures"
	"scaleout/internal/noc"
	"scaleout/internal/sim"
	"scaleout/internal/stack3d"
	"scaleout/internal/stats"
	"scaleout/internal/tco"
	"scaleout/internal/tech"
	"scaleout/internal/trace"
	"scaleout/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := figures.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

// Chapter 2 — the case for Scale-Out Processors.
func BenchmarkFig2_1(b *testing.B)   { benchExperiment(b, "fig2.1") }
func BenchmarkFig2_2(b *testing.B)   { benchExperiment(b, "fig2.2") }
func BenchmarkFig2_3(b *testing.B)   { benchExperiment(b, "fig2.3") }
func BenchmarkTable2_3(b *testing.B) { benchExperiment(b, "table2.3") }
func BenchmarkTable2_4(b *testing.B) { benchExperiment(b, "table2.4") }

// Chapter 3 — the scale-out design methodology.
func BenchmarkFig3_1(b *testing.B)   { benchExperiment(b, "fig3.1") }
func BenchmarkFig3_3(b *testing.B)   { benchExperiment(b, "fig3.3") }
func BenchmarkFig3_4(b *testing.B)   { benchExperiment(b, "fig3.4") }
func BenchmarkFig3_5(b *testing.B)   { benchExperiment(b, "fig3.5") }
func BenchmarkFig3_6(b *testing.B)   { benchExperiment(b, "fig3.6") }
func BenchmarkTable3_2(b *testing.B) { benchExperiment(b, "table3.2") }

// Chapter 4 — NOC-Out.
func BenchmarkFig4_3(b *testing.B)   { benchExperiment(b, "fig4.3") }
func BenchmarkFig4_6(b *testing.B)   { benchExperiment(b, "fig4.6") }
func BenchmarkFig4_7(b *testing.B)   { benchExperiment(b, "fig4.7") }
func BenchmarkFig4_8(b *testing.B)   { benchExperiment(b, "fig4.8") }
func BenchmarkNoCPower(b *testing.B) { benchExperiment(b, "power4.4") }

// Chapter 5 — datacenter TCO.
func BenchmarkTable5_1(b *testing.B) { benchExperiment(b, "table5.1") }
func BenchmarkFig5_1(b *testing.B)   { benchExperiment(b, "fig5.1") }
func BenchmarkFig5_2(b *testing.B)   { benchExperiment(b, "fig5.2") }
func BenchmarkFig5_3(b *testing.B)   { benchExperiment(b, "fig5.3") }
func BenchmarkFig5_4(b *testing.B)   { benchExperiment(b, "fig5.4") }
func BenchmarkFig5_5(b *testing.B)   { benchExperiment(b, "fig5.5") }

// Chapter 6 — 3D Scale-Out Processors.
func BenchmarkFig6_4(b *testing.B)   { benchExperiment(b, "fig6.4") }
func BenchmarkFig6_5(b *testing.B)   { benchExperiment(b, "fig6.5") }
func BenchmarkFig6_6(b *testing.B)   { benchExperiment(b, "fig6.6") }
func BenchmarkFig6_7(b *testing.B)   { benchExperiment(b, "fig6.7") }
func BenchmarkTable6_2(b *testing.B) { benchExperiment(b, "table6.2") }

// Full-harness regeneration on the experiment engine. Each iteration
// uses a fresh engine (fresh memo), so the numbers measure real
// simulation work; the Serial/Parallel pair tracks the speedup from the
// concurrent sweep runner in the perf trajectory.

func benchRunAll(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		ctx := exp.WithEngine(context.Background(), exp.New(workers))
		if _, err := figures.RunAllContext(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunAllSerial(b *testing.B)   { benchRunAll(b, 1) }
func BenchmarkRunAllParallel(b *testing.B) { benchRunAll(b, 0) }

// Substrate microbenchmarks.

// bench64CorePod measures one kernel's throughput on the
// high-core-count, high-stall pod the wakeup schedule targets.
func bench64CorePod(b *testing.B, run func(sim.Config) (sim.Result, error)) {
	b.Helper()
	ws := workload.Suite()
	cfg := sim.Config{
		Workload: ws[0], CoreType: tech.OoO, Cores: 64, LLCMB: 8,
		Net: noc.New(noc.Mesh, 64), MemChannels: 4,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulator64CorePod(b *testing.B) { bench64CorePod(b, sim.Run) }

// Kernel trajectory: the event-scheduled kernel vs the lock-step
// reference. The Event/Lockstep ratio is the kernel speedup recorded in
// BENCH_kernel.json (`soproc -bench`); both produce byte-identical
// results (TestKernelEquivalence).

func BenchmarkKernelEvent64Core(b *testing.B)    { bench64CorePod(b, sim.Run) }
func BenchmarkKernelLockstep64Core(b *testing.B) { bench64CorePod(b, sim.RunLockstep) }

func BenchmarkAnalyticChipIPC(b *testing.B) {
	ws := workload.Suite()
	d := analytic.NewDesign(tech.OoO, 32, 8, noc.Mesh)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		analytic.SuiteMeanIPC(ws, d)
	}
}

func BenchmarkPodSweep(b *testing.B) {
	ws := workload.Suite()
	space := core.DefaultSweep(tech.OoO)
	n := tech.N40()
	for i := 0; i < b.N; i++ {
		core.Sweep(space, n, ws)
	}
}

func BenchmarkCompose(b *testing.B) {
	ws := workload.Suite()
	pod := core.Pod{Core: tech.OoO, Cores: 16, LLCMB: 4, Net: noc.Crossbar}
	n := tech.N40()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compose(n, pod, ws); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompose3D(b *testing.B) {
	ws := workload.Suite()
	pod := core.Pod{Core: tech.OoO, Cores: 32, LLCMB: 2, Net: noc.Crossbar}
	n := tech.N40For3D()
	for i := 0; i < b.N; i++ {
		if _, err := stack3d.Compose3D(n, pod, 4, stack3d.FixedPod, ws); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCOCompose(b *testing.B) {
	ws := workload.Suite()
	specs := chip.TCOCatalog(ws)
	p := tco.NewParams()
	for i := 0; i < b.N; i++ {
		for _, s := range specs {
			if _, err := tco.Compose(p, s, 64, ws); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkCacheInsertLookup(b *testing.B) {
	c, err := cache.NewSetAssoc(1<<20, 16)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRng(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		block := rng.Uint64() % 100000
		if !c.Lookup(block) {
			c.Insert(block, false)
		}
	}
}

func BenchmarkDirectory(b *testing.B) {
	d, err := cache.NewDirectory(64)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRng(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core := int(rng.Uint64() % 64)
		block := rng.Uint64() % 512
		if rng.Float64() < 0.4 {
			d.Write(core, block)
		} else {
			d.Read(core, block)
		}
	}
}

func BenchmarkNoCLatencyModels(b *testing.B) {
	cfgs := []noc.Config{
		noc.New(noc.Mesh, 64), noc.New(noc.FlattenedButterfly, 64),
		noc.New(noc.NOCOut, 64), noc.New(noc.Crossbar, 16),
	}
	for i := 0; i < b.N; i++ {
		for _, c := range cfgs {
			_ = c.AccessLatency()
			_ = c.Area().Total()
		}
	}
}

// Ablations and extensions.
func BenchmarkAblatePods(b *testing.B)      { benchExperiment(b, "ablate.pods") }
func BenchmarkAblateLLC(b *testing.B)       { benchExperiment(b, "ablate.llc") }
func BenchmarkAblateBanks(b *testing.B)     { benchExperiment(b, "ablate.banks") }
func BenchmarkAblateMSHR(b *testing.B)      { benchExperiment(b, "ablate.mshr") }
func BenchmarkAblateLinkWidth(b *testing.B) { benchExperiment(b, "ablate.linkwidth") }
func BenchmarkAblateSharing(b *testing.B)   { benchExperiment(b, "ablate.sharing") }
func BenchmarkExtHetero(b *testing.B)       { benchExperiment(b, "ext.hetero") }
func BenchmarkExtDVFS(b *testing.B)         { benchExperiment(b, "ext.dvfs") }
func BenchmarkExtStructural(b *testing.B)   { benchExperiment(b, "ext.structural") }

func BenchmarkStructuralSimulator(b *testing.B) {
	ws := workload.Suite()
	cfg := sim.StructuralConfig{
		Workload: ws[0], CoreType: tech.OoO, Cores: 16, LLCMB: 4,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunStructural(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceGenerator(b *testing.B) {
	ws := workload.Suite()
	g, err := trace.NewFromWorkload(ws[0], tech.OoO, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.NextInstr()
		g.NextData()
	}
}

func BenchmarkAblateTCO(b *testing.B) { benchExperiment(b, "ablate.tco") }

func BenchmarkExtNOCOutScale(b *testing.B) { benchExperiment(b, "ext.nocout-scale") }
