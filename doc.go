// Package scaleout is a from-scratch Go reproduction of "Scale-Out
// Processors" (Lotfi-Kamran et al., ISCA 2012, and the EPFL thesis no.
// 5906 that extends it): the performance-density design methodology,
// pod-based Scale-Out Processors, the NOC-Out microarchitecture, the
// datacenter TCO study, and the 3D-stacked extension — together with the
// substrates the study rests on (workload models, an analytic chip
// performance model, a cycle-level multicore simulator, NoC area/power
// models, and an EETCO-style cost model).
//
// Start with examples/quickstart, or regenerate any of the thesis's
// tables and figures with cmd/soproc. To serve the simulator as a
// long-running shared service — named experiments and ad-hoc
// configuration sweeps over HTTP/JSON, with a capacity-bounded memo —
// run cmd/soprocd (endpoints: /healthz, /statsz, /v1/experiments,
// /v1/exp/{id}, /v1/sweep; see internal/serve and examples/serveclient).
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package scaleout
