// Podsweep: the full Chapter 2-3 design-space study, and the canonical
// usage example for the experiment engine (internal/exp). Compares every
// server-processor organization (conventional, tiled, LLC-optimal,
// instruction-replicated, ideal, Scale-Out) at 40nm and 20nm, prints the
// pod performance-density surfaces for both core types, and validates
// the analytic model against the cycle simulator.
//
// The validation sweep is declared as a batch of sim.Configs and handed
// to the engine, which fans the independent points out across
// GOMAXPROCS workers and returns results in input order — the pattern
// every generator in internal/figures follows.
package main

import (
	"context"
	"fmt"
	"log"

	"scaleout/internal/analytic"
	"scaleout/internal/chip"
	"scaleout/internal/core"
	"scaleout/internal/exp"
	"scaleout/internal/noc"
	"scaleout/internal/sim"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

func main() {
	ws := workload.Suite()

	fmt.Println("== Processor catalog (the thesis's Tables 2.3/2.4/3.2) ==")
	for _, node := range []tech.Node{tech.N40(), tech.N20()} {
		fmt.Printf("-- %s --\n", node.Name)
		for _, s := range chip.Catalog(node, ws) {
			fmt.Printf("  %-36s PD %.3f  %3d cores  %4.0fMB  %d MCs  %3.0fmm2  %3.0fW\n",
				s.Name(), s.PD(ws), s.Cores, s.LLCMB, s.MemChannels, s.DieArea(), s.Power())
		}
	}

	fmt.Println("\n== Pod PD surface (crossbar, 40nm) ==")
	for _, coreType := range []tech.CoreType{tech.OoO, tech.InOrder} {
		fmt.Printf("-- %s cores --\n      ", coreType)
		for c := 8; c <= 64; c *= 2 {
			fmt.Printf("%6dc", c)
		}
		fmt.Println()
		for _, llc := range []float64{1, 2, 4, 8} {
			fmt.Printf("%3.0fMB ", llc)
			for c := 8; c <= 64; c *= 2 {
				p := core.Pod{Core: coreType, Cores: c, LLCMB: llc, Net: noc.Crossbar}
				fmt.Printf("%7.3f", p.PD(tech.N40(), ws))
			}
			fmt.Println()
		}
	}

	fmt.Println("\n== Model validation: simulator vs analytic (16-core pod, 4MB) ==")
	// Declare one sweep point per workload and run the batch on the
	// engine; results come back in input order.
	cfgs := make([]sim.Config, len(ws))
	for i, w := range ws {
		cfgs[i] = sim.Config{
			Workload: w, CoreType: tech.OoO, Cores: 16, LLCMB: 4,
			Net: noc.New(noc.Crossbar, 16), DisableSWScaling: true,
		}
	}
	ctx := exp.WithEngine(context.Background(), exp.Default())
	rs, err := exp.Sims(ctx, cfgs)
	if err != nil {
		log.Fatal(err)
	}
	for i, w := range ws {
		model := analytic.ChipIPC(w, analytic.NewDesign(tech.OoO, 16, 4, noc.Crossbar))
		fmt.Printf("  %-16s sim %5.2f  model %5.2f  (%+.1f%%)\n",
			w.Name, rs[i].AppIPC, model, 100*(rs[i].AppIPC-model)/model)
	}
}
