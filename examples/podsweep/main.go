// Podsweep: the full Chapter 2-3 design-space study. Compares every
// server-processor organization (conventional, tiled, LLC-optimal,
// instruction-replicated, ideal, Scale-Out) at 40nm and 20nm, prints the
// pod performance-density surfaces for both core types, and validates the
// analytic model against the cycle simulator on one configuration.
package main

import (
	"fmt"
	"log"

	"scaleout/internal/analytic"
	"scaleout/internal/chip"
	"scaleout/internal/core"
	"scaleout/internal/noc"
	"scaleout/internal/sim"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

func main() {
	ws := workload.Suite()

	fmt.Println("== Processor catalog (the thesis's Tables 2.3/2.4/3.2) ==")
	for _, node := range []tech.Node{tech.N40(), tech.N20()} {
		fmt.Printf("-- %s --\n", node.Name)
		for _, s := range chip.Catalog(node, ws) {
			fmt.Printf("  %-36s PD %.3f  %3d cores  %4.0fMB  %d MCs  %3.0fmm2  %3.0fW\n",
				s.Name(), s.PD(ws), s.Cores, s.LLCMB, s.MemChannels, s.DieArea(), s.Power())
		}
	}

	fmt.Println("\n== Pod PD surface (crossbar, 40nm) ==")
	for _, coreType := range []tech.CoreType{tech.OoO, tech.InOrder} {
		fmt.Printf("-- %s cores --\n      ", coreType)
		for c := 8; c <= 64; c *= 2 {
			fmt.Printf("%6dc", c)
		}
		fmt.Println()
		for _, llc := range []float64{1, 2, 4, 8} {
			fmt.Printf("%3.0fMB ", llc)
			for c := 8; c <= 64; c *= 2 {
				p := core.Pod{Core: coreType, Cores: c, LLCMB: llc, Net: noc.Crossbar}
				fmt.Printf("%7.3f", p.PD(tech.N40(), ws))
			}
			fmt.Println()
		}
	}

	fmt.Println("\n== Model validation: simulator vs analytic (16-core pod, 4MB) ==")
	for _, w := range ws {
		cfg := sim.Config{
			Workload: w, CoreType: tech.OoO, Cores: 16, LLCMB: 4,
			Net: noc.New(noc.Crossbar, 16), DisableSWScaling: true,
		}
		r, err := sim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		model := analytic.ChipIPC(w, analytic.NewDesign(tech.OoO, 16, 4, noc.Crossbar))
		fmt.Printf("  %-16s sim %5.2f  model %5.2f  (%+.1f%%)\n",
			w.Name, r.AppIPC, model, 100*(r.AppIPC-model)/model)
	}
}
