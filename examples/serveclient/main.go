// Serveclient: the soprocd HTTP service, demonstrated end to end in
// one process. Starts the serve layer (internal/serve) on a loopback
// listener — exactly what `soprocd` runs behind its flags — then acts
// as a client: discovers the experiment registry, fetches a figure as
// CSV, posts an ad-hoc /v1/sweep batch with a deliberately duplicated
// point, and reads /statsz to show the duplicate was a memo hit.
//
// Against a real deployment, replace the base URL with the daemon's
// address; the wire format is identical.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	"scaleout/internal/exp"
	"scaleout/internal/serve"
	"scaleout/internal/workload"
)

func main() {
	// A bounded engine, as soprocd runs: memory stays bounded no matter
	// how many distinct configurations clients sweep.
	eng := exp.NewBounded(0, 1024)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, serve.New(eng).Handler())
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	var exps serve.ExperimentsResponse
	getJSON(base+"/v1/experiments", &exps)
	fmt.Printf("\n%d experiments registered; first five: %s\n",
		len(exps.Experiments), strings.Join(exps.Experiments[:5], ", "))

	fmt.Println("\n== GET /v1/exp/fig2.1?format=csv (byte-identical to `soproc -exp fig2.1 -format csv`) ==")
	fmt.Print(getText(base + "/v1/exp/fig2.1?format=csv"))

	fmt.Println("== POST /v1/sweep: a 16-core pod across LLC sizes, one point duplicated ==")
	req := serve.SweepRequest{Points: []serve.SweepPoint{
		{Workload: workload.DataServing, Core: "ooo", Cores: 16, LLCMB: 2},
		{Workload: workload.DataServing, Core: "ooo", Cores: 16, LLCMB: 4},
		{Workload: workload.DataServing, Core: "ooo", Cores: 16, LLCMB: 8},
		{Workload: workload.DataServing, Core: "ooo", Cores: 16, LLCMB: 4}, // memo hit
	}}
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var sweep serve.SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sweep); err != nil {
		log.Fatal(err)
	}
	for i, r := range sweep.Results {
		fmt.Printf("  point %d: %4.0fMB LLC  AppIPC %5.2f  off-chip %5.1f GB/s\n",
			i, req.Points[i].LLCMB, r.Sim.AppIPC, r.Sim.OffChipGBs)
	}

	var stats serve.StatsResponse
	getJSON(base+"/statsz", &stats)
	fmt.Printf("\n/statsz: %d computed, %d served from memo, %d evicted (capacity %d)\n",
		stats.Memo.Misses, stats.Memo.Hits, stats.Memo.Evictions, stats.Memo.Capacity)
}

func getText(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s: %s", url, resp.Status, b)
	}
	return string(b)
}

func getJSON(url string, v any) {
	body := getText(url)
	if err := json.Unmarshal([]byte(body), v); err != nil {
		log.Fatal(err)
	}
}
