// Nocout: the Chapter-4 microarchitecture study on the cycle simulator.
// Compares the mesh, flattened butterfly, and NOC-Out organizations of a
// 64-core pod on performance, NoC area, and NoC power — at full link
// width and under a fixed NOC area budget — and reports the coherence
// snoop rates the NOC-Out design exploits.
package main

import (
	"fmt"
	"log"

	"scaleout/internal/noc"
	"scaleout/internal/sim"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

const (
	cores    = 64
	llcMB    = 8.0
	channels = 4
)

func runPod(w workload.Workload, kind noc.Kind, linkBits int) sim.Result {
	active := cores
	if w.ScaleLimit < active {
		active = w.ScaleLimit
	}
	net := noc.New(kind, cores)
	if kind == noc.NOCOut {
		net.Cores = active // scale-limited workloads run adjacent to the LLC
	}
	if linkBits > 0 {
		net = net.WithLinkBits(linkBits)
	}
	r, err := sim.Run(sim.Config{
		Workload: w, CoreType: tech.OoO, Cores: active, LLCMB: llcMB,
		Net: net, MemChannels: channels,
	})
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	ws := workload.Suite()
	kinds := []noc.Kind{noc.Mesh, noc.FlattenedButterfly, noc.NOCOut}

	fmt.Println("== NoC area (mm2) and zero-load latency (cycles) ==")
	for _, kind := range kinds {
		cfg := noc.New(kind, cores)
		a := cfg.Area()
		fmt.Printf("  %-20s links %5.2f  buffers %5.2f  xbar %5.2f  total %5.2f  latency %.1f\n",
			kind, a.LinksMM2, a.BuffersMM2, a.CrossbarMM2, a.Total(), cfg.OneWayLatency())
	}

	fmt.Println("\n== Performance normalized to mesh (full-width links) ==")
	for _, w := range ws {
		mesh := runPod(w, noc.Mesh, 0).AppIPC
		fb := runPod(w, noc.FlattenedButterfly, 0).AppIPC
		no := runPod(w, noc.NOCOut, 0).AppIPC
		fmt.Printf("  %-16s mesh 1.00  fbfly %.2f  nocout %.2f\n", w.Name, fb/mesh, no/mesh)
	}

	budget := noc.New(noc.NOCOut, cores).Area().Total()
	fmt.Printf("\n== Performance under a fixed NOC budget of %.1fmm2 ==\n", budget)
	meshBits := noc.New(noc.Mesh, cores).LinkBitsForArea(budget)
	fbBits := noc.New(noc.FlattenedButterfly, cores).LinkBitsForArea(budget)
	fmt.Printf("  link widths: mesh %db, fbfly %db, nocout %db\n",
		meshBits, fbBits, noc.DefaultLinkBits)
	for _, w := range ws {
		mesh := runPod(w, noc.Mesh, meshBits).AppIPC
		fb := runPod(w, noc.FlattenedButterfly, fbBits).AppIPC
		no := runPod(w, noc.NOCOut, 0).AppIPC
		fmt.Printf("  %-16s mesh 1.00  fbfly %.2f  nocout %.2f\n", w.Name, fb/mesh, no/mesh)
	}

	fmt.Println("\n== Snoop rates (the near-absent coherence NOC-Out exploits) ==")
	for _, w := range ws {
		r := runPod(w, noc.Mesh, 0)
		fmt.Printf("  %-16s %.1f%% of LLC accesses\n", w.Name, r.SnoopRatePct)
	}

	fmt.Println("\n== NoC power at measured load (W) ==")
	for _, kind := range kinds {
		var aps float64
		for _, w := range ws {
			r := runPod(w, kind, 0)
			aps += float64(r.LLCAccesses) / float64(r.Cycles) * tech.ClockGHz * 1e9
		}
		aps /= float64(len(ws))
		p := noc.New(kind, cores).PowerW(aps)
		fmt.Printf("  %-20s links %.2f  routers %.2f  total %.2f\n",
			kind, p.LinksW, p.RoutersW, p.Total())
	}
}
