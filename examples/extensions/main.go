// Extensions: the future-work directions the thesis names (Section 8.1),
// built on the pod abstraction — heterogeneous Scale-Out Processors
// mixing OoO and in-order pods, voltage-frequency scaling on pods, and
// the structural simulator cross-checking the statistical calibration
// with real cache arrays.
package main

import (
	"fmt"
	"log"

	"scaleout/internal/core"
	"scaleout/internal/dvfs"
	"scaleout/internal/noc"
	"scaleout/internal/sim"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

func main() {
	ws := workload.Suite()
	n := tech.N40()
	podO := core.Pod{Core: tech.OoO, Cores: 16, LLCMB: 4, Net: noc.Crossbar}
	podI := core.Pod{Core: tech.InOrder, Cores: 32, LLCMB: 2, Net: noc.Crossbar}

	fmt.Println("== Heterogeneous Scale-Out Processors (OoO x in-order pods) ==")
	mixes, err := core.EnumerateHetero(n, podO, podI, ws)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feasible mixes at %s: %d; Pareto frontier:\n", n.Name, len(mixes))
	for _, c := range core.ParetoHetero(mixes, ws) {
		fmt.Printf("  %d x %v + %d x %v: %3d cores, %.0fmm2, %.0fW, IPC %.1f, PD %.3f\n",
			c.CountA, c.PodA, c.CountB, c.PodB, c.Cores(), c.DieArea(), c.Power(),
			c.IPC(ws), c.PD(ws))
	}

	fmt.Println("\n== DVFS on the 16-core pod ==")
	results, err := dvfs.Sweep(podO, n, ws, dvfs.DefaultCurve())
	if err != nil {
		log.Fatal(err)
	}
	best, err := dvfs.MostEfficient(results)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		mark := "  "
		if r.Point == best.Point {
			mark = "<- most efficient"
		}
		fmt.Printf("  %-14s %5.1f GIPS  %5.1fW  %.2f GIPS/W %s\n",
			r.Point, r.GIPS, r.PowerW, r.GIPSPerW, mark)
	}

	fmt.Println("\n== Structural simulation (real L1/LLC arrays, synthetic streams) ==")
	for _, name := range []string{workload.WebSearch, workload.MediaStreaming} {
		w, _ := workload.ByName(name)
		r, err := sim.RunStructural(sim.StructuralConfig{
			Workload: w, CoreType: tech.OoO, Cores: 16, LLCMB: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s emergent L1I %.1f MPKI, L1D %.1f MPKI, LLC miss %.1f%%, IPC %.2f\n",
			w.Name, r.L1IMPKI, r.L1DMPKI, r.LLCMissPct, r.AppIPC)
	}
}
