// Datacenter: the Chapter-5 total-cost-of-ownership study. Builds a 20MW
// facility around each server-chip design, itemizes monthly TCO, and
// ranks the designs by performance per TCO dollar and per Watt across
// server memory capacities.
package main

import (
	"fmt"
	"log"

	"scaleout/internal/chip"
	"scaleout/internal/tco"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

func main() {
	ws := workload.Suite()
	params := tco.NewParams()

	fmt.Println("== Server chips (Table 5.1) ==")
	specs := chip.TCOCatalog(ws)
	for _, s := range specs {
		fmt.Printf("  %-22s %3d cores  %4.0fMB  %d ch  %3.0fW  %3.0fmm2  $%3.0f\n",
			s.Name(), s.Cores, s.LLCMB, s.MemChannels, s.Power(), s.DieArea(),
			tco.ChipPrice(s))
	}

	fmt.Println("\n== 20MW datacenter, 64GB per 1U server ==")
	var baseTCO, basePerf float64
	for i, s := range specs {
		dc, err := tco.Compose(params, s, 64, ws)
		if err != nil {
			log.Fatal(err)
		}
		b := dc.MonthlyTCO()
		if i == 0 {
			baseTCO, basePerf = b.Total(), dc.PerfIPC
		}
		fmt.Printf("  %-22s %d sockets/1U  %4d racks  perf %.2fx  TCO %.2fx  perf/TCO %6.0f\n",
			s.Name(), dc.Server.Sockets, dc.Racks, dc.PerfIPC/basePerf,
			b.Total()/baseTCO, dc.PerfPerTCO())
	}

	fmt.Println("\n== TCO breakdown for the in-order Scale-Out design ($/month) ==")
	soI, _ := chip.Find(specs, chip.ScaleOutOrg, tech.InOrder)
	dc, err := tco.Compose(params, soI, 64, ws)
	if err != nil {
		log.Fatal(err)
	}
	b := dc.MonthlyTCO()
	fmt.Printf("  infrastructure %10.0f\n  server HW      %10.0f\n"+
		"  networking     %10.0f\n  power          %10.0f\n  maintenance    %10.0f\n"+
		"  total          %10.0f\n",
		b.Infrastructure, b.ServerHW, b.Networking, b.Power, b.Maintenance, b.Total())

	fmt.Println("\n== Memory capacity sensitivity (perf/TCO) ==")
	for _, s := range specs {
		fmt.Printf("  %-22s", s.Name())
		for _, mem := range []int{32, 64, 128} {
			dc, err := tco.Compose(params, s, mem, ws)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %3dGB: %6.0f", mem, dc.PerfPerTCO())
		}
		fmt.Println()
	}
}
