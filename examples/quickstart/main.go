// Quickstart: derive a performance-density-optimal pod with the scale-out
// design methodology and compose a Scale-Out Processor from it — the
// Chapter-3 workflow in a dozen calls.
package main

import (
	"fmt"
	"log"

	"scaleout/internal/core"
	"scaleout/internal/noc"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

func main() {
	ws := workload.Suite()
	node := tech.N40()

	// 1. Sweep the pod design space: crossbar pods, 1-8MB LLCs, up to 64
	//    out-of-order cores, evaluated with the analytic model.
	space := core.SweepSpace{
		Core:     tech.OoO,
		MaxCores: 64,
		LLCSizes: []float64{1, 2, 4, 8},
		Nets:     []noc.Kind{noc.Crossbar},
	}
	points := core.Sweep(space, node, ws)

	// 2. Find the PD-optimal configuration, then apply the thesis's
	//    engineering judgment: prefer a pod of at most 16 cores if one
	//    sits within 5% of the optimum (crossbar complexity, software
	//    scalability, coherence).
	opt, err := core.Optimal(points)
	if err != nil {
		log.Fatal(err)
	}
	pod, err := core.NearOptimal(points, 0.05, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PD-optimal pod:  %v  (PD %.3f IPC/mm2)\n", opt.Pod, opt.PD)
	fmt.Printf("selected pod:    %v  (PD %.3f, within 5%% of optimum)\n", pod.Pod, pod.PD)
	fmt.Printf("pod area %.0fmm2, power %.0fW, worst-case bandwidth %.1fGB/s\n\n",
		pod.Pod.Area(node), pod.Pod.Power(node), pod.Pod.PeakBandwidthGBs(ws))

	// 3. Compose a Scale-Out Processor: replicate the pod — each a
	//    stand-alone server with no inter-pod coherence — to the chip's
	//    area, power, and bandwidth budgets.
	chip, err := core.Compose(node, pod.Pod, ws)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Scale-Out Processor at %s: %d x %v pods, %d memory channels (%s-limited)\n",
		node.Name, chip.Pods, chip.Pod, chip.MemChannels, chip.Limit)
	fmt.Printf("  die %.0fmm2  TDP %.0fW  suite-mean IPC %.1f  PD %.3f  perf/W %.2f\n",
		chip.DieArea(), chip.Power(), chip.IPC(ws), chip.PD(ws), chip.PerfPerWatt(ws))

	// 4. Project to 20nm: the same pod, more of them — optimality-
	//    preserving scaling with no redesign.
	chip20, err := core.Compose(tech.N20(), pod.Pod, ws)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at %s: %d pods, %d channels, PD %.3f (%.1fx the 40nm design)\n",
		tech.N20().Name, chip20.Pods, chip20.MemChannels, chip20.PD(ws),
		chip20.PD(ws)/chip.PD(ws))
}
