// Command cluster demonstrates the sharded sweep engine
// (internal/cluster): it starts three in-process soprocd replicas,
// points a coordinator engine at them, regenerates every experiment
// through the cluster, and verifies the output is byte-identical to a
// single-node run — with the memo spread across the replicas instead of
// resident in one process. It then runs a fast-tier sweep
// (internal/tier) through the same coordinator and verifies the tier
// split survives forwarding: escalated points route to the replicas
// like any structural point, while surrogate-answered points never
// leave the coordinator.
//
// Run with:
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"scaleout/internal/cluster"
	"scaleout/internal/exp"
	"scaleout/internal/figures"
	"scaleout/internal/noc"
	"scaleout/internal/serve"
	"scaleout/internal/sim"
	"scaleout/internal/tech"
	"scaleout/internal/tier"
	"scaleout/internal/workload"
)

// replica is one in-process soprocd: its own engine (its shard of the
// memo) behind the serve handler on a loopback port.
type replica struct {
	addr string
	eng  *exp.Engine
}

func startReplica() (replica, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return replica{}, err
	}
	eng := exp.NewBounded(0, 4096)
	go http.Serve(ln, serve.New(eng).Handler())
	return replica{addr: ln.Addr().String(), eng: eng}, nil
}

func renderAll(ctx context.Context) (string, error) {
	tables, err := figures.RunAllContext(ctx)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, t := range tables {
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String(), nil
}

func main() {
	reps := make([]replica, 3)
	addrs := make([]string, 3)
	for i := range reps {
		r, err := startReplica()
		if err != nil {
			log.Fatal(err)
		}
		reps[i], addrs[i] = r, r.addr
	}
	fmt.Printf("three in-process replicas: %s\n\n", strings.Join(addrs, ", "))

	coord, err := cluster.New(addrs)
	if err != nil {
		log.Fatal(err)
	}
	eng := exp.New(0)
	eng.SetRoute(coord.Route)

	start := time.Now()
	clustered, err := renderAll(exp.WithEngine(context.Background(), eng))
	if err != nil {
		log.Fatal(err)
	}
	clusterTime := time.Since(start)

	start = time.Now()
	local, err := renderAll(exp.WithEngine(context.Background(), exp.New(0)))
	if err != nil {
		log.Fatal(err)
	}
	localTime := time.Since(start)

	if clustered != local {
		log.Fatal("cluster output differs from single-node output")
	}
	fmt.Printf("every experiment regenerated through the cluster: byte-identical to single-node\n")
	fmt.Printf("  cluster %s, single-node %s\n\n", clusterTime.Round(time.Millisecond), localTime.Round(time.Millisecond))

	st := coord.Stats()
	if st.Unroutable != 0 || st.LocalFallbacks != 0 {
		// The wire form carries every valid configuration, so a full
		// regeneration — ch4's WireDelta pods and the extension studies
		// included — must shard completely.
		log.Fatalf("%d points were unroutable and %d fell back locally; every figure point must shard", st.Unroutable, st.LocalFallbacks)
	}
	fmt.Printf("coordinator: %d points routed in %d posts, every point representable on the wire\n",
		st.Routed, st.Posts)
	fmt.Println("memo spread (each replica owns a disjoint shard of the design space):")
	for i, r := range reps {
		es := r.eng.Stats()
		fmt.Printf("  replica %d (%s): %d points computed, %d resident\n", i+1, r.addr, es.Misses, es.MemoSize)
	}

	// Tiered evaluation over the same cluster: calibrate a small grid,
	// then sweep structural configurations at an uncalibrated seed in
	// fast mode under a top-4 rank-edge decision. Certified interior
	// points are answered from the analytic surrogate on the
	// coordinator; only escalated points become routable work.
	cal, err := tier.Calibrate(context.Background(), tier.Options{
		Cores: []int{16}, LLCMB: []float64{2, 4, 8}, Nets: []noc.Kind{noc.Crossbar},
	})
	if err != nil {
		log.Fatal(err)
	}
	ev := tier.New(cal, tier.Fast)
	var sweep []sim.StructuralConfig
	for _, w := range workload.Suite() {
		for _, llc := range []float64{2, 4, 8} {
			sweep = append(sweep, sim.StructuralConfig{
				Workload: w, CoreType: tech.OoO, Cores: 16, LLCMB: llc, Seed: 2,
			})
		}
	}
	before := coord.Stats()
	if _, _, err := ev.StructuralsDecided(exp.WithEngine(context.Background(), eng), sweep, tier.TopK{K: 4}); err != nil {
		log.Fatal(err)
	}
	ts := ev.Stats()
	delta := coord.Stats().Routed - before.Routed
	fmt.Printf("\ntiered fast sweep through the cluster: %d points scored, %d surrogate-served, %d escalated\n",
		ts.Scored, ts.SurrogateServed, ts.Escalated)
	if ts.Escalated != delta {
		log.Fatalf("escalated %d points but the coordinator routed %d", ts.Escalated, delta)
	}
	fmt.Printf("  all %d escalated points routed to replicas; %d surrogate answers never left the coordinator\n",
		delta, ts.SurrogateServed)
}
