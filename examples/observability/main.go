// Observability: the daemon's metrics and decision-trace surfaces,
// demonstrated end to end in one process. Starts the serve layer with
// observability enabled — exactly what `soprocd -trace-level
// decisions` runs behind its flags — drives a sweep with a duplicated
// point through it, then scrapes `GET /metricsz` (Prometheus text
// format, parsed back with the package's own strict parser) and reads
// `GET /v1/trace` to show every point's resolution recorded with its
// source.
//
// Against a real deployment, point a Prometheus scraper at /metricsz;
// the format is the standard 0.0.4 text exposition.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sort"
	"strings"

	"scaleout/internal/exp"
	"scaleout/internal/metrics"
	"scaleout/internal/serve"
	"scaleout/internal/workload"
)

func main() {
	eng := exp.NewBounded(0, 1024)
	srv := serve.New(eng)
	// soprocd does this when -trace-level decisions is set; without
	// TraceDecisions, /v1/trace answers {"enabled": false}.
	srv.EnableObservability(serve.ObservabilityOptions{TraceDecisions: true})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	fmt.Println("\n== POST /v1/sweep: three points, one duplicated ==")
	req := serve.SweepRequest{Points: []serve.SweepPoint{
		{Workload: workload.WebSearch, Core: "ooo", Cores: 16, LLCMB: 2},
		{Workload: workload.WebSearch, Core: "ooo", Cores: 16, LLCMB: 4},
		{Workload: workload.WebSearch, Core: "ooo", Cores: 16, LLCMB: 4}, // memo hit
	}}
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	fmt.Println("  status:", resp.Status)

	fmt.Println("\n== GET /metricsz: engine families from the scrape ==")
	page := getText(base + "/metricsz")
	fams, err := metrics.ParseText(page)
	if err != nil {
		log.Fatalf("scrape does not parse: %v", err)
	}
	var names []string
	for name := range fams {
		if strings.HasPrefix(name, "soproc_engine_") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fam := fams[name]
		for _, s := range fam.Samples {
			fmt.Printf("  %-45s %g\n", s.Name, s.Value)
		}
	}

	fmt.Println("\n== GET /v1/trace?n=10: one decision per point, newest last ==")
	var trace serve.TraceResponse
	if err := json.Unmarshal([]byte(getText(base+"/v1/trace?n=10")), &trace); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  enabled=%v capacity=%d total=%d\n", trace.Enabled, trace.Capacity, trace.Total)
	for _, d := range trace.Decisions {
		fmt.Printf("  seq %d  key %s  source %-9s latency %.3fms\n",
			d.Seq, d.Key, d.Source, d.LatencySeconds*1e3)
	}
}

func getText(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s: %s", url, resp.Status, b)
	}
	return string(b)
}
