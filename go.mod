module scaleout

go 1.22
