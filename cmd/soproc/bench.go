package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"scaleout/internal/analytic"
	"scaleout/internal/exp"
	"scaleout/internal/figures"
	"scaleout/internal/noc"
	"scaleout/internal/sim"
	"scaleout/internal/store"
	"scaleout/internal/tech"
	"scaleout/internal/tier"
	"scaleout/internal/workload"
)

// The kernel benchmark harness behind `soproc -bench`: it times
// representative sweep points — and the full figure harness — on the
// event-scheduled kernel and on the lock-step reference kernel, prints
// the comparison, and records it as JSON (BENCH_kernel.json). The file
// seeds the repo's performance trajectory: CI runs a one-iteration
// smoke of the same harness, and EXPERIMENTS.md quotes its numbers.

// benchPoint is one measured configuration. The tiered points
// (tiered16/32/64, runall_tiered) reuse the two timing columns as
// tiered-vs-untiered: EventNs is the tiered evaluation, LockstepNs the
// full simulation of the same work, Speedup their ratio; they
// additionally record the analytic surrogate's scoring cost and the
// fraction of points that escalated to the structural simulator. The
// store-warm points (runall_store_warm, structural16_store_warm) reuse
// the columns as disk-vs-simulated: EventNs is the same work served
// from a warm persistent result store, LockstepNs its simulated cost.
type benchPoint struct {
	Name       string  `json:"name"`
	EventNs    int64   `json:"event_ns_per_point"`
	LockstepNs int64   `json:"lockstep_ns_per_point"`
	Speedup    float64 `json:"speedup"`
	// SurrogateNs and EscalationRate are omitted for non-tiered points.
	SurrogateNs    int64   `json:"surrogate_ns_per_point,omitempty"`
	EscalationRate float64 `json:"escalation_rate,omitempty"`
}

// benchReport is the BENCH_kernel.json schema.
type benchReport struct {
	Harness    string       `json:"harness"`
	GoVersion  string       `json:"go_version"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Iterations int          `json:"iterations"`
	Points     []benchPoint `json:"points"`
}

// timeRuns reports the mean wall time of iters calls to f after one
// unmeasured warmup call.
func timeRuns(iters int, f func() error) (time.Duration, error) {
	if err := f(); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(iters), nil
}

// runBench measures every benchmark point on both kernels and writes
// the report to path. A non-empty cpuProfile path wraps the whole
// measurement in a CPU profile, so a throughput regression caught by
// CI's smoke floors is diagnosable straight from the build artifacts.
func runBench(path string, iters, workers int, cpuProfile string) error {
	if iters < 1 {
		iters = 1
	}
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	ws := workload.Suite()
	simPoints := []struct {
		name string
		cfg  sim.Config
	}{
		// The pod every chapter sweeps over.
		{"pod16-crossbar", sim.Config{Workload: ws[0], CoreType: tech.OoO, Cores: 16, LLCMB: 4,
			Net: noc.New(noc.Crossbar, 16)}},
		// The high-core-count, high-stall point the wakeup schedule
		// targets (also BenchmarkKernelEvent64Core).
		{"pod64-mesh", sim.Config{Workload: ws[0], CoreType: tech.OoO, Cores: 64, LLCMB: 8,
			Net: noc.New(noc.Mesh, 64), MemChannels: 4}},
		// NOC-Out's halved bank accept rate produces extra queueing.
		{"pod64-nocout", sim.Config{Workload: ws[0], CoreType: tech.OoO, Cores: 64, LLCMB: 8,
			Net: noc.New(noc.NOCOut, 64)}},
		// Blocking loads: in-order cores spend most cycles stalled.
		{"pod32-inorder-mesh", sim.Config{Workload: ws[0], CoreType: tech.InOrder, Cores: 32, LLCMB: 2,
			Net: noc.New(noc.Mesh, 32)}},
	}

	report := benchReport{
		Harness:    "soproc -bench",
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Iterations: iters,
	}
	measure := func(name string, f func() error) (benchPoint, error) {
		sim.UseLockstepKernel(false)
		event, err := timeRuns(iters, f)
		if err != nil {
			return benchPoint{}, fmt.Errorf("%s (event): %w", name, err)
		}
		sim.UseLockstepKernel(true)
		lockstep, err := timeRuns(iters, f)
		sim.UseLockstepKernel(false)
		if err != nil {
			return benchPoint{}, fmt.Errorf("%s (lockstep): %w", name, err)
		}
		p := benchPoint{
			Name:       name,
			EventNs:    event.Nanoseconds(),
			LockstepNs: lockstep.Nanoseconds(),
			Speedup:    float64(lockstep) / float64(event),
		}
		fmt.Printf("%-20s event %12s   lockstep %12s   speedup %.2fx\n",
			p.Name, event.Round(time.Microsecond), lockstep.Round(time.Microsecond), p.Speedup)
		return p, nil
	}

	for _, pt := range simPoints {
		cfg := pt.cfg
		p, err := measure(pt.name, func() error {
			_, err := sim.Run(cfg)
			return err
		})
		if err != nil {
			return err
		}
		report.Points = append(report.Points, p)
	}

	// Structural points at 16/32/64 cores: the emergent-cache mode has
	// its own hot path (trace generation, real tag arrays, MSHRs), and
	// it is where the O(1) cache hierarchy and the machine pool earn
	// their keep. The 16-core point is the thesis pod; the larger ones
	// scale the bank count and contention.
	structPoints := []struct {
		name string
		cfg  sim.StructuralConfig
	}{
		{"structural16", sim.StructuralConfig{Workload: ws[0], CoreType: tech.OoO, Cores: 16, LLCMB: 4}},
		{"structural32", sim.StructuralConfig{Workload: ws[0], CoreType: tech.OoO, Cores: 32, LLCMB: 8,
			Net: noc.New(noc.Mesh, 32)}},
		{"structural64", sim.StructuralConfig{Workload: ws[0], CoreType: tech.OoO, Cores: 64, LLCMB: 8,
			Net: noc.New(noc.Mesh, 64), MemChannels: 4}},
	}
	var structural16Ns int64
	for _, pt := range structPoints {
		scfg := pt.cfg
		p, err := measure(pt.name, func() error {
			_, err := sim.RunStructural(scfg)
			return err
		})
		if err != nil {
			return err
		}
		if pt.name == "structural16" {
			structural16Ns = p.EventNs
		}
		report.Points = append(report.Points, p)
	}

	// The whole harness: every figure on a fresh engine per run, so the
	// number includes real simulation work, not memo hits.
	p, err := measure("runall", func() error {
		ctx := exp.WithEngine(context.Background(), exp.New(workers))
		_, err := figures.RunAllContext(ctx)
		return err
	})
	if err != nil {
		return err
	}
	report.Points = append(report.Points, p)

	tiered, err := benchTiered(iters, workers, p.EventNs)
	if err != nil {
		return err
	}
	report.Points = append(report.Points, tiered...)

	stored, err := benchStore(iters, workers, p.EventNs, structural16Ns)
	if err != nil {
		return err
	}
	report.Points = append(report.Points, stored...)

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// benchTiered measures the tiered evaluator. tiered16/32/64 run a
// fast-mode structural sweep (the workload suite across LLC sizes, at a
// seed the calibration grid never anchored) under a top-4 rank-edge
// decision, against the same sweep fully simulated; runall_tiered
// regenerates every figure in exact tier mode against a calibration
// that recorded the whole suite, against runallNs (the untiered harness
// time measured just before). Calibration itself is never timed — it is
// the one-off cost the tiers amortize.
func benchTiered(iters, workers int, runallNs int64) ([]benchPoint, error) {
	ws := workload.Suite()
	gridCal, err := tier.Calibrate(context.Background(), tier.Options{Workers: workers})
	if err != nil {
		return nil, fmt.Errorf("tiered calibration: %w", err)
	}

	var points []benchPoint
	emit := func(p benchPoint) {
		fmt.Printf("%-20s tiered %12s   full %12s   speedup %.2fx   surrogate %8s   escalation %.2f\n",
			p.Name,
			time.Duration(p.EventNs).Round(time.Microsecond),
			time.Duration(p.LockstepNs).Round(time.Microsecond),
			p.Speedup,
			time.Duration(p.SurrogateNs).Round(time.Nanosecond),
			p.EscalationRate)
		points = append(points, p)
	}

	for _, n := range []int{16, 32, 64} {
		var batch []sim.StructuralConfig
		for _, w := range ws {
			for _, llc := range []float64{2, 4, 8} {
				batch = append(batch, sim.StructuralConfig{
					Workload: w, CoreType: tech.OoO, Cores: n, LLCMB: llc, Seed: 2,
				})
			}
		}
		name := fmt.Sprintf("tiered%d", n)
		ev := tier.New(gridCal, tier.Fast)
		decision := tier.TopK{K: 4}
		tiered, err := timeRuns(iters, func() error {
			// A fresh engine per run: escalated points must simulate,
			// not hit a memo warmed by the previous iteration.
			ctx := exp.WithEngine(context.Background(), exp.New(workers))
			_, _, err := ev.StructuralsDecided(ctx, batch, decision)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		full, err := timeRuns(iters, func() error {
			ctx := exp.WithEngine(context.Background(), exp.New(workers))
			_, err := exp.Structurals(ctx, batch)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s (full): %w", name, err)
		}
		surrogate, err := timeRuns(iters, func() error {
			for _, c := range batch {
				cc, err := c.Canonical()
				if err != nil {
					return err
				}
				analytic.Surrogate(analytic.SurrogateSpec{
					Workload:    cc.Workload,
					Design:      analytic.DesignFor(cc.CoreType, cc.Cores, cc.LLCMB, cc.Net),
					MSHRs:       cc.L1MSHRs,
					SWScaling:   true,
					MemChannels: cc.MemChannels,
				})
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("%s (surrogate): %w", name, err)
		}
		emit(benchPoint{
			Name:           name,
			EventNs:        tiered.Nanoseconds() / int64(len(batch)),
			LockstepNs:     full.Nanoseconds() / int64(len(batch)),
			Speedup:        float64(full) / float64(tiered),
			SurrogateNs:    surrogate.Nanoseconds() / int64(len(batch)),
			EscalationRate: ev.Stats().EscalationRate,
		})
	}

	// The exact tier over the whole harness: anchors recorded from one
	// full regeneration serve every figure point byte-identically.
	suiteCal, err := tier.Calibrate(context.Background(), tier.Options{
		Workers: workers,
		Suites: func(ctx context.Context) error {
			_, err := figures.RunAllContext(ctx)
			return err
		},
	})
	if err != nil {
		return nil, fmt.Errorf("suite calibration: %w", err)
	}
	evExact := tier.New(suiteCal, tier.Exact)
	tiered, err := timeRuns(iters, func() error {
		ctx := exp.WithEngine(context.Background(), exp.New(workers))
		ctx = exp.WithTier(ctx, evExact)
		_, err := figures.RunAllContext(ctx)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("runall_tiered: %w", err)
	}
	emit(benchPoint{
		Name:           "runall_tiered",
		EventNs:        tiered.Nanoseconds(),
		LockstepNs:     runallNs,
		Speedup:        float64(runallNs) / float64(tiered.Nanoseconds()),
		EscalationRate: evExact.Stats().EscalationRate,
	})
	return points, nil
}

// benchStore measures disk-warm serving from the persistent result
// store (internal/store): one unmeasured cold pass populates a store in
// a temporary directory, then each measured run drives the same work
// through a fresh engine with the store installed, so every point is a
// disk probe plus a JSON decode instead of a simulation. EventNs is the
// warm cost; LockstepNs the simulated cost of the same work measured
// earlier in the harness (runall and structural16).
func benchStore(iters, workers int, runallNs, structural16Ns int64) ([]benchPoint, error) {
	dir, err := os.MkdirTemp("", "sostore-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	defer st.Close()

	withStore := func() context.Context {
		eng := exp.New(workers)
		eng.SetStore(st)
		return exp.WithEngine(context.Background(), eng)
	}

	var points []benchPoint
	emit := func(name string, warm time.Duration, coldNs int64) {
		p := benchPoint{
			Name:       name,
			EventNs:    warm.Nanoseconds(),
			LockstepNs: coldNs,
			Speedup:    float64(coldNs) / float64(warm.Nanoseconds()),
		}
		fmt.Printf("%-24s warm %12s   cold %12s   speedup %.2fx\n",
			p.Name, warm.Round(time.Microsecond), time.Duration(coldNs).Round(time.Microsecond), p.Speedup)
		points = append(points, p)
	}

	// timeRuns's unmeasured warmup call doubles as the cold populating
	// pass: its simulations write through to the store, so the measured
	// iterations (each on a fresh engine) serve entirely from disk.
	warm, err := timeRuns(iters, func() error {
		_, err := figures.RunAllContext(withStore())
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("runall_store_warm: %w", err)
	}
	emit("runall_store_warm", warm, runallNs)

	ws := workload.Suite()
	scfg := sim.StructuralConfig{Workload: ws[0], CoreType: tech.OoO, Cores: 16, LLCMB: 4}
	warm, err = timeRuns(iters, func() error {
		_, err := exp.Structurals(withStore(), []sim.StructuralConfig{scfg})
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("structural16_store_warm: %w", err)
	}
	emit("structural16_store_warm", warm, structural16Ns)
	return points, nil
}
