package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"scaleout/internal/exp"
	"scaleout/internal/figures"
	"scaleout/internal/noc"
	"scaleout/internal/sim"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// The kernel benchmark harness behind `soproc -bench`: it times
// representative sweep points — and the full figure harness — on the
// event-scheduled kernel and on the lock-step reference kernel, prints
// the comparison, and records it as JSON (BENCH_kernel.json). The file
// seeds the repo's performance trajectory: CI runs a one-iteration
// smoke of the same harness, and EXPERIMENTS.md quotes its numbers.

// benchPoint is one measured configuration.
type benchPoint struct {
	Name       string  `json:"name"`
	EventNs    int64   `json:"event_ns_per_point"`
	LockstepNs int64   `json:"lockstep_ns_per_point"`
	Speedup    float64 `json:"speedup"`
}

// benchReport is the BENCH_kernel.json schema.
type benchReport struct {
	Harness    string       `json:"harness"`
	GoVersion  string       `json:"go_version"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Iterations int          `json:"iterations"`
	Points     []benchPoint `json:"points"`
}

// timeRuns reports the mean wall time of iters calls to f after one
// unmeasured warmup call.
func timeRuns(iters int, f func() error) (time.Duration, error) {
	if err := f(); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(iters), nil
}

// runBench measures every benchmark point on both kernels and writes
// the report to path. A non-empty cpuProfile path wraps the whole
// measurement in a CPU profile, so a throughput regression caught by
// CI's smoke floors is diagnosable straight from the build artifacts.
func runBench(path string, iters, workers int, cpuProfile string) error {
	if iters < 1 {
		iters = 1
	}
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	ws := workload.Suite()
	simPoints := []struct {
		name string
		cfg  sim.Config
	}{
		// The pod every chapter sweeps over.
		{"pod16-crossbar", sim.Config{Workload: ws[0], CoreType: tech.OoO, Cores: 16, LLCMB: 4,
			Net: noc.New(noc.Crossbar, 16)}},
		// The high-core-count, high-stall point the wakeup schedule
		// targets (also BenchmarkKernelEvent64Core).
		{"pod64-mesh", sim.Config{Workload: ws[0], CoreType: tech.OoO, Cores: 64, LLCMB: 8,
			Net: noc.New(noc.Mesh, 64), MemChannels: 4}},
		// NOC-Out's halved bank accept rate produces extra queueing.
		{"pod64-nocout", sim.Config{Workload: ws[0], CoreType: tech.OoO, Cores: 64, LLCMB: 8,
			Net: noc.New(noc.NOCOut, 64)}},
		// Blocking loads: in-order cores spend most cycles stalled.
		{"pod32-inorder-mesh", sim.Config{Workload: ws[0], CoreType: tech.InOrder, Cores: 32, LLCMB: 2,
			Net: noc.New(noc.Mesh, 32)}},
	}

	report := benchReport{
		Harness:    "soproc -bench",
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Iterations: iters,
	}
	measure := func(name string, f func() error) (benchPoint, error) {
		sim.UseLockstepKernel(false)
		event, err := timeRuns(iters, f)
		if err != nil {
			return benchPoint{}, fmt.Errorf("%s (event): %w", name, err)
		}
		sim.UseLockstepKernel(true)
		lockstep, err := timeRuns(iters, f)
		sim.UseLockstepKernel(false)
		if err != nil {
			return benchPoint{}, fmt.Errorf("%s (lockstep): %w", name, err)
		}
		p := benchPoint{
			Name:       name,
			EventNs:    event.Nanoseconds(),
			LockstepNs: lockstep.Nanoseconds(),
			Speedup:    float64(lockstep) / float64(event),
		}
		fmt.Printf("%-20s event %12s   lockstep %12s   speedup %.2fx\n",
			p.Name, event.Round(time.Microsecond), lockstep.Round(time.Microsecond), p.Speedup)
		return p, nil
	}

	for _, pt := range simPoints {
		cfg := pt.cfg
		p, err := measure(pt.name, func() error {
			_, err := sim.Run(cfg)
			return err
		})
		if err != nil {
			return err
		}
		report.Points = append(report.Points, p)
	}

	// Structural points at 16/32/64 cores: the emergent-cache mode has
	// its own hot path (trace generation, real tag arrays, MSHRs), and
	// it is where the O(1) cache hierarchy and the machine pool earn
	// their keep. The 16-core point is the thesis pod; the larger ones
	// scale the bank count and contention.
	structPoints := []struct {
		name string
		cfg  sim.StructuralConfig
	}{
		{"structural16", sim.StructuralConfig{Workload: ws[0], CoreType: tech.OoO, Cores: 16, LLCMB: 4}},
		{"structural32", sim.StructuralConfig{Workload: ws[0], CoreType: tech.OoO, Cores: 32, LLCMB: 8,
			Net: noc.New(noc.Mesh, 32)}},
		{"structural64", sim.StructuralConfig{Workload: ws[0], CoreType: tech.OoO, Cores: 64, LLCMB: 8,
			Net: noc.New(noc.Mesh, 64), MemChannels: 4}},
	}
	for _, pt := range structPoints {
		scfg := pt.cfg
		p, err := measure(pt.name, func() error {
			_, err := sim.RunStructural(scfg)
			return err
		})
		if err != nil {
			return err
		}
		report.Points = append(report.Points, p)
	}

	// The whole harness: every figure on a fresh engine per run, so the
	// number includes real simulation work, not memo hits.
	p, err := measure("runall", func() error {
		ctx := exp.WithEngine(context.Background(), exp.New(workers))
		_, err := figures.RunAllContext(ctx)
		return err
	})
	if err != nil {
		return err
	}
	report.Points = append(report.Points, p)

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
