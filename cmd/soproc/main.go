// Command soproc regenerates the thesis's tables and figures from the
// models and simulator in this repository.
//
// Usage:
//
//	soproc -list                 list experiment IDs
//	soproc -exp fig4.6           run one experiment
//	soproc -exp fig4.6 -format csv   ... as CSV (formats: table, csv;
//	                             anything else is a usage error, exit 2)
//	soproc -all                  run every experiment
//	soproc -all -parallel 8      ... on an 8-worker engine
//	soproc -all -timeout 2m      ... aborting after two minutes
//	soproc -all -peers a:8080,b:8080   ... sharded across a soprocd
//	                             cluster by configuration fingerprint
//	                             (internal/cluster); output is
//	                             byte-identical to a local run
//	soproc -all -store           persist every simulated result in the
//	                             .sostore/ log; a second -store run
//	                             serves entirely from disk (milliseconds,
//	                             byte-identical). -store-dir relocates
//	                             the log; -stats-json dumps the engine
//	                             and store counters for scripting
//	soproc -bench                time the kernels, write BENCH_kernel.json
//	soproc -all -tier exact -calibration cal.json
//	                             tiered regeneration: anchors recorded by
//	                             cmd/calibrate serve matching points without
//	                             re-simulating; output stays byte-identical
//	soproc -all -tier fast -calibration cal.json
//	                             ... additionally serve certified interior
//	                             points from the analytic surrogate
//	                             (approximate, explicitly opted in)
//	soproc -all -trace-level decisions -trace-out trace.jsonl
//	                             stream one JSON line per engine decision
//	                             (memo hit, store hit, remote, simulated,
//	                             eviction) to trace.jsonl — stderr when
//	                             -trace-out is empty. Stdout stays
//	                             byte-identical to an untraced run
//
// To serve the same experiments and ad-hoc sweeps over HTTP from a
// long-running process, see cmd/soprocd; its /v1/exp/{id} responses are
// byte-identical to this CLI's stdout for the same experiment and
// format.
//
// Experiments run on the parallel, memoizing engine (internal/exp):
// sweep points fan out across -parallel workers (default GOMAXPROCS)
// and identical configurations shared between figures are simulated
// once. Output is deterministic — independent of the worker count and
// of which simulation kernel runs the points.
//
// -bench times representative sweep points — including structural
// points at 16/32/64 cores — and the full harness on the
// event-scheduled kernel and the lock-step reference kernel and records
// ns/point plus speedups in BENCH_kernel.json (see -bench-out,
// -bench-iters) — the repo's kernel performance trajectory. -cpuprofile
// additionally captures a CPU profile of the whole benchmark run, so a
// CI smoke failure ships its own diagnosis.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"scaleout/internal/cluster"
	"scaleout/internal/exp"
	"scaleout/internal/exp/engine"
	"scaleout/internal/figures"
	"scaleout/internal/metrics"
	"scaleout/internal/store"
	"scaleout/internal/tier"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs")
	expID := flag.String("exp", "", "experiment ID to run (e.g. fig2.2, table3.2)")
	all := flag.Bool("all", false, "run every experiment")
	format := flag.String("format", "table", "output format: table | csv")
	parallel := flag.Int("parallel", 0, "engine worker-pool size (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "abort if regeneration exceeds this duration (0 = none)")
	verbose := flag.Bool("v", false, "report engine statistics on stderr")
	peers := flag.String("peers", "", "comma-separated soprocd replicas (host:port) to shard simulator points across")
	tierName := flag.String("tier", "off", "tiered evaluation: off | exact (anchor-served, byte-identical) | fast (surrogate for certified interior points)")
	calPath := flag.String("calibration", "", "calibration.json from cmd/calibrate (with -tier)")
	useStore := flag.Bool("store", false, "persist simulator results in -store-dir; a later run serves matching points from disk instead of re-simulating")
	storeDir := flag.String("store-dir", store.DefaultDir, "persistent result store directory (with -store)")
	statsJSON := flag.String("stats-json", "", "write engine and store statistics as JSON to this path after the run")
	bench := flag.Bool("bench", false, "benchmark the simulation kernels and write a JSON report")
	benchOut := flag.String("bench-out", "BENCH_kernel.json", "benchmark report path (with -bench)")
	benchIters := flag.Int("bench-iters", 5, "measured iterations per benchmark point (with -bench)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this path (with -bench)")
	traceLevel := flag.String("trace-level", "off", "decision tracing: off, or decisions to stream one JSON line per engine decision to -trace-out")
	traceOut := flag.String("trace-out", "", "decision-trace destination path (with -trace-level decisions; empty = stderr)")
	flag.Parse()
	if *traceLevel != "off" && *traceLevel != "decisions" {
		fmt.Fprintf(os.Stderr, "soproc: -trace-level must be off or decisions, got %q\n", *traceLevel)
		flag.Usage()
		os.Exit(2)
	}

	if *bench {
		if err := runBench(*benchOut, *benchIters, *parallel, *cpuProfile); err != nil {
			fail(err)
		}
		return
	}

	// An unknown -format must be a hard usage error, not a silent fall
	// back to table output.
	render, err := figures.Renderer(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "soproc:", err)
		flag.Usage()
		os.Exit(2)
	}

	eng := exp.New(*parallel)
	if *traceLevel == "decisions" {
		flush, err := traceDecisions(eng, *traceOut)
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := flush(); err != nil {
				fmt.Fprintln(os.Stderr, "soproc: trace:", err)
			}
		}()
	}
	var st *store.Store
	if *useStore {
		st, err = store.Open(*storeDir)
		if err != nil {
			fail(err)
		}
		defer st.Close()
		eng.SetStore(st)
	}
	var coord *cluster.Coordinator
	if *peers != "" {
		var err error
		coord, err = cluster.New(strings.Split(*peers, ","))
		if err != nil {
			fail(err)
		}
		eng.SetRoute(coord.Route)
	}
	ctx := exp.WithEngine(context.Background(), eng)
	var ev *tier.Evaluator
	if *tierName != "off" {
		mode, ok := tier.ParseMode(*tierName)
		if !ok {
			fmt.Fprintf(os.Stderr, "soproc: unknown -tier %q (want off, exact, or fast)\n", *tierName)
			flag.Usage()
			os.Exit(2)
		}
		var cal *tier.Calibration
		if *calPath != "" {
			cal, err = tier.Load(*calPath)
			if err != nil {
				fail(err)
			}
		}
		ev = tier.New(cal, mode)
		ctx = exp.WithTier(ctx, ev)
	} else if *calPath != "" {
		fmt.Fprintln(os.Stderr, "soproc: -calibration requires -tier exact or -tier fast")
		flag.Usage()
		os.Exit(2)
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	switch {
	case *list:
		for _, id := range figures.IDs() {
			fmt.Println(id)
		}
		return
	case *all:
		tables, err := figures.RunAllContext(ctx)
		if err != nil {
			fail(err)
		}
		for _, t := range tables {
			fmt.Println(render(t))
		}
	case *expID != "":
		t, err := figures.RunContext(ctx, *expID)
		if err != nil {
			fail(err)
		}
		fmt.Println(render(t))
	default:
		flag.Usage()
		os.Exit(2)
	}
	if *statsJSON != "" {
		if err := writeStatsJSON(*statsJSON, eng, st, coord); err != nil {
			fail(err)
		}
	}
	if *verbose {
		es := eng.Stats()
		fmt.Fprintf(os.Stderr, "soproc: %d workers, %d points simulated, %d served from memo, %d from store, %s\n",
			eng.Workers(), es.Misses, es.Hits, es.StoreHits, time.Since(start).Round(time.Millisecond))
		if st != nil {
			ss := st.Stats()
			fmt.Fprintf(os.Stderr, "soproc: store: %d entries (%d loaded), %d disk hits, %d appends, %d bytes\n",
				ss.Entries, ss.Loaded, ss.DiskHits, ss.Appends, ss.Bytes)
		}
		if ev != nil {
			ts := ev.Stats()
			fmt.Fprintf(os.Stderr, "soproc: tier: %d scored, %d anchor hits, %d surrogate, %d escalated (rate %.3f)\n",
				ts.Scored, ts.AnchorHits, ts.SurrogateServed, ts.Escalated, ts.EscalationRate)
		}
		if coord != nil {
			cs := coord.Stats()
			fmt.Fprintf(os.Stderr, "soproc: cluster: %d routed in %d posts, %d failovers, %d rejects, %d local fallbacks, %d unroutable\n",
				cs.Routed, cs.Posts, cs.Failovers, cs.Rejects, cs.LocalFallbacks, cs.Unroutable)
			for _, p := range cs.Peers {
				fmt.Fprintf(os.Stderr, "soproc:   %s: %d points, %d failures\n", p.Addr, p.Sent, p.Failures)
			}
		}
	}
}

// writeStatsJSON dumps the run's engine (and, with -store, store; with
// -peers, cluster) counters as JSON — the machine-readable form CI
// asserts on: a disk-warm run must show engine.misses == 0 while
// store.disk_hits covers every simulator point, and a clustered run
// must show cluster.unroutable == 0 with engine.remote > 0 (every
// point representable on the wire and computed on a replica).
func writeStatsJSON(path string, eng *exp.Engine, st *store.Store, coord *cluster.Coordinator) error {
	es := eng.Stats()
	var dump struct {
		Engine struct {
			Hits      int64 `json:"hits"`
			Misses    int64 `json:"misses"`
			StoreHits int64 `json:"store_hits"`
			Remote    int64 `json:"remote"`
		} `json:"engine"`
		Store   *store.Stats   `json:"store,omitempty"`
		Cluster *cluster.Stats `json:"cluster,omitempty"`
	}
	dump.Engine.Hits = es.Hits
	dump.Engine.Misses = es.Misses
	dump.Engine.StoreHits = es.StoreHits
	dump.Engine.Remote = es.Remote
	if st != nil {
		ss := st.Stats()
		dump.Store = &ss
	}
	if coord != nil {
		cs := coord.Stats()
		dump.Cluster = &cs
	}
	data, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// traceDecisions streams every engine decision as one JSON line
// (metrics.Decision shape, keys condensed to fingerprints) to path —
// stderr when path is empty — and returns the flush-and-close
// function. Trace output never touches stdout, so a traced run's
// tables stay byte-identical to an untraced run's.
func traceDecisions(eng *exp.Engine, path string) (flush func() error, err error) {
	w := io.Writer(os.Stderr)
	var f *os.File
	if path != "" && path != "-" {
		f, err = os.Create(path)
		if err != nil {
			return nil, err
		}
		w = f
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	var (
		mu  sync.Mutex
		seq uint64
	)
	eng.SetDecisionHook(func(d engine.Decision) {
		mu.Lock()
		defer mu.Unlock()
		seq++
		// Encode into the buffered writer only; a disk flush per point
		// would put file latency on the engine's resolution path.
		enc.Encode(metrics.Decision{
			Seq:              seq,
			UnixNanos:        time.Now().UnixNano(),
			Key:              metrics.KeyFingerprint(d.Key),
			Source:           d.Source,
			Replica:          d.Replica,
			Rank:             d.Rank,
			Retries:          d.Retries,
			QueueWaitSeconds: d.QueueWait.Seconds(),
			LatencySeconds:   d.Latency.Seconds(),
			Err:              d.Err,
		})
	})
	return func() error {
		eng.SetDecisionHook(nil)
		mu.Lock()
		defer mu.Unlock()
		ferr := bw.Flush()
		if f != nil {
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
		}
		return ferr
	}, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "soproc:", err)
	os.Exit(1)
}
