// Command soproc regenerates the thesis's tables and figures from the
// models and simulator in this repository.
//
// Usage:
//
//	soproc -list            list experiment IDs
//	soproc -exp fig4.6      run one experiment
//	soproc -all             run every experiment
package main

import (
	"flag"
	"fmt"
	"os"

	"scaleout/internal/figures"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs")
	exp := flag.String("exp", "", "experiment ID to run (e.g. fig2.2, table3.2)")
	all := flag.Bool("all", false, "run every experiment")
	format := flag.String("format", "table", "output format: table | csv")
	flag.Parse()

	render := func(t figures.Table) string {
		if *format == "csv" {
			return t.CSV()
		}
		return t.String()
	}

	switch {
	case *list:
		for _, id := range figures.IDs() {
			fmt.Println(id)
		}
	case *all:
		tables, err := figures.RunAll()
		if err != nil {
			fail(err)
		}
		for _, t := range tables {
			fmt.Println(render(t))
		}
	case *exp != "":
		t, err := figures.Run(*exp)
		if err != nil {
			fail(err)
		}
		fmt.Println(render(t))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "soproc:", err)
	os.Exit(1)
}
