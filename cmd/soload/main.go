// Command soload drives a running soprocd (or a coordinator fronting a
// cluster) with a reproducible sweep-point workload and reports the
// latency distribution it observed — the load generator behind the
// observability CI stage and EXPERIMENTS.md's serving numbers.
//
// Usage:
//
//	soload -target http://127.0.0.1:8080 -rate 50 -duration 10s
//	                             fire the figure-suite sweep points at
//	                             50 requests/sec for 10 seconds
//	soload -phases 20x5s,100x5s  two phases: 20 req/s then 100 req/s
//	soload -points pts.json      replay wire-form configurations (a JSON
//	                             array of sim.WireConfig objects) instead
//	                             of the figure suite
//	soload -batch 16             points per /v1/sweep request (default 1)
//	soload -tier fast            request surrogate service for certified
//	                             points (daemon needs -calibration)
//	soload -csv timeline.csv     per-second timeline: sent, completed,
//	                             shed, errors, p50/p95/p99/max ms
//	soload -lint-metrics http://127.0.0.1:8080/metricsz
//	                             scrape a /metricsz page, validate the
//	                             Prometheus text format, and lint metric
//	                             names instead of generating load
//
// The generator is open loop: requests fire on the configured schedule
// whether or not earlier ones have returned, so a saturated daemon
// sheds (429) rather than silently slowing the offered rate. Shed
// responses count separately from errors — against an admission
// controller they are the expected overload behaviour — and the exit
// status is 0 as long as at least one request completed.
//
// Workload points replay deterministically: the figure suite is
// deduplicated by canonical fingerprint and sorted by memo key, then
// requests walk that sequence round-robin. Repeats are intentional —
// they exercise the daemon's memo exactly the way overlapping client
// sweeps do.
package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"scaleout/internal/admit"
	"scaleout/internal/exp"
	"scaleout/internal/figures"
	"scaleout/internal/metrics"
	"scaleout/internal/serve"
	"scaleout/internal/sim"
)

func main() {
	target := flag.String("target", "http://127.0.0.1:8080", "soprocd base URL")
	rate := flag.Float64("rate", 20, "request rate in requests/sec (single phase; see -phases)")
	duration := flag.Duration("duration", 5*time.Second, "phase length (single phase; see -phases)")
	phasesArg := flag.String("phases", "", "comma-separated RATExDUR phases, e.g. 20x5s,100x10s (overrides -rate/-duration)")
	pointsPath := flag.String("points", "", "JSON array of wire-form configurations to replay (default: the figure suite)")
	batch := flag.Int("batch", 1, "points per /v1/sweep request")
	tierName := flag.String("tier", "", "sweep tier to request: exact (default) or fast")
	clientID := flag.String("client", "soload", "X-Soproc-Client identity for admission accounting")
	timeout := flag.Duration("request-timeout", time.Minute, "per-request HTTP timeout")
	csvPath := flag.String("csv", "", "write the per-second timeline as CSV to this path")
	lintURL := flag.String("lint-metrics", "", "scrape this /metricsz URL, validate format and metric names, and exit (no load)")
	flag.Parse()

	if *lintURL != "" {
		if err := lintMetrics(*lintURL); err != nil {
			fail(err)
		}
		return
	}

	phases, err := parsePhases(*phasesArg, *rate, *duration)
	if err != nil {
		fail(err)
	}
	if *batch < 1 || *batch > serve.MaxSweepPoints {
		fail(fmt.Errorf("-batch must be in [1, %d], got %d", serve.MaxSweepPoints, *batch))
	}

	points, err := loadPoints(*pointsPath)
	if err != nil {
		fail(err)
	}
	fmt.Printf("soload: %d distinct points, %d phase(s), target %s\n", len(points), len(phases), *target)

	run := newRun(*target, *tierName, *clientID, points, *batch, *timeout)
	for i, ph := range phases {
		run.runPhase(i, ph)
	}
	run.wg.Wait()

	completed := run.report(os.Stdout, phases)
	if *csvPath != "" {
		if err := run.writeCSV(*csvPath, phases); err != nil {
			fail(err)
		}
	}
	if completed == 0 {
		fail(fmt.Errorf("no request completed against %s", *target))
	}
}

// phase is one constant-rate segment of the schedule.
type phase struct {
	rate float64
	dur  time.Duration
}

// parsePhases resolves -phases (RATExDUR, comma-separated) or falls
// back to the single -rate/-duration phase.
func parsePhases(arg string, rate float64, dur time.Duration) ([]phase, error) {
	if arg == "" {
		if rate <= 0 || dur <= 0 {
			return nil, fmt.Errorf("-rate and -duration must be positive")
		}
		return []phase{{rate: rate, dur: dur}}, nil
	}
	var phases []phase
	for _, spec := range strings.Split(arg, ",") {
		r, d, ok := strings.Cut(spec, "x")
		if !ok {
			return nil, fmt.Errorf("bad phase %q (want RATExDUR, e.g. 50x10s)", spec)
		}
		rv, err := strconv.ParseFloat(r, 64)
		if err != nil || rv <= 0 {
			return nil, fmt.Errorf("bad phase rate %q (want a positive number)", r)
		}
		dv, err := time.ParseDuration(d)
		if err != nil || dv <= 0 {
			return nil, fmt.Errorf("bad phase duration %q: %v", d, err)
		}
		phases = append(phases, phase{rate: rv, dur: dv})
	}
	return phases, nil
}

// loadPoints builds the replay sequence: the wire-form configurations
// in path (a JSON array), or — with no -points — every distinct
// configuration the figure suite would simulate, collected by running
// the unmodified generators over a tier that records instead of
// simulating, then sorted by memo key so every soload run replays the
// identical sequence.
func loadPoints(path string) ([]serve.SweepPoint, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var raws []json.RawMessage
		if err := json.Unmarshal(data, &raws); err != nil {
			return nil, fmt.Errorf("%s: want a JSON array of wire configurations: %w", path, err)
		}
		points := make([]serve.SweepPoint, 0, len(raws))
		for i, raw := range raws {
			if _, err := sim.UnmarshalWire(raw); err != nil {
				return nil, fmt.Errorf("%s: point %d: %w", path, i, err)
			}
			points = append(points, serve.SweepPoint{Config: raw})
		}
		if len(points) == 0 {
			return nil, fmt.Errorf("%s: no points", path)
		}
		return points, nil
	}
	return suitePoints()
}

// pointCollector implements exp.Tier by recording every configuration
// batch and answering with zero-valued results: installing it under the
// figure generators enumerates the suite's simulator points without
// running a single simulation.
type pointCollector struct {
	mu      sync.Mutex
	sims    map[string]sim.Config
	structs map[string]sim.StructuralConfig
}

func (c *pointCollector) Sims(ctx context.Context, cfgs []sim.Config) ([]sim.Result, error) {
	c.mu.Lock()
	for _, cfg := range cfgs {
		c.sims[cfg.Key()] = cfg
	}
	c.mu.Unlock()
	return make([]sim.Result, len(cfgs)), nil
}

func (c *pointCollector) Structurals(ctx context.Context, cfgs []sim.StructuralConfig) ([]sim.StructuralResult, error) {
	c.mu.Lock()
	for _, cfg := range cfgs {
		c.structs[cfg.Key()] = cfg
	}
	c.mu.Unlock()
	return make([]sim.StructuralResult, len(cfgs)), nil
}

func suitePoints() ([]serve.SweepPoint, error) {
	col := &pointCollector{
		sims:    make(map[string]sim.Config),
		structs: make(map[string]sim.StructuralConfig),
	}
	ctx := exp.WithTier(exp.WithEngine(context.Background(), exp.New(0)), col)
	if _, err := figures.RunAllContext(ctx); err != nil {
		return nil, fmt.Errorf("enumerating the figure suite: %w", err)
	}
	keys := make([]string, 0, len(col.sims)+len(col.structs))
	for k := range col.sims {
		keys = append(keys, k)
	}
	for k := range col.structs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	points := make([]serve.SweepPoint, 0, len(keys))
	for _, k := range keys {
		var (
			raw []byte
			err error
		)
		if cfg, ok := col.sims[k]; ok {
			raw, err = cfg.MarshalWire()
		} else {
			raw, err = col.structs[k].MarshalWire()
		}
		if err != nil {
			return nil, err
		}
		points = append(points, serve.SweepPoint{Config: raw})
	}
	return points, nil
}

// shot is one request's record: which phase fired it, the whole second
// within that phase it fired in, and how it ended.
type shot struct {
	phase   int
	bucket  int
	outcome byte // 'c' completed, 's' shed (429), 'e' error
	ms      float64
}

type run struct {
	target   string
	tierName string
	clientID string
	points   []serve.SweepPoint
	batch    int
	client   *http.Client

	cursor int // next replay index, advanced at fire time

	mu    sync.Mutex
	shots []shot
	wg    sync.WaitGroup
}

func newRun(target, tierName, clientID string, points []serve.SweepPoint, batch int, timeout time.Duration) *run {
	return &run{
		target:   strings.TrimRight(target, "/"),
		tierName: tierName,
		clientID: clientID,
		points:   points,
		batch:    batch,
		client:   &http.Client{Timeout: timeout},
	}
}

// runPhase fires phase ph's schedule and returns when the last request
// has been launched (not completed — the generator is open loop;
// run.wg tracks completions).
func (r *run) runPhase(idx int, ph phase) {
	interval := time.Duration(float64(time.Second) / ph.rate)
	start := time.Now()
	end := start.Add(ph.dur)
	next := start
	for next.Before(end) {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		pts := r.nextBatch()
		bucket := int(next.Sub(start) / time.Second)
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			outcome, ms := r.fire(pts)
			r.mu.Lock()
			r.shots = append(r.shots, shot{phase: idx, bucket: bucket, outcome: outcome, ms: ms})
			r.mu.Unlock()
		}()
		next = next.Add(interval)
	}
}

// nextBatch hands out the next batch-sized window of the replay
// sequence, wrapping round-robin.
func (r *run) nextBatch() []serve.SweepPoint {
	pts := make([]serve.SweepPoint, 0, r.batch)
	for i := 0; i < r.batch; i++ {
		pts = append(pts, r.points[r.cursor%len(r.points)])
		r.cursor++
	}
	return pts
}

// fire POSTs one /v1/sweep request and classifies the outcome. Latency
// covers send through the fully read response body.
func (r *run) fire(pts []serve.SweepPoint) (outcome byte, ms float64) {
	body, err := json.Marshal(serve.SweepRequest{Tier: r.tierName, Points: pts})
	if err != nil {
		return 'e', 0
	}
	req, err := http.NewRequest(http.MethodPost, r.target+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return 'e', 0
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(admit.ClientHeader, r.clientID)
	start := time.Now()
	resp, err := r.client.Do(req)
	if err != nil {
		return 'e', 0
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	elapsed := time.Since(start)
	switch {
	case resp.StatusCode == http.StatusOK:
		return 'c', float64(elapsed) / float64(time.Millisecond)
	case resp.StatusCode == http.StatusTooManyRequests:
		return 's', 0
	default:
		return 'e', 0
	}
}

// agg is one timeline row's accumulator.
type agg struct {
	sent, completed, shed, errors int
	latencies                     []float64
}

func (a *agg) add(s shot) {
	a.sent++
	switch s.outcome {
	case 'c':
		a.completed++
		a.latencies = append(a.latencies, s.ms)
	case 's':
		a.shed++
	default:
		a.errors++
	}
}

// percentile returns the nearest-rank q-quantile (0 < q <= 1) of
// sorted, or 0 when empty.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// report prints one summary line per phase and returns the total
// completed-request count.
func (r *run) report(w io.Writer, phases []phase) int {
	total := 0
	for i, ph := range phases {
		var a agg
		for _, s := range r.shots {
			if s.phase == i {
				a.add(s)
			}
		}
		sort.Float64s(a.latencies)
		fmt.Fprintf(w, "soload: phase %d (%gx%s): sent %d, completed %d, shed %d, errors %d, p50 %.1fms p95 %.1fms p99 %.1fms max %.1fms\n",
			i, ph.rate, ph.dur, a.sent, a.completed, a.shed, a.errors,
			percentile(a.latencies, 0.50), percentile(a.latencies, 0.95),
			percentile(a.latencies, 0.99), percentile(a.latencies, 1.0))
		total += a.completed
	}
	return total
}

// writeCSV writes the per-second timeline: one row per (phase, whole
// second) with counts and the latency distribution of requests fired in
// that second.
func (r *run) writeCSV(path string, phases []phase) error {
	rows := make(map[[2]int]*agg)
	for _, s := range r.shots {
		key := [2]int{s.phase, s.bucket}
		a := rows[key]
		if a == nil {
			a = &agg{}
			rows[key] = a
		}
		a.add(s)
	}
	keys := make([][2]int, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(f)
	cw.Write([]string{"phase", "interval_start_s", "sent", "completed", "shed", "errors", "p50_ms", "p95_ms", "p99_ms", "max_ms"})
	for _, k := range keys {
		a := rows[k]
		sort.Float64s(a.latencies)
		cw.Write([]string{
			strconv.Itoa(k[0]),
			strconv.Itoa(k[1]),
			strconv.Itoa(a.sent),
			strconv.Itoa(a.completed),
			strconv.Itoa(a.shed),
			strconv.Itoa(a.errors),
			fmt.Sprintf("%.3f", percentile(a.latencies, 0.50)),
			fmt.Sprintf("%.3f", percentile(a.latencies, 0.95)),
			fmt.Sprintf("%.3f", percentile(a.latencies, 0.99)),
			fmt.Sprintf("%.3f", percentile(a.latencies, 1.0)),
		})
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// metricName is the naming contract every exported family must satisfy:
// soproc_<subsystem>_<name>, lower-snake throughout.
var metricName = regexp.MustCompile(`^soproc_(engine|tier|server|store|cluster|admit)_[a-z0-9_]+$`)

// lintMetrics scrapes url, validates the Prometheus text format
// strictly, and lints every family name against the repo's naming
// contract (counters additionally must end in _total). CI points this
// at each replica and the coordinator mid-run.
func lintMetrics(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		return fmt.Errorf("%s: Content-Type %q, want %q", url, ct, metrics.ContentType)
	}
	families, err := metrics.ParseText(string(body))
	if err != nil {
		return fmt.Errorf("%s: %w", url, err)
	}
	if len(families) == 0 {
		return fmt.Errorf("%s: no metric families", url)
	}
	samples := 0
	for _, fam := range families {
		if !metricName.MatchString(fam.Name) {
			return fmt.Errorf("%s: family %q violates soproc_<subsystem>_<name> naming", url, fam.Name)
		}
		if fam.Kind == "counter" && !strings.HasSuffix(fam.Name, "_total") {
			return fmt.Errorf("%s: counter %q must end in _total", url, fam.Name)
		}
		if fam.Help == "" {
			return fmt.Errorf("%s: family %q has no HELP", url, fam.Name)
		}
		samples += len(fam.Samples)
	}
	fmt.Printf("soload: %s: %d families, %d samples, format ok\n", url, len(families), samples)
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "soload:", err)
	os.Exit(1)
}
