// Command sodesign explores custom Scale-Out Processor designs: evaluate
// a pod, compose a chip, stack it in 3D, or price it into a datacenter —
// the whole methodology on one configuration of your choosing.
//
// Usage:
//
//	sodesign -core ooo -cores 16 -llc 4                 # evaluate a pod + chip at 40nm
//	sodesign -core inorder -cores 32 -llc 2 -node 20nm  # at 20nm
//	sodesign -core ooo -cores 32 -llc 2 -dies 4         # 3D stack (both strategies)
//	sodesign -core ooo -cores 16 -llc 4 -tco            # datacenter perf/TCO
//	sodesign -sweep -core ooo                           # PD design-space sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"scaleout/internal/chip"
	"scaleout/internal/core"
	"scaleout/internal/noc"
	"scaleout/internal/stack3d"
	"scaleout/internal/tco"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

func main() {
	coreFlag := flag.String("core", "ooo", "core type: conventional | ooo | inorder")
	cores := flag.Int("cores", 16, "cores per pod")
	llc := flag.Float64("llc", 4, "LLC capacity per pod (MB)")
	netFlag := flag.String("net", "crossbar", "pod interconnect: crossbar | mesh | ideal | fbfly | nocout")
	nodeFlag := flag.String("node", "40nm", "technology node: 40nm | 20nm | 3d")
	dies := flag.Int("dies", 1, "stacked logic dies (2-4 selects the 3D flow)")
	doTCO := flag.Bool("tco", false, "price the chip into a 20MW datacenter")
	memGB := flag.Int("mem", 64, "memory per 1U server for -tco (GB)")
	sweep := flag.Bool("sweep", false, "sweep the pod design space instead")
	flag.Parse()

	ws := workload.Suite()
	coreType, err := parseCore(*coreFlag)
	check(err)
	node, err := parseNode(*nodeFlag, *dies)
	check(err)
	kind, err := parseNet(*netFlag)
	check(err)

	if *sweep {
		runSweep(node, coreType, ws)
		return
	}

	pod := core.Pod{Core: coreType, Cores: *cores, LLCMB: *llc, Net: kind}
	fmt.Printf("pod %v (%s cores, %s):\n", pod, coreType, kind)
	fmt.Printf("  area %.1fmm2  power %.1fW  IPC %.1f  PD %.3f  peak BW %.1fGB/s\n",
		pod.Area(node), pod.Power(node), pod.IPC(ws), pod.PD(node, ws),
		pod.PeakBandwidthGBs(ws))

	if *dies > 1 {
		run3D(node, pod, *dies, ws)
		return
	}

	c, err := core.Compose(node, pod, ws)
	check(err)
	fmt.Printf("\nScale-Out Processor at %s: %d pods, %d channels (%s-limited)\n",
		node.Name, c.Pods, c.MemChannels, c.Limit)
	fmt.Printf("  die %.0fmm2  TDP %.0fW  IPC %.1f  PD %.3f  perf/W %.2f\n",
		c.DieArea(), c.Power(), c.IPC(ws), c.PD(ws), c.PerfPerWatt(ws))

	if *doTCO {
		runTCO(c, *memGB, ws)
	}
}

func runSweep(node tech.Node, coreType tech.CoreType, ws []workload.Workload) {
	space := core.SweepSpace{
		Core: coreType, MaxCores: 64,
		LLCSizes: []float64{1, 2, 4, 8},
		Nets:     []noc.Kind{noc.Crossbar},
	}
	pts := core.Sweep(space, node, ws)
	opt, err := core.Optimal(pts)
	check(err)
	fmt.Printf("PD sweep (%s, crossbar pods at %s); optimum %v (PD %.3f):\n",
		coreType, node.Name, opt.Pod, opt.PD)
	fmt.Printf("%8s", "")
	for c := 1; c <= 64; c *= 2 {
		fmt.Printf("%8dc", c)
	}
	fmt.Println()
	for _, llcMB := range space.LLCSizes {
		fmt.Printf("%6.0fMB", llcMB)
		for c := 1; c <= 64; c *= 2 {
			p := core.Pod{Core: coreType, Cores: c, LLCMB: llcMB, Net: noc.Crossbar}
			fmt.Printf("%9.3f", p.PD(node, ws))
		}
		fmt.Println()
	}
}

func run3D(node tech.Node, pod core.Pod, dies int, ws []workload.Workload) {
	fmt.Printf("\n3D stacks (%d dies, %s budgets):\n", dies, node.Name)
	for _, s := range []stack3d.Strategy{stack3d.FixedPod, stack3d.FixedDistance} {
		c, err := stack3d.Compose3D(node, pod, dies, s, ws)
		check(err)
		fmt.Printf("  %-14s %d x %v  %d MCs  footprint %.0fmm2  power %.0fW  PD3D %.3f (%s-limited)\n",
			s, c.Pods, c.Pod, c.MemChannels, c.FootprintArea(), c.Power(), c.PD3D(ws), c.Limit)
	}
}

func runTCO(c core.ScaleOutChip, memGB int, ws []workload.Workload) {
	spec := chip.Spec{
		Org: chip.ScaleOutOrg, Node: c.Node, Core: c.Pod.Core,
		Cores: c.Cores(), LLCMB: c.LLCMB(), Pods: c.Pods, Net: noc.Crossbar,
		MemChannels: c.MemChannels,
	}
	dc, err := tco.Compose(tco.NewParams(), spec, memGB, ws)
	check(err)
	b := dc.MonthlyTCO()
	fmt.Printf("\n20MW datacenter (%dGB per 1U): %d sockets/server, %d racks\n",
		memGB, dc.Server.Sockets, dc.Racks)
	fmt.Printf("  chip price $%.0f  server price $%.0f  monthly TCO $%.1fM\n",
		dc.Server.ChipPrice, dc.ServerPrice(), b.Total()/1e6)
	fmt.Printf("  perf/TCO %.0f  perf/Watt %.1f\n", dc.PerfPerTCO(), dc.PerfPerWatt())
}

func parseCore(s string) (tech.CoreType, error) {
	switch strings.ToLower(s) {
	case "conventional", "conv":
		return tech.Conventional, nil
	case "ooo", "out-of-order":
		return tech.OoO, nil
	case "inorder", "in-order", "io":
		return tech.InOrder, nil
	default:
		return 0, fmt.Errorf("unknown core type %q", s)
	}
}

func parseNode(s string, dies int) (tech.Node, error) {
	switch strings.ToLower(s) {
	case "40nm", "40":
		if dies > 1 {
			return tech.N40For3D(), nil
		}
		return tech.N40(), nil
	case "20nm", "20":
		return tech.N20(), nil
	case "3d":
		return tech.N40For3D(), nil
	default:
		return tech.Node{}, fmt.Errorf("unknown node %q", s)
	}
}

func parseNet(s string) (noc.Kind, error) {
	switch strings.ToLower(s) {
	case "crossbar", "xbar":
		return noc.Crossbar, nil
	case "mesh":
		return noc.Mesh, nil
	case "ideal":
		return noc.Ideal, nil
	case "fbfly", "butterfly":
		return noc.FlattenedButterfly, nil
	case "nocout", "noc-out":
		return noc.NOCOut, nil
	default:
		return 0, fmt.Errorf("unknown interconnect %q", s)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sodesign:", err)
		os.Exit(1)
	}
}
