// Command sochaos is a fault-injecting reverse proxy for exercising
// the serve/cluster tier's degraded regime end to end: put it between
// a coordinator and a soprocd replica and the replica becomes flaky,
// slow, or both — deterministically, from a seed.
//
//	sochaos -listen :9191 -target 127.0.0.1:9090 \
//	    -error-rate 0.15 -reset-rate 0.05 -torn-rate 0.05 \
//	    -latency-rate 0.5 -latency 50ms -seed 7
//
// Flags:
//
//	-listen addr        address to listen on (default :9191)
//	-target addr        backend soprocd ("host:port" or http:// URL)
//	-seed n             fault RNG seed (default 1)
//	-error-rate p       probability of a synthesized 5xx (default 0)
//	-error-status n     status code for injected errors (default 502)
//	-reset-rate p       probability of an abrupt connection reset (default 0)
//	-torn-rate p        probability of a torn response body (default 0)
//	-latency-rate p     probability of added latency (default 0)
//	-latency d          injected delay (default 50ms)
//
// The proxy serves its injection counters as JSON at /chaosz
// (requests, passed, errors, resets, torn, delayed) so a harness can
// assert that faults actually happened. Every other path is forwarded
// to the target, subject to the fault roll. SIGINT/SIGTERM shut the
// proxy down after printing the final counters to stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scaleout/internal/chaos"
)

func main() {
	var (
		listen      = flag.String("listen", ":9191", "address to listen on")
		target      = flag.String("target", "", "backend soprocd address (host:port or http:// URL)")
		seed        = flag.Int64("seed", 1, "fault RNG seed")
		errorRate   = flag.Float64("error-rate", 0, "probability of a synthesized 5xx")
		errorStatus = flag.Int("error-status", http.StatusBadGateway, "status code for injected errors")
		resetRate   = flag.Float64("reset-rate", 0, "probability of an abrupt connection reset")
		tornRate    = flag.Float64("torn-rate", 0, "probability of a torn response body")
		latencyRate = flag.Float64("latency-rate", 0, "probability of added latency")
		latency     = flag.Duration("latency", 50*time.Millisecond, "injected delay")
	)
	flag.Parse()
	if *target == "" {
		fmt.Fprintln(os.Stderr, "sochaos: -target is required")
		os.Exit(2)
	}

	proxy, err := chaos.NewProxy(*target, chaos.Faults{
		Seed:        *seed,
		ErrorRate:   *errorRate,
		ErrorStatus: *errorStatus,
		ResetRate:   *resetRate,
		TornRate:    *tornRate,
		LatencyRate: *latencyRate,
		Latency:     *latency,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sochaos: %v\n", err)
		os.Exit(2)
	}

	hs := &http.Server{Addr: *listen, Handler: proxy}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "sochaos: %s -> %s (error %.2f reset %.2f torn %.2f latency %.2f@%s seed %d)\n",
		*listen, *target, *errorRate, *resetRate, *tornRate, *latencyRate, *latency, *seed)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "sochaos: %v\n", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "sochaos: %v, shutting down\n", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hs.Shutdown(ctx)
	out, _ := json.Marshal(proxy.Stats())
	fmt.Fprintf(os.Stderr, "sochaos: final %s\n", out)
}
