package main

import (
	"fmt"

	"scaleout/internal/sim"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// structCheck compares emergent structural-mode cache behaviour against
// the calibrated statistical targets.
func structCheck() {
	fmt.Println("== structural mode: emergent L1 MPKI vs calibrated APKI (16c, 4MB) ==")
	for _, w := range workload.Suite() {
		r, err := sim.RunStructural(sim.StructuralConfig{
			Workload: w, CoreType: tech.OoO, Cores: 16, LLCMB: 4,
		})
		if err != nil {
			panic(err)
		}
		apki := w.EffectiveAPKI(tech.OoO)
		iT := apki * w.IFetchFrac
		dT := apki - iT
		fmt.Printf("  %-16s L1I %5.1f [%5.1f]  L1D %5.1f [%5.1f]  LLCmiss %4.1f%%  IPC %5.2f  mshrStall %.2f%%\n",
			w.Name, r.L1IMPKI, iT, r.L1DMPKI, dT, r.LLCMissPct, r.AppIPC, r.MSHRStallPct)
	}
}
